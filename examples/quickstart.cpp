/**
 * @file
 * Quickstart: the CHERIvoke temporal-safety allocator in ten steps.
 *
 * Builds a simulated CHERI process, allocates through the
 * temporal-safe allocator, frees, and shows that a dangling
 * capability is revoked by the sweep and that the memory is only
 * reused afterwards.
 *
 * Run: ./quickstart
 */

#include <cstdio>

#include "alloc/cherivoke_alloc.hh"
#include "revoke/revocation_engine.hh"

using namespace cherivoke;

int
main()
{
    // 1. A simulated CheriABI process: tagged memory, page table
    //    with CapDirty, registers, heap/stack/globals.
    mem::AddressSpace space;

    // 2. The temporal-safety allocator (quarantine = 25% of heap).
    alloc::CherivokeConfig cfg;
    cfg.quarantineFraction = 0.25;
    cfg.minQuarantineBytes = 16; // demo: sweep eagerly
    alloc::CherivokeAllocator heap(space, cfg);

    // 3. The revoker couples the allocator with the memory sweeper.
    revoke::RevocationEngine revoker(heap, space);

    // 4. Allocate. The returned capability is bounded to exactly
    //    the 64 requested bytes and tagged valid.
    cap::Capability obj = heap.malloc(64);
    std::printf("allocated: %s\n", obj.toString().c_str());

    // 5. Use it: stores/loads are bounds- and permission-checked.
    space.memory().storeU64(obj, obj.address(), 0xdead0001);
    std::printf("read back: 0x%llx\n",
                static_cast<unsigned long long>(
                    space.memory().loadU64(obj, obj.address())));

    // 6. Stash a copy in a global — this will become the dangling
    //    pointer.
    space.memory().writeCap(mem::kGlobalsBase, obj);

    // 7. Free. The memory is quarantined, not recycled: allocating
    //    again cannot return the same address yet.
    heap.free(obj);
    cap::Capability other = heap.malloc(64);
    std::printf("freed %llx; next malloc gives %llx (different)\n",
                static_cast<unsigned long long>(obj.base()),
                static_cast<unsigned long long>(other.base()));

    // 8. Revoke: paint the shadow map, sweep memory + registers,
    //    release the quarantine.
    const revoke::EpochStats epoch = revoker.revokeNow();
    std::printf("sweep: %llu caps examined, %llu revoked\n",
                static_cast<unsigned long long>(
                    epoch.sweep.capsExamined),
                static_cast<unsigned long long>(
                    epoch.sweep.capsRevoked));

    // 9. The stale copy in the global lost its tag: any use traps.
    const cap::Capability stale =
        space.memory().readCap(mem::kGlobalsBase);
    std::printf("stale copy after sweep: %s\n",
                stale.toString().c_str());
    try {
        (void)space.memory().loadU64(stale, stale.address());
        std::printf("ERROR: stale load succeeded!\n");
        return 1;
    } catch (const cap::CapFault &fault) {
        std::printf("stale dereference trapped: %s\n", fault.what());
    }

    // 10. Only now can the address be reissued — temporal safety.
    const cap::Capability recycled = heap.malloc(64);
    std::printf("after sweep, malloc may recycle: %llx (was %llx)\n",
                static_cast<unsigned long long>(recycled.base()),
                static_cast<unsigned long long>(obj.base()));
    std::printf("OK\n");
    return 0;
}

/**
 * @file
 * Incremental revocation demo: the sweep runs in bounded steps while
 * the "application" keeps allocating, freeing, and copying pointers
 * between them. The Cornucopia-style load barrier keeps revocation
 * sound: a dangling capability loaded from a not-yet-swept page is
 * stripped at the load, so it can never hide behind the sweep.
 *
 * Run: ./incremental_revocation
 */

#include <cstdio>

#include "revoke/revocation_engine.hh"
#include "support/rng.hh"

using namespace cherivoke;

int
main()
{
    mem::AddressSpace space;
    alloc::CherivokeConfig cfg;
    cfg.minQuarantineBytes = 4 * KiB;
    alloc::CherivokeAllocator heap(space, cfg);
    revoke::RevocationEngine revoker(
        heap, space,
        revoke::EngineConfig{revoke::SweepOptions{},
                             revoke::PolicyKind::Incremental, 8, 1});
    auto &memory = space.memory();
    Rng rng(1);

    // Build a working set with cross references.
    std::vector<cap::Capability> live;
    for (int i = 0; i < 400; ++i) {
        const cap::Capability c = heap.malloc(512);
        if (!live.empty()) {
            memory.storeCap(c, c.base(),
                            live[rng.nextBounded(live.size())]);
        }
        live.push_back(c);
    }
    // Free a third — references to them dangle all over the heap.
    int freed = 0;
    for (size_t i = 0; i < live.size(); i += 3, ++freed)
        heap.free(live[i]);
    std::printf("freed %d objects; quarantine holds %llu bytes\n",
                freed,
                static_cast<unsigned long long>(
                    heap.quarantinedBytes()));

    // Revoke incrementally: 8 pages per pause, with the mutator
    // running between pauses.
    revoker.beginEpoch();
    std::printf("epoch open: %zu pages to sweep, load barrier on\n",
                revoker.pagesRemaining());
    int pauses = 0;
    uint64_t mutator_ops = 0;
    while (revoker.step(8) > 0) {
        ++pauses;
        // The mutator between pauses: loads (through the barrier),
        // stores, and fresh allocations.
        for (int i = 0; i < 16; ++i) {
            const size_t idx = 1 + 3 * rng.nextBounded(100);
            const cap::Capability holder = live[idx];
            const cap::Capability loaded =
                memory.loadCap(holder, holder.base());
            // Copy whatever was loaded somewhere else; if it was
            // dangling, the barrier has already stripped it.
            memory.writeCap(mem::kGlobalsBase +
                                rng.nextBounded(256) * 16,
                            loaded);
            ++mutator_ops;
        }
    }
    revoker.finishEpoch();

    const auto &counters = memory.counters();
    std::printf("epoch done: %d bounded pauses, %llu mutator ops "
                "interleaved\n",
                pauses,
                static_cast<unsigned long long>(mutator_ops));
    std::printf("caps revoked by sweep: %llu; stripped at load by "
                "the barrier: %llu\n",
                static_cast<unsigned long long>(
                    revoker.totals().sweep.capsRevoked),
                static_cast<unsigned long long>(
                    counters.value("mem.load_barrier_strips")));

    // Verify: no tagged reference to any freed object anywhere.
    uint64_t dangling = 0;
    for (size_t i = 0; i < live.size(); i += 3) {
        for (uint64_t s = 0; s < 256; ++s) {
            const cap::Capability c =
                memory.readCap(mem::kGlobalsBase + s * 16);
            if (c.tag() && c.base() == live[i].base())
                ++dangling;
        }
    }
    std::printf("dangling references remaining: %llu\n",
                static_cast<unsigned long long>(dangling));
    std::printf(dangling == 0 ? "OK\n" : "FAILED\n");
    return dangling == 0 ? 0 : 1;
}

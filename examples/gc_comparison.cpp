/**
 * @file
 * CHERIvoke vs conservative garbage collection (paper §7.3), on the
 * same linked-structure workload:
 *
 *  - the Boehm-style collector must *walk the object graph* to find
 *    what is dead, and an integer that happens to equal an address
 *    keeps garbage alive forever;
 *  - CHERIvoke is told what is dead (the program's frees), sweeps
 *    memory linearly, and cannot be confused by integers.
 */

#include <cstdio>
#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "baseline/boehm_gc.hh"
#include "revoke/revocation_engine.hh"
#include "support/rng.hh"

using namespace cherivoke;

namespace {

constexpr int kNodes = 2000;

void
runGc()
{
    std::printf("--- Boehm-style conservative GC ---\n");
    mem::AddressSpace space;
    alloc::DlAllocator dl(space);
    baseline::BoehmGc gc(space, dl);
    auto &memory = space.memory();

    // A linked list rooted in a global, plus unreachable islands.
    cap::Capability head = gc.gcAlloc(64);
    memory.writeU64(mem::kGlobalsBase, head.base());
    cap::Capability prev = head;
    for (int i = 0; i < kNodes / 2; ++i) {
        cap::Capability node = gc.gcAlloc(64);
        memory.writeU64(prev.base(), node.base());
        prev = node;
    }
    std::vector<uint64_t> island_addrs;
    for (int i = 0; i < kNodes / 2; ++i)
        island_addrs.push_back(gc.gcAlloc(64).base());

    // An innocent integer that happens to equal an island address.
    memory.writeU64(mem::kStackBase + 256, island_addrs[0]);

    const baseline::GcStats stats = gc.collect();
    std::printf("collect: %llu words scanned, %llu mark visits, "
                "%llu objects freed\n",
                static_cast<unsigned long long>(stats.wordsScanned),
                static_cast<unsigned long long>(stats.markVisits),
                static_cast<unsigned long long>(stats.objectsFreed));
    std::printf("unreachable islands: %d; freed: %llu "
                "(one retained by an integer that looks like a "
                "pointer)\n",
                kNodes / 2,
                static_cast<unsigned long long>(stats.objectsFreed));
}

void
runCherivoke()
{
    std::printf("\n--- CHERIvoke ---\n");
    mem::AddressSpace space;
    alloc::CherivokeConfig cfg;
    cfg.minQuarantineBytes = 16;
    alloc::CherivokeAllocator heap(space, cfg);
    revoke::RevocationEngine revoker(heap, space);
    auto &memory = space.memory();

    cap::Capability head = heap.malloc(64);
    memory.writeCap(mem::kGlobalsBase, head);
    cap::Capability prev = head;
    std::vector<cap::Capability> nodes{head};
    for (int i = 0; i < kNodes / 2; ++i) {
        cap::Capability node = heap.malloc(64);
        memory.storeCap(prev, prev.base(), node);
        prev = node;
        nodes.push_back(node);
    }
    std::vector<cap::Capability> islands;
    for (int i = 0; i < kNodes / 2; ++i)
        islands.push_back(heap.malloc(64));

    // The same integer coincidence — irrelevant here: an integer
    // carries no tag, so it cannot retain or access anything.
    memory.writeU64(mem::kStackBase + 256, islands[0].base());

    // The program frees the islands; CHERIvoke quarantines and
    // sweeps — a linear pass, no graph walk.
    for (auto &c : islands)
        heap.free(c);
    const revoke::EpochStats epoch = revoker.revokeNow();
    std::printf("sweep: %llu bytes swept linearly, %llu caps "
                "examined, %llu revoked\n",
                static_cast<unsigned long long>(
                    epoch.sweep.bytesSwept()),
                static_cast<unsigned long long>(
                    epoch.sweep.capsExamined),
                static_cast<unsigned long long>(
                    epoch.sweep.capsRevoked));
    std::printf("all %d freed islands reclaimed; the integer "
                "retained nothing\n",
                kNodes / 2);
    std::printf("live list intact: head tag = %d\n",
                memory.readCap(mem::kGlobalsBase).tag());
}

} // namespace

int
main()
{
    runGc();
    runCherivoke();
    return 0;
}

/**
 * @file
 * Tuning walkthrough: the quarantine fraction trades heap growth for
 * sweep frequency (paper §6.4, figure 9). Runs the paper's
 * worst-case workload (xalancbmk) at several settings and prints the
 * resulting time/memory pairs, so a deployer can pick a point on the
 * curve.
 *
 * Run: ./tuning_tradeoff [benchmark-name]
 */

#include <cstdio>
#include <string>

#include "sim/experiment.hh"
#include "stats/table.hh"

using namespace cherivoke;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "xalancbmk";
    const workload::BenchmarkProfile &profile =
        workload::profileFor(name);

    std::printf("Quarantine tuning for '%s' "
                "(free rate %.0f MiB/s, %.0f%% pages w/ pointers)\n\n",
                profile.name.c_str(), profile.freeRateMiBps,
                profile.pagesWithPointers * 100);

    stats::TextTable table({"quarantine", "exec time", "memory",
                            "sweeps", "sweep s/s"});
    for (double q : {0.05, 0.10, 0.25, 0.50, 1.00, 2.00}) {
        sim::ExperimentConfig cfg;
        cfg.quarantineFraction = q;
        cfg.scale = 1.0 / 128;
        cfg.durationSec = 0.4;
        const sim::BenchResult r = sim::runBenchmark(profile, cfg);
        table.addRow({stats::TextTable::percent(q, 0),
                      stats::TextTable::num(r.normalizedTime, 3),
                      stats::TextTable::num(r.normalizedMemory, 3),
                      std::to_string(r.run.revoker.epochs),
                      stats::TextTable::num(r.sweepOverhead, 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Pick the smallest quarantine whose execution-time "
                "column meets your budget;\nthe memory column is "
                "what it costs (the paper defaults to 25%%).\n");
    return 0;
}

/**
 * @file
 * Trace player: replay an allocation trace (from a file, or a
 * built-in demo trace) through the CHERIvoke allocator and print the
 * run's measured statistics. Demonstrates the text trace format and
 * the driver API.
 *
 * Run: ./trace_player [trace-file]
 *      ./trace_player --demo         (synthesise + save + replay)
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "revoke/revocation_engine.hh"
#include "workload/driver.hh"
#include "workload/synth.hh"

using namespace cherivoke;

namespace {

workload::Trace
demoTrace()
{
    // A small hand-written trace exercising every op kind.
    const char *text = R"(# cherivoke-trace v1
malloc 1 4096 0 0 0 0
malloc 2 128 0 0 0 0.001
storeptr 0 0 1 2 16 0
rootptr 0 0 2 0 7 0
storedata 0 0 0 1 64 0.001
free 1 0 0 0 0 0.001
malloc 3 256 0 0 0 0.001
free 2 0 0 0 0 0.001
free 3 0 0 0 0 0.001
)";
    std::istringstream is(text);
    return workload::Trace::load(is);
}

} // namespace

int
main(int argc, char **argv)
{
    workload::Trace trace;
    if (argc > 1 && std::string(argv[1]) != "--demo") {
        std::ifstream file(argv[1]);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        trace = workload::Trace::load(file);
        std::printf("loaded %zu ops from %s\n", trace.ops.size(),
                    argv[1]);
    } else if (argc > 1) {
        // --demo: synthesise a real workload, save it, reload it.
        trace = workload::synthesize(
            workload::profileFor("dealII"));
        std::ostringstream buffer;
        trace.save(buffer);
        std::istringstream reload(buffer.str());
        trace = workload::Trace::load(reload);
        std::printf("synthesised dealII trace: %zu ops, %.2f "
                    "virtual seconds\n",
                    trace.ops.size(), trace.virtualSeconds());
    } else {
        trace = demoTrace();
        std::printf("playing the built-in demo trace (%zu ops)\n",
                    trace.ops.size());
    }

    mem::AddressSpace space;
    alloc::CherivokeConfig cfg;
    cfg.minQuarantineBytes = 4 * KiB;
    alloc::CherivokeAllocator allocator(space, cfg);
    revoke::RevocationEngine revoker(allocator, space);
    workload::TraceDriver driver(space, allocator, &revoker);
    const workload::DriverResult r = driver.run(trace);

    std::printf("\nresults:\n");
    std::printf("  allocs            %llu\n",
                static_cast<unsigned long long>(r.allocCalls));
    std::printf("  frees             %llu\n",
                static_cast<unsigned long long>(r.freeCalls));
    std::printf("  pointer stores    %llu\n",
                static_cast<unsigned long long>(r.ptrStores));
    std::printf("  free rate         %.2f MiB/s\n",
                r.measuredFreeRateMiBps);
    std::printf("  page density      %.1f%%\n",
                r.pageDensity * 100);
    std::printf("  line density      %.1f%%\n",
                r.lineDensity * 100);
    std::printf("  sweeps            %llu\n",
                static_cast<unsigned long long>(r.revoker.epochs));
    std::printf("  caps revoked      %llu\n",
                static_cast<unsigned long long>(
                    r.revoker.sweep.capsRevoked));
    std::printf("  peak live         %llu B\n",
                static_cast<unsigned long long>(r.peakLiveBytes));
    std::printf("  peak quarantine   %llu B\n",
                static_cast<unsigned long long>(
                    r.peakQuarantineBytes));
    allocator.dl().validateHeap();
    std::printf("heap invariants OK\n");
    return 0;
}

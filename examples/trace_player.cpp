/**
 * @file
 * Trace player: replay an allocation trace through the CHERIvoke
 * allocator and print the run's measured statistics. Demonstrates
 * both trace formats — the human-readable text format and the
 * compact binary codec (tenant/trace_codec.hh) — and the driver API.
 *
 * Run: ./trace_player [trace-file]    file may be text or binary;
 *                                     the format is sniffed from the
 *                                     magic. A tiny bundled demo
 *                                     lives at examples/demo.cvt.
 *      ./trace_player --demo          synthesise a dealII workload,
 *                                     round-trip it through the
 *                                     binary codec, replay it
 *      ./trace_player --record FILE   write the built-in demo trace
 *                                     to FILE in the binary format
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "revoke/revocation_engine.hh"
#include "support/logging.hh"
#include "tenant/trace_codec.hh"
#include "workload/driver.hh"
#include "workload/synth.hh"

using namespace cherivoke;

namespace {

/** Human-readable codec version ("text", "binary v1 (classic)"...). */
std::string
codecVersionName(uint32_t version)
{
    switch (version) {
      case 0: return "text";
      case tenant::kTraceVersionClassic: return "binary v1 (classic)";
      case tenant::kTraceVersionLifecycle:
        return "binary v2 (lifecycle)";
    }
    return "binary v" + std::to_string(version) + " (unknown)";
}

/** Print codec version and the per-record-kind histogram, so a v2
 *  lifecycle trace is distinguishable from a v1 one at a glance. */
void
printTraceShape(const workload::Trace &trace, uint32_t version)
{
    static const char *const kind_names[] = {
        "malloc", "free", "storeptr", "storedata", "rootptr",
        "spawntenant", "retiretenant"};
    constexpr size_t kinds =
        sizeof(kind_names) / sizeof(kind_names[0]);
    uint64_t histogram[kinds] = {};
    for (const workload::TraceOp &op : trace.ops) {
        const auto k = static_cast<size_t>(op.kind);
        if (k < kinds)
            ++histogram[k];
    }
    std::printf("codec version: %s\n", codecVersionName(version).c_str());
    std::printf("record kinds:\n");
    for (size_t k = 0; k < kinds; ++k) {
        if (histogram[k] > 0)
            std::printf("  %-12s %llu\n", kind_names[k],
                        static_cast<unsigned long long>(histogram[k]));
    }
}

/** Header version of @p path's first bytes (0 = not binary). */
uint32_t
sniffFileVersion(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    uint8_t header[tenant::kTraceHeaderBytes] = {};
    is.read(reinterpret_cast<char *>(header), sizeof(header));
    return tenant::traceVersion(
        header, static_cast<size_t>(is.gcount()));
}

workload::Trace
demoTrace()
{
    // A small hand-written trace exercising every op kind.
    const char *text = R"(# cherivoke-trace v1
malloc 1 4096 0 0 0 0
malloc 2 128 0 0 0 0.001
storeptr 0 0 1 2 16 0
rootptr 0 0 2 0 7 0
storedata 0 0 0 1 64 0.001
free 1 0 0 0 0 0.001
malloc 3 256 0 0 0 0.001
free 2 0 0 0 0 0.001
free 3 0 0 0 0 0.001
)";
    std::istringstream is(text);
    return workload::Trace::load(is);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string mode = argc > 1 ? argv[1] : "";
    workload::Trace trace;
    if (mode == "--record") {
        if (argc < 3) {
            std::fprintf(stderr, "usage: trace_player --record FILE\n");
            return 1;
        }
        trace = demoTrace();
        tenant::saveTraceFile(argv[2], trace);
        std::printf("wrote the %zu-op demo trace to %s (%zu bytes, "
                    "binary)\n",
                    trace.ops.size(), argv[2],
                    tenant::encodedTraceBytes(trace));
        return 0;
    } else if (mode == "--demo") {
        // Synthesise a real workload and round-trip it through the
        // binary codec before replaying — record once, replay exact.
        trace = workload::synthesize(workload::profileFor("dealII"));
        const std::vector<uint8_t> bytes = tenant::encodeTrace(trace);
        trace = tenant::decodeTrace(bytes);
        std::printf("synthesised dealII trace: %zu ops, %.2f "
                    "virtual seconds, %zu bytes encoded\n",
                    trace.ops.size(), trace.virtualSeconds(),
                    bytes.size());
        printTraceShape(
            trace, tenant::traceVersion(bytes.data(), bytes.size()));
    } else if (argc > 1) {
        // Binary or text, decided by the file's magic.
        const uint32_t version = sniffFileVersion(argv[1]);
        try {
            trace = tenant::loadTraceFile(argv[1]);
        } catch (const FatalError &err) {
            std::fprintf(stderr, "%s\n", err.what());
            return 1;
        }
        std::printf("loaded %zu ops from %s\n", trace.ops.size(),
                    argv[1]);
        printTraceShape(trace, version);
    } else {
        trace = demoTrace();
        std::printf("playing the built-in demo trace (%zu ops)\n",
                    trace.ops.size());
        printTraceShape(trace, 0);
    }

    mem::AddressSpace space;
    alloc::CherivokeConfig cfg;
    cfg.minQuarantineBytes = 4 * KiB;
    alloc::CherivokeAllocator allocator(space, cfg);
    revoke::RevocationEngine revoker(allocator, space);
    workload::TraceDriver driver(space, allocator, &revoker);
    const workload::DriverResult r = driver.run(trace);

    std::printf("\nresults:\n");
    std::printf("  allocs            %llu\n",
                static_cast<unsigned long long>(r.allocCalls));
    std::printf("  frees             %llu\n",
                static_cast<unsigned long long>(r.freeCalls));
    std::printf("  pointer stores    %llu\n",
                static_cast<unsigned long long>(r.ptrStores));
    std::printf("  free rate         %.2f MiB/s\n",
                r.measuredFreeRateMiBps);
    std::printf("  page density      %.1f%%\n",
                r.pageDensity * 100);
    std::printf("  line density      %.1f%%\n",
                r.lineDensity * 100);
    std::printf("  sweeps            %llu\n",
                static_cast<unsigned long long>(r.revoker.epochs));
    std::printf("  caps revoked      %llu\n",
                static_cast<unsigned long long>(
                    r.revoker.sweep.capsRevoked));
    std::printf("  peak live         %llu B\n",
                static_cast<unsigned long long>(r.peakLiveBytes));
    std::printf("  peak live allocs  %llu\n",
                static_cast<unsigned long long>(r.peakLiveAllocs));
    std::printf("  peak quarantine   %llu B\n",
                static_cast<unsigned long long>(
                    r.peakQuarantineBytes));
    allocator.dl().validateHeap();
    std::printf("heap invariants OK\n");
    return 0;
}

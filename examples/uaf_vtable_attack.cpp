/**
 * @file
 * The paper's figure 1 attack, end to end: a use-after-free on a
 * C++-style object whose first word is a vtable pointer. The
 * attacker reallocates the freed slot and plants a fake vtable;
 * the victim's stale pointer then dispatches through attacker-
 * controlled memory — unless CHERIvoke revokes it first.
 *
 * The scenario runs twice: once on a plain allocator (attack
 * succeeds) and once under CHERIvoke (attack trapped).
 */

#include <cstdio>

#include "alloc/cherivoke_alloc.hh"
#include "revoke/revocation_engine.hh"

using namespace cherivoke;

namespace {

constexpr uint64_t kLegitVtable = 0x100D1500;  //!< "good" dispatch
constexpr uint64_t kEvilVtable = 0x0BADF00D;   //!< attacker's table

/** "Call" the object's virtual destructor: load the vtable pointer
 *  through the (possibly stale) object capability. */
uint64_t
virtualDispatch(mem::TaggedMemory &memory, const cap::Capability &obj)
{
    return memory.loadU64(obj, obj.base());
}

void
attackPlainAllocator()
{
    std::printf("--- plain dlmalloc (no temporal safety) ---\n");
    mem::AddressSpace space;
    alloc::DlAllocator heap(space);
    auto &memory = space.memory();

    // Victim object with its vtable pointer.
    cap::Capability victim = heap.malloc(64);
    memory.storeU64(victim, victim.base(), kLegitVtable);

    // delete: the object dies, but a stale pointer copy remains in
    // a global variable.
    memory.writeCap(mem::kGlobalsBase, victim);
    heap.free(victim);
    const cap::Capability stale =
        memory.readCap(mem::kGlobalsBase);

    // Attacker reallocates the same memory and plants a fake vtable.
    cap::Capability attacker = heap.malloc(64);
    std::printf("attacker got %s memory (0x%llx)\n",
                attacker.base() == stale.base() ? "the victim's"
                                                : "different",
                static_cast<unsigned long long>(attacker.base()));
    memory.storeU64(attacker, attacker.base(), kEvilVtable);

    // Second delete / virtual call through the stale pointer.
    const uint64_t target = virtualDispatch(memory, stale);
    std::printf("victim dispatches to 0x%llx — %s\n",
                static_cast<unsigned long long>(target),
                target == kEvilVtable
                    ? "ATTACKER CONTROLS THE PROCESS"
                    : "legitimate");
}

void
attackCherivoke()
{
    std::printf("\n--- CHERIvoke (sweeping revocation) ---\n");
    mem::AddressSpace space;
    alloc::CherivokeConfig cfg;
    cfg.minQuarantineBytes = 16;
    alloc::CherivokeAllocator heap(space, cfg);
    revoke::RevocationEngine revoker(heap, space);
    auto &memory = space.memory();

    cap::Capability victim = heap.malloc(64);
    memory.storeU64(victim, victim.base(), kLegitVtable);
    // The stale pointer lives somewhere the program can reach it —
    // here a global variable (sweeps cover globals, stack, heap,
    // and registers).
    memory.writeCap(mem::kGlobalsBase, victim);
    heap.free(victim);

    // The quarantine prevents immediate reuse; when the allocator
    // wants the memory back, a sweep must run first.
    revoker.revokeNow();
    const cap::Capability stale =
        memory.readCap(mem::kGlobalsBase);

    cap::Capability attacker = heap.malloc(64);
    std::printf("attacker got %s memory (0x%llx)\n",
                attacker.base() == stale.base() ? "the victim's"
                                                : "different",
                static_cast<unsigned long long>(attacker.base()));
    memory.storeU64(attacker, attacker.base(), kEvilVtable);

    try {
        const uint64_t target = virtualDispatch(memory, stale);
        std::printf("ERROR: dispatch to 0x%llx succeeded!\n",
                    static_cast<unsigned long long>(target));
    } catch (const cap::CapFault &fault) {
        std::printf("stale dispatch trapped: %s\n", fault.what());
        std::printf("use-after-reallocation DEFEATED\n");
    }
}

} // namespace

int
main()
{
    attackPlainAllocator();
    attackCherivoke();
    return 0;
}

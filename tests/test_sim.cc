/**
 * @file
 * Tests for the machine timing model and the experiment runner:
 * kernel bandwidth calibration (figure 7 targets), scale invariance,
 * and the shape of the headline results (figure 5 / 6 structure).
 */

#include <gtest/gtest.h>

#include "revoke/sweep_loop.hh"
#include "sim/experiment.hh"
#include "sim/machine.hh"

namespace cherivoke {
namespace sim {
namespace {

using revoke::SweepKernel;
using revoke::SweepStats;

double
pointerFreeBandwidth(SweepKernel kernel)
{
    // Bandwidth sweeping pointer-free memory: cycles/line from the
    // cost model against the x86 clock.
    const revoke::KernelCosts costs = revoke::defaultCosts(kernel);
    const double cycles = revoke::kernelCyclesForLine(costs, 0);
    return MachineProfile::x86().cpuHz / cycles * kLineBytes;
}

TEST(MachineModel, KernelBandwidthsMatchFigure7)
{
    const double peak = MachineProfile::x86().dramReadBytesPerSec;
    const double naive = pointerFreeBandwidth(SweepKernel::Naive);
    const double unrolled =
        pointerFreeBandwidth(SweepKernel::Unrolled);
    const double vec = pointerFreeBandwidth(SweepKernel::Vector);
    // Paper: naive ~28%, unrolled ~32%, AVX2 ~39% (~8 GiB/s).
    EXPECT_NEAR(naive / peak, 0.28, 0.04);
    EXPECT_NEAR(unrolled / peak, 0.32, 0.04);
    EXPECT_NEAR(vec / peak, 0.39, 0.04);
    EXPECT_LT(naive, unrolled);
    EXPECT_LT(unrolled, vec);
}

TEST(MachineModel, VectorKernelFlatInTagContent)
{
    const revoke::KernelCosts costs =
        revoke::defaultCosts(SweepKernel::Vector);
    EXPECT_DOUBLE_EQ(revoke::kernelCyclesForLine(costs, 0),
                     revoke::kernelCyclesForLine(costs, 4));
}

TEST(MachineModel, BranchyKernelSlowsWithTags)
{
    const revoke::KernelCosts costs =
        revoke::defaultCosts(SweepKernel::Naive);
    EXPECT_GT(revoke::kernelCyclesForLine(costs, 4),
              revoke::kernelCyclesForLine(costs, 0));
}

TEST(MachineModel, SweepSecondsRespectsComputeVsBandwidth)
{
    const MachineProfile &m = MachineProfile::x86();
    SweepStats stats;
    stats.linesSwept = 1 << 20; // 64 MiB
    stats.kernelCycles = 1e3;   // trivially compute-light
    const double t_bw = sweepSeconds(m, stats, 0, 1, 1.0);
    // Bandwidth-bound: roughly bytes / read bandwidth.
    EXPECT_NEAR(t_bw,
                static_cast<double>(stats.bytesSwept()) /
                        m.dramReadBytesPerSec +
                    m.sweepStartupSeconds,
                t_bw * 0.1);

    stats.kernelCycles = 1e12; // compute-bound
    const double t_cpu = sweepSeconds(m, stats, 0, 1, 1.0);
    EXPECT_NEAR(t_cpu, 1e12 / m.cpuHz + m.sweepStartupSeconds,
                1e-3);
}

TEST(MachineModel, ScaleUnscalesProportionalTermsOnly)
{
    const MachineProfile &m = MachineProfile::x86();
    SweepStats stats;
    stats.linesSwept = 1 << 14;
    stats.kernelCycles = 1e6;
    const double full = sweepSeconds(m, stats, 0, 2, 1.0);
    const double scaled = sweepSeconds(m, stats, 0, 2, 0.5);
    // Proportional part doubles; the 2-epoch startup does not.
    const double startup = 2 * m.sweepStartupSeconds;
    EXPECT_NEAR(scaled - startup, (full - startup) * 2.0, 1e-9);
}

TEST(MachineModel, FpgaProfileSlower)
{
    const MachineProfile &fpga = MachineProfile::cheriFpga();
    EXPECT_LT(fpga.cpuHz, MachineProfile::x86().cpuHz);
    EXPECT_GT(fpga.kernelCostScale, 1.0);
    EXPECT_FALSE(fpga.hierarchyConfig().llc.has_value())
        << "table 1: the FPGA system has no L3";
}

TEST(MachineModel, PaintSecondsScalesWithOps)
{
    alloc::PaintStats paint;
    paint.dwordOps = 1000;
    const double t1 =
        paintSeconds(MachineProfile::x86(), paint, 1.0);
    paint.dwordOps = 2000;
    const double t2 =
        paintSeconds(MachineProfile::x86(), paint, 1.0);
    EXPECT_NEAR(t2, 2 * t1, 1e-12);
}

class ExperimentTest : public ::testing::Test
{
  protected:
    static ExperimentConfig
    fastConfig()
    {
        ExperimentConfig cfg;
        cfg.scale = 1.0 / 128;
        cfg.durationSec = 0.4;
        return cfg;
    }
};

TEST_F(ExperimentTest, QuietBenchmarkHasNoOverhead)
{
    const BenchResult r = runBenchmark(
        workload::profileFor("bzip2"), fastConfig());
    EXPECT_NEAR(r.normalizedTime, 1.0, 0.01);
    EXPECT_NEAR(r.normalizedMemory, 1.0, 0.02);
    EXPECT_EQ(r.run.revoker.epochs, 0u);
}

TEST_F(ExperimentTest, XalancbmkIsTheWorstCase)
{
    const BenchResult xalan = runBenchmark(
        workload::profileFor("xalancbmk"), fastConfig());
    const BenchResult hmmer = runBenchmark(
        workload::profileFor("hmmer"), fastConfig());
    EXPECT_GT(xalan.normalizedTime, hmmer.normalizedTime);
    EXPECT_GT(xalan.normalizedTime, 1.10);
    EXPECT_LT(xalan.normalizedTime, 2.0)
        << "paper worst case is 1.51; ours should be the same order";
    EXPECT_LT(hmmer.normalizedTime, 1.05);
}

TEST_F(ExperimentTest, SweepDominatesForPointerHeavyWorkloads)
{
    const BenchResult r = runBenchmark(
        workload::profileFor("omnetpp"), fastConfig());
    EXPECT_GT(r.sweepOverhead, r.shadowOverhead)
        << "figure 6: sweeping dominates shadow maintenance";
    EXPECT_GT(r.sweepOverhead, 0.01);
}

TEST_F(ExperimentTest, ShadowMaintenanceIsMinor)
{
    // §6.1.2: "the net impact of shadow-space maintenance is minor
    // for all applications benchmarked."
    for (const char *name : {"dealII", "omnetpp", "xalancbmk"}) {
        const BenchResult r =
            runBenchmark(workload::profileFor(name), fastConfig());
        EXPECT_LT(r.shadowOverhead, 0.02) << name;
    }
}

TEST_F(ExperimentTest, AnalyticalModelPredictsSweepOverheadOrder)
{
    const BenchResult r = runBenchmark(
        workload::profileFor("omnetpp"), fastConfig());
    ASSERT_GT(r.predictedSweepOverhead, 0.0);
    // Model and measurement agree within a factor of ~3 (the paper
    // presents the equation as a "rough approximation" — §6.1.3 —
    // and it omits footprint fragmentation and per-sweep startup).
    EXPECT_LT(r.sweepOverhead / r.predictedSweepOverhead, 3.0);
    EXPECT_GT(r.sweepOverhead / r.predictedSweepOverhead, 0.33);
}

TEST_F(ExperimentTest, LargerQuarantineLowersOverhead)
{
    // Figure 9's first-order effect.
    ExperimentConfig low = fastConfig();
    low.quarantineFraction = 0.10;
    ExperimentConfig high = fastConfig();
    high.quarantineFraction = 1.00;
    const BenchResult r_low = runBenchmark(
        workload::profileFor("xalancbmk"), low);
    const BenchResult r_high = runBenchmark(
        workload::profileFor("xalancbmk"), high);
    EXPECT_GT(r_low.normalizedTime, r_high.normalizedTime);
    EXPECT_GT(r_high.normalizedMemory, r_low.normalizedMemory)
        << "time is bought with memory";
}

TEST_F(ExperimentTest, MemoryOverheadTracksQuarantine)
{
    const BenchResult r = runBenchmark(
        workload::profileFor("omnetpp"), fastConfig());
    EXPECT_GT(r.normalizedMemory, 1.05);
    EXPECT_LT(r.normalizedMemory, 1.6);
}

TEST_F(ExperimentTest, TrafficOverheadModest)
{
    // Figure 10: off-core traffic overhead is comparable to or lower
    // than the performance overhead (max ~16%).
    const BenchResult r = runBenchmark(
        workload::profileFor("dealII"), fastConfig());
    EXPECT_LT(r.trafficOverheadPct, 25.0);
}

} // namespace
} // namespace sim
} // namespace cherivoke

/**
 * @file
 * Tests for the run-length-compressed cache::TrafficLog: extent
 * formation, exact-sequence replay, engagement on real streaming
 * sweeps, and record/replay equality with the live serial sink.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "cache/traffic.hh"
#include "revoke/sweeper.hh"
#include "support/rng.hh"

namespace cherivoke {
namespace cache {
namespace {

/** Captures the raw event sequence for exact comparison. */
struct EventSink final : TrafficSink
{
    // kind, addr, size, flags-packed
    using Event = std::tuple<int, uint64_t, uint64_t, unsigned>;
    std::vector<Event> events;

    void
    access(uint64_t addr, uint64_t size, bool write) override
    {
        events.emplace_back(0, addr, size, write ? 1u : 0u);
    }
    void
    cloadTags(uint64_t line_addr, bool region_has_tags,
              bool prefetch_if_tagged, bool line_has_tags) override
    {
        events.emplace_back(1, line_addr, 0,
                            (region_has_tags ? 1u : 0u) |
                                (prefetch_if_tagged ? 2u : 0u) |
                                (line_has_tags ? 4u : 0u));
    }
    void
    revocationTagWrite(uint64_t line_addr) override
    {
        events.emplace_back(2, line_addr, 0, 0u);
    }
};

TEST(TrafficLogCompression, SequentialRunIsOneExtent)
{
    TrafficLog log;
    for (uint64_t i = 0; i < 1000; ++i)
        log.access(0x1000 + i * kLineBytes, kLineBytes, false);
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(log.eventCount(), 1000u);

    EventSink replayed;
    log.replayInto(replayed);
    ASSERT_EQ(replayed.events.size(), 1000u);
    for (uint64_t i = 0; i < 1000; ++i) {
        EXPECT_EQ(replayed.events[i],
                  EventSink::Event(0, 0x1000 + i * kLineBytes,
                                   kLineBytes, 0u));
    }
}

TEST(TrafficLogCompression, RepeatedAddressIsOneExtent)
{
    // Stride-0 runs: the sweep probes one hot shadow byte per
    // same-region capability.
    TrafficLog log;
    for (int i = 0; i < 500; ++i)
        log.access(0xbeef0, 1, false);
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(log.eventCount(), 500u);
    EventSink replayed;
    log.replayInto(replayed);
    ASSERT_EQ(replayed.events.size(), 500u);
    EXPECT_EQ(replayed.events.front(),
              EventSink::Event(0, 0xbeef0, 1, 0u));
    EXPECT_EQ(replayed.events.back(),
              EventSink::Event(0, 0xbeef0, 1, 0u));
}

TEST(TrafficLogCompression, AttributeChangeBreaksExtent)
{
    TrafficLog log;
    log.access(0x0, 64, false);
    log.access(0x40, 64, false);
    log.access(0x80, 64, true); // write: new extent
    log.cloadTags(0xc0, true, false, false);
    log.cloadTags(0x100, true, false, true); // flag flip: new extent
    EXPECT_EQ(log.eventCount(), 5u);
    EXPECT_EQ(log.size(), 4u);
}

TEST(TrafficLogCompression, RandomMixedSequenceReplaysExactly)
{
    Rng rng(4242);
    TrafficLog log;
    EventSink direct;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t addr = rng.nextBounded(1 << 20) * 16;
        switch (rng.nextBounded(3)) {
          case 0: {
            const bool write = rng.nextBool(0.3);
            const uint64_t size = rng.nextBool(0.5) ? 64 : 1;
            log.access(addr, size, write);
            direct.access(addr, size, write);
            break;
          }
          case 1: {
            const bool region = rng.nextBool(0.5);
            const bool line = rng.nextBool(0.2);
            log.cloadTags(addr, region, false, line);
            direct.cloadTags(addr, region, false, line);
            break;
          }
          default:
            log.revocationTagWrite(addr);
            direct.revocationTagWrite(addr);
        }
    }
    EXPECT_EQ(log.eventCount(), 5000u);
    EventSink replayed;
    log.replayInto(replayed);
    EXPECT_EQ(replayed.events, direct.events)
        << "replay must expand to the exact recorded sequence";
}

/** Build a deterministic pointered image with quarantined frees. */
void
buildImage(mem::AddressSpace &space,
           alloc::CherivokeAllocator &heap)
{
    Rng rng(321);
    std::vector<cap::Capability> live;
    for (int i = 0; i < 600; ++i) {
        const cap::Capability c =
            heap.malloc(rng.nextLogUniform(32, 2048));
        space.memory().writeCap(
            mem::kGlobalsBase + static_cast<uint64_t>(i) * 16, c);
        if (!live.empty() && rng.nextBool(0.5)) {
            const cap::Capability &other =
                live[rng.nextBounded(live.size())];
            space.memory().storeCap(other, other.base(), c);
        }
        live.push_back(c);
    }
    for (size_t i = 0; i < live.size(); i += 3)
        heap.free(live[i]);
}

TEST(TrafficLogCompression, RecordedSweepReplayMatchesLiveSerial)
{
    // The same image swept twice: once live into a hierarchy, once
    // recorded into a TrafficLog and replayed. Totals must be
    // identical — the record/replay path is what makes threaded
    // sweep traffic equal serial traffic.
    auto sweepWith = [](TrafficSink *sink, revoke::Sweeper &sweeper,
                        mem::AddressSpace &space,
                        alloc::CherivokeAllocator &heap) {
        revoke::SweepStats stats;
        const std::vector<uint64_t> pages =
            sweeper.buildWorklist(space, stats);
        stats += sweeper.sweepPageRange(space, heap.shadowMap(),
                                        pages, 0, pages.size(), sink);
        return stats;
    };

    revoke::SweepOptions opts;
    opts.useCloadTags = true;

    mem::AddressSpace live_space;
    alloc::CherivokeAllocator live_heap(live_space,
                                        alloc::CherivokeConfig{});
    buildImage(live_space, live_heap);
    live_heap.prepareSweep();
    Hierarchy live_hier;
    HierarchySink live_sink(live_hier);
    revoke::Sweeper live_sweeper(opts);
    const revoke::SweepStats live_stats =
        sweepWith(&live_sink, live_sweeper, live_space, live_heap);
    ASSERT_GT(live_stats.capsRevoked, 0u);

    mem::AddressSpace rec_space;
    alloc::CherivokeAllocator rec_heap(rec_space,
                                       alloc::CherivokeConfig{});
    buildImage(rec_space, rec_heap);
    rec_heap.prepareSweep();
    TrafficLog log;
    revoke::Sweeper rec_sweeper(opts);
    const revoke::SweepStats rec_stats =
        sweepWith(&log, rec_sweeper, rec_space, rec_heap);
    EXPECT_TRUE(rec_stats == live_stats);

    Hierarchy replay_hier;
    HierarchySink replay_sink(replay_hier);
    log.replayInto(replay_sink);

    EXPECT_EQ(replay_hier.dram().readBytes(),
              live_hier.dram().readBytes());
    EXPECT_EQ(replay_hier.dram().writeBytes(),
              live_hier.dram().writeBytes());
    EXPECT_EQ(replay_hier.offCoreLines(), live_hier.offCoreLines());

    // Even this dense, pointer-heavy micro image must compress: the
    // extent log holds fewer records than events.
    EXPECT_GT(log.eventCount(), 0u);
    EXPECT_LT(log.size() * 2, log.eventCount())
        << "compression should engage on a recorded sweep "
           "(records=" << log.size()
        << " events=" << log.eventCount() << ")";
}

TEST(TrafficLogCompression, StreamingSweepCompressesHeavily)
{
    // The paper's sweep shape: mostly tag-free pages scanned
    // sequentially with CLoadTags. One capability per page keeps
    // every page CapDirty (so nothing is PTE-eliminated) while 63 of
    // its 64 lines stream through as skipped extents.
    mem::AddressSpace space;
    const uint64_t heap = space.mmapHeap(2 * MiB);
    const cap::Capability root = space.rootCap();
    for (uint64_t page = 0; page < 2 * MiB / kPageBytes; ++page) {
        const uint64_t addr = heap + page * kPageBytes + 512;
        space.memory().writeCap(
            addr, root.setAddress(addr).setBounds(64));
    }
    alloc::ShadowMap shadow(space.memory()); // unpainted: scan only

    revoke::SweepOptions opts;
    opts.useCloadTags = true;
    revoke::Sweeper sweeper(opts);
    revoke::SweepStats stats;
    const std::vector<uint64_t> pages =
        sweeper.buildWorklist(space, stats);
    ASSERT_GE(pages.size(), 2 * MiB / kPageBytes);

    TrafficLog log;
    stats += sweeper.sweepPageRange(space, shadow, pages, 0,
                                    pages.size(), &log);
    EXPECT_GT(stats.linesSkippedTags, 0u);
    EXPECT_LE(log.size() * 8, log.eventCount())
        << "streaming sweeps must collapse sequential runs >= 8x "
           "(records=" << log.size()
        << " events=" << log.eventCount() << ")";

    // And the compressed log still replays the exact sequence.
    EventSink direct;
    revoke::Sweeper verify(opts);
    mem::AddressSpace space2;
    const uint64_t heap2 = space2.mmapHeap(2 * MiB);
    const cap::Capability root2 = space2.rootCap();
    for (uint64_t page = 0; page < 2 * MiB / kPageBytes; ++page) {
        const uint64_t addr = heap2 + page * kPageBytes + 512;
        space2.memory().writeCap(
            addr, root2.setAddress(addr).setBounds(64));
    }
    alloc::ShadowMap shadow2(space2.memory());
    revoke::SweepStats stats2;
    const std::vector<uint64_t> pages2 =
        verify.buildWorklist(space2, stats2);
    verify.sweepPageRange(space2, shadow2, pages2, 0, pages2.size(),
                          &direct);
    EventSink replayed;
    log.replayInto(replayed);
    EXPECT_EQ(replayed.events, direct.events);
}

} // namespace
} // namespace cache
} // namespace cherivoke

/**
 * @file
 * Unit tests for the support substrate: bit utilities, logging
 * channels, deterministic RNG, and unit formatting.
 */

#include <gtest/gtest.h>

#include <set>

#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/units.hh"

namespace cherivoke {
namespace {

TEST(Bitops, MaskLow)
{
    EXPECT_EQ(maskLow(0), 0u);
    EXPECT_EQ(maskLow(1), 1u);
    EXPECT_EQ(maskLow(4), 0xfu);
    EXPECT_EQ(maskLow(63), 0x7fffffffffffffffULL);
    EXPECT_EQ(maskLow(64), ~uint64_t{0});
}

TEST(Bitops, ExtractInsertRoundTrip)
{
    const uint64_t v = 0xdeadbeefcafebabeULL;
    for (unsigned lo : {0u, 4u, 17u, 32u, 57u}) {
        const unsigned width = 7;
        const uint64_t field = bitsExtract(v, lo, width);
        const uint64_t rebuilt = bitsInsert(0, lo, width, field);
        EXPECT_EQ(bitsExtract(rebuilt, lo, width), field);
    }
}

TEST(Bitops, InsertPreservesOtherBits)
{
    const uint64_t v = ~uint64_t{0};
    const uint64_t r = bitsInsert(v, 8, 8, 0);
    EXPECT_EQ(r, v & ~(uint64_t{0xff} << 8));
}

TEST(Bitops, AlignHelpers)
{
    EXPECT_EQ(alignUp(0, 16), 0u);
    EXPECT_EQ(alignUp(1, 16), 16u);
    EXPECT_EQ(alignUp(16, 16), 16u);
    EXPECT_EQ(alignUp(17, 16), 32u);
    EXPECT_EQ(alignDown(17, 16), 16u);
    EXPECT_EQ(alignDown(15, 16), 0u);
    EXPECT_TRUE(isAligned(64, 16));
    EXPECT_FALSE(isAligned(65, 16));
}

TEST(Bitops, PowersAndLogs)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(msbIndex(0), -1);
    EXPECT_EQ(msbIndex(1), 0);
    EXPECT_EQ(msbIndex(4096), 12);
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(4095), 12u);
    EXPECT_EQ(log2Ceil(4096), 12u);
    EXPECT_EQ(log2Ceil(4097), 13u);
    EXPECT_EQ(log2Floor(4097), 12u);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom %d", 42), PanicError);
    EXPECT_THROW(panic("plain"), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config %s", "x"), FatalError);
}

TEST(Logging, PanicMessageContainsFormattedText)
{
    try {
        panic("value=%d", 7);
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value=7"),
                  std::string::npos);
    }
}

TEST(Logging, AssertMacroFiresOnFalse)
{
    EXPECT_THROW(CHERIVOKE_ASSERT(1 == 2), PanicError);
    EXPECT_NO_THROW(CHERIVOKE_ASSERT(2 == 2));
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundedStaysInBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = rng.nextRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u) << "all values in range should appear";
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(99);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliRoughlyFair)
{
    Rng rng(42);
    int heads = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        heads += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.03);
}

TEST(Rng, LogUniformWithinBounds)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = rng.nextLogUniform(16, 65536);
        EXPECT_GE(v, 16u);
        EXPECT_LE(v, 65536u);
    }
}

TEST(Rng, ExponentialMeanApproximate)
{
    Rng rng(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.25);
}

TEST(Rng, WeightedRespectsZeroWeight)
{
    Rng rng(3);
    std::vector<double> w{0.0, 1.0, 0.0};
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(rng.nextWeighted(w), 1u);
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2 * KiB), "2.00 KiB");
    EXPECT_EQ(formatBytes(25 * MiB / 10), "2.50 MiB");
    EXPECT_EQ(formatBytes(3 * GiB), "3.00 GiB");
}

TEST(Units, GranuleConstantsConsistent)
{
    EXPECT_EQ(kGranuleBytes, 16u);
    EXPECT_EQ(uint64_t{1} << kGranuleShift, kGranuleBytes);
    EXPECT_EQ(kGranulesPerPage, 256u);
    EXPECT_EQ(kCapsPerLine, 4u);
}

} // namespace
} // namespace cherivoke

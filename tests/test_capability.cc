/**
 * @file
 * Unit tests for the Capability type: monotonic derivation, tag
 * semantics, packing, and the sweeper's base fast path.
 */

#include <gtest/gtest.h>

#include "cap/capability.hh"
#include "support/rng.hh"

namespace cherivoke {
namespace cap {
namespace {

Capability
heapCap(uint64_t base, uint64_t len)
{
    return Capability::root().setAddress(base).setBounds(len)
        .andPerms(kPermsData);
}

TEST(Capability, DefaultIsUntaggedNull)
{
    Capability c;
    EXPECT_FALSE(c.tag());
    EXPECT_EQ(c.address(), 0u);
    EXPECT_EQ(c.perms(), 0u);
}

TEST(Capability, RootSpansEverything)
{
    const Capability root = Capability::root();
    EXPECT_TRUE(root.tag());
    EXPECT_EQ(root.base(), 0u);
    EXPECT_EQ(root.top(), u128{1} << 64);
    EXPECT_TRUE(root.hasPerm(kPermsAll));
    EXPECT_TRUE(root.inBounds(0xdeadbeef, 1024));
}

TEST(Capability, SetBoundsNarrows)
{
    const Capability c = heapCap(0x1000, 256);
    EXPECT_TRUE(c.tag());
    EXPECT_EQ(c.base(), 0x1000u);
    EXPECT_EQ(static_cast<uint64_t>(c.length()), 256u);
    EXPECT_EQ(c.address(), 0x1000u);
    EXPECT_TRUE(c.inBounds(0x1000, 256));
    EXPECT_FALSE(c.inBounds(0x1000, 257));
    EXPECT_FALSE(c.inBounds(0xfff, 1));
}

TEST(Capability, SetBoundsCannotWiden)
{
    const Capability c = heapCap(0x1000, 256);
    EXPECT_THROW(c.setBounds(257), CapFault);
    EXPECT_THROW(c.setAddress(0x0fff).setBounds(16), CapFault);
    // Widening from inside must also fail.
    EXPECT_THROW(c.setAddress(0x1080).setBounds(256), CapFault);
}

TEST(Capability, SetBoundsOnUntaggedFaults)
{
    Capability c = heapCap(0x1000, 256);
    c.clearTag();
    try {
        c.setBounds(16);
        FAIL() << "expected CapFault";
    } catch (const CapFault &f) {
        EXPECT_EQ(f.kind(), FaultKind::Tag);
    }
}

TEST(Capability, MonotonicityFaultKind)
{
    const Capability c = heapCap(0x1000, 256);
    try {
        c.setBounds(512);
        FAIL() << "expected CapFault";
    } catch (const CapFault &f) {
        EXPECT_EQ(f.kind(), FaultKind::Monotonicity);
    }
}

TEST(Capability, SubObjectDerivation)
{
    const Capability obj = heapCap(0x2000, 4096);
    const Capability field = obj.setAddress(0x2100).setBounds(64);
    EXPECT_EQ(field.base(), 0x2100u);
    EXPECT_EQ(static_cast<uint64_t>(field.length()), 64u);
    EXPECT_TRUE(field.tag());
}

TEST(Capability, AndPermsOnlyRemoves)
{
    const Capability c = heapCap(0x1000, 64);
    const Capability ro = c.andPerms(PermLoad | PermLoadCap);
    EXPECT_TRUE(ro.hasPerm(PermLoad));
    EXPECT_FALSE(ro.hasPerm(PermStore));
    // Re-anding cannot restore.
    const Capability back = ro.andPerms(kPermsAll);
    EXPECT_FALSE(back.hasPerm(PermStore));
}

TEST(Capability, AddressWanderStaysTaggedWithinRepresentableSpace)
{
    const Capability c = heapCap(0x8000, 128);
    // Slightly past the end: representable, still tagged, same bounds.
    const Capability past = c.incAddress(130);
    EXPECT_TRUE(past.tag());
    EXPECT_EQ(past.base(), 0x8000u);
    EXPECT_FALSE(past.inBounds(past.address(), 1));
}

TEST(Capability, FarWanderClearsTag)
{
    const Capability c = heapCap(0x8000, 128);
    const Capability far = c.incAddress(int64_t{1} << 40);
    EXPECT_FALSE(far.tag());
}

TEST(Capability, UntaggedAddressArithmeticIsPlainData)
{
    Capability c = heapCap(0x8000, 128);
    c.clearTag();
    const Capability moved = c.incAddress(1 << 20);
    EXPECT_FALSE(moved.tag());
    EXPECT_EQ(moved.address(), 0x8000u + (1u << 20));
}

TEST(Capability, PackUnpackRoundTrip)
{
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const uint64_t base =
            (rng.next() >> 20) & ~uint64_t{0xf};
        const uint64_t len = rng.nextLogUniform(16, 1 << 20);
        const Capability c =
            Capability::root().setAddress(base).setBounds(len)
                .andPerms(kPermsData);
        const Capability r =
            Capability::unpack(c.packLow(), c.packHigh(), c.tag());
        EXPECT_EQ(r, c);
        EXPECT_EQ(r.base(), c.base());
        EXPECT_EQ(r.top(), c.top());
        EXPECT_EQ(r.perms(), c.perms());
    }
}

TEST(Capability, DecodeBaseFastPathMatchesFullDecode)
{
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        const uint64_t base = (rng.next() >> 18) & ~uint64_t{0xf};
        const uint64_t len = rng.nextLogUniform(16, 1 << 24);
        const Capability c =
            Capability::root().setAddress(base).setBounds(len);
        EXPECT_EQ(Capability::decodeBase(c.packLow(), c.packHigh()),
                  c.base());
    }
}

TEST(Capability, BaseStaysInOriginalAllocationUnderDerivation)
{
    // Paper §3.2 fn 2: any capability derived from an allocation has
    // its base within that allocation; the shadow-map lookup keys on
    // the base.
    Rng rng(99);
    const uint64_t alloc_base = 0x100000;
    const uint64_t alloc_len = 8192;
    const Capability obj = heapCap(alloc_base, alloc_len);
    for (int i = 0; i < 300; ++i) {
        const uint64_t off = rng.nextBounded(alloc_len);
        Capability derived = obj.setAddress(alloc_base + off);
        const uint64_t remain = alloc_len - off;
        if (rng.nextBool(0.5))
            derived = derived.setBounds(rng.nextRange(1, remain));
        ASSERT_TRUE(derived.tag());
        EXPECT_GE(derived.base(), alloc_base);
        EXPECT_LE(derived.top(), u128{alloc_base} + alloc_len);
    }
}

TEST(Capability, SetBoundsExactFaultsOnUnrepresentable)
{
    // A huge, misaligned request inside root bounds.
    const Capability c =
        Capability::root().setAddress((1ULL << 33) + 16);
    EXPECT_THROW(c.setBoundsExact((1ULL << 32) + 1), CapFault);
}

TEST(Capability, ToStringMentionsBoundsAndTag)
{
    const Capability c = heapCap(0x1000, 64);
    const std::string s = c.toString();
    EXPECT_NE(s.find("0x1000"), std::string::npos);
    EXPECT_NE(s.find("tag=1"), std::string::npos);
}

} // namespace
} // namespace cap
} // namespace cherivoke

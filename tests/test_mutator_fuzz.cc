/**
 * @file
 * Fuzz/stress tests (tier 2) for the multi-threaded mutator
 * front-end: seeded random traces raced under random thread counts,
 * batch capacities, and epoch-boundary placements, asserting that
 * (a) every race replays bit-identically run over run, (b) the
 * modelled totals are invariant in the fan-out, and (c) the full
 * multi-tenant pipeline produces bit-identical modelled statistics
 * with 1 and M mutator threads. The queue also gets a dedicated
 * randomized producer/consumer hammering with single-entry batches —
 * the configuration with the most node churn and the most stub
 * recycling.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/experiment.hh"
#include "support/rng.hh"
#include "tenant/mutator_threads.hh"
#include "tenant/remote_queue.hh"
#include "workload/synth.hh"

using namespace cherivoke;

namespace {

/** A random alloc/free/store trace with controlled liveness. */
workload::Trace
fuzzTrace(uint64_t seed, size_t ops)
{
    Rng rng(seed);
    workload::Trace trace;
    std::vector<uint64_t> live;
    uint64_t next_id = 0;
    for (size_t i = 0; i < ops; ++i) {
        workload::TraceOp op;
        const uint64_t roll = rng.nextBounded(100);
        if (roll < 45 || live.empty()) {
            op.kind = workload::OpKind::Malloc;
            // Occasionally re-malloc a live id: the ineffective-op
            // path must partition identically on every thread count.
            if (!live.empty() && rng.nextBounded(16) == 0) {
                op.id = live[rng.nextBounded(live.size())];
            } else {
                op.id = next_id++;
                live.push_back(op.id);
            }
            op.size = 16 + rng.nextBounded(512);
        } else if (roll < 85) {
            op.kind = workload::OpKind::Free;
            if (rng.nextBounded(8) == 0) {
                op.id = next_id + 1000 + rng.nextBounded(50); // dead id
            } else {
                const size_t pick = rng.nextBounded(live.size());
                op.id = live[pick];
                live[pick] = live.back();
                live.pop_back();
            }
        } else {
            op.kind = workload::OpKind::StoreData;
            op.dst = rng.nextBounded(next_id + 1);
        }
        trace.ops.push_back(op);
    }
    return trace;
}

/** Random sorted epoch boundaries over [0, ops]. */
std::vector<uint64_t>
fuzzBoundaries(Rng &rng, size_t ops)
{
    std::vector<uint64_t> bounds;
    const size_t n = rng.nextBounded(6);
    for (size_t i = 0; i < n; ++i)
        bounds.push_back(rng.nextBounded(ops + 1));
    std::sort(bounds.begin(), bounds.end());
    return bounds;
}

} // namespace

TEST(MutatorFuzz, RandomRacesReplayBitIdentically)
{
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed * 977);
        const workload::Trace trace = fuzzTrace(seed, 6000);
        tenant::MutatorConfig cfg;
        cfg.threads = 1 + static_cast<unsigned>(rng.nextBounded(7));
        cfg.remoteBatch = 1 + static_cast<unsigned>(rng.nextBounded(64));
        const std::vector<uint64_t> bounds =
            fuzzBoundaries(rng, trace.ops.size());

        const auto a =
            tenant::runMutatorRace(trace, SIZE_MAX, cfg, bounds);
        const auto b =
            tenant::runMutatorRace(trace, SIZE_MAX, cfg, bounds);
        ASSERT_EQ(a.fingerprint(), b.fingerprint())
            << "seed " << seed << " threads " << cfg.threads
            << " batch " << cfg.remoteBatch;

        // Fan-out invariance against the serial front-end.
        tenant::MutatorConfig serial;
        serial.remoteBatch = cfg.remoteBatch;
        const auto s =
            tenant::runMutatorRace(trace, SIZE_MAX, serial, bounds);
        ASSERT_EQ(s.effectiveMallocs, a.effectiveMallocs);
        ASSERT_EQ(s.effectiveFrees, a.effectiveFrees);
        ASSERT_EQ(s.quarantinedBytes, a.quarantinedBytes);
        ASSERT_EQ(s.epochBarriers, a.epochBarriers);
        ASSERT_EQ(a.localFrees + a.remoteFrees, s.localFrees);
    }
}

TEST(MutatorFuzz, SingleEntryBatchChurn)
{
    // remoteBatch=1 maximizes message count: every remote free is a
    // queue node, so this is the allocator/stub-recycling stress.
    for (uint64_t seed = 50; seed < 54; ++seed) {
        const workload::Trace trace = fuzzTrace(seed, 4000);
        tenant::MutatorConfig cfg;
        cfg.threads = 5;
        cfg.remoteBatch = 1;
        const auto r = tenant::runMutatorRace(trace, SIZE_MAX, cfg);
        ASSERT_EQ(r.batches, r.remoteFrees);
        const auto r2 = tenant::runMutatorRace(trace, SIZE_MAX, cfg);
        ASSERT_EQ(r.fingerprint(), r2.fingerprint());
    }
}

TEST(MutatorFuzz, QueueHammerRandomizedProducers)
{
    Rng rng(1234);
    for (int round = 0; round < 3; ++round) {
        tenant::RemoteFreeQueue q;
        const unsigned producers = 2 + round;
        const uint64_t per = 2000;
        std::vector<std::thread> threads;
        for (unsigned p = 0; p < producers; ++p) {
            const uint64_t jitter = rng.nextBounded(16);
            threads.emplace_back([&q, p, jitter] {
                for (uint64_t s = 0; s < per; ++s) {
                    auto b =
                        std::make_unique<tenant::FreeBatch>(p, 1);
                    b->seq = s;
                    b->entries.push_back(
                        tenant::RemoteFree{s, jitter});
                    q.enqueue(std::move(b));
                    if ((s & 0xff) == jitter)
                        std::this_thread::yield();
                }
            });
        }
        uint64_t got = 0, entries = 0;
        std::vector<uint64_t> next_seq(producers, 0);
        while (got < producers * per) {
            auto b = q.tryDequeue();
            if (!b)
                continue;
            ASSERT_EQ(b->seq, next_seq[b->producer]);
            ++next_seq[b->producer];
            entries += b->entries.size();
            ++got;
        }
        for (auto &t : threads)
            t.join();
        ASSERT_TRUE(q.drained());
        ASSERT_EQ(entries, producers * per);
    }
}

TEST(MutatorFuzz, FullPipelineParityAcrossThreadCounts)
{
    // The end-to-end gate: the complete multi-tenant benchmark's
    // modelled outputs are bit-identical with 1 and 4 mutator
    // threads per tenant.
    auto run = [](unsigned threads) {
        sim::ExperimentConfig cfg;
        cfg.scale = 1.0 / 512;
        cfg.durationSec = 0.4;
        cfg.tenants = 2;
        cfg.mutatorThreads = threads;
        cfg.remoteBatch = 8;
        return sim::runMultiTenantBenchmark(
            workload::profileFor("dealII"), cfg);
    };
    const sim::MultiTenantBenchResult serial = run(1);
    const sim::MultiTenantBenchResult threaded = run(4);

    EXPECT_EQ(serial.run.totalOps, threaded.run.totalOps);
    EXPECT_EQ(serial.run.allocCalls, threaded.run.allocCalls);
    EXPECT_EQ(serial.run.freedBytes, threaded.run.freedBytes);
    EXPECT_EQ(serial.run.engine.epochs, threaded.run.engine.epochs);
    EXPECT_EQ(serial.run.engine.sweep.capsRevoked,
              threaded.run.engine.sweep.capsRevoked);
    EXPECT_EQ(serial.run.peakAggQuarantineBytes,
              threaded.run.peakAggQuarantineBytes);
    EXPECT_DOUBLE_EQ(serial.shadowOverhead, threaded.shadowOverhead);
    EXPECT_EQ(serial.sweepDramBytes, threaded.sweepDramBytes);
    ASSERT_EQ(serial.run.tenants.size(), threaded.run.tenants.size());
    for (size_t i = 0; i < serial.run.tenants.size(); ++i) {
        EXPECT_EQ(serial.run.tenants[i].run.peakLiveBytes,
                  threaded.run.tenants[i].run.peakLiveBytes);
        EXPECT_EQ(serial.run.tenants[i].mutator.epochBarriers,
                  threaded.run.tenants[i].mutator.epochBarriers);
    }
    EXPECT_GT(threaded.run.mutatorRemoteFrees, 0u);
}

/**
 * @file
 * Unit and property tests for the dlmalloc-style allocator: sizing,
 * alignment, coalescing, bins, top growth, realloc semantics, and the
 * boundary-tag invariants under randomised workloads.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "alloc/dlmalloc.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace cherivoke {
namespace alloc {
namespace {

using cap::Capability;

class DlAllocatorTest : public ::testing::Test
{
  protected:
    DlAllocatorTest() : alloc(space) {}

    mem::AddressSpace space;
    DlAllocator alloc;
};

TEST_F(DlAllocatorTest, MallocReturnsBoundedTaggedCap)
{
    const Capability c = alloc.malloc(100);
    EXPECT_TRUE(c.tag());
    EXPECT_EQ(static_cast<uint64_t>(c.length()), 100u);
    EXPECT_EQ(c.address(), c.base());
    EXPECT_TRUE(c.hasPerm(cap::PermLoad | cap::PermStore));
    EXPECT_FALSE(c.hasPerm(cap::PermExecute));
}

TEST_F(DlAllocatorTest, PayloadIs16ByteAligned)
{
    for (uint64_t size : {1u, 7u, 16u, 33u, 100u, 4097u}) {
        const Capability c = alloc.malloc(size);
        EXPECT_TRUE(isAligned(c.base(), 16)) << "size=" << size;
    }
}

TEST_F(DlAllocatorTest, ZeroSizeGetsMinimalAllocation)
{
    const Capability c = alloc.malloc(0);
    EXPECT_TRUE(c.tag());
    EXPECT_GE(alloc.usableSize(c.base()), 16u);
}

TEST_F(DlAllocatorTest, DistinctAllocationsDisjoint)
{
    const Capability a = alloc.malloc(64);
    const Capability b = alloc.malloc(64);
    const bool disjoint =
        a.top() <= b.base() || b.top() <= a.base();
    EXPECT_TRUE(disjoint);
}

TEST_F(DlAllocatorTest, UsableSizeAtLeastRequested)
{
    for (uint64_t size : {1u, 16u, 24u, 100u, 1000u, 100000u}) {
        const Capability c = alloc.malloc(size);
        EXPECT_GE(alloc.usableSize(c.base()), size);
    }
}

TEST_F(DlAllocatorTest, MemoryIsWritableThroughCap)
{
    const Capability c = alloc.malloc(64);
    auto &memory = space.memory();
    memory.storeU64(c, c.base(), 0x1122334455667788ULL);
    EXPECT_EQ(memory.loadU64(c, c.base()), 0x1122334455667788ULL);
}

TEST_F(DlAllocatorTest, FreeRecyclesExactSize)
{
    const Capability a = alloc.malloc(64);
    const uint64_t addr = a.base();
    alloc.free(a);
    const Capability b = alloc.malloc(64);
    EXPECT_EQ(b.base(), addr) << "exact-size bin should recycle";
}

TEST_F(DlAllocatorTest, DoubleFreeFaults)
{
    const Capability a = alloc.malloc(64);
    alloc.free(a);
    EXPECT_THROW(alloc.free(a), FatalError);
}

TEST_F(DlAllocatorTest, FreeUntaggedCapFaults)
{
    Capability a = alloc.malloc(64);
    a.clearTag();
    EXPECT_THROW(alloc.free(a), FatalError);
}

TEST_F(DlAllocatorTest, FreeOfNonHeapAddressFaults)
{
    EXPECT_THROW(alloc.freeAddr(mem::kStackBase + 64), FatalError);
}

TEST_F(DlAllocatorTest, CoalescingMergesNeighbours)
{
    // Allocate three in a row, free outer two, then the middle: the
    // result should serve one large allocation at the first address.
    const Capability a = alloc.malloc(96);
    const Capability b = alloc.malloc(96);
    const Capability c = alloc.malloc(96);
    const Capability guard = alloc.malloc(96); // keep top away
    (void)guard;
    const uint64_t first = a.base();
    alloc.free(a);
    alloc.free(c);
    alloc.free(b);
    alloc.validateHeap();
    const Capability big = alloc.malloc(3 * 96 + 32);
    EXPECT_EQ(big.base(), first)
        << "three coalesced chunks should satisfy a larger request";
}

TEST_F(DlAllocatorTest, LiveBytesTracksAllocFree)
{
    EXPECT_EQ(alloc.liveBytes(), 0u);
    const Capability a = alloc.malloc(100);
    const uint64_t live_after_a = alloc.liveBytes();
    EXPECT_GE(live_after_a, 100u);
    const Capability b = alloc.malloc(50);
    EXPECT_GT(alloc.liveBytes(), live_after_a);
    alloc.free(b);
    EXPECT_EQ(alloc.liveBytes(), live_after_a);
    alloc.free(a);
    EXPECT_EQ(alloc.liveBytes(), 0u);
}

TEST_F(DlAllocatorTest, TopGrowsOnDemand)
{
    const uint64_t before = alloc.footprintBytes();
    std::vector<Capability> caps;
    for (int i = 0; i < 40; ++i)
        caps.push_back(alloc.malloc(256 * KiB));
    EXPECT_GT(alloc.footprintBytes(), before);
    EXPECT_GT(alloc.counters().value("alloc.extends"), 0u);
    alloc.validateHeap();
}

TEST_F(DlAllocatorTest, CallocZeroes)
{
    // Dirty some memory, free it, calloc over it.
    Capability a = alloc.malloc(256);
    auto &memory = space.memory();
    for (int i = 0; i < 32; ++i)
        memory.storeU64(a, a.base() + 8 * i, ~uint64_t{0});
    alloc.free(a);
    const Capability z = alloc.calloc(32, 8);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(memory.loadU64(z, z.base() + 8 * i), 0u);
}

TEST_F(DlAllocatorTest, CallocOverflowPanics)
{
    EXPECT_THROW(alloc.calloc(~uint64_t{0} / 8, 16), PanicError);
}

TEST_F(DlAllocatorTest, ReallocGrowCopiesData)
{
    Capability a = alloc.malloc(64);
    auto &memory = space.memory();
    memory.storeU64(a, a.base(), 0xabcdef);
    (void)alloc.malloc(32); // block in-place growth
    const Capability b = alloc.realloc(a, 4096);
    EXPECT_GE(static_cast<uint64_t>(b.length()), 4096u);
    EXPECT_EQ(memory.loadU64(b, b.base()), 0xabcdefu);
    alloc.validateHeap();
}

TEST_F(DlAllocatorTest, ReallocPreservesStoredCapabilities)
{
    Capability a = alloc.malloc(64);
    const Capability inner = alloc.malloc(32);
    auto &memory = space.memory();
    memory.storeCap(a, a.base() + 16, inner);
    (void)alloc.malloc(32);
    const Capability b = alloc.realloc(a, 8192);
    const Capability loaded = memory.loadCap(b, b.base() + 16);
    EXPECT_TRUE(loaded.tag()) << "realloc must not strip tags";
    EXPECT_EQ(loaded, inner);
}

TEST_F(DlAllocatorTest, ReallocShrinkKeepsAddress)
{
    Capability a = alloc.malloc(4096);
    const uint64_t addr = a.base();
    const Capability b = alloc.realloc(a, 64);
    EXPECT_EQ(b.base(), addr);
    EXPECT_EQ(static_cast<uint64_t>(b.length()), 64u);
    alloc.validateHeap();
}

TEST_F(DlAllocatorTest, ReallocInPlaceAtTop)
{
    const Capability a = alloc.malloc(64);
    const Capability b = alloc.realloc(a, 256);
    EXPECT_EQ(b.base(), a.base())
        << "chunk adjacent to top should grow in place";
}

TEST_F(DlAllocatorTest, LargeAllocationGetsRepresentableBounds)
{
    // 8 MiB needs alignment under CC-46.
    const uint64_t size = 8 * MiB + 123;
    const Capability c = alloc.malloc(size);
    EXPECT_TRUE(c.tag());
    EXPECT_GE(static_cast<uint64_t>(c.length()), size);
    // Bounds must be exact (no rounding beyond what malloc padded).
    const uint64_t mask =
        cap::representableAlignmentMask(static_cast<uint64_t>(
            c.length()));
    if (mask != ~uint64_t{0}) {
        EXPECT_TRUE(isAligned(c.base(), ~mask + 1));
    }
    alloc.validateHeap();
}

TEST_F(DlAllocatorTest, WalkHeapSeesAllocatedChunks)
{
    const Capability a = alloc.malloc(64);
    const Capability b = alloc.malloc(128);
    alloc.free(a);
    const auto chunks = alloc.walkHeap();
    ASSERT_GE(chunks.size(), 3u);
    EXPECT_TRUE(chunks.back().isTop);
    uint64_t in_use = 0, free_chunks = 0;
    for (const auto &ch : chunks) {
        if (ch.isTop)
            continue;
        (ch.cinuse ? in_use : free_chunks) += 1;
    }
    EXPECT_EQ(in_use, 1u);
    EXPECT_EQ(free_chunks, 1u);
    (void)b;
}

TEST_F(DlAllocatorTest, ValidateDetectsNothingOnHealthyHeap)
{
    for (int i = 0; i < 50; ++i)
        alloc.malloc(32 + i * 8);
    EXPECT_NO_THROW(alloc.validateHeap());
}

/** Randomised malloc/free/realloc soak with heap validation. */
class DlAllocatorSoak : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DlAllocatorSoak, InvariantsHoldUnderRandomWorkload)
{
    mem::AddressSpace space;
    DlAllocator alloc(space);
    Rng rng(GetParam());
    std::map<uint64_t, Capability> live; // by base

    for (int op = 0; op < 4000; ++op) {
        const double r = rng.nextDouble();
        if (r < 0.55 || live.empty()) {
            const uint64_t size = rng.nextLogUniform(1, 64 * KiB);
            const Capability c = alloc.malloc(size);
            EXPECT_GE(alloc.usableSize(c.base()), size);
            // No overlap with any live allocation.
            auto it = live.upper_bound(c.base());
            if (it != live.end()) {
                EXPECT_LE(c.top(), it->second.base());
            }
            if (it != live.begin()) {
                --it;
                EXPECT_LE(it->second.top(), c.base());
            }
            live.emplace(c.base(), c);
        } else if (r < 0.9) {
            auto it = live.begin();
            std::advance(it, rng.nextBounded(live.size()));
            alloc.free(it->second);
            live.erase(it);
        } else {
            auto it = live.begin();
            std::advance(it, rng.nextBounded(live.size()));
            const Capability moved = alloc.realloc(
                it->second, rng.nextLogUniform(1, 16 * KiB));
            live.erase(it);
            live.emplace(moved.base(), moved);
        }
        if (op % 500 == 0)
            alloc.validateHeap();
    }
    alloc.validateHeap();

    // Free everything: the heap should collapse back into top.
    for (auto &[base, c] : live)
        alloc.free(c);
    alloc.validateHeap();
    EXPECT_EQ(alloc.liveBytes(), 0u);
    const auto chunks = alloc.walkHeap();
    ASSERT_EQ(chunks.size(), 1u)
        << "all memory should coalesce back into the top chunk";
    EXPECT_TRUE(chunks[0].isTop);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DlAllocatorSoak,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

} // namespace
} // namespace alloc
} // namespace cherivoke

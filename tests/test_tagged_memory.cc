/**
 * @file
 * Unit tests for tagged memory: tag propagation, tag clearing on data
 * overwrite, CapDirty traps, checked CheriABI accesses, and the
 * CLoadTags line-mask path.
 */

#include <gtest/gtest.h>

#include "cap/capability.hh"
#include "mem/tagged_memory.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace mem {
namespace {

using cap::CapFault;
using cap::Capability;
using cap::FaultKind;

class TaggedMemoryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        mem.pageTable().map(kBase, 16 * kPageBytes,
                            ProtRead | ProtWrite);
    }

    Capability
    capTo(uint64_t base, uint64_t len)
    {
        return Capability::root().setAddress(base).setBounds(len)
            .andPerms(cap::kPermsData);
    }

    static constexpr uint64_t kBase = 0x100000;
    TaggedMemory mem;
};

TEST_F(TaggedMemoryTest, DataRoundTrip)
{
    mem.writeU64(kBase, 0xdeadbeef12345678ULL);
    EXPECT_EQ(mem.readU64(kBase), 0xdeadbeef12345678ULL);
}

TEST_F(TaggedMemoryTest, UntouchedMappedMemoryReadsZero)
{
    EXPECT_EQ(mem.readU64(kBase + 0x800), 0u);
    EXPECT_FALSE(mem.readTag(kBase + 0x800));
}

TEST_F(TaggedMemoryTest, UnmappedAccessFaults)
{
    EXPECT_THROW(mem.readU64(0x10), CapFault);
    EXPECT_THROW(mem.writeU64(0x10, 1), CapFault);
}

TEST_F(TaggedMemoryTest, CrossPageWriteAndRead)
{
    std::vector<uint8_t> buf(kPageBytes + 128, 0xab);
    mem.writeBytes(kBase + kPageBytes - 64, buf.data(), buf.size());
    std::vector<uint8_t> out(buf.size());
    mem.readBytes(kBase + kPageBytes - 64, out.data(), out.size());
    EXPECT_EQ(buf, out);
}

TEST_F(TaggedMemoryTest, CapStoreSetsTag)
{
    const Capability c = capTo(kBase, 64);
    mem.writeCap(kBase + 0x100, c);
    EXPECT_TRUE(mem.readTag(kBase + 0x100));
    const Capability r = mem.readCap(kBase + 0x100);
    EXPECT_TRUE(r.tag());
    EXPECT_EQ(r, c);
}

TEST_F(TaggedMemoryTest, MisalignedCapAccessFaults)
{
    const Capability c = capTo(kBase, 64);
    EXPECT_THROW(mem.writeCap(kBase + 8, c), CapFault);
    EXPECT_THROW(mem.readCap(kBase + 4), CapFault);
}

TEST_F(TaggedMemoryTest, DataOverwriteClearsTag)
{
    const Capability c = capTo(kBase, 64);
    mem.writeCap(kBase + 0x100, c);
    ASSERT_TRUE(mem.readTag(kBase + 0x100));
    // Any byte within the granule kills the tag (§2.2).
    mem.writeU64(kBase + 0x108, 42);
    EXPECT_FALSE(mem.readTag(kBase + 0x100));
    // The data itself is untouched apart from the written word.
    const Capability r = mem.readCap(kBase + 0x100);
    EXPECT_FALSE(r.tag());
    EXPECT_EQ(mem.counters().value("mem.tags_cleared_by_overwrite"), 1u);
}

TEST_F(TaggedMemoryTest, FillClearsTagsAcrossRange)
{
    const Capability c = capTo(kBase, 64);
    for (int i = 0; i < 4; ++i)
        mem.writeCap(kBase + 0x200 + i * 16, c);
    mem.fill(kBase + 0x200, 0, 64);
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(mem.readTag(kBase + 0x200 + i * 16));
}

TEST_F(TaggedMemoryTest, UntaggedCapStoreClearsTag)
{
    const Capability c = capTo(kBase, 64);
    mem.writeCap(kBase + 0x300, c);
    mem.writeCap(kBase + 0x300, c.withTagCleared());
    EXPECT_FALSE(mem.readTag(kBase + 0x300));
}

TEST_F(TaggedMemoryTest, CapDirtyTrapCountedOncePerPage)
{
    const Capability c = capTo(kBase, 64);
    mem.writeCap(kBase, c);
    mem.writeCap(kBase + 16, c);
    EXPECT_EQ(mem.counters().value("mem.capdirty_traps"), 1u);
    mem.writeCap(kBase + kPageBytes, c);
    EXPECT_EQ(mem.counters().value("mem.capdirty_traps"), 2u);
    EXPECT_EQ(mem.pageTable().capDirtyCount(), 2u);
}

TEST_F(TaggedMemoryTest, CapStoreInhibitFaults)
{
    mem.pageTable().map(0x900000, kPageBytes, ProtRead | ProtWrite,
                        /*cap_store_inhibit=*/true);
    const Capability c = capTo(kBase, 64);
    try {
        mem.writeCap(0x900000, c);
        FAIL() << "expected CapFault";
    } catch (const CapFault &f) {
        EXPECT_EQ(f.kind(), FaultKind::CapStoreInhibit);
    }
    // Untagged stores are fine.
    EXPECT_NO_THROW(mem.writeCap(0x900000, c.withTagCleared()));
}

TEST_F(TaggedMemoryTest, ClearTagAtRevokesWithoutDataLoss)
{
    const Capability c = capTo(kBase + 0x400, 32);
    mem.writeCap(kBase + 0x400, c);
    mem.clearTagAt(kBase + 0x400);
    EXPECT_FALSE(mem.readTag(kBase + 0x400));
    const Capability r = mem.readCap(kBase + 0x400);
    EXPECT_EQ(r.address(), c.address()) << "address bits preserved";
    EXPECT_EQ(r.base(), c.base()) << "bounds bits preserved";
}

TEST_F(TaggedMemoryTest, LineTagMask)
{
    const Capability c = capTo(kBase, 64);
    const uint64_t line = kBase + 0x1000;
    EXPECT_EQ(mem.lineTagMask(line), 0u);
    mem.writeCap(line + 0, c);
    mem.writeCap(line + 48, c);
    EXPECT_EQ(mem.lineTagMask(line), 0b1001u);
    mem.writeU64(line + 48, 0);
    EXPECT_EQ(mem.lineTagMask(line), 0b0001u);
}

TEST_F(TaggedMemoryTest, PageTagCountTracksSetsAndClears)
{
    const Capability c = capTo(kBase, 64);
    EXPECT_FALSE(mem.pageHasTags(kBase + 0x2000));
    mem.writeCap(kBase + 0x2000, c);
    mem.writeCap(kBase + 0x2010, c);
    EXPECT_EQ(mem.pageTagCount(kBase + 0x2000), 2u);
    mem.clearTagAt(kBase + 0x2000);
    EXPECT_EQ(mem.pageTagCount(kBase + 0x2000), 1u);
    EXPECT_TRUE(mem.pageHasTags(kBase + 0x2010));
}

TEST_F(TaggedMemoryTest, CheckedLoadStoreEnforcesTag)
{
    Capability c = capTo(kBase, 64);
    mem.storeU64(c, kBase, 7);
    EXPECT_EQ(mem.loadU64(c, kBase), 7u);
    c.clearTag();
    EXPECT_THROW(mem.loadU64(c, kBase), CapFault);
    EXPECT_THROW(mem.storeU64(c, kBase, 1), CapFault);
}

TEST_F(TaggedMemoryTest, CheckedAccessEnforcesBounds)
{
    const Capability c = capTo(kBase, 64);
    EXPECT_THROW(mem.loadU64(c, kBase + 64), CapFault);
    EXPECT_THROW(mem.loadU64(c, kBase + 60), CapFault)
        << "partially out-of-bounds 8-byte load";
    EXPECT_THROW(mem.storeU64(c, kBase - 8, 0), CapFault);
}

TEST_F(TaggedMemoryTest, CheckedAccessEnforcesPerms)
{
    const Capability ro =
        capTo(kBase, 64).andPerms(cap::PermLoad | cap::PermLoadCap);
    EXPECT_EQ(mem.loadU64(ro, kBase), 0u);
    EXPECT_THROW(mem.storeU64(ro, kBase, 1), CapFault);

    const Capability no_caps =
        capTo(kBase, 64).andPerms(cap::PermLoad | cap::PermStore);
    EXPECT_THROW(mem.loadCap(no_caps, kBase), CapFault);
    EXPECT_THROW(mem.storeCap(no_caps, kBase, capTo(kBase, 16)),
                 CapFault);
}

TEST_F(TaggedMemoryTest, CheckedCapRoundTrip)
{
    const Capability auth = capTo(kBase, 4096);
    const Capability value = capTo(kBase + 128, 32);
    mem.storeCap(auth, kBase + 16, value);
    const Capability r = mem.loadCap(auth, kBase + 16);
    EXPECT_TRUE(r.tag());
    EXPECT_EQ(r, value);
}

TEST_F(TaggedMemoryTest, ResidentPagesLazy)
{
    EXPECT_EQ(mem.residentPages(), 0u);
    mem.writeU64(kBase, 1);
    EXPECT_EQ(mem.residentPages(), 1u);
    (void)mem.readU64(kBase + 8 * kPageBytes); // read doesn't allocate
    EXPECT_EQ(mem.residentPages(), 1u);
}

} // namespace
} // namespace mem
} // namespace cherivoke

/**
 * @file
 * Tests for the mutator-side hot-path structures introduced with the
 * O(1) allocation fast path: the ChunkView raw host-span contract
 * (tag invalidation preserved), the DlAllocator bin-occupancy
 * bitmap, the hash-linked quarantine run structure, and a randomized
 * malloc/free/realloc fuzz loop cross-checked against validateHeap()
 * — which itself asserts bin-bitmap/bin-list consistency and the
 * raw-span write semantics on every free chunk.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "stats/summary.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace cherivoke {
namespace alloc {
namespace {

using cap::Capability;

// ---- Raw host-span semantics -----------------------------------

TEST(HostSpan, RawWritesMatchCheckedPathAndKillTags)
{
    mem::AddressSpace space;
    auto &memory = space.memory();

    // Seed a tagged capability, then overwrite one word of its
    // granule through the raw span: the tag must die, exactly as a
    // checked data write would kill it.
    DlAllocator dl(space);
    const Capability c = dl.malloc(64);
    memory.writeCap(c.base(), c);
    ASSERT_TRUE(memory.readTag(c.base()));

    mem::HostSpan span = memory.hostSpan(c.base());
    ASSERT_TRUE(span.covers(c.base(), 8));
    span.writeU64(c.base(), 0x1234);
    EXPECT_FALSE(memory.readTag(c.base()))
        << "raw span store must invalidate the granule tag";
    EXPECT_EQ(memory.readU64(c.base()), 0x1234u)
        << "checked path must observe the raw store";
    memory.assertSpanSemantics(c.base(), 16);

    // Out-of-span helper has identical semantics.
    memory.writeCap(c.base(), dl.malloc(32));
    ASSERT_TRUE(memory.readTag(c.base()));
    memory.spanWriteU64(c.base() + 8, 0x99);
    EXPECT_FALSE(memory.readTag(c.base()));
    EXPECT_EQ(memory.spanReadU64(c.base() + 8), 0x99u);
}

TEST(HostSpan, CoversRespectsPageBounds)
{
    mem::AddressSpace space;
    auto &memory = space.memory();
    mem::HostSpan span = memory.hostSpan(mem::kHeapBase);
    EXPECT_TRUE(span.covers(mem::kHeapBase, kPageBytes));
    EXPECT_TRUE(
        span.covers(mem::kHeapBase + kPageBytes - 8, 8));
    EXPECT_FALSE(
        span.covers(mem::kHeapBase + kPageBytes - 8, 16));
    EXPECT_FALSE(span.covers(mem::kHeapBase + kPageBytes, 8));
    EXPECT_FALSE(span.covers(mem::kHeapBase - 8, 8));
    EXPECT_FALSE(mem::HostSpan{}.covers(mem::kHeapBase, 8));
}

TEST(HostSpan, FreeListLinksNeverLeaveTagsBehind)
{
    // A freed chunk's payload held a tagged capability; binning the
    // chunk writes fd/bk over it through the raw path. The sweep
    // soundness of the whole design rests on those granule tags
    // dying with the overwrite.
    mem::AddressSpace space;
    auto &memory = space.memory();
    DlAllocator dl(space);
    const Capability a = dl.malloc(64);
    (void)dl.malloc(64); // guard against top-coalescing
    memory.writeCap(a.base(), a);       // fd slot granule
    memory.writeCap(a.base() + 16, a);  // next payload granule
    ASSERT_TRUE(memory.readTag(a.base()));
    dl.freeAddr(a.base());
    EXPECT_FALSE(memory.readTag(a.base()))
        << "fd/bk stores must have cleared the payload tag";
    dl.validateHeap(); // asserts span semantics on every free chunk
}

// ---- Bin-occupancy bitmap --------------------------------------

TEST(BinBitmap, TracksBinHeadsExactly)
{
    mem::AddressSpace space;
    DlAllocator dl(space);
    // Fresh heap: no free chunks, no occupied bins.
    for (unsigned w = 0; w < 2; ++w)
        EXPECT_EQ(dl.binBitmapWord(w), 0u);

    // Free two distinct small sizes (guards keep them uncoalesced)
    // and verify exactly those bins light up.
    const Capability a = dl.malloc(48); // 64-byte chunk
    (void)dl.malloc(16);
    const Capability b = dl.malloc(112); // 128-byte chunk
    (void)dl.malloc(16);
    dl.freeAddr(a.base());
    dl.freeAddr(b.base());
    dl.validateHeap(); // checks bitmap == bin heads
    const uint64_t w0 = dl.binBitmapWord(0);
    EXPECT_EQ(popCount(w0) + popCount(dl.binBitmapWord(1)), 2u);

    // Reallocating one size empties its bin and clears its bit.
    const Capability a2 = dl.malloc(48);
    dl.validateHeap();
    EXPECT_EQ(popCount(dl.binBitmapWord(0)) +
                  popCount(dl.binBitmapWord(1)),
              1u);
    (void)a2;
}

TEST(BinBitmap, MallocStillFindsLargerBins)
{
    // With only a large free chunk available, a small request must
    // jump straight to it (first-fit across the bitmap) rather than
    // carving the top.
    mem::AddressSpace space;
    DlAllocator dl(space);
    const Capability big = dl.malloc(8 * KiB);
    (void)dl.malloc(16);
    dl.freeAddr(big.base());
    const uint64_t big_addr = big.base();
    const Capability small = dl.malloc(64);
    EXPECT_EQ(small.base(), big_addr)
        << "request must be served from the freed larger chunk";
    dl.validateHeap();
}

// ---- Hash-linked quarantine runs -------------------------------

TEST(QuarantineRuns, OrderedViewIsCachedAndSorted)
{
    mem::AddressSpace space;
    DlAllocator dl(space);
    Quarantine q;
    std::vector<Capability> caps;
    for (int i = 0; i < 8; ++i)
        caps.push_back(dl.malloc(64));
    (void)dl.malloc(64);
    // Free every second chunk in reverse order: four disjoint runs
    // added in descending address order.
    for (int i = 6; i >= 0; i -= 2) {
        const auto qc = dl.quarantineFree(caps[i]);
        q.add(dl, qc.addr, qc.size);
    }
    EXPECT_EQ(q.runCount(), 4u);
    const auto &ordered = q.orderedRuns();
    ASSERT_EQ(ordered.size(), 4u);
    EXPECT_TRUE(std::is_sorted(
        ordered.begin(), ordered.end(),
        [](const QuarantineRun &a, const QuarantineRun &b) {
            return a.addr < b.addr;
        }));
    // The cached view is stable across calls with no intervening
    // add (same storage, not a fresh copy).
    EXPECT_EQ(&q.orderedRuns(), &ordered);
}

TEST(QuarantineRuns, AddReturnsMergeCount)
{
    mem::AddressSpace space;
    DlAllocator dl(space);
    Quarantine q;
    std::vector<Capability> caps;
    for (int i = 0; i < 3; ++i)
        caps.push_back(dl.malloc(64));
    (void)dl.malloc(64);
    const auto q0 = dl.quarantineFree(caps[0]);
    const auto q2 = dl.quarantineFree(caps[2]);
    EXPECT_EQ(q.add(dl, q0.addr, q0.size), 0u);
    EXPECT_EQ(q.add(dl, q2.addr, q2.size), 0u);
    const auto q1 = dl.quarantineFree(caps[1]);
    EXPECT_EQ(q.add(dl, q1.addr, q1.size), 2u)
        << "bridging both neighbours is a three-way merge";
    EXPECT_EQ(q.runCount(), 1u);
    EXPECT_EQ(q.merges(), 2u);
    EXPECT_EQ(q.adds(), 3u);
}

TEST(QuarantineRuns, SurvivesManyEpochsOfChurn)
{
    // Hash-table stress: thousands of adds, merges and releases
    // across epochs; totals must always reconcile and release order
    // must stay address-ordered.
    mem::AddressSpace space;
    CherivokeConfig cfg;
    cfg.quarantineFraction = 0.25;
    cfg.minQuarantineBytes = 16 * KiB;
    CherivokeAllocator heap(space, cfg);
    Rng rng(271828);
    std::vector<Capability> live;
    uint64_t frees = 0;
    for (int op = 0; op < 20000; ++op) {
        if (rng.nextBool(0.55) || live.empty()) {
            live.push_back(heap.malloc(rng.nextLogUniform(16, 1024)));
        } else {
            const size_t idx = rng.nextBounded(live.size());
            heap.free(live[idx]);
            live.erase(live.begin() + static_cast<long>(idx));
            ++frees;
        }
        if (heap.needsSweep()) {
            heap.prepareSweep();
            heap.finishSweep();
        }
    }
    EXPECT_GT(heap.sweepsPrepared(), 2u);
    EXPECT_GT(frees, 1000u);
    heap.dl().validateHeap();
    // Merge accounting survives the facade's quarantine swaps.
    const uint64_t merges =
        heap.dl().counters().value("alloc.quarantine_merges");
    EXPECT_GT(merges, 0u);
    EXPECT_LE(merges, frees);
}

// ---- Randomized fuzz: malloc/free/realloc vs validateHeap ------

TEST(AllocFuzz, RandomOpsKeepEveryInvariant)
{
    mem::AddressSpace space;
    CherivokeConfig cfg;
    cfg.quarantineFraction = 0.25;
    cfg.minQuarantineBytes = 8 * KiB;
    CherivokeAllocator heap(space, cfg);
    auto &memory = space.memory();
    Rng rng(31337);
    std::vector<Capability> live;

    for (int op = 0; op < 6000; ++op) {
        const double roll = rng.nextDouble();
        if (roll < 0.5 || live.empty()) {
            const Capability c =
                heap.malloc(rng.nextLogUniform(16, 2048));
            // Programs write what they allocate; some words are
            // capabilities so recycled granules carry stale tags
            // for the raw path to kill.
            if (rng.nextBool(0.3))
                memory.writeCap(c.base(), c);
            live.push_back(c);
        } else if (roll < 0.8) {
            const size_t idx = rng.nextBounded(live.size());
            heap.free(live[idx]);
            live.erase(live.begin() + static_cast<long>(idx));
        } else {
            const size_t idx = rng.nextBounded(live.size());
            live[idx] = heap.realloc(
                live[idx], rng.nextLogUniform(16, 4096));
        }
        if (heap.needsSweep()) {
            heap.prepareSweep();
            heap.finishSweep();
        }
        if (op % 500 == 0)
            heap.dl().validateHeap();
    }
    heap.dl().validateHeap();

    // The mutator-path summary reflects a healthy fast path.
    const stats::MutatorPathSummary s =
        stats::summarizeMutatorPath(heap.dl().counters());
    EXPECT_GT(s.mallocCalls, 0u);
    EXPECT_GT(s.rawSpanRate(), 0.9)
        << "nearly all header accesses should hit the cached span";
    EXPECT_GE(s.meanBinScanLength(), 0.0);
}

// ---- BoundaryIndex unit ----------------------------------------

TEST(BoundaryIndex, InsertFindEraseWithCollisions)
{
    BoundaryIndex idx;
    // Dense 16-byte-aligned keys force probe chains; grow several
    // times and then unwind with backward-shift deletion.
    const uint32_t n = 3000;
    for (uint32_t i = 0; i < n; ++i)
        idx.insert((uint64_t{i} + 1) * 16, i);
    EXPECT_EQ(idx.size(), n);
    for (uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(idx.find((uint64_t{i} + 1) * 16), i);
    EXPECT_EQ(idx.find(16 * (n + 5)), BoundaryIndex::kNotFound);
    // Erase odd keys; even keys must stay reachable through any
    // probe chains the holes interrupted.
    for (uint32_t i = 1; i < n; i += 2)
        idx.erase((uint64_t{i} + 1) * 16);
    for (uint32_t i = 0; i < n; i += 2)
        EXPECT_EQ(idx.find((uint64_t{i} + 1) * 16), i);
    for (uint32_t i = 1; i < n; i += 2) {
        EXPECT_EQ(idx.find((uint64_t{i} + 1) * 16),
                  BoundaryIndex::kNotFound);
    }
    idx.update(16, 777);
    EXPECT_EQ(idx.find(16), 777u);
}

} // namespace
} // namespace alloc
} // namespace cherivoke

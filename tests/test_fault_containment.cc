/**
 * @file
 * Fault-containment tests: the typed HeapFault channel (every
 * allocator/codec detection path raises the right kind, still
 * catchable as FatalError), the strict fault-plan grammar and the
 * three chaos environment knobs, TenantManager containment (a
 * faulting tenant is retired through the standard teardown path and
 * the survivors' statistics are bit-identical to a control run
 * without the post-fault ops), seeded-plan replay determinism, and
 * the soft-page-budget escalation ladder up to an OOM-kill.
 */

#include <cstdlib>
#include <optional>

#include <gtest/gtest.h>

#include "alloc/cherivoke_alloc.hh"
#include "alloc/chunk.hh"
#include "alloc/dlmalloc.hh"
#include "support/env.hh"
#include "support/fault.hh"
#include "support/logging.hh"
#include "tenant/tenant_manager.hh"
#include "tenant/trace_codec.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth.hh"

using namespace cherivoke;

namespace {

/** Run @p fn and return the HeapFault kind it raised, if any. */
template <typename Fn>
std::optional<HeapFaultKind>
raisedKind(Fn &&fn)
{
    try {
        fn();
    } catch (const HeapFault &fault) {
        return fault.kind();
    }
    return std::nullopt;
}

/** A small alloc/free-heavy trace (~20k ops, ~1.6 MiB live). */
workload::Trace
smallTrace(uint64_t seed)
{
    workload::BenchmarkProfile profile =
        workload::profileFor("dealII");
    workload::SynthConfig cfg;
    cfg.scale = 1.0 / 512;
    cfg.durationSec = 2.0;
    cfg.seed = seed;
    return workload::synthesize(profile, cfg);
}

/** Tenant tuned so smallTrace triggers several sweeps. */
tenant::TenantConfig
smallTenant(const std::string &name)
{
    tenant::TenantConfig cfg;
    cfg.name = name;
    cfg.alloc.quarantineFraction = 0.05;
    cfg.alloc.minQuarantineBytes = 16 * KiB;
    cfg.alloc.dl.initialHeapBytes = 256 * KiB;
    cfg.alloc.dl.growthChunkBytes = 128 * KiB;
    return cfg;
}

const tenant::TenantResult *
findTenant(const tenant::MultiTenantResult &m, uint64_t id)
{
    for (const tenant::TenantResult &t : m.tenants)
        if (t.tenantId == id)
            return &t;
    return nullptr;
}

/** Modelled statistics must match exactly (wall-clock excluded). */
void
expectRunsBitIdentical(const workload::DriverResult &a,
                       const workload::DriverResult &b)
{
    EXPECT_EQ(a.allocCalls, b.allocCalls);
    EXPECT_EQ(a.freeCalls, b.freeCalls);
    EXPECT_EQ(a.freedBytes, b.freedBytes);
    EXPECT_EQ(a.ptrStores, b.ptrStores);
    EXPECT_EQ(a.peakLiveBytes, b.peakLiveBytes);
    EXPECT_EQ(a.peakLiveAllocs, b.peakLiveAllocs);
    EXPECT_EQ(a.peakQuarantineBytes, b.peakQuarantineBytes);
    EXPECT_EQ(a.peakFootprintBytes, b.peakFootprintBytes);
    EXPECT_TRUE(a.revoker == b.revoker);
    EXPECT_EQ(a.virtualSeconds, b.virtualSeconds);
    EXPECT_EQ(a.pageDensity, b.pageDensity);
    EXPECT_EQ(a.lineDensity, b.lineDensity);
}

} // namespace

// ---- The typed fault channel -----------------------------------

TEST(HeapFaults, KindNamesRoundTrip)
{
    for (size_t i = 0; i < kNumHeapFaultKinds; ++i) {
        const auto kind = static_cast<HeapFaultKind>(i);
        HeapFaultKind parsed;
        ASSERT_TRUE(
            parseHeapFaultKind(heapFaultKindName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    HeapFaultKind k;
    EXPECT_FALSE(parseHeapFaultKind("use-after-free", k));
    EXPECT_FALSE(parseHeapFaultKind("", k));
}

TEST(HeapFaults, IsStillAFatalError)
{
    // Uncontained faults must keep the pre-fault-channel contract:
    // every existing EXPECT_THROW(..., FatalError) holds.
    mem::AddressSpace space;
    alloc::DlAllocator heap(space);
    const cap::Capability c = heap.malloc(64);
    heap.free(c);
    EXPECT_THROW(heap.free(c), FatalError);
}

TEST(HeapFaults, AllocatorDetectionPathsRaiseTypedKinds)
{
    mem::AddressSpace space;
    alloc::DlAllocator heap(space);

    // Double free of a directly freed chunk. The in-use guard after
    // it keeps the chunk from coalescing into top, so the second
    // free still sees a well-formed !cinuse boundary tag.
    const cap::Capability a = heap.malloc(64);
    const cap::Capability guard = heap.malloc(64);
    heap.free(a);
    EXPECT_EQ(raisedKind([&] { heap.free(a); }),
              HeapFaultKind::DoubleFree);
    heap.free(guard);

    // Free through an untagged capability.
    EXPECT_EQ(raisedKind([&] { heap.free(cap::Capability{}); }),
              HeapFaultKind::WildFree);

    // Free of a tagged capability pointing outside the heap; must
    // not materialise pages at the wild address.
    const size_t resident = space.memory().residentPages();
    const cap::Capability wild =
        space.rootCap()
            .setAddress(space.globals().base + alloc::kChunkHeader)
            .setBounds(16);
    EXPECT_EQ(raisedKind([&] { heap.free(wild); }),
              HeapFaultKind::WildFree);
    EXPECT_EQ(space.memory().residentPages(), resident);

    // Free through a smashed boundary tag (size bits zeroed).
    const cap::Capability b = heap.malloc(64);
    const uint64_t header =
        alloc::DlAllocator::chunkOf(b.base()) + 8;
    auto &memory = space.memory();
    memory.spanWriteU64(header, memory.spanReadU64(header) &
                                    alloc::kFlagMask);
    EXPECT_EQ(raisedKind([&] { heap.free(b); }),
              HeapFaultKind::HeaderCorruption);
}

TEST(HeapFaults, QuarantinePathRaisesDoubleFree)
{
    // The CHERIvoke front-end flags the chunk kQuarantine on free:
    // a second free trips the same typed fault.
    mem::AddressSpace space;
    alloc::CherivokeAllocator heap(space, {});
    const cap::Capability c = heap.malloc(64);
    heap.free(c);
    EXPECT_EQ(raisedKind([&] { heap.free(c); }),
              HeapFaultKind::DoubleFree);
    EXPECT_EQ(raisedKind([&] { heap.realloc(c, 128); }),
              HeapFaultKind::DoubleFree);
}

TEST(HeapFaults, CodecRecordDamageIsTyped)
{
    workload::Trace trace;
    for (int i = 0; i < 4; ++i) {
        workload::TraceOp op;
        op.kind = workload::OpKind::Malloc;
        op.id = static_cast<uint64_t>(i);
        op.size = 64;
        trace.ops.push_back(op);
    }
    const std::vector<uint8_t> good = tenant::encodeTrace(trace);

    // Mid-stream truncation: the header promises more records than
    // the payload carries — one tenant's bad trace, contained.
    std::vector<uint8_t> short_payload = good;
    short_payload.resize(good.size() - tenant::kTraceRecordBytes);
    EXPECT_EQ(raisedKind([&] { tenant::decodeTrace(short_payload); }),
              HeapFaultKind::CodecCorruption);

    // A record with an op kind the version does not define.
    std::vector<uint8_t> bad_kind = good;
    bad_kind[tenant::kTraceHeaderBytes] = 0xEE;
    EXPECT_EQ(raisedKind([&] { tenant::decodeTrace(bad_kind); }),
              HeapFaultKind::CodecCorruption);

    // Header-level damage is a harness error, not tenant input:
    // plain FatalError, never the contained fault channel.
    std::vector<uint8_t> bad_magic = good;
    bad_magic[0] ^= 0xFF;
    try {
        tenant::decodeTrace(bad_magic);
        FAIL() << "bad magic was accepted";
    } catch (const HeapFault &) {
        FAIL() << "header damage must not use the fault channel";
    } catch (const FatalError &) {
        // Expected.
    }
}

// ---- The fault plan and its environment knobs ------------------

TEST(FaultPlan, ParseRoundTripsCanonicalText)
{
    const std::string text =
        "double-free@0:100,oom@2:5,codec-corruption@7:0";
    const FaultPlan plan = parseFaultPlan(text);
    ASSERT_EQ(plan.injections.size(), 3u);
    EXPECT_EQ(plan.injections[0].kind, HeapFaultKind::DoubleFree);
    EXPECT_EQ(plan.injections[1].tenantId, 2u);
    EXPECT_EQ(plan.injections[1].opIndex, 5u);
    EXPECT_EQ(plan.text(), text);
    EXPECT_TRUE(parseFaultPlan("").empty());
}

TEST(FaultPlan, RejectsMalformedText)
{
    EXPECT_THROW(parseFaultPlan("double-free"), FatalError);
    EXPECT_THROW(parseFaultPlan("double-free@1"), FatalError);
    EXPECT_THROW(parseFaultPlan("double-free:1@2"), FatalError);
    EXPECT_THROW(parseFaultPlan("use-after-free@1:2"), FatalError);
    EXPECT_THROW(parseFaultPlan("oom@x:2"), FatalError);
    EXPECT_THROW(parseFaultPlan("oom@1:2x"), FatalError);
    EXPECT_THROW(parseFaultPlan("oom@-1:2"), FatalError);
    EXPECT_THROW(parseFaultPlan("oom@1:-2"), FatalError);
    EXPECT_THROW(parseFaultPlan("oom@1:2,"), FatalError);
    EXPECT_THROW(parseFaultPlan(","), FatalError);
}

TEST(FaultPlan, SweeperGrammarRoundTrips)
{
    // The sweeper kinds share the comma list with the tenant kinds
    // but carry `kind@domain:epoch[:factor]`.
    const std::string text =
        "oom@1:50,sweeper-stall@0:2,sweeper-slow@1:0:3";
    const FaultPlan plan = parseFaultPlan(text);
    ASSERT_EQ(plan.injections.size(), 1u);
    ASSERT_EQ(plan.sweeper.size(), 2u);
    EXPECT_EQ(plan.sweeper[0].kind, SweeperFaultKind::Stall);
    EXPECT_EQ(plan.sweeper[0].domain, 0u);
    EXPECT_EQ(plan.sweeper[0].epoch, 2u);
    EXPECT_EQ(plan.sweeper[0].factor, 1u);
    EXPECT_EQ(plan.sweeper[1].kind, SweeperFaultKind::Slow);
    EXPECT_EQ(plan.sweeper[1].factor, 3u);
    EXPECT_EQ(plan.text(), text);

    // Crash parses; the default factor 1 is not re-emitted.
    EXPECT_EQ(parseFaultPlan("sweeper-crash@2:1:1").text(),
              "sweeper-crash@2:1");

    EXPECT_THROW(parseFaultPlan("sweeper-stall@0"), FatalError);
    EXPECT_THROW(parseFaultPlan("sweeper-stall@x:1"), FatalError);
    EXPECT_THROW(parseFaultPlan("sweeper-slow@0:1:0"), FatalError);
    EXPECT_THROW(parseFaultPlan("sweeper-slow@0:1:x"), FatalError);
}

TEST(FaultPlan, ChaosKnobsParseStrictly)
{
    // The three knobs the bench harness reads: unset -> default,
    // malformed -> fatal, never a silent fallback.
    unsetenv("CHERIVOKE_FAULT_SEED");
    EXPECT_EQ(envI64("CHERIVOKE_FAULT_SEED", 0, 0), 0);
    setenv("CHERIVOKE_FAULT_SEED", "abc", 1);
    EXPECT_THROW(envI64("CHERIVOKE_FAULT_SEED", 0, 0), FatalError);
    setenv("CHERIVOKE_FAULT_SEED", "-3", 1);
    EXPECT_THROW(envI64("CHERIVOKE_FAULT_SEED", 0, 0), FatalError);
    setenv("CHERIVOKE_FAULT_SEED", "99", 1);
    EXPECT_EQ(envI64("CHERIVOKE_FAULT_SEED", 0, 0), 99);
    unsetenv("CHERIVOKE_FAULT_SEED");

    unsetenv("CHERIVOKE_PAGE_BUDGET_MIB");
    EXPECT_DOUBLE_EQ(envF64("CHERIVOKE_PAGE_BUDGET_MIB", 0, 0), 0);
    setenv("CHERIVOKE_PAGE_BUDGET_MIB", "12q", 1);
    EXPECT_THROW(envF64("CHERIVOKE_PAGE_BUDGET_MIB", 0, 0),
                 FatalError);
    setenv("CHERIVOKE_PAGE_BUDGET_MIB", "-4", 1);
    EXPECT_THROW(envF64("CHERIVOKE_PAGE_BUDGET_MIB", 0, 0),
                 FatalError);
    setenv("CHERIVOKE_PAGE_BUDGET_MIB", "64.5", 1);
    EXPECT_DOUBLE_EQ(envF64("CHERIVOKE_PAGE_BUDGET_MIB", 0, 0),
                     64.5);
    unsetenv("CHERIVOKE_PAGE_BUDGET_MIB");

    // CHERIVOKE_FAULT_PLAN is validated with parseFaultPlan, whose
    // rejection matrix is covered above; spot-check the glue shape.
    EXPECT_NO_THROW(parseFaultPlan("wild-free@1:10"));
    EXPECT_THROW(parseFaultPlan("wild-free@1:ten"), FatalError);
}

TEST(FaultPlan, SeededGenerationIsDeterministic)
{
    const std::vector<uint64_t> ids = {0, 1, 2};
    const std::vector<uint64_t> ops = {1000, 2000, 500};
    const FaultPlan a = generateFaultPlan(7, ids, ops);
    const FaultPlan b = generateFaultPlan(7, ids, ops);
    const FaultPlan c = generateFaultPlan(8, ids, ops);
    ASSERT_EQ(a.injections.size(), kNumInjectableHeapFaultKinds);
    EXPECT_EQ(a.text(), b.text());
    EXPECT_NE(a.text(), c.text());
    // The generated text is valid plan grammar.
    EXPECT_EQ(parseFaultPlan(a.text()).text(), a.text());
    for (const FaultInjection &fi : a.injections) {
        ASSERT_LT(fi.tenantId, ids.size());
        EXPECT_LT(fi.opIndex, ops[fi.tenantId]);
    }
}

// ---- Manager-level containment ---------------------------------

TEST(FaultContainment, DoubleFreeLeavesSurvivorBitIdentical)
{
    // Regression for the two former fatal() sites in dlmalloc: a
    // double free in tenant A's stream must retire A and leave B's
    // statistics bit-identical to a run where A's trace simply ends
    // at the fault op.
    tenant::TenantManagerConfig mcfg;
    mcfg.faultPlan = parseFaultPlan("double-free@0:8000");
    tenant::TenantManager faulted(mcfg);
    faulted.addTenant(smallTenant("A"), smallTrace(1));
    faulted.addTenant(smallTenant("B"), smallTrace(2));
    const tenant::MultiTenantResult m = faulted.run();

    ASSERT_EQ(m.faultsContained, 1u);
    ASSERT_EQ(m.faults.size(), 1u);
    EXPECT_EQ(m.faults[0].kind, HeapFaultKind::DoubleFree);
    EXPECT_EQ(m.faults[0].tenantId, 0u);
    EXPECT_TRUE(m.faults[0].injected);

    const tenant::TenantResult *a = findTenant(m, 0);
    ASSERT_NE(a, nullptr);
    EXPECT_TRUE(a->faulted);
    EXPECT_TRUE(a->retiredMidRun);
    EXPECT_EQ(a->faultKind, HeapFaultKind::DoubleFree);
    EXPECT_EQ(a->faultOp, m.faults[0].opIndex);
    EXPECT_LT(a->opsApplied, a->opsTotal);

    const tenant::TenantResult *b = findTenant(m, 1);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->opsApplied, b->opsTotal);
    EXPECT_FALSE(b->faulted);

    // Control: no plan, tenant A's trace truncated at the fault op.
    workload::Trace truncated = smallTrace(1);
    truncated.ops.resize(m.faults[0].opIndex);
    tenant::TenantManager control{tenant::TenantManagerConfig{}};
    control.addTenant(smallTenant("A"), std::move(truncated));
    control.addTenant(smallTenant("B"), smallTrace(2));
    const tenant::MultiTenantResult cm = control.run();
    const tenant::TenantResult *cb = findTenant(cm, 1);
    ASSERT_NE(cb, nullptr);
    expectRunsBitIdentical(b->run, cb->run);
    EXPECT_EQ(b->mutator.fingerprint(), cb->mutator.fingerprint());
}

TEST(FaultContainment, EveryKindIsContained)
{
    for (size_t k = 0; k < kNumHeapFaultKinds; ++k) {
        const auto kind = static_cast<HeapFaultKind>(k);
        tenant::TenantManagerConfig mcfg;
        mcfg.faultPlan = parseFaultPlan(
            std::string(heapFaultKindName(kind)) + "@0:5000");
        tenant::TenantManager mgr(mcfg);
        mgr.addTenant(smallTenant("A"), smallTrace(3));
        mgr.addTenant(smallTenant("B"), smallTrace(4));
        const tenant::MultiTenantResult m = mgr.run();
        ASSERT_EQ(m.faultsContained, 1u) << heapFaultKindName(kind);
        EXPECT_EQ(m.faults[0].kind, kind);
        const tenant::TenantResult *a = findTenant(m, 0);
        ASSERT_NE(a, nullptr);
        EXPECT_TRUE(a->faulted) << heapFaultKindName(kind);
        EXPECT_EQ(a->faultKind, kind);
        const tenant::TenantResult *b = findTenant(m, 1);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(b->opsApplied, b->opsTotal)
            << heapFaultKindName(kind);
    }
}

TEST(FaultContainment, SeededPlanReplaysBitIdentically)
{
    const workload::Trace ta = smallTrace(5), tb = smallTrace(6);
    const FaultPlan plan = generateFaultPlan(
        31, {0, 1}, {ta.ops.size(), tb.ops.size()});

    auto replay = [&]() {
        tenant::TenantManagerConfig mcfg;
        mcfg.faultPlan = plan;
        tenant::TenantManager mgr(mcfg);
        mgr.addTenant(smallTenant("A"), ta);
        mgr.addTenant(smallTenant("B"), tb);
        return mgr.run();
    };
    const tenant::MultiTenantResult x = replay();
    const tenant::MultiTenantResult y = replay();

    ASSERT_EQ(x.faultsContained, y.faultsContained);
    EXPECT_GE(x.faultsContained, 1u);
    ASSERT_EQ(x.faults.size(), y.faults.size());
    for (size_t i = 0; i < x.faults.size(); ++i) {
        EXPECT_EQ(x.faults[i].kind, y.faults[i].kind);
        EXPECT_EQ(x.faults[i].tenantId, y.faults[i].tenantId);
        EXPECT_EQ(x.faults[i].step, y.faults[i].step);
        EXPECT_EQ(x.faults[i].opIndex, y.faults[i].opIndex);
        EXPECT_EQ(x.faults[i].message, y.faults[i].message);
    }
    ASSERT_EQ(x.tenants.size(), y.tenants.size());
    for (size_t i = 0; i < x.tenants.size(); ++i) {
        EXPECT_EQ(x.tenants[i].tenantId, y.tenants[i].tenantId);
        EXPECT_EQ(x.tenants[i].opsApplied, y.tenants[i].opsApplied);
        expectRunsBitIdentical(x.tenants[i].run, y.tenants[i].run);
    }
}

TEST(FaultContainment, PressureLadderEscalatesToOomKill)
{
    // A budget far below the tenants' working set: the ladder must
    // fire (emergency revocation + cold-page release first), fail
    // to get under, and OOM-kill through the standard teardown.
    auto run_once = [&]() {
        tenant::TenantManagerConfig mcfg;
        mcfg.pageBudgetPages = 96; // 384 KiB for a ~3 MiB workload
        mcfg.pressureBackoffSteps = 32;
        tenant::TenantManager mgr(mcfg);
        mgr.addTenant(smallTenant("A"), smallTrace(7));
        mgr.addTenant(smallTenant("B"), smallTrace(8));
        return mgr.run();
    };
    const tenant::MultiTenantResult m = run_once();
    EXPECT_GE(m.pressureEvents, 3u); // at least one full ladder walk
    EXPECT_GE(m.oomKills, 1u);
    EXPECT_EQ(m.oomKills, m.faultsContained);
    for (const tenant::FaultRecord &f : m.faults) {
        EXPECT_EQ(f.kind, HeapFaultKind::OutOfMemory);
        EXPECT_FALSE(f.injected);
    }
    // Every tenant either finished its trace or was OOM-killed —
    // the run itself always completes.
    for (const tenant::TenantResult &t : m.tenants) {
        if (t.faulted) {
            EXPECT_EQ(t.faultKind, HeapFaultKind::OutOfMemory);
            EXPECT_TRUE(t.retiredMidRun);
        } else {
            EXPECT_EQ(t.opsApplied, t.opsTotal);
        }
    }

    // The ladder is part of the deterministic model: same budget,
    // same traces, same kills at the same steps.
    const tenant::MultiTenantResult n = run_once();
    EXPECT_EQ(m.pressureEvents, n.pressureEvents);
    EXPECT_EQ(m.pressurePagesReclaimed, n.pressurePagesReclaimed);
    ASSERT_EQ(m.faults.size(), n.faults.size());
    for (size_t i = 0; i < m.faults.size(); ++i) {
        EXPECT_EQ(m.faults[i].tenantId, n.faults[i].tenantId);
        EXPECT_EQ(m.faults[i].step, n.faults[i].step);
    }
}

TEST(FaultContainment, ColdPageReleaseReclaimsFreedSpans)
{
    // Rung 1's reclamation mechanism, in isolation: freeing a
    // multi-page allocation and releasing cold pages must hand the
    // interior pages back to the directory, and they read as fresh
    // zeroes if ever re-touched.
    mem::AddressSpace space;
    alloc::DlAllocator heap(space);
    const cap::Capability big = heap.malloc(MiB);
    auto &memory = space.memory();
    for (uint64_t off = 0; off < MiB; off += kPageBytes)
        memory.spanWriteU64(big.base() + off, 0xA5A5A5A5);
    const uint64_t resident = memory.residentPages();
    heap.free(big);
    heap.releaseColdPages();
    // Most of the 256 touched pages are interior to the freed chunk
    // and must leave residency (boundary pages may stay hot).
    EXPECT_LE(memory.residentPages(),
              resident - (MiB / kPageBytes - 64));
    EXPECT_EQ(memory.spanReadU64(big.base() + kPageBytes), 0u);
}

TEST(FaultContainment, BudgetAbovePeakIsNonIntrusive)
{
    // A soft budget the run never crosses: no pressure events, no
    // kills, and every modelled statistic bit-identical to the same
    // run with the ladder disabled.
    auto run_with_budget = [&](size_t pages) {
        tenant::TenantManagerConfig mcfg;
        mcfg.pageBudgetPages = pages;
        tenant::TenantManager mgr(mcfg);
        mgr.addTenant(smallTenant("A"), smallTrace(9));
        mgr.addTenant(smallTenant("B"), smallTrace(10));
        return mgr.run();
    };
    const tenant::MultiTenantResult capped = run_with_budget(1 << 22);
    const tenant::MultiTenantResult open = run_with_budget(0);
    EXPECT_EQ(capped.pressureEvents, 0u);
    EXPECT_EQ(capped.oomKills, 0u);
    EXPECT_EQ(capped.faultsContained, 0u);
    ASSERT_EQ(capped.tenants.size(), open.tenants.size());
    for (size_t i = 0; i < capped.tenants.size(); ++i) {
        EXPECT_EQ(capped.tenants[i].opsApplied,
                  capped.tenants[i].opsTotal);
        expectRunsBitIdentical(capped.tenants[i].run,
                               open.tenants[i].run);
    }
}

/**
 * @file
 * Cross-module integration tests: whole-system scenarios, the
 * extension features (strict mode, CLoadTags prefetch), adversarial
 * capability forgery attempts, failure injection, and determinism.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "alloc/cherivoke_alloc.hh"
#include "baseline/dangsan.hh"
#include "cache/hierarchy.hh"
#include "revoke/revocation_engine.hh"
#include "sim/experiment.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "workload/driver.hh"
#include "workload/synth.hh"

namespace cherivoke {
namespace {

using alloc::CherivokeAllocator;
using alloc::CherivokeConfig;
using cap::CapFault;
using cap::Capability;

CherivokeConfig
tinyConfig()
{
    CherivokeConfig cfg;
    cfg.minQuarantineBytes = 16;
    return cfg;
}

// ---------------------------------------------------------------
// Strict use-after-free mode (§3.7 extension)
// ---------------------------------------------------------------

TEST(StrictMode, RevokesBeforeAnyReallocation)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyConfig());
    revoke::RevocationEngine revoker(heap, space);
    auto &memory = space.memory();

    const Capability a = heap.malloc(64);
    memory.writeCap(mem::kGlobalsBase, a);
    // Strict free: the stale copy dies immediately, with no
    // intervening allocation at all.
    revoker.freeAndRevoke(a);
    EXPECT_FALSE(memory.readCap(mem::kGlobalsBase).tag());
}

TEST(StrictMode, OneSweepPerFree)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyConfig());
    revoke::RevocationEngine revoker(heap, space);
    for (int i = 0; i < 10; ++i)
        revoker.freeAndRevoke(heap.malloc(64));
    EXPECT_EQ(revoker.totals().epochs, 10u);
}

TEST(StrictMode, HeapStaysValid)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyConfig());
    revoke::RevocationEngine revoker(heap, space);
    Rng rng(3);
    std::vector<Capability> live;
    for (int i = 0; i < 300; ++i) {
        if (rng.nextBool(0.6) || live.empty()) {
            live.push_back(heap.malloc(rng.nextLogUniform(16, 512)));
        } else {
            const size_t idx = rng.nextBounded(live.size());
            revoker.freeAndRevoke(live[idx]);
            live.erase(live.begin() + static_cast<long>(idx));
        }
    }
    heap.dl().validateHeap();
}

// ---------------------------------------------------------------
// CLoadTags prefetch (§3.4.1 future work)
// ---------------------------------------------------------------

TEST(CloadTagsPrefetch, TaggedLinePrefetchedIntoLlc)
{
    cache::Hierarchy hier;
    const uint64_t line = 0x40000;
    // Without prefetch: tags resolved, data stays uncached.
    (void)hier.cloadTags(line, true, false, true);
    EXPECT_FALSE(hier.llc()->probe(line));
    // With prefetch and a non-zero tag response: line lands in LLC.
    (void)hier.cloadTags(line, true, true, true);
    EXPECT_TRUE(hier.llc()->probe(line));
    const cache::AccessOutcome after = hier.access(line, 8, false);
    EXPECT_EQ(after.level, cache::HitLevel::Llc);
}

TEST(CloadTagsPrefetch, TagFreeLineNotPrefetched)
{
    cache::Hierarchy hier;
    const uint64_t line = 0x80000;
    (void)hier.cloadTags(line, true, true, /*line_has_tags=*/false);
    EXPECT_FALSE(hier.llc()->probe(line))
        << "no point prefetching a line the sweep will skip";
}

TEST(CloadTagsPrefetch, SweepWithPrefetchSameOutcome)
{
    // Functional equivalence: prefetch only changes traffic shape.
    for (const bool prefetch : {false, true}) {
        mem::AddressSpace space;
        CherivokeAllocator heap(space, tinyConfig());
        auto &memory = space.memory();
        const Capability a = heap.malloc(64);
        memory.writeCap(mem::kGlobalsBase, a);
        heap.free(a);
        heap.prepareSweep();
        cache::Hierarchy hier;
        revoke::SweepOptions opts;
        opts.useCloadTags = true;
        opts.cloadTagsPrefetch = prefetch;
        revoke::Sweeper sweeper(opts);
        const revoke::SweepStats stats =
            sweeper.sweep(space, heap.shadowMap(), &hier);
        heap.finishSweep();
        EXPECT_EQ(stats.capsRevoked, 1u) << "prefetch=" << prefetch;
        EXPECT_FALSE(memory.readCap(mem::kGlobalsBase).tag());
    }
}

// ---------------------------------------------------------------
// Adversarial forgery attempts (§4.2: unforgeability)
// ---------------------------------------------------------------

TEST(Forgery, DataWritesCannotMintACapability)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyConfig());
    auto &memory = space.memory();
    const Capability real = heap.malloc(64);
    // Write the exact bit pattern of a real capability as data.
    memory.writeU64(mem::kGlobalsBase, real.packLow());
    memory.writeU64(mem::kGlobalsBase + 8, real.packHigh());
    const Capability forged = memory.readCap(mem::kGlobalsBase);
    EXPECT_FALSE(forged.tag()) << "no tag: just data";
    EXPECT_THROW((void)memory.loadU64(forged, forged.address()),
                 CapFault);
}

TEST(Forgery, PartialOverwriteKillsTheOriginalTag)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyConfig());
    auto &memory = space.memory();
    const Capability real = heap.malloc(64);
    memory.writeCap(mem::kGlobalsBase, real);
    ASSERT_TRUE(memory.readCap(mem::kGlobalsBase).tag());
    // Overwrite just the address half, hoping to retarget it.
    memory.writeU64(mem::kGlobalsBase, mem::kStackBase);
    const Capability tampered = memory.readCap(mem::kGlobalsBase);
    EXPECT_FALSE(tampered.tag())
        << "any data write to the granule clears the tag";
}

TEST(Forgery, RevokedCapabilityCannotBeRelaunched)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyConfig());
    revoke::RevocationEngine revoker(heap, space);
    auto &memory = space.memory();
    const Capability a = heap.malloc(64);
    memory.writeCap(mem::kGlobalsBase, a);
    revoker.freeAndRevoke(a);
    // Copying the untagged remains around does not revive them.
    memory.copyPreservingTags(mem::kGlobalsBase + 64,
                              mem::kGlobalsBase, 16);
    EXPECT_FALSE(memory.readCap(mem::kGlobalsBase + 64).tag());
    // Nor can CSetBounds: deriving from an untagged word faults.
    const Capability stale = memory.readCap(mem::kGlobalsBase);
    EXPECT_THROW(stale.setBounds(16), CapFault);
}

// ---------------------------------------------------------------
// Shared-page capability-store inhibit (§3.4.2 footnote)
// ---------------------------------------------------------------

TEST(CapStoreInhibit, SharedPageRefusesCapabilities)
{
    mem::AddressSpace space;
    auto &memory = space.memory();
    // Map a "shared file" page with the S bit.
    const uint64_t shared = 0x7000'0000;
    memory.pageTable().map(shared, kPageBytes,
                           mem::ProtRead | mem::ProtWrite,
                           /*cap_store_inhibit=*/true);
    CherivokeAllocator heap(space, tinyConfig());
    const Capability a = heap.malloc(64);
    EXPECT_THROW(memory.writeCap(shared, a), CapFault);
    // Data is fine; the page can never hold tags, so sweeps skip it
    // via PTE CapDirty forever.
    memory.writeU64(shared, 123);
    EXPECT_FALSE(memory.pageTable().lookup(shared)->capDirty);
}

// ---------------------------------------------------------------
// Realloc chains across revocation epochs
// ---------------------------------------------------------------

TEST(ReallocEpochs, GrowingVectorSurvivesManyEpochs)
{
    mem::AddressSpace space;
    CherivokeConfig cfg;
    cfg.minQuarantineBytes = 1024;
    CherivokeAllocator heap(space, cfg);
    revoke::RevocationEngine revoker(heap, space);
    auto &memory = space.memory();

    // Simulate std::vector-style growth with live contents.
    Capability vec = heap.malloc(32);
    const Capability elem = heap.malloc(16);
    memory.storeCap(vec, vec.base(), elem);
    for (uint64_t cap_bytes = 64; cap_bytes <= 16 * 1024;
         cap_bytes *= 2) {
        vec = heap.realloc(vec, cap_bytes);
        revoker.maybeRevoke();
        // The stored element pointer must survive every move.
        const Capability loaded = memory.loadCap(vec, vec.base());
        ASSERT_TRUE(loaded.tag());
        ASSERT_EQ(loaded, elem);
    }
    heap.dl().validateHeap();
    EXPECT_GT(revoker.totals().epochs, 0u);
}

// ---------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------

TEST(FailureInjection, FreeOfInteriorPointerFaults)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyConfig());
    const Capability a = heap.malloc(256);
    const Capability interior =
        a.setAddress(a.base() + 32).setBounds(16);
    EXPECT_THROW(heap.free(interior), FatalError)
        << "interior pointers are not allocation starts";
}

TEST(FailureInjection, FreeOfStackAddressFaults)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyConfig());
    const Capability stack_cap = space.rootCap()
                                     .setAddress(mem::kStackBase + 64)
                                     .setBounds(16);
    EXPECT_THROW(heap.free(stack_cap), FatalError);
}

TEST(FailureInjection, ReallocOfFreedAllocationFaults)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyConfig());
    const Capability a = heap.malloc(64);
    heap.free(a);
    EXPECT_THROW(heap.realloc(a, 128), FatalError);
}

TEST(FailureInjection, DoubleFreeAcrossEpochStillCaught)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyConfig());
    revoke::RevocationEngine revoker(heap, space);
    const Capability a = heap.malloc(64);
    heap.free(a);
    revoker.revokeNow();
    // The chunk is back on the free list (not quarantined); a second
    // free of the stale capability must still be rejected.
    EXPECT_THROW(heap.free(a), FatalError);
}

TEST(FailureInjection, SweepWithEmptyQuarantineIsANoop)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyConfig());
    revoke::RevocationEngine revoker(heap, space);
    const Capability keep = heap.malloc(64);
    space.memory().writeCap(mem::kGlobalsBase, keep);
    const revoke::EpochStats epoch = revoker.revokeNow();
    EXPECT_EQ(epoch.sweep.capsRevoked, 0u);
    EXPECT_TRUE(space.memory().readCap(mem::kGlobalsBase).tag());
}

TEST(FailureInjection, HeapGrowthUnderPressure)
{
    mem::AddressSpace space;
    CherivokeConfig cfg;
    cfg.minQuarantineBytes = 64 * KiB;
    cfg.dl.initialHeapBytes = 256 * KiB;
    cfg.dl.growthChunkBytes = 256 * KiB;
    CherivokeAllocator heap(space, cfg);
    revoke::RevocationEngine revoker(heap, space);
    // Allocate far beyond the initial mapping, with frees held in
    // quarantine (which delays reuse and forces more growth).
    std::vector<Capability> live;
    for (int i = 0; i < 200; ++i) {
        live.push_back(heap.malloc(64 * KiB));
        if (i % 3 == 0 && live.size() > 2) {
            heap.free(live.front());
            live.erase(live.begin());
        }
        revoker.maybeRevoke();
    }
    EXPECT_GT(heap.footprintBytes(), 4 * MiB);
    heap.dl().validateHeap();
}

// ---------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------

TEST(Determinism, SameSeedSameTrace)
{
    const workload::BenchmarkProfile &p =
        workload::profileFor("dealII");
    workload::SynthConfig cfg;
    cfg.durationSec = 0.05;
    const workload::Trace a = workload::synthesize(p, cfg);
    const workload::Trace b = workload::synthesize(p, cfg);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    std::ostringstream sa, sb;
    a.save(sa);
    b.save(sb);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(Determinism, ReplayTwiceSameMeasurements)
{
    const workload::BenchmarkProfile &p =
        workload::profileFor("omnetpp");
    workload::SynthConfig cfg;
    cfg.durationSec = 0.05;
    const workload::Trace trace = workload::synthesize(p, cfg);

    auto run_once = [&]() {
        mem::AddressSpace space;
        CherivokeConfig acfg;
        acfg.minQuarantineBytes = 64 * KiB;
        CherivokeAllocator heap(space, acfg);
        revoke::RevocationEngine revoker(heap, space);
        workload::TraceDriver driver(space, heap, &revoker);
        return driver.run(trace);
    };
    const workload::DriverResult r1 = run_once();
    const workload::DriverResult r2 = run_once();
    EXPECT_EQ(r1.allocCalls, r2.allocCalls);
    EXPECT_EQ(r1.freeCalls, r2.freeCalls);
    EXPECT_EQ(r1.revoker.epochs, r2.revoker.epochs);
    EXPECT_EQ(r1.revoker.sweep.capsRevoked,
              r2.revoker.sweep.capsRevoked);
    EXPECT_EQ(r1.peakQuarantineBytes, r2.peakQuarantineBytes);
}

// ---------------------------------------------------------------
// CHERIvoke vs DangSan differential on the same trace shape
// ---------------------------------------------------------------

TEST(Differential, RegistrySchemePaysPerStoreCherivokeDoesNot)
{
    // N pointer stores into one allocation: DangSan's registry holds
    // N entries; CHERIvoke keeps zero mutator-side metadata.
    mem::AddressSpace s1, s2;
    alloc::DlAllocator dl(s1);
    baseline::DangSan dangsan(s1, dl);
    CherivokeAllocator cherivoke(s2, tinyConfig());

    const Capability hub_d = dangsan.malloc(64);
    const Capability hub_c = cherivoke.malloc(64);
    for (uint64_t i = 0; i < 256; ++i) {
        dangsan.recordPointerStore(mem::kGlobalsBase + i * 16,
                                   hub_d);
        s2.memory().writeCap(mem::kGlobalsBase + i * 16, hub_c);
    }
    EXPECT_EQ(dangsan.stats().registryEntries, 256u);
    EXPECT_GE(dangsan.stats().registryBytes, 4096u);
    // CHERIvoke: the tags *are* the metadata — nothing extra beyond
    // the 256 capability stores themselves.
    EXPECT_EQ(s2.memory().counters().value("mem.cap_writes"), 256u);
}

} // namespace
} // namespace cherivoke

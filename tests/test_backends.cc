/**
 * @file
 * Tests for the pluggable revocation backends: capability color
 * packing, chunk ID tags, the per-backend epoch mechanics (color
 * exhaustion + recycling, object-ID table compaction), and
 * cross-backend parity — one seeded workload replayed under all
 * three backends must agree on every backend-independent statistic.
 */

#include <gtest/gtest.h>

#include "alloc/chunk.hh"
#include "revoke/backends/color_backend.hh"
#include "revoke/backends/objid_backend.hh"
#include "revoke/backends/sweep_backend.hh"
#include "sim/experiment.hh"

namespace cherivoke {
namespace revoke {
namespace {

using alloc::CherivokeAllocator;
using alloc::CherivokeConfig;
using cap::Capability;

// ---------------------------------------------------------------
// Metadata encodings
// ---------------------------------------------------------------

TEST(BackendMeta, ColorSurvivesPackUnpack)
{
    mem::AddressSpace space;
    const Capability root = space.rootCap();
    for (unsigned color = 0; color < cap::kMaxColors; ++color) {
        const Capability c = root.setAddress(0x10000)
                                 .setBounds(256)
                                 .withColor(static_cast<uint8_t>(color));
        EXPECT_EQ(c.color(), color);
        const Capability back =
            Capability::unpack(c.packLow(), c.packHigh(), c.tag());
        EXPECT_EQ(back.color(), color);
        EXPECT_EQ(back, c);
    }
}

TEST(BackendMeta, ColorZeroPacksToPreColorBitPattern)
{
    // The uncolored encoding must be exactly the pre-color one: the
    // sweep backend's bit-identity guarantee rests on it.
    mem::AddressSpace space;
    const Capability c =
        space.rootCap().setAddress(0x4000).setBounds(64);
    EXPECT_EQ(c.color(), 0u);
    const Capability colored = c.withColor(5);
    EXPECT_NE(colored.packHigh(), c.packHigh());
    EXPECT_EQ(colored.withColor(0).packHigh(), c.packHigh());
}

TEST(BackendMeta, ColorPropagatesThroughDerivation)
{
    mem::AddressSpace space;
    const Capability c = space.rootCap()
                             .setAddress(0x8000)
                             .setBounds(128)
                             .withColor(11);
    EXPECT_EQ(c.setAddress(0x8010).color(), 11u);
    EXPECT_EQ(c.setBounds(64).color(), 11u);
}

TEST(BackendMeta, ChunkIdTagRoundTripsBesideSizeAndFlags)
{
    mem::TaggedMemory memory;
    const uint64_t addr = mem::kHeapBase;
    alloc::ChunkView chunk(memory, addr);
    chunk.setHeader(0x2000, alloc::kCinuse | alloc::kPinuse);
    chunk.setIdTag(0xABCDEF);
    EXPECT_EQ(chunk.idTag(), 0xABCDEFu);
    EXPECT_EQ(chunk.size(), 0x2000u);
    EXPECT_TRUE(chunk.cinuse());
    // Flag updates must not clobber the tag, and vice versa.
    chunk.setFlags(alloc::kCinuse | alloc::kQuarantine);
    EXPECT_EQ(chunk.idTag(), 0xABCDEFu);
    chunk.setIdTag(0x17);
    EXPECT_TRUE(chunk.quarantined());
    EXPECT_EQ(chunk.size(), 0x2000u);
    EXPECT_EQ(chunk.idTag(), 0x17u);
}

TEST(BackendMeta, NamesParseAndRoundTrip)
{
    for (const BackendKind kind :
         {BackendKind::Sweep, BackendKind::Color,
          BackendKind::ObjectId}) {
        BackendKind parsed;
        ASSERT_TRUE(parseBackend(backendName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    BackendKind parsed;
    EXPECT_TRUE(parseBackend("object-id", parsed));
    EXPECT_EQ(parsed, BackendKind::ObjectId);
    EXPECT_FALSE(parseBackend("laser", parsed));
}

// ---------------------------------------------------------------
// Backend mechanics on a live engine
// ---------------------------------------------------------------

CherivokeConfig
tinyHeap()
{
    CherivokeConfig cfg;
    cfg.minQuarantineBytes = 256 * KiB; // stay below pressure
    return cfg;
}

EngineConfig
backendEngine(BackendKind kind, const BackendConfig &backend_cfg)
{
    EngineConfig cfg;
    cfg.backend = kind;
    cfg.backendConfig = backend_cfg;
    return cfg;
}

TEST(ColorBackend, AllocationsCarryPoolColors)
{
    BackendConfig bcfg;
    bcfg.colors = 4;
    bcfg.allocsPerColor = 2;
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyHeap());
    RevocationEngine engine(heap, space,
                            backendEngine(BackendKind::Color, bcfg));
    auto *backend = dynamic_cast<revoke::ColorBackend *>(
        &engine.domainBackend(0));
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->poolColors(), 4u);

    const Capability a = heap.malloc(64);
    const Capability b = heap.malloc(64);
    const Capability c = heap.malloc(64);
    EXPECT_EQ(a.color(), 1u); // FIFO hands colors out in order
    EXPECT_EQ(b.color(), 1u); // shares until the cohort seals
    EXPECT_EQ(c.color(), 2u);
    EXPECT_EQ(engine.domainBackendStats(0).colorAssigns, 3u);
}

TEST(ColorBackend, ExhaustionForcesCohortSharing)
{
    BackendConfig bcfg;
    bcfg.colors = 2;
    bcfg.allocsPerColor = 1;
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyHeap());
    RevocationEngine engine(heap, space,
                            backendEngine(BackendKind::Color, bcfg));

    // Two allocations seal both colors; the third finds the pool
    // empty with nothing retired and must share deterministically.
    const Capability a = heap.malloc(64);
    const Capability b = heap.malloc(64);
    const Capability c = heap.malloc(64);
    EXPECT_EQ(a.color(), 1u);
    EXPECT_EQ(b.color(), 2u);
    EXPECT_EQ(c.color(), 1u); // lowest live color
    const BackendStats &stats = engine.domainBackendStats(0);
    EXPECT_GE(stats.colorExhaustionStalls, 1u);
    EXPECT_GE(stats.colorForcedShares, 1u);
}

TEST(ColorBackend, RetiredColorsRecycleWithGenerationBump)
{
    BackendConfig bcfg;
    bcfg.colors = 2;
    bcfg.allocsPerColor = 1;
    bcfg.recycleFraction = 0.5; // one retired color triggers a scan
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyHeap());
    RevocationEngine engine(heap, space,
                            backendEngine(BackendKind::Color, bcfg));
    auto *backend = dynamic_cast<revoke::ColorBackend *>(
        &engine.domainBackend(0));
    ASSERT_NE(backend, nullptr);

    const Capability a = heap.malloc(64);
    ASSERT_EQ(a.color(), 1u);
    ASSERT_EQ(backend->generation(1), 0u);
    heap.free(a); // cohort fully dead: color 1 retires
    EXPECT_EQ(backend->retiredColors(), 1u);
    EXPECT_TRUE(engine.quarantinePressure());

    engine.maybeRevoke();
    const BackendStats &stats = engine.domainBackendStats(0);
    EXPECT_EQ(stats.colorsRetired, 1u);
    EXPECT_EQ(stats.colorsRecycled, 1u);
    EXPECT_EQ(stats.recycleScans, 1u);
    EXPECT_GT(stats.metadataBytes, 0u);
    EXPECT_EQ(backend->retiredColors(), 0u);
    EXPECT_EQ(backend->generation(1), 1u);
    // The recycled color rejoins the FIFO behind the untouched one.
    const Capability b = heap.malloc(64);
    EXPECT_EQ(b.color(), 2u);
    const Capability c = heap.malloc(64);
    EXPECT_EQ(c.color(), 1u); // generation-1 reissue
}

TEST(ColorBackend, RecyclingScanRevokesDanglers)
{
    BackendConfig bcfg;
    bcfg.colors = 2;
    bcfg.allocsPerColor = 1;
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyHeap());
    RevocationEngine engine(heap, space,
                            backendEngine(BackendKind::Color, bcfg));

    const Capability a = heap.malloc(64);
    space.memory().writeCap(mem::kGlobalsBase, a);
    heap.free(a);
    engine.maybeRevoke();
    // The recycling scan is a full sweep: the dangling root died.
    EXPECT_FALSE(space.memory().readCap(mem::kGlobalsBase).tag());
}

TEST(ObjectIdBackend, FreesReleaseImmediatelyAndCompact)
{
    BackendConfig bcfg;
    bcfg.idCompactRetired = 4;
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyHeap());
    RevocationEngine engine(
        heap, space, backendEngine(BackendKind::ObjectId, bcfg));
    auto *backend = dynamic_cast<revoke::ObjectIdBackend *>(
        &engine.domainBackend(0));
    ASSERT_NE(backend, nullptr);

    std::vector<Capability> caps;
    for (int i = 0; i < 6; ++i)
        caps.push_back(heap.malloc(64));
    EXPECT_EQ(backend->liveIds(), 6u);
    // IDs are stamped inline in the chunk header.
    EXPECT_EQ(alloc::ChunkView(
                  space.memory(),
                  alloc::DlAllocator::chunkOf(caps[0].base()))
                  .idTag(),
              1u);

    for (int i = 0; i < 3; ++i)
        heap.free(caps[i]);
    // O(1) retirement: nothing quarantines, memory reuses now.
    EXPECT_EQ(heap.quarantinedBytes(), 0u);
    EXPECT_EQ(backend->retiredIds(), 3u);
    EXPECT_FALSE(engine.quarantinePressure());

    heap.free(caps[3]); // 4 retired >= threshold
    EXPECT_TRUE(engine.quarantinePressure());
    engine.maybeRevoke();
    const BackendStats &stats = engine.domainBackendStats(0);
    EXPECT_EQ(stats.idCompactions, 1u);
    EXPECT_EQ(stats.idTableEntriesCompacted, 4u);
    EXPECT_EQ(backend->retiredIds(), 0u);
    EXPECT_EQ(backend->liveIds(), 2u);
    EXPECT_GT(stats.metadataBytes, 0u);
}

TEST(ObjectIdBackend, PointerUseBillsIdChecks)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyHeap());
    RevocationEngine engine(heap, space,
                            backendEngine(BackendKind::ObjectId, {}));
    engine.notePointerUse(3);
    engine.notePointerUse();
    const BackendStats &stats = engine.domainBackendStats(0);
    EXPECT_EQ(stats.idChecks, 4u);
    EXPECT_EQ(stats.metadataBytes, 4u * 8u);
}

TEST(SweepBackend, PointerUseIsFree)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyHeap());
    RevocationEngine engine(heap, space, EngineConfig{});
    engine.notePointerUse(100);
    EXPECT_EQ(engine.domainBackendStats(0), BackendStats{});
}

// ---------------------------------------------------------------
// Cross-backend parity on the full pipeline
// ---------------------------------------------------------------

sim::ExperimentConfig
parityConfig(BackendKind kind)
{
    sim::ExperimentConfig cfg;
    cfg.scale = 1.0 / 256;
    cfg.durationSec = 0.3;
    cfg.seed = 7;
    cfg.backend = kind;
    return cfg;
}

/** The statistics no backend may perturb: what the mutator did.
 *  Byte totals (freedBytes, peakLiveBytes) are deliberately absent —
 *  release timing changes dlmalloc chunk splitting, so usable sizes
 *  differ across backends by design; they are compared with a
 *  tolerance instead. */
struct MutatorFingerprint
{
    uint64_t allocCalls, freeCalls, ptrStores;
    uint64_t peakLiveAllocs;
    double virtualSeconds;

    bool operator==(const MutatorFingerprint &o) const = default;

    static MutatorFingerprint
    of(const workload::DriverResult &r)
    {
        return {r.allocCalls, r.freeCalls, r.ptrStores,
                r.peakLiveAllocs, r.virtualSeconds};
    }
};

/** Byte totals agree within fractional @p tolerance. */
void
expectBytesClose(const workload::DriverResult &a,
                 const workload::DriverResult &b,
                 double tolerance = 0.01)
{
    EXPECT_NEAR(static_cast<double>(a.freedBytes),
                static_cast<double>(b.freedBytes),
                tolerance * static_cast<double>(b.freedBytes));
    EXPECT_NEAR(static_cast<double>(a.peakLiveBytes),
                static_cast<double>(b.peakLiveBytes),
                tolerance * static_cast<double>(b.peakLiveBytes));
}

TEST(BackendParity, SeededTraceAgreesAcrossBackends)
{
    const auto &profile = workload::profileFor("xalancbmk");
    const sim::BenchResult sweep =
        sim::runBenchmark(profile, parityConfig(BackendKind::Sweep));
    const sim::BenchResult color =
        sim::runBenchmark(profile, parityConfig(BackendKind::Color));
    const sim::BenchResult objid = sim::runBenchmark(
        profile, parityConfig(BackendKind::ObjectId));

    const MutatorFingerprint want =
        MutatorFingerprint::of(sweep.run);
    EXPECT_GT(want.allocCalls, 0u);
    EXPECT_GT(want.freeCalls, 0u);
    EXPECT_EQ(MutatorFingerprint::of(color.run), want);
    EXPECT_EQ(MutatorFingerprint::of(objid.run), want);
    expectBytesClose(color.run, sweep.run);
    expectBytesClose(objid.run, sweep.run);

    // And the backend-specific costs land where they should.
    EXPECT_EQ(sweep.backendStats, BackendStats{});
    EXPECT_GT(color.backendStats.colorAssigns, 0u);
    EXPECT_EQ(color.backendStats.idChecks, 0u);
    EXPECT_GT(objid.backendStats.idChecks, 0u);
    EXPECT_EQ(objid.backendStats.colorAssigns, 0u);
    EXPECT_EQ(objid.run.revoker.sweep.pagesSwept, 0u);
}

TEST(BackendParity, RunsAreDeterministicPerBackend)
{
    const auto &profile = workload::profileFor("omnetpp");
    for (const BackendKind kind :
         {BackendKind::Sweep, BackendKind::Color,
          BackendKind::ObjectId}) {
        const sim::BenchResult a =
            sim::runBenchmark(profile, parityConfig(kind));
        const sim::BenchResult b =
            sim::runBenchmark(profile, parityConfig(kind));
        EXPECT_EQ(MutatorFingerprint::of(a.run),
                  MutatorFingerprint::of(b.run))
            << backendName(kind);
        EXPECT_EQ(a.backendStats, b.backendStats)
            << backendName(kind);
        EXPECT_EQ(a.run.revoker.epochs, b.run.revoker.epochs)
            << backendName(kind);
    }
}

TEST(BackendParity, MixedTenantBackendsShareOneEngine)
{
    const auto &profile = workload::profileFor("omnetpp");
    sim::ExperimentConfig cfg = parityConfig(BackendKind::Sweep);
    cfg.tenants = 3;
    cfg.tenantBackends = {BackendKind::Sweep, BackendKind::Color,
                          BackendKind::ObjectId};
    const std::vector<workload::Trace> traces =
        sim::synthesizeTenantTraces(profile, cfg);

    const sim::MultiTenantBenchResult mixed =
        sim::runMultiTenantBenchmark(profile, cfg,
                                     sim::MachineProfile::x86(),
                                     &traces);
    ASSERT_EQ(mixed.run.tenants.size(), 3u);

    // Per-tenant mutator statistics must match a homogeneous
    // all-sweep run of the very same traces: the backend mix only
    // moves revocation costs, never what the tenants computed.
    sim::ExperimentConfig all_sweep = cfg;
    all_sweep.tenantBackends.clear();
    const sim::MultiTenantBenchResult uniform =
        sim::runMultiTenantBenchmark(profile, all_sweep,
                                     sim::MachineProfile::x86(),
                                     &traces);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(
            MutatorFingerprint::of(mixed.run.tenants[i].run),
            MutatorFingerprint::of(uniform.run.tenants[i].run))
            << "tenant " << i;
        expectBytesClose(mixed.run.tenants[i].run,
                         uniform.run.tenants[i].run);
    }
}

} // namespace
} // namespace revoke
} // namespace cherivoke

/**
 * @file
 * Tests for the two-level direct-map page directory behind
 * mem::TaggedMemory and the thread-safe raw shadow-store path:
 * lazy-materialisation semantics, sparse/far-apart address layouts,
 * concurrent shadow mutation, and serial-vs-threaded paint
 * equivalence (shadow bytes and PaintStats).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "alloc/shadow_map.hh"
#include "mem/tagged_memory.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace cherivoke {
namespace mem {
namespace {

using alloc::PaintStats;
using alloc::QuarantineRun;
using alloc::QuarantineShard;
using alloc::ShadowMap;

TEST(PageDirectoryTest, LazyMaterialisationPreserved)
{
    TaggedMemory mem;
    const uint64_t base = 0x200000;
    mem.pageTable().map(base, 16 * kPageBytes, ProtRead | ProtWrite);

    EXPECT_EQ(mem.residentPages(), 0u);
    EXPECT_EQ(mem.pageIfPresent(base), nullptr);

    // Reads of untouched mapped pages observe zeros and do not
    // materialise anything.
    EXPECT_EQ(mem.readU64(base + 3 * kPageBytes), 0u);
    EXPECT_FALSE(mem.readTag(base + 3 * kPageBytes));
    uint8_t buf[64] = {1};
    mem.peekBytes(base + 5 * kPageBytes, buf, sizeof(buf));
    for (const uint8_t b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(mem.residentPages(), 0u);

    // A write materialises exactly one page.
    mem.writeU64(base + 3 * kPageBytes, 42);
    EXPECT_EQ(mem.residentPages(), 1u);
    EXPECT_NE(mem.pageIfPresent(base + 3 * kPageBytes), nullptr);
    EXPECT_EQ(mem.pageIfPresent(base + 4 * kPageBytes), nullptr);
    EXPECT_EQ(mem.readU64(base + 3 * kPageBytes), 42u);
}

TEST(PageDirectoryTest, SparseFarApartLayouts)
{
    // Addresses spread across distinct directory leaves (each leaf
    // spans 1 GiB): low memory, the heap, hundreds of GiB up, the
    // shadow region, and near the top of the supported VA space.
    TaggedMemory mem;
    const uint64_t addrs[] = {
        0x1000,
        kHeapBase + 123 * kPageBytes,
        300 * GiB + 0x2000,
        kShadowBase + 0x7000,
        (uint64_t{1} << 47) + 11 * kPageBytes,
    };
    uint64_t value = 0x1111;
    for (const uint64_t a : addrs) {
        mem.pageTable().map(a & ~(kPageBytes - 1), kPageBytes,
                            ProtRead | ProtWrite);
        mem.writeU64(a, value);
        value += 0x1111;
    }
    EXPECT_EQ(mem.residentPages(), std::size(addrs));
    value = 0x1111;
    for (const uint64_t a : addrs) {
        EXPECT_EQ(mem.readU64(a), value) << std::hex << a;
        // The neighbouring page stays unmaterialised.
        EXPECT_EQ(mem.pageIfPresent(a + kPageBytes), nullptr);
        value += 0x1111;
    }
}

TEST(PageDirectoryTest, BeyondVaWidthIsAbsentOrFatal)
{
    TaggedMemory mem;
    const uint64_t beyond = uint64_t{1} << 50;
    // Lookups of out-of-range addresses are well-defined misses...
    EXPECT_EQ(mem.pageIfPresent(beyond), nullptr);
    uint8_t byte = 0xab;
    mem.peekBytes(beyond, &byte, 1);
    EXPECT_EQ(byte, 0);
    // ...but materialising one is a configuration error.
    EXPECT_THROW(mem.shadowFill(beyond, 0xff, 1), FatalError);
}

TEST(PageDirectoryTest, ShadowStorePathSkipsTagClearing)
{
    TaggedMemory mem;
    const uint64_t base = 0x400000;
    mem.pageTable().map(base, kPageBytes, ProtRead | ProtWrite);
    const cap::Capability c = cap::Capability::root()
                                  .setAddress(base)
                                  .setBounds(64);
    mem.writeCap(base, c);
    ASSERT_TRUE(mem.readTag(base));

    // A normal data fill would clear the granule tag; the raw shadow
    // path deliberately does not (shadow bytes never carry tags, so
    // the shadow store skips the whole tag machinery).
    mem.shadowFill(base, 0x5a, kGranuleBytes);
    EXPECT_TRUE(mem.readTag(base));
    EXPECT_EQ(mem.peekU8(base + 3), 0x5a);

    // shadowApplyBits sets and clears individual bits atomically.
    mem.shadowApplyBits(base + 64, 0b1010, true);
    EXPECT_EQ(mem.peekU8(base + 64), 0b1010);
    mem.shadowApplyBits(base + 64, 0b0010, false);
    EXPECT_EQ(mem.peekU8(base + 64), 0b1000);
}

TEST(PageDirectoryTest, ConcurrentShadowBitApplication)
{
    // Eight threads OR disjoint bits into the same shared bytes; the
    // atomic RMW must lose no updates regardless of interleaving.
    TaggedMemory mem;
    const uint64_t base = kShadowBase;
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kBytes = 512;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&mem, t] {
            for (uint64_t b = 0; b < kBytes; ++b) {
                mem.shadowApplyBits(
                    base + b, static_cast<uint8_t>(1u << t), true);
            }
        });
    }
    for (auto &t : pool)
        t.join();
    for (uint64_t b = 0; b < kBytes; ++b)
        ASSERT_EQ(mem.peekU8(base + b), 0xff) << "byte " << b;
}

/** Band the runs by start address, exactly as
 *  Quarantine::shardedRuns does — including runs that straddle a
 *  band boundary (they stay whole in the band holding their start). */
std::vector<QuarantineShard>
bandRuns(const std::vector<QuarantineRun> &runs, uint64_t lo,
         uint64_t hi, unsigned shards)
{
    std::vector<QuarantineShard> out(shards);
    const uint64_t span = (hi - lo + shards - 1) / shards;
    for (unsigned s = 0; s < shards; ++s) {
        out[s].lo = lo + s * span;
        out[s].hi = std::min(hi, lo + (s + 1) * span);
    }
    for (const QuarantineRun &run : runs) {
        const unsigned s = static_cast<unsigned>(
            std::min<uint64_t>((run.addr - lo) / span, shards - 1));
        out[s].runs.push_back(run);
    }
    return out;
}

TEST(PageDirectoryTest, ThreadedPaintMatchesSerial)
{
    // A deterministic run list over a 4 MiB heap span, sized and
    // spaced so that many runs straddle the shard band boundaries.
    Rng rng(97);
    std::vector<QuarantineRun> runs;
    uint64_t cursor = kHeapBase;
    const uint64_t span_end = kHeapBase + 4 * MiB;
    while (cursor + 4096 < span_end) {
        QuarantineRun run;
        run.addr = cursor;
        run.size = alloc::kChunkHeader +
                   rng.nextLogUniform(16, 8 * KiB) / 16 * 16;
        runs.push_back(run);
        cursor = run.end() + rng.nextBounded(1024) / 16 * 16;
    }
    ASSERT_GT(runs.size(), 100u);

    // Serial reference.
    TaggedMemory ref_mem;
    ShadowMap ref_shadow(ref_mem);
    PaintStats ref_stats;
    for (const QuarantineRun &run : runs) {
        ref_stats += ref_shadow.paint(run.addr + alloc::kChunkHeader,
                                      run.size - alloc::kChunkHeader);
    }
    const uint64_t s_lo = shadowAddrOf(kHeapBase);
    const uint64_t s_len = shadowAddrOf(span_end) - s_lo + 1;
    std::vector<uint8_t> ref_bytes(s_len);
    ref_mem.peekBytes(s_lo, ref_bytes.data(), ref_bytes.size());
    ASSERT_GT(ref_stats.total(), 0u);

    for (const unsigned shards : {1u, 2u, 4u, 8u}) {
        TaggedMemory mem;
        ShadowMap shadow(mem);
        const PaintStats stats = alloc::paintShardsConcurrent(
            shadow,
            bandRuns(runs, kHeapBase, span_end, shards));
        EXPECT_EQ(stats.bitOps, ref_stats.bitOps) << shards;
        EXPECT_EQ(stats.byteOps, ref_stats.byteOps) << shards;
        EXPECT_EQ(stats.wordOps, ref_stats.wordOps) << shards;
        EXPECT_EQ(stats.dwordOps, ref_stats.dwordOps) << shards;
        std::vector<uint8_t> bytes(s_len);
        mem.peekBytes(s_lo, bytes.data(), bytes.size());
        EXPECT_EQ(bytes, ref_bytes)
            << "shadow contents diverged at shards=" << shards;
    }
}

TEST(PageDirectoryTest, ThreadedPaintThroughViewsSharingBytes)
{
    // Adjacent views that split inside one shadow byte: the two
    // painters RMW the same byte concurrently, which must lose
    // neither half (the atomic shadowApplyBits path).
    for (int repeat = 0; repeat < 20; ++repeat) {
        TaggedMemory mem;
        ShadowMap shadow(mem);
        // countPainted reads through the checked path: map the
        // shadow pages covering the heap span.
        const uint64_t s_lo =
            alignDown(shadowAddrOf(kHeapBase), kPageBytes);
        const uint64_t s_hi =
            alignUp(shadowAddrOf(kHeapBase + 1 * MiB) + 1,
                    kPageBytes);
        mem.pageTable().map(s_lo, s_hi - s_lo,
                            ProtRead | ProtWrite);
        // Split at granule 3 of 8 within a shadow byte.
        const uint64_t split = kHeapBase + 3 * kGranuleBytes;
        ShadowMap::View left = shadow.view(kHeapBase, split);
        ShadowMap::View right =
            shadow.view(split, kHeapBase + 1 * MiB);
        std::thread a([&] { left.paint(kHeapBase, 64 * KiB); });
        std::thread b([&] { right.paint(kHeapBase, 64 * KiB); });
        a.join();
        b.join();
        EXPECT_EQ(shadow.countPainted(kHeapBase, 64 * KiB),
                  64 * KiB / kGranuleBytes);
    }
}

} // namespace
} // namespace mem
} // namespace cherivoke

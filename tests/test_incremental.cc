/**
 * @file
 * Tests for incremental revocation with the Cornucopia-style load
 * barrier: bounded pauses, mid-epoch mutator interference (the
 * copy-behind-the-sweep attack), epoch snapshot isolation, and a
 * randomised interleaving soak.
 */

#include <gtest/gtest.h>

#include <set>

#include "alloc/cherivoke_alloc.hh"
#include "revoke/revocation_engine.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace cherivoke {
namespace revoke {
namespace {

using alloc::CherivokeAllocator;
using alloc::CherivokeConfig;
using cap::Capability;

CherivokeConfig
tinyConfig()
{
    CherivokeConfig cfg;
    cfg.minQuarantineBytes = 16;
    return cfg;
}

EngineConfig
incrementalConfig()
{
    EngineConfig cfg;
    cfg.policy = PolicyKind::Incremental;
    return cfg;
}

class IncrementalTest : public ::testing::Test
{
  protected:
    IncrementalTest()
        : heap(space, tinyConfig()),
          inc(heap, space, incrementalConfig())
    {}

    mem::AddressSpace space;
    CherivokeAllocator heap;
    RevocationEngine inc;
};

TEST_F(IncrementalTest, WholeEpochRevokesDanglers)
{
    const Capability a = heap.malloc(64);
    space.memory().writeCap(mem::kGlobalsBase, a);
    heap.free(a);
    inc.revokeIncrementally(/*pages_per_step=*/1);
    EXPECT_FALSE(space.memory().readCap(mem::kGlobalsBase).tag());
    EXPECT_EQ(inc.totals().epochs, 1u);
}

TEST_F(IncrementalTest, StepsAreBounded)
{
    // Spread capabilities over many pages so the worklist is long.
    std::vector<Capability> caps;
    for (int i = 0; i < 64; ++i) {
        const Capability c = heap.malloc(8 * KiB);
        space.memory().storeCap(c, c.base(), c);
        caps.push_back(c);
    }
    heap.free(caps[0]);
    inc.beginEpoch();
    const size_t total = inc.pagesRemaining();
    ASSERT_GT(total, 8u);
    size_t remaining = total;
    int steps = 0;
    while (remaining > 0) {
        const size_t after = inc.step(4);
        EXPECT_GE(remaining, after);
        EXPECT_LE(remaining - after, 4u) << "pause bound violated";
        remaining = after;
        ++steps;
    }
    EXPECT_GE(steps, static_cast<int>(total / 4));
    inc.finishEpoch();
}

TEST_F(IncrementalTest, LoadBarrierStripsMidEpochCopies)
{
    // The copy-behind-the-sweep attack: the mutator loads a dangling
    // capability from a page the sweep has not reached yet and
    // stores it into a region the sweep has already passed.
    auto &memory = space.memory();

    // Make many CapDirty pages *before* the hideout so the page
    // worklist is long and step(1) cannot reach the hideout.
    const Capability filler = heap.malloc(256 * KiB);
    for (uint64_t off = 0; off < 256 * KiB; off += kPageBytes)
        memory.storeCap(filler, filler.base() + off, filler);
    const Capability hideout = heap.malloc(4 * KiB); // later pages
    const Capability victim = heap.malloc(64);
    memory.storeCap(hideout, hideout.base(), victim);
    heap.free(victim);

    inc.beginEpoch();
    ASSERT_GT(inc.pagesRemaining(), 32u);
    // Sweep only the first page, then "run" the mutator: load the
    // dangling cap from the unswept hideout...
    inc.step(1);
    const Capability loaded =
        memory.loadCap(hideout, hideout.base());
    // ...the load barrier already stripped it.
    EXPECT_FALSE(loaded.tag())
        << "barrier must strip dangling caps at the load";
    EXPECT_GT(memory.counters().value("mem.load_barrier_strips"),
              0u);
    // Storing the (now untagged) value anywhere is harmless.
    memory.writeCap(mem::kGlobalsBase, loaded);
    while (inc.step(4) > 0) {
    }
    inc.finishEpoch();
    EXPECT_FALSE(memory.readCap(mem::kGlobalsBase).tag());
    EXPECT_FALSE(memory.readCap(hideout.base()).tag());
}

TEST_F(IncrementalTest, LiveCapsUnaffectedByBarrier)
{
    auto &memory = space.memory();
    const Capability live = heap.malloc(64);
    const Capability holder = heap.malloc(64);
    memory.storeCap(holder, holder.base(), live);
    const Capability dead = heap.malloc(64);
    heap.free(dead);

    inc.beginEpoch();
    const Capability loaded = memory.loadCap(holder, holder.base());
    EXPECT_TRUE(loaded.tag()) << "live caps load normally";
    EXPECT_EQ(loaded, live);
    while (inc.step(8) > 0) {
    }
    inc.finishEpoch();
    EXPECT_TRUE(memory.readCap(holder.base()).tag());
}

TEST_F(IncrementalTest, MidEpochFreesJoinTheNextEpoch)
{
    auto &memory = space.memory();
    const Capability first = heap.malloc(64);
    heap.free(first);

    inc.beginEpoch();
    // Freed while the epoch is open: must NOT be released when this
    // epoch finishes (it was never painted or swept).
    const Capability late = heap.malloc(64);
    memory.writeCap(mem::kGlobalsBase, late);
    heap.free(late);
    while (inc.step(8) > 0) {
    }
    inc.finishEpoch();

    // The stale reference to `late` is still tagged (not yet
    // revoked) and its memory must not be reusable yet.
    EXPECT_TRUE(memory.readCap(mem::kGlobalsBase).tag());
    EXPECT_GT(heap.quarantinedBytes(), 0u);
    const Capability fresh = heap.malloc(64);
    EXPECT_NE(fresh.base(), late.base());

    // The next epoch takes care of it.
    inc.revokeIncrementally(8);
    EXPECT_FALSE(memory.readCap(mem::kGlobalsBase).tag());
}

TEST_F(IncrementalTest, BarrierRemovedAfterFinish)
{
    const Capability a = heap.malloc(64);
    heap.free(a);
    inc.revokeIncrementally(4);
    EXPECT_FALSE(space.memory().loadBarrierActive());
}

TEST_F(IncrementalTest, FinishBeforeDrainPanics)
{
    std::vector<Capability> caps;
    for (int i = 0; i < 32; ++i) {
        const Capability c = heap.malloc(8 * KiB);
        space.memory().storeCap(c, c.base(), c);
        caps.push_back(c);
    }
    heap.free(caps[5]);
    inc.beginEpoch();
    ASSERT_GT(inc.pagesRemaining(), 1u);
    EXPECT_THROW(inc.finishEpoch(), PanicError);
    while (inc.step(16) > 0) {
    }
    EXPECT_NO_THROW(inc.finishEpoch());
}

TEST_F(IncrementalTest, DoubleBeginPanics)
{
    const Capability a = heap.malloc(64);
    heap.free(a);
    inc.beginEpoch();
    EXPECT_THROW(inc.beginEpoch(), PanicError);
    while (inc.step(8) > 0) {
    }
    inc.finishEpoch();
}

/** Randomised soak: mutator ops interleaved with epoch steps. */
class IncrementalSoak : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(IncrementalSoak, NoDanglingCapSurvivesInterleavedEpochs)
{
    mem::AddressSpace space;
    CherivokeConfig cfg;
    cfg.minQuarantineBytes = 2 * KiB;
    CherivokeAllocator heap(space, cfg);
    RevocationEngine inc(heap, space, incrementalConfig());
    auto &memory = space.memory();
    Rng rng(GetParam());

    std::map<uint64_t, Capability> live;
    // Address ranges freed in the epoch *before* the open one (whose
    // release has completed) must have no tagged references left.
    std::vector<std::pair<uint64_t, uint64_t>> last_epoch_freed;
    std::vector<std::pair<uint64_t, uint64_t>> freed_now;

    for (int op = 0; op < 3000; ++op) {
        const double r = rng.nextDouble();
        if (r < 0.45 || live.empty()) {
            const Capability c =
                heap.malloc(rng.nextLogUniform(32, 2048));
            if (!live.empty() && rng.nextBool(0.6)) {
                auto it = live.begin();
                std::advance(it, rng.nextBounded(live.size()));
                // Mutator copies: loads + stores through the
                // barrier when an epoch is open.
                memory.storeCap(it->second, it->second.base(), c);
            }
            if (rng.nextBool(0.25)) {
                memory.writeCap(mem::kGlobalsBase +
                                    rng.nextBounded(1024) * 16,
                                c);
            }
            live.emplace(c.base(), c);
        } else if (r < 0.85) {
            auto it = live.begin();
            std::advance(it, rng.nextBounded(live.size()));
            freed_now.emplace_back(
                it->second.base(),
                static_cast<uint64_t>(it->second.top()));
            heap.free(it->second);
            live.erase(it);
        } else if (!inc.epochOpen() && heap.needsSweep()) {
            inc.beginEpoch();
            last_epoch_freed = freed_now;
            freed_now.clear();
        }
        if (inc.epochOpen()) {
            if (inc.step(rng.nextRange(1, 6)) == 0) {
                inc.finishEpoch();
                // Check: nothing tagged points into the epoch's set.
                for (uint64_t s = 0; s < 1024; ++s) {
                    const Capability c = memory.readCap(
                        mem::kGlobalsBase + s * 16);
                    if (!c.tag())
                        continue;
                    for (const auto &[lo, hi] : last_epoch_freed) {
                        EXPECT_FALSE(c.base() >= lo && c.base() < hi)
                            << "dangling global survived epoch";
                    }
                }
                last_epoch_freed.clear();
            }
        }
    }
    if (inc.epochOpen()) {
        while (inc.step(16) > 0) {
        }
        inc.finishEpoch();
    }
    heap.dl().validateHeap();
    EXPECT_GT(inc.totals().epochs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSoak,
                         ::testing::Values(31, 62, 93));

} // namespace
} // namespace revoke
} // namespace cherivoke

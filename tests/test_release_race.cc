/**
 * @file
 * releaseRange under concurrent mutator threads. The emergency
 * reclamation rung and tenant teardown both call
 * TaggedMemory::releaseRange while other tenants' mutator threads
 * keep materialising and writing pages elsewhere in the shared
 * address space. The PageDirectory contract only requires
 * quiescence over the *released* range, so disjoint traffic must
 * be safe — this test drives that pattern hard enough for TSan to
 * see any unsynchronised access in the two-level map.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mem/tagged_memory.hh"

using namespace cherivoke;

namespace {

constexpr uint64_t kStride = 4 * MiB;
constexpr unsigned kWorkers = 4;

} // namespace

TEST(ReleaseRace, DisjointMutatorsSurviveRepeatedRelease)
{
    mem::TaggedMemory memory;

    // Worker i owns [base + i*kStride, base + (i+1)*kStride); the
    // main thread releases a scratch stride above all of them.
    const uint64_t base = 16 * MiB;
    const uint64_t scratch = base + kWorkers * kStride;

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> writes{0};
    std::atomic<unsigned> started{0};
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (unsigned w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
            const uint64_t lo = base + w * kStride;
            uint64_t cursor = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                // Touch a fresh page most iterations so the worker
                // keeps inserting into the directory while the main
                // thread removes from it.
                const uint64_t addr =
                    lo + (cursor * kPageBytes + 8 * (cursor & 7)) %
                             (kStride - 64);
                memory.spanWriteU64(addr, cursor + 1);
                if (memory.spanReadU64(addr) != cursor + 1)
                    std::abort(); // gtest asserts aren't thread-safe
                ++cursor;
                writes.fetch_add(1, std::memory_order_relaxed);
                if (cursor == 1)
                    started.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    // On a single-CPU host the release loop below can otherwise
    // finish before any worker is ever scheduled, so wait until
    // every worker has written (and thus owns resident pages).
    while (started.load(std::memory_order_relaxed) < kWorkers)
        std::this_thread::yield();

    for (unsigned round = 0; round < 50; ++round) {
        // Materialise a handful of pages in the scratch stride,
        // then release the whole stride; only the main thread
        // holds references into it, so this satisfies the
        // quiescence contract while the workers stay hot.
        for (uint64_t p = 0; p < 8; ++p)
            memory.spanWriteU64(scratch + p * kPageBytes,
                                0xD15EA5E + round);
        const uint64_t resident = memory.residentPages();
        memory.releaseRange(scratch, kStride);
        EXPECT_LT(memory.residentPages(), resident);
        // Released pages must read as untouched zeroes.
        for (uint64_t p = 0; p < 8; ++p)
            ASSERT_EQ(memory.spanReadU64(scratch + p * kPageBytes),
                      0u);
    }

    stop.store(true, std::memory_order_relaxed);
    for (std::thread &t : workers)
        t.join();
    EXPECT_GT(writes.load(), 0u);

    // The workers' pages survived every release: spot-check the
    // last value each worker acknowledged is still visible.
    EXPECT_GT(memory.residentPages(), 0u);
}

/**
 * @file
 * Unit and property tests for the revocation shadow map: painting
 * correctness at every alignment, the width optimisation, clearing,
 * and the §3.3 lookup.
 */

#include <gtest/gtest.h>

#include <vector>

#include "alloc/shadow_map.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace cherivoke {
namespace alloc {
namespace {

class ShadowMapTest : public ::testing::Test
{
  protected:
    ShadowMapTest() : shadow(space.memory())
    {
        heap = space.mmapHeap(4 * MiB);
    }

    mem::AddressSpace space;
    ShadowMap shadow;
    uint64_t heap = 0;
};

TEST_F(ShadowMapTest, FreshMapIsClean)
{
    for (uint64_t off = 0; off < 4096; off += 16)
        EXPECT_FALSE(shadow.isRevoked(heap + off));
}

TEST_F(ShadowMapTest, PaintSingleGranule)
{
    shadow.paint(heap + 32, 16);
    EXPECT_FALSE(shadow.isRevoked(heap + 16));
    EXPECT_TRUE(shadow.isRevoked(heap + 32));
    EXPECT_TRUE(shadow.isRevoked(heap + 47)) << "same granule";
    EXPECT_FALSE(shadow.isRevoked(heap + 48));
}

TEST_F(ShadowMapTest, PaintRangeCoversExactGranules)
{
    shadow.paint(heap + 64, 160); // granules 4..13
    EXPECT_FALSE(shadow.isRevoked(heap + 48));
    for (uint64_t a = heap + 64; a < heap + 224; a += 16)
        EXPECT_TRUE(shadow.isRevoked(a));
    EXPECT_FALSE(shadow.isRevoked(heap + 224));
}

TEST_F(ShadowMapTest, UnalignedSizeRoundsUpToGranule)
{
    shadow.paint(heap, 17); // covers 2 granules
    EXPECT_TRUE(shadow.isRevoked(heap));
    EXPECT_TRUE(shadow.isRevoked(heap + 16));
    EXPECT_FALSE(shadow.isRevoked(heap + 32));
}

TEST_F(ShadowMapTest, MisalignedPaintPanics)
{
    EXPECT_THROW(shadow.paint(heap + 8, 16), PanicError);
}

TEST_F(ShadowMapTest, ClearUndoesPaint)
{
    shadow.paint(heap, 1024);
    EXPECT_EQ(shadow.countPainted(heap, 1024), 64u);
    shadow.clear(heap, 1024);
    EXPECT_EQ(shadow.countPainted(heap, 1024), 0u);
}

TEST_F(ShadowMapTest, ClearIsExactAtEdges)
{
    shadow.paint(heap, 4096);
    shadow.clear(heap + 1024, 2048);
    EXPECT_EQ(shadow.countPainted(heap, 1024), 64u);
    EXPECT_EQ(shadow.countPainted(heap + 1024, 2048), 0u);
    EXPECT_EQ(shadow.countPainted(heap + 3072, 1024), 64u);
}

TEST_F(ShadowMapTest, WideStoresUsedForLargeAlignedRuns)
{
    // 64 KiB starting at a 1 KiB-aligned heap address: the shadow
    // bytes are 8-byte aligned, so the body should use dword stores.
    const PaintStats st = shadow.paint(heap, 64 * KiB);
    EXPECT_GT(st.dwordOps, 0u);
    EXPECT_EQ(st.bitOps, 0u) << "fully aligned: no partial bytes";
    // 64 KiB = 4096 granules = 512 shadow bytes = 64 dwords.
    EXPECT_EQ(st.dwordOps, 64u);
}

TEST_F(ShadowMapTest, SmallUnalignedRunUsesBitOps)
{
    const PaintStats st = shadow.paint(heap + 48, 32);
    EXPECT_EQ(st.bitOps, 1u);
    EXPECT_EQ(st.dwordOps + st.wordOps + st.byteOps, 0u);
}

TEST_F(ShadowMapTest, BitByBitMatchesOptimisedResult)
{
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        const uint64_t addr =
            heap + rng.nextBounded(64 * KiB) / 16 * 16;
        const uint64_t size = rng.nextRange(16, 8 * KiB) / 16 * 16;

        shadow.paint(addr, size);
        std::vector<bool> optimised;
        for (uint64_t a = addr; a < addr + size; a += 16)
            optimised.push_back(shadow.isRevoked(a));
        shadow.clear(addr, size);

        shadow.paintBitByBit(addr, size);
        size_t idx = 0;
        for (uint64_t a = addr; a < addr + size; a += 16)
            EXPECT_EQ(shadow.isRevoked(a), optimised[idx++]);
        shadow.clear(addr, size);
    }
}

TEST_F(ShadowMapTest, OptimisedPaintUsesFewerOps)
{
    const PaintStats fast = shadow.paint(heap, 128 * KiB);
    shadow.clear(heap, 128 * KiB);
    const PaintStats slow = shadow.paintBitByBit(heap, 128 * KiB);
    EXPECT_LT(fast.total(), slow.total() / 16)
        << "width optimisation should reduce store count by >16x";
}

TEST_F(ShadowMapTest, DisjointRangesIndependent)
{
    shadow.paint(heap, 256);
    shadow.paint(heap + 1024, 256);
    shadow.clear(heap, 256);
    EXPECT_EQ(shadow.countPainted(heap, 256), 0u);
    EXPECT_EQ(shadow.countPainted(heap + 1024, 256), 16u);
}

TEST_F(ShadowMapTest, ShardViewsClampToTheirRange)
{
    // Two adjacent shard views splitting [heap, heap+4096) at an odd
    // granule boundary: each paints the full range, clamped; their
    // union must equal one unsharded paint, with no double coverage.
    const uint64_t split = heap + 17 * kGranuleBytes;
    ShadowMap::View left = shadow.view(heap, split);
    ShadowMap::View right = shadow.view(split, heap + 4096);

    left.paint(heap, 4096);
    EXPECT_EQ(shadow.countPainted(heap, 4096), 17u)
        << "left view must paint only its own granules";
    right.paint(heap, 4096);
    EXPECT_EQ(shadow.countPainted(heap, 4096), 256u);

    // Out-of-range requests are no-ops with empty statistics.
    const PaintStats disjoint = left.paint(heap + 64 * KiB, 4096);
    EXPECT_EQ(disjoint.total(), 0u);
    EXPECT_EQ(shadow.countPainted(heap + 64 * KiB, 4096), 0u);
}

TEST_F(ShadowMapTest, ShardedPaintIdempotentAcrossBoundaries)
{
    const uint64_t size = 64 * KiB;
    // Reference: one unsharded paint.
    shadow.paint(heap, size);
    std::vector<bool> reference;
    for (uint64_t a = heap; a < heap + size; a += kGranuleBytes)
        reference.push_back(shadow.isRevoked(a));
    shadow.clear(heap, size);

    // Sharded: three views with deliberately awkward boundaries.
    const uint64_t b1 = heap + 333 * kGranuleBytes;
    const uint64_t b2 = heap + 2048 * kGranuleBytes;
    ShadowMap::View views[] = {shadow.view(heap, b1),
                               shadow.view(b1, b2),
                               shadow.view(b2, heap + size)};
    for (int repeat = 0; repeat < 2; ++repeat) { // idempotence
        for (ShadowMap::View &v : views)
            v.paint(heap, size);
        size_t idx = 0;
        for (uint64_t a = heap; a < heap + size;
             a += kGranuleBytes) {
            ASSERT_EQ(shadow.isRevoked(a), reference[idx])
                << "granule " << idx << " repeat " << repeat;
            ++idx;
        }
    }

    // Unpaint through the views; clearing twice is also idempotent.
    for (int repeat = 0; repeat < 2; ++repeat) {
        for (ShadowMap::View &v : views)
            v.clear(heap, size);
        EXPECT_EQ(shadow.countPainted(heap, size), 0u);
    }
}

/** Property: paint/clear of random interleaved ranges matches a
 *  reference bitmap exactly. */
class ShadowMapProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ShadowMapProperty, MatchesReferenceModel)
{
    mem::AddressSpace space;
    ShadowMap shadow(space.memory());
    const uint64_t heap = space.mmapHeap(1 * MiB);
    const uint64_t granules = (256 * KiB) / 16;
    std::vector<bool> reference(granules, false);
    Rng rng(GetParam());

    for (int op = 0; op < 300; ++op) {
        const uint64_t g0 = rng.nextBounded(granules - 1);
        const uint64_t len =
            rng.nextRange(1, std::min<uint64_t>(granules - g0, 600));
        const bool set = rng.nextBool(0.6);
        if (set) {
            shadow.paint(heap + g0 * 16, len * 16);
        } else {
            shadow.clear(heap + g0 * 16, len * 16);
        }
        for (uint64_t g = g0; g < g0 + len; ++g)
            reference[g] = set;
    }

    for (uint64_t g = 0; g < granules; ++g) {
        ASSERT_EQ(shadow.isRevoked(heap + g * 16), reference[g])
            << "granule " << g;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShadowMapProperty,
                         ::testing::Values(101, 202, 303, 404));

} // namespace
} // namespace alloc
} // namespace cherivoke

/**
 * @file
 * Unit tests for the cache model, DRAM accounting, the hierarchical
 * tag controller, and the full hierarchy including the CLoadTags
 * path (paper §3.4.1, figure 4).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/dram.hh"
#include "cache/hierarchy.hh"
#include "cache/tag_controller.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace cache {
namespace {

CacheGeometry
tinyCache(uint64_t size = 1 * KiB, unsigned ways = 2)
{
    return CacheGeometry{"tiny", size, ways, kLineBytes};
}

TEST(Cache, GeometryArithmetic)
{
    const CacheGeometry g{"l1", 32 * KiB, 8, 64};
    EXPECT_EQ(g.numSets(), 64u);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(CacheGeometry{"bad", 1000, 3, 64}), PanicError);
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, MisalignedAccessPanics)
{
    Cache c(tinyCache());
    EXPECT_THROW(c.access(0x1004, false), PanicError);
}

TEST(Cache, LruEviction)
{
    // 2-way: fill a set with two lines, touch the first, insert a
    // third conflicting line; the second must be the victim.
    Cache c(tinyCache(1 * KiB, 2)); // 8 sets
    const uint64_t set_stride = 8 * kLineBytes;
    const uint64_t a = 0x0, b = a + set_stride, d = a + 2 * set_stride;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);       // refresh a
    const LineAccess r = c.access(d, false);
    EXPECT_TRUE(r.evictedValid);
    EXPECT_EQ(r.victimLine, b);
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c(tinyCache(1 * KiB, 2));
    const uint64_t set_stride = 8 * kLineBytes;
    c.access(0x0, true); // dirty
    c.access(set_stride, false);
    const LineAccess r = c.access(2 * set_stride, false);
    EXPECT_TRUE(r.evictedDirty);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(tinyCache(1 * KiB, 2));
    const uint64_t set_stride = 8 * kLineBytes;
    c.access(0x0, false);
    c.access(0x0, true); // hit, dirties the line
    c.access(set_stride, false);
    const LineAccess r = c.access(2 * set_stride, false);
    EXPECT_TRUE(r.evictedDirty);
}

TEST(Cache, InvalidateReportsDirtiness)
{
    Cache c(tinyCache());
    c.access(0x40, true);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.invalidate(0x40)) << "second invalidate is a no-op";
}

TEST(Cache, ResetClearsStateAndCounters)
{
    Cache c(tinyCache());
    c.access(0x40, false);
    c.reset();
    EXPECT_EQ(c.validLines(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Dram, TrafficAccumulates)
{
    Dram d;
    d.read(64);
    d.read(64);
    d.write(128);
    EXPECT_EQ(d.readBytes(), 128u);
    EXPECT_EQ(d.writeBytes(), 128u);
    EXPECT_EQ(d.totalBytes(), 256u);
    EXPECT_EQ(d.readAccesses(), 2u);
}

TEST(Dram, StreamTimeMatchesBandwidth)
{
    DramConfig cfg;
    cfg.readBandwidth = 1024.0 * 1024 * 1024; // 1 GiB/s
    cfg.writeBandwidth = 512.0 * 1024 * 1024;
    Dram d(cfg);
    d.read(1024 * 1024 * 1024);
    EXPECT_NEAR(d.streamTimeSeconds(), 1.0, 1e-9);
    d.write(512 * 1024 * 1024);
    EXPECT_NEAR(d.streamTimeSeconds(), 2.0, 1e-9);
}

TEST(TagController, CoverageConstants)
{
    // One leaf line covers 64B * 8 bits/byte granules of 16B = 8 KiB.
    EXPECT_EQ(kLeafLineCoverage, 8 * KiB);
    EXPECT_EQ(kRootLineCoverage, 4 * MiB);
}

TEST(TagController, RootShortCircuitAvoidsLeafFetch)
{
    Dram dram;
    TagController tc(CacheGeometry{"tc", 4 * KiB, 4, 64}, dram);
    // Tag-free region: first lookup reads only the root line.
    const TagLookup t = tc.lookup(0x100000, false);
    EXPECT_TRUE(t.rootShortCircuit);
    EXPECT_EQ(t.dramLineReads, 1u);
    // Second lookup in the same 4 MiB root region: fully cached.
    const TagLookup t2 = tc.lookup(0x110000, false);
    EXPECT_TRUE(t2.rootShortCircuit);
    EXPECT_EQ(t2.dramLineReads, 0u);
    EXPECT_EQ(tc.rootShortCircuits(), 2u);
}

TEST(TagController, TaggedRegionFetchesLeafOncePer8KiB)
{
    Dram dram;
    TagController tc(CacheGeometry{"tc", 4 * KiB, 4, 64}, dram);
    const TagLookup t = tc.lookup(0x200000, true);
    EXPECT_FALSE(t.rootShortCircuit);
    EXPECT_EQ(t.dramLineReads, 2u) << "root + leaf";
    // Next line in the same 8 KiB: both levels cached.
    const TagLookup t2 = tc.lookup(0x200040, true);
    EXPECT_EQ(t2.dramLineReads, 0u);
    EXPECT_TRUE(t2.tagCacheHit);
    // A different 8 KiB region under the same root: leaf fetch only.
    const TagLookup t3 = tc.lookup(0x202000, true);
    EXPECT_EQ(t3.dramLineReads, 1u);
}

TEST(Hierarchy, L1HitAfterFill)
{
    Hierarchy h;
    const AccessOutcome first = h.access(0x1000, 8, false);
    EXPECT_EQ(first.level, HitLevel::Dram);
    EXPECT_TRUE(first.offCore);
    const AccessOutcome second = h.access(0x1008, 8, false);
    EXPECT_EQ(second.level, HitLevel::L1);
    EXPECT_FALSE(second.offCore);
}

TEST(Hierarchy, MultiLineAccessTouchesEachLine)
{
    Hierarchy h;
    h.access(0x1000, 256, false); // 4 lines
    EXPECT_EQ(h.dram().readBytes(), 256u);
    EXPECT_EQ(h.l1().misses(), 4u);
}

TEST(Hierarchy, StraddlingAccessTouchesBothLines)
{
    Hierarchy h;
    h.access(0x103c, 8, false); // straddles 0x1000 and 0x1040 lines
    EXPECT_EQ(h.l1().misses(), 2u);
}

TEST(Hierarchy, DirtyL1VictimWritesBackToL2NotDram)
{
    HierarchyConfig cfg;
    cfg.l1 = CacheGeometry{"l1", 1 * KiB, 2, 64}; // 8 sets
    Hierarchy h(cfg);
    const uint64_t stride = 8 * kLineBytes;
    h.access(0x0, 8, true);
    h.access(stride, 8, false);
    h.access(2 * stride, 8, false); // evicts dirty 0x0 into L2
    EXPECT_EQ(h.dram().writeBytes(), 0u)
        << "writeback should be absorbed by L2";
    EXPECT_EQ(h.l2().writebacks(), 0u);
    // 0x0 now hits in L2.
    const AccessOutcome back = h.access(0x0, 8, false);
    EXPECT_EQ(back.level, HitLevel::L2);
}

TEST(Hierarchy, CloadTagsAnsweredByDataCacheWhenPresent)
{
    Hierarchy h;
    h.access(0x4000, 8, false); // fills all levels
    h.dram().reset();
    const AccessOutcome t = h.cloadTags(0x4000, true);
    EXPECT_EQ(t.level, HitLevel::L1);
    EXPECT_EQ(t.dramBytes, 0u);
    EXPECT_FALSE(t.offCore);
}

TEST(Hierarchy, CloadTagsStreamingDoesNotPolluteDataCaches)
{
    Hierarchy h;
    const AccessOutcome t = h.cloadTags(0x8000, true);
    EXPECT_TRUE(t.offCore);
    EXPECT_FALSE(h.l1().probe(0x8000));
    EXPECT_FALSE(h.l2().probe(0x8000));
    // Data was never fetched: DRAM traffic is tag lines only (<=128B),
    // far less than a 64B data line per 8 KiB swept.
    EXPECT_LE(t.dramBytes, 2 * kLineBytes);
}

TEST(Hierarchy, CloadTagsSecondLineInRegionIsTagCacheHit)
{
    Hierarchy h;
    (void)h.cloadTags(0x8000, true);
    const AccessOutcome t2 = h.cloadTags(0x8040, true);
    EXPECT_EQ(t2.level, HitLevel::TagCache);
    EXPECT_EQ(t2.dramBytes, 0u);
}

TEST(Hierarchy, OffCoreLinesCountsL2BoundaryCrossings)
{
    Hierarchy h;
    h.access(0x1000, 8, false); // cold miss: 1 crossing
    h.access(0x1000, 8, false); // L1 hit: none
    EXPECT_EQ(h.offCoreLines(), 1u);
}

TEST(Hierarchy, NoLlcProfileGoesStraightToDram)
{
    HierarchyConfig cfg;
    cfg.llc.reset(); // CHERI FPGA profile has no L3
    Hierarchy h(cfg);
    const AccessOutcome a = h.access(0x2000, 8, false);
    EXPECT_EQ(a.level, HitLevel::Dram);
    EXPECT_EQ(h.llc(), nullptr);
}

TEST(Hierarchy, ResetClearsEverything)
{
    Hierarchy h;
    h.access(0x1000, 64, true);
    h.cloadTags(0x9000, true);
    h.reset();
    EXPECT_EQ(h.dram().totalBytes(), 0u);
    EXPECT_EQ(h.offCoreLines(), 0u);
    EXPECT_EQ(h.l1().validLines(), 0u);
}

} // namespace
} // namespace cache
} // namespace cherivoke

/**
 * @file
 * Tests for adaptive hierarchical revocation scheduling: the §6.1.3
 * analytical model's properties (monotonicity, saturation), the
 * AdaptiveController's control law (monotone response to free rate,
 * knob clamping, tier promote/demote hysteresis), the TierMap's
 * sound page-skip condition, birth stamps through the allocator and
 * quarantine, tier-scoped epochs on a live engine, bit-identical
 * two-run adaptive replay, and per-backend parity of the
 * non-adaptive paths.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "alloc/chunk.hh"
#include "revoke/adaptive.hh"
#include "revoke/analytical_model.hh"
#include "revoke/revocation_engine.hh"
#include "sim/experiment.hh"
#include "workload/spec_profiles.hh"

namespace cherivoke {
namespace revoke {
namespace {

using alloc::CherivokeAllocator;
using alloc::CherivokeConfig;
using cap::Capability;

// ---------------------------------------------------------------
// Analytical model (§6.1.3) properties
// ---------------------------------------------------------------

OverheadParams
baseParams()
{
    OverheadParams p;
    p.freeRateBytesPerSec = 100.0 * MiB;
    p.pointerDensity = 0.05;
    p.scanRateBytesPerSec = 10.0 * GiB;
    p.quarantineFraction = 0.25;
    return p;
}

TEST(AnalyticalModel, OverheadMonotoneInFreeRateAndDensity)
{
    OverheadParams p = baseParams();
    double prev = predictedRuntimeOverhead(p);
    for (double f = 200.0 * MiB; f <= 3200.0 * MiB; f *= 2) {
        p.freeRateBytesPerSec = f;
        const double cur = predictedRuntimeOverhead(p);
        EXPECT_GT(cur, prev);
        prev = cur;
    }
    p = baseParams();
    prev = predictedRuntimeOverhead(p);
    for (double d = 0.1; d <= 0.9; d += 0.2) {
        p.pointerDensity = d;
        const double cur = predictedRuntimeOverhead(p);
        EXPECT_GT(cur, prev);
        prev = cur;
    }
}

TEST(AnalyticalModel, OverheadInverseInScanRateAndQuarantine)
{
    OverheadParams p = baseParams();
    double prev = predictedRuntimeOverhead(p);
    for (double r = 20.0 * GiB; r <= 160.0 * GiB; r *= 2) {
        p.scanRateBytesPerSec = r;
        const double cur = predictedRuntimeOverhead(p);
        EXPECT_LT(cur, prev);
        prev = cur;
    }
    p = baseParams();
    prev = predictedRuntimeOverhead(p);
    for (double q = 0.30; q <= 0.95; q += 0.15) {
        p.quarantineFraction = q;
        const double cur = predictedRuntimeOverhead(p);
        EXPECT_LT(cur, prev);
        prev = cur;
    }
}

TEST(AnalyticalModel, DegenerateInputsSaturateWithoutNanOrInf)
{
    // Zero scan rate with a live free rate: saturated, finite.
    OverheadParams p = baseParams();
    p.scanRateBytesPerSec = 0;
    double v = predictedRuntimeOverhead(p);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 1e12);

    // Zero quarantine fraction: same saturation.
    p = baseParams();
    p.quarantineFraction = 0;
    v = predictedRuntimeOverhead(p);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 1e12);

    // Degenerate supply *and* demand: nothing to sweep, no cost.
    p = OverheadParams{};
    p.freeRateBytesPerSec = 0;
    p.scanRateBytesPerSec = 0;
    p.quarantineFraction = 0;
    EXPECT_EQ(predictedRuntimeOverhead(p), 0.0);

    // Negative inputs behave like zero, never produce NaN.
    p = baseParams();
    p.scanRateBytesPerSec = -5;
    EXPECT_TRUE(std::isfinite(predictedRuntimeOverhead(p)));

    EXPECT_TRUE(std::isfinite(sweepPeriodSeconds(64 * MiB, 0)));
    EXPECT_GT(sweepPeriodSeconds(64 * MiB, 0), 1e12);
    EXPECT_EQ(sweepPeriodSeconds(0, 0), 0.0);
    EXPECT_TRUE(std::isfinite(sweepSeconds(64 * MiB, 0)));
    EXPECT_GT(sweepSeconds(64 * MiB, 0), 1e12);
    EXPECT_EQ(sweepSeconds(0, 0), 0.0);
}

// ---------------------------------------------------------------
// AdaptiveController: control law
// ---------------------------------------------------------------

/** A steady-state epoch sample: @p freed bytes per model second
 *  against a fixed heap, sweep size and pointer density. */
EpochSample
steadySample(uint64_t freed, double hot_share = 0)
{
    EpochSample s;
    s.dtSeconds = 1.0;
    s.freedBytes = freed;
    s.liveBytes = 256 * MiB;
    s.sweptBytes = 128 * MiB;
    s.capsExamined = s.sweptBytes / (kCapBytes * 16); // D = 1/16
    s.kernelCycles = 0; // DRAM-bound under the cost model
    s.releasedBytes = freed;
    s.hotShare = hot_share;
    return s;
}

AdaptiveController::Pressure
steadyPressure()
{
    AdaptiveController::Pressure p;
    p.liveBytes = 256 * MiB;
    p.quarantinedBytes = 64 * MiB;
    p.fullSweepBytes = 256 * MiB;
    p.quarantineCeiling = 0.25;
    p.epochSeq = 1;
    p.attachSeq = 1;
    return p;
}

TEST(AdaptiveController, EmptyWindowUsesConservativeDefaults)
{
    const AdaptiveConfig cfg;
    AdaptiveController ctl(cfg);
    EXPECT_EQ(ctl.samples(), 0u);
    EXPECT_EQ(ctl.freeRate(), 0.0);
    EXPECT_EQ(ctl.pointerDensity(), 0.0);
    EXPECT_EQ(ctl.scanRate(), 0.0);

    const ScheduleDecision dec = ctl.decide(steadyPressure());
    EXPECT_DOUBLE_EQ(dec.triggerFraction, 0.25);
    EXPECT_EQ(dec.sweepThreads, 1u);
    EXPECT_EQ(dec.depth, cfg.tiers - 1); // full depth
    EXPECT_EQ(dec.minBirth, 0u);
    EXPECT_GE(dec.pagesPerSlice, cfg.minPagesPerSlice);
    EXPECT_LE(dec.pagesPerSlice, cfg.maxPagesPerSlice);
}

TEST(AdaptiveController, WindowedEstimatesMatchTheirDefinitions)
{
    const AdaptiveConfig cfg;
    AdaptiveController ctl(cfg);
    const EpochSample s = steadySample(32 * MiB);
    ctl.recordSample(s);
    ctl.recordSample(s);

    EXPECT_DOUBLE_EQ(ctl.freeRate(), 32.0 * MiB);
    EXPECT_DOUBLE_EQ(ctl.pointerDensity(), 1.0 / 16.0);
    // DRAM-bound: R = swept / (swept/dramRate + startup), per epoch.
    const double per_epoch =
        static_cast<double>(s.sweptBytes) / cfg.dramBytesPerSec +
        cfg.sweepStartupSeconds;
    EXPECT_DOUBLE_EQ(ctl.scanRate(),
                     2.0 * static_cast<double>(s.sweptBytes) /
                         (2.0 * per_epoch));
}

TEST(AdaptiveController, WindowSlidesAndDropsOldSamples)
{
    AdaptiveConfig cfg;
    cfg.windowEpochs = 4;
    AdaptiveController ctl(cfg);
    // Six old samples at one rate, then four at another: only the
    // last four survive in the window.
    for (int i = 0; i < 6; ++i)
        ctl.recordSample(steadySample(1 * MiB));
    for (int i = 0; i < 4; ++i)
        ctl.recordSample(steadySample(64 * MiB));
    EXPECT_EQ(ctl.samples(), 4u);
    EXPECT_DOUBLE_EQ(ctl.freeRate(), 64.0 * MiB);
}

TEST(AdaptiveController, ThreadsAndSliceRespondMonotonicallyToFreeRate)
{
    // Rising free rate shrinks the epoch period: the controller must
    // never respond with fewer threads or a larger slice.
    const AdaptiveConfig cfg;
    unsigned prev_threads = 0;
    size_t prev_slice = cfg.maxPagesPerSlice + 1;
    bool threads_moved = false, slice_moved = false;
    for (double f = 1.0 * MiB; f <= 16.0 * GiB; f *= 4) {
        AdaptiveController ctl(cfg);
        for (int i = 0; i < 4; ++i)
            ctl.recordSample(steadySample(static_cast<uint64_t>(f)));
        const ScheduleDecision dec = ctl.decide(steadyPressure());
        EXPECT_GE(dec.sweepThreads, prev_threads);
        EXPECT_LE(dec.pagesPerSlice, prev_slice);
        threads_moved |= prev_threads != 0 &&
                         dec.sweepThreads != prev_threads;
        slice_moved |= prev_slice <= cfg.maxPagesPerSlice &&
                       dec.pagesPerSlice != prev_slice;
        prev_threads = dec.sweepThreads;
        prev_slice = dec.pagesPerSlice;
    }
    // The sweep across five decades must actually exercise the law,
    // not sit at one clamp the whole way.
    EXPECT_TRUE(threads_moved);
    EXPECT_TRUE(slice_moved);
}

TEST(AdaptiveController, DecisionsClampAtKnobBounds)
{
    const AdaptiveConfig cfg;
    // Torrential frees: both knobs pinned at their aggressive bound.
    {
        AdaptiveController ctl(cfg);
        for (int i = 0; i < 4; ++i)
            ctl.recordSample(steadySample(1ULL << 40));
        const ScheduleDecision dec = ctl.decide(steadyPressure());
        EXPECT_EQ(dec.sweepThreads, cfg.maxSweepThreads);
        EXPECT_EQ(dec.pagesPerSlice, cfg.minPagesPerSlice);
    }
    // A trickle: both knobs pinned at their relaxed bound.
    {
        AdaptiveController ctl(cfg);
        for (int i = 0; i < 4; ++i)
            ctl.recordSample(steadySample(1));
        const ScheduleDecision dec = ctl.decide(steadyPressure());
        EXPECT_EQ(dec.sweepThreads, 1u);
        EXPECT_EQ(dec.pagesPerSlice, cfg.maxPagesPerSlice);
    }
}

TEST(AdaptiveController, TriggerNeverExceedsTheAllocatorCeiling)
{
    const AdaptiveConfig cfg;
    for (const double ceiling : {0.01, 0.05, 0.25, 0.5, 0.9}) {
        AdaptiveController ctl(cfg);
        for (int i = 0; i < 4; ++i)
            ctl.recordSample(steadySample(64 * MiB));
        AdaptiveController::Pressure p = steadyPressure();
        p.quarantineCeiling = ceiling;
        const ScheduleDecision dec = ctl.decide(p);
        EXPECT_LE(dec.triggerFraction, ceiling);
        EXPECT_GT(dec.triggerFraction, 0.0);
    }
}

TEST(AdaptiveController, TierHysteresisRequiresAFullStreak)
{
    AdaptiveConfig cfg;
    cfg.promoteAfter = 3;
    cfg.demoteAfter = 3;
    AdaptiveController ctl(cfg);

    // Two hot epochs then a borderline one: the mid band resets the
    // streak, so no promotion.
    ctl.recordSample(steadySample(1 * MiB, 0.9));
    ctl.recordSample(steadySample(1 * MiB, 0.9));
    EXPECT_EQ(ctl.promoteStreak(), 2u);
    EXPECT_FALSE(ctl.hotPromoted());
    ctl.recordSample(steadySample(1 * MiB, 0.4));
    EXPECT_EQ(ctl.promoteStreak(), 0u);
    EXPECT_FALSE(ctl.hotPromoted());

    // Three consecutive hot epochs promote.
    for (int i = 0; i < 3; ++i)
        ctl.recordSample(steadySample(1 * MiB, 0.9));
    EXPECT_TRUE(ctl.hotPromoted());

    // Two cold epochs are not enough to demote...
    ctl.recordSample(steadySample(1 * MiB, 0.1));
    ctl.recordSample(steadySample(1 * MiB, 0.1));
    EXPECT_EQ(ctl.demoteStreak(), 2u);
    EXPECT_TRUE(ctl.hotPromoted());
    // ...and a hot epoch resets the demote streak.
    ctl.recordSample(steadySample(1 * MiB, 0.9));
    EXPECT_EQ(ctl.demoteStreak(), 0u);

    // Three consecutive cold epochs demote.
    for (int i = 0; i < 3; ++i)
        ctl.recordSample(steadySample(1 * MiB, 0.1));
    EXPECT_FALSE(ctl.hotPromoted());
}

/** Pressure under which a promoted controller should choose a
 *  hot-tier scoped epoch. */
AdaptiveController::Pressure
shallowPressure(const AdaptiveConfig &cfg)
{
    AdaptiveController::Pressure p = steadyPressure();
    p.epochSeq = cfg.tierAgeEpochs + 8;
    p.attachSeq = 1;
    p.quarantinedBytes = 64 * MiB;
    p.hotBytes = 60 * MiB; // releasing hot clears the pressure
    p.hotSweepBytes = 32 * MiB;
    p.fullSweepBytes = 256 * MiB; // >> shallowMargin * hotSweepBytes
    return p;
}

AdaptiveController
promotedController(const AdaptiveConfig &cfg)
{
    AdaptiveController ctl(cfg);
    for (unsigned i = 0; i < cfg.promoteAfter + 1; ++i)
        ctl.recordSample(steadySample(16 * MiB, 0.9));
    return ctl;
}

TEST(AdaptiveController, ShallowEpochNeedsEveryConditionAtOnce)
{
    const AdaptiveConfig cfg;
    const AdaptiveController ctl = promotedController(cfg);

    // All conditions hold: hot-tier scoped epoch with the age cutoff.
    {
        const AdaptiveController::Pressure p = shallowPressure(cfg);
        const ScheduleDecision dec = ctl.decide(p);
        EXPECT_EQ(dec.depth, 0u);
        EXPECT_EQ(dec.minBirth,
                  p.epochSeq - cfg.tierAgeEpochs + 1);
    }
    // Not promoted: full depth no matter the pressure shape.
    {
        AdaptiveController fresh(cfg);
        fresh.recordSample(steadySample(16 * MiB, 0.9));
        const ScheduleDecision dec =
            fresh.decide(shallowPressure(cfg));
        EXPECT_EQ(dec.depth, cfg.tiers - 1);
        EXPECT_EQ(dec.minBirth, 0u);
    }
    // Cutoff at or before attach: pre-attach stores are unrecorded,
    // so the scoped skip is unsound and must not fire.
    {
        AdaptiveController::Pressure p = shallowPressure(cfg);
        p.attachSeq = p.epochSeq; // cutoff <= attachSeq
        EXPECT_EQ(ctl.decide(p).minBirth, 0u);
    }
    // Birth stamps saturated: cutoff can no longer be proven.
    {
        AdaptiveController::Pressure p = shallowPressure(cfg);
        p.epochSeq = alloc::kBirthSaturated + cfg.tierAgeEpochs;
        EXPECT_EQ(ctl.decide(p).minBirth, 0u);
    }
    // Tier-local walk not clearly cheaper than full depth.
    {
        AdaptiveController::Pressure p = shallowPressure(cfg);
        p.hotSweepBytes = p.fullSweepBytes;
        EXPECT_EQ(ctl.decide(p).minBirth, 0u);
    }
    // Releasing the hot bytes would not clear quarantine pressure.
    {
        AdaptiveController::Pressure p = shallowPressure(cfg);
        p.hotBytes = 1 * MiB;
        p.quarantinedBytes = 128 * MiB;
        EXPECT_EQ(ctl.decide(p).minBirth, 0u);
    }
    // A single-tier config never scopes.
    {
        AdaptiveConfig flat = cfg;
        flat.tiers = 1;
        const AdaptiveController one = promotedController(flat);
        const ScheduleDecision dec =
            one.decide(shallowPressure(flat));
        EXPECT_EQ(dec.depth, 0u); // tiers-1 == 0 is full depth
        EXPECT_EQ(dec.minBirth, 0u);
    }
}

// ---------------------------------------------------------------
// TierMap: sound page-skip condition
// ---------------------------------------------------------------

TEST(TierMap, TracksTaggedStoresPerPageAndEpoch)
{
    mem::AddressSpace space;
    auto &memory = space.memory();
    const uint64_t g0 = space.globals().base;
    const uint64_t g2 = g0 + 2 * kPageBytes;
    const Capability c =
        space.rootCap().setAddress(g0).setBounds(64);
    ASSERT_TRUE(c.tag());

    TierMap tm;
    tm.attach(memory, space.globals().base,
              space.globals().base + space.globals().size);
    EXPECT_TRUE(tm.attached());
    EXPECT_EQ(tm.seq(), 1u);
    EXPECT_EQ(tm.attachSeq(), 1u);

    memory.writeCap(g0, c); // epoch 1 store on page g0
    EXPECT_EQ(tm.pagesTracked(), 1u);
    tm.advanceEpoch();
    memory.writeCap(g2, c); // epoch 2 store on page g2
    EXPECT_EQ(tm.pagesTracked(), 2u);

    // min_birth 0 means unscoped: everything qualifies.
    EXPECT_TRUE(tm.pageMayHoldYoung(g0, 0));
    // min_birth <= attachSeq: pre-attach stores were unrecorded, so
    // no skip is provable.
    EXPECT_TRUE(tm.pageMayHoldYoung(g0, 1));
    // Cutoff 2: g0's last store predates it (skippable), g2's does
    // not, and a never-stored in-range page is skippable too.
    EXPECT_FALSE(tm.pageMayHoldYoung(g0, 2));
    EXPECT_TRUE(tm.pageMayHoldYoung(g2, 2));
    EXPECT_FALSE(tm.pageMayHoldYoung(g0 + 5 * kPageBytes, 2));
    // Outside the tracked range: assume the worst.
    EXPECT_TRUE(tm.pageMayHoldYoung(mem::kHeapBase, 2));

    EXPECT_EQ(tm.pagesAtOrAfter(1), 2u);
    EXPECT_EQ(tm.pagesAtOrAfter(2), 1u);
    EXPECT_EQ(tm.pagesAtOrAfter(3), 0u);

    // Untagged (data) stores never mark a page.
    memory.storeU64(space.rootCap(), g0 + 4 * kPageBytes, 0x5a);
    EXPECT_EQ(tm.pagesTracked(), 2u);

    // Detach removes the listener: further stores are invisible.
    tm.detach();
    EXPECT_FALSE(tm.attached());
    memory.writeCap(g0 + 6 * kPageBytes, c);
    EXPECT_EQ(tm.pagesTracked(), 0u);
}

TEST(TierMap, BirthStampSaturates)
{
    TierMap tm;
    EXPECT_EQ(tm.currentBirthStamp(), 1u);
    for (int i = 0; i < 400; ++i)
        tm.advanceEpoch();
    EXPECT_EQ(tm.currentBirthStamp(), alloc::kBirthSaturated - 1);
}

// ---------------------------------------------------------------
// Birth stamps: chunk header, allocator, quarantine
// ---------------------------------------------------------------

TEST(BirthStamp, RoundTripsBesideSizeFlagsAndIdTag)
{
    mem::TaggedMemory memory;
    alloc::ChunkView chunk(memory, mem::kHeapBase);
    chunk.setHeader(0x2000, alloc::kCinuse | alloc::kPinuse);
    EXPECT_EQ(chunk.birthStamp(), 0u); // setHeader clears the stamp

    chunk.setBirthStamp(7);
    EXPECT_EQ(chunk.birthStamp(), 7u);
    EXPECT_EQ(chunk.size(), 0x2000u);
    EXPECT_TRUE(chunk.cinuse());

    // Flag and id-tag updates must not clobber the stamp.
    chunk.setFlags(alloc::kCinuse | alloc::kQuarantine);
    EXPECT_EQ(chunk.birthStamp(), 7u);
    chunk.setIdTag(0xABCDEF);
    EXPECT_EQ(chunk.birthStamp(), 7u);
    EXPECT_EQ(chunk.idTag(), 0xABCDEFu);
    EXPECT_EQ(chunk.size(), 0x2000u);

    chunk.setBirthStamp(alloc::kBirthSaturated);
    EXPECT_EQ(chunk.birthStamp(), alloc::kBirthSaturated);
    EXPECT_EQ(chunk.idTag(), 0xABCDEFu);
}

/** Test stamper with a settable stamp. */
struct FixedStamper final : alloc::TierStamper
{
    uint32_t stamp = 1;
    uint32_t currentBirthStamp() const override { return stamp; }
};

CherivokeConfig
tinyHeap()
{
    CherivokeConfig cfg;
    cfg.minQuarantineBytes = 256 * KiB; // stay below pressure
    return cfg;
}

TEST(BirthStamp, AllocatorStampsOnlyWhenAStamperIsInstalled)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyHeap());

    // No stamper: the birth bits stay zero — the bit-identity
    // guarantee for non-adaptive runs.
    const Capability plain = heap.malloc(64);
    EXPECT_EQ(alloc::ChunkView(
                  space.memory(),
                  alloc::DlAllocator::chunkOf(plain.base()))
                  .birthStamp(),
              0u);

    FixedStamper stamper;
    stamper.stamp = 3;
    heap.setTierStamper(&stamper);
    const Capability stamped = heap.malloc(64);
    EXPECT_EQ(alloc::ChunkView(
                  space.memory(),
                  alloc::DlAllocator::chunkOf(stamped.base()))
                  .birthStamp(),
              3u);
    heap.setTierStamper(nullptr);
}

TEST(BirthStamp, QuarantinePartitionsRunsByBirth)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyHeap());
    FixedStamper stamper;
    heap.setTierStamper(&stamper);

    // Old and young chunks with a live spacer between them so their
    // quarantined runs can never merge.
    stamper.stamp = 1;
    const Capability old_c = heap.malloc(4 * KiB);
    const Capability spacer = heap.malloc(64);
    stamper.stamp = 5;
    const Capability young_c = heap.malloc(4 * KiB);
    const uint64_t old_bytes = heap.usableSize(old_c.base());
    const uint64_t young_bytes = heap.usableSize(young_c.base());
    heap.free(old_c);
    heap.free(young_c);

    alloc::Quarantine &q = heap.quarantine();
    EXPECT_EQ(q.runCount(), 2u);
    EXPECT_GE(q.bytesBornSince(1), old_bytes + young_bytes);
    EXPECT_GE(q.bytesBornSince(5), young_bytes);
    EXPECT_LT(q.bytesBornSince(5), q.totalBytes());
    EXPECT_EQ(q.bytesBornSince(6), 0u);

    // splitBornSince takes exactly the young run...
    const uint64_t total = q.totalBytes();
    alloc::Quarantine young_part = q.splitBornSince(5);
    EXPECT_EQ(young_part.totalBytes() + q.totalBytes(), total);
    EXPECT_GE(young_part.totalBytes(), young_bytes);
    EXPECT_GE(q.totalBytes(), old_bytes);
    // ...and min_birth 0 takes everything that remains.
    alloc::Quarantine rest = q.splitBornSince(0);
    EXPECT_EQ(q.totalBytes(), 0u);
    EXPECT_GE(rest.totalBytes(), old_bytes);

    heap.setTierStamper(nullptr);
    (void)spacer;
}

TEST(BirthStamp, AdjacentRunsMergeToTheOldestBirth)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, tinyHeap());
    FixedStamper stamper;
    heap.setTierStamper(&stamper);

    // Two adjacent chunks freed in turn coalesce into one run whose
    // birth is the MIN of the pair — a merged run must never look
    // younger than its oldest member, or a scoped sweep could skip
    // genuinely old quarantine.
    stamper.stamp = 9;
    const Capability a = heap.malloc(256);
    stamper.stamp = 2;
    const Capability b = heap.malloc(256);
    heap.free(a);
    heap.free(b);
    ASSERT_EQ(heap.quarantine().runCount(), 1u);
    EXPECT_EQ(heap.quarantine().bytesBornSince(3), 0u);
    EXPECT_EQ(heap.quarantine().bytesBornSince(2),
              heap.quarantine().totalBytes());
    heap.setTierStamper(nullptr);
}

// ---------------------------------------------------------------
// Tier-scoped epochs on a live engine
// ---------------------------------------------------------------

/** Stamper bridging the allocator to a TierMap's epoch sequence. */
struct MapStamper final : alloc::TierStamper
{
    explicit MapStamper(const TierMap &map) : tiers(&map) {}
    uint32_t
    currentBirthStamp() const override
    {
        return tiers->currentBirthStamp();
    }
    const TierMap *tiers;
};

TEST(TierScopedEpoch, SweepsYoungTierOnlyThenFullDepthDrains)
{
    mem::AddressSpace space;
    auto &memory = space.memory();
    CherivokeAllocator heap(space, tinyHeap());
    RevocationEngine engine(heap, space, EngineConfig{});

    TierMap tm;
    tm.attach(memory, 0, ~static_cast<uint64_t>(0));
    MapStamper stamper(tm);
    heap.setTierStamper(&stamper);

    // Epoch 1: an old chunk, with a capability to it stored on
    // globals page g0.
    const uint64_t g0 = space.globals().base;
    const uint64_t g2 = g0 + 2 * kPageBytes;
    const Capability old_c = heap.malloc(8 * KiB);
    memory.writeCap(g0, old_c);
    const Capability spacer = heap.malloc(64);

    // Epoch 2: a young chunk, referenced from page g2.
    tm.advanceEpoch();
    const Capability young_c = heap.malloc(8 * KiB);
    memory.writeCap(g2, young_c);

    heap.free(old_c);
    heap.free(young_c);
    const uint64_t quarantined = heap.quarantinedBytes();
    ASSERT_GT(quarantined, 0u);

    // A hot-tier epoch scoped to births >= 2: it must freeze and
    // release only the young run, sweep only pages with recent
    // tagged stores, and revoke the young capability while leaving
    // the old one (which cannot point into the frozen set) alone.
    RevocationBackend &backend = engine.domainBackend(0);
    EpochScope scope;
    scope.minBirth = 2;
    scope.pageQualifies = [&tm](uint64_t page) {
        return tm.pageMayHoldYoung(page, 2);
    };
    backend.setEpochScope(scope);
    engine.beginEpoch();
    while (engine.step(4096) > 0) {
    }
    engine.finishEpoch();
    backend.setEpochScope(EpochScope{});

    const EpochStats &scoped = engine.lastEpoch();
    EXPECT_GT(scoped.sweep.pagesSkippedTier, 0u); // g0 at least
    EXPECT_GT(scoped.bytesReleased, 0u);
    EXPECT_LT(scoped.bytesReleased, quarantined);
    EXPECT_FALSE(memory.readCap(g2).tag()); // young cap revoked
    EXPECT_TRUE(memory.readCap(g0).tag());  // old cap survives
    const uint64_t remaining = heap.quarantinedBytes();
    EXPECT_GT(remaining, 0u); // the old run still quarantined

    // A full-depth epoch then drains the old run and revokes the
    // old capability.
    engine.beginEpoch();
    while (engine.step(4096) > 0) {
    }
    engine.finishEpoch();
    EXPECT_EQ(engine.lastEpoch().sweep.pagesSkippedTier, 0u);
    EXPECT_EQ(heap.quarantinedBytes(), 0u);
    EXPECT_FALSE(memory.readCap(g0).tag());

    heap.setTierStamper(nullptr);
    (void)spacer;
}

// ---------------------------------------------------------------
// Policy registry
// ---------------------------------------------------------------

TEST(PolicyRegistry, EveryKindRegisteredOnceAndRoundTrips)
{
    const std::vector<PolicyKind> &policies = allPolicies();
    EXPECT_EQ(policies.size(), 4u);
    for (const PolicyKind kind : policies) {
        EXPECT_EQ(1, std::count(policies.begin(), policies.end(),
                                kind));
        PolicyKind parsed;
        ASSERT_TRUE(parsePolicy(policyName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    EXPECT_EQ(1, std::count(policies.begin(), policies.end(),
                            PolicyKind::Adaptive));
    PolicyKind parsed;
    ASSERT_TRUE(parsePolicy("adaptive", parsed));
    EXPECT_EQ(parsed, PolicyKind::Adaptive);
}

// ---------------------------------------------------------------
// Replay determinism and per-backend parity
// ---------------------------------------------------------------

sim::ExperimentConfig
replayConfig(PolicyKind policy, BackendKind backend)
{
    sim::ExperimentConfig cfg;
    cfg.policy = policy;
    cfg.backend = backend;
    cfg.durationSec = 0.3;
    return cfg;
}

TEST(AdaptiveReplay, TwoRunsAreBitIdentical)
{
    const auto &profile = workload::profileFor("xalancbmk");
    const sim::ExperimentConfig cfg =
        replayConfig(PolicyKind::Adaptive, BackendKind::Sweep);
    const sim::BenchResult a = sim::runBenchmark(profile, cfg);
    const sim::BenchResult b = sim::runBenchmark(profile, cfg);

    ASSERT_GT(a.run.revoker.epochs, 0u);
    EXPECT_EQ(a.run.revoker, b.run.revoker);
    EXPECT_EQ(a.run.allocCalls, b.run.allocCalls);
    EXPECT_EQ(a.run.freeCalls, b.run.freeCalls);
    EXPECT_EQ(a.run.freedBytes, b.run.freedBytes);
    EXPECT_EQ(a.run.ptrStores, b.run.ptrStores);
    EXPECT_EQ(a.run.virtualSeconds, b.run.virtualSeconds);
    EXPECT_EQ(a.run.peakQuarantineBytes, b.run.peakQuarantineBytes);
    EXPECT_EQ(a.normalizedTime, b.normalizedTime);
    EXPECT_EQ(a.sweepOverhead, b.sweepOverhead);
    EXPECT_EQ(a.shadowOverhead, b.shadowOverhead);
    EXPECT_EQ(a.predictedSweepOverhead, b.predictedSweepOverhead);
}

TEST(AdaptiveReplay, NonAdaptivePathsMatchUnderEveryBackend)
{
    // Adaptive's default decisions reproduce the stop-the-world
    // schedule, and non-adaptive runs never see a stamper or
    // listener — so under every backend the two policies agree on
    // all schedule-level statistics, and the adaptive run stays
    // full-depth (tier skips require a promoted hot tier).
    const auto &profile = workload::profileFor("povray");
    for (const BackendKind kind :
         {BackendKind::Sweep, BackendKind::Color,
          BackendKind::ObjectId}) {
        const sim::BenchResult stw = sim::runBenchmark(
            profile, replayConfig(PolicyKind::StopTheWorld, kind));
        const sim::BenchResult adaptive = sim::runBenchmark(
            profile, replayConfig(PolicyKind::Adaptive, kind));

        EXPECT_EQ(adaptive.run.revoker.sweep.pagesSkippedTier, 0u);
        EXPECT_EQ(adaptive.run.allocCalls, stw.run.allocCalls);
        EXPECT_EQ(adaptive.run.freeCalls, stw.run.freeCalls);
        EXPECT_EQ(adaptive.run.freedBytes, stw.run.freedBytes);
        EXPECT_EQ(adaptive.run.ptrStores, stw.run.ptrStores);
        EXPECT_EQ(adaptive.run.virtualSeconds,
                  stw.run.virtualSeconds);
        EXPECT_EQ(adaptive.run.revoker.epochs,
                  stw.run.revoker.epochs);
        EXPECT_EQ(adaptive.run.revoker.sweep.pagesSwept,
                  stw.run.revoker.sweep.pagesSwept);
        EXPECT_EQ(adaptive.run.revoker.sweep.capsRevoked,
                  stw.run.revoker.sweep.capsRevoked);
        EXPECT_EQ(adaptive.run.revoker.bytesReleased,
                  stw.run.revoker.bytesReleased);
    }
}

} // namespace
} // namespace revoke
} // namespace cherivoke

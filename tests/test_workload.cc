/**
 * @file
 * Tests for the workload substrate: profile data integrity, trace
 * serialisation, the synthesiser's convergence to table 2 targets,
 * and the driver's measurements.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/logging.hh"
#include "workload/driver.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth.hh"
#include "workload/trace.hh"

namespace cherivoke {
namespace workload {
namespace {

TEST(Profiles, AllSeventeenPresent)
{
    EXPECT_EQ(specProfiles().size(), 17u);
    EXPECT_EQ(figure5Profiles().size(), 16u);
    EXPECT_NO_THROW(profileFor("ffmpeg"));
    EXPECT_THROW(profileFor("gcc"), FatalError);
}

TEST(Profiles, Table2ValuesVerbatim)
{
    // Spot-check table 2 rows against the paper.
    const auto &xalan = profileFor("xalancbmk");
    EXPECT_DOUBLE_EQ(xalan.pagesWithPointers, 0.86);
    EXPECT_DOUBLE_EQ(xalan.freeRateMiBps, 371.0);
    EXPECT_DOUBLE_EQ(xalan.freesPerSec, 811000.0);
    const auto &omnetpp = profileFor("omnetpp");
    EXPECT_DOUBLE_EQ(omnetpp.pagesWithPointers, 0.95);
    EXPECT_DOUBLE_EQ(omnetpp.freeRateMiBps, 175.0);
    const auto &bzip2 = profileFor("bzip2");
    EXPECT_DOUBLE_EQ(bzip2.freeRateMiBps, 0.0);
    EXPECT_FALSE(bzip2.allocationIntensive());
    const auto &ffmpeg = profileFor("ffmpeg");
    EXPECT_DOUBLE_EQ(ffmpeg.freeRateMiBps, 1268.0);
}

TEST(Profiles, MeanAllocSizeImpliedByTable2)
{
    // dealII: 40 MiB/s over 498k frees/s ~ 84 bytes.
    EXPECT_NEAR(profileFor("dealII").meanAllocBytes(), 84.2, 1.0);
    // omnetpp: 175 MiB/s over 1027k frees/s ~ 179 bytes.
    EXPECT_NEAR(profileFor("omnetpp").meanAllocBytes(), 178.7, 1.0);
    // ffmpeg: 1268 MiB/s over 44k frees/s ~ 30 KiB.
    EXPECT_NEAR(profileFor("ffmpeg").meanAllocBytes(), 30217.0,
                100.0);
}

TEST(Trace, SaveLoadRoundTrip)
{
    Trace trace;
    TraceOp a;
    a.kind = OpKind::Malloc;
    a.id = 1;
    a.size = 128;
    a.dt = 0.25;
    trace.ops.push_back(a);
    TraceOp b;
    b.kind = OpKind::StorePtr;
    b.src = 1;
    b.dst = 1;
    b.offset = 32;
    trace.ops.push_back(b);
    TraceOp c;
    c.kind = OpKind::Free;
    c.id = 1;
    c.dt = 0.5;
    trace.ops.push_back(c);

    std::stringstream ss;
    trace.save(ss);
    const Trace loaded = Trace::load(ss);
    ASSERT_EQ(loaded.ops.size(), 3u);
    EXPECT_EQ(loaded.ops[0].kind, OpKind::Malloc);
    EXPECT_EQ(loaded.ops[0].size, 128u);
    EXPECT_EQ(loaded.ops[1].kind, OpKind::StorePtr);
    EXPECT_EQ(loaded.ops[1].offset, 32u);
    EXPECT_NEAR(loaded.virtualSeconds(), 0.75, 1e-9);
}

TEST(Trace, LoadRejectsGarbage)
{
    std::stringstream ss("frobnicate 1 2 3 4 5 0.1\n");
    EXPECT_THROW(Trace::load(ss), FatalError);
}

TEST(Synth, EmptyForDurationZero)
{
    SynthConfig cfg;
    cfg.durationSec = 0.0;
    const Trace t = synthesize(profileFor("dealII"), cfg);
    // Only the ramp (dt = 0) is present.
    EXPECT_NEAR(t.virtualSeconds(), 0.0, 1e-9);
}

TEST(Synth, QuietBenchmarkStillAdvancesTime)
{
    SynthConfig cfg;
    cfg.durationSec = 1.0;
    const Trace t = synthesize(profileFor("bzip2"), cfg);
    EXPECT_NEAR(t.virtualSeconds(), 1.0, 1e-6);
    for (const auto &op : t.ops)
        EXPECT_NE(op.kind, OpKind::Free);
}

class SynthDriverTest : public ::testing::Test
{
  protected:
    DriverResult
    runProfile(const std::string &name, double duration = 0.5,
               double scale = 1.0 / 64)
    {
        SynthConfig cfg;
        cfg.scale = scale;
        cfg.durationSec = duration;
        cfg.seed = 7;
        const Trace trace = synthesize(profileFor(name), cfg);

        space = std::make_unique<mem::AddressSpace>();
        alloc::CherivokeConfig acfg;
        acfg.minQuarantineBytes = 64 * KiB;
        allocator = std::make_unique<alloc::CherivokeAllocator>(
            *space, acfg);
        revoker = std::make_unique<revoke::RevocationEngine>(*allocator,
                                                    *space);
        TraceDriver driver(*space, *allocator, revoker.get());
        return driver.run(trace);
    }

    std::unique_ptr<mem::AddressSpace> space;
    std::unique_ptr<alloc::CherivokeAllocator> allocator;
    std::unique_ptr<revoke::RevocationEngine> revoker;
};

TEST_F(SynthDriverTest, FreeRateConvergesToScaledTarget)
{
    const auto &p = profileFor("dealII");
    const double scale = 1.0 / 64;
    const DriverResult r = runProfile("dealII", 0.5, scale);
    const double target = p.freeRateMiBps * scale;
    EXPECT_GT(r.measuredFreeRateMiBps, 0.5 * target);
    EXPECT_LT(r.measuredFreeRateMiBps, 2.5 * target);
    const double frees_target = p.freesPerSec * scale;
    EXPECT_GT(r.measuredFreesPerSec, 0.5 * frees_target);
    EXPECT_LT(r.measuredFreesPerSec, 2.0 * frees_target);
}

TEST_F(SynthDriverTest, PageDensityTracksTable2)
{
    const DriverResult r = runProfile("omnetpp");
    // omnetpp: 95% of pages hold pointers.
    EXPECT_GT(r.pageDensity, 0.55);
    const DriverResult r2 = runProfile("hmmer");
    // hmmer: 4%.
    EXPECT_LT(r2.pageDensity, 0.30);
    EXPECT_GT(r.pageDensity, r2.pageDensity);
}

TEST_F(SynthDriverTest, LineDensityBelowPageDensity)
{
    const DriverResult r = runProfile("xalancbmk");
    EXPECT_GT(r.pageDensity, 0.0);
    EXPECT_LT(r.lineDensity, r.pageDensity)
        << "line granularity is strictly finer";
}

TEST_F(SynthDriverTest, SweepsHappenForAllocIntensiveWorkloads)
{
    const DriverResult r = runProfile("xalancbmk");
    EXPECT_GT(r.revoker.epochs, 0u);
    EXPECT_GT(r.revoker.sweep.capsRevoked, 0u);
    EXPECT_GT(r.revoker.internalFrees, 0u);
    // Aggregation: internal frees fewer than program frees.
    EXPECT_LT(r.revoker.internalFrees, r.freeCalls);
}

TEST_F(SynthDriverTest, NoSweepsForQuietWorkloads)
{
    const DriverResult r = runProfile("bzip2");
    EXPECT_EQ(r.revoker.epochs, 0u);
    EXPECT_EQ(r.freeCalls, 0u);
}

TEST_F(SynthDriverTest, QuarantineBoundedByFraction)
{
    const DriverResult r = runProfile("omnetpp");
    // Peak quarantine should stay in the vicinity of 25% of live
    // (one allocation can overshoot slightly).
    EXPECT_LT(r.peakQuarantineBytes,
              static_cast<uint64_t>(0.6 * r.peakLiveBytes));
    EXPECT_GT(r.peakQuarantineBytes, 0u);
}

TEST_F(SynthDriverTest, HeapStaysValidUnderWorkload)
{
    runProfile("dealII", 0.3);
    EXPECT_NO_THROW(allocator->dl().validateHeap());
}

} // namespace
} // namespace workload
} // namespace cherivoke

/**
 * @file
 * Edge-case tests for paths the main suites exercise only lightly:
 * tag-preserving copies with partial tails, the load barrier on the
 * checked (CheriABI) access path, allocator bin boundaries and the
 * aligned-allocation carve, realloc's in-place successor merge,
 * multi-level writeback chains, tag-write accounting, and small
 * utilities.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "alloc/cherivoke_alloc.hh"
#include "cache/hierarchy.hh"
#include "revoke/analytical_model.hh"
#include "revoke/revocation_engine.hh"
#include "support/logging.hh"
#include "workload/trace.hh"

namespace cherivoke {
namespace {

using alloc::CherivokeAllocator;
using alloc::CherivokeConfig;
using cap::CapFault;
using cap::Capability;

// ---------------------------------------------------------------
// Tag-preserving copy edges
// ---------------------------------------------------------------

class CopyTest : public ::testing::Test
{
  protected:
    CopyTest()
    {
        space.memory().pageTable().map(kBase, 16 * kPageBytes,
                                       mem::ProtRead |
                                           mem::ProtWrite);
    }

    static constexpr uint64_t kBase = 0x200000;
    mem::AddressSpace space;
};

TEST_F(CopyTest, PartialTrailingGranuleCopiedAsData)
{
    auto &memory = space.memory();
    // 24 bytes: one full granule + 8-byte tail.
    memory.writeU64(kBase, 0x11);
    memory.writeU64(kBase + 8, 0x22);
    memory.writeU64(kBase + 16, 0x33);
    memory.copyPreservingTags(kBase + 4096, kBase, 24);
    EXPECT_EQ(memory.readU64(kBase + 4096), 0x11u);
    EXPECT_EQ(memory.readU64(kBase + 4096 + 8), 0x22u);
    EXPECT_EQ(memory.readU64(kBase + 4096 + 16), 0x33u);
}

TEST_F(CopyTest, MixedTagAndDataGranules)
{
    auto &memory = space.memory();
    const Capability c = space.rootCap()
                             .setAddress(kBase)
                             .setBounds(64)
                             .andPerms(cap::kPermsData);
    memory.writeCap(kBase, c);          // tagged granule
    memory.writeU64(kBase + 16, 0xAB);  // data granule
    memory.writeCap(kBase + 32, c);     // tagged granule
    memory.copyPreservingTags(kBase + 8192, kBase, 48);
    EXPECT_TRUE(memory.readTag(kBase + 8192));
    EXPECT_FALSE(memory.readTag(kBase + 8192 + 16));
    EXPECT_TRUE(memory.readTag(kBase + 8192 + 32));
    EXPECT_EQ(memory.readU64(kBase + 8192 + 16), 0xABu);
}

TEST_F(CopyTest, OverlapPanics)
{
    auto &memory = space.memory();
    EXPECT_THROW(memory.copyPreservingTags(kBase + 16, kBase, 64),
                 PanicError);
}

TEST_F(CopyTest, MisalignmentPanics)
{
    auto &memory = space.memory();
    EXPECT_THROW(memory.copyPreservingTags(kBase + 8, kBase + 4096,
                                           16),
                 PanicError);
}

// ---------------------------------------------------------------
// Load barrier through the checked access path
// ---------------------------------------------------------------

TEST(LoadBarrier, AppliesToCheriAbiLoadCap)
{
    mem::AddressSpace space;
    CherivokeConfig cfg;
    cfg.minQuarantineBytes = 16;
    CherivokeAllocator heap(space, cfg);
    auto &memory = space.memory();

    const Capability holder = heap.malloc(64);
    const Capability victim = heap.malloc(64);
    memory.storeCap(holder, holder.base(), victim);
    heap.free(victim);
    heap.prepareSweep(); // paints; no sweep yet

    memory.installLoadBarrier([&](uint64_t base) {
        return heap.shadowMap().isRevoked(base);
    });
    // The *checked* load path must hit the barrier too.
    const Capability loaded = memory.loadCap(holder, holder.base());
    EXPECT_FALSE(loaded.tag());
    // And the in-place strip means the tag is gone for good.
    memory.removeLoadBarrier();
    EXPECT_FALSE(memory.readCap(holder.base()).tag());
    heap.finishSweep();
}

TEST(LoadBarrier, InactiveBarrierCostsNothing)
{
    mem::AddressSpace space;
    CherivokeConfig cfg;
    cfg.minQuarantineBytes = 16;
    CherivokeAllocator heap(space, cfg);
    auto &memory = space.memory();
    const Capability c = heap.malloc(64);
    memory.writeCap(mem::kGlobalsBase, c);
    EXPECT_TRUE(memory.readCap(mem::kGlobalsBase).tag());
    EXPECT_EQ(memory.counters().value("mem.load_barrier_strips"),
              0u);
    EXPECT_FALSE(memory.loadBarrierActive());
}

// ---------------------------------------------------------------
// Allocator bin boundaries and the aligned carve
// ---------------------------------------------------------------

TEST(AllocEdges, SmallToLargeBinBoundary)
{
    mem::AddressSpace space;
    alloc::DlAllocator dl(space);
    // Chunk sizes 1040 (last small bin) and 1056 (first large bin):
    // payloads 1024 and 1040.
    const Capability small_cap = dl.malloc(1024);
    const Capability large_cap = dl.malloc(1040);
    (void)dl.malloc(64); // guard
    dl.free(small_cap);
    dl.free(large_cap);
    dl.validateHeap();
    // Both must be recyclable at their exact sizes.
    EXPECT_EQ(dl.malloc(1024).base(), small_cap.base());
    EXPECT_EQ(dl.malloc(1040).base(), large_cap.base());
}

TEST(AllocEdges, LargeBinFirstFitAcrossBuckets)
{
    mem::AddressSpace space;
    alloc::DlAllocator dl(space);
    const Capability big = dl.malloc(100 * KiB);
    (void)dl.malloc(64);
    dl.free(big);
    // A request smaller than the freed chunk but in a lower bucket
    // must still find it (search walks upward through bins).
    const Capability reuse = dl.malloc(40 * KiB);
    EXPECT_EQ(reuse.base(), big.base());
    dl.validateHeap();
}

TEST(AllocEdges, AlignedCarveProducesAlignedPayload)
{
    mem::AddressSpace space;
    alloc::DlAllocator dl(space);
    // Large enough to require representability padding + alignment.
    const uint64_t size = 6 * MiB;
    const Capability c = dl.malloc(size);
    const uint64_t mask = cap::representableAlignmentMask(
        static_cast<uint64_t>(c.length()));
    if (mask != ~uint64_t{0}) {
        EXPECT_TRUE(isAligned(c.base(), ~mask + 1));
    }
    // The front/tail trims must leave a coherent heap.
    dl.validateHeap();
    dl.free(c);
    dl.validateHeap();
}

TEST(AllocEdges, ReallocMergesFreeSuccessor)
{
    mem::AddressSpace space;
    alloc::DlAllocator dl(space);
    const Capability a = dl.malloc(64);
    const Capability b = dl.malloc(256);
    (void)dl.malloc(64); // guard so b isn't absorbed by top
    dl.free(b);
    // Growing a should merge the free b in place.
    const Capability grown = dl.realloc(a, 200);
    EXPECT_EQ(grown.base(), a.base())
        << "in-place growth into the free successor";
    dl.validateHeap();
}

TEST(AllocEdges, UsableSizeRoundsUpToGranule)
{
    mem::AddressSpace space;
    alloc::DlAllocator dl(space);
    const Capability c = dl.malloc(17);
    EXPECT_GE(dl.usableSize(c.base()), 17u);
    EXPECT_TRUE(isAligned(dl.usableSize(c.base()) + 16, 16));
}

// ---------------------------------------------------------------
// Cache writeback chains and tag-write accounting
// ---------------------------------------------------------------

TEST(CacheEdges, DirtyChainReachesDramThroughAllLevels)
{
    cache::HierarchyConfig cfg;
    cfg.l1 = cache::CacheGeometry{"l1", 512, 1, 64};  // 8 sets
    cfg.l2 = cache::CacheGeometry{"l2", 1024, 1, 64}; // 16 sets
    cfg.llc = cache::CacheGeometry{"llc", 2048, 1, 64};
    cache::Hierarchy hier(cfg);
    // Write a line, then stream conflicting lines through the same
    // sets until the dirty line is forced all the way out.
    hier.access(0x0, 8, true);
    for (uint64_t i = 1; i <= 64; ++i)
        hier.access(i * 2048, 8, false);
    EXPECT_GT(hier.dram().writeBytes(), 0u)
        << "the dirty line must eventually be written back to DRAM";
}

TEST(CacheEdges, RevocationTagWriteDirtiesTagCache)
{
    cache::Hierarchy hier;
    hier.recordRevocationTagWrite(0x4000);
    // The tag line was fetched to be modified.
    EXPECT_GT(hier.dram().readBytes(), 0u);
    const uint64_t before = hier.dram().writeBytes();
    // Evict it by streaming tag lookups over distinct regions.
    for (uint64_t r = 1; r < 4096; ++r)
        (void)hier.cloadTags(r * 8 * KiB, true);
    EXPECT_GT(hier.dram().writeBytes(), before)
        << "dirty tag line writes back on eviction";
}

// ---------------------------------------------------------------
// Epoch accounting in the allocator
// ---------------------------------------------------------------

TEST(EpochAccounting, QuarantineSplitAcrossFreezeIsSummed)
{
    mem::AddressSpace space;
    CherivokeConfig cfg;
    cfg.minQuarantineBytes = 16;
    CherivokeAllocator heap(space, cfg);
    const Capability a = heap.malloc(64);
    const Capability b = heap.malloc(64);
    heap.free(a);
    const uint64_t before = heap.quarantinedBytes();
    heap.prepareSweep();
    EXPECT_TRUE(heap.epochOpen());
    EXPECT_EQ(heap.quarantinedBytes(), before)
        << "freezing must not lose quarantined bytes";
    heap.free(b);
    EXPECT_GT(heap.quarantinedBytes(), before);
    heap.finishSweep();
    EXPECT_FALSE(heap.epochOpen());
    // Only the frozen part was released.
    EXPECT_GT(heap.quarantinedBytes(), 0u);
    EXPECT_LT(heap.quarantinedBytes(), before + 80);
}

TEST(EpochAccounting, DoublePrepareSweepPanics)
{
    mem::AddressSpace space;
    CherivokeConfig cfg;
    cfg.minQuarantineBytes = 16;
    CherivokeAllocator heap(space, cfg);
    heap.free(heap.malloc(64));
    heap.prepareSweep();
    EXPECT_THROW(heap.prepareSweep(), PanicError);
    heap.finishSweep();
}

// ---------------------------------------------------------------
// Small utilities
// ---------------------------------------------------------------

TEST(ModelEdges, DegenerateDenominatorsSaturateFinite)
{
    // The model saturates degenerate inputs instead of panicking:
    // the adaptive controller feeds it live measurements (which can
    // legitimately be zero early in a run), so its output must
    // always be finite and comparable. Property coverage lives in
    // tests/test_adaptive.cc.
    revoke::OverheadParams p;
    p.freeRateBytesPerSec = 1;
    p.pointerDensity = 1;
    p.scanRateBytesPerSec = 0;
    p.quarantineFraction = 0.25;
    const double v = revoke::predictedRuntimeOverhead(p);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 1e12);
    EXPECT_TRUE(std::isfinite(revoke::sweepPeriodSeconds(1, 0)));
}

TEST(TraceEdges, VirtualSecondsSumsAllOps)
{
    workload::Trace t;
    for (int i = 0; i < 10; ++i) {
        workload::TraceOp op;
        op.kind = workload::OpKind::StoreData;
        op.dt = 0.1;
        t.ops.push_back(op);
    }
    EXPECT_NEAR(t.virtualSeconds(), 1.0, 1e-12);
}

TEST(PageTableEdges, ClearCapDirtyOnUnmappedPanics)
{
    mem::PageTable pt;
    EXPECT_THROW(pt.clearCapDirty(0x1000), PanicError);
    EXPECT_THROW(pt.setCapDirty(0x1000), PanicError);
}

} // namespace
} // namespace cherivoke

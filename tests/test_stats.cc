/**
 * @file
 * Unit tests for counters, running summaries, and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/counters.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace stats {
namespace {

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    c.increment(10);
    ++c;
    EXPECT_EQ(c.value(), 12u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(CounterGroup, LazyCreationAndLookup)
{
    CounterGroup g;
    EXPECT_FALSE(g.has("a.b"));
    EXPECT_EQ(g.value("a.b"), 0u);
    g.counter("a.b").increment(3);
    EXPECT_TRUE(g.has("a.b"));
    EXPECT_EQ(g.value("a.b"), 3u);
}

TEST(CounterGroup, InsertionOrderPreserved)
{
    CounterGroup g;
    g.counter("z");
    g.counter("a");
    g.counter("m");
    ASSERT_EQ(g.names().size(), 3u);
    EXPECT_EQ(g.names()[0], "z");
    EXPECT_EQ(g.names()[1], "a");
    EXPECT_EQ(g.names()[2], "m");
}

TEST(CounterGroup, ResetAllKeepsRegistration)
{
    CounterGroup g;
    g.counter("x").increment(5);
    g.resetAll();
    EXPECT_TRUE(g.has("x"));
    EXPECT_EQ(g.value("x"), 0u);
}

TEST(CounterGroup, ReportContainsEachCounter)
{
    CounterGroup g;
    g.counter("dram.reads").increment(7);
    const std::string rep = g.report();
    EXPECT_NE(rep.find("dram.reads 7"), std::string::npos);
}

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleSample)
{
    Summary s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.total(), 40.0, 1e-12);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(Geomean, EmptyReturnsZero)
{
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Geomean, RejectsNonPositive)
{
    EXPECT_THROW(geomean({1.0, 0.0}), PanicError);
    EXPECT_THROW(geomean({-1.0}), PanicError);
}

TEST(Mean, Basic)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"bench", "time", "mem"});
    t.addRow({"astar", "1.02", "1.10"});
    t.addRow({"xalancbmk", "1.51", "1.35"});
    const std::string out = t.render();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("xalancbmk"), std::string::npos);
    EXPECT_NE(out.find("1.51"), std::string::npos);
    // Header underline present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(TextTable, NumberFormatters)
{
    EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::percent(0.047, 1), "4.7%");
    EXPECT_EQ(TextTable::percent(0.25, 0), "25%");
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t({"name", "v"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    const std::string out = t.render();
    // Every line has the same length (aligned columns).
    size_t prev = std::string::npos;
    size_t start = 0;
    while (start < out.size()) {
        const size_t nl = out.find('\n', start);
        const size_t len = nl - start;
        if (prev != std::string::npos) {
            EXPECT_EQ(len, prev);
        }
        prev = len;
        start = nl + 1;
    }
}

} // namespace
} // namespace stats
} // namespace cherivoke

/**
 * @file
 * Tests for the unified RevocationEngine: policy scheduling
 * (stop-the-world / incremental / concurrent), the satellite
 * guarantee that a threaded sweep reports statistics and cache/DRAM
 * traffic identical to the serial sweep on the same trace, and the
 * sharded paint path.
 */

#include <gtest/gtest.h>

#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "revoke/revocation_engine.hh"
#include "sim/experiment.hh"
#include "support/rng.hh"
#include "workload/driver.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth.hh"

namespace cherivoke {
namespace revoke {
namespace {

using alloc::CherivokeAllocator;
using alloc::CherivokeConfig;
using cap::Capability;

CherivokeConfig
smallConfig()
{
    CherivokeConfig cfg;
    cfg.minQuarantineBytes = 64;
    return cfg;
}

EngineConfig
policyConfig(PolicyKind kind, size_t pages_per_slice = 4)
{
    EngineConfig cfg;
    cfg.policy = kind;
    cfg.pagesPerSlice = pages_per_slice;
    return cfg;
}

/** Build a deterministic pointered heap and free a subset. */
void
buildImage(mem::AddressSpace &space, CherivokeAllocator &heap,
           std::vector<uint64_t> &freed_bases, uint64_t seed = 321)
{
    Rng rng(seed);
    std::vector<Capability> live;
    for (int i = 0; i < 600; ++i) {
        const Capability c = heap.malloc(rng.nextLogUniform(32, 2048));
        space.memory().writeCap(
            mem::kGlobalsBase + static_cast<uint64_t>(i) * 16, c);
        if (!live.empty() && rng.nextBool(0.5)) {
            const Capability &other =
                live[rng.nextBounded(live.size())];
            space.memory().storeCap(other, other.base(), c);
        }
        live.push_back(c);
    }
    for (size_t i = 0; i < live.size(); i += 3) {
        freed_bases.push_back(live[i].base());
        heap.free(live[i]);
    }
}

/** The same-trace driver run under one thread count / policy. */
struct TraceRun
{
    SweepStats sweep;
    alloc::PaintStats paint;
    uint64_t epochs = 0;
    uint64_t dramReads = 0;
    uint64_t dramWrites = 0;
    uint64_t offCoreLines = 0;
};

TraceRun
runTrace(unsigned threads, PolicyKind policy,
         const workload::Trace &trace)
{
    mem::AddressSpace space;
    alloc::CherivokeConfig acfg;
    acfg.minQuarantineBytes = 64 * KiB;
    CherivokeAllocator allocator(space, acfg);
    EngineConfig ecfg;
    ecfg.policy = policy;
    ecfg.sweep.threads = threads;
    ecfg.sweep.useCloadTags = true; // exercise the CLoadTags replay
    RevocationEngine engine(allocator, space, ecfg);
    cache::Hierarchy hierarchy;
    workload::TraceDriver driver(space, allocator, &engine);
    driver.run(trace, &hierarchy);

    TraceRun out;
    out.sweep = engine.totals().sweep;
    out.paint = engine.totals().paint;
    out.epochs = engine.totals().epochs;
    out.dramReads = hierarchy.dram().readBytes();
    out.dramWrites = hierarchy.dram().writeBytes();
    out.offCoreLines = hierarchy.offCoreLines();
    return out;
}

/**
 * The acceptance-criterion test: threads=N produces identical
 * SweepStats (pages swept, caps revoked, traffic totals) to
 * threads=1 on the same trace, for N in {2, 4, 8}.
 */
TEST(ParallelSweepEquality, ThreadedTrafficMatchesSerial)
{
    workload::SynthConfig synth_cfg;
    synth_cfg.scale = 1.0 / 64;
    synth_cfg.durationSec = 0.5;
    synth_cfg.seed = 11;
    const workload::Trace trace = workload::synthesize(
        workload::profileFor("xalancbmk"), synth_cfg);

    const TraceRun serial =
        runTrace(1, PolicyKind::StopTheWorld, trace);
    ASSERT_GT(serial.epochs, 0u);
    ASSERT_GT(serial.sweep.capsRevoked, 0u);
    ASSERT_GT(serial.dramReads, 0u);

    for (const unsigned threads : {2u, 4u, 8u}) {
        const TraceRun par =
            runTrace(threads, PolicyKind::StopTheWorld, trace);
        EXPECT_EQ(par.epochs, serial.epochs) << threads;
        EXPECT_TRUE(par.sweep == serial.sweep)
            << "sweep stats diverged at threads=" << threads;
        EXPECT_EQ(par.paint.total(), serial.paint.total());
        EXPECT_EQ(par.dramReads, serial.dramReads)
            << "DRAM read traffic diverged at threads=" << threads;
        EXPECT_EQ(par.dramWrites, serial.dramWrites)
            << "DRAM write traffic diverged at threads=" << threads;
        EXPECT_EQ(par.offCoreLines, serial.offCoreLines)
            << "off-core traffic diverged at threads=" << threads;
    }
}

TEST(ParallelSweepEquality, ThreadedSweepMatchesSerialOnOneImage)
{
    // Direct sweeper-level check with traffic modelling on.
    auto run = [](unsigned threads) {
        mem::AddressSpace space;
        CherivokeAllocator heap(space, CherivokeConfig{});
        std::vector<uint64_t> freed;
        buildImage(space, heap, freed);
        heap.prepareSweep();
        SweepOptions opts;
        opts.threads = threads;
        opts.useCloadTags = true;
        Sweeper sweeper(opts);
        cache::Hierarchy hierarchy;
        const SweepStats stats =
            sweeper.sweep(space, heap.shadowMap(), &hierarchy);
        heap.finishSweep();
        return std::make_pair(stats,
                              hierarchy.dram().totalBytes());
    };
    const auto [serial, serial_dram] = run(1);
    ASSERT_GT(serial.capsRevoked, 0u);
    for (const unsigned threads : {2u, 4u, 8u}) {
        const auto [par, par_dram] = run(threads);
        EXPECT_TRUE(par == serial) << "threads=" << threads;
        EXPECT_EQ(par_dram, serial_dram) << "threads=" << threads;
    }
}

TEST(RevocationEngineTest, AllPoliciesRevokeEveryDangler)
{
    for (const PolicyKind kind :
         {PolicyKind::StopTheWorld, PolicyKind::Incremental,
          PolicyKind::Concurrent}) {
        mem::AddressSpace space;
        CherivokeAllocator heap(space, smallConfig());
        RevocationEngine engine(heap, space, policyConfig(kind));
        std::vector<uint64_t> freed;
        buildImage(space, heap, freed);
        engine.revokeNow();
        EXPECT_FALSE(engine.epochOpen());
        for (uint64_t s = 0; s < 600; ++s) {
            const Capability c = space.memory().readCap(
                mem::kGlobalsBase + s * 16);
            if (!c.tag())
                continue;
            for (const uint64_t base : freed) {
                EXPECT_NE(c.base(), base)
                    << policyName(kind)
                    << " left a dangling cap in slot " << s;
            }
        }
        heap.dl().validateHeap();
    }
}

TEST(RevocationEngineTest, ConcurrentPolicyInterleavesEpochs)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, smallConfig());
    RevocationEngine engine(
        heap, space, policyConfig(PolicyKind::Concurrent, 1));

    std::vector<Capability> caps;
    for (int i = 0; i < 128; ++i) {
        const Capability c = heap.malloc(4 * KiB);
        space.memory().storeCap(c, c.base(), c);
        caps.push_back(c);
    }
    for (auto &c : caps)
        heap.free(c);

    // First pump opens the epoch and advances one slice; the epoch
    // stays open across calls (mutator-assist scheduling).
    ASSERT_TRUE(heap.needsSweep());
    EXPECT_FALSE(engine.maybeRevoke());
    EXPECT_TRUE(engine.epochOpen());
    EXPECT_TRUE(space.memory().loadBarrierActive());
    EXPECT_GT(engine.pagesRemaining(), 0u);

    int pumps = 1;
    while (!engine.maybeRevoke())
        ++pumps;
    EXPECT_GT(pumps, 2) << "epoch should span several pumps";
    EXPECT_FALSE(engine.epochOpen());
    EXPECT_FALSE(space.memory().loadBarrierActive());
    EXPECT_EQ(engine.totals().epochs, 1u);
    EXPECT_GT(engine.totals().slices, 2u);
}

TEST(RevocationEngineTest, PolicyNamesRoundTrip)
{
    for (const PolicyKind kind :
         {PolicyKind::StopTheWorld, PolicyKind::Incremental,
          PolicyKind::Concurrent}) {
        PolicyKind parsed;
        ASSERT_TRUE(parsePolicy(policyName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    PolicyKind parsed;
    EXPECT_TRUE(parsePolicy("stw", parsed));
    EXPECT_EQ(parsed, PolicyKind::StopTheWorld);
    EXPECT_FALSE(parsePolicy("nonsense", parsed));
}

TEST(RevocationEngineTest, ShardedPaintMatchesUnsharded)
{
    // Identical images painted with 1 vs N shards: identical paint
    // statistics (whole runs stay within one shard, so the store
    // sequence is the same) and identical sweep outcome.
    auto run = [](unsigned shards) {
        mem::AddressSpace space;
        CherivokeAllocator heap(space, CherivokeConfig{});
        std::vector<uint64_t> freed;
        buildImage(space, heap, freed);
        const alloc::PaintStats paint = heap.prepareSweep(shards);
        Sweeper sweeper;
        const SweepStats stats =
            sweeper.sweep(space, heap.shadowMap());
        heap.finishSweep();
        return std::make_pair(paint, stats);
    };
    const auto [paint1, sweep1] = run(1);
    ASSERT_GT(paint1.total(), 0u);
    for (const unsigned shards : {2u, 3u, 8u}) {
        const auto [paintN, sweepN] = run(shards);
        EXPECT_EQ(paintN.bitOps, paint1.bitOps) << shards;
        EXPECT_EQ(paintN.byteOps, paint1.byteOps) << shards;
        EXPECT_EQ(paintN.wordOps, paint1.wordOps) << shards;
        EXPECT_EQ(paintN.dwordOps, paint1.dwordOps) << shards;
        EXPECT_TRUE(sweepN == sweep1) << shards;
    }
}

TEST(RevocationEngineTest, EngineLevelShardedPaint)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, smallConfig());
    EngineConfig cfg;
    cfg.paintShards = 4;
    RevocationEngine engine(heap, space, cfg);
    std::vector<uint64_t> freed;
    buildImage(space, heap, freed);
    const EpochStats epoch = engine.revokeNow();
    EXPECT_GT(epoch.paint.total(), 0u);
    EXPECT_GT(epoch.sweep.capsRevoked, 0u);
    EXPECT_EQ(heap.quarantinedBytes(), 0u);
    heap.dl().validateHeap();
}

TEST(RevocationEngineTest, DrainIsIdempotent)
{
    mem::AddressSpace space;
    CherivokeAllocator heap(space, smallConfig());
    RevocationEngine engine(
        heap, space, policyConfig(PolicyKind::Concurrent, 1));
    const Capability a = heap.malloc(64);
    heap.free(a);
    engine.maybeRevoke();
    engine.drain();
    EXPECT_FALSE(engine.epochOpen());
    const uint64_t epochs = engine.totals().epochs;
    engine.drain();
    EXPECT_EQ(engine.totals().epochs, epochs);
}

TEST(RevocationEngineTest, FreeAndRevokeCoversOpenEpoch)
{
    // Strict §3.7 mode must revoke the just-freed allocation even if
    // a concurrent epoch (frozen before the free) is open.
    mem::AddressSpace space;
    CherivokeAllocator heap(space, smallConfig());
    RevocationEngine engine(
        heap, space, policyConfig(PolicyKind::Concurrent, 1));

    std::vector<Capability> caps;
    for (int i = 0; i < 64; ++i) {
        const Capability c = heap.malloc(4 * KiB);
        space.memory().storeCap(c, c.base(), c);
        caps.push_back(c);
    }
    for (auto &c : caps)
        heap.free(c);
    engine.maybeRevoke(); // opens an epoch over those frees
    ASSERT_TRUE(engine.epochOpen());

    const Capability victim = heap.malloc(64);
    space.memory().writeCap(mem::kGlobalsBase, victim);
    engine.freeAndRevoke(victim);
    EXPECT_FALSE(space.memory().readCap(mem::kGlobalsBase).tag())
        << "strict mode must revoke the freed cap immediately";
    EXPECT_FALSE(engine.epochOpen());
}

TEST(RevocationEngineTest, ExperimentRunsUnderEveryPolicy)
{
    // The bench drivers route through runBenchmark; every policy must
    // complete and agree on the workload's safety-relevant totals.
    for (const PolicyKind kind :
         {PolicyKind::StopTheWorld, PolicyKind::Incremental,
          PolicyKind::Concurrent}) {
        sim::ExperimentConfig cfg;
        cfg.scale = 1.0 / 128;
        cfg.durationSec = 0.2;
        cfg.policy = kind;
        const sim::BenchResult r = sim::runBenchmark(
            workload::profileFor("xalancbmk"), cfg);
        EXPECT_GT(r.run.revoker.epochs, 0u) << policyName(kind);
        EXPECT_GT(r.run.revoker.sweep.capsRevoked, 0u)
            << policyName(kind);
        EXPECT_GT(r.normalizedTime, 1.0) << policyName(kind);
    }
}

// ---- Multi-domain epoch edge cases -----------------------------

namespace {

/** Two tenants' (allocator, space) pairs on one shared memory,
 *  engine domain i == tenant i — the minimal multi-domain fixture
 *  (tenant::TenantManager builds the same shape at scale). */
struct TwoDomains
{
    mem::TaggedMemory memory;
    mem::AddressSpace space0;
    mem::AddressSpace space1;
    CherivokeAllocator heap0;
    CherivokeAllocator heap1;

    explicit TwoDomains(CherivokeConfig cfg = smallConfig())
        : space0(memory, mem::AddressSpace::Layout{}, 512 * KiB,
                 512 * KiB),
          space1(memory,
                 mem::AddressSpace::Layout{}.shifted(0x8000'0000ULL),
                 512 * KiB, 512 * KiB),
          heap0(space0, cfg), heap1(space1, cfg)
    {}
};

/** Quarantine enough of domain @p heap to put it over budget. */
void
pressurize(mem::AddressSpace &space, CherivokeAllocator &heap,
           uint64_t globals_base)
{
    std::vector<Capability> caps;
    for (int i = 0; i < 64; ++i) {
        const Capability c = heap.malloc(512);
        space.memory().writeCap(
            globals_base + static_cast<uint64_t>(i) * 16, c);
        // A self-referential store marks the heap page CapDirty, so
        // the worklist spans several pages (multi-slice epochs).
        space.memory().storeCap(c, c.base(), c);
        caps.push_back(c);
    }
    for (size_t i = 0; i < caps.size(); i += 2)
        heap.free(caps[i]);
}

} // namespace

TEST(MultiDomainEpochs, RetireWithOpenEpochDrainsOwnDomainOnly)
{
    TwoDomains d;
    RevocationEngine engine(d.heap0, d.space0,
                            policyConfig(PolicyKind::Concurrent, 1));
    engine.addDomain(d.heap1, d.space1);
    engine.setDomainPolicy(1, PolicyKind::Concurrent);

    // Open an epoch on domain 1, advanced only part way.
    pressurize(d.space1, d.heap1, d.space1.globals().base);
    engine.selectDomain(1);
    engine.maybeRevoke();
    ASSERT_TRUE(engine.epochOpen());
    ASSERT_EQ(engine.epochDomainIndex(), 1u);

    // Retiring domain 0 must not touch domain 1's open epoch.
    engine.selectDomain(1);
    engine.retireDomain(0);
    EXPECT_TRUE(engine.epochOpen());
    EXPECT_TRUE(engine.domainRetired(0));

    // Retiring domain 1 drains its own epoch to completion first.
    engine.retireDomain(1);
    EXPECT_FALSE(engine.epochOpen());
    EXPECT_EQ(engine.domainTotals(1).epochs, 1u);
    EXPECT_EQ(engine.domainTotals(0).epochs, 0u);
    EXPECT_TRUE(engine.allRetired());
}

TEST(MultiDomainEpochs, GlobalSweepRacingPerTenantEpoch)
{
    // Domain 0 runs concurrent and has an epoch in flight; domain 1
    // forces a stop-the-world pause (the global-scope trigger).
    // Arbitration: the forced pause first completes domain 0's
    // epoch — credited to domain 0 — then runs domain 1's own.
    TwoDomains d;
    RevocationEngine engine(d.heap0, d.space0,
                            policyConfig(PolicyKind::Concurrent, 1));
    engine.addDomain(d.heap1, d.space1);
    engine.setDomainPolicy(1, PolicyKind::StopTheWorld);

    pressurize(d.space0, d.heap0, d.space0.globals().base);
    engine.selectDomain(0);
    engine.maybeRevoke();
    ASSERT_TRUE(engine.epochOpen());
    ASSERT_EQ(engine.epochDomainIndex(), 0u);

    pressurize(d.space1, d.heap1, d.space1.globals().base);
    engine.selectDomain(1);
    const EpochStats last = engine.revokeNow();
    EXPECT_FALSE(engine.epochOpen());
    EXPECT_EQ(engine.domainTotals(0).epochs, 1u);
    EXPECT_EQ(engine.domainTotals(1).epochs, 1u);
    EXPECT_EQ(engine.totals().epochs, 2u);
    // revokeNow's return value is domain 1's own epoch: a single
    // stop-the-world pause (one slice).
    EXPECT_EQ(last.slices, 1u);
}

TEST(MultiDomainEpochs, MixedPolicyPumpAssistsEpochOwner)
{
    // A stop-the-world neighbour's pump advances the concurrent
    // tenant's open epoch (epoch-owner-wins) instead of opening a
    // second epoch or stalling.
    TwoDomains d;
    RevocationEngine engine(d.heap0, d.space0,
                            policyConfig(PolicyKind::Concurrent, 1));
    engine.addDomain(d.heap1, d.space1);
    engine.setDomainPolicy(1, PolicyKind::StopTheWorld);

    pressurize(d.space0, d.heap0, d.space0.globals().base);
    engine.selectDomain(0);
    engine.maybeRevoke();
    ASSERT_TRUE(engine.epochOpen());
    const size_t before = engine.pagesRemaining();
    ASSERT_GT(before, 0u);

    // Domain 1 pumps with no pressure of its own: one slice of
    // domain 0's epoch advances.
    engine.selectDomain(1);
    engine.maybeRevoke();
    EXPECT_LT(engine.pagesRemaining(), before);
    engine.drain();
    EXPECT_EQ(engine.domainTotals(0).epochs, 1u);
    EXPECT_EQ(engine.domainTotals(1).epochs, 0u);
}

TEST(MultiDomainEpochs, BindDomainReusesRetiredSlotWithFreshTotals)
{
    TwoDomains d;
    RevocationEngine engine(d.heap0, d.space0, policyConfig(
        PolicyKind::StopTheWorld));
    engine.addDomain(d.heap1, d.space1);

    pressurize(d.space1, d.heap1, d.space1.globals().base);
    engine.selectDomain(1);
    engine.revokeNow();
    ASSERT_EQ(engine.domainTotals(1).epochs, 1u);

    engine.selectDomain(0);
    engine.retireDomain(1);
    EXPECT_TRUE(engine.domainRetired(1));
    // Statistics of a retired slot stay readable until reuse...
    EXPECT_EQ(engine.domainTotals(1).epochs, 1u);

    // ...and restart from zero when a new tenant binds the slot.
    mem::AddressSpace space1b(
        d.memory, mem::AddressSpace::Layout{}.shifted(0x8000'0000ULL),
        512 * KiB, 512 * KiB);
    CherivokeAllocator heap1b(space1b, smallConfig());
    EXPECT_EQ(engine.bindDomain(1, heap1b, space1b), 1u);
    EXPECT_FALSE(engine.domainRetired(1));
    EXPECT_EQ(engine.domainTotals(1).epochs, 0u);
}

TEST(MultiDomainEpochs, PolicyMixDeterminism)
{
    // Every policy pair, run twice over the same deterministic op
    // sequence: totals must match run for run.
    const PolicyKind kinds[] = {PolicyKind::StopTheWorld,
                                PolicyKind::Incremental,
                                PolicyKind::Concurrent};
    for (const PolicyKind p0 : kinds) {
        for (const PolicyKind p1 : kinds) {
            auto once = [&]() {
                TwoDomains d;
                RevocationEngine engine(d.heap0, d.space0,
                                        policyConfig(p0, 2));
                engine.addDomain(d.heap1, d.space1);
                engine.setDomainPolicy(1, p1);
                for (int round = 0; round < 3; ++round) {
                    pressurize(d.space0, d.heap0,
                               d.space0.globals().base);
                    pressurize(d.space1, d.heap1,
                               d.space1.globals().base);
                    for (int pump = 0; pump < 64; ++pump) {
                        engine.selectDomain(pump & 1);
                        engine.maybeRevoke();
                    }
                }
                engine.drain();
                return std::make_pair(engine.domainTotals(0),
                                      engine.domainTotals(1));
            };
            const auto a = once();
            const auto b = once();
            EXPECT_EQ(a.first, b.first)
                << policyName(p0) << "+" << policyName(p1);
            EXPECT_EQ(a.second, b.second)
                << policyName(p0) << "+" << policyName(p1);
        }
    }
}

} // namespace
} // namespace revoke
} // namespace cherivoke

/**
 * @file
 * Tier-2 fuzz for the adaptive policy: seeded random allocation
 * traces crossed with random tier counts, ages and hysteresis
 * budgets. Three invariants, per seed:
 *
 *  - Replay determinism: the same seed replayed twice produces a
 *    byte-identical statistics fingerprint.
 *  - Quarantine ceiling: after every engine pump the allocator is
 *    back under its configured quarantine threshold — adaptive's
 *    escalate-to-full-depth round guarantees a scoped epoch can
 *    never leave pressure standing.
 *  - No tier starves: at end of trace one forced pause releases
 *    every quarantined byte, whatever tier it aged into. Cold runs
 *    are never parked beyond reach of a full-depth epoch.
 */

#include <cinttypes>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "revoke/adaptive.hh"
#include "revoke/revocation_engine.hh"

namespace cherivoke {
namespace revoke {
namespace {

using alloc::CherivokeAllocator;
using alloc::CherivokeConfig;
using cap::Capability;

/** Random but bounded controller tunables for one seed. */
AdaptiveConfig
randomAdaptiveConfig(std::mt19937_64 &rng)
{
    AdaptiveConfig cfg;
    cfg.tiers = 1 + static_cast<unsigned>(rng() % 4);
    cfg.tierAgeEpochs = 1 + static_cast<unsigned>(rng() % 6);
    cfg.promoteAfter = 1 + static_cast<unsigned>(rng() % 4);
    cfg.demoteAfter = 1 + static_cast<unsigned>(rng() % 4);
    cfg.windowEpochs = 2 + static_cast<unsigned>(rng() % 10);
    cfg.hotShareHigh = 0.45 + 0.05 * static_cast<double>(rng() % 6);
    cfg.hotShareLow = 0.05 + 0.05 * static_cast<double>(rng() % 4);
    cfg.shallowMargin = 1.0 + 0.25 * static_cast<double>(rng() % 8);
    cfg.maxSweepThreads = 1 + static_cast<unsigned>(rng() % 4);
    return cfg;
}

/** Small quarantine so epochs fire often within a short trace. */
CherivokeConfig
randomHeapConfig(std::mt19937_64 &rng)
{
    CherivokeConfig cfg;
    cfg.quarantineFraction =
        0.10 + 0.05 * static_cast<double>(rng() % 6);
    cfg.minQuarantineBytes = 8 * KiB << (rng() % 3);
    return cfg;
}

/**
 * Replay one seeded trace against a fresh heap + adaptive engine and
 * return the statistics fingerprint. Every random draw comes from
 * the seeded generator, every controller input from the model clock
 * — two calls with the same seed must match exactly.
 */
std::string
runTrace(uint64_t seed, bool inject_policy_object)
{
    std::mt19937_64 rng(seed);
    const AdaptiveConfig acfg = randomAdaptiveConfig(rng);
    const CherivokeConfig hcfg = randomHeapConfig(rng);

    mem::AddressSpace space;
    auto &memory = space.memory();
    CherivokeAllocator heap(space, hcfg);
    // Two equivalent wirings: the EngineConfig path, or a default
    // (static) engine whose domain policy is swapped for a
    // configured adaptive object — the test-injection path.
    EngineConfig ecfg;
    if (!inject_policy_object) {
        ecfg.policy = PolicyKind::Adaptive;
        ecfg.adaptive = acfg;
    }
    RevocationEngine engine(heap, space, ecfg);
    if (inject_policy_object)
        engine.setDomainPolicyObject(0, makeAdaptivePolicy(acfg));

    std::vector<Capability> live;
    live.reserve(512);
    const size_t ops = 2500;
    for (size_t i = 0; i < ops; ++i) {
        const uint64_t pick = rng() % 100;
        if (pick < 45 && live.size() < 400) {
            const uint64_t size = 16 + rng() % 768;
            const Capability c = heap.malloc(size);
            // Initialise like a real program would: data writes
            // clear any stale tags a previous occupant left behind.
            memory.fill(c.base(), 0, heap.usableSize(c.base()));
            live.push_back(c);
        } else if (pick < 75 && !live.empty()) {
            const size_t victim = rng() % live.size();
            heap.free(live[victim]);
            live[victim] = live.back();
            live.pop_back();
        } else if (pick < 90 && live.size() >= 2) {
            const Capability &dst = live[rng() % live.size()];
            const Capability &src = live[rng() % live.size()];
            const uint64_t usable = heap.usableSize(dst.base());
            if (usable >= kCapBytes) {
                const uint64_t offset =
                    (rng() % (usable - kCapBytes + 1)) &
                    ~(kCapBytes - 1);
                memory.writeCap(dst.base() + offset, src);
            }
        } else {
            // Model time passes: 1–500 microseconds.
            engine.modelClock().advance(
                1000 * (1 + rng() % 500));
        }
        engine.maybeRevoke();
        // Quarantine-ceiling invariant: a pump must always settle
        // the allocator back under its trigger threshold.
        EXPECT_FALSE(heap.needsSweep())
            << "seed " << seed << " op " << i
            << ": adaptive pump left quarantine pressure standing";
        if (heap.needsSweep())
            return "ceiling violated"; // don't spam per-op failures
    }

    // Starvation invariant: one forced full-depth pause releases
    // every quarantined byte, however old.
    engine.revokeNow();
    EXPECT_EQ(heap.quarantinedBytes(), 0u)
        << "seed " << seed << ": a tier's bytes were never released";

    const EngineTotals &t = engine.totals();
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "epochs=%" PRIu64 " slices=%" PRIu64 " swept=%" PRIu64
        " skipped_tier=%" PRIu64 " revoked=%" PRIu64
        " released=%" PRIu64 " kernel=%.17g live=%" PRIu64
        " foot=%" PRIu64 " objs=%zu",
        t.epochs, t.slices, t.sweep.pagesSwept,
        t.sweep.pagesSkippedTier, t.sweep.capsRevoked,
        t.bytesReleased, t.sweep.kernelCycles, heap.liveBytes(),
        heap.footprintBytes(), live.size());
    return std::string(buf);
}

TEST(AdaptiveFuzz, RandomTracesReplayDeterministically)
{
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        // Alternate between the EngineConfig wiring and the injected
        // policy object: both construction paths must behave, and
        // behave identically run to run.
        const bool inject = (seed % 2) == 0;
        const std::string first = runTrace(seed, inject);
        const std::string second = runTrace(seed, inject);
        EXPECT_EQ(first, second) << "seed " << seed;
        // A trace that never revoked would vacuously pass the
        // invariants: require real epochs.
        EXPECT_NE(first.find("epochs="), std::string::npos);
        EXPECT_EQ(first.find("epochs=0 "), std::string::npos)
            << "seed " << seed << ": trace drove no epochs";
    }
}

} // namespace
} // namespace revoke
} // namespace cherivoke

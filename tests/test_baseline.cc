/**
 * @file
 * Tests for the baseline temporal-safety techniques (paper §7), and
 * the differential properties the paper uses to argue for CHERIvoke:
 * conservative GC retains integer-aliased garbage, registry schemes
 * miss hidden pointers, page schemes waste page-granular memory.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "alloc/cherivoke_alloc.hh"
#include "baseline/boehm_gc.hh"
#include "baseline/dangsan.hh"
#include "baseline/oscar.hh"
#include "baseline/psweeper.hh"
#include "baseline/published.hh"
#include "stats/summary.hh"
#include "revoke/revocation_engine.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace baseline {
namespace {

using cap::Capability;

class BoehmGcTest : public ::testing::Test
{
  protected:
    BoehmGcTest() : dl(space), gc(space, dl) {}

    mem::AddressSpace space;
    alloc::DlAllocator dl;
    BoehmGc gc;
};

TEST_F(BoehmGcTest, UnreachableObjectCollected)
{
    const Capability a = gc.gcAlloc(64);
    (void)a; // never stored anywhere reachable
    const GcStats stats = gc.collect();
    EXPECT_EQ(stats.objectsFreed, 1u);
    EXPECT_EQ(gc.liveObjects(), 0u);
}

TEST_F(BoehmGcTest, RootReferencedObjectSurvives)
{
    const Capability a = gc.gcAlloc(64);
    space.memory().writeU64(mem::kGlobalsBase, a.base());
    const GcStats stats = gc.collect();
    EXPECT_EQ(stats.objectsFreed, 0u);
    EXPECT_EQ(stats.objectsMarked, 1u);
}

TEST_F(BoehmGcTest, TransitiveReachabilityMarks)
{
    const Capability a = gc.gcAlloc(64);
    const Capability b = gc.gcAlloc(64);
    const Capability c = gc.gcAlloc(64);
    // root -> a -> b; c unreachable.
    space.memory().writeU64(mem::kGlobalsBase, a.base());
    space.memory().writeU64(a.base(), b.base());
    (void)c;
    const GcStats stats = gc.collect();
    EXPECT_EQ(stats.objectsMarked, 2u);
    EXPECT_EQ(stats.objectsFreed, 1u);
}

TEST_F(BoehmGcTest, InteriorPointerKeepsObjectAlive)
{
    const Capability a = gc.gcAlloc(256);
    space.memory().writeU64(mem::kGlobalsBase, a.base() + 128);
    const GcStats stats = gc.collect();
    EXPECT_EQ(stats.objectsFreed, 0u);
}

TEST_F(BoehmGcTest, ConservativeFalsePositiveRetainsGarbage)
{
    // The §7.3 weakness: an integer that merely *looks like* the
    // address keeps dead memory alive.
    const Capability a = gc.gcAlloc(64);
    const uint64_t fake_int = a.base(); // an integer, not a pointer
    space.memory().writeU64(mem::kStackBase + 64, fake_int);
    const GcStats stats = gc.collect();
    EXPECT_EQ(stats.objectsFreed, 0u)
        << "conservative GC cannot free integer-aliased garbage";
}

TEST_F(BoehmGcTest, RegisterRootsScanned)
{
    const Capability a = gc.gcAlloc(64);
    space.registers().reg(3) = a;
    const GcStats stats = gc.collect();
    EXPECT_EQ(stats.objectsFreed, 0u);
}

TEST_F(BoehmGcTest, MarkingIsGraphWalk)
{
    // A linked list of N nodes requires N mark visits — the
    // irregular traversal that CHERIvoke's linear sweep avoids.
    Capability prev = gc.gcAlloc(64);
    space.memory().writeU64(mem::kGlobalsBase, prev.base());
    for (int i = 0; i < 20; ++i) {
        const Capability node = gc.gcAlloc(64);
        space.memory().writeU64(prev.base(), node.base());
        prev = node;
    }
    const GcStats stats = gc.collect();
    EXPECT_EQ(stats.objectsMarked, 21u);
    EXPECT_GE(stats.markVisits, 21u);
}

class DangSanTest : public ::testing::Test
{
  protected:
    DangSanTest() : dl(space), ds(space, dl) {}

    mem::AddressSpace space;
    alloc::DlAllocator dl;
    DangSan ds;
};

TEST_F(DangSanTest, RecordedPointerNullifiedOnFree)
{
    const Capability a = ds.malloc(64);
    ds.recordPointerStore(mem::kGlobalsBase, a);
    ds.free(a);
    EXPECT_EQ(space.memory().readU64(mem::kGlobalsBase), 0u);
    EXPECT_EQ(ds.stats().nullified, 1u);
}

TEST_F(DangSanTest, OverwrittenLocationNotNullified)
{
    const Capability a = ds.malloc(64);
    const Capability b = ds.malloc(64);
    ds.recordPointerStore(mem::kGlobalsBase, a);
    ds.recordPointerStore(mem::kGlobalsBase, b); // overwrite
    ds.free(a);
    // The location now holds b; freeing a must not nullify it.
    EXPECT_EQ(space.memory().readU64(mem::kGlobalsBase), b.base());
    EXPECT_EQ(ds.stats().staleEntries, 1u);
}

TEST_F(DangSanTest, RegistryGrowsWithPointerStores)
{
    const Capability hub = ds.malloc(64);
    for (uint64_t i = 0; i < 100; ++i)
        ds.recordPointerStore(mem::kGlobalsBase + i * 16, hub);
    EXPECT_EQ(ds.registrySizeFor(hub.base()), 100u);
    EXPECT_GT(ds.stats().registryBytes, 100 * 8u)
        << "per-store metadata is DangSan's structural cost";
}

TEST_F(DangSanTest, HiddenPointerEscapesNullification)
{
    // The §7.1 weakness: a pointer copied through an uninstrumented
    // channel survives free and still dereferences reallocated data.
    const Capability a = ds.malloc(64);
    ds.recordPointerStore(mem::kGlobalsBase, a);
    // Hidden copy: raw byte copy the instrumentation cannot see.
    auto &memory = space.memory();
    memory.writeU64(mem::kGlobalsBase + 4096, a.base());
    ds.free(a);
    // The hidden copy still holds the raw address, and the memory is
    // immediately reusable: a use-after-reallocation is live.
    const Capability b = ds.malloc(64);
    EXPECT_EQ(b.base(), a.base()) << "memory reused immediately";
    EXPECT_EQ(memory.readU64(mem::kGlobalsBase + 4096), b.base())
        << "hidden pointer aliases the attacker's new allocation";
}

TEST(CherivokeVsDangSan, CherivokeCatchesHiddenPointerCopies)
{
    // The same scenario under CHERIvoke: even an untracked capability
    // copy is found by the sweep, because tags identify every copy.
    mem::AddressSpace space;
    alloc::CherivokeConfig cfg;
    cfg.minQuarantineBytes = 16;
    alloc::CherivokeAllocator alloc(space, cfg);
    revoke::RevocationEngine revoker(alloc, space);
    auto &memory = space.memory();

    const Capability a = alloc.malloc(64);
    memory.writeCap(mem::kGlobalsBase, a);
    // "Hidden" copy: the program copies the capability wholesale; on
    // CHERI the tag travels with it and the sweep still sees it.
    memory.copyPreservingTags(mem::kGlobalsBase + 4096,
                              mem::kGlobalsBase, 16);
    alloc.free(a);
    revoker.revokeNow();
    EXPECT_FALSE(memory.readCap(mem::kGlobalsBase).tag());
    EXPECT_FALSE(memory.readCap(mem::kGlobalsBase + 4096).tag())
        << "CHERIvoke revokes copies DangSan-style schemes miss";
}

class PSweeperTest : public ::testing::Test
{
  protected:
    PSweeperTest() : dl(space), ps(space, dl, /*budget=*/1 * MiB) {}

    mem::AddressSpace space;
    alloc::DlAllocator dl;
    PSweeper ps;
};

TEST_F(PSweeperTest, FreeIsDeferredUntilSweep)
{
    const Capability a = ps.malloc(64);
    const uint64_t addr = a.base();
    ps.free(a);
    // Memory not yet reusable (deferred list).
    const Capability b = ps.malloc(64);
    EXPECT_NE(b.base(), addr);
    ps.sweepNow();
    const Capability c = ps.malloc(64);
    EXPECT_EQ(c.base(), addr) << "released after the sweep";
}

TEST_F(PSweeperTest, SweepNullifiesLoggedPointers)
{
    const Capability a = ps.malloc(64);
    ps.recordPointerStore(mem::kGlobalsBase, a);
    ps.free(a);
    ps.sweepNow();
    EXPECT_EQ(space.memory().readU64(mem::kGlobalsBase), 0u);
    EXPECT_EQ(ps.stats().nullified, 1u);
}

TEST_F(PSweeperTest, BudgetTriggersAutomaticSweep)
{
    std::vector<Capability> caps;
    for (int i = 0; i < 40; ++i)
        caps.push_back(ps.malloc(64 * KiB));
    for (auto &c : caps)
        ps.free(c);
    EXPECT_GT(ps.stats().sweeps, 0u);
    EXPECT_LT(ps.deferredBytes(), 2 * MiB);
}

TEST_F(PSweeperTest, SweepCostScalesWithLoggedStores)
{
    const Capability keep = ps.malloc(64);
    for (uint64_t i = 0; i < 500; ++i)
        ps.recordPointerStore(mem::kGlobalsBase + i * 16, keep);
    const Capability dead = ps.malloc(64);
    ps.free(dead);
    ps.sweepNow();
    EXPECT_GE(ps.stats().entriesWalked, 500u)
        << "sweep walks metadata proportional to pointer stores";
}

class OscarTest : public ::testing::Test
{
  protected:
    OscarTest() : oscar(space) {}

    mem::AddressSpace space;
    Oscar oscar;
};

TEST_F(OscarTest, EachAllocationGetsItsOwnPages)
{
    const Capability a = oscar.malloc(16);
    const Capability b = oscar.malloc(16);
    EXPECT_TRUE(isAligned(a.base(), kPageBytes));
    EXPECT_TRUE(isAligned(b.base(), kPageBytes));
    EXPECT_GE(oscar.liveAliasedBytes(), 2 * kPageBytes);
}

TEST_F(OscarTest, FreedAliasFaultsOnAccess)
{
    const Capability a = oscar.malloc(64);
    auto &memory = space.memory();
    memory.storeU64(a, a.base(), 7);
    oscar.free(a);
    EXPECT_THROW((void)memory.loadU64(a, a.base()), cap::CapFault)
        << "poisoned page must fault dangling accesses";
}

TEST_F(OscarTest, SmallAllocationsWasteMemoryInModel)
{
    const OscarEstimate est =
        estimateOscar(OscarCosts{}, /*allocs_per_sec=*/1.0e6,
                      /*mean_alloc_bytes=*/64,
                      /*live_heap_bytes=*/64.0 * MiB);
    EXPECT_GT(est.memoryOverhead, 10.0)
        << "page rounding of 64B allocations wastes >10x memory";
    EXPECT_GT(est.runtimeOverhead, 1.0)
        << "1M mmap/munmap per second dominates runtime";
}

TEST_F(OscarTest, LargeAllocationsCheapInModel)
{
    const OscarEstimate est =
        estimateOscar(OscarCosts{}, /*allocs_per_sec=*/10.0,
                      /*mean_alloc_bytes=*/1.0 * MiB,
                      /*live_heap_bytes=*/256.0 * MiB);
    EXPECT_LT(est.runtimeOverhead, 0.01);
    EXPECT_LT(est.memoryOverhead, 0.01);
}

TEST(Published, TableCoversAllSixteenBenchmarks)
{
    EXPECT_EQ(publishedFigure5().size(), 16u);
    EXPECT_NO_THROW(publishedRowFor("xalancbmk"));
    EXPECT_THROW(publishedRowFor("nonesuch"), FatalError);
}

TEST(Published, CherivokeWinsOnGeomeanAndWorstCase)
{
    // The figure's actual claim (§6): CHERIvoke wins on geomean and
    // on worst case — not necessarily on every single benchmark
    // (DangSan is cheaper on e.g. soplex).
    std::vector<double> cvk, oscar, psw, dang, gc, cvk_m, dang_m;
    for (const auto &row : publishedFigure5()) {
        cvk.push_back(row.cherivokeTime);
        oscar.push_back(row.oscarTime);
        psw.push_back(row.psweeperTime);
        dang.push_back(row.dangsanTime);
        gc.push_back(row.boehmGcTime);
        cvk_m.push_back(row.cherivokeMem);
        dang_m.push_back(row.dangsanMem);
    }
    using stats::geomean;
    EXPECT_LT(geomean(cvk), geomean(oscar));
    EXPECT_LT(geomean(cvk), geomean(psw));
    EXPECT_LT(geomean(cvk), geomean(dang));
    EXPECT_LT(geomean(cvk), geomean(gc));
    EXPECT_LT(geomean(cvk_m), geomean(dang_m));
    auto maxof = [](const std::vector<double> &v) {
        return *std::max_element(v.begin(), v.end());
    };
    EXPECT_LE(maxof(cvk), 1.51);
    EXPECT_LT(maxof(cvk), maxof(oscar));
    EXPECT_LT(maxof(cvk), maxof(dang));
    EXPECT_LT(maxof(cvk), maxof(gc));
}

TEST(Published, HeadlinesMatchAbstract)
{
    const PaperHeadlines h = paperHeadlines();
    EXPECT_DOUBLE_EQ(h.avgRuntimeOverhead, 0.047);
    EXPECT_DOUBLE_EQ(h.maxRuntimeOverhead, 0.51);
    EXPECT_DOUBLE_EQ(h.avgMemoryOverhead, 0.125);
    EXPECT_DOUBLE_EQ(h.heapOverheadSetting, 0.25);
}

} // namespace
} // namespace baseline
} // namespace cherivoke

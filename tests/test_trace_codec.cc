/**
 * @file
 * Binary trace codec tests: header/record layout, canonical
 * round-tripping (record → serialize → deserialize → replay), error
 * paths, and the end-to-end guarantee the multi-tenant benches rely
 * on — a decoded trace replays to *identical* allocator and
 * revocation statistics.
 */

#include <cstdio>
#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "revoke/revocation_engine.hh"
#include "support/logging.hh"
#include "tenant/trace_codec.hh"
#include "workload/driver.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth.hh"

using namespace cherivoke;
using workload::OpKind;
using workload::Trace;
using workload::TraceOp;

namespace {

Trace
sampleTrace()
{
    const char *text = R"(# cherivoke-trace v1
malloc 1 4096 0 0 0 0
malloc 2 128 0 0 0 0.001
storeptr 0 0 1 2 16 0
rootptr 0 0 2 0 7 0
storedata 0 0 0 1 64 0.001
free 1 0 0 0 0 0.001
malloc 3 256 0 0 0 0.001
free 2 0 0 0 0 0.0005
free 3 0 0 0 0 0.001
)";
    std::istringstream is(text);
    return Trace::load(is);
}

// Field-wise (not memcmp: struct padding is indeterminate). dt is
// compared bit-exactly — the codec stores the IEEE double verbatim.
bool
opsIdentical(const Trace &a, const Trace &b)
{
    if (a.ops.size() != b.ops.size())
        return false;
    for (size_t i = 0; i < a.ops.size(); ++i) {
        const TraceOp &x = a.ops[i], &y = b.ops[i];
        uint64_t dtx, dty;
        std::memcpy(&dtx, &x.dt, sizeof(dtx));
        std::memcpy(&dty, &y.dt, sizeof(dty));
        if (x.kind != y.kind || x.id != y.id || x.size != y.size ||
            x.src != y.src || x.dst != y.dst ||
            x.offset != y.offset || dtx != dty)
            return false;
    }
    return true;
}

workload::DriverResult
replay(const Trace &trace)
{
    mem::AddressSpace space;
    alloc::CherivokeConfig cfg;
    cfg.minQuarantineBytes = 4 * KiB;
    alloc::CherivokeAllocator allocator(space, cfg);
    revoke::RevocationEngine engine(allocator, space);
    workload::TraceDriver driver(space, allocator, &engine);
    return driver.run(trace);
}

} // namespace

TEST(TraceCodec, HeaderLayout)
{
    const Trace trace = sampleTrace();
    const std::vector<uint8_t> bytes = tenant::encodeTrace(trace);
    ASSERT_EQ(bytes.size(), tenant::encodedTraceBytes(trace));
    ASSERT_EQ(bytes.size(), tenant::kTraceHeaderBytes +
                                trace.ops.size() *
                                    tenant::kTraceRecordBytes);
    // Magic is the ASCII string "CHERIVTB".
    EXPECT_EQ(0, std::memcmp(bytes.data(), "CHERIVTB", 8));
    EXPECT_TRUE(tenant::isBinaryTrace(bytes.data(), bytes.size()));

    // A text trace is not mistaken for binary.
    const uint8_t text[] = "# cherivoke-trace v1\n";
    EXPECT_FALSE(tenant::isBinaryTrace(text, sizeof(text)));
}

TEST(TraceCodec, RoundTripByteIdentical)
{
    const Trace trace = sampleTrace();
    const std::vector<uint8_t> bytes = tenant::encodeTrace(trace);
    const Trace decoded = tenant::decodeTrace(bytes);

    // The op stream survives byte for byte...
    EXPECT_TRUE(opsIdentical(trace, decoded));
    EXPECT_DOUBLE_EQ(trace.virtualSeconds(),
                     decoded.virtualSeconds());
    // ...and so does a re-encode of the decode.
    EXPECT_EQ(bytes, tenant::encodeTrace(decoded));
}

TEST(TraceCodec, SynthesizedRoundTripAndReplayStats)
{
    // A real synthesised workload: the round trip must preserve the
    // ops exactly AND replaying original vs decoded must produce
    // identical end-of-run allocator/revocation statistics.
    workload::SynthConfig cfg;
    cfg.scale = 1.0 / 256;
    cfg.durationSec = 0.3;
    cfg.seed = 7;
    const Trace trace =
        workload::synthesize(workload::profileFor("dealII"), cfg);
    ASSERT_GT(trace.ops.size(), 1000u);

    const Trace decoded =
        tenant::decodeTrace(tenant::encodeTrace(trace));
    ASSERT_TRUE(opsIdentical(trace, decoded));

    const workload::DriverResult a = replay(trace);
    const workload::DriverResult b = replay(decoded);
    EXPECT_EQ(a.allocCalls, b.allocCalls);
    EXPECT_EQ(a.freeCalls, b.freeCalls);
    EXPECT_EQ(a.freedBytes, b.freedBytes);
    EXPECT_EQ(a.ptrStores, b.ptrStores);
    EXPECT_EQ(a.peakLiveBytes, b.peakLiveBytes);
    EXPECT_EQ(a.peakLiveAllocs, b.peakLiveAllocs);
    EXPECT_EQ(a.peakQuarantineBytes, b.peakQuarantineBytes);
    EXPECT_EQ(a.revoker.epochs, b.revoker.epochs);
    EXPECT_TRUE(a.revoker.sweep == b.revoker.sweep);
    EXPECT_EQ(a.revoker.paint.total(), b.revoker.paint.total());
    EXPECT_EQ(a.revoker.bytesReleased, b.revoker.bytesReleased);
    EXPECT_DOUBLE_EQ(a.virtualSeconds, b.virtualSeconds);
}

TEST(TraceCodec, FileRoundTripAndTextFallback)
{
    const Trace trace = sampleTrace();
    const std::string bin_path =
        testing::TempDir() + "codec_test.cvt";
    tenant::saveTraceFile(bin_path, trace);
    EXPECT_TRUE(opsIdentical(trace,
                             tenant::loadTraceFile(bin_path)));
    std::remove(bin_path.c_str());

    // loadTraceFile falls back to the text format transparently.
    const std::string text_path =
        testing::TempDir() + "codec_test.trace";
    {
        std::ostringstream os;
        trace.save(os);
        FILE *f = std::fopen(text_path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs(os.str().c_str(), f);
        std::fclose(f);
    }
    EXPECT_TRUE(opsIdentical(trace,
                             tenant::loadTraceFile(text_path)));
    std::remove(text_path.c_str());
}

TEST(TraceCodec, RejectsMalformedInput)
{
    const Trace trace = sampleTrace();
    std::vector<uint8_t> bytes = tenant::encodeTrace(trace);

    // Truncated header.
    EXPECT_THROW(tenant::decodeTrace(bytes.data(), 8), FatalError);
    // Truncated records.
    EXPECT_THROW(tenant::decodeTrace(bytes.data(), bytes.size() - 1),
                 FatalError);
    // Bad magic.
    {
        std::vector<uint8_t> bad = bytes;
        bad[0] ^= 0xff;
        EXPECT_THROW(tenant::decodeTrace(bad), FatalError);
    }
    // Unsupported version.
    {
        std::vector<uint8_t> bad = bytes;
        bad[8] = 99;
        EXPECT_THROW(tenant::decodeTrace(bad), FatalError);
    }
    // Unknown op kind in a record.
    {
        std::vector<uint8_t> bad = bytes;
        bad[tenant::kTraceHeaderBytes] = 0x7f;
        EXPECT_THROW(tenant::decodeTrace(bad), FatalError);
    }
    // Unencodable offset.
    {
        Trace wide = trace;
        TraceOp op;
        op.kind = OpKind::StoreData;
        op.dst = 1;
        op.offset = uint64_t{1} << 40;
        wide.ops.push_back(op);
        EXPECT_THROW(tenant::encodeTrace(wide), FatalError);
    }
    // Missing file.
    EXPECT_THROW(tenant::loadTraceFile("/nonexistent/x.cvt"),
                 FatalError);
}

// ---- v2 (tenant lifecycle) records -----------------------------

namespace {

Trace
lifecycleTrace()
{
    Trace trace = sampleTrace();
    TraceOp spawn;
    spawn.kind = OpKind::SpawnTenant;
    spawn.id = 1000;
    spawn.dt = 0.001;
    TraceOp retire;
    retire.kind = OpKind::RetireTenant;
    retire.id = 1000;
    trace.ops.insert(trace.ops.begin() + 2, spawn);
    trace.ops.push_back(retire);
    return trace;
}

uint32_t
headerVersion(const std::vector<uint8_t> &bytes)
{
    uint32_t v;
    std::memcpy(&v, &bytes[8], sizeof(v));
    return v;
}

} // namespace

TEST(TraceCodecV2, ClassicTracesStillEncodeAsV1ByteIdentically)
{
    // A pre-lifecycle trace keeps its exact v1 image: same version
    // byte, and decode → re-encode reproduces the input bytes, so
    // every trace file recorded before the lifecycle ops existed
    // still loads and round-trips unchanged.
    const Trace classic = sampleTrace();
    const std::vector<uint8_t> bytes = tenant::encodeTrace(classic);
    EXPECT_EQ(headerVersion(bytes), tenant::kTraceVersionClassic);
    const Trace decoded = tenant::decodeTrace(bytes);
    EXPECT_TRUE(opsIdentical(classic, decoded));
    EXPECT_EQ(tenant::encodeTrace(decoded), bytes);
}

TEST(TraceCodecV2, LifecycleTracesRoundTripAsV2)
{
    const Trace trace = lifecycleTrace();
    const std::vector<uint8_t> bytes = tenant::encodeTrace(trace);
    EXPECT_EQ(headerVersion(bytes), tenant::kTraceVersionLifecycle);
    const Trace decoded = tenant::decodeTrace(bytes);
    EXPECT_TRUE(opsIdentical(trace, decoded));
    EXPECT_EQ(decoded.ops[2].kind, OpKind::SpawnTenant);
    EXPECT_EQ(decoded.ops[2].id, 1000u);
    EXPECT_TRUE(decoded.hasLifecycleOps());
    // Canonical: re-encode is byte-identical.
    EXPECT_EQ(tenant::encodeTrace(decoded), bytes);
    // The text format carries the new ops too.
    std::ostringstream os;
    trace.save(os);
    std::istringstream is(os.str());
    EXPECT_TRUE(opsIdentical(trace, Trace::load(is)));
}

TEST(TraceCodecV2, RejectsMalformedLifecycleInput)
{
    const Trace trace = lifecycleTrace();
    std::vector<uint8_t> bytes = tenant::encodeTrace(trace);

    // Truncated v2 records.
    EXPECT_THROW(tenant::decodeTrace(bytes.data(), bytes.size() - 1),
                 FatalError);
    EXPECT_THROW(tenant::decodeTrace(bytes.data(),
                                     tenant::kTraceHeaderBytes - 4),
                 FatalError);
    // Bad version.
    {
        std::vector<uint8_t> bad = bytes;
        bad[8] = 3;
        EXPECT_THROW(tenant::decodeTrace(bad), FatalError);
    }
    // A lifecycle record inside a v1 stream is corruption: v1
    // predates the op kinds.
    {
        std::vector<uint8_t> bad = bytes;
        bad[8] = 1;
        EXPECT_THROW(tenant::decodeTrace(bad), FatalError);
    }
    // An op kind beyond v2's limit.
    {
        std::vector<uint8_t> bad = bytes;
        bad[tenant::kTraceHeaderBytes] = workload::kMaxOpKind + 1;
        EXPECT_THROW(tenant::decodeTrace(bad), FatalError);
    }
}

TEST(TraceCodecV2, LifecycleOpsOutsideATenantManagerAreFatal)
{
    // A classic single-process replay cannot give SpawnTenant any
    // meaning: replaying a decoded v2 trace without a TenantManager
    // must fail, not silently skip.
    const Trace decoded =
        tenant::decodeTrace(tenant::encodeTrace(lifecycleTrace()));
    EXPECT_THROW(replay(decoded), FatalError);
}

/**
 * @file
 * Multi-tenant subsystem tests: scheduler fairness and determinism,
 * tenant address-space isolation over the shared TaggedMemory,
 * per-tenant sweep scoping (one tenant's revocation never touches
 * another's capabilities), global-scope draining, run-to-run
 * determinism, and 1-tenant parity with the classic single-process
 * TraceDriver pipeline.
 */

#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "support/env.hh"
#include "support/logging.hh"
#include "tenant/tenant_manager.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth.hh"

using namespace cherivoke;

namespace {

/** A small alloc/free-heavy trace (~20k ops, ~1.6 MiB live). */
workload::Trace
smallTrace(uint64_t seed)
{
    workload::BenchmarkProfile profile =
        workload::profileFor("dealII");
    workload::SynthConfig cfg;
    cfg.scale = 1.0 / 512;
    cfg.durationSec = 2.0;
    cfg.seed = seed;
    return workload::synthesize(profile, cfg);
}

/** Tenant tuned so smallTrace triggers several sweeps: the scaled
 *  free rate covers the 5%-of-heap quarantine budget a few times
 *  within the trace's virtual duration. */
tenant::TenantConfig
smallTenant(const std::string &name, double weight = 1.0)
{
    tenant::TenantConfig cfg;
    cfg.name = name;
    cfg.weight = weight;
    cfg.alloc.quarantineFraction = 0.05;
    cfg.alloc.minQuarantineBytes = 16 * KiB;
    cfg.alloc.dl.initialHeapBytes = 256 * KiB;
    cfg.alloc.dl.growthChunkBytes = 128 * KiB;
    return cfg;
}

} // namespace

TEST(TenantScheduler, SmoothWeightedRotation)
{
    // 2:1:1 interleaves smoothly — the period is ABCA (A's two
    // shares spaced out), not a burst like AABC.
    tenant::TenantScheduler sched({2, 1, 1});
    std::string order;
    size_t counts[3] = {0, 0, 0};
    for (int i = 0; i < 8; ++i) {
        const size_t w = sched.next();
        order += static_cast<char>('A' + w);
        ++counts[w];
    }
    EXPECT_EQ(order, "ABCAABCA");
    EXPECT_EQ(counts[0], 4u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 2u);
}

TEST(TenantScheduler, MarkDoneRedistributes)
{
    tenant::TenantScheduler sched({1, 1});
    EXPECT_EQ(sched.activeCount(), 2u);
    sched.markDone(0);
    EXPECT_EQ(sched.activeCount(), 1u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(sched.next(), 1u);
    sched.markDone(1);
    EXPECT_TRUE(sched.allDone());
}

TEST(TenantScheduler, RejectsBadWeights)
{
    EXPECT_THROW(tenant::TenantScheduler({1.0, 0.0}), FatalError);
    EXPECT_THROW(tenant::TenantScheduler({-2.0}), FatalError);
    // The dynamic path rejects them too, and so does the manager —
    // at addTenant/defineTenant time, not deep inside run().
    tenant::TenantScheduler sched({1.0});
    EXPECT_THROW(sched.arrive(1, 0.0), FatalError);
    EXPECT_THROW(sched.arrive(1, -1.0), FatalError);
    tenant::TenantConfig cfg;
    cfg.name = "zero";
    cfg.weight = 0;
    tenant::TenantManager manager{tenant::TenantManagerConfig{}};
    EXPECT_THROW(manager.addTenant(cfg, workload::Trace{}),
                 FatalError);
}

TEST(TenantScheduler, DropToOneTenantStaysSmooth)
{
    // Regression: when departures leave a single runnable tenant,
    // next() must keep returning it with stable credit — each pick
    // adds its weight and charges the (equal) runnable total, so
    // the credit neither drifts nor underflows no matter how long
    // the survivor runs or what weight it carries.
    tenant::TenantScheduler sched({2.0, 1.0, 1.0});
    for (int i = 0; i < 5; ++i)
        sched.next();
    sched.markDone(0);
    sched.markDone(2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sched.next(), 1u);
    // The survivor departing empties the rotation cleanly.
    sched.markDone(1);
    EXPECT_TRUE(sched.allDone());
}

TEST(TenantScheduler, ArrivalRenormalizesShares)
{
    // A tenant arriving mid-rotation immediately gets its
    // proportional share: 1:1 becomes 1:1:2 and a 4-pick window
    // serves the newcomer twice.
    tenant::TenantScheduler sched({1.0, 1.0});
    sched.next();
    sched.next();
    sched.arrive(2, 2.0);
    size_t counts[3] = {0, 0, 0};
    for (int i = 0; i < 16; ++i)
        ++counts[sched.next()];
    EXPECT_EQ(counts[0], 4u);
    EXPECT_EQ(counts[1], 4u);
    EXPECT_EQ(counts[2], 8u);

    // Slot reuse after departure: the re-arrival starts with zero
    // credit and the weight total is recomputed from the runnable
    // set (never drifted incrementally).
    sched.markDone(0);
    sched.arrive(0, 1.0);
    size_t counts2[3] = {0, 0, 0};
    for (int i = 0; i < 16; ++i)
        ++counts2[sched.next()];
    EXPECT_EQ(counts2[0], 4u);
    EXPECT_EQ(counts2[1], 4u);
    EXPECT_EQ(counts2[2], 8u);
}

TEST(TenantLayout, StridedDisjointRegions)
{
    const auto l0 = tenant::layoutForTenant(0);
    const auto l1 = tenant::layoutForTenant(1);
    // Tenant 0 is exactly the classic single-process layout.
    EXPECT_EQ(l0.globalsBase, mem::kGlobalsBase);
    EXPECT_EQ(l0.heapBase, mem::kHeapBase);
    EXPECT_EQ(l0.stackBase, mem::kStackBase);
    // Tenant 1 is the same image one stride up, below the shadow.
    EXPECT_EQ(l1.heapBase, mem::kHeapBase + tenant::kTenantStride);
    EXPECT_LT(tenant::layoutForTenant(tenant::kMaxTenants - 1)
                  .stackBase,
              mem::kShadowBase);
    EXPECT_THROW(tenant::layoutForTenant(tenant::kMaxTenants),
                 FatalError);
}

TEST(TenantManager, IsolationAndPerTenantSweepScope)
{
    tenant::TenantManagerConfig mgr_cfg;
    mgr_cfg.scope = tenant::RevocationScope::PerTenant;
    tenant::TenantManager manager(mgr_cfg);
    manager.addTenant(smallTenant("a"), workload::Trace{});
    manager.addTenant(smallTenant("b"), workload::Trace{});

    tenant::Tenant &a = manager.tenant(0);
    tenant::Tenant &b = manager.tenant(1);

    // Allocations land in each tenant's own stride of the shared
    // memory.
    const cap::Capability ca = a.allocator().malloc(64);
    const cap::Capability cb = b.allocator().malloc(64);
    EXPECT_GE(ca.base(), mem::kHeapBase);
    EXPECT_LT(ca.base(), tenant::kTenantStride);
    EXPECT_GE(cb.base(), tenant::kTenantStride + mem::kHeapBase);

    // Both tenants store a capability to their object in their own
    // globals; freeing + revoking tenant a's object must strip a's
    // stored capability and leave b's untouched.
    manager.memory().writeCap(a.space().globals().base, ca);
    manager.memory().writeCap(b.space().globals().base, cb);
    a.allocator().free(ca);
    manager.engine().selectDomain(0);
    manager.engine().revokeNow();

    EXPECT_FALSE(
        manager.memory().readCap(a.space().globals().base).tag());
    EXPECT_TRUE(
        manager.memory().readCap(b.space().globals().base).tag());

    // The sweep was scoped to tenant a's segments: domain totals
    // show epochs only for domain 0.
    EXPECT_EQ(manager.engine().domainTotals(0).epochs, 1u);
    EXPECT_EQ(manager.engine().domainTotals(1).epochs, 0u);
    EXPECT_EQ(manager.engine().totals().epochs, 1u);
}

TEST(TenantManager, GlobalScopeDrainsEveryQuarantine)
{
    tenant::TenantManagerConfig mgr_cfg;
    mgr_cfg.scope = tenant::RevocationScope::Global;
    tenant::TenantManager manager(mgr_cfg);
    // Tenant a's trace fills its quarantine; tenant b only trickles.
    manager.addTenant(smallTenant("a"), smallTrace(11));
    manager.addTenant(smallTenant("b"), smallTrace(12));

    const tenant::MultiTenantResult result = manager.run();
    // Under global scope both tenants revoke (b is dragged along
    // whenever a triggers).
    EXPECT_GT(result.tenants[0].run.revoker.epochs, 0u);
    EXPECT_GT(result.tenants[1].run.revoker.epochs, 0u);
    EXPECT_EQ(result.engine.epochs,
              result.tenants[0].run.revoker.epochs +
                  result.tenants[1].run.revoker.epochs);
}

TEST(TenantManager, DeterministicReplay)
{
    auto once = [] {
        tenant::TenantManagerConfig mgr_cfg;
        tenant::TenantManager manager(mgr_cfg);
        manager.addTenant(smallTenant("a", 2.0), smallTrace(21));
        manager.addTenant(smallTenant("b", 1.0), smallTrace(22));
        manager.addTenant(smallTenant("c", 1.0), smallTrace(23));
        return manager.run();
    };
    const tenant::MultiTenantResult x = once();
    const tenant::MultiTenantResult y = once();

    EXPECT_EQ(x.totalOps, y.totalOps);
    EXPECT_EQ(x.peakAggLiveAllocs, y.peakAggLiveAllocs);
    EXPECT_EQ(x.peakAggLiveBytes, y.peakAggLiveBytes);
    EXPECT_EQ(x.engine, y.engine);
    ASSERT_EQ(x.tenants.size(), y.tenants.size());
    for (size_t i = 0; i < x.tenants.size(); ++i) {
        EXPECT_EQ(x.tenants[i].run.revoker,
                  y.tenants[i].run.revoker);
        EXPECT_EQ(x.tenants[i].run.peakLiveAllocs,
                  y.tenants[i].run.peakLiveAllocs);
        EXPECT_EQ(x.tenants[i].run.pageDensity,
                  y.tenants[i].run.pageDensity);
    }
}

TEST(TenantManager, SingleTenantMatchesTraceDriver)
{
    const workload::Trace trace = smallTrace(31);

    // Classic single-process pipeline, with the same segment sizes
    // the tenant's process image gets.
    const tenant::TenantConfig tcfg = smallTenant("solo");
    mem::AddressSpace space(tcfg.globalsBytes, tcfg.stackBytes);
    alloc::CherivokeAllocator allocator(space, tcfg.alloc);
    revoke::RevocationEngine engine(allocator, space);
    workload::TraceDriver driver(space, allocator, &engine);
    const workload::DriverResult a = driver.run(trace);

    // The same trace hosted as the only tenant.
    tenant::TenantManager manager{tenant::TenantManagerConfig{}};
    manager.addTenant(tcfg, trace);
    const tenant::MultiTenantResult multi = manager.run();
    const workload::DriverResult &b = multi.tenants[0].run;

    EXPECT_EQ(a.allocCalls, b.allocCalls);
    EXPECT_EQ(a.freeCalls, b.freeCalls);
    EXPECT_EQ(a.freedBytes, b.freedBytes);
    EXPECT_EQ(a.ptrStores, b.ptrStores);
    EXPECT_EQ(a.peakLiveBytes, b.peakLiveBytes);
    EXPECT_EQ(a.peakLiveAllocs, b.peakLiveAllocs);
    EXPECT_EQ(a.peakQuarantineBytes, b.peakQuarantineBytes);
    EXPECT_EQ(a.peakFootprintBytes, b.peakFootprintBytes);
    EXPECT_EQ(a.pageDensity, b.pageDensity);
    EXPECT_EQ(a.lineDensity, b.lineDensity);
    EXPECT_EQ(a.revoker, b.revoker);
    EXPECT_EQ(multi.peakAggLiveAllocs, a.peakLiveAllocs);
}

TEST(TenantManager, SharedEngineAggregatesAcrossTenants)
{
    tenant::TenantManager manager{tenant::TenantManagerConfig{}};
    manager.addTenant(smallTenant("a"), smallTrace(41));
    manager.addTenant(smallTenant("b"), smallTrace(42));
    const tenant::MultiTenantResult result = manager.run();

    EXPECT_GT(result.engine.epochs, 0u);
    EXPECT_EQ(result.engine.epochs,
              result.tenants[0].run.revoker.epochs +
                  result.tenants[1].run.revoker.epochs);
    EXPECT_EQ(result.allocCalls, result.tenants[0].run.allocCalls +
                                     result.tenants[1].run.allocCalls);
    EXPECT_GT(result.peakAggLiveAllocs, 0u);
    EXPECT_EQ(result.tenantEpochs.count(), 2u);
    // Every tenant triggered sweeps of its own region.
    EXPECT_GT(result.tenants[0].run.revoker.epochs, 0u);
    EXPECT_GT(result.tenants[1].run.revoker.epochs, 0u);
}

TEST(EnvParsing, StrictIntegerAndFloat)
{
    int64_t i = 0;
    EXPECT_TRUE(parseI64("42", i));
    EXPECT_EQ(i, 42);
    EXPECT_FALSE(parseI64("", i));
    EXPECT_FALSE(parseI64("abc", i));
    EXPECT_FALSE(parseI64("3x", i));
    EXPECT_FALSE(parseI64("99999999999999999999", i));

    double d = 0;
    EXPECT_TRUE(parseF64("2.5", d));
    EXPECT_DOUBLE_EQ(d, 2.5);
    EXPECT_FALSE(parseF64("2.5q", d));
    EXPECT_FALSE(parseF64("", d));

    // Unset -> fallback; malformed -> fatal, never a silent default.
    unsetenv("CHERIVOKE_TEST_KNOB");
    EXPECT_EQ(envI64("CHERIVOKE_TEST_KNOB", 7), 7);
    setenv("CHERIVOKE_TEST_KNOB", "abc", 1);
    EXPECT_THROW(envI64("CHERIVOKE_TEST_KNOB", 7), FatalError);
    setenv("CHERIVOKE_TEST_KNOB", "0", 1);
    EXPECT_THROW(envI64("CHERIVOKE_TEST_KNOB", 7), FatalError);
    setenv("CHERIVOKE_TEST_KNOB", "12", 1);
    EXPECT_EQ(envI64("CHERIVOKE_TEST_KNOB", 7), 12);

    setenv("CHERIVOKE_TEST_KNOB", "2,1,1", 1);
    const std::vector<double> w =
        envF64List("CHERIVOKE_TEST_KNOB");
    ASSERT_EQ(w.size(), 3u);
    EXPECT_DOUBLE_EQ(w[0], 2.0);
    setenv("CHERIVOKE_TEST_KNOB", "2,,1", 1);
    EXPECT_THROW(envF64List("CHERIVOKE_TEST_KNOB"), FatalError);
    unsetenv("CHERIVOKE_TEST_KNOB");
    EXPECT_TRUE(envF64List("CHERIVOKE_TEST_KNOB").empty());
}

TEST(EnvParsing, UnknownKnobIsFatalWithSuggestion)
{
    // A recognised knob passes validation...
    setenv("CHERIVOKE_TEST_KNOB", "1", 1);
    EXPECT_NO_THROW(validateEnvironment());
    unsetenv("CHERIVOKE_TEST_KNOB");

    // ...a typo'd one fatals and names the nearest real knob, so a
    // transposed letter can't silently run the benchmark with the
    // knob's default instead of the requested value.
    setenv("CHERIVOKE_BACKEDN", "color", 1);
    try {
        validateEnvironment();
        FAIL() << "misspelled knob was accepted";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("CHERIVOKE_BACKEDN"), std::string::npos)
            << what;
        EXPECT_NE(what.find("CHERIVOKE_BACKEND"), std::string::npos)
            << what;
    }
    unsetenv("CHERIVOKE_BACKEDN");
    EXPECT_NO_THROW(validateEnvironment());

    // Every knob the table advertises is itself accepted.
    for (const std::string &knob : knownEnvKnobs()) {
        setenv(knob.c_str(), "1", 1);
    }
    EXPECT_NO_THROW(validateEnvironment());
    for (const std::string &knob : knownEnvKnobs()) {
        unsetenv(knob.c_str());
    }
}

TEST(TenantScope, ParseAndName)
{
    tenant::RevocationScope scope;
    EXPECT_TRUE(tenant::parseScope("per-tenant", scope));
    EXPECT_EQ(scope, tenant::RevocationScope::PerTenant);
    EXPECT_TRUE(tenant::parseScope("global", scope));
    EXPECT_EQ(scope, tenant::RevocationScope::Global);
    EXPECT_FALSE(tenant::parseScope("bogus", scope));
    EXPECT_STREQ(tenant::scopeName(
                     tenant::RevocationScope::PerTenant),
                 "per-tenant");
}

/**
 * @file
 * Tests for the multi-threaded mutator front-end: the lock-free MPSC
 * remote-free queue in isolation (FIFO per producer, stub cycling,
 * multi-producer stress, teardown with batches still queued), the
 * batching sender, the thread-local allocation context (early remote
 * frees), the batched quarantine handoff, and the race engine's
 * determinism — an M-thread run's merged statistics replay
 * bit-identically, and the modelled multi-tenant statistics are
 * bit-identical between 1-thread and M-thread front-ends.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "alloc/thread_context.hh"
#include "support/logging.hh"
#include "tenant/mutator_threads.hh"
#include "tenant/remote_queue.hh"
#include "tenant/tenant_manager.hh"
#include "workload/synth.hh"

using namespace cherivoke;

namespace {

std::unique_ptr<tenant::FreeBatch>
makeBatch(unsigned producer, std::initializer_list<uint64_t> ids)
{
    auto b = std::make_unique<tenant::FreeBatch>(producer,
                                                 ids.size());
    for (uint64_t id : ids)
        b->entries.push_back(tenant::RemoteFree{id, 64});
    return b;
}

/** A small alloc/free-heavy trace (~20k ops). */
workload::Trace
smallTrace(uint64_t seed)
{
    workload::BenchmarkProfile profile =
        workload::profileFor("dealII");
    workload::SynthConfig cfg;
    cfg.scale = 1.0 / 512;
    cfg.durationSec = 2.0;
    cfg.seed = seed;
    return workload::synthesize(profile, cfg);
}

/** Tenant tuned so smallTrace triggers several sweeps. */
tenant::TenantConfig
smallTenant(const std::string &name)
{
    tenant::TenantConfig cfg;
    cfg.name = name;
    cfg.alloc.quarantineFraction = 0.05;
    cfg.alloc.minQuarantineBytes = 16 * KiB;
    cfg.alloc.dl.initialHeapBytes = 256 * KiB;
    cfg.alloc.dl.growthChunkBytes = 128 * KiB;
    return cfg;
}

} // namespace

// ---- RemoteFreeQueue --------------------------------------------

TEST(RemoteFreeQueue, FifoSingleProducer)
{
    tenant::RemoteFreeQueue q;
    EXPECT_TRUE(q.drained());
    EXPECT_EQ(q.tryDequeue(), nullptr);

    q.enqueue(makeBatch(0, {1, 2}));
    q.enqueue(makeBatch(0, {3}));
    q.enqueue(makeBatch(0, {4, 5, 6}));
    EXPECT_EQ(q.enqueuedBatches(), 3u);
    EXPECT_FALSE(q.drained());

    auto a = q.tryDequeue();
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->entries.size(), 2u);
    EXPECT_EQ(a->entries[0].id, 1u);
    auto b = q.tryDequeue();
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->entries[0].id, 3u);
    auto c = q.tryDequeue();
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->entries[2].id, 6u);
    EXPECT_EQ(q.tryDequeue(), nullptr);
    EXPECT_EQ(q.dequeuedBatches(), 3u);
    EXPECT_TRUE(q.drained());
}

TEST(RemoteFreeQueue, StubCyclesThroughRepeatedDrains)
{
    // Alternate enqueue/drain so the stub node is recycled through
    // the chain many times (the subtle branch of the MPSC design).
    tenant::RemoteFreeQueue q;
    for (uint64_t round = 0; round < 100; ++round) {
        q.enqueue(makeBatch(0, {round}));
        auto b = q.tryDequeue();
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(b->entries[0].id, round);
        EXPECT_EQ(q.tryDequeue(), nullptr);
        EXPECT_TRUE(q.drained());
    }
}

TEST(RemoteFreeQueue, MultiProducerStressConservesEverything)
{
    constexpr unsigned kProducers = 4;
    constexpr uint64_t kBatchesEach = 500;
    tenant::RemoteFreeQueue q;

    std::vector<std::thread> producers;
    for (unsigned p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (uint64_t s = 0; s < kBatchesEach; ++s) {
                auto b = std::make_unique<tenant::FreeBatch>(p, 2);
                b->seq = s;
                b->entries.push_back(
                    tenant::RemoteFree{p * kBatchesEach + s, 16});
                q.enqueue(std::move(b));
            }
        });
    }

    // Consume concurrently with production; tolerate the transient
    // nullptrs a mid-publish producer causes.
    uint64_t got = 0;
    std::vector<uint64_t> next_seq(kProducers, 0);
    while (got < kProducers * kBatchesEach) {
        auto b = q.tryDequeue();
        if (!b)
            continue;
        ASSERT_LT(b->producer, kProducers);
        // Per-producer batches arrive in send order.
        EXPECT_EQ(b->seq, next_seq[b->producer]);
        ++next_seq[b->producer];
        ++got;
    }
    for (auto &t : producers)
        t.join();
    EXPECT_EQ(q.tryDequeue(), nullptr);
    EXPECT_TRUE(q.drained());
    EXPECT_EQ(q.enqueuedBatches(), kProducers * kBatchesEach);
}

TEST(RemoteFreeQueue, TeardownWithQueuedBatches)
{
    // Batches still queued at destruction are owned and deleted by
    // the queue (the sanitizer CI legs make leaks/races fatal).
    auto q = std::make_unique<tenant::RemoteFreeQueue>();
    q->enqueue(makeBatch(0, {1, 2, 3}));
    q->enqueue(makeBatch(1, {4}));
    auto first = q->tryDequeue();
    ASSERT_NE(first, nullptr);
    q.reset(); // one batch still queued
}

// ---- RemoteSender -----------------------------------------------

TEST(RemoteSender, FlushesExactlyAtBatchCapacity)
{
    tenant::RemoteFreeQueue q;
    tenant::RemoteSender sender(2, q, 4);
    for (uint64_t i = 0; i < 10; ++i)
        sender.send(tenant::RemoteFree{i, 32});

    // 10 sends at capacity 4: two full batches published, 2 pending.
    EXPECT_EQ(sender.sentBatches(), 2u);
    EXPECT_EQ(sender.sentEntries(), 8u);
    EXPECT_EQ(sender.pendingEntries(), 2u);

    sender.flush();
    EXPECT_EQ(sender.sentBatches(), 3u);
    EXPECT_EQ(sender.sentEntries(), 10u);
    EXPECT_EQ(sender.pendingEntries(), 0u);
    sender.flush(); // no-op
    EXPECT_EQ(sender.sentBatches(), 3u);

    uint64_t seq = 0, id = 0;
    while (auto b = q.tryDequeue()) {
        EXPECT_EQ(b->producer, 2u);
        EXPECT_EQ(b->seq, seq++);
        for (const tenant::RemoteFree &f : b->entries)
            EXPECT_EQ(f.id, id++);
    }
    EXPECT_EQ(seq, 3u);
    EXPECT_EQ(id, 10u);
}

// ---- ThreadAllocContext -----------------------------------------

TEST(ThreadAllocContext, LocalLifecycle)
{
    alloc::ThreadAllocContext ctx(0);
    ctx.noteMalloc(7, 128);
    EXPECT_EQ(ctx.ownedLiveCount(), 1u);
    EXPECT_EQ(ctx.ownedLiveBytes(), 128u);
    EXPECT_TRUE(ctx.ownsLive(7));
    ctx.noteLocalFree(7);
    EXPECT_EQ(ctx.ownedLiveCount(), 0u);
    EXPECT_EQ(ctx.quarantinedChunks(), 1u);
    EXPECT_EQ(ctx.quarantinedBytes(), 128u);
    EXPECT_THROW(ctx.noteLocalFree(7), PanicError);
}

TEST(ThreadAllocContext, EarlyRemoteFreeParksUntilMalloc)
{
    alloc::ThreadAllocContext ctx(1);
    // The message overtook the malloc in wall-clock time.
    ctx.noteRemoteFree(9, 64);
    EXPECT_EQ(ctx.earlyFreeCount(), 1u);
    EXPECT_EQ(ctx.quarantinedChunks(), 0u);
    EXPECT_THROW(ctx.noteRemoteFree(9, 64), PanicError);

    ctx.noteMalloc(9, 64);
    // The allocation died at birth: quarantined, never live.
    EXPECT_EQ(ctx.earlyFreeCount(), 0u);
    EXPECT_EQ(ctx.ownedLiveCount(), 0u);
    EXPECT_EQ(ctx.quarantinedChunks(), 1u);
    EXPECT_EQ(ctx.quarantinedBytes(), 64u);
}

TEST(ThreadAllocContext, RemoteFreeOfLiveChunkApplies)
{
    alloc::ThreadAllocContext ctx(0);
    ctx.noteMalloc(3, 256);
    ctx.noteRemoteFree(3, 256);
    EXPECT_EQ(ctx.ownedLiveBytes(), 0u);
    EXPECT_EQ(ctx.remoteFreesApplied(), 1u);
    EXPECT_EQ(ctx.quarantinedBytes(), 256u);
}

// ---- Batched quarantine handoff ---------------------------------

TEST(QuarantineBatch, AddBatchMatchesSequentialAdds)
{
    // Two identical heaps: one quarantines chunk by chunk, the other
    // hands the same chunks over as one drained batch.
    mem::AddressSpace space_a, space_b;
    alloc::DlAllocator dl_a(space_a), dl_b(space_b);
    alloc::Quarantine seq, batched;

    std::vector<cap::Capability> caps_a, caps_b;
    for (int i = 0; i < 8; ++i) {
        caps_a.push_back(dl_a.malloc(64 + 16 * i));
        caps_b.push_back(dl_b.malloc(64 + 16 * i));
    }
    // Free alternating chunks then their neighbours: exercises both
    // merge directions inside one batch.
    std::vector<alloc::QuarantineRun> chunks;
    unsigned merged_seq = 0;
    for (int idx : {0, 2, 4, 6, 1, 3, 5}) {
        const auto qa = dl_a.quarantineFree(caps_a[idx]);
        merged_seq += seq.add(dl_a, qa.addr, qa.size);
        const auto qb = dl_b.quarantineFree(caps_b[idx]);
        chunks.push_back(alloc::QuarantineRun{qb.addr, qb.size});
    }
    alloc::ThreadAllocContext ctx(0);
    const unsigned merged_batch =
        ctx.handoffToQuarantine(dl_b, batched, chunks);

    EXPECT_EQ(merged_batch, merged_seq);
    EXPECT_EQ(batched.runCount(), seq.runCount());
    EXPECT_EQ(batched.merges(), seq.merges());
    EXPECT_EQ(batched.totalBytes(), seq.totalBytes());
    EXPECT_EQ(ctx.quarantinedChunks(), chunks.size());
    const auto &runs_a = seq.orderedRuns();
    const auto &runs_b = batched.orderedRuns();
    ASSERT_EQ(runs_a.size(), runs_b.size());
    for (size_t i = 0; i < runs_a.size(); ++i) {
        EXPECT_EQ(runs_a[i].addr, runs_b[i].addr);
        EXPECT_EQ(runs_a[i].size, runs_b[i].size);
    }
}

// ---- Race planning ----------------------------------------------

TEST(MutatorPlan, DeterministicPartitionAndEffectiveness)
{
    workload::Trace trace;
    auto push = [&trace](workload::OpKind kind, uint64_t id,
                         uint64_t size = 0) {
        workload::TraceOp op;
        op.kind = kind;
        op.id = id;
        op.size = size;
        trace.ops.push_back(op);
    };
    using workload::OpKind;
    push(OpKind::Malloc, 0, 32); // owner 0
    push(OpKind::Malloc, 1, 48); // owner 1
    push(OpKind::Malloc, 2, 64); // owner 2
    push(OpKind::Free, 1);       // op 3: executor 0, owner 1: remote
    push(OpKind::Free, 1);       // op 4: dead id — ineffective
    push(OpKind::Malloc, 0, 16); // op 5: id 0 live — ineffective
    push(OpKind::Free, 0);       // op 6: executor 0 == owner: local

    tenant::MutatorConfig cfg;
    cfg.threads = 3;
    const tenant::RacePlan plan =
        tenant::planMutatorRace(trace, SIZE_MAX, cfg, {3, 3, 7});

    EXPECT_EQ(plan.opsPlanned, 7u);
    EXPECT_EQ(plan.effectiveMallocs, 3u);
    EXPECT_EQ(plan.effectiveFrees, 2u);
    EXPECT_EQ(plan.remoteFrees, 1u);
    // The duplicate boundary at op 3 collapses to one mark.
    EXPECT_EQ(plan.epochMarks, 2u);
    for (unsigned t = 0; t < 3; ++t) {
        uint64_t marks = 0;
        for (const tenant::RaceItem &item : plan.perThread[t])
            if (item.kind == tenant::RaceItem::Kind::EpochMark)
                ++marks;
        EXPECT_EQ(marks, 2u) << "thread " << t;
    }
    // Plans are pure functions of their inputs.
    const tenant::RacePlan again =
        tenant::planMutatorRace(trace, SIZE_MAX, cfg, {3, 3, 7});
    EXPECT_EQ(again.perThread[0].size(), plan.perThread[0].size());
    EXPECT_EQ(tenant::runMutatorRace(plan).fingerprint(),
              tenant::runMutatorRace(again).fingerprint());
}

// ---- The race ---------------------------------------------------

TEST(MutatorRace, FourThreadRunReplaysBitIdentically)
{
    const workload::Trace trace = smallTrace(7);
    tenant::MutatorConfig cfg;
    cfg.threads = 4;
    cfg.remoteBatch = 8;
    const std::vector<uint64_t> epochs = {1000, 5000, 12000};

    const tenant::MutatorRaceResult first =
        tenant::runMutatorRace(trace, SIZE_MAX, cfg, epochs);
    const tenant::MutatorRaceResult second =
        tenant::runMutatorRace(trace, SIZE_MAX, cfg, epochs);

    EXPECT_GT(first.remoteFrees, 0u);
    EXPECT_GT(first.batches, 0u);
    EXPECT_EQ(first.epochBarriers, 3u);
    EXPECT_EQ(first.fingerprint(), second.fingerprint())
        << "merged race statistics must be deterministic";
    ASSERT_EQ(first.perThread.size(), 4u);
    for (unsigned t = 0; t < 4; ++t) {
        EXPECT_EQ(first.perThread[t].ownedLiveBytesAtEpoch,
                  second.perThread[t].ownedLiveBytesAtEpoch);
    }
}

TEST(MutatorRace, ThreadCountPreservesEffectiveTotals)
{
    const workload::Trace trace = smallTrace(11);
    tenant::MutatorConfig one, four;
    four.threads = 4;
    const auto r1 = tenant::runMutatorRace(trace, SIZE_MAX, one);
    const auto r4 = tenant::runMutatorRace(trace, SIZE_MAX, four);

    // The modelled allocator work is invariant in the fan-out; only
    // its local/remote split changes.
    EXPECT_EQ(r1.opsExecuted, r4.opsExecuted);
    EXPECT_EQ(r1.effectiveMallocs, r4.effectiveMallocs);
    EXPECT_EQ(r1.effectiveFrees, r4.effectiveFrees);
    EXPECT_EQ(r1.quarantinedBytes, r4.quarantinedBytes);
    EXPECT_EQ(r1.remoteFrees, 0u);
    EXPECT_EQ(r1.batches, 0u);
    EXPECT_GT(r4.remoteFrees, 0u);
    EXPECT_EQ(r4.localFrees + r4.remoteFrees, r1.localFrees);
}

TEST(MutatorRace, SingleEntryBatchesStressTeardown)
{
    const workload::Trace trace = smallTrace(3);
    tenant::MutatorConfig cfg;
    cfg.threads = 3;
    cfg.remoteBatch = 1; // every remote free is its own message
    const auto r = tenant::runMutatorRace(trace, 4000, cfg);
    EXPECT_EQ(r.batches, r.remoteFrees);
}

TEST(MutatorRace, RejectsZeroConfig)
{
    workload::Trace trace;
    tenant::MutatorConfig cfg;
    cfg.threads = 0;
    EXPECT_THROW(tenant::planMutatorRace(trace, 0, cfg), FatalError);
    cfg.threads = 1;
    cfg.remoteBatch = 0;
    EXPECT_THROW(tenant::planMutatorRace(trace, 0, cfg), FatalError);
}

// ---- Full pipeline: modelled statistics are thread-invariant ----

namespace {

tenant::MultiTenantResult
runTenants(unsigned mutator_threads)
{
    tenant::TenantManagerConfig cfg;
    cfg.mutator.threads = mutator_threads;
    cfg.mutator.remoteBatch = 4;
    tenant::TenantManager mgr(cfg);
    mgr.addTenant(smallTenant("a"), smallTrace(21));
    mgr.addTenant(smallTenant("b"), smallTrace(22));
    return mgr.run();
}

} // namespace

TEST(MutatorTenantParity, ModelledStatsBitIdenticalAcrossThreads)
{
    const tenant::MultiTenantResult serial = runTenants(1);
    const tenant::MultiTenantResult threaded = runTenants(3);

    // Every modelled statistic must be bit-identical: the race only
    // adds the message-passing layer, it never feeds the model.
    EXPECT_EQ(serial.totalOps, threaded.totalOps);
    EXPECT_EQ(serial.allocCalls, threaded.allocCalls);
    EXPECT_EQ(serial.freeCalls, threaded.freeCalls);
    EXPECT_EQ(serial.freedBytes, threaded.freedBytes);
    EXPECT_EQ(serial.ptrStores, threaded.ptrStores);
    EXPECT_EQ(serial.peakAggLiveAllocs, threaded.peakAggLiveAllocs);
    EXPECT_EQ(serial.peakAggLiveBytes, threaded.peakAggLiveBytes);
    EXPECT_EQ(serial.peakAggQuarantineBytes,
              threaded.peakAggQuarantineBytes);
    EXPECT_EQ(serial.engine.epochs, threaded.engine.epochs);
    EXPECT_EQ(serial.engine.sweep.capsRevoked,
              threaded.engine.sweep.capsRevoked);
    EXPECT_EQ(serial.engine.sweep.pagesSwept,
              threaded.engine.sweep.pagesSwept);
    ASSERT_EQ(serial.tenants.size(), threaded.tenants.size());
    for (size_t i = 0; i < serial.tenants.size(); ++i) {
        const auto &a = serial.tenants[i];
        const auto &b = threaded.tenants[i];
        EXPECT_EQ(a.run.allocCalls, b.run.allocCalls);
        EXPECT_EQ(a.run.peakLiveBytes, b.run.peakLiveBytes);
        EXPECT_EQ(a.run.revoker.epochs, b.run.revoker.epochs);
        // Both front-ends hit the same epoch boundaries...
        EXPECT_EQ(a.mutator.epochBarriers, b.mutator.epochBarriers);
        EXPECT_EQ(a.mutator.effectiveFrees, b.mutator.effectiveFrees);
        // ...but only the threaded one has remote traffic.
        EXPECT_EQ(a.mutator.remoteFrees, 0u);
    }
    EXPECT_GT(threaded.mutatorRemoteFrees, 0u);
    EXPECT_GT(threaded.mutatorEpochBarriers, 0u);
    EXPECT_EQ(serial.mutatorLocalFrees,
              threaded.mutatorLocalFrees + threaded.mutatorRemoteFrees);

    // And the threaded race itself is reproducible end to end.
    const tenant::MultiTenantResult threaded2 = runTenants(3);
    EXPECT_EQ(threaded.mutatorFingerprint,
              threaded2.mutatorFingerprint);
}

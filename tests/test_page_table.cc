/**
 * @file
 * Unit tests for the page table and PTE CapDirty semantics (§3.4.2).
 */

#include <gtest/gtest.h>

#include "mem/page_table.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace mem {
namespace {

TEST(PageTable, MapAndLookup)
{
    PageTable pt;
    pt.map(0x10000, 4 * kPageBytes, ProtRead | ProtWrite);
    EXPECT_TRUE(pt.isMapped(0x10000));
    EXPECT_TRUE(pt.isMapped(0x10000 + 4 * kPageBytes - 1));
    EXPECT_FALSE(pt.isMapped(0x10000 + 4 * kPageBytes));
    EXPECT_FALSE(pt.isMapped(0xffff));
    EXPECT_EQ(pt.pageCount(), 4u);
}

TEST(PageTable, UnmapRemovesEntries)
{
    PageTable pt;
    pt.map(0x10000, 4 * kPageBytes, ProtRead);
    pt.unmap(0x10000 + kPageBytes, 2 * kPageBytes);
    EXPECT_TRUE(pt.isMapped(0x10000));
    EXPECT_FALSE(pt.isMapped(0x10000 + kPageBytes));
    EXPECT_FALSE(pt.isMapped(0x10000 + 2 * kPageBytes));
    EXPECT_TRUE(pt.isMapped(0x10000 + 3 * kPageBytes));
}

TEST(PageTable, MisalignedMapPanics)
{
    PageTable pt;
    EXPECT_THROW(pt.map(0x10008, kPageBytes, ProtRead), PanicError);
    EXPECT_THROW(pt.map(0x10000, 100, ProtRead), PanicError);
}

TEST(PageTable, CapDirtyTrapOnlyOnFirstTransition)
{
    PageTable pt;
    pt.map(0x20000, kPageBytes, ProtRead | ProtWrite);
    EXPECT_FALSE(pt.lookup(0x20000)->capDirty);
    EXPECT_TRUE(pt.setCapDirty(0x20100)) << "first set is a trap";
    EXPECT_FALSE(pt.setCapDirty(0x20200)) << "second set is silent";
    EXPECT_TRUE(pt.lookup(0x20000)->capDirty);
}

TEST(PageTable, ClearCapDirtyResets)
{
    PageTable pt;
    pt.map(0x20000, kPageBytes, ProtRead | ProtWrite);
    pt.setCapDirty(0x20000);
    pt.clearCapDirty(0x20000);
    EXPECT_FALSE(pt.lookup(0x20000)->capDirty);
    EXPECT_TRUE(pt.setCapDirty(0x20000)) << "trap fires again";
}

TEST(PageTable, CapDirtyPagesSortedAndFiltered)
{
    PageTable pt;
    pt.map(0x30000, 8 * kPageBytes, ProtRead | ProtWrite);
    pt.setCapDirty(0x30000 + 5 * kPageBytes);
    pt.setCapDirty(0x30000 + 1 * kPageBytes);
    const auto pages = pt.capDirtyPages();
    ASSERT_EQ(pages.size(), 2u);
    EXPECT_EQ(pages[0], 0x30000 + 1 * kPageBytes);
    EXPECT_EQ(pages[1], 0x30000 + 5 * kPageBytes);
    EXPECT_EQ(pt.capDirtyCount(), 2u);
}

TEST(PageTable, MappedPagesEnumeration)
{
    PageTable pt;
    pt.map(0x40000, 2 * kPageBytes, ProtRead);
    pt.map(0x80000, kPageBytes, ProtRead);
    const auto pages = pt.mappedPages();
    ASSERT_EQ(pages.size(), 3u);
    EXPECT_EQ(pages[0], 0x40000u);
    EXPECT_EQ(pages[2], 0x80000u);
}

TEST(PageTable, CapStoreInhibitFlagPreserved)
{
    PageTable pt;
    pt.map(0x50000, kPageBytes, ProtRead | ProtWrite,
           /*cap_store_inhibit=*/true);
    EXPECT_TRUE(pt.lookup(0x50000)->capStoreInhibit);
}

TEST(PageTable, RemapUpdatesProtection)
{
    PageTable pt;
    pt.map(0x60000, kPageBytes, ProtRead);
    pt.map(0x60000, kPageBytes, ProtRead | ProtWrite);
    EXPECT_EQ(pt.lookup(0x60000)->prot, ProtRead | ProtWrite);
}

} // namespace
} // namespace mem
} // namespace cherivoke

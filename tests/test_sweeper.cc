/**
 * @file
 * Correctness tests for the revocation sweep — the paper's central
 * guarantee (§4.2): after a sweep, no reachable capability anywhere
 * (heap, stack, globals, registers) references quarantined memory,
 * while every capability to live memory is untouched; and the
 * hardware work-elimination options never change the outcome.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "revoke/analytical_model.hh"
#include "revoke/revocation_engine.hh"
#include "revoke/sweeper.hh"
#include "support/rng.hh"

namespace cherivoke {
namespace revoke {
namespace {

using alloc::CherivokeAllocator;
using alloc::CherivokeConfig;
using cap::Capability;

CherivokeConfig
smallConfig()
{
    CherivokeConfig cfg;
    cfg.quarantineFraction = 0.25;
    cfg.minQuarantineBytes = 64;
    return cfg;
}

class SweeperTest : public ::testing::Test
{
  protected:
    SweeperTest() : alloc(space, smallConfig()) {}

    /** Allocate and store the capability into globals for later
     *  retrieval; returns the heap capability. */
    Capability
    allocStoredAt(uint64_t slot, uint64_t size)
    {
        const Capability c = alloc.malloc(size);
        space.memory().writeCap(mem::kGlobalsBase + slot * 16, c);
        return c;
    }

    Capability
    loadSlot(uint64_t slot)
    {
        return space.memory().readCap(mem::kGlobalsBase + slot * 16);
    }

    SweepStats
    runSweep(SweepOptions opts = SweepOptions{})
    {
        alloc.prepareSweep();
        Sweeper sweeper(opts);
        const SweepStats stats =
            sweeper.sweep(space, alloc.shadowMap());
        alloc.finishSweep();
        return stats;
    }

    mem::AddressSpace space;
    CherivokeAllocator alloc;
};

TEST_F(SweeperTest, DanglingHeapReferenceRevoked)
{
    const Capability a = allocStoredAt(0, 64);
    alloc.free(a);
    const SweepStats stats = runSweep();
    EXPECT_EQ(stats.capsRevoked, 1u);
    EXPECT_FALSE(loadSlot(0).tag()) << "dangling cap must lose tag";
}

TEST_F(SweeperTest, LiveReferencesSurvive)
{
    const Capability keep = allocStoredAt(0, 64);
    const Capability gone = allocStoredAt(1, 64);
    alloc.free(gone);
    runSweep();
    EXPECT_TRUE(loadSlot(0).tag()) << "live cap must keep its tag";
    EXPECT_FALSE(loadSlot(1).tag());
    EXPECT_EQ(loadSlot(0), keep);
}

TEST_F(SweeperTest, AllCopiesRevoked)
{
    // Many copies of the same dangling pointer across segments.
    const Capability a = alloc.malloc(64);
    auto &memory = space.memory();
    memory.writeCap(mem::kGlobalsBase, a);
    memory.writeCap(mem::kGlobalsBase + 4096, a);
    memory.writeCap(mem::kStackBase + 128, a);
    const Capability holder = alloc.malloc(256);
    memory.storeCap(holder, holder.base() + 16, a);
    alloc.free(a);
    const SweepStats stats = runSweep();
    EXPECT_EQ(stats.capsRevoked, 4u);
    EXPECT_FALSE(memory.readCap(mem::kGlobalsBase).tag());
    EXPECT_FALSE(memory.readCap(mem::kGlobalsBase + 4096).tag());
    EXPECT_FALSE(memory.readCap(mem::kStackBase + 128).tag());
    EXPECT_FALSE(memory.readCap(holder.base() + 16).tag());
}

TEST_F(SweeperTest, DerivedAndInteriorCapsRevoked)
{
    // Interior pointer: base within the freed allocation (§3.2 fn 2).
    const Capability a = alloc.malloc(256);
    const Capability interior =
        a.setAddress(a.base() + 64).setBounds(32);
    space.memory().writeCap(mem::kGlobalsBase, interior);
    // Out-of-bounds wandered address, base still inside.
    const Capability wandered = a.incAddress(300);
    ASSERT_TRUE(wandered.tag());
    space.memory().writeCap(mem::kGlobalsBase + 16, wandered);
    alloc.free(a);
    runSweep();
    EXPECT_FALSE(space.memory().readCap(mem::kGlobalsBase).tag());
    EXPECT_FALSE(space.memory().readCap(mem::kGlobalsBase + 16).tag());
}

TEST_F(SweeperTest, RegisterFileSwept)
{
    const Capability a = alloc.malloc(64);
    space.registers().reg(7) = a;
    space.registers().reg(8) = alloc.malloc(64); // live
    alloc.free(a);
    const SweepStats stats = runSweep();
    EXPECT_EQ(stats.regsRevoked, 1u);
    EXPECT_FALSE(space.registers().reg(7).tag());
    EXPECT_TRUE(space.registers().reg(8).tag());
}

TEST_F(SweeperTest, OnePastEndCapOfPreviousObjectSurvives)
{
    // A zero-length capability at one-past-the-end of a live object
    // has its base in the next chunk's header granule; painting must
    // not revoke it (payload-only painting).
    const Capability a = alloc.malloc(48);
    const Capability b = alloc.malloc(48);
    const Capability one_past =
        a.setAddress(static_cast<uint64_t>(a.top())).setBounds(0);
    ASSERT_TRUE(one_past.tag());
    space.memory().writeCap(mem::kGlobalsBase, one_past);
    alloc.free(b); // the *next* allocation is freed
    runSweep();
    EXPECT_TRUE(space.memory().readCap(mem::kGlobalsBase).tag())
        << "live one-past-end cap must survive neighbour's free";
}

TEST_F(SweeperTest, PteCapDirtySkipsCleanPages)
{
    const Capability a = allocStoredAt(0, 64);
    alloc.free(a);
    SweepOptions with;
    with.usePteCapDirty = true;
    with.useCloadTags = false;
    const SweepStats s1 = runSweep(with);
    EXPECT_GT(s1.pagesSkippedPte, 0u);
    EXPECT_LT(s1.pagesSwept, s1.pagesConsidered);
}

TEST_F(SweeperTest, EliminationOptionsDoNotChangeOutcome)
{
    // Build identical states in four allocators is awkward; instead
    // verify on one state: revocation results must be identical for
    // all four option combinations applied to disjoint dangling sets.
    auto run_combo = [&](bool pte, bool tags) {
        mem::AddressSpace sp;
        CherivokeAllocator al(sp, smallConfig());
        Rng rng(99);
        std::vector<Capability> live;
        std::vector<uint64_t> dangling_slots;
        uint64_t slot = 0;
        for (int i = 0; i < 200; ++i) {
            const Capability c = al.malloc(rng.nextLogUniform(16, 512));
            sp.memory().writeCap(mem::kGlobalsBase + slot * 16, c);
            if (rng.nextBool(0.4)) {
                al.free(c);
                dangling_slots.push_back(slot);
            } else {
                live.push_back(c);
            }
            ++slot;
        }
        al.prepareSweep();
        SweepOptions opts;
        opts.usePteCapDirty = pte;
        opts.useCloadTags = tags;
        Sweeper sweeper(opts);
        sweeper.sweep(sp, al.shadowMap());
        al.finishSweep();
        // Collect final tag states of all slots.
        std::vector<bool> result;
        for (uint64_t s = 0; s < slot; ++s)
            result.push_back(
                sp.memory().readCap(mem::kGlobalsBase + s * 16).tag());
        return result;
    };

    const auto baseline = run_combo(false, false);
    EXPECT_EQ(run_combo(true, false), baseline);
    EXPECT_EQ(run_combo(false, true), baseline);
    EXPECT_EQ(run_combo(true, true), baseline);
}

TEST_F(SweeperTest, CloadTagsSkipsPointerFreeLines)
{
    // Fill a large allocation with plain data (no capabilities).
    const Capability big = alloc.malloc(64 * KiB);
    auto &memory = space.memory();
    for (uint64_t off = 0; off < 64 * KiB; off += 8)
        memory.storeU64(big, big.base() + off, off);
    const Capability a = allocStoredAt(0, 64);
    alloc.free(a);

    SweepOptions with;
    with.useCloadTags = true;
    with.usePteCapDirty = false;
    const SweepStats s = runSweep(with);
    EXPECT_GT(s.linesSkippedTags, (64 * KiB) / kLineBytes / 2)
        << "pointer-free lines must be skipped via CLoadTags";
}

TEST_F(SweeperTest, FalsePositiveCapDirtyPageCleaned)
{
    // Store a capability then overwrite it with data: the page stays
    // CapDirty but holds no tags. The next sweep should clean it.
    const Capability a = alloc.malloc(64);
    auto &memory = space.memory();
    memory.writeCap(mem::kGlobalsBase + 2 * kPageBytes, a);
    memory.writeU64(mem::kGlobalsBase + 2 * kPageBytes, 0);
    ASSERT_TRUE(memory.pageTable()
                    .lookup(mem::kGlobalsBase + 2 * kPageBytes)
                    ->capDirty);
    const Capability dangler = allocStoredAt(0, 64);
    alloc.free(dangler);
    const SweepStats s = runSweep();
    EXPECT_GT(s.pagesCleaned, 0u);
    EXPECT_FALSE(memory.pageTable()
                     .lookup(mem::kGlobalsBase + 2 * kPageBytes)
                     ->capDirty);
}

TEST_F(SweeperTest, SweepWithHierarchyAccountsTraffic)
{
    for (int i = 0; i < 100; ++i)
        allocStoredAt(static_cast<uint64_t>(i), 128);
    for (uint64_t s = 0; s < 100; s += 2)
        alloc.free(loadSlot(s));
    cache::Hierarchy hier;
    alloc.prepareSweep();
    Sweeper sweeper;
    sweeper.sweep(space, alloc.shadowMap(), &hier);
    alloc.finishSweep();
    EXPECT_GT(hier.dram().readBytes(), 0u);
    EXPECT_GT(hier.offCoreLines(), 0u);
}

TEST_F(SweeperTest, ParallelSweepMatchesSerial)
{
    Rng rng(4242);
    std::vector<uint64_t> slots;
    for (int i = 0; i < 400; ++i) {
        const Capability c =
            allocStoredAt(static_cast<uint64_t>(i),
                          rng.nextLogUniform(16, 2048));
        if (rng.nextBool(0.5)) {
            alloc.free(c);
            slots.push_back(static_cast<uint64_t>(i));
        }
    }
    alloc.prepareSweep();

    // Serial reference on a snapshot is impractical; instead sweep in
    // parallel and verify the semantic postcondition directly.
    SweepOptions opts;
    opts.threads = 4;
    Sweeper sweeper(opts);
    sweeper.sweep(space, alloc.shadowMap());

    for (uint64_t s = 0; s < 400; ++s) {
        const Capability c = loadSlot(s);
        const bool dangling =
            std::find(slots.begin(), slots.end(), s) != slots.end();
        EXPECT_EQ(c.tag(), !dangling) << "slot " << s;
    }
    alloc.finishSweep();
}

TEST_F(SweeperTest, EngineRunsEpochsAutomatically)
{
    RevocationEngine revoker(alloc, space);
    std::vector<Capability> caps;
    for (int i = 0; i < 64; ++i)
        caps.push_back(alloc.malloc(1024));
    for (auto &c : caps) {
        alloc.free(c);
        revoker.maybeRevoke();
    }
    EXPECT_GT(revoker.totals().epochs, 0u);
    EXPECT_GT(revoker.totals().bytesReleased, 0u);
    alloc.dl().validateHeap();
}

TEST_F(SweeperTest, UseAfterReallocationAttackDefeated)
{
    // The figure 1 scenario, end to end: victim object freed, memory
    // reallocated to attacker data; the stale pointer must trap.
    auto &memory = space.memory();
    RevocationEngine revoker(alloc, space);

    Capability victim = alloc.malloc(64);
    memory.storeU64(victim, victim.base(), 0x600df00d); // "vtable"
    memory.writeCap(mem::kGlobalsBase, victim);         // stale copy

    alloc.free(victim);
    // Force a sweep before reallocation (the allocator guarantees
    // quarantined space is not reissued before this).
    revoker.revokeNow();

    // Attacker reallocates and fills with a malicious pointer value.
    Capability attacker = alloc.malloc(64);
    ASSERT_EQ(attacker.base(), victim.base())
        << "attacker should obtain the recycled memory";
    memory.storeU64(attacker, attacker.base(), 0xbadc0de);

    // The stale pointer is now untagged: any use traps.
    const Capability stale = memory.readCap(mem::kGlobalsBase);
    EXPECT_FALSE(stale.tag());
    EXPECT_THROW((void)memory.loadU64(stale, stale.address()),
                 cap::CapFault);
}

/** Randomised multi-epoch safety property (the §4.2 guarantee). */
class SweepSafetyProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SweepSafetyProperty, NoReachableDanglingCapAfterSweep)
{
    mem::AddressSpace space;
    CherivokeConfig cfg;
    cfg.quarantineFraction = 0.25;
    cfg.minQuarantineBytes = 4 * KiB;
    CherivokeAllocator alloc(space, cfg);
    RevocationEngine revoker(alloc, space);
    auto &memory = space.memory();
    Rng rng(GetParam());

    // Object graph: allocations store capabilities to each other.
    std::map<uint64_t, Capability> live; // by base
    std::vector<std::pair<uint64_t, uint64_t>> freed_ranges;

    for (int op = 0; op < 1500; ++op) {
        const double r = rng.nextDouble();
        if (r < 0.5 || live.empty()) {
            const Capability c =
                alloc.malloc(rng.nextLogUniform(32, 4096));
            // Link a random live object to the new one and vice versa.
            if (!live.empty()) {
                auto it = live.begin();
                std::advance(it, rng.nextBounded(live.size()));
                memory.storeCap(it->second, it->second.base(), c);
                memory.storeCap(c, c.base(), it->second);
            }
            // Also stash copies in stack/globals/registers sometimes.
            if (rng.nextBool(0.3)) {
                memory.writeCap(mem::kStackBase +
                                    rng.nextBounded(512) * 16, c);
            }
            if (rng.nextBool(0.2)) {
                memory.writeCap(mem::kGlobalsBase +
                                    rng.nextBounded(512) * 16, c);
            }
            if (rng.nextBool(0.1))
                space.registers().reg(rng.nextBounded(32)) = c;
            live.emplace(c.base(), c);
        } else {
            auto it = live.begin();
            std::advance(it, rng.nextBounded(live.size()));
            freed_ranges.emplace_back(
                it->second.base(),
                static_cast<uint64_t>(it->second.top()));
            alloc.free(it->second);
            live.erase(it);
        }

        if (revoker.maybeRevoke()) {
            // INVARIANT: no tagged capability anywhere has its base
            // in memory that was freed and has now been released.
            auto check = [&](const Capability &c, const char *where) {
                if (!c.tag())
                    return;
                for (const auto &[lo, hi] : freed_ranges) {
                    EXPECT_FALSE(c.base() >= lo && c.base() < hi)
                        << "dangling cap survived sweep in " << where;
                }
            };
            for (uint64_t s = 0; s < 512; ++s) {
                check(memory.readCap(mem::kStackBase + s * 16),
                      "stack");
                check(memory.readCap(mem::kGlobalsBase + s * 16),
                      "globals");
            }
            space.registers().forEach([&](Capability &c) {
                check(c, "registers");
            });
            for (const auto &[base, c] : live) {
                const Capability stored =
                    memory.readCap(c.base());
                check(stored, "heap object slot");
                // Live objects themselves must still be reachable.
                EXPECT_TRUE(c.tag());
            }
            freed_ranges.clear();
        }
    }
    alloc.dl().validateHeap();
    EXPECT_GT(revoker.totals().epochs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepSafetyProperty,
                         ::testing::Values(7, 77, 777, 7777));

TEST(AnalyticalModel, MatchesPaperExample)
{
    // A workload freeing 371 MiB/s with 86% pointer density swept at
    // 8 GiB/s with a 25% quarantine: overhead ≈ 0.156 — the right
    // order for xalancbmk's sweeping component.
    OverheadParams p;
    p.freeRateBytesPerSec = 371.0 * MiB;
    p.pointerDensity = 0.86;
    p.scanRateBytesPerSec = 8.0 * GiB;
    p.quarantineFraction = 0.25;
    const double overhead = predictedRuntimeOverhead(p);
    EXPECT_NEAR(overhead, 0.156, 0.01);
}

TEST(AnalyticalModel, LinearInFreeRateAndDensity)
{
    OverheadParams p;
    p.freeRateBytesPerSec = 100.0 * MiB;
    p.pointerDensity = 0.5;
    p.scanRateBytesPerSec = 8.0 * GiB;
    p.quarantineFraction = 0.25;
    const double base = predictedRuntimeOverhead(p);
    p.freeRateBytesPerSec *= 2;
    EXPECT_NEAR(predictedRuntimeOverhead(p), 2 * base, 1e-12);
    p.pointerDensity *= 0.5;
    EXPECT_NEAR(predictedRuntimeOverhead(p), base, 1e-12);
    p.quarantineFraction *= 2;
    EXPECT_NEAR(predictedRuntimeOverhead(p), base / 2, 1e-12);
}

TEST(AnalyticalModel, SweepPeriodAndDuration)
{
    EXPECT_NEAR(sweepPeriodSeconds(100 * MiB, 100.0 * MiB), 1.0,
                1e-9);
    EXPECT_NEAR(sweepSeconds(8 * GiB, 8.0 * GiB), 1.0, 1e-9);
    EXPECT_NEAR(predictedMemoryOverhead(0.25), 0.2578, 0.0001);
}

} // namespace
} // namespace revoke
} // namespace cherivoke

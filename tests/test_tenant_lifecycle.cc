/**
 * @file
 * Property/fuzz tier for the tenant lifecycle (ctest label: tier2).
 *
 * The core properties:
 *  - slot reuse resurrects nothing: after retireTenant(), the slot's
 *    stride and shadow window hold no resident pages, no PTEs, no
 *    capability tags and no shadow bytes, so the next occupant is
 *    indistinguishable from one in a never-used slot;
 *  - randomized-but-seeded spawn/retire/op interleavings (>= 50k
 *    trace ops) replay bit-identically: every statistic, every
 *    lifecycle event (wall-clock excepted) is a pure function of the
 *    seed;
 *  - the scheduler stays smooth across re-normalisation: after any
 *    arrival/departure sequence, a window of picks distributes turns
 *    weight-proportionally with bounded burst error;
 *  - lifecycle ops naming unknown tenants are fatal, as are direct
 *    API misuses (duplicate definitions, retiring the non-live).
 */

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "tenant/tenant_manager.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth.hh"

using namespace cherivoke;

namespace {

/** An alloc/free-heavy trace (scale 1/512 ≈ 20k ops). */
workload::Trace
fuzzTrace(uint64_t seed, double scale = 1.0 / 512,
          double duration = 2.0)
{
    workload::BenchmarkProfile profile =
        workload::profileFor("dealII");
    workload::SynthConfig cfg;
    cfg.scale = scale;
    cfg.durationSec = duration;
    cfg.seed = seed;
    return workload::synthesize(profile, cfg);
}

/** Tenant tuned so the traces above trigger several sweeps. */
tenant::TenantConfig
fuzzTenant(const std::string &name, double weight = 1.0)
{
    tenant::TenantConfig cfg;
    cfg.name = name;
    cfg.weight = weight;
    cfg.alloc.quarantineFraction = 0.05;
    cfg.alloc.minQuarantineBytes = 16 * KiB;
    cfg.alloc.dl.initialHeapBytes = 256 * KiB;
    cfg.alloc.dl.growthChunkBytes = 128 * KiB;
    return cfg;
}

/** Insert lifecycle @p events (position in original op stream,
 *  op) into @p host, stable-sorted by position. */
void
injectEvents(workload::Trace &host,
             std::vector<std::pair<size_t, workload::TraceOp>> events)
{
    std::stable_sort(events.begin(), events.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::vector<workload::TraceOp> merged;
    merged.reserve(host.ops.size() + events.size());
    size_t next = 0;
    for (size_t i = 0; i < host.ops.size(); ++i) {
        while (next < events.size() && events[next].first <= i)
            merged.push_back(events[next++].second);
        merged.push_back(host.ops[i]);
    }
    for (; next < events.size(); ++next)
        merged.push_back(events[next].second);
    host.ops = std::move(merged);
}

workload::TraceOp
lifecycleOp(workload::OpKind kind, uint64_t id)
{
    workload::TraceOp op;
    op.kind = kind;
    op.id = id;
    return op;
}

/** Everything deterministic a run produces, as one string. */
std::string
runFingerprint(const tenant::MultiTenantResult &m)
{
    std::string out;
    char buf[192];
    auto add = [&](uint64_t v) {
        std::snprintf(buf, sizeof(buf), "%llu,",
                      static_cast<unsigned long long>(v));
        out += buf;
    };
    auto addF = [&](double v) {
        std::snprintf(buf, sizeof(buf), "%.17g,", v);
        out += buf;
    };
    add(m.totalOps);
    add(m.allocCalls);
    add(m.freeCalls);
    add(m.freedBytes);
    add(m.ptrStores);
    add(m.spawns);
    add(m.retires);
    add(m.slotsReused);
    add(m.peakAggLiveAllocs);
    add(m.peakAggLiveBytes);
    add(m.peakAggQuarantineBytes);
    add(m.peakAggFootprintBytes);
    add(m.engine.epochs);
    add(m.engine.slices);
    add(m.engine.paint.total());
    add(m.engine.sweep.pagesSwept);
    add(m.engine.sweep.capsExamined);
    add(m.engine.sweep.capsRevoked);
    add(m.engine.internalFrees);
    add(m.engine.bytesReleased);
    addF(m.virtualSeconds);
    for (const tenant::LifecycleEvent &ev : m.lifecycle) {
        add(ev.kind == tenant::LifecycleEvent::Kind::Spawn ? 0 : 1);
        add(ev.tenantId);
        add(ev.slot);
        add(ev.step);
        add(ev.reusedSlot ? 1 : 0);
        add(ev.pagesReleased);
    }
    for (const tenant::TenantResult &t : m.tenants) {
        add(t.tenantId);
        add(t.index);
        add(t.opsApplied);
        add(t.opsTotal);
        add(t.retiredMidRun ? 1 : 0);
        add(t.run.allocCalls);
        add(t.run.freeCalls);
        add(t.run.freedBytes);
        add(t.run.peakLiveBytes);
        add(t.run.peakLiveAllocs);
        add(t.run.revoker.epochs);
        add(t.run.revoker.slices);
        add(t.run.revoker.sweep.capsRevoked);
        add(t.run.revoker.sweep.pagesSwept);
        addF(t.run.virtualSeconds);
        addF(t.run.pageDensity);
        addF(t.run.lineDensity);
    }
    return out;
}

/**
 * The randomized-but-seeded lifecycle schedule: sequential
 * spawn→retire cycles (exercising slot reuse), one overlapped pair
 * (two churn tenants live at once), and two spawn-only survivors.
 */
struct FuzzPlan
{
    std::vector<std::pair<size_t, workload::TraceOp>> events;
    std::vector<uint64_t> ids; //!< every definition id used
};

FuzzPlan
makeFuzzPlan(uint64_t seed, size_t host_ops)
{
    using workload::OpKind;
    FuzzPlan plan;
    std::mt19937_64 rng(seed);
    auto pos = [&](size_t lo, size_t hi) {
        return lo + rng() % (hi - lo);
    };
    uint64_t next_id = 2000;

    // Four strictly sequential cycles: each retire lands before the
    // next spawn, so cycles 2..4 must reuse cycle 1's slot.
    std::vector<size_t> cuts;
    for (int i = 0; i < 8; ++i)
        cuts.push_back(pos(1, host_ops - 1));
    std::sort(cuts.begin(), cuts.end());
    for (size_t i = 0; i + 1 < cuts.size(); i += 2) {
        const uint64_t id = next_id++;
        plan.ids.push_back(id);
        plan.events.emplace_back(
            cuts[i], lifecycleOp(OpKind::SpawnTenant, id));
        plan.events.emplace_back(
            cuts[i + 1] + 1, lifecycleOp(OpKind::RetireTenant, id));
    }

    // One overlapped pair: spawn A, spawn B, retire A, retire B.
    std::vector<size_t> ov;
    for (int i = 0; i < 4; ++i)
        ov.push_back(pos(1, host_ops - 1));
    std::sort(ov.begin(), ov.end());
    const uint64_t a = next_id++, b = next_id++;
    plan.ids.push_back(a);
    plan.ids.push_back(b);
    plan.events.emplace_back(ov[0],
                             lifecycleOp(OpKind::SpawnTenant, a));
    plan.events.emplace_back(ov[1] + 1,
                             lifecycleOp(OpKind::SpawnTenant, b));
    plan.events.emplace_back(ov[2] + 2,
                             lifecycleOp(OpKind::RetireTenant, a));
    plan.events.emplace_back(ov[3] + 3,
                             lifecycleOp(OpKind::RetireTenant, b));

    // Two survivors: spawned, never retired.
    for (int i = 0; i < 2; ++i) {
        const uint64_t id = next_id++;
        plan.ids.push_back(id);
        plan.events.emplace_back(
            pos(1, host_ops - 1),
            lifecycleOp(OpKind::SpawnTenant, id));
    }
    return plan;
}

tenant::MultiTenantResult
runFuzzOnce(uint64_t seed)
{
    // Three static tenants (~60k host ops in total) carry the run;
    // tenant 0's trace additionally drives the lifecycle schedule.
    workload::Trace host = fuzzTrace(101 + seed);
    const FuzzPlan plan = makeFuzzPlan(seed, host.ops.size());
    injectEvents(host, plan.events);

    tenant::TenantManagerConfig mgr_cfg;
    mgr_cfg.engine.pagesPerSlice = 16;
    tenant::TenantManager manager(mgr_cfg);
    manager.addTenant(fuzzTenant("host", 2.0), host);
    manager.addTenant(fuzzTenant("peer-a"), fuzzTrace(102 + seed));
    manager.addTenant(fuzzTenant("peer-b"), fuzzTrace(103 + seed));

    // All churn definitions share one short trace; half of them run
    // the concurrent policy so open epochs meet retirement.
    const workload::Trace churn = fuzzTrace(991, 1.0 / 512, 0.2);
    for (size_t i = 0; i < plan.ids.size(); ++i) {
        tenant::TenantConfig cfg =
            fuzzTenant("churn#" + std::to_string(i));
        if (i % 2 == 1)
            cfg.policy = revoke::PolicyKind::Concurrent;
        manager.defineTenant(plan.ids[i], cfg, churn);
    }
    return manager.run();
}

} // namespace

TEST(TenantLifecycleFuzz, SeededInterleavingsReplayBitIdentically)
{
    for (const uint64_t seed : {7ULL, 23ULL}) {
        const tenant::MultiTenantResult x = runFuzzOnce(seed);
        const tenant::MultiTenantResult y = runFuzzOnce(seed);

        // >= 50k interleaved trace ops actually ran.
        EXPECT_GE(x.totalOps, 50000u);
        // The schedule exercised arrivals, departures and reuse.
        EXPECT_GE(x.retires, 6u);
        EXPECT_GE(x.slotsReused, 3u);
        // Survivors and retirees both report.
        EXPECT_EQ(x.tenants.size(), 3u + 8u);

        EXPECT_EQ(runFingerprint(x), runFingerprint(y))
            << "seed " << seed;
    }
}

TEST(TenantLifecycleFuzz, SlotReuseResurrectsNothing)
{
    tenant::TenantManagerConfig mgr_cfg;
    mgr_cfg.engine.pagesPerSlice = 4;
    tenant::TenantManager manager(mgr_cfg);
    manager.addTenant(fuzzTenant("keeper"), workload::Trace{});

    // The victim runs the concurrent policy so we can retire it with
    // an epoch open (the drain-at-teardown path).
    tenant::TenantConfig vic_cfg = fuzzTenant("victim");
    vic_cfg.policy = revoke::PolicyKind::Concurrent;
    const size_t slot =
        manager.addTenant(vic_cfg, workload::Trace{});
    ASSERT_EQ(slot, 1u);
    tenant::Tenant &victim = manager.tenant(slot);

    // Populate the victim's image: live caps in globals and heap,
    // freed caps in quarantine, shadow bytes painted by an open
    // epoch.
    std::vector<cap::Capability> caps;
    for (int i = 0; i < 128; ++i) {
        const cap::Capability c = victim.allocator().malloc(256);
        manager.memory().writeCap(
            victim.space().globals().base +
                static_cast<uint64_t>(i) * 16,
            c);
        manager.memory().storeCap(c, c.base(), c);
        caps.push_back(c);
    }
    for (size_t i = 0; i < caps.size(); i += 2)
        victim.allocator().free(caps[i]);

    manager.engine().selectDomain(slot);
    manager.engine().maybeRevoke();
    ASSERT_TRUE(manager.engine().epochOpen());
    ASSERT_EQ(manager.engine().epochDomainIndex(), slot);

    // Sample addresses that are definitely populated right now
    // (slot 1 of the globals holds caps[1], which stayed live — the
    // open epoch may already have revoked the freed caps).
    const uint64_t heap_addr = caps[1].base();
    const uint64_t globals_addr =
        victim.space().globals().base + 16;
    const auto [shadow_lo, shadow_hi] =
        tenant::shadowWindowForTenant(slot);
    const uint64_t shadow_addr = mem::shadowAddrOf(caps[0].base());
    ASSERT_GE(shadow_addr, shadow_lo);
    ASSERT_LT(shadow_addr, shadow_hi);
    ASSERT_TRUE(manager.memory().readTag(globals_addr));
    ASSERT_NE(manager.memory().peekU8(shadow_addr), 0)
        << "open epoch must have painted the freed run";
    ASSERT_NE(manager.memory().pageIfPresent(heap_addr), nullptr);

    const size_t resident_before = manager.memory().residentPages();
    manager.retireTenant(1);

    // The epoch was drained, the domain retired, the slot freed.
    EXPECT_FALSE(manager.engine().epochOpen());
    EXPECT_TRUE(manager.engine().domainRetired(slot));
    EXPECT_EQ(manager.freeSlotCount(), 1u);
    EXPECT_FALSE(manager.tenantLive(1));

    // Nothing of the victim survives: no residency, no PTEs, no
    // tags, no shadow bytes, anywhere in the slot's stride or its
    // shadow window.
    EXPECT_LT(manager.memory().residentPages(), resident_before);
    EXPECT_EQ(manager.memory().pageIfPresent(heap_addr), nullptr);
    EXPECT_EQ(manager.memory().pageIfPresent(globals_addr), nullptr);
    EXPECT_EQ(manager.memory().pageIfPresent(shadow_addr), nullptr);
    EXPECT_FALSE(manager.memory().pageTable().isMapped(heap_addr));
    EXPECT_FALSE(
        manager.memory().pageTable().isMapped(globals_addr));
    EXPECT_FALSE(manager.memory().pageTable().isMapped(shadow_addr));
    EXPECT_FALSE(manager.memory().readTag(globals_addr));
    EXPECT_EQ(manager.memory().peekU8(shadow_addr), 0);
    for (uint64_t addr = slot * tenant::kTenantStride;
         addr < (slot + 1) * tenant::kTenantStride;
         addr += tenant::kTenantStride / 64) {
        EXPECT_EQ(manager.memory().pageIfPresent(addr), nullptr);
    }

    // A new tenant spawned into the slot starts from scratch.
    manager.defineTenant(7, fuzzTenant("reuser"), workload::Trace{});
    EXPECT_EQ(manager.spawnTenant(7), slot);
    tenant::Tenant &reuser = manager.tenant(slot);
    const cap::Capability fresh = reuser.allocator().malloc(64);
    EXPECT_EQ(manager.memory().readU64(fresh.base()), 0u);
    EXPECT_FALSE(manager.engine().domainRetired(slot));
    EXPECT_EQ(manager.engine().domainTotals(slot).epochs, 0u);
}

TEST(TenantLifecycleFuzz, UnknownIdsAndMisuseAreFatal)
{
    using workload::OpKind;

    // Direct API misuse.
    {
        tenant::TenantManager manager{tenant::TenantManagerConfig{}};
        manager.addTenant(fuzzTenant("a"), workload::Trace{});
        EXPECT_THROW(manager.retireTenant(99), FatalError);
        EXPECT_THROW(manager.spawnTenant(99), FatalError);
        manager.defineTenant(50, fuzzTenant("d"), workload::Trace{});
        EXPECT_THROW(manager.defineTenant(50, fuzzTenant("d"),
                                          workload::Trace{}),
                     FatalError);
        // Id 0 already names the live static tenant.
        EXPECT_THROW(manager.defineTenant(0, fuzzTenant("d"),
                                          workload::Trace{}),
                     FatalError);
        manager.spawnTenant(50);
        EXPECT_THROW(manager.spawnTenant(50), FatalError);
        // Zero and negative weights are rejected up front.
        tenant::TenantConfig zero = fuzzTenant("z");
        zero.weight = 0;
        EXPECT_THROW(manager.addTenant(zero, workload::Trace{}),
                     FatalError);
        EXPECT_THROW(manager.defineTenant(60, zero,
                                          workload::Trace{}),
                     FatalError);
    }

    // Trace ops naming unknown tenants fail the replay.
    {
        workload::Trace host = fuzzTrace(55, 1.0 / 512, 0.1);
        injectEvents(host, {{host.ops.size() / 2,
                             lifecycleOp(OpKind::SpawnTenant, 777)}});
        tenant::TenantManager manager{tenant::TenantManagerConfig{}};
        manager.addTenant(fuzzTenant("host"), host);
        EXPECT_THROW(manager.run(), FatalError);
    }
    {
        workload::Trace host = fuzzTrace(56, 1.0 / 512, 0.1);
        injectEvents(host,
                     {{host.ops.size() / 2,
                       lifecycleOp(OpKind::RetireTenant, 778)}});
        tenant::TenantManager manager{tenant::TenantManagerConfig{}};
        manager.addTenant(fuzzTenant("host"), host);
        EXPECT_THROW(manager.run(), FatalError);
    }
}

TEST(TenantLifecycleFuzz, RetiredMidRunResultsAreCaptured)
{
    using workload::OpKind;
    workload::Trace host = fuzzTrace(61);
    // Spawn early, retire late: the churn tenant's trace is larger
    // than its window, so it is cut off mid-trace.
    injectEvents(host,
                 {{10, lifecycleOp(OpKind::SpawnTenant, 3000)},
                  {host.ops.size() / 2,
                   lifecycleOp(OpKind::RetireTenant, 3000)}});

    tenant::TenantManager manager{tenant::TenantManagerConfig{}};
    manager.addTenant(fuzzTenant("host"), host);
    manager.defineTenant(3000, fuzzTenant("cut-short"),
                         fuzzTrace(62));
    const tenant::MultiTenantResult result = manager.run();

    ASSERT_EQ(result.tenants.size(), 2u);
    const tenant::TenantResult &cut = result.tenants[0];
    EXPECT_EQ(cut.tenantId, 3000u);
    EXPECT_TRUE(cut.retiredMidRun);
    EXPECT_GT(cut.opsApplied, 0u);
    EXPECT_LT(cut.opsApplied, cut.opsTotal);
    EXPECT_GT(cut.run.allocCalls, 0u);
    // Its counters joined the aggregates.
    EXPECT_EQ(result.allocCalls, result.tenants[0].run.allocCalls +
                                     result.tenants[1].run.allocCalls);
    // And the lifecycle log shows the arrival and departure.
    ASSERT_GE(result.lifecycle.size(), 3u);
    EXPECT_EQ(result.retires, 1u);
    bool saw_retire = false;
    for (const tenant::LifecycleEvent &ev : result.lifecycle) {
        if (ev.kind == tenant::LifecycleEvent::Kind::Retire) {
            saw_retire = true;
            EXPECT_EQ(ev.tenantId, 3000u);
            EXPECT_GT(ev.pagesReleased, 0u);
            EXPECT_GT(ev.step, 0u);
        }
    }
    EXPECT_TRUE(saw_retire);
}

TEST(TenantLifecycleFuzz, SchedulerSmoothAcrossRenormalization)
{
    // Seeded fuzz over arrive/markDone/next: after every membership
    // change, a pick window must distribute turns proportionally to
    // weight (bounded burst error), and the whole pick sequence must
    // be a pure function of the seed.
    for (const uint64_t seed : {11ULL, 42ULL}) {
        auto once = [&](std::vector<size_t> &picks) {
            std::mt19937_64 rng(seed);
            tenant::TenantScheduler sched;
            std::vector<double> weights;
            auto window = [&]() {
                if (sched.allDone())
                    return;
                // One full rotation per unit weight.
                double total = 0;
                std::vector<size_t> counts(weights.size(), 0);
                for (size_t i = 0; i < weights.size(); ++i) {
                    if (sched.isRunnable(i))
                        total += weights[i];
                }
                const size_t picks_n =
                    static_cast<size_t>(total * 8);
                for (size_t p = 0; p < picks_n; ++p) {
                    const size_t w = sched.next();
                    picks.push_back(w);
                    ++counts[w];
                }
                for (size_t i = 0; i < weights.size(); ++i) {
                    if (!sched.isRunnable(i))
                        continue;
                    const double expect =
                        picks_n * weights[i] / total;
                    EXPECT_NEAR(counts[i], expect, 1.0 + 1e-9)
                        << "tenant " << i << " seed " << seed;
                }
            };

            for (int step = 0; step < 40; ++step) {
                const bool can_remove = sched.activeCount() > 0;
                if (!can_remove || rng() % 3 != 0) {
                    // Arrive: new slot, or reuse a done one.
                    const double w =
                        static_cast<double>(1 + rng() % 4);
                    size_t slot = sched.size();
                    for (size_t i = 0; i < sched.size(); ++i) {
                        if (!sched.isRunnable(i) && rng() % 2 == 0) {
                            slot = i;
                            break;
                        }
                    }
                    if (slot == sched.size())
                        weights.push_back(w);
                    else
                        weights[slot] = w;
                    sched.arrive(slot, w);
                } else {
                    // Depart a runnable tenant.
                    std::vector<size_t> runnable;
                    for (size_t i = 0; i < sched.size(); ++i) {
                        if (sched.isRunnable(i))
                            runnable.push_back(i);
                    }
                    sched.markDone(
                        runnable[rng() % runnable.size()]);
                }
                window();
            }
        };
        std::vector<size_t> picks_a, picks_b;
        once(picks_a);
        once(picks_b);
        EXPECT_EQ(picks_a, picks_b) << "seed " << seed;
        EXPECT_GT(picks_a.size(), 100u);
    }
}

/**
 * @file
 * Tests for the quarantine buffer and the CherivokeAllocator facade:
 * aggregation of contiguous frees, sweep-threshold accounting, the
 * paint/unpaint protocol, and the guarantee that quarantined memory
 * is never reissued before a sweep completes.
 */

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "alloc/cherivoke_alloc.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace cherivoke {
namespace alloc {
namespace {

using cap::Capability;

CherivokeConfig
testConfig(double fraction = 0.25, uint64_t min_bytes = 1024)
{
    CherivokeConfig cfg;
    cfg.quarantineFraction = fraction;
    cfg.minQuarantineBytes = min_bytes;
    return cfg;
}

class CherivokeAllocTest : public ::testing::Test
{
  protected:
    CherivokeAllocTest() : alloc(space, testConfig()) {}

    mem::AddressSpace space;
    CherivokeAllocator alloc;
};

TEST_F(CherivokeAllocTest, FreeQuarantinesInsteadOfRecycling)
{
    const Capability a = alloc.malloc(64);
    const uint64_t addr = a.base();
    alloc.free(a);
    // Unlike plain dlmalloc, the same address must NOT come back.
    const Capability b = alloc.malloc(64);
    EXPECT_NE(b.base(), addr)
        << "quarantined memory must not be reissued before a sweep";
    EXPECT_GT(alloc.quarantinedBytes(), 0u);
}

TEST_F(CherivokeAllocTest, DoubleFreeFaults)
{
    const Capability a = alloc.malloc(64);
    alloc.free(a);
    EXPECT_THROW(alloc.free(a), FatalError);
}

TEST_F(CherivokeAllocTest, AdjacentFreesAggregate)
{
    const Capability a = alloc.malloc(64);
    const Capability b = alloc.malloc(64);
    const Capability c = alloc.malloc(64);
    (void)alloc.malloc(64); // guard against top
    alloc.free(a);
    alloc.free(b);
    alloc.free(c);
    EXPECT_EQ(alloc.quarantine().runCount(), 1u)
        << "three contiguous frees aggregate into one run";
    EXPECT_EQ(alloc.quarantine().merges(), 2u);
}

TEST_F(CherivokeAllocTest, AggregationBridgesTwoRuns)
{
    const Capability a = alloc.malloc(64);
    const Capability b = alloc.malloc(64);
    const Capability c = alloc.malloc(64);
    (void)alloc.malloc(64);
    alloc.free(a);
    alloc.free(c);
    EXPECT_EQ(alloc.quarantine().runCount(), 2u);
    alloc.free(b); // bridges the two runs
    EXPECT_EQ(alloc.quarantine().runCount(), 1u);
}

TEST_F(CherivokeAllocTest, NonAdjacentFreesStaySeparate)
{
    const Capability a = alloc.malloc(64);
    const Capability b = alloc.malloc(64);
    const Capability c = alloc.malloc(64);
    (void)alloc.malloc(64);
    alloc.free(a);
    alloc.free(c);
    EXPECT_EQ(alloc.quarantine().runCount(), 2u);
    (void)b;
}

TEST_F(CherivokeAllocTest, NeedsSweepHonoursFractionAndFloor)
{
    CherivokeConfig cfg = testConfig(0.25, 4096);
    CherivokeAllocator a2(space, cfg);
    // Live 64 KiB, quarantine small: below floor.
    const Capability live = a2.malloc(64 * KiB);
    const Capability f1 = a2.malloc(1024);
    a2.free(f1);
    EXPECT_FALSE(a2.needsSweep()) << "below the byte floor";
    // Push quarantine over 25% of live.
    std::vector<Capability> caps;
    for (int i = 0; i < 20; ++i)
        caps.push_back(a2.malloc(1024));
    for (auto &c : caps)
        a2.free(c);
    EXPECT_TRUE(a2.needsSweep());
    (void)live;
}

TEST_F(CherivokeAllocTest, PrepareSweepPaintsPayloadsOnly)
{
    const Capability a = alloc.malloc(256);
    const uint64_t payload = a.base();
    const uint64_t chunk = payload - kChunkHeader;
    alloc.free(a);
    alloc.prepareSweep();
    auto &shadow = alloc.shadowMap();
    EXPECT_FALSE(shadow.isRevoked(chunk))
        << "header granule must stay unpainted (one-past-end rule)";
    EXPECT_TRUE(shadow.isRevoked(payload));
    EXPECT_TRUE(shadow.isRevoked(payload + 240));
}

TEST_F(CherivokeAllocTest, FinishSweepUnpaintsAndRecycles)
{
    const Capability a = alloc.malloc(256);
    const uint64_t addr = a.base();
    alloc.free(a);
    alloc.prepareSweep();
    const uint64_t internal = alloc.finishSweep();
    EXPECT_EQ(internal, 1u);
    EXPECT_EQ(alloc.quarantinedBytes(), 0u);
    EXPECT_FALSE(alloc.shadowMap().isRevoked(addr));
    // The address is reusable again.
    const Capability b = alloc.malloc(256);
    EXPECT_EQ(b.base(), addr);
    alloc.dl().validateHeap();
}

TEST_F(CherivokeAllocTest, InternalFreesFewerThanProgramFrees)
{
    std::vector<Capability> caps;
    for (int i = 0; i < 32; ++i)
        caps.push_back(alloc.malloc(64));
    (void)alloc.malloc(64);
    for (auto &c : caps)
        alloc.free(c);
    alloc.prepareSweep();
    const uint64_t internal = alloc.finishSweep();
    EXPECT_EQ(internal, 1u)
        << "32 contiguous frees should aggregate to 1 internal free";
}

TEST_F(CherivokeAllocTest, ReallocQuarantinesOldAllocation)
{
    const Capability a = alloc.malloc(64);
    const uint64_t old_addr = a.base();
    auto &memory = space.memory();
    memory.storeU64(a, a.base(), 42);
    const Capability b = alloc.realloc(a, 1024);
    EXPECT_NE(b.base(), old_addr);
    EXPECT_EQ(memory.loadU64(b, b.base()), 42u);
    EXPECT_GT(alloc.quarantinedBytes(), 0u);
    // The old allocation cannot come back yet.
    const Capability c = alloc.malloc(64);
    EXPECT_NE(c.base(), old_addr);
}

TEST_F(CherivokeAllocTest, QuarantineRunsReportedInAddressOrder)
{
    const Capability a = alloc.malloc(64);
    const Capability b = alloc.malloc(64);
    const Capability c = alloc.malloc(64);
    const Capability d = alloc.malloc(64);
    (void)alloc.malloc(64);
    alloc.free(c);
    alloc.free(a);
    (void)b;
    (void)d;
    const auto runs = alloc.quarantine().runs();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_LT(runs[0].addr, runs[1].addr);
}

TEST_F(CherivokeAllocTest, HeapValidAcrossManySweepCycles)
{
    Rng rng(5);
    std::vector<Capability> live;
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 50; ++i)
            live.push_back(alloc.malloc(rng.nextLogUniform(16, 2048)));
        while (live.size() > 25) {
            const size_t idx = rng.nextBounded(live.size());
            alloc.free(live[idx]);
            live.erase(live.begin() + static_cast<long>(idx));
        }
        if (alloc.needsSweep()) {
            alloc.prepareSweep();
            alloc.finishSweep();
        }
        alloc.dl().validateHeap();
    }
    EXPECT_GT(alloc.sweepsPrepared(), 0u);
}

TEST_F(CherivokeAllocTest, QuarantinedMemoryNeverReissuedProperty)
{
    // Track quarantined payload ranges; every new allocation must be
    // disjoint from all of them until a sweep completes.
    Rng rng(17);
    std::vector<Capability> live;
    std::set<std::pair<uint64_t, uint64_t>> quarantined; // [lo, hi)

    for (int op = 0; op < 2000; ++op) {
        if (rng.nextBool(0.55) || live.empty()) {
            const Capability c =
                alloc.malloc(rng.nextLogUniform(16, 4096));
            const uint64_t lo = c.base();
            const uint64_t hi =
                static_cast<uint64_t>(c.top());
            for (const auto &[qlo, qhi] : quarantined) {
                EXPECT_FALSE(lo < qhi && qlo < hi)
                    << "allocation overlaps quarantined range";
            }
            live.push_back(c);
        } else {
            const size_t idx = rng.nextBounded(live.size());
            const Capability victim = live[idx];
            live.erase(live.begin() + static_cast<long>(idx));
            quarantined.emplace(victim.base(),
                                static_cast<uint64_t>(victim.top()));
            alloc.free(victim);
        }
        if (alloc.needsSweep()) {
            alloc.prepareSweep();
            alloc.finishSweep();
            quarantined.clear();
        }
    }
}

/** Fixture for run-merging edge cases: four adjacent chunks plus a
 *  guard, freed in controlled orders. */
class QuarantineMergeTest : public ::testing::Test
{
  protected:
    QuarantineMergeTest() : dl(space)
    {
        for (auto &c : chunks)
            c = dl.malloc(64);
        (void)dl.malloc(64); // guard against the heap top
    }

    void
    add(size_t idx)
    {
        const auto q = dl.quarantineFree(chunks[idx]);
        sizes[idx] = q.size;
        quarantine.add(dl, q.addr, q.size);
    }

    mem::AddressSpace space;
    DlAllocator dl;
    Quarantine quarantine;
    std::array<Capability, 4> chunks;
    std::array<uint64_t, 4> sizes{};
};

TEST_F(QuarantineMergeTest, MergeLeft)
{
    add(0);
    add(1); // merges with the run ending where it starts
    EXPECT_EQ(quarantine.runCount(), 1u);
    EXPECT_EQ(quarantine.merges(), 1u);
    EXPECT_EQ(quarantine.totalBytes(), sizes[0] + sizes[1]);
    const auto runs = quarantine.runs();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].size, sizes[0] + sizes[1]);
}

TEST_F(QuarantineMergeTest, MergeRight)
{
    add(1);
    add(0); // merges with the run starting where it ends
    EXPECT_EQ(quarantine.runCount(), 1u);
    EXPECT_EQ(quarantine.merges(), 1u);
    const auto runs = quarantine.runs();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].size, sizes[0] + sizes[1]);
}

TEST_F(QuarantineMergeTest, MergeBoth)
{
    add(0);
    add(2);
    ASSERT_EQ(quarantine.runCount(), 2u);
    add(1); // bridges both neighbours in one add
    EXPECT_EQ(quarantine.runCount(), 1u);
    EXPECT_EQ(quarantine.merges(), 2u);
    const auto runs = quarantine.runs();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].size, sizes[0] + sizes[1] + sizes[2]);
    EXPECT_EQ(quarantine.totalBytes(), runs[0].size);
}

TEST_F(QuarantineMergeTest, NonAdjacentStaySeparate)
{
    add(0);
    add(2);
    EXPECT_EQ(quarantine.runCount(), 2u);
    EXPECT_EQ(quarantine.merges(), 0u);
    const auto runs = quarantine.runs();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_LT(runs[0].end(), runs[1].addr);
}

TEST_F(QuarantineMergeTest, ReleaseCountsAggregatedRuns)
{
    add(0);
    add(1);
    add(3);
    EXPECT_EQ(quarantine.runCount(), 2u);
    EXPECT_EQ(quarantine.release(dl), 2u)
        << "release performs one internal free per aggregated run";
    EXPECT_TRUE(quarantine.empty());
    EXPECT_EQ(quarantine.totalBytes(), 0u);
    dl.validateHeap();
}

TEST_F(QuarantineMergeTest, ShardedRunsPartitionExactly)
{
    add(0);
    add(2); // two separate runs
    for (const size_t shards : {1u, 2u, 3u, 7u}) {
        const auto sharded = quarantine.shardedRuns(shards);
        ASSERT_EQ(sharded.size(), shards);
        std::vector<QuarantineRun> flattened;
        uint64_t prev_hi = 0;
        for (const QuarantineShard &shard : sharded) {
            EXPECT_LE(shard.lo, shard.hi);
            EXPECT_GE(shard.lo, prev_hi);
            prev_hi = shard.hi;
            for (const QuarantineRun &run : shard.runs) {
                EXPECT_GE(run.addr, shard.lo)
                    << "run must start inside its shard band";
                EXPECT_LT(run.addr, shard.hi);
                flattened.push_back(run);
            }
        }
        // Concatenating the shards reproduces runs() exactly.
        const auto reference = quarantine.runs();
        ASSERT_EQ(flattened.size(), reference.size()) << shards;
        for (size_t i = 0; i < reference.size(); ++i) {
            EXPECT_EQ(flattened[i].addr, reference[i].addr);
            EXPECT_EQ(flattened[i].size, reference[i].size);
        }
    }
}

TEST_F(QuarantineMergeTest, ShardedRunsEmptyQuarantine)
{
    EXPECT_TRUE(quarantine.shardedRuns(4).empty());
}

TEST(QuarantineUnit, TotalBytesAccumulates)
{
    mem::AddressSpace space;
    DlAllocator dl(space);
    Quarantine q;
    const Capability a = dl.malloc(64);
    const Capability b = dl.malloc(64);
    (void)dl.malloc(64);
    const auto qa = dl.quarantineFree(a);
    q.add(dl, qa.addr, qa.size);
    EXPECT_EQ(q.totalBytes(), qa.size);
    const auto qb = dl.quarantineFree(b);
    q.add(dl, qb.addr, qb.size);
    EXPECT_EQ(q.totalBytes(), qa.size + qb.size);
    EXPECT_EQ(q.runCount(), 1u) << "adjacent chunks merged";
    q.release(dl);
    EXPECT_TRUE(q.empty());
    dl.validateHeap();
}

} // namespace
} // namespace alloc
} // namespace cherivoke

/**
 * @file
 * The supervision state machines against an injectable FakeClock:
 * watchdog arming, heartbeat-driven deadline refresh, the
 * overrun -> bounded retry -> exponential backoff -> escalation walk,
 * the no-spurious-fire guarantee at deadline-1, the derived-deadline
 * model, the strike ledger, and the SweeperEvent rendering the bench
 * gates fingerprint.
 */

#include <gtest/gtest.h>

#include "revoke/supervisor.hh"
#include "support/clock.hh"
#include "support/units.hh"

namespace cherivoke {
namespace revoke {
namespace {

TEST(Watchdog, UnarmedNeverFires)
{
    Watchdog wd;
    EXPECT_FALSE(wd.armed());
    EXPECT_EQ(wd.poll(0), Watchdog::Verdict::None);
    EXPECT_EQ(wd.poll(~uint64_t{0}), Watchdog::Verdict::None);
}

TEST(Watchdog, ArmsWithDeadlineNowPlusWindow)
{
    support::FakeClock clock(1000);
    Watchdog wd;
    wd.arm(clock.nowNs(), 500, 2);
    EXPECT_TRUE(wd.armed());
    EXPECT_EQ(wd.deadlineNs(), 1500u);
    EXPECT_EQ(wd.windowNs(), 500u);
    EXPECT_EQ(wd.retries(), 0u);
}

TEST(Watchdog, NoSpuriousFireAtDeadlineMinusOne)
{
    support::FakeClock clock(0);
    Watchdog wd;
    wd.arm(clock.nowNs(), 100, 0);
    clock.advance(99); // a sweeper finishing at deadline-1 is fine
    EXPECT_EQ(wd.poll(clock.nowNs()), Watchdog::Verdict::None);
    clock.advance(1); // at the deadline it fires
    EXPECT_EQ(wd.poll(clock.nowNs()), Watchdog::Verdict::Escalate);
    EXPECT_FALSE(wd.armed());
}

TEST(Watchdog, HeartbeatPushesDeadlineOut)
{
    support::FakeClock clock(0);
    Watchdog wd;
    wd.arm(clock.nowNs(), 100, 0);
    for (int i = 0; i < 10; ++i) {
        clock.advance(90); // always inside the window...
        EXPECT_EQ(wd.poll(clock.nowNs()), Watchdog::Verdict::None);
        wd.heartbeat(clock.nowNs()); // ...because progress refreshes
    }
    EXPECT_EQ(wd.deadlineNs(), 10u * 90 + 100);
    clock.advance(100); // silence past a full window: overrun
    EXPECT_EQ(wd.poll(clock.nowNs()), Watchdog::Verdict::Escalate);
}

TEST(Watchdog, RetryDoublesWindowThenEscalates)
{
    support::FakeClock clock(0);
    Watchdog wd;
    wd.arm(clock.nowNs(), 100, 2);

    clock.advance(100);
    EXPECT_EQ(wd.poll(clock.nowNs()), Watchdog::Verdict::Retry);
    EXPECT_EQ(wd.retries(), 1u);
    EXPECT_EQ(wd.windowNs(), 200u); // backoff doubled
    EXPECT_EQ(wd.deadlineNs(), clock.nowNs() + 200);

    clock.advance(199); // inside the doubled window
    EXPECT_EQ(wd.poll(clock.nowNs()), Watchdog::Verdict::None);
    clock.advance(1);
    EXPECT_EQ(wd.poll(clock.nowNs()), Watchdog::Verdict::Retry);
    EXPECT_EQ(wd.retries(), 2u);
    EXPECT_EQ(wd.windowNs(), 400u);

    clock.advance(400); // retries exhausted: the ladder takes over
    EXPECT_EQ(wd.poll(clock.nowNs()), Watchdog::Verdict::Escalate);
    EXPECT_FALSE(wd.armed());
    EXPECT_EQ(wd.poll(clock.nowNs()), Watchdog::Verdict::None);
}

TEST(Watchdog, HeartbeatAfterRetryUsesDoubledWindow)
{
    support::FakeClock clock(0);
    Watchdog wd;
    wd.arm(clock.nowNs(), 100, 1);
    clock.advance(100);
    EXPECT_EQ(wd.poll(clock.nowNs()), Watchdog::Verdict::Retry);
    wd.heartbeat(clock.nowNs());
    EXPECT_EQ(wd.deadlineNs(), clock.nowNs() + 200);
}

TEST(Watchdog, DisarmSilences)
{
    support::FakeClock clock(0);
    Watchdog wd;
    wd.arm(clock.nowNs(), 100, 0);
    wd.disarm();
    clock.advance(1000);
    EXPECT_EQ(wd.poll(clock.nowNs()), Watchdog::Verdict::None);
}

TEST(Watchdog, DerivedDeadlineScalesWithWorklist)
{
    // 1 GiB/s over N pages: the model time is N*kPageBytes ns per
    // GiB, times the slack factor; tiny worklists sit on the floor.
    const double rate = 1024.0 * 1024 * 1024;
    EXPECT_EQ(derivedEpochDeadlineNs(0, rate), 10'000'000u);
    EXPECT_EQ(derivedEpochDeadlineNs(1, rate), 10'000'000u);
    const uint64_t big = derivedEpochDeadlineNs(1 << 20, rate);
    // 4 GiB of worklist at 1 GiB/s with 8x slack = 32 s.
    EXPECT_EQ(big, 32'000'000'000u);
    // Slack scales linearly once above the floor.
    EXPECT_EQ(derivedEpochDeadlineNs(1 << 20, rate, 16.0), 2 * big);
}

TEST(SweeperSupervisor, StrikesAccumulateAndReset)
{
    SweeperSupervisor sup;
    EXPECT_EQ(sup.strikes(3), 0u);
    EXPECT_EQ(sup.addStrike(3), 1u);
    EXPECT_EQ(sup.addStrike(3), 2u);
    EXPECT_EQ(sup.addStrike(1), 1u);
    EXPECT_EQ(sup.strikes(3), 2u);
    sup.resetStrikes(3); // slot reuse: a new tenant starts clean
    EXPECT_EQ(sup.strikes(3), 0u);
    EXPECT_EQ(sup.strikes(1), 1u);
    EXPECT_EQ(sup.addStrike(3), 1u);
}

TEST(SweeperSupervisor, EventLogAndRendering)
{
    SweeperSupervisor sup;
    sup.record({SweeperEventKind::Dispatch, 1, 4, 77, 0});
    sup.record({SweeperEventKind::ReassignToAssist, 1, 4, 12, 2});
    ASSERT_EQ(sup.events().size(), 2u);
    EXPECT_EQ(sweeperEventLine(sup.events()[0]),
              "dispatch@d1:e4 pages=77 attempt=0");
    EXPECT_EQ(sweeperEventLine(sup.events()[1]),
              "reassign-to-assist@d1:e4 pages=12 attempt=2");
}

TEST(SweeperSupervisor, EveryEventKindHasAName)
{
    for (size_t k = 0; k < kNumSweeperEventKinds; ++k) {
        const char *name =
            sweeperEventKindName(static_cast<SweeperEventKind>(k));
        EXPECT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
    }
}

TEST(FakeClock, SetAndAdvance)
{
    support::FakeClock clock(5);
    EXPECT_EQ(clock.nowNs(), 5u);
    clock.advance(10);
    EXPECT_EQ(clock.nowNs(), 15u);
    clock.set(3);
    EXPECT_EQ(clock.nowNs(), 3u);
    support::SteadyClock steady;
    const uint64_t a = steady.nowNs();
    EXPECT_GE(steady.nowNs(), a);
}

} // namespace
} // namespace revoke
} // namespace cherivoke

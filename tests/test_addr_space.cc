/**
 * @file
 * Unit tests for the simulated process address space: segment layout,
 * heap mmap growth, the fixed-transform shadow mapping, and the
 * sweepable-segment enumeration.
 */

#include <gtest/gtest.h>

#include "mem/addr_space.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace mem {
namespace {

TEST(AddrSpace, LayoutMapsGlobalsAndStack)
{
    AddressSpace as(1 * MiB, 2 * MiB);
    EXPECT_TRUE(as.memory().pageTable().isMapped(kGlobalsBase));
    EXPECT_TRUE(as.memory().pageTable().isMapped(kStackBase));
    EXPECT_EQ(as.globals().size, 1 * MiB);
    EXPECT_EQ(as.stack().size, 2 * MiB);
}

TEST(AddrSpace, ShadowTransformArithmetic)
{
    EXPECT_EQ(shadowAddrOf(0), kShadowBase);
    EXPECT_EQ(shadowAddrOf(128), kShadowBase + 1);
    EXPECT_EQ(shadowAddrOf(kHeapBase) - kShadowBase, kHeapBase >> 7);
}

TEST(AddrSpace, MmapHeapReturnsPageAlignedGrowingRegions)
{
    AddressSpace as;
    const uint64_t a = as.mmapHeap(10 * kPageBytes);
    const uint64_t b = as.mmapHeap(1);
    EXPECT_EQ(a, kHeapBase);
    EXPECT_TRUE(isAligned(b, kPageBytes));
    EXPECT_GE(b, a + 10 * kPageBytes);
    EXPECT_EQ(as.heapSegments().size(), 2u);
    EXPECT_EQ(as.heapMappedBytes(), 11 * kPageBytes);
}

TEST(AddrSpace, MmapMapsShadowPagesToo)
{
    AddressSpace as;
    const uint64_t base = as.mmapHeap(1 * MiB);
    const uint64_t shadow = shadowAddrOf(base);
    EXPECT_TRUE(as.memory().pageTable().isMapped(shadow));
    // Shadow is writable (the allocator paints it).
    as.memory().writeU64(alignDown(shadow, 8), 0xff);
}

TEST(AddrSpace, MunmapRemovesRegion)
{
    AddressSpace as;
    const uint64_t base = as.mmapHeap(2 * MiB);
    as.munmapHeap(base, 2 * MiB);
    EXPECT_FALSE(as.memory().pageTable().isMapped(base));
    EXPECT_TRUE(as.heapSegments().empty());
}

TEST(AddrSpace, SweepableSegmentsCoverGlobalsStackHeap)
{
    AddressSpace as;
    as.mmapHeap(1 * MiB);
    as.mmapHeap(1 * MiB);
    const auto segs = as.sweepableSegments();
    ASSERT_EQ(segs.size(), 4u);
    EXPECT_EQ(segs[0].name, "globals");
    EXPECT_EQ(segs[1].name, "stack");
    EXPECT_EQ(segs[2].name, "heap");
    EXPECT_EQ(segs[3].name, "heap");
    // None of them is the shadow region.
    for (const auto &s : segs)
        EXPECT_LT(s.base, kShadowBase);
}

TEST(AddrSpace, RootCapSpansEverythingAndBaseZero)
{
    AddressSpace as;
    EXPECT_TRUE(as.rootCap().tag());
    EXPECT_EQ(as.rootCap().base(), 0u);
}

TEST(AddrSpace, RegistersAreSweepableStorage)
{
    AddressSpace as;
    auto &regs = as.registers();
    regs.reg(3) = as.rootCap();
    int tagged = 0;
    regs.forEach([&](cap::Capability &c) { tagged += c.tag() ? 1 : 0; });
    EXPECT_EQ(tagged, 1);
}

TEST(AddrSpace, HeapCollisionWithStackPanics)
{
    AddressSpace as;
    EXPECT_THROW(as.mmapHeap(kStackBase - kHeapBase + kPageBytes),
                 PanicError);
}

} // namespace
} // namespace mem
} // namespace cherivoke

/**
 * @file
 * Unit and property tests for the CC-46 compressed-bounds codec.
 *
 * The properties verified here are exactly the ones CHERIvoke's
 * correctness rests on (paper §4.1): decoded bounds always contain the
 * requested object, small objects encode exactly at byte granularity,
 * huge objects demand a known alignment the allocator can satisfy, and
 * the base never drifts below the original allocation.
 */

#include <gtest/gtest.h>

#include "cap/cc46.hh"
#include "support/bitops.hh"
#include "support/rng.hh"

namespace cherivoke {
namespace cap {
namespace {

TEST(Cc46, ZeroLengthEncodesExactly)
{
    const EncodeResult r = encode(0x1000, 0x1000);
    EXPECT_TRUE(r.exact);
    const Bounds b = decode(r.enc, 0x1000);
    EXPECT_EQ(b.base, 0x1000u);
    EXPECT_EQ(static_cast<uint64_t>(b.top), 0x1000u);
}

TEST(Cc46, SmallLengthsAlwaysExact)
{
    for (uint64_t base : {0ULL, 1ULL, 0x1234ULL, 0xffffffffULL,
                          0x7fffffffffffULL}) {
        for (uint64_t len : {uint64_t{1}, uint64_t{16}, uint64_t{100},
                             uint64_t{4096}, kMaxSmallLength}) {
            const EncodeResult r = encode(base, u128{base} + len);
            EXPECT_TRUE(r.exact) << "base=" << base << " len=" << len;
            const Bounds b = decode(r.enc, base);
            EXPECT_EQ(b.base, base);
            EXPECT_EQ(static_cast<uint64_t>(b.top - b.base), len);
        }
    }
}

TEST(Cc46, SmallEncodingUsesNoInternalExponent)
{
    const EncodeResult r = encode(0x4000, 0x4000 + 4096);
    EXPECT_FALSE(r.enc.internalExponent());
}

TEST(Cc46, LargeEncodingUsesInternalExponent)
{
    const EncodeResult r = encode(0, u128{kMaxSmallLength} * 2);
    EXPECT_TRUE(r.enc.internalExponent());
}

TEST(Cc46, FullAddressSpaceEncodes)
{
    const EncodeResult r = encode(0, u128{1} << 64);
    EXPECT_TRUE(r.exact);
    const Bounds b = decode(r.enc, 0);
    EXPECT_EQ(b.base, 0u);
    EXPECT_EQ(b.top, u128{1} << 64);
}

TEST(Cc46, LargeAlignedRegionExact)
{
    // 1 GiB region aligned to its representable alignment.
    const uint64_t len = 1ULL << 30;
    const uint64_t mask = representableAlignmentMask(len);
    const uint64_t align = ~mask + 1;
    ASSERT_NE(align, 0u);
    const uint64_t base = alignUp(0x1234567890ULL, align);
    const EncodeResult r = encode(base, u128{base} + len);
    EXPECT_TRUE(r.exact);
    const Bounds b = decode(r.enc, base);
    EXPECT_EQ(b.base, base);
    EXPECT_EQ(static_cast<uint64_t>(b.top - b.base), len);
}

TEST(Cc46, MisalignedLargeRegionRoundsOutward)
{
    const uint64_t len = (1ULL << 30) + 1; // just over 1 GiB
    const uint64_t base = (1ULL << 32) + 16; // misaligned for this size
    const EncodeResult r = encode(base, u128{base} + len);
    EXPECT_FALSE(r.exact);
    EXPECT_LE(r.actual.base, base);
    EXPECT_GE(r.actual.top, u128{base} + len);
}

TEST(Cc46, DecodeStableAcrossInBoundsAddresses)
{
    const uint64_t base = 0x10000;
    const uint64_t len = 100000;
    const EncodeResult r = encode(base, u128{base} + len);
    ASSERT_TRUE(r.exact);
    const Bounds expect{base, u128{base} + len};
    for (uint64_t a = base; a < base + len; a += 997)
        EXPECT_EQ(decode(r.enc, a), expect) << "a=" << a;
    // One-past-the-end is also representable in CHERI.
    EXPECT_EQ(decode(r.enc, base + len), expect);
}

TEST(Cc46, RepresentabilityWithinObject)
{
    const uint64_t base = 0x40000000;
    const uint64_t len = 4096;
    const EncodeResult r = encode(base, u128{base} + len);
    EXPECT_TRUE(representable(r.enc, base, base + 10));
    EXPECT_TRUE(representable(r.enc, base, base + len));
    EXPECT_TRUE(representable(r.enc, base + 10, base));
}

TEST(Cc46, FarOutOfBoundsUnrepresentable)
{
    const uint64_t base = 0x40000000;
    const uint64_t len = 64;
    const EncodeResult r = encode(base, u128{base} + len);
    // The representable window around a 64-byte object is at most the
    // 2^22 mantissa window; 2^32 away is far outside it.
    EXPECT_FALSE(representable(r.enc, base, base + (1ULL << 32)));
}

TEST(Cc46, AlignmentMaskMonotoneInLength)
{
    uint64_t prev_align = 1;
    for (unsigned bits = 10; bits < 48; ++bits) {
        const uint64_t len = uint64_t{1} << bits;
        const uint64_t mask = representableAlignmentMask(len);
        const uint64_t align = mask == ~uint64_t{0} ? 1 : ~mask + 1;
        EXPECT_GE(align, prev_align)
            << "alignment must not shrink as length grows";
        prev_align = align;
    }
}

TEST(Cc46, RoundRepresentableLengthIsSufficient)
{
    Rng rng(2024);
    for (int i = 0; i < 200; ++i) {
        const uint64_t len = rng.nextLogUniform(1, 1ULL << 40);
        const uint64_t rounded = roundRepresentableLength(len);
        EXPECT_GE(rounded, len);
        const uint64_t mask = representableAlignmentMask(rounded);
        const uint64_t align = mask == ~uint64_t{0} ? 1 : ~mask + 1;
        const uint64_t base = alignUp(rng.next() >> 20, align);
        const EncodeResult r = encode(base, u128{base} + rounded);
        EXPECT_TRUE(r.exact)
            << "padded allocation must encode exactly; len=" << len;
    }
}

/** Property sweep: random (base, length) pairs over many magnitudes. */
class Cc46Property : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(Cc46Property, ContainmentAndBaseInvariants)
{
    Rng rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        const unsigned len_bits =
            static_cast<unsigned>(rng.nextRange(0, 40));
        const uint64_t len =
            len_bits == 0 ? rng.nextRange(0, 4)
                          : rng.nextLogUniform(1, 1ULL << len_bits);
        const uint64_t base = rng.next() >> rng.nextRange(1, 30);
        const EncodeResult r = encode(base, u128{base} + len);

        // 1. Decoded bounds contain the request.
        EXPECT_LE(r.actual.base, base);
        EXPECT_GE(r.actual.top, u128{base} + len);

        // 2. decode(enc, base) reproduces the actual bounds.
        const Bounds b = decode(r.enc, base);
        EXPECT_EQ(b, r.actual);

        // 3. Exactness implies equality with the request.
        if (r.exact) {
            EXPECT_EQ(b.base, base);
            EXPECT_EQ(b.top, u128{base} + len);
        }

        // 4. Decode is stable at several probe addresses inside.
        const u128 span = r.actual.top - r.actual.base;
        if (span > 0) {
            for (int p = 0; p < 4; ++p) {
                const uint64_t probe =
                    r.actual.base +
                    static_cast<uint64_t>(
                        rng.nextBounded(static_cast<uint64_t>(
                            std::min<u128>(span, ~uint64_t{0}))));
                EXPECT_EQ(decode(r.enc, probe), r.actual)
                    << "probe=" << probe;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Cc46Property,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace cap
} // namespace cherivoke

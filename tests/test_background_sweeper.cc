/**
 * @file
 * The supervised background revocation thread: the BackgroundSweeper
 * state machine in isolation (dispatch/slice/cancel/crash/stall/slow
 * transitions, watermark and heartbeat publication), the headline
 * modelled-statistics parity guarantee (a run with the sweeper
 * genuinely racing the mutators is bit-identical to the
 * mutator-assist build), deterministic per-slice logs, the injected
 * degradation-ladder walks through the engine, and containment of a
 * terminally failing domain through the TenantManager.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "revoke/background_sweeper.hh"
#include "revoke/revocation_engine.hh"
#include "support/fault.hh"
#include "tenant/tenant_manager.hh"
#include "workload/driver.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth.hh"

namespace cherivoke {
namespace revoke {
namespace {

using alloc::CherivokeAllocator;

/** A trace sized to trigger a dozen-odd epochs. */
workload::Trace
sweepTrace(uint64_t seed = 7)
{
    workload::BenchmarkProfile profile =
        workload::profileFor("dealII");
    workload::SynthConfig cfg;
    cfg.scale = 1.0 / 512;
    cfg.durationSec = 10.0;
    cfg.seed = seed;
    return workload::synthesize(profile, cfg);
}

struct RunOutput
{
    SweepStats sweep;
    alloc::PaintStats paint;
    uint64_t epochs = 0;
    uint64_t slices = 0;
    uint64_t internalFrees = 0;
    std::vector<SweeperEvent> events;
};

RunOutput
runWithEngine(const EngineConfig &ecfg, const workload::Trace &trace)
{
    mem::AddressSpace space;
    alloc::CherivokeConfig acfg;
    acfg.quarantineFraction = 0.05;
    acfg.minQuarantineBytes = 16 * KiB;
    CherivokeAllocator allocator(space, acfg);
    RevocationEngine engine(allocator, space, ecfg);
    workload::TraceDriver driver(space, allocator, &engine);
    driver.run(trace, nullptr);

    RunOutput out;
    out.sweep = engine.totals().sweep;
    out.paint = engine.totals().paint;
    out.epochs = engine.totals().epochs;
    out.slices = engine.totals().slices;
    out.internalFrees = engine.totals().internalFrees;
    out.events = engine.sweeperEvents();
    return out;
}

std::string
eventsText(const std::vector<SweeperEvent> &events)
{
    std::string out;
    for (const SweeperEvent &ev : events)
        out += sweeperEventLine(ev) + "\n";
    return out;
}

uint64_t
countKind(const std::vector<SweeperEvent> &events,
          SweeperEventKind kind)
{
    uint64_t n = 0;
    for (const SweeperEvent &ev : events)
        n += ev.kind == kind ? 1 : 0;
    return n;
}

// ---------------------------------------------------------------
// BackgroundSweeper state machine in isolation.
// ---------------------------------------------------------------

TEST(BackgroundSweeperUnit, EmptyWorklistCompletesImmediately)
{
    BackgroundSweeper bg;
    // No caps anywhere, so the shadow map is never consulted and a
    // null shadow is safe.
    bg.dispatch(FrozenWorklist{}, nullptr, 4,
                BackgroundSweeper::Inject::None, 1);
    bg.cancel(); // doubles as join
    EXPECT_EQ(bg.state(), BackgroundSweeper::State::Done);
    EXPECT_EQ(bg.watermark(), 0u);
    EXPECT_TRUE(bg.sliceLogs().empty());
}

TEST(BackgroundSweeperUnit, CapFreePagesSliceDeterministically)
{
    FrozenWorklist wl;
    for (int i = 0; i < 10; ++i)
        wl.pages.push_back({static_cast<uint64_t>(i) * kPageBytes,
                            0, 0}); // no caps: shadow never touched

    BackgroundSweeper bg;
    bg.dispatch(std::move(wl), nullptr, 4,
                BackgroundSweeper::Inject::None, 1);
    EXPECT_TRUE(bg.waitProgress(10, 1'000'000'000));
    bg.cancel();
    EXPECT_EQ(bg.state(), BackgroundSweeper::State::Done);
    EXPECT_EQ(bg.watermark(), 10u);
    // 10 pages in slices of 4: [0,4) [4,8) [8,10), always.
    ASSERT_EQ(bg.sliceLogs().size(), 3u);
    EXPECT_EQ(bg.sliceLogs()[0].firstPage, 0u);
    EXPECT_EQ(bg.sliceLogs()[0].pages, 4u);
    EXPECT_EQ(bg.sliceLogs()[1].firstPage, 4u);
    EXPECT_EQ(bg.sliceLogs()[2].pages, 2u);
    EXPECT_GE(bg.heartbeats(), 3u);
}

TEST(BackgroundSweeperUnit, CrashInjectionDiesBeforeAnySlice)
{
    FrozenWorklist wl;
    wl.pages.push_back({0, 0, 0});
    BackgroundSweeper bg;
    bg.dispatch(std::move(wl), nullptr, 1,
                BackgroundSweeper::Inject::Crash, 1);
    // The corpse is observable without any timeout machinery: the
    // worker transitions before releasing its first progress notify.
    EXPECT_FALSE(bg.waitProgress(1, 1'000'000'000));
    EXPECT_EQ(bg.state(), BackgroundSweeper::State::Crashed);
    EXPECT_EQ(bg.watermark(), 0u);
}

TEST(BackgroundSweeperUnit, StallHoldsUntilCancel)
{
    FrozenWorklist wl;
    wl.pages.push_back({0, 0, 0});
    BackgroundSweeper bg;
    bg.dispatch(std::move(wl), nullptr, 1,
                BackgroundSweeper::Inject::Stall, 1);
    EXPECT_FALSE(bg.waitProgress(1, 1'000'000'000));
    EXPECT_EQ(bg.state(), BackgroundSweeper::State::Stalled);
    bg.nudge(); // nudges never rescue a hard stall
    EXPECT_EQ(bg.state(), BackgroundSweeper::State::Stalled);
    bg.cancel();
    EXPECT_EQ(bg.state(), BackgroundSweeper::State::Cancelled);
    EXPECT_EQ(bg.watermark(), 0u);
}

TEST(BackgroundSweeperUnit, SlowRecoversAfterFactorNudges)
{
    FrozenWorklist wl;
    for (int i = 0; i < 3; ++i)
        wl.pages.push_back({static_cast<uint64_t>(i) * kPageBytes,
                            0, 0});
    BackgroundSweeper bg;
    bg.dispatch(std::move(wl), nullptr, 8,
                BackgroundSweeper::Inject::Slow, 2);
    EXPECT_FALSE(bg.waitProgress(1, 1'000'000'000));
    EXPECT_EQ(bg.state(), BackgroundSweeper::State::Stalled);
    bg.nudge(); // credit 1 of 2
    EXPECT_EQ(bg.state(), BackgroundSweeper::State::Stalled);
    bg.nudge(); // final credit: resumes synchronously
    EXPECT_NE(bg.state(), BackgroundSweeper::State::Stalled);
    EXPECT_TRUE(bg.waitProgress(3, 1'000'000'000));
    bg.cancel();
    EXPECT_EQ(bg.state(), BackgroundSweeper::State::Done);
}

TEST(BackgroundSweeperUnit, RedispatchAfterEveryTerminalState)
{
    BackgroundSweeper bg;
    for (int round = 0; round < 3; ++round) {
        FrozenWorklist wl;
        wl.pages.push_back({0, 0, 0});
        bg.dispatch(std::move(wl), nullptr, 1,
                    round == 1 ? BackgroundSweeper::Inject::Crash
                               : BackgroundSweeper::Inject::None,
                    1);
        bg.cancel();
        const BackgroundSweeper::State state = bg.state();
        EXPECT_TRUE(state == BackgroundSweeper::State::Done ||
                    state == BackgroundSweeper::State::Crashed ||
                    state == BackgroundSweeper::State::Cancelled);
    }
}

// ---------------------------------------------------------------
// The parity guarantee through the engine.
// ---------------------------------------------------------------

/** Bit-identical modelled statistics, background sweeper on or off,
 *  for every barrier-bearing policy (the race is realest under the
 *  incremental/concurrent slicing). */
TEST(BackgroundSweeperParity, ModeledStatsBitIdentical)
{
    const workload::Trace trace = sweepTrace();
    for (const PolicyKind policy :
         {PolicyKind::StopTheWorld, PolicyKind::Incremental,
          PolicyKind::Concurrent}) {
        EngineConfig off;
        off.policy = policy;
        off.pagesPerSlice = 8;
        EngineConfig on = off;
        on.backgroundSweeper = true;

        const RunOutput a = runWithEngine(off, trace);
        const RunOutput b = runWithEngine(on, trace);

        EXPECT_GT(a.epochs, 3u);
        EXPECT_EQ(a.sweep.pagesSwept, b.sweep.pagesSwept);
        EXPECT_EQ(a.sweep.linesSwept, b.sweep.linesSwept);
        EXPECT_EQ(a.sweep.capsExamined, b.sweep.capsExamined);
        EXPECT_EQ(a.sweep.capsRevoked, b.sweep.capsRevoked);
        EXPECT_EQ(a.paint.total(), b.paint.total());
        EXPECT_EQ(a.epochs, b.epochs);
        EXPECT_EQ(a.slices, b.slices);
        EXPECT_EQ(a.internalFrees, b.internalFrees);

        // The assist build records no sweeper activity at all; the
        // background build completes every epoch it dispatched.
        EXPECT_TRUE(a.events.empty());
        const uint64_t dispatches =
            countKind(b.events, SweeperEventKind::Dispatch);
        EXPECT_EQ(dispatches, b.epochs);
        EXPECT_EQ(countKind(b.events, SweeperEventKind::Completed),
                  dispatches);
        EXPECT_EQ(countKind(b.events,
                            SweeperEventKind::StallDetected),
                  0u);
    }
}

/** Two background runs over the same trace: the typed event log —
 *  epoch ordinals, page counts, attempts — is byte-identical. */
TEST(BackgroundSweeperParity, EventLogIsDeterministic)
{
    const workload::Trace trace = sweepTrace(9);
    EngineConfig on;
    on.policy = PolicyKind::Incremental;
    on.pagesPerSlice = 8;
    on.backgroundSweeper = true;
    const RunOutput a = runWithEngine(on, trace);
    const RunOutput b = runWithEngine(on, trace);
    EXPECT_FALSE(a.events.empty());
    EXPECT_EQ(eventsText(a.events), eventsText(b.events));
}

// ---------------------------------------------------------------
// Injected ladder walks through the engine.
// ---------------------------------------------------------------

EngineConfig
injectedConfig(std::vector<SweeperInjection> plan)
{
    EngineConfig cfg;
    cfg.policy = PolicyKind::Incremental;
    cfg.pagesPerSlice = 8;
    cfg.backgroundSweeper = true;
    cfg.sweeperRetries = 2;
    cfg.sweeperPlan = std::move(plan);
    return cfg;
}

TEST(SweeperLadder, SlowEpisodeRecoversOnRetries)
{
    const workload::Trace trace = sweepTrace();
    // Two retry credits, two watchdog retries: recovers in-episode.
    const RunOutput out = runWithEngine(
        injectedConfig({{SweeperFaultKind::Slow, 0, 1, 2}}), trace);
    EXPECT_EQ(countKind(out.events, SweeperEventKind::StallDetected),
              1u);
    EXPECT_EQ(countKind(out.events, SweeperEventKind::Retry), 2u);
    EXPECT_EQ(
        countKind(out.events, SweeperEventKind::ReassignToAssist),
        0u);
    EXPECT_EQ(countKind(out.events, SweeperEventKind::Completed),
              countKind(out.events, SweeperEventKind::Dispatch));
}

TEST(SweeperLadder, StallWalksRetriesThenReassigns)
{
    const workload::Trace trace = sweepTrace();
    const RunOutput out = runWithEngine(
        injectedConfig({{SweeperFaultKind::Stall, 0, 1, 1}}), trace);
    EXPECT_EQ(countKind(out.events, SweeperEventKind::StallDetected),
              1u);
    EXPECT_EQ(countKind(out.events, SweeperEventKind::Retry), 2u);
    EXPECT_EQ(
        countKind(out.events, SweeperEventKind::ReassignToAssist),
        1u);
    EXPECT_EQ(countKind(out.events, SweeperEventKind::StwCatchup),
              0u);
}

TEST(SweeperLadder, SecondStrikeTriggersStwCatchup)
{
    const workload::Trace trace = sweepTrace();
    const RunOutput out = runWithEngine(
        injectedConfig({{SweeperFaultKind::Stall, 0, 1, 1},
                        {SweeperFaultKind::Stall, 0, 2, 1}}),
        trace);
    EXPECT_EQ(
        countKind(out.events, SweeperEventKind::ReassignToAssist),
        1u);
    EXPECT_EQ(countKind(out.events, SweeperEventKind::StwCatchup),
              1u);
    EXPECT_EQ(countKind(out.events, SweeperEventKind::Containment),
              0u);
    // The ladder is ordered: rung 1 strictly before rung 2.
    size_t reassign_at = 0, stw_at = 0;
    for (size_t i = 0; i < out.events.size(); ++i) {
        if (out.events[i].kind == SweeperEventKind::ReassignToAssist)
            reassign_at = i;
        if (out.events[i].kind == SweeperEventKind::StwCatchup)
            stw_at = i;
    }
    EXPECT_LT(reassign_at, stw_at);
}

TEST(SweeperLadder, CrashGoesStraightToTheLadder)
{
    const workload::Trace trace = sweepTrace();
    const RunOutput out = runWithEngine(
        injectedConfig({{SweeperFaultKind::Crash, 0, 1, 1}}), trace);
    EXPECT_EQ(countKind(out.events, SweeperEventKind::Crash), 1u);
    EXPECT_EQ(countKind(out.events, SweeperEventKind::Retry), 0u);
    EXPECT_EQ(
        countKind(out.events, SweeperEventKind::ReassignToAssist),
        1u);
}

/** Injected episodes must not perturb the modelled statistics: the
 *  epoch falls back to the very assist path the stats come from. */
TEST(SweeperLadder, FailedEpisodesKeepStatsBitIdentical)
{
    const workload::Trace trace = sweepTrace();
    EngineConfig off;
    off.policy = PolicyKind::Incremental;
    off.pagesPerSlice = 8;
    const RunOutput a = runWithEngine(off, trace);
    const RunOutput b = runWithEngine(
        injectedConfig({{SweeperFaultKind::Stall, 0, 1, 1},
                        {SweeperFaultKind::Crash, 0, 3, 1}}),
        trace);
    EXPECT_EQ(a.sweep.capsExamined, b.sweep.capsExamined);
    EXPECT_EQ(a.sweep.capsRevoked, b.sweep.capsRevoked);
    EXPECT_EQ(a.sweep.pagesSwept, b.sweep.pagesSwept);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.internalFrees, b.internalFrees);
}

// ---------------------------------------------------------------
// Containment through the TenantManager.
// ---------------------------------------------------------------

tenant::TenantConfig
smallTenant(const std::string &name)
{
    tenant::TenantConfig cfg;
    cfg.name = name;
    cfg.alloc.quarantineFraction = 0.05;
    cfg.alloc.minQuarantineBytes = 16 * KiB;
    cfg.alloc.dl.initialHeapBytes = 256 * KiB;
    cfg.alloc.dl.growthChunkBytes = 128 * KiB;
    return cfg;
}

TEST(SweeperContainment, ThirdStrikeRetiresOnlyTheVictim)
{
    tenant::TenantManagerConfig mgr_cfg;
    mgr_cfg.engine.backgroundSweeper = true;
    mgr_cfg.engine.sweeperRetries = 2;
    mgr_cfg.faultPlan.sweeper = {
        {SweeperFaultKind::Stall, 1, 1, 1},
        {SweeperFaultKind::Stall, 1, 2, 1},
        {SweeperFaultKind::Stall, 1, 3, 1}};
    tenant::TenantManager manager(mgr_cfg);
    manager.addTenant(smallTenant("survivor"), sweepTrace(21));
    manager.addTenant(smallTenant("victim"), sweepTrace(22));
    const tenant::MultiTenantResult result = manager.run();

    // Rung counts: 1 reassign, 1 catch-up, then containment.
    EXPECT_EQ(result.sweeperStalls, 3u);
    EXPECT_EQ(result.sweeperRetries, 6u);
    EXPECT_EQ(result.sweeperReassigns, 1u);
    EXPECT_EQ(result.sweeperStwCatchups, 1u);
    EXPECT_EQ(result.sweeperContainments, 1u);

    // The victim was contained with an organic sweeper-failure
    // fault; the survivor finished untouched.
    EXPECT_EQ(result.faultsContained, 1u);
    ASSERT_EQ(result.faults.size(), 1u);
    EXPECT_EQ(result.faults[0].kind, HeapFaultKind::SweeperFailure);
    EXPECT_EQ(result.faults[0].tenantId, 1u);
    EXPECT_FALSE(result.faults[0].injected);
    ASSERT_EQ(result.tenants.size(), 2u);
    for (const tenant::TenantResult &t : result.tenants) {
        if (t.tenantId == 1) {
            EXPECT_TRUE(t.faulted);
            EXPECT_TRUE(t.retiredMidRun);
            EXPECT_EQ(t.faultKind, HeapFaultKind::SweeperFailure);
        } else {
            EXPECT_FALSE(t.faulted);
            EXPECT_EQ(t.opsApplied, t.opsTotal);
        }
    }
}

} // namespace
} // namespace revoke
} // namespace cherivoke

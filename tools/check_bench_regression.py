#!/usr/bin/env python3
"""Diff the deterministic fields of fresh BENCH_*.json files against a
previous run's artifacts.

Usage:
    check_bench_regression.py BASELINE_DIR FRESH_DIR [NAME...]
    check_bench_regression.py [--tolerance REL] BASELINE_DIR FRESH_DIR
    check_bench_regression.py --self-test

BASELINE_DIR holds the previous run's BENCH_*.json files (any nesting
— artifact downloads place each file in its own subdirectory); the
newest match wins when a name appears more than once. FRESH_DIR holds
this run's files. NAMEs limit the comparison (e.g. "BENCH_tenant");
default is every BENCH_*.json present in FRESH_DIR.

Wall-clock-derived fields are stripped from both sides before
comparing via the declarative STRIP_PATTERNS list below; every
remaining field is deterministic by the benches' own two-pass gates,
so any difference is a real behaviour change, not noise. Every
pattern is "scheme:argument" with schemes key/substr/suffix; an
unknown scheme is a hard error, never a pattern that silently
matches nothing.

--tolerance REL compares numeric leaves with the given relative
tolerance instead of exact equality (default 0 = exact: the
deterministic fields are gated byte-identical by the benches, so
slack is only for ad-hoc comparisons).

--self-test runs the built-in unittest suite (registered with ctest
as test_check_bench_regression).

Exit status: 0 = no drift (or nothing to compare), 1 = drift,
2 = usage error. A missing baseline for a fresh file is a skip, not a
failure, so the first run after adding a bench passes.
"""

import json
import pathlib
import sys

# Declarative wall-clock strip-list: "scheme:argument" per entry.
#   key:NAME     drop fields named exactly NAME
#   substr:TEXT  drop fields whose name contains TEXT
#   suffix:TEXT  drop fields whose name ends with TEXT
STRIP_PATTERNS = [
    "key:sec_per_iter",
    "key:hw_concurrency",
    "substr:wall",
    "substr:speedup",
    "suffix:_sec",      # wall_sec, containment_sec...
    "suffix:_per_sec",  # ops_per_sec, pages_per_sec...
    "suffix:_rate",     # scan_rate, raw_span_rate
    "suffix:_ms",       # elapsed_ms (BENCH_adaptive.json)
]

KNOWN_SCHEMES = ("key", "substr", "suffix")


def compile_strip_list(patterns):
    """Validate the strip-list and return a key -> bool predicate.

    Raises ValueError on an entry with a missing or unknown scheme —
    a typo'd pattern must fail loudly, not silently match nothing.
    """
    compiled = []
    for pattern in patterns:
        scheme, sep, arg = pattern.partition(":")
        if not sep or scheme not in KNOWN_SCHEMES or not arg:
            raise ValueError(
                "bad strip-list pattern %r: expected scheme:argument"
                " with scheme in %s" % (pattern, list(KNOWN_SCHEMES))
            )
        compiled.append((scheme, arg))

    def is_volatile(key):
        for scheme, arg in compiled:
            if scheme == "key" and key == arg:
                return True
            if scheme == "substr" and arg in key:
                return True
            if scheme == "suffix" and key.endswith(arg):
                return True
        return False

    return is_volatile


def strip_volatile(node, is_volatile):
    """Recursively drop volatile keys from a decoded JSON value."""
    if isinstance(node, dict):
        return {
            k: strip_volatile(v, is_volatile)
            for k, v in node.items()
            if not is_volatile(k)
        }
    if isinstance(node, list):
        return [strip_volatile(v, is_volatile) for v in node]
    return node


def numbers_match(old, new, tolerance):
    """Relative-tolerance comparison for numeric leaves."""
    if tolerance <= 0:
        return old == new
    scale = max(abs(old), abs(new))
    return abs(old - new) <= tolerance * max(scale, 1.0)


def is_number(value):
    # bool is an int subclass; True/False must compare exactly.
    return isinstance(value, (int, float)) and not isinstance(
        value, bool
    )


def diff(path, old, new, out, tolerance=0.0):
    """Collect human-readable differences between two stripped trees."""
    if is_number(old) and is_number(new):
        if not numbers_match(old, new, tolerance):
            out.append("  %s: %r -> %r" % (path, old, new))
        return
    if type(old) is not type(new):
        out.append("  %s: type %s -> %s" % (
            path, type(old).__name__, type(new).__name__))
        return
    if isinstance(old, dict):
        for key in sorted(set(old) | set(new)):
            sub = "%s.%s" % (path, key) if path else key
            if key not in old:
                out.append("  %s: added" % sub)
            elif key not in new:
                out.append("  %s: removed" % sub)
            else:
                diff(sub, old[key], new[key], out, tolerance)
    elif isinstance(old, list):
        if len(old) != len(new):
            out.append("  %s: length %d -> %d" % (
                path, len(old), len(new)))
        for i, (a, b) in enumerate(zip(old, new)):
            diff("%s[%d]" % (path, i), a, b, out, tolerance)
    elif old != new:
        out.append("  %s: %r -> %r" % (path, old, new))


def find_baseline(baseline_dir, name):
    """Newest file called `name` anywhere under the baseline dir."""
    matches = sorted(
        baseline_dir.rglob(name),
        key=lambda p: p.stat().st_mtime,
        reverse=True,
    )
    return matches[0] if matches else None


def compare_dirs(baseline_dir, fresh_dir, names, tolerance=0.0):
    """Compare the named artifacts; returns True when any drifted."""
    is_volatile = compile_strip_list(STRIP_PATTERNS)
    drift = False
    for name in names:
        fresh_path = fresh_dir / name
        if not fresh_path.is_file():
            print("%-20s SKIP (not produced by this run)" % name)
            continue
        base_path = find_baseline(baseline_dir, name)
        if base_path is None:
            print("%-20s SKIP (no baseline artifact)" % name)
            continue
        try:
            old = strip_volatile(
                json.loads(base_path.read_text()), is_volatile)
            new = strip_volatile(
                json.loads(fresh_path.read_text()), is_volatile)
        except (OSError, ValueError) as err:
            print("%-20s SKIP (unreadable: %s)" % (name, err))
            continue
        lines = []
        diff("", old, new, lines, tolerance)
        if lines:
            drift = True
            print("%-20s DRIFT (%d deterministic fields differ):"
                  % (name, len(lines)))
            for line in lines[:50]:
                print(line)
            if len(lines) > 50:
                print("  ... %d more" % (len(lines) - 50))
        else:
            print("%-20s OK" % name)
    return drift


def self_test():
    """The built-in unittest suite (ctest: test_check_bench_regression)."""
    import tempfile
    import unittest

    class StripListTest(unittest.TestCase):
        def test_known_schemes_match(self):
            vol = compile_strip_list(
                ["key:exact", "substr:wall", "suffix:_sec"])
            self.assertTrue(vol("exact"))
            self.assertFalse(vol("exact_not"))
            self.assertTrue(vol("total_wall_time"))
            self.assertTrue(vol("warmup_sec"))
            self.assertFalse(vol("seconds"))
            self.assertFalse(vol("caps_revoked"))

        def test_unknown_scheme_rejected(self):
            for bad in ("regex:.*_sec", "prefix", ":arg", "key:",
                        "glob:*_sec"):
                with self.assertRaises(ValueError):
                    compile_strip_list([bad])

        def test_default_patterns_compile(self):
            vol = compile_strip_list(STRIP_PATTERNS)
            self.assertTrue(vol("wall_sec"))
            self.assertTrue(vol("ops_per_sec"))
            self.assertTrue(vol("scan_rate"))
            self.assertTrue(vol("hw_concurrency"))
            self.assertTrue(vol("elapsed_ms"))
            self.assertFalse(vol("caps_examined"))
            # Deterministic fields the adaptive gate emits must
            # never be stripped as noise.
            self.assertFalse(vol("adaptive_ok"))
            self.assertFalse(vol("best_static"))

        def test_adaptive_artifact_shape(self):
            # BENCH_adaptive.json: elapsed_ms is the only volatile
            # field; the gate rows and verdicts survive the strip.
            vol = compile_strip_list(STRIP_PATTERNS)
            artifact = {
                "bench": "policy_sweep",
                "rows": [{"benchmark": "mcf", "adaptive": 1.01,
                          "best_static": 1.01}],
                "adaptive_ok": True,
                "deterministic": True,
                "elapsed_ms": 1234.5,
            }
            stripped = strip_volatile(artifact, vol)
            self.assertNotIn("elapsed_ms", stripped)
            self.assertEqual(
                stripped["rows"],
                [{"benchmark": "mcf", "adaptive": 1.01,
                  "best_static": 1.01}])
            self.assertTrue(stripped["adaptive_ok"])

        def test_strip_recurses(self):
            vol = compile_strip_list(["suffix:_sec"])
            tree = {"a": 1,
                    "wall_sec": 2.5,
                    "nested": [{"x": 1, "warm_sec": 9}]}
            self.assertEqual(
                strip_volatile(tree, vol),
                {"a": 1, "nested": [{"x": 1}]})

    class DiffTest(unittest.TestCase):
        def lines(self, old, new, tolerance=0.0):
            out = []
            diff("", old, new, out, tolerance)
            return out

        def test_identical_trees_are_clean(self):
            tree = {"a": [1, 2, {"b": "x"}], "c": 1.5}
            self.assertEqual(self.lines(tree, dict(tree)), [])

        def test_added_and_removed_keys_reported(self):
            out = self.lines({"a": 1, "gone": 2},
                             {"a": 1, "fresh": 3})
            self.assertIn("  fresh: added", out)
            self.assertIn("  gone: removed", out)

        def test_changed_value_reported_with_path(self):
            out = self.lines({"outer": {"inner": [1, 2]}},
                             {"outer": {"inner": [1, 3]}})
            self.assertEqual(out, ["  outer.inner[1]: 2 -> 3"])

        def test_list_length_change_reported(self):
            out = self.lines({"v": [1, 2]}, {"v": [1]})
            self.assertIn("  v: length 2 -> 1", out)

        def test_type_change_reported(self):
            out = self.lines({"v": "1"}, {"v": 1})
            self.assertEqual(len(out), 1)
            self.assertIn("type", out[0])

        def test_exact_by_default(self):
            self.assertEqual(
                self.lines({"v": 1.0}, {"v": 1.0 + 1e-12}),
                ["  v: 1.0 -> 1.000000000001"])

        def test_tolerance_accepts_small_drift(self):
            self.assertEqual(
                self.lines({"v": 100.0}, {"v": 100.5},
                           tolerance=1e-2), [])

        def test_tolerance_still_catches_large_drift(self):
            out = self.lines({"v": 100.0}, {"v": 120.0},
                             tolerance=1e-2)
            self.assertEqual(len(out), 1)

        def test_bools_always_exact(self):
            out = self.lines({"ok": True}, {"ok": False},
                             tolerance=1.0)
            self.assertEqual(len(out), 1)

    class CompareDirsTest(unittest.TestCase):
        def test_end_to_end_drift_and_skip(self):
            with tempfile.TemporaryDirectory() as tmp:
                root = pathlib.Path(tmp)
                (root / "base" / "sub").mkdir(parents=True)
                (root / "fresh").mkdir()
                (root / "base" / "sub" / "BENCH_x.json").write_text(
                    '{"caps": 5, "wall_sec": 1.0}')
                (root / "fresh" / "BENCH_x.json").write_text(
                    '{"caps": 5, "wall_sec": 9.0}')
                self.assertFalse(compare_dirs(
                    root / "base", root / "fresh", ["BENCH_x.json"]))
                (root / "fresh" / "BENCH_x.json").write_text(
                    '{"caps": 6, "wall_sec": 1.0}')
                self.assertTrue(compare_dirs(
                    root / "base", root / "fresh", ["BENCH_x.json"]))
                # No baseline: a skip, not a failure.
                self.assertFalse(compare_dirs(
                    root / "base", root / "fresh", ["BENCH_y.json"]))

    suite = unittest.TestSuite()
    for case in (StripListTest, DiffTest, CompareDirsTest):
        suite.addTests(
            unittest.TestLoader().loadTestsFromTestCase(case))
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


def main(argv):
    argv = list(argv)
    if "--self-test" in argv:
        return self_test()
    tolerance = 0.0
    if "--tolerance" in argv:
        at = argv.index("--tolerance")
        try:
            tolerance = float(argv[at + 1])
        except (IndexError, ValueError):
            sys.stderr.write("--tolerance needs a number\n")
            return 2
        del argv[at:at + 2]
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    baseline_dir = pathlib.Path(argv[1])
    fresh_dir = pathlib.Path(argv[2])
    names = [n if n.endswith(".json") else n + ".json"
             for n in argv[3:]]
    if not names:
        names = sorted(p.name for p in fresh_dir.glob("BENCH_*.json"))
    if not names:
        print("no BENCH_*.json in %s; nothing to compare" % fresh_dir)
        return 0

    if compare_dirs(baseline_dir, fresh_dir, names, tolerance):
        print("deterministic bench fields drifted from the previous "
              "run; if intended, this run's artifacts become the new "
              "baseline once merged")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

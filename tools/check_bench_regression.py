#!/usr/bin/env python3
"""Diff the deterministic fields of fresh BENCH_*.json files against a
previous run's artifacts.

Usage:
    check_bench_regression.py BASELINE_DIR FRESH_DIR [NAME...]

BASELINE_DIR holds the previous run's BENCH_*.json files (any nesting
— artifact downloads place each file in its own subdirectory); the
newest match wins when a name appears more than once. FRESH_DIR holds
this run's files. NAMEs limit the comparison (e.g. "BENCH_tenant");
default is every BENCH_*.json present in FRESH_DIR.

Wall-clock-derived fields (wall_sec, *_per_sec, scan rates, speedups,
hw_concurrency) are stripped from both sides before comparing; every
remaining field is deterministic by the benches' own two-pass gates,
so any difference is a real behaviour change, not noise.

Exit status: 0 = no drift (or nothing to compare), 1 = drift,
2 = usage error. A missing baseline for a fresh file is a skip, not a
failure, so the first run after adding a bench passes.
"""

import json
import pathlib
import sys

VOLATILE_KEYS = {"sec_per_iter", "hw_concurrency"}


def is_volatile(key):
    """True for wall-clock-derived (run-to-run noisy) JSON keys."""
    return (
        key in VOLATILE_KEYS
        or "wall" in key
        or "speedup" in key
        or key.endswith("_sec")      # wall_sec, containment_sec...
        or key.endswith("_per_sec")  # ops_per_sec, pages_per_sec...
        or key.endswith("_rate")     # scan_rate, raw_span_rate
    )


def strip_volatile(node):
    """Recursively drop volatile keys from a decoded JSON value."""
    if isinstance(node, dict):
        return {
            k: strip_volatile(v)
            for k, v in node.items()
            if not is_volatile(k)
        }
    if isinstance(node, list):
        return [strip_volatile(v) for v in node]
    return node


def diff(path, old, new, out):
    """Collect human-readable differences between two stripped trees."""
    if type(old) is not type(new):
        out.append("  %s: type %s -> %s" % (
            path, type(old).__name__, type(new).__name__))
        return
    if isinstance(old, dict):
        for key in sorted(set(old) | set(new)):
            sub = "%s.%s" % (path, key) if path else key
            if key not in old:
                out.append("  %s: added" % sub)
            elif key not in new:
                out.append("  %s: removed" % sub)
            else:
                diff(sub, old[key], new[key], out)
    elif isinstance(old, list):
        if len(old) != len(new):
            out.append("  %s: length %d -> %d" % (
                path, len(old), len(new)))
        for i, (a, b) in enumerate(zip(old, new)):
            diff("%s[%d]" % (path, i), a, b, out)
    elif old != new:
        out.append("  %s: %r -> %r" % (path, old, new))


def find_baseline(baseline_dir, name):
    """Newest file called `name` anywhere under the baseline dir."""
    matches = sorted(
        baseline_dir.rglob(name),
        key=lambda p: p.stat().st_mtime,
        reverse=True,
    )
    return matches[0] if matches else None


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    baseline_dir = pathlib.Path(argv[1])
    fresh_dir = pathlib.Path(argv[2])
    names = [n if n.endswith(".json") else n + ".json"
             for n in argv[3:]]
    if not names:
        names = sorted(p.name for p in fresh_dir.glob("BENCH_*.json"))
    if not names:
        print("no BENCH_*.json in %s; nothing to compare" % fresh_dir)
        return 0

    drift = False
    for name in names:
        fresh_path = fresh_dir / name
        if not fresh_path.is_file():
            print("%-20s SKIP (not produced by this run)" % name)
            continue
        base_path = find_baseline(baseline_dir, name)
        if base_path is None:
            print("%-20s SKIP (no baseline artifact)" % name)
            continue
        try:
            old = strip_volatile(json.loads(base_path.read_text()))
            new = strip_volatile(json.loads(fresh_path.read_text()))
        except (OSError, ValueError) as err:
            print("%-20s SKIP (unreadable: %s)" % (name, err))
            continue
        lines = []
        diff("", old, new, lines)
        if lines:
            drift = True
            print("%-20s DRIFT (%d deterministic fields differ):"
                  % (name, len(lines)))
            for line in lines[:50]:
                print(line)
            if len(lines) > 50:
                print("  ... %d more" % (len(lines) - 50))
        else:
            print("%-20s OK" % name)

    if drift:
        print("deterministic bench fields drifted from the previous "
              "run; if intended, this run's artifacts become the new "
              "baseline once merged")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

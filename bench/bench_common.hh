/**
 * @file
 * Shared helpers for the benchmark harness: the table 1 system
 * banner and default experiment settings used across figures.
 */

#ifndef CHERIVOKE_BENCH_BENCH_COMMON_HH
#define CHERIVOKE_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>

#include "support/logging.hh"
#include "sim/experiment.hh"

namespace cherivoke {
namespace bench {

/** Print the table 1 system banner every bench leads with. */
inline void
printSystems(const char *title)
{
    std::printf("==============================================\n");
    std::printf("%s\n", title);
    std::printf("==============================================\n");
    std::printf("Systems (paper table 1):\n");
    std::printf("  x86-64 : 2.9 GHz OoO, AVX2, 8 MiB LLC, "
                "DDR4 19405 MiB/s read\n");
    std::printf("  CHERI  : 100 MHz FPGA, in-order, 256 KiB LLC, "
                "DDR2\n\n");
}

/**
 * Default experiment configuration used by the figure benches.
 *
 * Every figure driver honours three environment overrides so the
 * whole suite can be reproduced under any policy × thread-count ×
 * paint-shard combination of the revocation engine:
 *   CHERIVOKE_POLICY       = stw | stop-the-world | incremental |
 *                            concurrent
 *   CHERIVOKE_THREADS      = sweep worker count (default 1)
 *   CHERIVOKE_PAINT_SHARDS = concurrent painter threads (default 1)
 */
inline sim::ExperimentConfig
defaultConfig()
{
    sim::ExperimentConfig cfg;
    cfg.quarantineFraction = 0.25;
    cfg.kernel = revoke::SweepKernel::Vector;
    cfg.scale = 1.0 / 128;
    cfg.durationSec = 0.4;
    cfg.seed = 42;
    if (const char *policy = std::getenv("CHERIVOKE_POLICY")) {
        if (!revoke::parsePolicy(policy, cfg.policy))
            fatal("unknown CHERIVOKE_POLICY '%s'", policy);
    }
    if (const char *threads = std::getenv("CHERIVOKE_THREADS")) {
        const long n = std::strtol(threads, nullptr, 10);
        if (n < 1)
            fatal("bad CHERIVOKE_THREADS '%s'", threads);
        cfg.threads = static_cast<unsigned>(n);
    }
    if (const char *shards =
            std::getenv("CHERIVOKE_PAINT_SHARDS")) {
        const long n = std::strtol(shards, nullptr, 10);
        if (n < 1)
            fatal("bad CHERIVOKE_PAINT_SHARDS '%s'", shards);
        cfg.paintShards = static_cast<unsigned>(n);
    }
    return cfg;
}

} // namespace bench
} // namespace cherivoke

#endif // CHERIVOKE_BENCH_BENCH_COMMON_HH

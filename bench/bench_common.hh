/**
 * @file
 * Shared helpers for the benchmark harness: the table 1 system
 * banner and default experiment settings used across figures.
 */

#ifndef CHERIVOKE_BENCH_BENCH_COMMON_HH
#define CHERIVOKE_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>

#include "support/env.hh"
#include "support/logging.hh"
#include "sim/experiment.hh"

namespace cherivoke {
namespace bench {

/** Print the table 1 system banner every bench leads with. */
inline void
printSystems(const char *title)
{
    std::printf("==============================================\n");
    std::printf("%s\n", title);
    std::printf("==============================================\n");
    std::printf("Systems (paper table 1):\n");
    std::printf("  x86-64 : 2.9 GHz OoO, AVX2, 8 MiB LLC, "
                "DDR4 19405 MiB/s read\n");
    std::printf("  CHERI  : 100 MHz FPGA, in-order, 256 KiB LLC, "
                "DDR2\n\n");
}

/**
 * Default experiment configuration used by the figure benches.
 *
 * Every figure driver honours the policy/threads/paint-shard
 * overrides so the whole suite can be reproduced under any engine
 * configuration; the tenant knobs configure drivers built on
 * sim::runMultiTenantBenchmark (bench/tenant_scale):
 *   CHERIVOKE_POLICY         = stw | stop-the-world | incremental |
 *                              concurrent | adaptive
 *   CHERIVOKE_THREADS        = sweep worker count (default 1)
 *   CHERIVOKE_PAINT_SHARDS   = concurrent painter threads (default 1)
 *   CHERIVOKE_TENANTS        = co-resident tenant count (default 1)
 *   CHERIVOKE_TENANT_SCOPE   = per-tenant | global
 *   CHERIVOKE_TENANT_HEAP_MIB= per-tenant live-heap target override
 *   CHERIVOKE_TENANT_WEIGHTS = scheduling shares, e.g. "2,1,1"
 *   CHERIVOKE_TENANT_POLICIES= per-tenant revocation policies, one
 *                              per tenant, e.g. "concurrent,stw"
 *                              (mixed policies share one engine)
 *   CHERIVOKE_TENANT_CHURN   = mid-run spawn->retire cycles of
 *                              short-lived extra tenants (default 0)
 *   CHERIVOKE_MUTATOR_THREADS= mutator threads per tenant (default
 *                              1 = the classic serial front-end)
 *   CHERIVOKE_REMOTE_BATCH   = remote frees per batch message on
 *                              the MPSC queues (default 32)
 *   CHERIVOKE_FAULT_PLAN     = chaos schedule `kind@tenant:op[,...]`
 *                              (kinds: double-free, wild-free,
 *                              header-corruption, oom,
 *                              codec-corruption); default none
 *   CHERIVOKE_FAULT_SEED     = seed a generated plan (one injection
 *                              per kind) instead; 0 = off. The
 *                              explicit plan wins when both are set
 *   CHERIVOKE_PAGE_BUDGET_MIB= soft resident-page budget over the
 *                              shared tenant memory, in MiB
 *                              (escalation ladder; default 0 = off)
 *   CHERIVOKE_BACKEND        = revocation backend: sweep | color |
 *                              objid (how freed memory becomes safe
 *                              to reuse; default sweep)
 *   CHERIVOKE_TENANT_BACKENDS= per-tenant backends, one per tenant,
 *                              e.g. "sweep,color,objid" (mixed
 *                              backends share one engine)
 *   CHERIVOKE_COLORS         = color-pool size of the colored-
 *                              capability backend (1..63, default 16)
 *   CHERIVOKE_ALLOCS_PER_COLOR = allocations before a color seals
 *                              (default 256)
 *   CHERIVOKE_RECYCLE_FRACTION = retired-color fraction that
 *                              triggers a recycling scan (default 0.5)
 *   CHERIVOKE_ID_COMPACT     = retired object-IDs that trigger a
 *                              table-compaction epoch (default 4096)
 *   CHERIVOKE_BG_SWEEPER     = 1 runs a true background sweeper
 *                              thread per engine racing the mutators
 *                              (modelled statistics stay
 *                              bit-identical; default 0)
 *   CHERIVOKE_EPOCH_DEADLINE_MS = explicit per-epoch sweeper
 *                              deadline in ms, > 0; leave unset to
 *                              derive it from the sweep-cost model
 *   CHERIVOKE_SWEEPER_RETRIES= bounded watchdog retries with
 *                              exponential backoff before the
 *                              degradation ladder fires (default 2)
 *
 * Parsing is strict (support/env.hh): a set-but-malformed value such
 * as CHERIVOKE_THREADS=abc fails the run with a clear error instead
 * of silently running the default configuration. Every query lands
 * in the env-knob registry; printKnobs() dumps the effective set.
 */
inline sim::ExperimentConfig
defaultConfig()
{
    // First: reject misspelled CHERIVOKE_* variables outright, with
    // a nearest-knob suggestion. A typo'd knob is never queried, so
    // strict per-knob parsing alone cannot catch it.
    validateEnvironment();
    sim::ExperimentConfig cfg;
    cfg.quarantineFraction = 0.25;
    cfg.kernel = revoke::SweepKernel::Vector;
    cfg.scale = 1.0 / 128;
    cfg.durationSec = 0.4;
    cfg.seed = 42;
    const std::string policy =
        envStr("CHERIVOKE_POLICY", revoke::policyName(cfg.policy));
    if (!revoke::parsePolicy(policy, cfg.policy))
        fatal("CHERIVOKE_POLICY: unknown policy '%s'",
              policy.c_str());
    cfg.threads = static_cast<unsigned>(
        envI64("CHERIVOKE_THREADS", cfg.threads));
    cfg.paintShards = static_cast<unsigned>(
        envI64("CHERIVOKE_PAINT_SHARDS", cfg.paintShards));
    cfg.tenants = static_cast<unsigned>(
        envI64("CHERIVOKE_TENANTS", cfg.tenants));
    const std::string scope = envStr(
        "CHERIVOKE_TENANT_SCOPE", tenant::scopeName(cfg.tenantScope));
    if (!tenant::parseScope(scope, cfg.tenantScope))
        fatal("CHERIVOKE_TENANT_SCOPE: unknown scope '%s' "
              "(expected per-tenant or global)",
              scope.c_str());
    cfg.tenantHeapMiB =
        envF64("CHERIVOKE_TENANT_HEAP_MIB", cfg.tenantHeapMiB, 0);
    cfg.tenantWeights = envF64List("CHERIVOKE_TENANT_WEIGHTS");
    if (!cfg.tenantWeights.empty() &&
        cfg.tenantWeights.size() != cfg.tenants)
        fatal("CHERIVOKE_TENANT_WEIGHTS: %zu weights for %u tenants",
              cfg.tenantWeights.size(), cfg.tenants);
    for (const std::string &item :
         envStrList("CHERIVOKE_TENANT_POLICIES")) {
        revoke::PolicyKind kind;
        if (!revoke::parsePolicy(item, kind))
            fatal("CHERIVOKE_TENANT_POLICIES: unknown policy '%s'",
                  item.c_str());
        cfg.tenantPolicies.push_back(kind);
    }
    if (!cfg.tenantPolicies.empty() &&
        cfg.tenantPolicies.size() != cfg.tenants)
        fatal("CHERIVOKE_TENANT_POLICIES: %zu policies for %u "
              "tenants",
              cfg.tenantPolicies.size(), cfg.tenants);
    const std::string backend = envStr(
        "CHERIVOKE_BACKEND", revoke::backendName(cfg.backend));
    if (!revoke::parseBackend(backend, cfg.backend))
        fatal("CHERIVOKE_BACKEND: unknown backend '%s' (expected "
              "sweep, color, or objid)",
              backend.c_str());
    for (const std::string &item :
         envStrList("CHERIVOKE_TENANT_BACKENDS")) {
        revoke::BackendKind kind;
        if (!revoke::parseBackend(item, kind))
            fatal("CHERIVOKE_TENANT_BACKENDS: unknown backend '%s'",
                  item.c_str());
        cfg.tenantBackends.push_back(kind);
    }
    if (!cfg.tenantBackends.empty() &&
        cfg.tenantBackends.size() != cfg.tenants)
        fatal("CHERIVOKE_TENANT_BACKENDS: %zu backends for %u "
              "tenants",
              cfg.tenantBackends.size(), cfg.tenants);
    cfg.backendConfig.colors = static_cast<unsigned>(
        envI64("CHERIVOKE_COLORS", cfg.backendConfig.colors));
    cfg.backendConfig.allocsPerColor = static_cast<uint64_t>(
        envI64("CHERIVOKE_ALLOCS_PER_COLOR",
               static_cast<int64_t>(
                   cfg.backendConfig.allocsPerColor)));
    cfg.backendConfig.recycleFraction =
        envF64("CHERIVOKE_RECYCLE_FRACTION",
               cfg.backendConfig.recycleFraction);
    cfg.backendConfig.idCompactRetired = static_cast<uint64_t>(
        envI64("CHERIVOKE_ID_COMPACT",
               static_cast<int64_t>(
                   cfg.backendConfig.idCompactRetired)));
    cfg.tenantChurn = static_cast<unsigned>(
        envI64("CHERIVOKE_TENANT_CHURN", cfg.tenantChurn, 0));
    cfg.mutatorThreads = static_cast<unsigned>(
        envI64("CHERIVOKE_MUTATOR_THREADS", cfg.mutatorThreads));
    cfg.remoteBatch = static_cast<unsigned>(
        envI64("CHERIVOKE_REMOTE_BATCH", cfg.remoteBatch));
    const std::string plan = envStr("CHERIVOKE_FAULT_PLAN", "");
    if (!plan.empty()) {
        parseFaultPlan(plan); // strict: reject malformed text here
        cfg.faultPlanText = plan;
    }
    cfg.faultSeed = static_cast<uint64_t>(
        envI64("CHERIVOKE_FAULT_SEED", 0, 0));
    cfg.pageBudgetMiB =
        envF64("CHERIVOKE_PAGE_BUDGET_MIB", cfg.pageBudgetMiB, 0);
    cfg.bgSweeper = envI64("CHERIVOKE_BG_SWEEPER", 0, 0) != 0;
    cfg.epochDeadlineMs = envF64("CHERIVOKE_EPOCH_DEADLINE_MS",
                                 cfg.epochDeadlineMs, 0);
    cfg.sweeperRetries = static_cast<unsigned>(
        envI64("CHERIVOKE_SWEEPER_RETRIES", cfg.sweeperRetries, 0));
    return cfg;
}

/**
 * Print the effective knob set — every CHERIVOKE_* variable this
 * process has queried, with the value it actually ran under — to
 * stderr, so figure data on stdout stays byte-stable across
 * default and configured runs. Each bench calls this once, after
 * its configuration is fully parsed.
 */
inline void
printKnobs()
{
    announceEnvKnobs();
}

} // namespace bench
} // namespace cherivoke

#endif // CHERIVOKE_BENCH_BENCH_COMMON_HH

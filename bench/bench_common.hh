/**
 * @file
 * Shared helpers for the benchmark harness: the table 1 system
 * banner and default experiment settings used across figures.
 */

#ifndef CHERIVOKE_BENCH_BENCH_COMMON_HH
#define CHERIVOKE_BENCH_BENCH_COMMON_HH

#include <cstdio>

#include "sim/experiment.hh"

namespace cherivoke {
namespace bench {

/** Print the table 1 system banner every bench leads with. */
inline void
printSystems(const char *title)
{
    std::printf("==============================================\n");
    std::printf("%s\n", title);
    std::printf("==============================================\n");
    std::printf("Systems (paper table 1):\n");
    std::printf("  x86-64 : 2.9 GHz OoO, AVX2, 8 MiB LLC, "
                "DDR4 19405 MiB/s read\n");
    std::printf("  CHERI  : 100 MHz FPGA, in-order, 256 KiB LLC, "
                "DDR2\n\n");
}

/** Default experiment configuration used by the figure benches. */
inline sim::ExperimentConfig
defaultConfig()
{
    sim::ExperimentConfig cfg;
    cfg.quarantineFraction = 0.25;
    cfg.kernel = revoke::SweepKernel::Vector;
    cfg.scale = 1.0 / 128;
    cfg.durationSec = 0.4;
    cfg.seed = 42;
    return cfg;
}

} // namespace bench
} // namespace cherivoke

#endif // CHERIVOKE_BENCH_BENCH_COMMON_HH

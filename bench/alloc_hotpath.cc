/**
 * @file
 * Mutator-side allocator/quarantine hot-path throughput bench: how
 * fast do the *simulated program's* malloc and free run, independent
 * of the modelled cycle counts? The sweep-side twin is
 * bench/sweep_hotpath; this bench covers the other half of the
 * CHERIvoke cost story — the paper's premise is that temporal safety
 * costs live in the sweep, so the mutator path must stay cheap even
 * at PICASSO scale (millions of live allocations).
 *
 * Phases, all deterministic (fixed RNG seed):
 *  - ramp: malloc LIVE allocations from an empty heap
 *    (-> malloc ops/s at a growing heap);
 *  - free burst: free the oldest half FIFO, which maximises §5.2 run
 *    aggregation; sweeps that trigger are timed and subtracted
 *    (-> pure quarantine add rate);
 *  - churn: random-victim malloc/free pairs across several sweep
 *    epochs, including sweep time (-> sustained mutator ops/s, the
 *    figure that exercises takeFromBins against populated bins);
 *  - tenant: the bench/tenant_scale mutator loop (8 tenants, the
 *    aggregate-allocation target) timed wall-clock
 *    (-> trace ops/s through the full sim + tenant stack).
 *
 * Correctness gates (any failure exits non-zero): validateHeap()
 * after every phase — which also asserts bin-bitmap/bin-list
 * consistency and the raw-span tag-invalidation contract — plus
 * quarantine byte accounting and post-sweep reuse.
 *
 * Results go to stdout and BENCH_alloc.json (trajectory tracking,
 * uploaded by CI next to BENCH_sweep.json / BENCH_tenant.json).
 *
 * Environment (strict parsing):
 *   CHERIVOKE_ALLOC_LIVE        = live-allocation target (default
 *                                 1000000, the tenant_scale scale)
 *   CHERIVOKE_ALLOC_CHURN       = churn-phase op pairs (default
 *                                 LIVE/2)
 *   CHERIVOKE_TENANT_AGG_ALLOCS = tenant-phase aggregate target
 *                                 (default 1000000; 0 skips the
 *                                 tenant phase)
 *   CHERIVOKE_TENANT_MAX        = tenant count (default 8)
 */

#include <chrono>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "support/rng.hh"

using namespace cherivoke;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The tenant_scale slice profile (see bench/tenant_scale.cc). */
constexpr double kMeanAllocBytes = 128.0;
constexpr double kAggFreeRateMiBps = 64.0;

workload::BenchmarkProfile
sliceProfile(unsigned tenants, uint64_t agg_allocs)
{
    workload::BenchmarkProfile p;
    p.name = "tenant_slice";
    p.pagesWithPointers = 0.35;
    p.linePointerDensity = 0.06;
    p.temporalFragmentation = 0;
    const double agg_heap_bytes =
        static_cast<double>(agg_allocs) * kMeanAllocBytes * 1.10;
    p.liveHeapMiB = agg_heap_bytes / MiB / tenants;
    p.freeRateMiBps = kAggFreeRateMiBps / tenants;
    p.freesPerSec =
        kAggFreeRateMiBps * MiB / kMeanAllocBytes / tenants;
    p.appDramMiBps = 2000.0 / tenants;
    return p;
}

/** Run any due sweep to completion; returns the wall seconds it
 *  spent so mutator-phase timings can subtract it. */
double
sweepIfDue(alloc::CherivokeAllocator &heap, uint64_t &sweeps)
{
    if (!heap.needsSweep())
        return 0;
    const double t0 = now();
    heap.prepareSweep();
    heap.finishSweep();
    ++sweeps;
    return now() - t0;
}

} // namespace

int
main()
{
    const uint64_t live_target = static_cast<uint64_t>(
        envI64("CHERIVOKE_ALLOC_LIVE", 1000000));
    const uint64_t churn_pairs = static_cast<uint64_t>(
        envI64("CHERIVOKE_ALLOC_CHURN",
               static_cast<int64_t>(live_target / 2)));
    const uint64_t agg_allocs = static_cast<uint64_t>(
        envI64("CHERIVOKE_TENANT_AGG_ALLOCS", 1000000));
    const unsigned tenants = static_cast<unsigned>(
        envI64("CHERIVOKE_TENANT_MAX", 8));

    bench::printSystems(
        "Mutator allocator/quarantine hot-path throughput "
        "(bench/alloc_hotpath)");
    // Phase D runs under the common experiment knobs: pull them into
    // the registry now so the startup printout is the complete set.
    (void)bench::defaultConfig();
    bench::printKnobs();
    std::printf("live-allocation target: %llu\n\n",
                static_cast<unsigned long long>(live_target));

    bool ok = true;
    mem::AddressSpace space;
    alloc::CherivokeAllocator heap(space, alloc::CherivokeConfig{});
    Rng rng(99);
    std::deque<cap::Capability> live;

    // ---- Phase A: ramp — malloc ops/s on a growing heap ---------
    const double ramp0 = now();
    for (uint64_t i = 0; i < live_target; ++i)
        live.push_back(heap.malloc(rng.nextLogUniform(16, 512)));
    const double ramp_sec = now() - ramp0;
    const double malloc_ops =
        static_cast<double>(live_target) / ramp_sec;
    heap.dl().validateHeap();

    // ---- Phase B: FIFO free burst — quarantine add rate ---------
    const uint64_t burst = live.size() / 2;
    uint64_t sweeps = 0;
    double sweep_sec = 0;
    const double burst0 = now();
    for (uint64_t i = 0; i < burst; ++i) {
        heap.free(live.front());
        live.pop_front();
        sweep_sec += sweepIfDue(heap, sweeps);
    }
    const double burst_sec = now() - burst0 - sweep_sec;
    const double free_ops = static_cast<double>(burst) / burst_sec;
    heap.dl().validateHeap();
    if (heap.quarantinedBytes() >
        heap.liveBytes() + heap.footprintBytes()) {
        std::printf("FAILED: quarantine accounting out of range\n");
        ok = false;
    }

    // ---- Phase C: churn — sustained malloc+free incl. sweeps ----
    uint64_t churn_sweeps = 0;
    double churn_sweep_sec = 0;
    const double churn0 = now();
    for (uint64_t i = 0; i < churn_pairs; ++i) {
        const size_t victim = rng.nextBounded(live.size());
        heap.free(live[victim]);
        live[victim] = heap.malloc(rng.nextLogUniform(16, 512));
        churn_sweep_sec += sweepIfDue(heap, churn_sweeps);
    }
    const double churn_sec = now() - churn0;
    const double churn_ops =
        static_cast<double>(2 * churn_pairs) / churn_sec;
    heap.dl().validateHeap();
    if (churn_sweeps == 0 && churn_pairs >= live_target / 4) {
        std::printf("FAILED: churn phase never swept — the bench "
                    "is not exercising post-sweep reuse\n");
        ok = false;
    }

    const stats::MutatorPathSummary mutator =
        stats::summarizeMutatorPath(heap.dl().counters());

    // ---- Phase D: the tenant_scale mutator loop -----------------
    double tenant_wall = 0, tenant_ops_per_sec = 0;
    uint64_t tenant_ops = 0;
    if (agg_allocs > 0) {
        const workload::BenchmarkProfile profile =
            sliceProfile(tenants, agg_allocs);
        sim::ExperimentConfig cfg = bench::defaultConfig();
        cfg.tenants = tenants;
        cfg.tenantWeights.clear();
        cfg.tenantHeapMiB = 0;
        cfg.scale = 1.0;
        cfg.durationSec = 2.0;
        const std::vector<workload::Trace> traces =
            sim::synthesizeTenantTraces(profile, cfg);
        const double t0 = now();
        const sim::MultiTenantBenchResult r =
            sim::runMultiTenantBenchmark(
                profile, cfg, sim::MachineProfile::x86(), &traces);
        tenant_wall = now() - t0;
        tenant_ops = r.run.totalOps;
        tenant_ops_per_sec =
            static_cast<double>(tenant_ops) / tenant_wall;
        if (r.run.peakAggLiveAllocs < agg_allocs) {
            std::printf("FAILED: tenant phase peaked at %llu live "
                        "allocations, below the %llu target\n",
                        static_cast<unsigned long long>(
                            r.run.peakAggLiveAllocs),
                        static_cast<unsigned long long>(agg_allocs));
            ok = false;
        }
    }

    // ---- Report -------------------------------------------------
    stats::TextTable table({"phase", "ops", "wall s", "Mops/s"});
    table.addRow({"malloc ramp",
                  std::to_string(live_target),
                  stats::TextTable::num(ramp_sec, 2),
                  stats::TextTable::num(malloc_ops / 1e6, 3)});
    table.addRow({"free burst (quarantine add)",
                  std::to_string(burst),
                  stats::TextTable::num(burst_sec, 2),
                  stats::TextTable::num(free_ops / 1e6, 3)});
    table.addRow({"churn (malloc+free+sweeps)",
                  std::to_string(2 * churn_pairs),
                  stats::TextTable::num(churn_sec, 2),
                  stats::TextTable::num(churn_ops / 1e6, 3)});
    if (agg_allocs > 0) {
        table.addRow({"tenant_scale mutator",
                      std::to_string(tenant_ops),
                      stats::TextTable::num(tenant_wall, 2),
                      stats::TextTable::num(
                          tenant_ops_per_sec / 1e6, 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s\n", mutator.render().c_str());
    std::printf("sweeps during free burst: %llu (excluded from its "
                "rate), during churn: %llu (%.2f s, included)\n\n",
                static_cast<unsigned long long>(sweeps),
                static_cast<unsigned long long>(churn_sweeps),
                churn_sweep_sec);

    // ---- BENCH_alloc.json ---------------------------------------
    FILE *json = std::fopen("BENCH_alloc.json", "w");
    if (json) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"bench\": \"alloc_hotpath\",\n");
        std::fprintf(json, "  \"live_target\": %llu,\n",
                     static_cast<unsigned long long>(live_target));
        std::fprintf(json, "  \"malloc_ops_per_sec\": %.6g,\n",
                     malloc_ops);
        std::fprintf(json,
                     "  \"quarantine_add_ops_per_sec\": %.6g,\n",
                     free_ops);
        std::fprintf(json, "  \"churn_ops_per_sec\": %.6g,\n",
                     churn_ops);
        std::fprintf(json, "  \"mean_bin_scan\": %.6g,\n",
                     mutator.meanBinScanLength());
        std::fprintf(json, "  \"raw_span_rate\": %.6g,\n",
                     mutator.rawSpanRate());
        std::fprintf(json, "  \"quarantine_merge_ratio\": %.6g,\n",
                     mutator.mergeRatio());
        std::fprintf(json,
                     "  \"tenant\": {\"tenants\": %u, "
                     "\"agg_allocs\": %llu, \"ops\": %llu, "
                     "\"wall_sec\": %.6g, \"ops_per_sec\": %.6g},\n",
                     tenants,
                     static_cast<unsigned long long>(agg_allocs),
                     static_cast<unsigned long long>(tenant_ops),
                     tenant_wall, tenant_ops_per_sec);
        std::fprintf(json, "  \"ok\": %s\n", ok ? "true" : "false");
        std::fprintf(json, "}\n");
        std::fclose(json);
        std::printf("wrote BENCH_alloc.json\n");
    }

    std::printf(ok ? "OK: heap valid after every phase\n"
                   : "FAILED: see gates above\n");
    return ok ? 0 : 1;
}

/**
 * @file
 * Multi-threaded mutator front-end contention bench: the remote-free
 * message-passing layer under its three canonical stress shapes
 * (snmalloc's msgpass/ping-pong/lotsofthreads), plus the end-to-end
 * parity gate that the threaded front-end leaves every modelled
 * statistic bit-identical.
 *
 * Phases:
 *  - msgpass: P producer threads blast batched remote frees at one
 *    consumer's MPSC queue (P in {1, 2, 4}); reports message
 *    throughput and gates on exact conservation (every entry sent is
 *    drained, per-producer batch order preserved).
 *  - pingpong: a 2-thread race over a crafted trace in which *every*
 *    effective free is remote (thread 1 frees what thread 0 owns),
 *    the worst-case message pattern; gates on localFrees == 0 and
 *    bit-identical replay.
 *  - lotsofthreads: one synthesized trace raced under M in
 *    {1, 2, 4, 8, 16} mutator threads; every row must replay
 *    bit-identically run-over-run, and the modelled totals
 *    (effective mallocs/frees, quarantined bytes) must be invariant
 *    in M.
 *  - tenant_parity: the full multi-tenant benchmark pipeline with 1
 *    vs 4 mutator threads per tenant; every modelled statistic must
 *    be bit-identical (the ISSUE's headline acceptance gate).
 *
 * Wall-clock numbers are reporting only — the container CI runs on
 * one CPU, so gates are determinism and equality, never throughput.
 *
 * Results go to stdout and BENCH_mutator.json; every row carries the
 * thread-count configuration and std::thread::hardware_concurrency()
 * so trajectory tracking can bucket hosts.
 *
 * Environment (strict parsing; bench_common.hh knobs apply too —
 * CHERIVOKE_REMOTE_BATCH sets the batch capacity everywhere):
 *   CHERIVOKE_MUTATOR_OPS      = trace ops for the race phases
 *                                (default 40000)
 *   CHERIVOKE_MSGPASS_ENTRIES  = entries per producer in msgpass
 *                                (default 50000)
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "tenant/mutator_threads.hh"
#include "tenant/remote_queue.hh"
#include "workload/synth.hh"

using namespace cherivoke;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct MsgpassRow
{
    unsigned producers = 0;
    uint64_t entries = 0;
    uint64_t batches = 0;
    double wallSec = 0;
    bool conserved = false;
};

/** P producers blast batched frees at one consumer queue. */
MsgpassRow
runMsgpass(unsigned producers, uint64_t entries_each,
           unsigned batch_capacity)
{
    MsgpassRow row;
    row.producers = producers;
    tenant::RemoteFreeQueue queue;
    const double t0 = now();

    std::vector<std::thread> threads;
    for (unsigned p = 0; p < producers; ++p) {
        threads.emplace_back([&queue, p, entries_each,
                              batch_capacity] {
            tenant::RemoteSender sender(p, queue, batch_capacity);
            for (uint64_t i = 0; i < entries_each; ++i)
                sender.send(tenant::RemoteFree{i, 64});
            sender.flush();
        });
    }

    uint64_t entries = 0, batches = 0;
    std::vector<uint64_t> next_seq(producers, 0);
    bool order_ok = true;
    const uint64_t expect_batches =
        producers *
        ((entries_each + batch_capacity - 1) / batch_capacity);
    while (batches < expect_batches) {
        auto batch = queue.tryDequeue();
        if (!batch)
            continue;
        order_ok &= batch->seq == next_seq[batch->producer];
        ++next_seq[batch->producer];
        entries += batch->entries.size();
        ++batches;
    }
    for (auto &t : threads)
        t.join();

    row.wallSec = now() - t0;
    row.entries = entries;
    row.batches = batches;
    row.conserved = order_ok && queue.drained() &&
                    entries == producers * entries_each;
    return row;
}

/** A trace in which every effective free is remote under M=2:
 *  thread 0 owns every chunk (even ids), thread 1 executes every
 *  free (odd op indices). */
workload::Trace
pingPongTrace(size_t pairs)
{
    workload::Trace trace;
    for (size_t i = 0; i < pairs; ++i) {
        workload::TraceOp m;
        m.kind = workload::OpKind::Malloc;
        m.id = 2 * i; // even: owner 0 under M=2; op index 2i: exec 0
        m.size = 64;
        trace.ops.push_back(m);
        workload::TraceOp f;
        f.kind = workload::OpKind::Free;
        f.id = 2 * i; // op index 2i+1: executor 1 != owner 0
        trace.ops.push_back(f);
    }
    return trace;
}

/** The synthesized race workload shared by the ramp rows. */
workload::Trace
rampTrace(uint64_t ops_target)
{
    workload::BenchmarkProfile profile =
        workload::profileFor("dealII");
    workload::SynthConfig cfg;
    // dealII at 1/512 scale synthesizes ~10k ops/virtual-second
    // with a steady malloc/free mix once the (small) heap target is
    // reached; stretching the duration — never truncating the trace
    // — keeps frees present at every ops target.
    cfg.scale = 1.0 / 512;
    cfg.durationSec = static_cast<double>(ops_target) / 10000.0;
    cfg.seed = 42;
    return workload::synthesize(profile, cfg);
}

} // namespace

int
main()
{
    bench::printSystems(
        "Mutator contention: batched remote-free message passing");

    const sim::ExperimentConfig base = bench::defaultConfig();
    const unsigned batch = base.remoteBatch;
    const uint64_t race_ops = static_cast<uint64_t>(
        envI64("CHERIVOKE_MUTATOR_OPS", 40000));
    const uint64_t msg_entries = static_cast<uint64_t>(
        envI64("CHERIVOKE_MSGPASS_ENTRIES", 50000));
    bench::printKnobs();
    const unsigned hw = std::thread::hardware_concurrency();
    bool ok = true;

    // ---- Phase 1: msgpass producers/consumer --------------------
    std::printf("msgpass: %llu entries/producer, batch %u\n",
                static_cast<unsigned long long>(msg_entries), batch);
    std::printf("  %-10s %12s %12s %10s %s\n", "producers",
                "entries/s", "batches", "wall_s", "conserved");
    std::vector<MsgpassRow> msgpass;
    for (unsigned p : {1u, 2u, 4u}) {
        const MsgpassRow row = runMsgpass(p, msg_entries, batch);
        msgpass.push_back(row);
        ok &= row.conserved;
        std::printf("  %-10u %12.3g %12llu %10.3f %s\n", p,
                    row.entries / std::max(row.wallSec, 1e-9),
                    static_cast<unsigned long long>(row.batches),
                    row.wallSec, row.conserved ? "yes" : "NO");
    }

    // ---- Phase 2: ping-pong (every free remote) -----------------
    const workload::Trace pingpong = pingPongTrace(race_ops / 2);
    tenant::MutatorConfig pp_cfg;
    pp_cfg.threads = 2;
    pp_cfg.remoteBatch = batch;
    const auto pp_a =
        tenant::runMutatorRace(pingpong, SIZE_MAX, pp_cfg);
    const auto pp_b =
        tenant::runMutatorRace(pingpong, SIZE_MAX, pp_cfg);
    const bool pp_all_remote =
        pp_a.localFrees == 0 &&
        pp_a.remoteFrees == pp_a.effectiveFrees &&
        pp_a.effectiveFrees == race_ops / 2;
    const bool pp_deterministic =
        pp_a.fingerprint() == pp_b.fingerprint();
    ok &= pp_all_remote && pp_deterministic;
    std::printf("\npingpong: %llu frees, %llu remote (%s), "
                "%llu batches, deterministic %s\n",
                static_cast<unsigned long long>(pp_a.effectiveFrees),
                static_cast<unsigned long long>(pp_a.remoteFrees),
                pp_all_remote ? "all" : "NOT ALL",
                static_cast<unsigned long long>(pp_a.batches),
                pp_deterministic ? "yes" : "NO");

    // ---- Phase 3: lotsofthreads ramp ----------------------------
    const workload::Trace ramp = rampTrace(race_ops);
    std::printf("\nlotsofthreads: %zu-op trace, batch %u\n",
                ramp.ops.size(), batch);
    std::printf("  %-8s %10s %10s %10s %10s %10s %s\n", "threads",
                "remote", "batches", "drains", "barriers", "wall_s",
                "bit-identical");
    struct RampRow
    {
        unsigned threads;
        tenant::MutatorRaceResult result;
        bool deterministic;
    };
    std::vector<RampRow> rows;
    const std::vector<uint64_t> ramp_epochs = {
        ramp.ops.size() / 4, ramp.ops.size() / 2,
        3 * ramp.ops.size() / 4};
    uint64_t base_mallocs = 0, base_frees = 0, base_qbytes = 0;
    for (unsigned m : {1u, 2u, 4u, 8u, 16u}) {
        tenant::MutatorConfig cfg;
        cfg.threads = m;
        cfg.remoteBatch = batch;
        auto a = tenant::runMutatorRace(ramp, SIZE_MAX, cfg,
                                        ramp_epochs);
        const auto b = tenant::runMutatorRace(ramp, SIZE_MAX, cfg,
                                              ramp_epochs);
        const bool det = a.fingerprint() == b.fingerprint();
        if (m == 1) {
            base_mallocs = a.effectiveMallocs;
            base_frees = a.effectiveFrees;
            base_qbytes = a.quarantinedBytes;
        }
        const bool invariant = a.effectiveMallocs == base_mallocs &&
                               a.effectiveFrees == base_frees &&
                               a.quarantinedBytes == base_qbytes;
        // Multi-thread rows must see genuine remote traffic, or the
        // phase is not exercising the message-passing layer at all.
        ok &= det && invariant && (m == 1 || a.remoteFrees > 0);
        std::printf("  %-8u %10llu %10llu %10llu %10llu %10.3f %s\n",
                    m,
                    static_cast<unsigned long long>(a.remoteFrees),
                    static_cast<unsigned long long>(a.batches),
                    static_cast<unsigned long long>(a.drains),
                    static_cast<unsigned long long>(a.epochBarriers),
                    a.wallSec,
                    det && invariant ? "yes" : "NO");
        rows.push_back(RampRow{m, std::move(a), det && invariant});
    }

    // ---- Phase 4: tenant parity (the headline gate) -------------
    auto tenant_run = [&base](unsigned threads) {
        sim::ExperimentConfig cfg = base;
        cfg.scale = 1.0 / 256;
        cfg.durationSec = 0.4;
        cfg.tenants = 2;
        cfg.mutatorThreads = threads;
        return sim::runMultiTenantBenchmark(
            workload::profileFor("dealII"), cfg);
    };
    const sim::MultiTenantBenchResult serial = tenant_run(1);
    const sim::MultiTenantBenchResult threaded = tenant_run(4);
    const bool parity =
        serial.run.totalOps == threaded.run.totalOps &&
        serial.run.allocCalls == threaded.run.allocCalls &&
        serial.run.freeCalls == threaded.run.freeCalls &&
        serial.run.freedBytes == threaded.run.freedBytes &&
        serial.run.engine.epochs == threaded.run.engine.epochs &&
        serial.run.engine.sweep.capsRevoked ==
            threaded.run.engine.sweep.capsRevoked &&
        serial.run.engine.sweep.pagesSwept ==
            threaded.run.engine.sweep.pagesSwept &&
        serial.run.peakAggQuarantineBytes ==
            threaded.run.peakAggQuarantineBytes &&
        serial.run.peakAggLiveBytes ==
            threaded.run.peakAggLiveBytes &&
        serial.sweepDramBytes == threaded.sweepDramBytes;
    ok &= parity;
    std::printf("\ntenant_parity: 1-thread vs 4-thread modelled "
                "stats %s (%llu remote frees in the threaded run)\n",
                parity ? "bit-identical" : "DIVERGED",
                static_cast<unsigned long long>(
                    threaded.run.mutatorRemoteFrees));

    // ---- BENCH_mutator.json -------------------------------------
    FILE *json = std::fopen("BENCH_mutator.json", "w");
    if (json) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"bench\": \"mutator_contention\",\n");
        std::fprintf(json, "  \"hw_concurrency\": %u,\n", hw);
        std::fprintf(json, "  \"remote_batch\": %u,\n", batch);
        std::fprintf(json, "  \"msgpass\": [\n");
        for (size_t i = 0; i < msgpass.size(); ++i) {
            const MsgpassRow &r = msgpass[i];
            std::fprintf(
                json,
                "    {\"producers\": %u, \"entries\": %llu, "
                "\"batches\": %llu, \"wall_sec\": %.6f, "
                "\"conserved\": %s}%s\n",
                r.producers,
                static_cast<unsigned long long>(r.entries),
                static_cast<unsigned long long>(r.batches),
                r.wallSec, r.conserved ? "true" : "false",
                i + 1 < msgpass.size() ? "," : "");
        }
        std::fprintf(json, "  ],\n");
        std::fprintf(
            json,
            "  \"pingpong\": {\"threads\": 2, \"frees\": %llu, "
            "\"remote\": %llu, \"batches\": %llu, "
            "\"wall_sec\": %.6f, \"deterministic\": %s},\n",
            static_cast<unsigned long long>(pp_a.effectiveFrees),
            static_cast<unsigned long long>(pp_a.remoteFrees),
            static_cast<unsigned long long>(pp_a.batches),
            pp_a.wallSec,
            pp_all_remote && pp_deterministic ? "true" : "false");
        std::fprintf(json, "  \"lotsofthreads\": [\n");
        for (size_t i = 0; i < rows.size(); ++i) {
            const auto &r = rows[i];
            std::fprintf(
                json,
                "    {\"threads\": %u, \"remote_frees\": %llu, "
                "\"batches\": %llu, \"drains\": %llu, "
                "\"epoch_barriers\": %llu, \"fingerprint\": %llu, "
                "\"wall_sec\": %.6f, \"deterministic\": %s}%s\n",
                r.threads,
                static_cast<unsigned long long>(
                    r.result.remoteFrees),
                static_cast<unsigned long long>(r.result.batches),
                static_cast<unsigned long long>(r.result.drains),
                static_cast<unsigned long long>(
                    r.result.epochBarriers),
                static_cast<unsigned long long>(
                    r.result.fingerprint()),
                r.result.wallSec,
                r.deterministic ? "true" : "false",
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(json, "  ],\n");
        std::fprintf(
            json,
            "  \"tenant_parity\": {\"serial_threads\": 1, "
            "\"threaded_threads\": 4, \"bit_identical\": %s, "
            "\"remote_frees\": %llu, \"epoch_barriers\": %llu},\n",
            parity ? "true" : "false",
            static_cast<unsigned long long>(
                threaded.run.mutatorRemoteFrees),
            static_cast<unsigned long long>(
                threaded.run.mutatorEpochBarriers));
        std::fprintf(json, "  \"ok\": %s\n", ok ? "true" : "false");
        std::fprintf(json, "}\n");
        std::fclose(json);
        std::printf("wrote BENCH_mutator.json\n");
    }

    if (ok) {
        std::printf("OK: conservation, all-remote ping-pong, "
                    "bit-identical replay at every thread count, "
                    "1-vs-4-thread tenant parity\n");
    } else {
        std::printf("FAILED: see gates above\n");
    }
    return ok ? 0 : 1;
}

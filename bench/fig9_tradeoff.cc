/**
 * @file
 * Figure 9 reproduction: normalised execution time for the two
 * worst-case workloads (xalancbmk, omnetpp) as the target heap
 * overhead (quarantine fraction) varies from 10% to 200%. The paper's
 * default 25% setting is marked.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"

using namespace cherivoke;

int
main()
{
    bench::printSystems("Figure 9: Execution time vs heap overhead "
                        "(xalancbmk, omnetpp)");

    const sim::ExperimentConfig base = bench::defaultConfig();
    bench::printKnobs();

    stats::TextTable table({"heap overhead", "xalancbmk", "omnetpp"});
    for (double q : {0.10, 0.20, 0.25, 0.40, 0.60, 0.80, 1.00, 1.50,
                     2.00}) {
        sim::ExperimentConfig cfg = base;
        cfg.quarantineFraction = q;
        const sim::BenchResult xalan = sim::runBenchmark(
            workload::profileFor("xalancbmk"), cfg);
        const sim::BenchResult omnetpp = sim::runBenchmark(
            workload::profileFor("omnetpp"), cfg);
        char label[32];
        std::snprintf(label, sizeof(label), "%.0f%%%s", q * 100,
                      q == 0.25 ? " (default)" : "");
        table.addRow({label,
                      stats::TextTable::num(xalan.normalizedTime, 3),
                      stats::TextTable::num(omnetpp.normalizedTime,
                                            3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Higher heap overhead -> sweeps amortise over more "
                "freed bytes -> lower runtime overhead\n(and for "
                "xalancbmk, less temporal fragmentation in the "
                "cache, §6.4).\n");
    return 0;
}

/**
 * @file
 * Host-native micro-benchmarks (google-benchmark) of the actual data
 * structures and kernels, complementing the modelled figures:
 *
 *  - shadow-map painting: width-optimised vs bit-at-a-time (the §5.2
 *    ablation);
 *  - the §3.3 sweep inner loop over a real host buffer: branchy vs
 *    branchless (conditional-move style), at several pointer
 *    densities — demonstrating the branch-misprediction effect the
 *    paper engineers around;
 *  - allocator malloc/free and quarantine paths;
 *  - full revocation epochs on a live simulated heap.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "revoke/revocation_engine.hh"
#include "support/rng.hh"

using namespace cherivoke;

namespace {

// --- Shadow-map painting ---------------------------------------

void
BM_ShadowPaintOptimised(benchmark::State &state)
{
    mem::AddressSpace space;
    alloc::ShadowMap shadow(space.memory());
    const uint64_t heap = space.mmapHeap(4 * MiB);
    const uint64_t bytes = static_cast<uint64_t>(state.range(0));
    for (auto _ : state) {
        shadow.paint(heap, bytes);
        shadow.clear(heap, bytes);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * bytes);
}
BENCHMARK(BM_ShadowPaintOptimised)->Arg(4096)->Arg(64 * 1024)
    ->Arg(1024 * 1024);

void
BM_ShadowPaintBitByBit(benchmark::State &state)
{
    mem::AddressSpace space;
    alloc::ShadowMap shadow(space.memory());
    const uint64_t heap = space.mmapHeap(4 * MiB);
    const uint64_t bytes = static_cast<uint64_t>(state.range(0));
    for (auto _ : state) {
        shadow.paintBitByBit(heap, bytes);
        shadow.clear(heap, bytes);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * bytes);
}
BENCHMARK(BM_ShadowPaintBitByBit)->Arg(4096)->Arg(64 * 1024);

// --- The §3.3 inner loop on a real host buffer ------------------

/** Build a fake memory image: 1 word in `density_pct`% looks like a
 *  tagged capability (here: nonzero marker), rest zero. */
std::vector<uint64_t>
makeImage(size_t words, int density_pct, Rng &rng)
{
    std::vector<uint64_t> image(words, 0);
    for (auto &w : image) {
        if (rng.nextBounded(100) <
            static_cast<uint64_t>(density_pct)) {
            w = 0x40000000 + rng.nextBounded(1 << 20) * 16;
        }
    }
    return image;
}

void
BM_SweepLoopBranchy(benchmark::State &state)
{
    Rng rng(1);
    const size_t words = 1 << 20;
    auto image = makeImage(words, static_cast<int>(state.range(0)),
                           rng);
    std::vector<uint8_t> shadow(1 << 21, 0x55);
    for (auto _ : state) {
        uint64_t revoked = 0;
        for (size_t i = 0; i < words; ++i) {
            uint64_t w = image[i];
            if (w) { // data-dependent branch (§3.3 listing)
                const uint64_t g = w >> 4;
                const uint8_t byte = shadow[(g >> 3) & ((1 << 21) - 1)];
                if (byte & (1 << (g & 7))) {
                    image[i] = w; // would clear the tag
                    ++revoked;
                }
            }
        }
        benchmark::DoNotOptimize(revoked);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * words * 8);
}
BENCHMARK(BM_SweepLoopBranchy)->Arg(0)->Arg(25)->Arg(50)->Arg(100);

void
BM_SweepLoopBranchless(benchmark::State &state)
{
    Rng rng(1);
    const size_t words = 1 << 20;
    auto image = makeImage(words, static_cast<int>(state.range(0)),
                           rng);
    std::vector<uint8_t> shadow(1 << 21, 0x55);
    for (auto _ : state) {
        uint64_t revoked = 0;
        for (size_t i = 0; i < words; ++i) {
            const uint64_t w = image[i];
            const uint64_t g = w >> 4;
            const uint8_t byte = shadow[(g >> 3) & ((1 << 21) - 1)];
            // Unconditional arithmetic: no data-dependent branch.
            const uint64_t hit =
                (w != 0) & ((byte >> (g & 7)) & 1);
            revoked += hit;
        }
        benchmark::DoNotOptimize(revoked);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * words * 8);
}
BENCHMARK(BM_SweepLoopBranchless)->Arg(0)->Arg(25)->Arg(50)
    ->Arg(100);

// --- Allocator paths --------------------------------------------

void
BM_DlMallocFree(benchmark::State &state)
{
    mem::AddressSpace space;
    alloc::DlAllocator dl(space);
    const uint64_t size = static_cast<uint64_t>(state.range(0));
    for (auto _ : state) {
        const cap::Capability c = dl.malloc(size);
        dl.free(c);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DlMallocFree)->Arg(64)->Arg(1024)->Arg(64 * 1024);

void
BM_CherivokeQuarantineFree(benchmark::State &state)
{
    mem::AddressSpace space;
    alloc::CherivokeConfig cfg;
    cfg.minQuarantineBytes = 64 * KiB;
    alloc::CherivokeAllocator alloc(space, cfg);
    revoke::RevocationEngine revoker(alloc, space);
    for (auto _ : state) {
        const cap::Capability c = alloc.malloc(64);
        alloc.free(c);
        revoker.maybeRevoke();
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CherivokeQuarantineFree);

// --- Full revocation epoch ---------------------------------------

void
BM_RevocationEpoch(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        mem::AddressSpace space;
        alloc::CherivokeConfig cfg;
        cfg.minQuarantineBytes = 16;
        alloc::CherivokeAllocator alloc(space, cfg);
        revoke::RevocationEngine revoker(alloc, space);
        Rng rng(9);
        std::vector<cap::Capability> caps;
        for (int i = 0; i < static_cast<int>(state.range(0)); ++i)
            caps.push_back(alloc.malloc(rng.nextLogUniform(16, 2048)));
        for (size_t i = 0; i < caps.size(); i += 2)
            space.memory().writeCap(
                mem::kGlobalsBase + (i % 4096) * 16, caps[i]);
        for (auto &c : caps)
            alloc.free(c);
        state.ResumeTiming();
        revoker.revokeNow();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_RevocationEpoch)->Arg(256)->Arg(1024);

} // namespace

BENCHMARK_MAIN();

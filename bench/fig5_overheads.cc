/**
 * @file
 * Figure 5 reproduction: normalised execution time (5a) and memory
 * utilisation (5b) for CHERIvoke at the default 25% quarantine,
 * per benchmark with geomean, next to (i) the paper's own CHERIvoke
 * measurements and (ii) the published numbers for Oscar, pSweeper,
 * DangSan and Boehm-GC that the paper plots for comparison.
 */

#include <cstdio>
#include <vector>

#include "baseline/published.hh"
#include "bench_common.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

using namespace cherivoke;

int
main()
{
    bench::printSystems("Figure 5: CHERIvoke vs state of the art "
                        "(25% heap overhead)");

    const sim::ExperimentConfig cfg = bench::defaultConfig();
    bench::printKnobs();

    stats::TextTable time_tab({"benchmark", "CHERIvoke(ours)",
                               "CHERIvoke(paper)", "Oscar",
                               "pSweeper", "DangSan", "Boehm-GC"});
    stats::TextTable mem_tab({"benchmark", "CHERIvoke(ours)",
                              "CHERIvoke(paper)", "DangSan",
                              "Oscar"});

    std::vector<double> ours_t, paper_t, oscar_t, psw_t, dang_t,
        gc_t, ours_m, paper_m;

    for (const auto &profile : workload::figure5Profiles()) {
        const sim::BenchResult r =
            sim::runBenchmark(profile, cfg);
        const auto &pub =
            baseline::publishedRowFor(profile.name);

        time_tab.addRow({profile.name,
                         stats::TextTable::num(r.normalizedTime),
                         stats::TextTable::num(pub.cherivokeTime),
                         stats::TextTable::num(pub.oscarTime),
                         stats::TextTable::num(pub.psweeperTime),
                         stats::TextTable::num(pub.dangsanTime),
                         stats::TextTable::num(pub.boehmGcTime)});
        mem_tab.addRow({profile.name,
                        stats::TextTable::num(r.normalizedMemory),
                        stats::TextTable::num(pub.cherivokeMem),
                        stats::TextTable::num(pub.dangsanMem),
                        stats::TextTable::num(pub.oscarMem)});

        ours_t.push_back(r.normalizedTime);
        paper_t.push_back(pub.cherivokeTime);
        oscar_t.push_back(pub.oscarTime);
        psw_t.push_back(pub.psweeperTime);
        dang_t.push_back(pub.dangsanTime);
        gc_t.push_back(pub.boehmGcTime);
        ours_m.push_back(r.normalizedMemory);
        paper_m.push_back(pub.cherivokeMem);
    }

    using stats::geomean;
    time_tab.addRow({"geomean", stats::TextTable::num(geomean(ours_t)),
                     stats::TextTable::num(geomean(paper_t)),
                     stats::TextTable::num(geomean(oscar_t)),
                     stats::TextTable::num(geomean(psw_t)),
                     stats::TextTable::num(geomean(dang_t)),
                     stats::TextTable::num(geomean(gc_t))});
    mem_tab.addRow({"geomean", stats::TextTable::num(geomean(ours_m)),
                    stats::TextTable::num(geomean(paper_m)), "-",
                    "-"});

    std::printf("--- (a) Normalised execution time ---\n%s\n",
                time_tab.render().c_str());
    std::printf("--- (b) Normalised memory utilisation "
                "(heap-relative) ---\n%s\n",
                mem_tab.render().c_str());
    std::printf("Comparison columns are the published numbers the "
                "paper plots (digitized);\nCHERIvoke(ours) is "
                "measured on this repository's simulator.\n");
    return 0;
}

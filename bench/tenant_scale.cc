/**
 * @file
 * Multi-tenant consolidation scaling bench: sweep throughput and
 * traffic overhead versus tenant count, at a constant aggregate of
 * 1M+ live allocations (PICASSO-scale) split across N co-resident
 * tenants sharing one TaggedMemory and one RevocationEngine.
 *
 * The aggregate workload is held constant across rows — per-tenant
 * heap and free rate are 1/N of the aggregate — so the tenant-count
 * axis isolates *consolidation density*: same total live data, same
 * total free traffic, more isolated quarantines and more (smaller)
 * per-region sweeps.
 *
 * Gates (any failure exits non-zero):
 *  - scale: the max-tenant row must sustain >= the configured
 *    aggregate live allocations (default 1M across 8 tenants);
 *  - determinism: the max-tenant row is replayed twice from the
 *    *same binary-codec round-tripped traces*; every reported
 *    statistic must be bit-identical;
 *  - single-tenant equivalence: a 1-tenant manager run must
 *    reproduce the classic single-process TraceDriver pipeline's
 *    revocation statistics bit-identically.
 *
 * The tenant_churn phase exercises mid-run arrival/departure: churn
 * cycles spawn a short-lived tenant from tenant 0's trace, retire it
 * (epoch drain, PTE unmap, bulk page release), and spawn the next
 * cycle into the freed slot. Its gates:
 *  - every cycle after the first reuses the retired slot;
 *  - every cycle's per-tenant statistics are bit-identical to the
 *    first (fresh-slot) cycle — slot reuse resurrects nothing;
 *  - the whole churn run replays bit-identically from the same
 *    codec-round-tripped traces (v2 lifecycle records included).
 *
 * The mixed-policy phase runs a concurrent tenant next to a
 * stop-the-world tenant on the one shared engine, gates on replay
 * determinism, and reports the per-tenant sweep overheads
 * separately.
 *
 * Results go to stdout and BENCH_tenant.json (trajectory tracking,
 * uploaded by CI next to BENCH_sweep.json).
 *
 * Environment (strict parsing; see bench_common.hh for the shared
 * engine knobs which all apply here too; the churn and mixed-policy
 * phases pin scope/policy knobs — they are correctness gates, not
 * configuration axes):
 *   CHERIVOKE_TENANT_AGG_ALLOCS = aggregate live-allocation target
 *                                 (default 1000000)
 *   CHERIVOKE_TENANT_MAX        = largest tenant count (default 8)
 *   CHERIVOKE_TENANT_CHURN     = churn cycles in the churn phase
 *                                 (default 4; 0 skips the phase;
 *                                 1 is raised to 2 so slot reuse
 *                                 is always exercised)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "stats/table.hh"
#include "tenant/trace_codec.hh"

using namespace cherivoke;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Mean allocation size the profile implies (table 2 identity). */
constexpr double kMeanAllocBytes = 128.0;
/** Aggregate free traffic, split evenly across tenants. */
constexpr double kAggFreeRateMiBps = 64.0;

/**
 * The consolidated-service profile for N tenants: each tenant is a
 * 1/N slice of a constant aggregate (live bytes and free traffic),
 * so sweep period and total work are comparable across rows.
 * FIFO object lifetimes (temporalFragmentation 0) keep synthesis
 * linear-time at millions of live objects.
 */
workload::BenchmarkProfile
sliceProfile(unsigned tenants, uint64_t agg_allocs)
{
    workload::BenchmarkProfile p;
    p.name = "tenant_slice";
    p.pagesWithPointers = 0.35;
    p.linePointerDensity = 0.06;
    p.temporalFragmentation = 0;
    // Ramp target: agg_allocs allocations of ~125 B expected size,
    // plus margin so the allocation *count* target is certainly met.
    const double agg_heap_bytes =
        static_cast<double>(agg_allocs) * kMeanAllocBytes * 1.10;
    p.liveHeapMiB = agg_heap_bytes / MiB / tenants;
    p.freeRateMiBps = kAggFreeRateMiBps / tenants;
    p.freesPerSec =
        kAggFreeRateMiBps * MiB / kMeanAllocBytes / tenants;
    p.appDramMiBps = 2000.0 / tenants; //!< per-tenant app traffic
    return p;
}

sim::ExperimentConfig
rowConfig(unsigned tenants)
{
    sim::ExperimentConfig cfg = bench::defaultConfig();
    // The tenant count IS this bench's x-axis and the heap targets
    // come from sliceProfile, so the CHERIVOKE_TENANTS /
    // _TENANT_WEIGHTS / _TENANT_HEAP_MIB / _TENANT_POLICIES /
    // _TENANT_BACKENDS / _TENANT_CHURN overrides do not apply to the
    // scaling rows (policy, backend, threads, shards, and
    // _TENANT_SCOPE still do; churn has its own phase below).
    cfg.tenants = tenants;
    cfg.tenantWeights.clear();
    cfg.tenantHeapMiB = 0;
    cfg.tenantPolicies.clear();
    cfg.tenantBackends.clear();
    cfg.tenantChurn = 0;
    cfg.scale = 1.0; //!< real allocation counts, no scaling
    cfg.durationSec = 2.0;
    return cfg;
}

struct Row
{
    unsigned tenants = 0;
    sim::MultiTenantBenchResult bench;
    double wallSec = 0;
};

/**
 * Render every statistic the row reports into one string; rows are
 * "bit-identical" when these strings match byte for byte. Doubles
 * print with %.17g, which round-trips IEEE doubles exactly.
 */
std::string
statsFingerprint(const sim::MultiTenantBenchResult &r)
{
    std::string out;
    char buf[256];
    auto add = [&](const char *key, double v) {
        std::snprintf(buf, sizeof(buf), "%s=%.17g\n", key, v);
        out += buf;
    };
    auto addU = [&](const char *key, uint64_t v) {
        std::snprintf(buf, sizeof(buf), "%s=%llu\n", key,
                      static_cast<unsigned long long>(v));
        out += buf;
    };
    const tenant::MultiTenantResult &m = r.run;
    addU("ops", m.totalOps);
    addU("allocs", m.allocCalls);
    addU("frees", m.freeCalls);
    addU("freed_bytes", m.freedBytes);
    addU("ptr_stores", m.ptrStores);
    addU("peak_agg_live_allocs", m.peakAggLiveAllocs);
    addU("peak_agg_live_bytes", m.peakAggLiveBytes);
    addU("peak_agg_quarantine", m.peakAggQuarantineBytes);
    addU("peak_agg_footprint", m.peakAggFootprintBytes);
    addU("epochs", m.engine.epochs);
    addU("slices", m.engine.slices);
    addU("paint_ops", m.engine.paint.total());
    addU("pages_swept", m.engine.sweep.pagesSwept);
    addU("pages_skipped", m.engine.sweep.pagesSkippedPte);
    addU("lines_swept", m.engine.sweep.linesSwept);
    addU("caps_examined", m.engine.sweep.capsExamined);
    addU("caps_revoked", m.engine.sweep.capsRevoked);
    addU("internal_frees", m.engine.internalFrees);
    addU("bytes_released", m.engine.bytesReleased);
    add("virtual_sec", m.virtualSeconds);
    add("sweep_overhead", r.sweepOverhead);
    add("shadow_overhead", r.shadowOverhead);
    add("traffic_pct", r.trafficOverheadPct);
    add("scan_rate", r.achievedScanRate);
    addU("spawns", m.spawns);
    addU("retires", m.retires);
    addU("slots_reused", m.slotsReused);
    for (const tenant::LifecycleEvent &ev : m.lifecycle) {
        // wallSec deliberately excluded: host time, not model state.
        addU("ev_kind", ev.kind == tenant::LifecycleEvent::Kind::Spawn
                            ? 0 : 1);
        addU("ev_id", ev.tenantId);
        addU("ev_slot", ev.slot);
        addU("ev_step", ev.step);
        addU("ev_reused", ev.reusedSlot ? 1 : 0);
        addU("ev_pages_released", ev.pagesReleased);
    }
    for (const tenant::TenantResult &t : m.tenants) {
        addU("t_id", t.tenantId);
        addU("t_slot", t.index);
        addU("t_ops_applied", t.opsApplied);
        addU("t_epochs", t.run.revoker.epochs);
        addU("t_caps_revoked", t.run.revoker.sweep.capsRevoked);
        addU("t_peak_live_allocs", t.run.peakLiveAllocs);
        add("t_virtual_sec", t.run.virtualSeconds);
        add("t_page_density", t.run.pageDensity);
        add("t_line_density", t.run.lineDensity);
    }
    return out;
}

/**
 * Per-tenant statistics fingerprint: everything a tenant's replay
 * produces, minus its identity (name/id). Two tenants replaying the
 * same trace under the same config — one in a fresh slot, one in a
 * reused slot — must match byte for byte.
 */
std::string
tenantFingerprint(const tenant::TenantResult &t)
{
    std::string out;
    char buf[256];
    auto add = [&](const char *key, double v) {
        std::snprintf(buf, sizeof(buf), "%s=%.17g\n", key, v);
        out += buf;
    };
    auto addU = [&](const char *key, uint64_t v) {
        std::snprintf(buf, sizeof(buf), "%s=%llu\n", key,
                      static_cast<unsigned long long>(v));
        out += buf;
    };
    addU("ops_applied", t.opsApplied);
    addU("ops_total", t.opsTotal);
    addU("allocs", t.run.allocCalls);
    addU("frees", t.run.freeCalls);
    addU("freed_bytes", t.run.freedBytes);
    addU("ptr_stores", t.run.ptrStores);
    addU("peak_live_bytes", t.run.peakLiveBytes);
    addU("peak_live_allocs", t.run.peakLiveAllocs);
    addU("peak_quarantine", t.run.peakQuarantineBytes);
    addU("peak_footprint", t.run.peakFootprintBytes);
    addU("epochs", t.run.revoker.epochs);
    addU("slices", t.run.revoker.slices);
    addU("paint_ops", t.run.revoker.paint.total());
    addU("pages_swept", t.run.revoker.sweep.pagesSwept);
    addU("lines_swept", t.run.revoker.sweep.linesSwept);
    addU("caps_examined", t.run.revoker.sweep.capsExamined);
    addU("caps_revoked", t.run.revoker.sweep.capsRevoked);
    addU("internal_frees", t.run.revoker.internalFrees);
    addU("bytes_released", t.run.revoker.bytesReleased);
    add("virtual_sec", t.run.virtualSeconds);
    add("page_density", t.run.pageDensity);
    add("line_density", t.run.lineDensity);
    return out;
}

/** Round every tenant trace through the binary codec: record once,
 *  replay exactly. */
std::vector<workload::Trace>
codecRoundTrip(const std::vector<workload::Trace> &traces)
{
    std::vector<workload::Trace> out;
    out.reserve(traces.size());
    for (const workload::Trace &t : traces)
        out.push_back(tenant::decodeTrace(tenant::encodeTrace(t)));
    return out;
}

} // namespace

int
main()
{
    const uint64_t agg_allocs = static_cast<uint64_t>(
        envI64("CHERIVOKE_TENANT_AGG_ALLOCS", 1000000));
    const unsigned max_tenants = static_cast<unsigned>(
        envI64("CHERIVOKE_TENANT_MAX", 8));

    bench::printSystems("Multi-tenant consolidation scaling "
                        "(bench/tenant_scale)");
    (void)bench::defaultConfig();
    bench::printKnobs();
    std::printf("aggregate live-allocation target: %llu across up "
                "to %u tenants\n\n",
                static_cast<unsigned long long>(agg_allocs),
                max_tenants);

    std::vector<unsigned> counts;
    for (unsigned n = 1; n <= max_tenants; n *= 2)
        counts.push_back(n);
    if (counts.back() != max_tenants)
        counts.push_back(max_tenants);

    bool ok = true;
    std::vector<Row> rows;
    std::string det_fingerprint_a, det_fingerprint_b;

    for (unsigned n : counts) {
        const workload::BenchmarkProfile profile =
            sliceProfile(n, agg_allocs);
        const sim::ExperimentConfig cfg = rowConfig(n);

        // Record once through the binary codec, then replay — the
        // deterministic-replay interchange path, not a side channel.
        const std::vector<workload::Trace> traces = codecRoundTrip(
            sim::synthesizeTenantTraces(profile, cfg));

        Row row;
        row.tenants = n;
        const double t0 = now();
        row.bench = sim::runMultiTenantBenchmark(
            profile, cfg, sim::MachineProfile::x86(), &traces);
        row.wallSec = now() - t0;

        if (n == counts.back()) {
            // Determinism gate: identical traces, fresh manager —
            // every statistic must come out bit-identical.
            det_fingerprint_a = statsFingerprint(row.bench);
            const sim::MultiTenantBenchResult again =
                sim::runMultiTenantBenchmark(
                    profile, cfg, sim::MachineProfile::x86(),
                    &traces);
            det_fingerprint_b = statsFingerprint(again);
            if (det_fingerprint_a != det_fingerprint_b) {
                std::printf("FAILED: max-tenant replay diverged "
                            "between two runs of the same traces\n");
                ok = false;
            }
            if (row.bench.run.peakAggLiveAllocs < agg_allocs) {
                std::printf(
                    "FAILED: peak aggregate live allocations %llu "
                    "below the %llu target\n",
                    static_cast<unsigned long long>(
                        row.bench.run.peakAggLiveAllocs),
                    static_cast<unsigned long long>(agg_allocs));
                ok = false;
            }
            // Background-sweeper parity gate: the same traces with
            // a true sweeper thread racing the mutators must
            // reproduce every modelled statistic bit for bit.
            sim::ExperimentConfig bg_cfg = cfg;
            bg_cfg.bgSweeper = true;
            const sim::MultiTenantBenchResult bg_run =
                sim::runMultiTenantBenchmark(
                    profile, bg_cfg, sim::MachineProfile::x86(),
                    &traces);
            if (statsFingerprint(bg_run) != det_fingerprint_a) {
                std::printf("FAILED: background-sweeper run "
                            "diverged from the mutator-assist "
                            "run over the same traces\n");
                ok = false;
            }
        }
        rows.push_back(std::move(row));
    }

    // Single-tenant equivalence gate: the classic single-process
    // pipeline (runBenchmark -> TraceDriver) must match the 1-tenant
    // manager run statistic for statistic.
    bool single_match = true;
    {
        const workload::BenchmarkProfile profile =
            sliceProfile(1, agg_allocs);
        const sim::ExperimentConfig cfg = rowConfig(1);
        const sim::BenchResult classic =
            sim::runBenchmark(profile, cfg);
        const workload::DriverResult &a = classic.run;
        const workload::DriverResult &b = rows[0].bench.run
                                              .tenants[0].run;
        single_match =
            a.revoker == b.revoker &&
            a.allocCalls == b.allocCalls &&
            a.freeCalls == b.freeCalls &&
            a.freedBytes == b.freedBytes &&
            a.ptrStores == b.ptrStores &&
            a.peakLiveBytes == b.peakLiveBytes &&
            a.peakQuarantineBytes == b.peakQuarantineBytes &&
            a.peakFootprintBytes == b.peakFootprintBytes &&
            a.pageDensity == b.pageDensity &&
            a.lineDensity == b.lineDensity &&
            a.virtualSeconds == b.virtualSeconds;
        if (!single_match) {
            std::printf("FAILED: 1-tenant manager run diverged from "
                        "the single-process TraceDriver pipeline\n");
            ok = false;
        }
    }

    // ---- tenant_churn phase -------------------------------------
    // Mid-run arrival/departure at a reduced aggregate: C cycles of
    // spawn -> run -> retire, driven by lifecycle ops recorded in
    // tenant 0's (codec-round-tripped) trace. Scope and policies are
    // pinned (per-tenant + stop-the-world) so each churn tenant's
    // statistics are a pure function of its trace: the fresh-slot
    // cycle and every reused-slot cycle must match bit for bit.
    // 0 skips the phase (matching the knob's meaning everywhere
    // else); any non-zero request runs at least 2 cycles so the
    // slot-reuse gate is always exercised.
    unsigned churn_cycles = static_cast<unsigned>(
        envI64("CHERIVOKE_TENANT_CHURN", 4, 0));
    if (churn_cycles == 1)
        churn_cycles = 2;
    sim::MultiTenantBenchResult churn_bench;
    bool churn_reuse_ok = true, churn_identical = true,
         churn_complete = true, churn_deterministic = true;
    if (churn_cycles > 0) {
        const workload::BenchmarkProfile profile =
            sliceProfile(2, std::max<uint64_t>(agg_allocs / 4, 20000));
        sim::ExperimentConfig cfg = rowConfig(2);
        cfg.tenantChurn = churn_cycles;
        cfg.tenantScope = tenant::RevocationScope::PerTenant;
        cfg.policy = revoke::PolicyKind::StopTheWorld;
        cfg.durationSec = 1.0;

        const std::vector<workload::Trace> traces = codecRoundTrip(
            sim::synthesizeTenantTraces(profile, cfg));
        churn_bench = sim::runMultiTenantBenchmark(
            profile, cfg, sim::MachineProfile::x86(), &traces);
        const tenant::MultiTenantResult &m = churn_bench.run;

        // Gate: every cycle after the first landed in the slot the
        // previous cycle freed.
        size_t churn_slot = SIZE_MAX;
        for (const tenant::LifecycleEvent &ev : m.lifecycle) {
            if (ev.tenantId < sim::kChurnTenantIdBase ||
                ev.kind != tenant::LifecycleEvent::Kind::Spawn)
                continue;
            if (churn_slot == SIZE_MAX) {
                churn_slot = ev.slot; // fresh slot, first cycle
                churn_reuse_ok &= !ev.reusedSlot;
            } else {
                churn_reuse_ok &=
                    ev.reusedSlot && ev.slot == churn_slot;
            }
        }
        churn_reuse_ok &= m.retires == churn_cycles &&
                          m.slotsReused == churn_cycles - 1;
        if (!churn_reuse_ok) {
            std::printf("FAILED: churn spawn did not reuse the "
                        "retired slot\n");
            ok = false;
        }

        // Gate: every cycle ran its whole trace and produced stats
        // bit-identical to the fresh-slot first cycle.
        std::string first_fp;
        for (const tenant::TenantResult &t : m.tenants) {
            if (t.tenantId < sim::kChurnTenantIdBase)
                continue;
            churn_complete &= t.opsApplied == t.opsTotal;
            const std::string fp = tenantFingerprint(t);
            if (first_fp.empty()) {
                first_fp = fp;
            } else if (fp != first_fp) {
                churn_identical = false;
            }
        }
        if (!churn_complete) {
            std::printf("FAILED: a churn tenant was retired before "
                        "finishing its trace (cycle windows too "
                        "tight)\n");
            ok = false;
        }
        if (first_fp.empty() || !churn_identical) {
            std::printf("FAILED: reused-slot churn cycle diverged "
                        "from the fresh-slot cycle\n");
            ok = false;
            churn_identical = false;
        }

        // Gate: the whole churn run replays bit-identically.
        const sim::MultiTenantBenchResult again =
            sim::runMultiTenantBenchmark(
                profile, cfg, sim::MachineProfile::x86(), &traces);
        churn_deterministic =
            statsFingerprint(churn_bench) == statsFingerprint(again);
        if (!churn_deterministic) {
            std::printf("FAILED: churn replay diverged between two "
                        "runs of the same traces\n");
            ok = false;
        }

        std::printf("churn phase: %u cycles, %llu retires, %llu "
                    "slot reuses, reuse %s fresh-slot stats\n\n",
                    churn_cycles,
                    static_cast<unsigned long long>(m.retires),
                    static_cast<unsigned long long>(m.slotsReused),
                    churn_identical ? "matches" : "DIVERGED from");
    }

    // ---- mixed-policy phase -------------------------------------
    // One concurrent tenant next to one stop-the-world tenant on the
    // same engine (epoch-owner-wins arbitration), gated on replay
    // determinism; per-tenant sweep overheads are reported
    // separately in the JSON.
    sim::MultiTenantBenchResult mixed_bench;
    bool mixed_deterministic = true;
    const char *mixed_policies[2] = {"concurrent", "stop-the-world"};
    {
        const workload::BenchmarkProfile profile =
            sliceProfile(2, std::max<uint64_t>(agg_allocs / 4, 20000));
        sim::ExperimentConfig cfg = rowConfig(2);
        cfg.tenantScope = tenant::RevocationScope::PerTenant;
        cfg.tenantPolicies = {revoke::PolicyKind::Concurrent,
                              revoke::PolicyKind::StopTheWorld};
        cfg.pagesPerSlice = 16; // several slices per concurrent epoch
        cfg.durationSec = 1.0;

        const std::vector<workload::Trace> traces = codecRoundTrip(
            sim::synthesizeTenantTraces(profile, cfg));
        mixed_bench = sim::runMultiTenantBenchmark(
            profile, cfg, sim::MachineProfile::x86(), &traces);
        const sim::MultiTenantBenchResult again =
            sim::runMultiTenantBenchmark(
                profile, cfg, sim::MachineProfile::x86(), &traces);
        mixed_deterministic =
            statsFingerprint(mixed_bench) == statsFingerprint(again);
        if (!mixed_deterministic) {
            std::printf("FAILED: mixed-policy replay diverged "
                        "between two runs of the same traces\n");
            ok = false;
        }
        // The concurrent tenant must actually have run sliced
        // epochs next to the stop-the-world one.
        const tenant::MultiTenantResult &m = mixed_bench.run;
        if (m.tenants.size() == 2 &&
            (m.tenants[0].run.revoker.epochs == 0 ||
             m.tenants[1].run.revoker.epochs == 0 ||
             m.tenants[0].run.revoker.slices <=
                 m.tenants[0].run.revoker.epochs)) {
            std::printf("FAILED: mixed-policy phase did not "
                        "exercise both policies (t0 epochs %llu "
                        "slices %llu, t1 epochs %llu)\n",
                        static_cast<unsigned long long>(
                            m.tenants[0].run.revoker.epochs),
                        static_cast<unsigned long long>(
                            m.tenants[0].run.revoker.slices),
                        static_cast<unsigned long long>(
                            m.tenants[1].run.revoker.epochs));
            ok = false;
        }
        std::printf("mixed-policy phase: concurrent + stop-the-world "
                    "on one engine, per-tenant sweep overhead %.2f%% "
                    "/ %.2f%%\n\n",
                    mixed_bench.tenantSweepOverhead.size() > 0
                        ? mixed_bench.tenantSweepOverhead[0] * 100
                        : 0.0,
                    mixed_bench.tenantSweepOverhead.size() > 1
                        ? mixed_bench.tenantSweepOverhead[1] * 100
                        : 0.0);
    }

    // ---- Report -------------------------------------------------
    stats::TextTable table({"tenants", "ops", "peak live allocs",
                            "epochs", "Mpages swept", "sweep ovh %",
                            "traffic %", "wall s", "ops/s"});
    for (const Row &r : rows) {
        const tenant::MultiTenantResult &m = r.bench.run;
        table.addRow(
            {std::to_string(r.tenants),
             std::to_string(m.totalOps),
             std::to_string(m.peakAggLiveAllocs),
             std::to_string(m.engine.epochs),
             stats::TextTable::num(
                 static_cast<double>(m.engine.sweep.pagesSwept) /
                     1e6, 3),
             stats::TextTable::num(r.bench.sweepOverhead * 100, 2),
             stats::TextTable::num(r.bench.trafficOverheadPct, 2),
             stats::TextTable::num(r.wallSec, 2),
             stats::TextTable::num(
                 static_cast<double>(m.totalOps) / r.wallSec, 0)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("per-tenant epoch spread (max row): mean %.1f "
                "min %.0f max %.0f\n",
                rows.back().bench.run.tenantEpochs.mean(),
                rows.back().bench.run.tenantEpochs.min(),
                rows.back().bench.run.tenantEpochs.max());

    // ---- BENCH_tenant.json --------------------------------------
    FILE *json = std::fopen("BENCH_tenant.json", "w");
    if (json) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"bench\": \"tenant_scale\",\n");
        std::fprintf(json, "  \"agg_alloc_target\": %llu,\n",
                     static_cast<unsigned long long>(agg_allocs));
        std::fprintf(json, "  \"rows\": [\n");
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            const tenant::MultiTenantResult &m = r.bench.run;
            std::fprintf(
                json,
                "    {\"tenants\": %u, \"ops\": %llu, "
                "\"peak_live_allocs\": %llu, "
                "\"peak_live_bytes\": %llu, \"epochs\": %llu, "
                "\"pages_swept\": %llu, \"caps_revoked\": %llu, "
                "\"sweep_overhead\": %.6g, "
                "\"shadow_overhead\": %.6g, "
                "\"traffic_pct\": %.6g, \"scan_rate\": %.6g, "
                "\"wall_sec\": %.6g, \"ops_per_sec\": %.6g, "
                "\"mutator_ops_per_sec\": %.6g}%s\n",
                r.tenants,
                static_cast<unsigned long long>(m.totalOps),
                static_cast<unsigned long long>(
                    m.peakAggLiveAllocs),
                static_cast<unsigned long long>(m.peakAggLiveBytes),
                static_cast<unsigned long long>(m.engine.epochs),
                static_cast<unsigned long long>(
                    m.engine.sweep.pagesSwept),
                static_cast<unsigned long long>(
                    m.engine.sweep.capsRevoked),
                r.bench.sweepOverhead, r.bench.shadowOverhead,
                r.bench.trafficOverheadPct, r.bench.achievedScanRate,
                r.wallSec,
                static_cast<double>(m.totalOps) / r.wallSec,
                r.bench.mutatorOpsPerSec,
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(json, "  ],\n");
        // Arrival/departure overhead rows from the churn phase: one
        // row per lifecycle transition, wall_sec being the host cost
        // of the spawn (region + allocator setup) or retire (epoch
        // drain + PTE unmap + bulk page release).
        std::fprintf(json, "  \"churn\": {\n");
        std::fprintf(json, "    \"cycles\": %u,\n", churn_cycles);
        std::fprintf(json, "    \"spawns\": %llu,\n",
                     static_cast<unsigned long long>(
                         churn_bench.run.spawns));
        std::fprintf(json, "    \"retires\": %llu,\n",
                     static_cast<unsigned long long>(
                         churn_bench.run.retires));
        std::fprintf(json, "    \"slots_reused\": %llu,\n",
                     static_cast<unsigned long long>(
                         churn_bench.run.slotsReused));
        std::fprintf(json, "    \"reuse_bit_identical\": %s,\n",
                     churn_identical ? "true" : "false");
        std::fprintf(json, "    \"deterministic\": %s,\n",
                     churn_deterministic ? "true" : "false");
        std::fprintf(json, "    \"events\": [\n");
        const auto &events = churn_bench.run.lifecycle;
        for (size_t i = 0; i < events.size(); ++i) {
            const tenant::LifecycleEvent &ev = events[i];
            std::fprintf(
                json,
                "      {\"event\": \"%s\", \"tenant_id\": %llu, "
                "\"slot\": %zu, \"step\": %llu, "
                "\"reused_slot\": %s, \"pages_released\": %llu, "
                "\"wall_sec\": %.6g}%s\n",
                ev.kind == tenant::LifecycleEvent::Kind::Spawn
                    ? "spawn" : "retire",
                static_cast<unsigned long long>(ev.tenantId),
                ev.slot,
                static_cast<unsigned long long>(ev.step),
                ev.reusedSlot ? "true" : "false",
                static_cast<unsigned long long>(ev.pagesReleased),
                ev.wallSec, i + 1 < events.size() ? "," : "");
        }
        std::fprintf(json, "    ]\n");
        std::fprintf(json, "  },\n");
        // Mixed-policy phase: per-tenant sweep overhead, reported
        // separately per policy.
        std::fprintf(json, "  \"mixed_policy\": {\n");
        std::fprintf(json, "    \"deterministic\": %s,\n",
                     mixed_deterministic ? "true" : "false");
        std::fprintf(json, "    \"tenants\": [\n");
        for (size_t i = 0;
             i < mixed_bench.run.tenants.size() && i < 2; ++i) {
            const tenant::TenantResult &t = mixed_bench.run.tenants[i];
            std::fprintf(
                json,
                "      {\"policy\": \"%s\", \"epochs\": %llu, "
                "\"slices\": %llu, \"caps_revoked\": %llu, "
                "\"sweep_overhead\": %.6g}%s\n",
                mixed_policies[i],
                static_cast<unsigned long long>(
                    t.run.revoker.epochs),
                static_cast<unsigned long long>(
                    t.run.revoker.slices),
                static_cast<unsigned long long>(
                    t.run.revoker.sweep.capsRevoked),
                i < mixed_bench.tenantSweepOverhead.size()
                    ? mixed_bench.tenantSweepOverhead[i] : 0.0,
                i + 1 < mixed_bench.run.tenants.size() && i + 1 < 2
                    ? "," : "");
        }
        std::fprintf(json, "    ]\n");
        std::fprintf(json, "  },\n");
        std::fprintf(json, "  \"deterministic\": %s,\n",
                     det_fingerprint_a == det_fingerprint_b
                         ? "true" : "false");
        std::fprintf(json, "  \"single_tenant_match\": %s,\n",
                     single_match ? "true" : "false");
        std::fprintf(json, "  \"ok\": %s\n", ok ? "true" : "false");
        std::fprintf(json, "}\n");
        std::fclose(json);
        std::printf("wrote BENCH_tenant.json\n");
    }

    if (ok) {
        std::printf("OK: deterministic replay, %llu+ aggregate live "
                    "allocations, single-tenant parity\n",
                    static_cast<unsigned long long>(agg_allocs));
    } else {
        std::printf("FAILED: see gates above\n");
    }
    return ok ? 0 : 1;
}

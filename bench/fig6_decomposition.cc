/**
 * @file
 * Figure 6 reproduction: decomposition of CHERIvoke's runtime
 * overhead into (1) quarantine buffer only, (2) + shadow-map
 * maintenance, (3) + sweeping, at the default 25% heap overhead;
 * plus the §6.1.3 analytical-model column.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

using namespace cherivoke;

int
main()
{
    bench::printSystems("Figure 6: Decomposition of run-time "
                        "overheads (25% heap overhead)");

    const sim::ExperimentConfig cfg = bench::defaultConfig();
    bench::printKnobs();
    stats::TextTable table({"benchmark", "quarantine only",
                            "+shadow", "+sweep (total)",
                            "model (sweep)"});
    std::vector<double> q_col, s_col, t_col;

    for (const auto &profile : workload::specProfiles()) {
        const sim::BenchResult r =
            sim::runBenchmark(profile, cfg);
        const double quarantine_only =
            1.0 + r.quarantinePenalty - r.batchingGain;
        const double with_shadow =
            quarantine_only + r.shadowOverhead;
        const double total = with_shadow + r.sweepOverhead;
        table.addRow({
            profile.name,
            stats::TextTable::num(quarantine_only, 3),
            stats::TextTable::num(with_shadow, 3),
            stats::TextTable::num(total, 3),
            stats::TextTable::num(r.predictedSweepOverhead, 3),
        });
        q_col.push_back(quarantine_only);
        s_col.push_back(with_shadow);
        t_col.push_back(total);
    }
    table.addRow({"geomean",
                  stats::TextTable::num(stats::geomean(q_col), 3),
                  stats::TextTable::num(stats::geomean(s_col), 3),
                  stats::TextTable::num(stats::geomean(t_col), 3),
                  "-"});
    std::printf("%s\n", table.render().c_str());
    std::printf("model (sweep) = FreeRate x PointerDensity / "
                "(ScanRate x QuarantineFraction), evaluated on "
                "measured inputs (0 when no sweeps ran).\n");
    return 0;
}

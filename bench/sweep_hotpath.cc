/**
 * @file
 * Sweep/paint hot-path throughput bench: how fast does the
 * *simulator itself* run, independent of the modelled cycle counts?
 *
 * Measures, on one deterministic pointered heap image:
 *  - paint throughput (granules painted per second), serial vs
 *    concurrent sharded painting (shards in {1, 2, 4, 8});
 *  - sweep throughput (pages swept per second), serial vs threaded
 *    (threads in {1, 2, 4, 8}) — steady-state scans after a warmup
 *    pass performs the revocations, isolating the page-directory and
 *    word-level tag-scan speed.
 *
 * Every configuration is checked against the serial reference: paint
 * must produce byte-identical shadow contents and identical
 * PaintStats, sweeps identical SweepStats; any divergence fails the
 * bench. Results are emitted both as a table and machine-readable
 * into BENCH_sweep.json so the perf trajectory is tracked PR over
 * PR.
 *
 * Environment knobs (strict: malformed values fail the run):
 *   CHERIVOKE_BENCH_ALLOCS = image size in allocations (default 80000)
 *   CHERIVOKE_BENCH_SECS   = min measure window per config (default 0.2)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "revoke/sweeper.hh"
#include "stats/table.hh"
#include "support/env.hh"
#include "support/rng.hh"

using namespace cherivoke;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Snapshot of the heap's whole shadow span. */
std::vector<uint8_t>
shadowBytes(mem::AddressSpace &space)
{
    uint64_t lo = UINT64_MAX, hi = 0;
    for (const mem::Segment &seg : space.heapSegments()) {
        lo = std::min(lo, seg.base);
        hi = std::max(hi, seg.end());
    }
    if (lo >= hi)
        return {};
    const uint64_t s_lo = mem::shadowAddrOf(lo);
    const uint64_t s_hi = mem::shadowAddrOf(hi) + 1;
    std::vector<uint8_t> bytes(s_hi - s_lo);
    space.memory().peekBytes(s_lo, bytes.data(), bytes.size());
    return bytes;
}

bool
paintEqual(const alloc::PaintStats &a, const alloc::PaintStats &b)
{
    return a.bitOps == b.bitOps && a.byteOps == b.byteOps &&
           a.wordOps == b.wordOps && a.dwordOps == b.dwordOps;
}

struct PaintRow
{
    unsigned shards = 0; //!< 0 = serial (unsharded) reference
    double secPerIter = 0;
    double granulesPerSec = 0;
    bool equal = true;
};

struct SweepRow
{
    unsigned threads = 0;
    double secPerIter = 0;
    double pagesPerSec = 0;
    bool equal = true;
};

} // namespace

int
main()
{
    const uint64_t allocs = static_cast<uint64_t>(
        envI64("CHERIVOKE_BENCH_ALLOCS", 80000));
    const double window = envF64("CHERIVOKE_BENCH_SECS", 0.2);
    announceEnvKnobs();

    std::printf("==============================================\n");
    std::printf("Sweep/paint hot-path throughput "
                "(%llu allocations)\n",
                static_cast<unsigned long long>(allocs));
    std::printf("==============================================\n");

    // One deterministic pointered image; every configuration reuses
    // it, so all measurements and equality checks see equal work.
    mem::AddressSpace space;
    alloc::CherivokeAllocator heap(space, alloc::CherivokeConfig{});
    Rng rng(1234);
    std::vector<cap::Capability> live;
    live.reserve(allocs);
    for (uint64_t i = 0; i < allocs; ++i) {
        const cap::Capability c =
            heap.malloc(rng.nextLogUniform(32, 2048));
        space.memory().writeCap(
            mem::kGlobalsBase + (i % 200000) * kGranuleBytes, c);
        if (!live.empty() && rng.nextBool(0.4)) {
            const cap::Capability &other =
                live[rng.nextBounded(live.size())];
            space.memory().storeCap(other, other.base(), c);
        }
        live.push_back(c);
    }
    for (size_t i = 0; i < live.size(); i += 4)
        heap.free(live[i]);

    const std::vector<alloc::QuarantineRun> runs =
        heap.quarantine().runs();
    uint64_t painted_granules = 0;
    for (const alloc::QuarantineRun &run : runs)
        painted_granules += (run.size - alloc::kChunkHeader) /
                            kGranuleBytes;
    alloc::ShadowMap &shadow = heap.shadowMap();
    auto clearAll = [&] {
        for (const alloc::QuarantineRun &run : runs)
            shadow.clear(run.addr + alloc::kChunkHeader,
                         run.size - alloc::kChunkHeader);
    };

    // ---- Paint: serial reference, then concurrent shards --------
    bool all_equal = true;
    std::vector<PaintRow> paint_rows;
    alloc::PaintStats ref_stats;
    std::vector<uint8_t> ref_bytes;
    for (const unsigned shards : {0u, 1u, 2u, 4u, 8u}) {
        const auto sharded =
            shards ? heap.quarantine().shardedRuns(shards)
                   : std::vector<alloc::QuarantineShard>{};
        auto paintOnce = [&] {
            alloc::PaintStats st;
            if (shards == 0) {
                for (const alloc::QuarantineRun &run : runs)
                    st += shadow.paint(run.addr + alloc::kChunkHeader,
                                       run.size - alloc::kChunkHeader);
            } else {
                st = alloc::paintShardsConcurrent(shadow, sharded);
            }
            return st;
        };

        // Correctness first: identical shadow bytes + PaintStats.
        const alloc::PaintStats stats = paintOnce();
        PaintRow row;
        row.shards = shards;
        if (shards == 0) {
            ref_stats = stats;
            ref_bytes = shadowBytes(space);
        } else {
            row.equal = paintEqual(stats, ref_stats) &&
                        shadowBytes(space) == ref_bytes;
        }
        all_equal = all_equal && row.equal;
        clearAll();

        // Then throughput: repeat paint/clear, timing the paints.
        double painting = 0;
        uint64_t iters = 0;
        const double begin = now();
        while (now() - begin < window || iters < 3) {
            const double t0 = now();
            paintOnce();
            painting += now() - t0;
            ++iters;
            clearAll();
        }
        row.secPerIter = painting / static_cast<double>(iters);
        row.granulesPerSec =
            static_cast<double>(painted_granules) / row.secPerIter;
        paint_rows.push_back(row);
    }

    // ---- Sweep: serial vs threaded steady-state scans -----------
    heap.prepareSweep();
    std::vector<SweepRow> sweep_rows;
    revoke::SweepStats ref_sweep;
    {
        // Warmup: the first sweep performs the revocations (and
        // cleans pages that were already tag-free), the second
        // cleans the pages the revocations emptied. After that the
        // image is steady state — measured sweeps mutate nothing, so
        // every thread count scans identical tag and PTE state.
        revoke::Sweeper warm;
        warm.sweep(space, shadow);
        warm.sweep(space, shadow);
    }
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        revoke::SweepOptions opts;
        opts.threads = threads;
        revoke::Sweeper sweeper(opts);
        const revoke::SweepStats stats = sweeper.sweep(space, shadow);
        SweepRow row;
        row.threads = threads;
        if (threads == 1) {
            ref_sweep = stats;
        } else {
            row.equal = stats == ref_sweep;
        }
        all_equal = all_equal && row.equal;

        double sweeping = 0;
        uint64_t iters = 0, pages = 0;
        const double begin = now();
        while (now() - begin < window || iters < 3) {
            const double t0 = now();
            const revoke::SweepStats s = sweeper.sweep(space, shadow);
            sweeping += now() - t0;
            pages += s.pagesSwept;
            ++iters;
        }
        row.secPerIter = sweeping / static_cast<double>(iters);
        row.pagesPerSec = static_cast<double>(pages) / sweeping;
        sweep_rows.push_back(row);
    }
    heap.finishSweep();

    // ---- Report -------------------------------------------------
    stats::TextTable paint_table(
        {"paint", "ms/iter", "Mgranules/s", "equal"});
    for (const PaintRow &r : paint_rows) {
        paint_table.addRow(
            {r.shards ? std::to_string(r.shards) + " shards"
                      : "serial",
             stats::TextTable::num(r.secPerIter * 1e3, 3),
             stats::TextTable::num(r.granulesPerSec / 1e6, 2),
             r.equal ? "yes" : "NO"});
    }
    std::printf("%s\n", paint_table.render().c_str());

    stats::TextTable sweep_table(
        {"sweep", "ms/iter", "Mpages/s", "equal"});
    for (const SweepRow &r : sweep_rows) {
        sweep_table.addRow(
            {std::to_string(r.threads) + " thread" +
                 (r.threads > 1 ? "s" : ""),
             stats::TextTable::num(r.secPerIter * 1e3, 3),
             stats::TextTable::num(r.pagesPerSec / 1e6, 3),
             r.equal ? "yes" : "NO"});
    }
    std::printf("%s\n", sweep_table.render().c_str());

    const double paint_serial = paint_rows[0].secPerIter;
    double paint_4 = 0, sweep_1 = 0, sweep_4 = 0;
    for (const PaintRow &r : paint_rows)
        if (r.shards == 4)
            paint_4 = r.secPerIter;
    for (const SweepRow &r : sweep_rows) {
        if (r.threads == 1)
            sweep_1 = r.secPerIter;
        if (r.threads == 4)
            sweep_4 = r.secPerIter;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("paint speedup (4 shards vs serial): %.2fx\n",
                paint_serial / paint_4);
    std::printf("sweep speedup (4 threads vs 1):     %.2fx\n",
                sweep_1 / sweep_4);
    std::printf("hardware concurrency: %u%s\n", hw,
                hw < 2 ? " (threaded configs cannot beat serial "
                         "wall-clock on this host)"
                       : "");

    // ---- BENCH_sweep.json ---------------------------------------
    FILE *json = std::fopen("BENCH_sweep.json", "w");
    if (json) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"bench\": \"sweep_hotpath\",\n");
        std::fprintf(json, "  \"allocations\": %llu,\n",
                     static_cast<unsigned long long>(allocs));
        std::fprintf(json, "  \"painted_granules\": %llu,\n",
                     static_cast<unsigned long long>(
                         painted_granules));
        std::fprintf(json, "  \"swept_pages_per_iter\": %llu,\n",
                     static_cast<unsigned long long>(
                         ref_sweep.pagesSwept));
        std::fprintf(json, "  \"paint\": [\n");
        for (size_t i = 0; i < paint_rows.size(); ++i) {
            const PaintRow &r = paint_rows[i];
            std::fprintf(
                json,
                "    {\"shards\": %u, \"sec_per_iter\": %.6g, "
                "\"granules_per_sec\": %.6g, \"equal\": %s}%s\n",
                r.shards, r.secPerIter, r.granulesPerSec,
                r.equal ? "true" : "false",
                i + 1 < paint_rows.size() ? "," : "");
        }
        std::fprintf(json, "  ],\n");
        std::fprintf(json, "  \"sweep\": [\n");
        for (size_t i = 0; i < sweep_rows.size(); ++i) {
            const SweepRow &r = sweep_rows[i];
            std::fprintf(
                json,
                "    {\"threads\": %u, \"sec_per_iter\": %.6g, "
                "\"pages_per_sec\": %.6g, \"equal\": %s}%s\n",
                r.threads, r.secPerIter, r.pagesPerSec,
                r.equal ? "true" : "false",
                i + 1 < sweep_rows.size() ? "," : "");
        }
        std::fprintf(json, "  ],\n");
        std::fprintf(json, "  \"hw_concurrency\": %u,\n", hw);
        std::fprintf(json, "  \"paint_speedup_4shards\": %.3f,\n",
                     paint_serial / paint_4);
        std::fprintf(json, "  \"sweep_speedup_4threads\": %.3f,\n",
                     sweep_1 / sweep_4);
        std::fprintf(json, "  \"ok\": %s\n",
                     all_equal ? "true" : "false");
        std::fprintf(json, "}\n");
        std::fclose(json);
        std::printf("wrote BENCH_sweep.json\n");
    }

    // Gate parallel health wherever the host can show it: with
    // >= 4 hardware threads a working implementation wins clearly
    // (2-3x on quiet machines), so only a catastrophic threading
    // regression lands outside a 25% noise margin over serial —
    // shared CI runners stay deterministic, a serialisation bug
    // still fails the job. The speedups themselves are reported as
    // data (and in BENCH_sweep.json) rather than gated exactly.
    bool perf_ok = true;
    if (hw >= 4) {
        if (paint_4 > paint_serial * 1.25) {
            std::printf("FAILED: 4-shard paint (%f ms) regressed "
                        ">25%% past serial (%f ms) on a %u-thread "
                        "host\n",
                        paint_4 * 1e3, paint_serial * 1e3, hw);
            perf_ok = false;
        }
        if (sweep_4 > sweep_1 * 1.25) {
            std::printf("FAILED: 4-thread sweep (%f ms) regressed "
                        ">25%% past serial (%f ms) on a %u-thread "
                        "host\n",
                        sweep_4 * 1e3, sweep_1 * 1e3, hw);
            perf_ok = false;
        }
    }

    std::printf(all_equal
                    ? "OK: all shard/thread configurations match "
                      "the serial reference exactly\n"
                    : "FAILED: a configuration diverged from the "
                      "serial reference\n");
    return all_equal && perf_ok ? 0 : 1;
}

/**
 * @file
 * Head-to-head comparison of the three revocation backends — sweep
 * (CHERIvoke quarantine + sweeping), color (PICASSO-style colored
 * capabilities), objid (CHERI-D-style inline object IDs) — on the
 * same workload matrix, machine model, and engine policy surface.
 *
 * Four phases:
 *  1. overhead/traffic curves: every SPEC profile under every
 *     backend, normalised runtime and backend-mechanics counters;
 *  2. color exhaustion: a deliberately tiny color pool, gating that
 *     pool-empty stalls and forced cohort sharing actually occur;
 *  3. object-ID compaction: a low compaction threshold, gating that
 *     table-compaction epochs actually run;
 *  4. cross-backend parity: backend-independent mutator statistics
 *     must agree across the three backends on the same seeded trace.
 *
 * The whole deterministic section runs twice in-process and must be
 * byte-identical across the passes; wall-clock readings live outside
 * it. Emits BENCH_backend.json (deterministic fields + wall_sec),
 * uploaded by the Release CI leg and diffed by the bench-regression
 * step. Exit code reflects the gates.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

using namespace cherivoke;

namespace {

constexpr revoke::BackendKind kBackends[] = {
    revoke::BackendKind::Sweep,
    revoke::BackendKind::Color,
    revoke::BackendKind::ObjectId,
};
constexpr size_t kNumBackends =
    sizeof(kBackends) / sizeof(kBackends[0]);

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One profile × backend run. wallSec is the only field outside the
 *  deterministic section. */
struct Cell
{
    sim::BenchResult r;
    double wallSec = 0;
};

struct Row
{
    std::string benchmark;
    Cell cells[kNumBackends];
};

/** Everything one deterministic pass produces. */
struct Pass
{
    std::vector<Row> rows;
    Cell exhaustion; //!< color backend, 2-color pool
    Cell compaction; //!< objid backend, low compaction threshold
    bool parityOk = true;
    std::string parityDetail;
    /** Byte-exact rendering of every deterministic statistic; two
     *  passes match iff these strings match. */
    std::string fingerprint;
};

Cell
runCell(const workload::BenchmarkProfile &profile,
        const sim::ExperimentConfig &cfg)
{
    Cell cell;
    const double t0 = nowSec();
    cell.r = sim::runBenchmark(profile, cfg);
    cell.wallSec = nowSec() - t0;
    return cell;
}

/** Append one cell's deterministic statistics to the pass
 *  fingerprint. %.17g round-trips IEEE doubles exactly. */
void
addFingerprint(std::string &out, const std::string &benchmark,
               revoke::BackendKind kind, const sim::BenchResult &r)
{
    char buf[640];
    const workload::DriverResult &m = r.run;
    const revoke::BackendStats &b = r.backendStats;
    std::snprintf(
        buf, sizeof(buf),
        "%s/%s allocs=%llu frees=%llu freed=%llu stores=%llu "
        "peak_allocs=%llu peak_bytes=%llu vsec=%.17g "
        "epochs=%llu pages=%llu revoked=%llu "
        "time=%.17g sweep=%.17g traffic=%.17g "
        "ca=%llu cr=%llu cy=%llu rs=%llu st=%llu fs=%llu "
        "ia=%llu ir=%llu ic=%llu cp=%llu ce=%llu mb=%llu\n",
        benchmark.c_str(), revoke::backendName(kind),
        static_cast<unsigned long long>(m.allocCalls),
        static_cast<unsigned long long>(m.freeCalls),
        static_cast<unsigned long long>(m.freedBytes),
        static_cast<unsigned long long>(m.ptrStores),
        static_cast<unsigned long long>(m.peakLiveAllocs),
        static_cast<unsigned long long>(m.peakLiveBytes),
        m.virtualSeconds,
        static_cast<unsigned long long>(m.revoker.epochs),
        static_cast<unsigned long long>(m.revoker.sweep.pagesSwept),
        static_cast<unsigned long long>(m.revoker.sweep.capsRevoked),
        r.normalizedTime, r.sweepOverhead, r.trafficOverheadPct,
        static_cast<unsigned long long>(b.colorAssigns),
        static_cast<unsigned long long>(b.colorsRetired),
        static_cast<unsigned long long>(b.colorsRecycled),
        static_cast<unsigned long long>(b.recycleScans),
        static_cast<unsigned long long>(b.colorExhaustionStalls),
        static_cast<unsigned long long>(b.colorForcedShares),
        static_cast<unsigned long long>(b.idsAssigned),
        static_cast<unsigned long long>(b.idsRetired),
        static_cast<unsigned long long>(b.idChecks),
        static_cast<unsigned long long>(b.idCompactions),
        static_cast<unsigned long long>(b.idTableEntriesCompacted),
        static_cast<unsigned long long>(b.metadataBytes));
    out += buf;
}

/** Within @p tolerance relatively (handles the release-timing noise
 *  dlmalloc chunk splitting puts on byte totals). */
bool
bytesClose(uint64_t a, uint64_t b, double tolerance)
{
    const double hi = static_cast<double>(a > b ? a : b);
    const double lo = static_cast<double>(a > b ? b : a);
    return hi == 0 || (hi - lo) / hi <= tolerance;
}

/**
 * Cross-backend parity for one row: the mutator-side statistics a
 * backend cannot legitimately change must agree across all three.
 * Counters are exact; byte totals get 1% slack because release
 * timing changes dlmalloc chunk splitting (and thus usable sizes).
 */
bool
checkParity(const Row &row, std::string &detail)
{
    const workload::DriverResult &s = row.cells[0].r.run;
    bool ok = true;
    char buf[256];
    for (size_t i = 1; i < kNumBackends; ++i) {
        const workload::DriverResult &m = row.cells[i].r.run;
        const bool exact = m.allocCalls == s.allocCalls &&
                           m.freeCalls == s.freeCalls &&
                           m.ptrStores == s.ptrStores &&
                           m.peakLiveAllocs == s.peakLiveAllocs &&
                           m.virtualSeconds == s.virtualSeconds;
        const bool close =
            bytesClose(m.freedBytes, s.freedBytes, 0.01) &&
            bytesClose(m.peakLiveBytes, s.peakLiveBytes, 0.01);
        if (!exact || !close) {
            ok = false;
            std::snprintf(buf, sizeof(buf),
                          "  parity broken: %s %s vs sweep "
                          "(exact=%d close=%d)\n",
                          row.benchmark.c_str(),
                          revoke::backendName(kBackends[i]),
                          exact ? 1 : 0, close ? 1 : 0);
            detail += buf;
        }
    }
    return ok;
}

Pass
runPass(const sim::ExperimentConfig &base)
{
    Pass pass;
    for (const auto &profile : workload::specProfiles()) {
        Row row;
        row.benchmark = profile.name;
        for (size_t i = 0; i < kNumBackends; ++i) {
            sim::ExperimentConfig cfg = base;
            cfg.backend = kBackends[i];
            row.cells[i] = runCell(profile, cfg);
            addFingerprint(pass.fingerprint, row.benchmark,
                           kBackends[i], row.cells[i].r);
        }
        pass.parityOk &= checkParity(row, pass.parityDetail);
        pass.rows.push_back(std::move(row));
    }

    // Color exhaustion: a 2-color pool with short cohorts must run
    // out mid-run and fall back to forced cohort sharing.
    const workload::BenchmarkProfile stress =
        workload::profileFor("xalancbmk");
    {
        sim::ExperimentConfig cfg = base;
        cfg.backend = revoke::BackendKind::Color;
        cfg.backendConfig.colors = 2;
        cfg.backendConfig.allocsPerColor = 64;
        pass.exhaustion = runCell(stress, cfg);
        addFingerprint(pass.fingerprint, "exhaustion",
                       cfg.backend, pass.exhaustion.r);
    }

    // Object-ID compaction: a low retired-ID threshold must trigger
    // table-compaction epochs.
    {
        sim::ExperimentConfig cfg = base;
        cfg.backend = revoke::BackendKind::ObjectId;
        cfg.backendConfig.idCompactRetired = 512;
        pass.compaction = runCell(stress, cfg);
        addFingerprint(pass.fingerprint, "compaction",
                       cfg.backend, pass.compaction.r);
    }
    return pass;
}

void
writeJson(const Pass &pass, bool deterministic, bool ok)
{
    FILE *json = std::fopen("BENCH_backend.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_backend.json\n");
        return;
    }
    auto cellJson = [&](const Cell &cell, revoke::BackendKind kind,
                        const char *indent, const char *tail) {
        const workload::DriverResult &m = cell.r.run;
        const revoke::BackendStats &b = cell.r.backendStats;
        std::fprintf(
            json,
            "%s{\"backend\": \"%s\", \"allocs\": %llu, "
            "\"frees\": %llu, \"ptr_stores\": %llu, "
            "\"peak_live_allocs\": %llu, \"epochs\": %llu, "
            "\"pages_swept\": %llu, \"caps_revoked\": %llu, "
            "\"normalized_time\": %.6g, \"sweep_overhead\": %.6g, "
            "\"traffic_pct\": %.6g, \"color_assigns\": %llu, "
            "\"colors_recycled\": %llu, \"recycle_scans\": %llu, "
            "\"exhaustion_stalls\": %llu, \"forced_shares\": %llu, "
            "\"ids_assigned\": %llu, \"id_checks\": %llu, "
            "\"id_compactions\": %llu, \"entries_compacted\": %llu, "
            "\"metadata_bytes\": %llu, \"wall_sec\": %.6g}%s\n",
            indent, revoke::backendName(kind),
            static_cast<unsigned long long>(m.allocCalls),
            static_cast<unsigned long long>(m.freeCalls),
            static_cast<unsigned long long>(m.ptrStores),
            static_cast<unsigned long long>(m.peakLiveAllocs),
            static_cast<unsigned long long>(m.revoker.epochs),
            static_cast<unsigned long long>(
                m.revoker.sweep.pagesSwept),
            static_cast<unsigned long long>(
                m.revoker.sweep.capsRevoked),
            cell.r.normalizedTime, cell.r.sweepOverhead,
            cell.r.trafficOverheadPct,
            static_cast<unsigned long long>(b.colorAssigns),
            static_cast<unsigned long long>(b.colorsRecycled),
            static_cast<unsigned long long>(b.recycleScans),
            static_cast<unsigned long long>(b.colorExhaustionStalls),
            static_cast<unsigned long long>(b.colorForcedShares),
            static_cast<unsigned long long>(b.idsAssigned),
            static_cast<unsigned long long>(b.idChecks),
            static_cast<unsigned long long>(b.idCompactions),
            static_cast<unsigned long long>(b.idTableEntriesCompacted),
            static_cast<unsigned long long>(b.metadataBytes),
            cell.wallSec, tail);
    };

    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"backend_compare\",\n");
    std::fprintf(json, "  \"rows\": [\n");
    for (size_t i = 0; i < pass.rows.size(); ++i) {
        const Row &row = pass.rows[i];
        std::fprintf(json, "    {\"benchmark\": \"%s\", "
                           "\"backends\": [\n",
                     row.benchmark.c_str());
        for (size_t k = 0; k < kNumBackends; ++k)
            cellJson(row.cells[k], kBackends[k], "      ",
                     k + 1 < kNumBackends ? "," : "");
        std::fprintf(json, "    ]}%s\n",
                     i + 1 < pass.rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"exhaustion\":\n");
    cellJson(pass.exhaustion, revoke::BackendKind::Color, "    ",
             ",");
    std::fprintf(json, "  \"compaction\":\n");
    cellJson(pass.compaction, revoke::BackendKind::ObjectId, "    ",
             ",");
    std::fprintf(json, "  \"parity\": %s,\n",
                 pass.parityOk ? "true" : "false");
    std::fprintf(json, "  \"deterministic\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(json, "  \"ok\": %s\n", ok ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_backend.json\n");
}

} // namespace

int
main()
{
    bench::printSystems("Backend comparison: sweep vs colored "
                        "capabilities vs inline object IDs");

    const sim::ExperimentConfig base = bench::defaultConfig();
    bench::printKnobs();

    // Two full passes; every deterministic statistic must match
    // byte for byte (the acceptance gate for the whole subsystem).
    const Pass pass = runPass(base);
    const Pass again = runPass(base);
    const bool deterministic = pass.fingerprint == again.fingerprint;

    stats::TextTable time_table(
        {"benchmark", "sweep", "color", "objid"});
    std::vector<double> cols[kNumBackends];
    for (const Row &row : pass.rows) {
        std::vector<std::string> cells = {row.benchmark};
        for (size_t k = 0; k < kNumBackends; ++k) {
            cells.push_back(stats::TextTable::num(
                row.cells[k].r.normalizedTime, 3));
            cols[k].push_back(row.cells[k].r.normalizedTime);
        }
        time_table.addRow(cells);
    }
    time_table.addRow(
        {"geomean", stats::TextTable::num(stats::geomean(cols[0]), 3),
         stats::TextTable::num(stats::geomean(cols[1]), 3),
         stats::TextTable::num(stats::geomean(cols[2]), 3)});
    std::printf("Normalised runtime (1.0 = no revocation):\n%s\n",
                time_table.render().c_str());

    stats::TextTable mech_table({"benchmark", "col recycled",
                                 "recycle scans", "forced shares",
                                 "ids retired", "id checks",
                                 "compactions"});
    for (const Row &row : pass.rows) {
        const revoke::BackendStats &c = row.cells[1].r.backendStats;
        const revoke::BackendStats &o = row.cells[2].r.backendStats;
        mech_table.addRow({row.benchmark,
                           std::to_string(c.colorsRecycled),
                           std::to_string(c.recycleScans),
                           std::to_string(c.colorForcedShares),
                           std::to_string(o.idsRetired),
                           std::to_string(o.idChecks),
                           std::to_string(o.idCompactions)});
    }
    std::printf("Backend mechanics (color / objid cells):\n%s\n",
                mech_table.render().c_str());

    // ---- gates --------------------------------------------------
    const revoke::BackendStats &ex =
        pass.exhaustion.r.backendStats;
    const bool exhaustion_ok =
        ex.colorExhaustionStalls > 0 && ex.colorForcedShares > 0;
    std::printf("color exhaustion (2-color pool): stalls %llu, "
                "forced shares %llu, recycled %llu  [%s]\n",
                static_cast<unsigned long long>(
                    ex.colorExhaustionStalls),
                static_cast<unsigned long long>(ex.colorForcedShares),
                static_cast<unsigned long long>(ex.colorsRecycled),
                exhaustion_ok ? "ok" : "FAILED");

    const revoke::BackendStats &cp =
        pass.compaction.r.backendStats;
    const bool compaction_ok =
        cp.idCompactions > 0 && cp.idTableEntriesCompacted > 0;
    std::printf("objid compaction (threshold 512): compactions "
                "%llu, entries compacted %llu  [%s]\n",
                static_cast<unsigned long long>(cp.idCompactions),
                static_cast<unsigned long long>(
                    cp.idTableEntriesCompacted),
                compaction_ok ? "ok" : "FAILED");

    std::printf("cross-backend parity: %s\n",
                pass.parityOk ? "ok" : "FAILED");
    if (!pass.parityOk)
        std::printf("%s", pass.parityDetail.c_str());
    std::printf("deterministic across two passes: %s\n",
                deterministic ? "ok" : "FAILED");

    const bool ok = exhaustion_ok && compaction_ok &&
                    pass.parityOk && deterministic;
    writeJson(pass, deterministic, ok);
    std::printf(ok ? "OK: all backend gates passed\n"
                   : "FAILED: see gates above\n");
    return ok ? 0 : 1;
}

/**
 * @file
 * Ablations for the design choices DESIGN.md §5 calls out, beyond the
 * paper's own figures:
 *
 *  1. Parallel sweeping (§3.5 "embarrassingly parallel"): real host
 *     wall-clock speedup of the sweeper across thread counts on a
 *     large memory image.
 *  2. Work-elimination combinations: none / PTE-only / CLoadTags-only
 *     / both / both+prefetch, measured as lines actually read and
 *     DRAM traffic.
 *  3. Strict use-after-free mode (§3.7): sweeps per free vs the
 *     default batched revocation, on the same workload.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "revoke/revocation_engine.hh"
#include "stats/table.hh"
#include "support/rng.hh"

using namespace cherivoke;

namespace {

/** Build a big pointered heap image for sweeping. */
struct Image
{
    mem::AddressSpace space{64 * KiB, 64 * KiB};
    std::unique_ptr<alloc::CherivokeAllocator> heap;
    std::vector<cap::Capability> live;

    explicit Image(uint64_t bytes, bool paint = true)
    {
        alloc::CherivokeConfig cfg;
        cfg.minQuarantineBytes = 16;
        heap = std::make_unique<alloc::CherivokeAllocator>(space,
                                                           cfg);
        Rng rng(3);
        uint64_t allocated = 0;
        while (allocated < bytes) {
            const uint64_t size = rng.nextLogUniform(64, 4096);
            const cap::Capability c = heap->malloc(size);
            // Half of all objects carry pointers.
            if (rng.nextBool(0.5) && !live.empty()) {
                space.memory().storeCap(
                    c, c.base(),
                    live[rng.nextBounded(live.size())]);
            }
            live.push_back(c);
            allocated += size;
        }
        if (!paint)
            return;
        // Quarantine a third of them and paint.
        for (size_t i = 0; i < live.size(); i += 3)
            heap->free(live[i]);
        heap->prepareSweep();
    }
};

void
parallelAblation()
{
    std::printf("--- (1) Parallel sweep: host wall-clock ---\n");
    stats::TextTable table({"threads", "wall ms", "speedup",
                            "caps revoked"});
    double base_ms = 0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        Image image(64 * MiB);
        revoke::SweepOptions opts;
        opts.threads = threads;
        opts.useCloadTags = false;
        revoke::Sweeper sweeper(opts);
        const auto start = std::chrono::steady_clock::now();
        const revoke::SweepStats stats =
            sweeper.sweep(image.space, image.heap->shadowMap());
        const auto end = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(end - start)
                .count();
        if (threads == 1)
            base_ms = ms;
        table.addRow({std::to_string(threads),
                      stats::TextTable::num(ms, 1),
                      stats::TextTable::num(base_ms / ms, 2),
                      std::to_string(stats.capsRevoked)});
    }
    std::printf("%s\n", table.render().c_str());
}

void
eliminationAblation()
{
    std::printf("--- (2) Work elimination: lines read + DRAM ---\n");
    stats::TextTable table({"config", "lines read", "dram KiB",
                            "LLC hits", "revoked"});
    struct Combo
    {
        const char *name;
        bool pte, tags, prefetch;
    };
    const Combo combos[] = {
        {"none", false, false, false},
        {"PTE only", true, false, false},
        {"CLoadTags only", false, true, false},
        {"PTE + CLoadTags", true, true, false},
        {"PTE + CLoadTags + prefetch", true, true, true},
    };
    for (const Combo &combo : combos) {
        Image image(8 * MiB);
        cache::Hierarchy hier;
        revoke::SweepOptions opts;
        opts.usePteCapDirty = combo.pte;
        opts.useCloadTags = combo.tags;
        opts.cloadTagsPrefetch = combo.prefetch;
        revoke::Sweeper sweeper(opts);
        const revoke::SweepStats stats = sweeper.sweep(
            image.space, image.heap->shadowMap(), &hier);
        table.addRow({combo.name, std::to_string(stats.linesSwept),
                      std::to_string(hier.dram().totalBytes() / KiB),
                      std::to_string(hier.llc() ? hier.llc()->hits()
                                                : 0),
                      std::to_string(stats.capsRevoked)});
    }
    std::printf("%s\n", table.render().c_str());
}

void
strictModeAblation()
{
    std::printf("--- (3) Strict UAF mode vs batched (§3.7) ---\n");
    stats::TextTable table(
        {"mode", "frees", "sweeps", "bytes swept", "caps revoked"});
    for (const bool strict : {false, true}) {
        mem::AddressSpace space(64 * KiB, 64 * KiB);
        alloc::CherivokeConfig cfg;
        cfg.minQuarantineBytes = 4 * KiB;
        alloc::CherivokeAllocator heap(space, cfg);
        revoke::RevocationEngine revoker(heap, space);
        Rng rng(11);
        std::vector<cap::Capability> live;
        uint64_t frees = 0;
        for (int i = 0; i < 1500; ++i) {
            if (rng.nextBool(0.55) || live.empty()) {
                const cap::Capability c =
                    heap.malloc(rng.nextLogUniform(32, 1024));
                // Stash references so sweeps have revocation work.
                space.memory().writeCap(
                    mem::kGlobalsBase + rng.nextBounded(2048) * 16,
                    c);
                if (!live.empty()) {
                    const cap::Capability &other =
                        live[rng.nextBounded(live.size())];
                    space.memory().storeCap(other, other.base(), c);
                }
                live.push_back(c);
            } else {
                const size_t idx = rng.nextBounded(live.size());
                const cap::Capability victim = live[idx];
                live.erase(live.begin() +
                           static_cast<long>(idx));
                ++frees;
                if (strict) {
                    revoker.freeAndRevoke(victim);
                } else {
                    heap.free(victim);
                    revoker.maybeRevoke();
                }
            }
        }
        table.addRow(
            {strict ? "strict (sweep per free)" : "batched (25%)",
             std::to_string(frees),
             std::to_string(revoker.totals().epochs),
             std::to_string(revoker.totals().sweep.bytesSwept()),
             std::to_string(revoker.totals().sweep.capsRevoked)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Strict mode gives use-after-free (not just "
                "use-after-reallocation) detection at a\nper-free "
                "sweep cost — the paper's rationale for batching "
                "(§3.7).\n");
}

void
incrementalAblation()
{
    std::printf("--- (4) Incremental revocation: pause bounds "
                "(§3.5 + load barrier) ---\n");
    stats::TextTable table({"pages/step", "steps", "max pause ms",
                            "total ms", "barrier strips"});
    for (const size_t pages_per_step : {4u, 16u, 64u, 0u}) {
        Image image(16 * MiB, /*paint=*/false);
        revoke::RevocationEngine inc(
            *image.heap, image.space,
            revoke::EngineConfig{revoke::SweepOptions{},
                                 revoke::PolicyKind::Incremental,
                                 64, 1});
        for (size_t i = 0; i < image.live.size(); i += 5)
            image.heap->free(image.live[i]);
        const size_t step_size =
            pages_per_step == 0 ? SIZE_MAX : pages_per_step;
        inc.beginEpoch();
        size_t steps = 0;
        double max_pause = 0, total = 0;
        for (;;) {
            const auto t0 = std::chrono::steady_clock::now();
            const size_t left = inc.step(step_size);
            const auto t1 = std::chrono::steady_clock::now();
            const double ms =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            max_pause = std::max(max_pause, ms);
            total += ms;
            ++steps;
            if (left == 0)
                break;
        }
        inc.finishEpoch();
        table.addRow(
            {pages_per_step == 0 ? "all (stop-the-world)"
                                 : std::to_string(pages_per_step),
             std::to_string(steps),
             stats::TextTable::num(max_pause, 3),
             stats::TextTable::num(total, 3),
             std::to_string(image.space.memory().counters().value(
                 "mem.load_barrier_strips"))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Smaller steps bound the mutator pause at slightly "
                "higher total cost; the load\nbarrier keeps "
                "revocation sound while the program runs between "
                "steps.\n");
}

} // namespace

int
main()
{
    bench::printSystems("Ablations: parallelism, work elimination, "
                        "strict mode, incremental epochs");
    bench::printKnobs();
    parallelAblation();
    eliminationAblation();
    strictModeAblation();
    incrementalAblation();
    return 0;
}

/**
 * @file
 * Figure 7 reproduction: DRAM bandwidth achieved by the sweep loop
 * under the three kernel implementations (simple, unrolled+pipelined,
 * AVX2), per benchmark with geomean, against the system's
 * 19,405 MiB/s full read bandwidth.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

using namespace cherivoke;

namespace {

/** Benchmarks with significant deallocation (the figure's subset). */
const char *kBenchmarks[] = {"ffmpeg", "astar",   "dealII",
                             "gobmk",  "h264ref", "hmmer",
                             "mcf",    "milc",    "omnetpp",
                             "povray", "soplex",  "sphinx3",
                             "xalancbmk"};

} // namespace

int
main()
{
    bench::printSystems("Figure 7: Sweep-loop DRAM bandwidth by "
                        "kernel (MiB/s)");

    const sim::ExperimentConfig base = bench::defaultConfig();
    bench::printKnobs();

    stats::TextTable table({"benchmark", "simple", "unrolled",
                            "AVX2"});
    std::vector<double> simple_col, unrolled_col, vec_col;

    for (const char *name : kBenchmarks) {
        const auto &profile = workload::profileFor(name);
        double rates[3] = {0, 0, 0};
        const revoke::SweepKernel kernels[3] = {
            revoke::SweepKernel::Naive,
            revoke::SweepKernel::Unrolled,
            revoke::SweepKernel::Vector};
        for (int k = 0; k < 3; ++k) {
            sim::ExperimentConfig cfg = base;
            cfg.kernel = kernels[k];
            const sim::BenchResult r =
                sim::runBenchmark(profile, cfg);
            rates[k] = r.achievedScanRate / MiB;
        }
        if (rates[0] <= 0)
            continue; // no sweeps ran
        table.addRow({name, stats::TextTable::num(rates[0], 0),
                      stats::TextTable::num(rates[1], 0),
                      stats::TextTable::num(rates[2], 0)});
        simple_col.push_back(rates[0]);
        unrolled_col.push_back(rates[1]);
        vec_col.push_back(rates[2]);
    }

    using stats::geomean;
    table.addRow({"geomean",
                  stats::TextTable::num(geomean(simple_col), 0),
                  stats::TextTable::num(geomean(unrolled_col), 0),
                  stats::TextTable::num(geomean(vec_col), 0)});
    std::printf("%s\n", table.render().c_str());
    const double peak = 19405.0;
    std::printf("Full read bandwidth: %.0f MiB/s. Fractions: "
                "simple %.0f%%, unrolled %.0f%%, AVX2 %.0f%% "
                "(paper: 28%%, 32%%, 39%%).\n",
                peak, 100 * geomean(simple_col) / peak,
                100 * geomean(unrolled_col) / peak,
                100 * geomean(vec_col) / peak);
    return 0;
}

/**
 * @file
 * Fault-containment chaos matrix: one cell per HeapFault kind, each
 * injecting that fault into the middle tenant of a 3-tenant
 * consolidation run via the deterministic fault plan, plus a
 * memory-pressure cell that drives the soft-page-budget escalation
 * ladder to an OOM-kill. Gates (any failure exits non-zero):
 *
 *  - containment: every injected fault retires exactly the faulting
 *    tenant (recorded in the result's fault log) and the process —
 *    and every other tenant — runs to completion;
 *  - survivor bit-identity: each survivor's per-tenant statistics
 *    match, byte for byte, a control run in which the faulty
 *    tenant's trace simply ends at the recorded fault op (valid
 *    under the pinned per-tenant scope + stop-the-world policy);
 *  - pressure ladder: with the budget set between one- and
 *    two-survivor residency, the ladder must reclaim pages, OOM-kill
 *    at least one tenant, and leave at least one tenant to finish;
 *  - seeded-plan determinism: the same CHERIVOKE_FAULT_SEED yields
 *    the same plan text and a bit-identical replay;
 *  - supervision matrix: with the background sweeper enabled, one
 *    cell per degradation-ladder rung (slow sweeper that recovers on
 *    bounded retries; stall that falls back to mutator-assist; two
 *    stalls that trigger the stop-the-world catch-up; three stalls
 *    that contain the domain; a crash that falls back to assist) —
 *    each must fire exactly the expected typed SweeperEvent counts,
 *    and survivors must stay bit-identical to a sweeper-off control;
 *  - matrix determinism: the whole matrix runs twice and every
 *    deterministic statistic (fault and sweeper-event logs included,
 *    wall-clock excluded) must come out byte-identical.
 *
 * Results go to stdout and BENCH_fault.json. The JSON separates the
 * "deterministic" section (gated byte-identical across same-seed
 * runs) from the "reporting" section (containment latency and
 * survivor throughput — host wall-clock, excluded from the gate).
 *
 * Environment: the shared bench_common.hh knobs; the matrix pins
 * tenants/scope/policy/plan per cell (they are the experiment, not
 * configuration), so CHERIVOKE_FAULT_PLAN / CHERIVOKE_PAGE_BUDGET_MIB
 * are ignored here while CHERIVOKE_FAULT_SEED seeds the seeded phase.
 *
 * CHERIVOKE_FAULT_SUPERVISION_ONLY=1 runs just the supervision
 * matrix (control + sweeper stall/crash/slow cells, both
 * determinism passes) and skips the kind matrix, pressure ladder,
 * seeded phase, and JSON emission — the reduced configuration CI's
 * TSan leg runs so the racing sweeper gets sanitizer coverage
 * without the full matrix's wall-clock under instrumentation.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "support/fault.hh"
#include "tenant/trace_codec.hh"

using namespace cherivoke;

namespace {

constexpr double kMeanAllocBytes = 128.0;

workload::BenchmarkProfile
faultProfile()
{
    workload::BenchmarkProfile p;
    p.name = "fault_matrix";
    p.pagesWithPointers = 0.35;
    p.linePointerDensity = 0.06;
    p.temporalFragmentation = 0;
    p.liveHeapMiB = 2.0;
    p.freeRateMiBps = 4.0;
    p.freesPerSec = 4.0 * MiB / kMeanAllocBytes;
    p.appDramMiBps = 2000.0;
    return p;
}

/** Pinned 3-tenant configuration: per-tenant scope + stop-the-world
 *  make each survivor's statistics a pure function of its own trace,
 *  which is what the survivor bit-identity gate relies on. */
sim::ExperimentConfig
baseConfig()
{
    sim::ExperimentConfig cfg = bench::defaultConfig();
    cfg.tenants = 3;
    cfg.tenantScope = tenant::RevocationScope::PerTenant;
    cfg.policy = revoke::PolicyKind::StopTheWorld;
    cfg.tenantWeights.clear();
    cfg.tenantPolicies.clear();
    cfg.tenantBackends.clear();
    cfg.tenantHeapMiB = 0;
    cfg.tenantChurn = 0;
    cfg.scale = 1.0;
    cfg.durationSec = 1.0;
    cfg.faultPlanText.clear();
    cfg.faultSeed = 0;
    cfg.pageBudgetMiB = 0;
    return cfg;
}

/** Per-tenant statistics fingerprint (identity and host wall-clock
 *  excluded); survivors are "bit-identical" when these match. */
std::string
tenantFingerprint(const tenant::TenantResult &t)
{
    std::string out;
    char buf[256];
    auto add = [&](const char *key, double v) {
        std::snprintf(buf, sizeof(buf), "%s=%.17g\n", key, v);
        out += buf;
    };
    auto addU = [&](const char *key, uint64_t v) {
        std::snprintf(buf, sizeof(buf), "%s=%llu\n", key,
                      static_cast<unsigned long long>(v));
        out += buf;
    };
    addU("ops_applied", t.opsApplied);
    addU("allocs", t.run.allocCalls);
    addU("frees", t.run.freeCalls);
    addU("freed_bytes", t.run.freedBytes);
    addU("ptr_stores", t.run.ptrStores);
    addU("peak_live_bytes", t.run.peakLiveBytes);
    addU("peak_live_allocs", t.run.peakLiveAllocs);
    addU("peak_quarantine", t.run.peakQuarantineBytes);
    addU("peak_footprint", t.run.peakFootprintBytes);
    addU("epochs", t.run.revoker.epochs);
    addU("slices", t.run.revoker.slices);
    addU("paint_ops", t.run.revoker.paint.total());
    addU("pages_swept", t.run.revoker.sweep.pagesSwept);
    addU("lines_swept", t.run.revoker.sweep.linesSwept);
    addU("caps_examined", t.run.revoker.sweep.capsExamined);
    addU("caps_revoked", t.run.revoker.sweep.capsRevoked);
    addU("internal_frees", t.run.revoker.internalFrees);
    addU("bytes_released", t.run.revoker.bytesReleased);
    addU("mutator_fp", t.mutator.fingerprint());
    add("virtual_sec", t.run.virtualSeconds);
    add("page_density", t.run.pageDensity);
    add("line_density", t.run.lineDensity);
    return out;
}

/** The fault log rendered without its wall-clock field. */
std::string
faultLogText(const tenant::MultiTenantResult &m)
{
    std::string out;
    char buf[512];
    for (const tenant::FaultRecord &f : m.faults) {
        std::snprintf(
            buf, sizeof(buf),
            "fault kind=%s tenant=%llu slot=%zu step=%llu op=%llu "
            "injected=%d msg=%s\n",
            heapFaultKindName(f.kind),
            static_cast<unsigned long long>(f.tenantId), f.slot,
            static_cast<unsigned long long>(f.step),
            static_cast<unsigned long long>(f.opIndex),
            f.injected ? 1 : 0, f.message.c_str());
        out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "contained=%llu oom_kills=%llu pressure=%llu "
                  "reclaimed=%llu\n",
                  static_cast<unsigned long long>(m.faultsContained),
                  static_cast<unsigned long long>(m.oomKills),
                  static_cast<unsigned long long>(m.pressureEvents),
                  static_cast<unsigned long long>(
                      m.pressurePagesReclaimed));
    out += buf;
    return out;
}

const tenant::TenantResult *
findTenant(const tenant::MultiTenantResult &m, uint64_t id)
{
    for (const tenant::TenantResult &t : m.tenants)
        if (t.tenantId == id)
            return &t;
    return nullptr;
}

std::vector<workload::Trace>
codecRoundTrip(const std::vector<workload::Trace> &traces)
{
    std::vector<workload::Trace> out;
    out.reserve(traces.size());
    for (const workload::Trace &t : traces)
        out.push_back(tenant::decodeTrace(tenant::encodeTrace(t)));
    return out;
}

struct Cell
{
    HeapFaultKind kind = HeapFaultKind::DoubleFree;
    bool ok = true;
    bool survivorMatch = true;
    uint64_t faultOp = 0;
    uint64_t pagesReleased = 0; //!< at the containment retire
    /** Deterministic cell statistics (gated byte-identical). */
    std::string detText;
    /** @name Reporting only (host wall-clock; not gated) */
    /// @{
    double containSec = 0;
    double faultedOpsPerSec = 0;
    double controlOpsPerSec = 0;
    /// @}
};

constexpr uint64_t kFaultyTenant = 1;

/** One matrix cell: inject @p kind into tenant 1 mid-trace, gate
 *  containment, and diff the survivors against the truncated-trace
 *  control run. */
Cell
runCell(HeapFaultKind kind,
        const workload::BenchmarkProfile &profile,
        const sim::ExperimentConfig &base,
        const std::vector<workload::Trace> &traces)
{
    Cell cell;
    cell.kind = kind;

    const uint64_t inject_at =
        traces[kFaultyTenant].ops.size() / 2;
    sim::ExperimentConfig cfg = base;
    cfg.faultPlanText = std::string(heapFaultKindName(kind)) + "@" +
                        std::to_string(kFaultyTenant) + ":" +
                        std::to_string(inject_at);
    const sim::MultiTenantBenchResult faulted =
        sim::runMultiTenantBenchmark(profile, cfg,
                                     sim::MachineProfile::x86(),
                                     &traces);
    const tenant::MultiTenantResult &m = faulted.run;
    cell.faultedOpsPerSec = faulted.mutatorOpsPerSec;

    // Containment gates: exactly one fault, the right kind, the
    // right tenant, flagged as planned, tenant retired mid-run.
    if (m.faultsContained != 1 || m.faults.size() != 1 ||
        m.faults[0].kind != kind ||
        m.faults[0].tenantId != kFaultyTenant ||
        !m.faults[0].injected) {
        std::printf("FAILED [%s]: expected one planned fault on "
                    "tenant %llu, got %llu record(s)\n",
                    heapFaultKindName(kind),
                    static_cast<unsigned long long>(kFaultyTenant),
                    static_cast<unsigned long long>(
                        m.faultsContained));
        cell.ok = false;
        return cell;
    }
    cell.faultOp = m.faults[0].opIndex;
    cell.containSec = m.faults[0].wallSec;

    const tenant::TenantResult *faulty =
        findTenant(m, kFaultyTenant);
    if (!faulty || !faulty->retiredMidRun || !faulty->faulted ||
        faulty->faultKind != kind ||
        faulty->faultOp != cell.faultOp) {
        std::printf("FAILED [%s]: faulting tenant was not retired "
                    "with the fault stamped\n",
                    heapFaultKindName(kind));
        cell.ok = false;
        return cell;
    }
    for (const tenant::TenantResult &t : m.tenants) {
        if (t.tenantId != kFaultyTenant &&
            t.opsApplied != t.opsTotal) {
            std::printf("FAILED [%s]: survivor %llu did not finish "
                        "its trace (%llu/%llu ops)\n",
                        heapFaultKindName(kind),
                        static_cast<unsigned long long>(t.tenantId),
                        static_cast<unsigned long long>(t.opsApplied),
                        static_cast<unsigned long long>(t.opsTotal));
            cell.ok = false;
        }
    }

    // The containment retire event carries the pages released when
    // the faulty slot was torn down.
    for (const tenant::LifecycleEvent &ev : m.lifecycle)
        if (ev.kind == tenant::LifecycleEvent::Kind::Retire &&
            ev.tenantId == kFaultyTenant)
            cell.pagesReleased = ev.pagesReleased;

    // Control: the same traces with the faulty tenant's stream
    // simply ending at the fault op, no injection. Survivors must
    // not be able to tell the difference.
    std::vector<workload::Trace> control = traces;
    control[kFaultyTenant].ops.resize(cell.faultOp);
    const sim::MultiTenantBenchResult ctrl =
        sim::runMultiTenantBenchmark(profile, base,
                                     sim::MachineProfile::x86(),
                                     &control);
    cell.controlOpsPerSec = ctrl.mutatorOpsPerSec;
    for (const tenant::TenantResult &t : m.tenants) {
        if (t.tenantId == kFaultyTenant)
            continue;
        const tenant::TenantResult *c =
            findTenant(ctrl.run, t.tenantId);
        if (!c || tenantFingerprint(t) != tenantFingerprint(*c)) {
            std::printf("FAILED [%s]: survivor %llu diverged from "
                        "the control run\n",
                        heapFaultKindName(kind),
                        static_cast<unsigned long long>(t.tenantId));
            cell.survivorMatch = false;
            cell.ok = false;
        }
    }

    cell.detText = std::string("cell ") + heapFaultKindName(kind) +
                   " plan=" + cfg.faultPlanText + "\n" +
                   faultLogText(m) + "pages_released=" +
                   std::to_string(cell.pagesReleased) + "\n";
    for (const tenant::TenantResult &t : m.tenants)
        cell.detText += "tenant " + std::to_string(t.tenantId) +
                        "\n" + tenantFingerprint(t);
    return cell;
}

/** One supervision-matrix cell: a sweeper fault plan against the
 *  domain of tenant 1 and the exact ladder response it must draw. */
struct SupervisionCell
{
    const char *name = "";
    const char *plan = ""; //!< sweeper-kind fault plan ("" = none)
    /** @name Expected victim-domain event counts */
    /// @{
    uint64_t stalls = 0;
    uint64_t retries = 0;
    uint64_t crashes = 0;
    uint64_t reassigns = 0;
    uint64_t stwCatchups = 0;
    uint64_t containments = 0;
    /// @}
    bool ok = true;
    bool survivorMatch = true;
    std::string detText;
};

/** The ladder rungs, one cell each, with sweeperRetries pinned to 2
 *  (each failed episode costs 1 stall + 2 retries before
 *  escalating). Strikes accumulate per domain across epochs. */
std::vector<SupervisionCell>
supervisionCells()
{
    std::vector<SupervisionCell> cells;
    cells.push_back({"bg-parity", "", 0, 0, 0, 0, 0, 0});
    cells.push_back(
        {"slow-recovers", "sweeper-slow@1:1:2", 1, 2, 0, 0, 0, 0});
    cells.push_back(
        {"stall-assist", "sweeper-stall@1:1", 1, 2, 0, 1, 0, 0});
    cells.push_back({"stall-stw",
                     "sweeper-stall@1:1,sweeper-stall@1:2", 2, 4, 0,
                     1, 1, 0});
    cells.push_back({"stall-contain",
                     "sweeper-stall@1:1,sweeper-stall@1:2,"
                     "sweeper-stall@1:3",
                     3, 6, 0, 1, 1, 1});
    cells.push_back(
        {"crash-assist", "sweeper-crash@1:1", 0, 0, 1, 1, 0, 0});
    return cells;
}

/** Run one supervision cell and gate it against @p control (the
 *  sweeper-off run over the same traces). */
SupervisionCell
runSupervisionCell(SupervisionCell cell,
                   const workload::BenchmarkProfile &profile,
                   const sim::ExperimentConfig &base,
                   const std::vector<workload::Trace> &traces,
                   const tenant::MultiTenantResult &control)
{
    sim::ExperimentConfig cfg = base;
    cfg.bgSweeper = true;
    cfg.sweeperRetries = 2; // the expected counts assume this
    cfg.faultPlanText = cell.plan;
    const sim::MultiTenantBenchResult res =
        sim::runMultiTenantBenchmark(profile, cfg,
                                     sim::MachineProfile::x86(),
                                     &traces);
    const tenant::MultiTenantResult &m = res.run;

    // Count the victim domain's ladder events; Dispatch/Completed
    // pairs from healthy epochs (every domain has them) are not
    // part of the expectation.
    uint64_t stalls = 0, retries = 0, crashes = 0, reassigns = 0,
             stw = 0, contain = 0;
    for (const revoke::SweeperEvent &ev : m.sweeperEvents) {
        if (ev.domain != kFaultyTenant)
            continue;
        switch (ev.kind) {
          case revoke::SweeperEventKind::StallDetected: ++stalls; break;
          case revoke::SweeperEventKind::Retry: ++retries; break;
          case revoke::SweeperEventKind::Crash: ++crashes; break;
          case revoke::SweeperEventKind::ReassignToAssist:
            ++reassigns;
            break;
          case revoke::SweeperEventKind::StwCatchup: ++stw; break;
          case revoke::SweeperEventKind::Containment:
            ++contain;
            break;
          default: break;
        }
    }
    if (stalls != cell.stalls || retries != cell.retries ||
        crashes != cell.crashes || reassigns != cell.reassigns ||
        stw != cell.stwCatchups || contain != cell.containments) {
        std::printf(
            "FAILED [supervision %s]: event counts "
            "stall/retry/crash/assist/stw/contain = "
            "%llu/%llu/%llu/%llu/%llu/%llu, expected "
            "%llu/%llu/%llu/%llu/%llu/%llu\n",
            cell.name, static_cast<unsigned long long>(stalls),
            static_cast<unsigned long long>(retries),
            static_cast<unsigned long long>(crashes),
            static_cast<unsigned long long>(reassigns),
            static_cast<unsigned long long>(stw),
            static_cast<unsigned long long>(contain),
            static_cast<unsigned long long>(cell.stalls),
            static_cast<unsigned long long>(cell.retries),
            static_cast<unsigned long long>(cell.crashes),
            static_cast<unsigned long long>(cell.reassigns),
            static_cast<unsigned long long>(cell.stwCatchups),
            static_cast<unsigned long long>(cell.containments));
        cell.ok = false;
    }

    if (cell.containments > 0) {
        // Rung 3 must retire exactly the victim via the standard
        // containment path, stamped as an organic (not replayer-
        // injected) sweeper failure...
        if (m.faultsContained != 1 || m.faults.size() != 1 ||
            m.faults[0].kind != HeapFaultKind::SweeperFailure ||
            m.faults[0].tenantId != kFaultyTenant ||
            m.faults[0].injected) {
            std::printf("FAILED [supervision %s]: expected one "
                        "organic sweeper-failure containment of "
                        "tenant %llu\n",
                        cell.name,
                        static_cast<unsigned long long>(
                            kFaultyTenant));
            cell.ok = false;
        }
        // ...with the survivors bit-identical to a sweeper-off
        // control whose victim trace simply ends at the fault op.
        if (cell.ok) {
            std::vector<workload::Trace> cut = traces;
            cut[kFaultyTenant].ops.resize(m.faults[0].opIndex);
            const sim::MultiTenantBenchResult ctrl =
                sim::runMultiTenantBenchmark(
                    profile, base, sim::MachineProfile::x86(), &cut);
            for (const tenant::TenantResult &t : m.tenants) {
                if (t.tenantId == kFaultyTenant)
                    continue;
                const tenant::TenantResult *c =
                    findTenant(ctrl.run, t.tenantId);
                if (!c ||
                    tenantFingerprint(t) != tenantFingerprint(*c)) {
                    cell.survivorMatch = false;
                    cell.ok = false;
                }
            }
        }
    } else {
        // Every other rung recovers the run: all tenants finish and
        // every per-tenant statistic is bit-identical to the
        // sweeper-off control — the headline guarantee that the
        // racing background thread never perturbs modelled results.
        for (const tenant::TenantResult &t : m.tenants) {
            const tenant::TenantResult *c =
                findTenant(control, t.tenantId);
            if (t.opsApplied != t.opsTotal || !c ||
                tenantFingerprint(t) != tenantFingerprint(*c)) {
                cell.survivorMatch = false;
                cell.ok = false;
            }
        }
    }
    if (!cell.survivorMatch)
        std::printf("FAILED [supervision %s]: tenant statistics "
                    "diverged from the sweeper-off control\n",
                    cell.name);

    cell.detText = std::string("supervision ") + cell.name +
                   " plan=" + cell.plan + "\n";
    for (const revoke::SweeperEvent &ev : m.sweeperEvents)
        cell.detText += revoke::sweeperEventLine(ev) + "\n";
    cell.detText += faultLogText(m);
    for (const tenant::TenantResult &t : m.tenants)
        cell.detText += "tenant " + std::to_string(t.tenantId) +
                        "\n" + tenantFingerprint(t);
    return cell;
}

struct PressureResult
{
    bool ok = true;
    double budgetMiB = 0;
    uint64_t pressureEvents = 0;
    uint64_t pagesReclaimed = 0;
    uint64_t oomKills = 0;
    unsigned survivors = 0;
    std::string detText;
    double wallSec = 0; //!< reporting only
};

/** The memory-pressure cell: budget between one- and two-survivor
 *  residency, so the ladder must reclaim, then kill, then settle. */
PressureResult
runPressure(const workload::BenchmarkProfile &profile,
            const sim::ExperimentConfig &base,
            const std::vector<workload::Trace> &traces)
{
    PressureResult pr;

    // Calibrate against an unconstrained run: 60% of its peak
    // aggregate footprint is below three tenants' steady residency
    // but above two survivors', so the ladder has to escalate past
    // reclamation into an OOM-kill and then stabilise.
    const sim::MultiTenantBenchResult calib =
        sim::runMultiTenantBenchmark(profile, base,
                                     sim::MachineProfile::x86(),
                                     &traces);
    pr.budgetMiB = 0.6 *
                   static_cast<double>(
                       calib.run.peakAggFootprintBytes) /
                   MiB;

    sim::ExperimentConfig cfg = base;
    cfg.pageBudgetMiB = pr.budgetMiB;
    const sim::MultiTenantBenchResult res =
        sim::runMultiTenantBenchmark(profile, cfg,
                                     sim::MachineProfile::x86(),
                                     &traces);
    const tenant::MultiTenantResult &m = res.run;
    pr.pressureEvents = m.pressureEvents;
    pr.pagesReclaimed = m.pressurePagesReclaimed;
    pr.oomKills = m.oomKills;
    pr.wallSec = res.mutatorWallSec;
    for (const tenant::TenantResult &t : m.tenants)
        if (!t.faulted && t.opsApplied == t.opsTotal)
            ++pr.survivors;

    if (m.pressureEvents == 0) {
        std::printf("FAILED [pressure]: the %g MiB budget never "
                    "triggered the ladder\n",
                    pr.budgetMiB);
        pr.ok = false;
    }
    if (m.oomKills == 0) {
        std::printf("FAILED [pressure]: ladder never escalated to "
                    "an OOM-kill (%llu events, %llu pages "
                    "reclaimed)\n",
                    static_cast<unsigned long long>(
                        m.pressureEvents),
                    static_cast<unsigned long long>(
                        m.pressurePagesReclaimed));
        pr.ok = false;
    }
    for (const tenant::FaultRecord &f : m.faults) {
        if (f.kind != HeapFaultKind::OutOfMemory || f.injected) {
            std::printf("FAILED [pressure]: unexpected %s fault in "
                        "the pressure cell\n",
                        heapFaultKindName(f.kind));
            pr.ok = false;
        }
    }
    if (pr.survivors == 0) {
        std::printf("FAILED [pressure]: the ladder killed every "
                    "tenant — budget calibration too tight\n");
        pr.ok = false;
    }

    char buf[128];
    std::snprintf(buf, sizeof(buf), "pressure budget_mib=%.17g\n",
                  pr.budgetMiB);
    pr.detText = buf;
    pr.detText += faultLogText(m);
    for (const tenant::TenantResult &t : m.tenants)
        pr.detText += "tenant " + std::to_string(t.tenantId) + "\n" +
                      tenantFingerprint(t);
    return pr;
}

struct SeededResult
{
    bool ok = true;
    uint64_t seed = 0;
    std::string planText;
    uint64_t faultsContained = 0;
    std::string detText;
};

/** Seeded phase: generate the plan from a seed, check the plan and
 *  a full replay are deterministic functions of it. */
SeededResult
runSeeded(uint64_t seed, const workload::BenchmarkProfile &profile,
          const sim::ExperimentConfig &base,
          const std::vector<workload::Trace> &traces)
{
    SeededResult sr;
    sr.seed = seed;

    std::vector<uint64_t> ids(base.tenants), ops(base.tenants);
    for (unsigned i = 0; i < base.tenants; ++i) {
        ids[i] = i;
        ops[i] = traces[i].ops.size();
    }
    const FaultPlan plan = generateFaultPlan(seed, ids, ops);
    const FaultPlan again = generateFaultPlan(seed, ids, ops);
    sr.planText = plan.text();
    if (sr.planText != again.text() ||
        parseFaultPlan(sr.planText).text() != sr.planText) {
        std::printf("FAILED [seeded]: plan generation or the "
                    "parse round-trip is not deterministic\n");
        sr.ok = false;
        return sr;
    }

    sim::ExperimentConfig cfg = base;
    cfg.faultSeed = seed;
    const sim::MultiTenantBenchResult a =
        sim::runMultiTenantBenchmark(profile, cfg,
                                     sim::MachineProfile::x86(),
                                     &traces);
    const sim::MultiTenantBenchResult b =
        sim::runMultiTenantBenchmark(profile, cfg,
                                     sim::MachineProfile::x86(),
                                     &traces);
    sr.faultsContained = a.run.faultsContained;

    auto det = [](const sim::MultiTenantBenchResult &r) {
        std::string out = faultLogText(r.run);
        for (const tenant::TenantResult &t : r.run.tenants)
            out += "tenant " + std::to_string(t.tenantId) + "\n" +
                   tenantFingerprint(t);
        return out;
    };
    sr.detText = "seeded plan=" + sr.planText + "\n" + det(a);
    if (det(a) != det(b)) {
        std::printf("FAILED [seeded]: two replays of seed %llu "
                    "diverged\n",
                    static_cast<unsigned long long>(seed));
        sr.ok = false;
    }
    if (a.run.faultsContained == 0) {
        std::printf("FAILED [seeded]: the seeded plan contained no "
                    "fault\n");
        sr.ok = false;
    }
    return sr;
}

struct Pass
{
    bool ok = true;
    std::vector<Cell> cells;
    std::vector<SupervisionCell> supervision;
    PressureResult pressure;
    SeededResult seeded;
    std::string detText;
};

Pass
runPass(uint64_t seed, const workload::BenchmarkProfile &profile,
        const sim::ExperimentConfig &base,
        const std::vector<workload::Trace> &traces,
        bool supervision_only)
{
    Pass pass;
    if (!supervision_only) {
        for (size_t k = 0; k < kNumHeapFaultKinds; ++k) {
            Cell cell = runCell(static_cast<HeapFaultKind>(k),
                                profile, base, traces);
            pass.ok &= cell.ok;
            pass.detText += cell.detText;
            pass.cells.push_back(std::move(cell));
        }
    }
    // The sweeper-off control every supervision cell diffs against.
    const sim::MultiTenantBenchResult control =
        sim::runMultiTenantBenchmark(profile, base,
                                     sim::MachineProfile::x86(),
                                     &traces);
    for (SupervisionCell cell : supervisionCells()) {
        cell = runSupervisionCell(cell, profile, base, traces,
                                  control.run);
        pass.ok &= cell.ok;
        pass.detText += cell.detText;
        pass.supervision.push_back(std::move(cell));
    }
    if (!supervision_only) {
        pass.pressure = runPressure(profile, base, traces);
        pass.ok &= pass.pressure.ok;
        pass.detText += pass.pressure.detText;
        pass.seeded = runSeeded(seed, profile, base, traces);
        pass.ok &= pass.seeded.ok;
        pass.detText += pass.seeded.detText;
    }
    return pass;
}

uint64_t
fnv1a(const std::string &text)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

int
main()
{
    bench::printSystems("Fault-containment chaos matrix "
                        "(bench/fault_matrix)");

    const workload::BenchmarkProfile profile = faultProfile();
    const sim::ExperimentConfig base = baseConfig();
    bench::printKnobs();
    const bool supervision_only =
        envI64("CHERIVOKE_FAULT_SUPERVISION_ONLY", 0, 0) != 0;
    const uint64_t seed =
        base.faultSeed ? base.faultSeed : 0xC0FFEEULL;

    // One recording, through the binary codec, shared by every cell
    // and both determinism passes.
    const std::vector<workload::Trace> traces = codecRoundTrip(
        sim::synthesizeTenantTraces(profile, base));

    Pass a = runPass(seed, profile, base, traces, supervision_only);
    const Pass b =
        runPass(seed, profile, base, traces, supervision_only);
    bool ok = a.ok && b.ok;

    const bool rerun_identical = a.detText == b.detText;
    if (!rerun_identical) {
        std::printf("FAILED: the matrix is not deterministic — two "
                    "same-seed passes produced different "
                    "statistics\n");
        ok = false;
    }

    if (!supervision_only) {
        std::printf("%-18s %-10s %9s %14s %12s %12s\n", "kind",
                    "contained", "fault op", "pages released",
                    "contain ms", "survivors");
        for (const Cell &c : a.cells) {
            std::printf(
                "%-18s %-10s %9llu %14llu %12.3f %12s\n",
                heapFaultKindName(c.kind), c.ok ? "yes" : "NO",
                static_cast<unsigned long long>(c.faultOp),
                static_cast<unsigned long long>(c.pagesReleased),
                c.containSec * 1e3,
                c.survivorMatch ? "bit-identical" : "DIVERGED");
        }
    }
    std::printf("\n%-15s %-42s %-6s %s\n", "supervision",
                "plan", "ok", "events s/r/c/a/w/x");
    for (const SupervisionCell &c : a.supervision) {
        std::printf("%-15s %-42s %-6s "
                    "%llu/%llu/%llu/%llu/%llu/%llu\n",
                    c.name, c.plan[0] ? c.plan : "(none)",
                    c.ok ? "yes" : "NO",
                    static_cast<unsigned long long>(c.stalls),
                    static_cast<unsigned long long>(c.retries),
                    static_cast<unsigned long long>(c.crashes),
                    static_cast<unsigned long long>(c.reassigns),
                    static_cast<unsigned long long>(c.stwCatchups),
                    static_cast<unsigned long long>(c.containments));
    }

    if (!supervision_only) {
        std::printf(
            "\npressure: budget %.2f MiB, %llu ladder events, "
            "%llu pages reclaimed, %llu OOM-kill(s), %u "
            "survivor(s)\n",
            a.pressure.budgetMiB,
            static_cast<unsigned long long>(
                a.pressure.pressureEvents),
            static_cast<unsigned long long>(
                a.pressure.pagesReclaimed),
            static_cast<unsigned long long>(a.pressure.oomKills),
            a.pressure.survivors);
        std::printf(
            "seeded: seed %llu -> plan %s (%llu contained)\n\n",
            static_cast<unsigned long long>(seed),
            a.seeded.planText.c_str(),
            static_cast<unsigned long long>(
                a.seeded.faultsContained));
    }

    // The reduced TSan configuration emits no artifact: a subset
    // run must never become the regression baseline.
    FILE *json = supervision_only
                     ? nullptr
                     : std::fopen("BENCH_fault.json", "w");
    if (json) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"bench\": \"fault_matrix\",\n");
        std::fprintf(json, "  \"deterministic\": {\n");
        std::fprintf(json, "    \"seed\": %llu,\n",
                     static_cast<unsigned long long>(seed));
        std::fprintf(json, "    \"seeded_plan\": \"%s\",\n",
                     a.seeded.planText.c_str());
        std::fprintf(json, "    \"cells\": [\n");
        for (size_t i = 0; i < a.cells.size(); ++i) {
            const Cell &c = a.cells[i];
            std::fprintf(
                json,
                "      {\"kind\": \"%s\", \"contained\": %s, "
                "\"fault_op\": %llu, \"pages_released\": %llu, "
                "\"survivors_bit_identical\": %s}%s\n",
                heapFaultKindName(c.kind), c.ok ? "true" : "false",
                static_cast<unsigned long long>(c.faultOp),
                static_cast<unsigned long long>(c.pagesReleased),
                c.survivorMatch ? "true" : "false",
                i + 1 < a.cells.size() ? "," : "");
        }
        std::fprintf(json, "    ],\n");
        std::fprintf(json, "    \"supervision\": [\n");
        for (size_t i = 0; i < a.supervision.size(); ++i) {
            const SupervisionCell &c = a.supervision[i];
            std::fprintf(
                json,
                "      {\"cell\": \"%s\", \"plan\": \"%s\", "
                "\"ok\": %s, \"stalls\": %llu, \"retries\": %llu, "
                "\"crashes\": %llu, \"reassigns\": %llu, "
                "\"stw_catchups\": %llu, \"containments\": %llu, "
                "\"survivors_bit_identical\": %s}%s\n",
                c.name, c.plan, c.ok ? "true" : "false",
                static_cast<unsigned long long>(c.stalls),
                static_cast<unsigned long long>(c.retries),
                static_cast<unsigned long long>(c.crashes),
                static_cast<unsigned long long>(c.reassigns),
                static_cast<unsigned long long>(c.stwCatchups),
                static_cast<unsigned long long>(c.containments),
                c.survivorMatch ? "true" : "false",
                i + 1 < a.supervision.size() ? "," : "");
        }
        std::fprintf(json, "    ],\n");
        std::fprintf(json, "    \"pressure\": {\"events\": %llu, "
                           "\"pages_reclaimed\": %llu, "
                           "\"oom_kills\": %llu, "
                           "\"survivors\": %u},\n",
                     static_cast<unsigned long long>(
                         a.pressure.pressureEvents),
                     static_cast<unsigned long long>(
                         a.pressure.pagesReclaimed),
                     static_cast<unsigned long long>(
                         a.pressure.oomKills),
                     a.pressure.survivors);
        std::fprintf(json, "    \"fingerprint\": \"%016llx\",\n",
                     static_cast<unsigned long long>(
                         fnv1a(a.detText)));
        std::fprintf(json, "    \"rerun_identical\": %s\n",
                     rerun_identical ? "true" : "false");
        std::fprintf(json, "  },\n");
        std::fprintf(json, "  \"reporting\": {\n");
        std::fprintf(json, "    \"cells\": [\n");
        for (size_t i = 0; i < a.cells.size(); ++i) {
            const Cell &c = a.cells[i];
            std::fprintf(
                json,
                "      {\"kind\": \"%s\", "
                "\"containment_sec\": %.6g, "
                "\"faulted_ops_per_sec\": %.6g, "
                "\"control_ops_per_sec\": %.6g}%s\n",
                heapFaultKindName(c.kind), c.containSec,
                c.faultedOpsPerSec, c.controlOpsPerSec,
                i + 1 < a.cells.size() ? "," : "");
        }
        std::fprintf(json, "    ],\n");
        std::fprintf(json,
                     "    \"pressure_wall_sec\": %.6g,\n",
                     a.pressure.wallSec);
        std::fprintf(json, "    \"pressure_budget_mib\": %.6g\n",
                     a.pressure.budgetMiB);
        std::fprintf(json, "  },\n");
        std::fprintf(json, "  \"ok\": %s\n", ok ? "true" : "false");
        std::fprintf(json, "}\n");
        std::fclose(json);
        std::printf("wrote BENCH_fault.json\n");
    }

    if (ok && supervision_only) {
        std::printf("OK: %zu supervision rungs fired as planned "
                    "(reduced supervision-only run), deterministic "
                    "replay\n",
                    a.supervision.size());
    } else if (ok) {
        std::printf("OK: %zu fault kinds contained, %zu supervision "
                    "rungs fired as planned, pressure ladder "
                    "killed %llu and spared %u, deterministic "
                    "replay\n",
                    kNumHeapFaultKinds, a.supervision.size(),
                    static_cast<unsigned long long>(
                        a.pressure.oomKills),
                    a.pressure.survivors);
    } else {
        std::printf("FAILED: see gates above\n");
    }
    return ok ? 0 : 1;
}

/**
 * @file
 * Figure 10 reproduction: off-core (L3 + DRAM) traffic overhead of
 * CHERIvoke's sweeping, as a percentage of each application's
 * baseline off-core traffic.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"

using namespace cherivoke;

int
main()
{
    bench::printSystems(
        "Figure 10: Off-core-traffic overhead (%)");

    const sim::ExperimentConfig base = bench::defaultConfig();
    bench::printKnobs();

    stats::TextTable table({"benchmark", "traffic overhead"});
    for (const auto &profile : workload::specProfiles()) {
        if (profile.name == "ffmpeg") {
            // Keep the figure's SPEC ordering but include ffmpeg
            // first, as the paper's x-axis does.
        }
        sim::ExperimentConfig cfg = base;
        cfg.modelTraffic = true;
        const sim::BenchResult r =
            sim::runBenchmark(profile, cfg);
        table.addRow({profile.name,
                      stats::TextTable::num(r.trafficOverheadPct, 1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Sweep DRAM traffic per virtual second divided by "
                "the application's baseline\noff-core bandwidth. "
                "Paper: max ~16%% (xalancbmk), minimal for "
                "non-allocating workloads.\n");
    return 0;
}

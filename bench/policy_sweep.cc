/**
 * @file
 * Revocation-policy sweep: every RevocationEngine policy
 * (stop-the-world, incremental, concurrent) × sweep thread count,
 * run over the worst-case allocation-heavy workloads with traffic
 * modelling on. Reports normalised time, epochs, bounded pauses, and
 * sweep DRAM traffic, and checks that the threaded sweep's traffic
 * totals match the serial sweep's (the per-thread traffic logs are
 * replayed deterministically after the workers join).
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "stats/table.hh"

using namespace cherivoke;

int
main()
{
    bench::printSystems("Policy sweep: RevocationEngine policies x "
                        "sweep threads");

    const revoke::PolicyKind policies[] = {
        revoke::PolicyKind::StopTheWorld,
        revoke::PolicyKind::Incremental,
        revoke::PolicyKind::Concurrent,
    };
    const unsigned thread_counts[] = {1, 2, 4};
    const char *benchmarks[] = {"xalancbmk", "omnetpp", "povray"};

    stats::TextTable table({"benchmark", "policy", "threads",
                            "norm time", "epochs", "pauses",
                            "sweep DRAM KiB", "traffic=1T"});

    const sim::ExperimentConfig base = bench::defaultConfig();
    bench::printKnobs();

    // Reference DRAM totals at threads=1, per benchmark x policy.
    std::map<std::string, uint64_t> reference;
    bool all_match = true;

    for (const char *name : benchmarks) {
        const auto &profile = workload::profileFor(name);
        for (const revoke::PolicyKind policy : policies) {
            for (const unsigned threads : thread_counts) {
                sim::ExperimentConfig cfg = base;
                cfg.policy = policy;
                cfg.threads = threads;
                cfg.modelTraffic = true;
                const sim::BenchResult r =
                    sim::runBenchmark(profile, cfg);

                const uint64_t dram = r.sweepDramBytes;
                const std::string key =
                    std::string(name) + "/" +
                    revoke::policyName(policy);
                if (threads == 1)
                    reference[key] = dram;
                const bool match = reference[key] == dram;
                all_match = all_match && match;

                table.addRow(
                    {name, revoke::policyName(policy),
                     std::to_string(threads),
                     stats::TextTable::num(r.normalizedTime, 3),
                     std::to_string(r.run.revoker.epochs),
                     std::to_string(r.run.revoker.slices),
                     std::to_string(dram / KiB),
                     match ? "yes" : "NO"});
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("pauses = bounded sweep slices (stop-the-world runs "
                "each epoch as one pause).\ntraffic=1T: threaded "
                "sweep reproduces the serial sweep's DRAM totals "
                "exactly.\n");
    std::printf(all_match ? "OK: all thread counts report identical "
                            "sweep traffic\n"
                          : "FAILED: traffic diverged across thread "
                            "counts\n");
    return all_match ? 0 : 1;
}

/**
 * @file
 * Revocation-policy sweep, enumerated from the shared policy
 * registry (revoke::allPolicies()) so a newly registered policy can
 * never be silently skipped — ctest runs `--list-policies` to gate
 * coverage. Three passes:
 *
 *  1. Every policy × sweep thread count over the worst-case
 *     allocation-heavy workloads with traffic modelling on,
 *     checking that the threaded sweep's DRAM totals match the
 *     serial sweep's exactly.
 *
 *  2. The adaptive gate: over *all* SPEC profiles (table 2), the
 *     adaptive policy must match or beat every static policy's
 *     modelled overhead — with one global default configuration, no
 *     per-profile tuning. "Match" is two-clause: exactly <= the
 *     stop-the-world policy (the §6.1.3-optimal static schedule:
 *     overhead is monotone-decreasing in the quarantine fraction, so
 *     sweeping at the ceiling is the static optimum), and within the
 *     interleaving noise floor of the barrier policies. The
 *     incremental/concurrent numbers differ from stop-the-world only
 *     through *when* epoch boundaries land in the trace (density
 *     sampling instants, PTE-dirty timing), differences of order
 *     1e-5 that flip sign across profiles (concurrent loses mcf and
 *     soplex, wins xalancbmk) — noise no causal schedule could
 *     consistently capture, so the gate treats anything within
 *     1e-4 relative as a match.
 *
 *  3. Determinism: the whole adaptive pass runs twice and the two
 *     %.17g fingerprints must be byte-identical.
 *
 * Emits BENCH_adaptive.json (deterministic fields + elapsed_ms).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "stats/table.hh"
#include "workload/spec_profiles.hh"

using namespace cherivoke;

namespace {

/** `--list-policies`: one canonical name per line, after checking
 *  that every registered kind round-trips through parsePolicy. The
 *  ctest coverage gate matches the summary line. */
int
listPolicies()
{
    const auto &policies = revoke::allPolicies();
    for (const revoke::PolicyKind kind : policies) {
        const char *name = revoke::policyName(kind);
        revoke::PolicyKind parsed;
        if (!revoke::parsePolicy(name, parsed) || parsed != kind) {
            std::printf("FAILED: policy '%s' does not round-trip "
                        "through parsePolicy\n",
                        name);
            return 1;
        }
        std::printf("%s\n", name);
    }
    std::printf("policy registry coverage OK (%zu policies:",
                policies.size());
    for (const revoke::PolicyKind kind : policies)
        std::printf(" %s", revoke::policyName(kind));
    std::printf(")\n");
    return 0;
}

/** One profile × policy result of the overhead pass. */
struct OverheadCell
{
    sim::BenchResult r;
};

/** Deterministic %.17g fingerprint of one adaptive run (doubles
 *  round-trip exactly at this precision). */
void
addFingerprint(std::string &out, const std::string &benchmark,
               const sim::BenchResult &r)
{
    char buf[512];
    const workload::DriverResult &m = r.run;
    std::snprintf(
        buf, sizeof(buf),
        "%s allocs=%llu frees=%llu freed=%llu stores=%llu "
        "vsec=%.17g epochs=%llu slices=%llu pages=%llu "
        "skipped_tier=%llu revoked=%llu released=%llu "
        "time=%.17g sweep=%.17g shadow=%.17g predicted=%.17g\n",
        benchmark.c_str(),
        static_cast<unsigned long long>(m.allocCalls),
        static_cast<unsigned long long>(m.freeCalls),
        static_cast<unsigned long long>(m.freedBytes),
        static_cast<unsigned long long>(m.ptrStores),
        m.virtualSeconds,
        static_cast<unsigned long long>(m.revoker.epochs),
        static_cast<unsigned long long>(m.revoker.slices),
        static_cast<unsigned long long>(m.revoker.sweep.pagesSwept),
        static_cast<unsigned long long>(
            m.revoker.sweep.pagesSkippedTier),
        static_cast<unsigned long long>(m.revoker.sweep.capsRevoked),
        static_cast<unsigned long long>(m.revoker.bytesReleased),
        r.normalizedTime, r.sweepOverhead, r.shadowOverhead,
        r.predictedSweepOverhead);
    out += buf;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--list-policies") == 0)
        return listPolicies();

    const auto start = std::chrono::steady_clock::now();
    bench::printSystems("Policy sweep: registered RevocationEngine "
                        "policies x sweep threads, + adaptive gate");

    const std::vector<revoke::PolicyKind> &policies =
        revoke::allPolicies();
    const unsigned thread_counts[] = {1, 2, 4};
    const char *benchmarks[] = {"xalancbmk", "omnetpp", "povray"};

    const sim::ExperimentConfig base = bench::defaultConfig();
    bench::printKnobs();

    // --- Pass 1: thread-count traffic parity, every policy --------
    stats::TextTable table({"benchmark", "policy", "threads",
                            "norm time", "epochs", "pauses",
                            "sweep DRAM KiB", "traffic=1T"});
    std::map<std::string, uint64_t> reference;
    bool all_match = true;

    for (const char *name : benchmarks) {
        const auto &profile = workload::profileFor(name);
        for (const revoke::PolicyKind policy : policies) {
            for (const unsigned threads : thread_counts) {
                sim::ExperimentConfig cfg = base;
                cfg.policy = policy;
                cfg.threads = threads;
                cfg.modelTraffic = true;
                const sim::BenchResult r =
                    sim::runBenchmark(profile, cfg);

                const uint64_t dram = r.sweepDramBytes;
                const std::string key =
                    std::string(name) + "/" +
                    revoke::policyName(policy);
                if (threads == 1)
                    reference[key] = dram;
                const bool match = reference[key] == dram;
                all_match = all_match && match;

                table.addRow(
                    {name, revoke::policyName(policy),
                     std::to_string(threads),
                     stats::TextTable::num(r.normalizedTime, 3),
                     std::to_string(r.run.revoker.epochs),
                     std::to_string(r.run.revoker.slices),
                     std::to_string(dram / KiB),
                     match ? "yes" : "NO"});
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("pauses = bounded sweep slices (stop-the-world runs "
                "each epoch as one pause).\ntraffic=1T: threaded "
                "sweep reproduces the serial sweep's DRAM totals "
                "exactly.\n\n");

    // --- Pass 2: the adaptive gate over every SPEC profile --------
    // One global default configuration; adaptive must match or beat
    // the best static policy's modelled overhead on every profile.
    const std::vector<workload::BenchmarkProfile> &profiles =
        workload::specProfiles();
    stats::TextTable gate({"benchmark", "stw", "incremental",
                           "concurrent", "adaptive", "best static",
                           "adaptive<=best"});
    bool adaptive_ok = true;
    std::string fingerprint_a, fingerprint_b;
    std::vector<std::map<std::string, double>> gate_rows;

    // Epoch-boundary noise floor (see the file comment): barrier
    // policies differ from stop-the-world by O(1e-5) either way.
    constexpr double kNoiseFloor = 1e-4;

    for (const workload::BenchmarkProfile &profile : profiles) {
        std::map<std::string, double> row;
        double best_static = 0;
        bool have_static = false;
        double adaptive_time = 0;
        double stw_time = 0;
        for (const revoke::PolicyKind policy : policies) {
            sim::ExperimentConfig cfg = base;
            cfg.policy = policy;
            const sim::BenchResult r =
                sim::runBenchmark(profile, cfg);
            row[revoke::policyName(policy)] = r.normalizedTime;
            if (policy == revoke::PolicyKind::Adaptive) {
                adaptive_time = r.normalizedTime;
                addFingerprint(fingerprint_a, profile.name, r);
                // Determinism: the identical run, replayed.
                const sim::BenchResult again =
                    sim::runBenchmark(profile, cfg);
                addFingerprint(fingerprint_b, profile.name, again);
            } else {
                if (policy == revoke::PolicyKind::StopTheWorld)
                    stw_time = r.normalizedTime;
                if (!have_static ||
                    r.normalizedTime < best_static) {
                    best_static = r.normalizedTime;
                    have_static = true;
                }
            }
        }
        // Clause 1: exactly match-or-beat the §6.1.3-optimal static
        // schedule (no float slop — adaptive's default full-depth
        // epochs reproduce it bit-for-bit, and tier-scoped epochs
        // only ever run when the model predicts a win).
        // Clause 2: within the noise floor of the best static
        // policy, whichever one that is on this profile.
        const bool ok =
            adaptive_time <= stw_time &&
            adaptive_time <= best_static * (1.0 + kNoiseFloor);
        adaptive_ok = adaptive_ok && ok;
        row["best_static"] = best_static;
        gate_rows.push_back(row);
        gate.addRow(
            {profile.name,
             stats::TextTable::num(row["stop-the-world"], 6),
             stats::TextTable::num(row["incremental"], 6),
             stats::TextTable::num(row["concurrent"], 6),
             stats::TextTable::num(adaptive_time, 6),
             stats::TextTable::num(best_static, 6),
             ok ? "yes" : "NO"});
    }
    std::printf("%s\n", gate.render().c_str());

    const bool deterministic = fingerprint_a == fingerprint_b;
    std::printf("adaptive gate: %s\n",
                adaptive_ok ? "adaptive matches or beats every "
                              "static policy on all profiles"
                            : "FAILED: a static policy beat "
                              "adaptive");
    std::printf("determinism: two adaptive passes %s\n",
                deterministic ? "byte-identical"
                              : "DIVERGED");

    // --- BENCH_adaptive.json --------------------------------------
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    FILE *json = std::fopen("BENCH_adaptive.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_adaptive.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"policy_sweep\",\n");
    std::fprintf(json, "  \"policies\": [");
    for (size_t i = 0; i < policies.size(); ++i) {
        std::fprintf(json, "%s\"%s\"", i ? ", " : "",
                     revoke::policyName(policies[i]));
    }
    std::fprintf(json, "],\n");
    std::fprintf(json, "  \"rows\": [\n");
    for (size_t i = 0; i < gate_rows.size(); ++i) {
        std::fprintf(json, "    {\"benchmark\": \"%s\"",
                     profiles[i].name.c_str());
        for (const auto &entry : gate_rows[i]) {
            std::fprintf(json, ", \"%s\": %.17g",
                         entry.first.c_str(), entry.second);
        }
        std::fprintf(json, "}%s\n",
                     i + 1 < gate_rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"traffic_parity\": %s,\n",
                 all_match ? "true" : "false");
    std::fprintf(json, "  \"adaptive_ok\": %s,\n",
                 adaptive_ok ? "true" : "false");
    std::fprintf(json, "  \"deterministic\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(json, "  \"elapsed_ms\": %.3f\n", elapsed_ms);
    std::fprintf(json, "}\n");
    std::fclose(json);

    const bool ok = all_match && adaptive_ok && deterministic;
    std::printf(ok ? "OK: traffic parity, adaptive gate and "
                     "determinism all hold\n"
                   : "FAILED: see the tables above\n");
    return ok ? 0 : 1;
}

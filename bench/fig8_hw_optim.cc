/**
 * @file
 * Figure 8 reproduction.
 *
 * (a) Proportion of memory that must be swept per benchmark under
 *     PTE CapDirty (page elimination) and CLoadTags (line
 *     elimination) — measured by sweeping real memory images from
 *     the workload runs.
 *
 * (b) Normalised sweep execution time vs pointer density on the
 *     CHERI FPGA profile, for PTE-dirty, CLoadTags, and the ideal
 *     x=y line — measured on synthetic images of controlled density.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"
#include "support/rng.hh"

using namespace cherivoke;

namespace {

/** Build a memory image with a controlled fraction of cap-bearing
 *  pages/lines and report modelled sweep time per option. */
double
sweepTimeAtDensity(double density, bool use_pte, bool use_tags,
                   bool line_granular)
{
    mem::AddressSpace space(64 * KiB, 64 * KiB);
    auto &memory = space.memory();
    const uint64_t heap = space.mmapHeap(8 * MiB);
    const cap::Capability obj = space.rootCap()
                                    .setAddress(heap)
                                    .setBounds(8 * MiB)
                                    .andPerms(cap::kPermsData);
    Rng rng(7);
    const uint64_t pages = (8 * MiB) / kPageBytes;
    for (uint64_t p = 0; p < pages; ++p) {
        const uint64_t page_addr = heap + p * kPageBytes;
        if (line_granular) {
            // Spread: density applies per line within every page.
            bool page_touched = false;
            for (uint64_t line = 0; line < kPageBytes / kLineBytes;
                 ++line) {
                if (rng.nextDouble() < density) {
                    memory.writeCap(page_addr + line * kLineBytes,
                                    obj);
                    page_touched = true;
                }
            }
            if (!page_touched) {
                // Ensure the page data exists so the sweep walks it.
                memory.writeU64(page_addr, 1);
            }
        } else {
            // Density applies per page; pointered pages are full.
            if (rng.nextDouble() < density) {
                for (uint64_t line = 0;
                     line < kPageBytes / kLineBytes; ++line) {
                    memory.writeCap(page_addr + line * kLineBytes,
                                    obj);
                }
            } else {
                memory.writeU64(page_addr, 1);
            }
        }
    }

    alloc::ShadowMap shadow(memory); // unpainted: no revocations
    revoke::SweepOptions opts;
    opts.usePteCapDirty = use_pte;
    opts.useCloadTags = use_tags;
    opts.cleanFalsePositivePages = false;
    revoke::Sweeper sweeper(opts);
    const revoke::SweepStats stats =
        sweeper.sweep(space, shadow);
    return sim::sweepSeconds(sim::MachineProfile::cheriFpga(), stats,
                             0, 1, 1.0);
}

} // namespace

int
main()
{
    bench::printSystems("Figure 8: Hardware work-elimination "
                        "(PTE CapDirty + CLoadTags)");

    const sim::ExperimentConfig base = bench::defaultConfig();
    bench::printKnobs();

    // --- (a) proportion of memory swept per benchmark ---
    std::printf("--- (a) Proportion of memory swept ---\n");
    stats::TextTable prop({"benchmark", "PTE CapDirty", "CLoadTags"});
    for (const auto &profile : workload::specProfiles()) {
        sim::ExperimentConfig cfg = base;
        // PTE-only run measures page-level elimination.
        cfg.usePteCapDirty = true;
        cfg.useCloadTags = false;
        const sim::BenchResult pte_run =
            sim::runBenchmark(profile, cfg);
        const auto &s1 = pte_run.run.revoker.sweep;
        const double pte_prop =
            s1.pagesConsidered
                ? static_cast<double>(s1.pagesSwept) /
                      static_cast<double>(s1.pagesConsidered)
                : 0.0;
        // PTE+CLoadTags run measures line-level elimination.
        cfg.useCloadTags = true;
        const sim::BenchResult tag_run =
            sim::runBenchmark(profile, cfg);
        const auto &s2 = tag_run.run.revoker.sweep;
        const uint64_t lines_considered =
            s2.linesSwept + s2.linesSkippedTags +
            s2.pagesSkippedPte * (kPageBytes / kLineBytes);
        const double tag_prop =
            lines_considered
                ? static_cast<double>(s2.linesSwept) /
                      static_cast<double>(lines_considered)
                : 0.0;
        if (s1.pagesConsidered == 0)
            continue;
        prop.addRow({profile.name,
                     stats::TextTable::percent(pte_prop, 1),
                     stats::TextTable::percent(tag_prop, 1)});
    }
    std::printf("%s\n", prop.render().c_str());

    // --- (b) normalised sweep time vs density (CHERI FPGA) ---
    std::printf("--- (b) Normalised sweep time vs density "
                "(CHERI FPGA profile) ---\n");
    stats::TextTable curve({"density", "PTE dirty", "CLoadTags",
                            "ideal"});
    const double full_page =
        sweepTimeAtDensity(1.0, true, false, false);
    const double full_line =
        sweepTimeAtDensity(1.0, false, true, true);
    for (double d : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
        const double t_pte =
            sweepTimeAtDensity(d, true, false, false) / full_page;
        const double t_tags =
            sweepTimeAtDensity(d, false, true, true) / full_line;
        curve.addRow({stats::TextTable::num(d, 1),
                      stats::TextTable::num(t_pte, 3),
                      stats::TextTable::num(t_tags, 3),
                      stats::TextTable::num(d, 3)});
    }
    std::printf("%s\n", curve.render().c_str());
    std::printf("PTE dirty tracks the ideal x=y closely; CLoadTags "
                "pays a per-line query cost\n(~10-cycle round trip, "
                "§6.3) so its curve sits above the ideal at low "
                "density.\n");
    return 0;
}

/**
 * @file
 * Table 2 reproduction: deallocation metadata per benchmark — pages
 * with pointers, free rate (MiB/s), and frees (thousands/s) — as
 * *measured* from our synthetic workloads, next to the paper's
 * values (which are also the calibration targets).
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"
#include "workload/driver.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth.hh"

using namespace cherivoke;

int
main()
{
    bench::printSystems(
        "Table 2: Deallocation metadata from applications");

    const sim::ExperimentConfig cfg = bench::defaultConfig();
    bench::printKnobs();
    stats::TextTable table({"benchmark", "pages w/ ptrs (paper)",
                            "(measured)", "free MiB/s (paper)",
                            "(measured)", "kfrees/s (paper)",
                            "(measured)"});

    for (const auto &profile : workload::specProfiles()) {
        workload::SynthConfig synth_cfg;
        synth_cfg.scale = cfg.scale;
        synth_cfg.durationSec = cfg.durationSec;
        synth_cfg.seed = cfg.seed;
        const workload::Trace trace =
            workload::synthesize(profile, synth_cfg);

        mem::AddressSpace space;
        alloc::CherivokeConfig acfg;
        acfg.minQuarantineBytes = 64 * KiB;
        alloc::CherivokeAllocator allocator(space, acfg);
        revoke::RevocationEngine revoker(allocator, space);
        workload::TraceDriver driver(space, allocator, &revoker);
        const workload::DriverResult run = driver.run(trace);

        // Measured rates are at scale: report them unscaled.
        table.addRow({
            profile.name,
            stats::TextTable::percent(profile.pagesWithPointers, 0),
            stats::TextTable::percent(run.pageDensity, 0),
            stats::TextTable::num(profile.freeRateMiBps, 0),
            stats::TextTable::num(
                run.measuredFreeRateMiBps / cfg.scale, 0),
            stats::TextTable::num(profile.freesPerSec / 1000.0, 0),
            stats::TextTable::num(
                run.measuredFreesPerSec / cfg.scale / 1000.0, 0),
        });
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("(measured = synthetic workload replayed in the "
                "simulator at scale %.4f,\n rates rescaled to "
                "reference scale; paper columns are table 2)\n",
                bench::defaultConfig().scale);
    return 0;
}

/**
 * @file
 * The experiment runner shared by the benchmark harness: synthesises
 * a table-2-calibrated workload, replays it through the CHERIvoke
 * allocator + revoker on a machine profile, and derives the
 * normalised quantities the paper's figures report.
 *
 * Scale invariance: heap size and allocation rates are scaled down
 * together by `scale`, which preserves sweep *frequency*
 * (= FreeRate / QuarantineSize) exactly; per-sweep work shrinks by
 * `scale`, so byte- and cycle-proportional times are multiplied back
 * by 1/scale while per-epoch fixed costs are not (see sim/machine).
 * Overhead fractions therefore match an unscaled run.
 *
 * The run produces three separable cost components, matching the
 * figure 6 decomposition:
 *  - quarantine effect: cache-locality penalty from delayed reuse
 *    (temporal fragmentation, §6.1.1) minus the free-batching gain,
 *    computed from a calibrated model because our simulator does not
 *    execute the application's own loads/stores;
 *  - shadow-map maintenance: modelled time for the measured paint
 *    operations (§6.1.2);
 *  - sweeping: modelled time for the measured sweep statistics
 *    (§6.1.3), the dominant term.
 */

#ifndef CHERIVOKE_SIM_EXPERIMENT_HH
#define CHERIVOKE_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/machine.hh"
#include "tenant/tenant_manager.hh"
#include "workload/driver.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth.hh"

namespace cherivoke {
namespace sim {

/** Experiment knobs. */
struct ExperimentConfig
{
    double quarantineFraction = 0.25; //!< the paper's default
    revoke::SweepKernel kernel = revoke::SweepKernel::Vector;
    bool usePteCapDirty = true; //!< modelled in the x86 runs (§5.3)
    bool useCloadTags = false;  //!< not modelled on x86 (§5.3)
    unsigned threads = 1;
    /** Epoch scheduling policy the revocation engine dispatches to. */
    revoke::PolicyKind policy = revoke::PolicyKind::StopTheWorld;
    /** How freed memory becomes safe to reuse (CHERIVOKE_BACKEND):
     *  quarantine+sweep, colored capabilities, or inline object IDs. */
    revoke::BackendKind backend = revoke::BackendKind::Sweep;
    /** Backend tuning (color pool size, compaction thresholds...). */
    revoke::BackendConfig backendConfig{};
    /** Pages per bounded pause (incremental/concurrent policies). */
    size_t pagesPerSlice = 64;
    /** Quarantine address bands painted concurrently at epoch open
     *  (1 = unsharded serial paint); results are bit-identical to
     *  serial for every shard count. */
    unsigned paintShards = 1;
    double scale = 1.0 / 64;
    double durationSec = 1.5;
    uint64_t seed = 42;
    bool modelTraffic = false; //!< attach the cache hierarchy
    /** Non-heap segments, scaled so the heap dominates the process
     *  image as it does at reference scale. */
    uint64_t globalsBytes = 512 * KiB;
    uint64_t stackBytes = 512 * KiB;

    /** @name Multi-tenant consolidation axis
     *  (runMultiTenantBenchmark; CHERIVOKE_TENANTS et al.) */
    /// @{
    /** Co-resident tenant processes sharing one memory + engine. */
    unsigned tenants = 1;
    /** What one tenant's quarantine-budget trigger sweeps. */
    tenant::RevocationScope tenantScope =
        tenant::RevocationScope::PerTenant;
    /** Per-tenant live-heap target in MiB; 0 = the profile's own. */
    double tenantHeapMiB = 0;
    /** Scheduling weights, one per tenant; empty = all equal. */
    std::vector<double> tenantWeights;
    /** Per-tenant revocation policies (CHERIVOKE_TENANT_POLICIES,
     *  comma-separated); empty = every tenant runs `policy`. A
     *  mixed list makes tenants heterogeneous on the one shared
     *  engine (epoch-owner-wins arbitration). */
    std::vector<revoke::PolicyKind> tenantPolicies;
    /** Per-tenant revocation backends (CHERIVOKE_TENANT_BACKENDS,
     *  comma-separated); empty = every tenant runs `backend`. The
     *  second heterogeneity axis beside tenantPolicies: domains on
     *  the one shared engine may mix sweep/color/objid backends. */
    std::vector<revoke::BackendKind> tenantBackends;
    /** Tenant-churn cycles (CHERIVOKE_TENANT_CHURN): when > 0,
     *  tenant 0's trace gains that many deterministic
     *  spawn→retire cycles of short-lived extra tenants, exercising
     *  mid-run arrival/departure and slot reuse. */
    unsigned tenantChurn = 0;
    /// @}

    /** @name Multi-threaded mutator front-end
     *  (CHERIVOKE_MUTATOR_THREADS / CHERIVOKE_REMOTE_BATCH) */
    /// @{
    /** Mutator threads per tenant; 1 = the classic serial
     *  front-end. Modelled statistics are bit-identical across
     *  thread counts (gated in tests and bench/mutator_contention). */
    unsigned mutatorThreads = 1;
    /** Remote frees per batch message on the MPSC queues. */
    unsigned remoteBatch = 32;
    /// @}

    /** @name Fault injection and memory pressure
     *  (CHERIVOKE_FAULT_PLAN / CHERIVOKE_FAULT_SEED /
     *  CHERIVOKE_PAGE_BUDGET_MIB; bench/fault_matrix) */
    /// @{
    /** Explicit chaos schedule, `kind@tenant:op[,...]` (strict
     *  grammar, see parseFaultPlan); empty = none. Takes precedence
     *  over faultSeed. */
    std::string faultPlanText;
    /** Seed for a generated plan (one injection per fault kind,
     *  spread across the tenants); 0 = no seeded plan. */
    uint64_t faultSeed = 0;
    /** Soft resident-page budget over the shared memory, in MiB;
     *  0 = unlimited. Exceeding it walks the manager's escalation
     *  ladder (emergency revocation → global reclaim → OOM-kill). */
    double pageBudgetMiB = 0;
    /// @}

    /** @name Supervised background revocation
     *  (CHERIVOKE_BG_SWEEPER / CHERIVOKE_EPOCH_DEADLINE_MS /
     *  CHERIVOKE_SWEEPER_RETRIES; bench/fault_matrix supervision
     *  matrix) */
    /// @{
    /** Run a true background sweeper thread per engine, racing the
     *  mutators over a frozen worklist snapshot. Modelled statistics
     *  stay bit-identical to the mutator-assist build (gated in
     *  tests and the bench harness). */
    bool bgSweeper = false;
    /** Explicit per-epoch sweeper deadline in milliseconds; 0 =
     *  derive from the §6.1.3 sweep-cost model (worklist bytes over
     *  an assumed scan rate, with slack). */
    double epochDeadlineMs = 0;
    /** Bounded watchdog retries (exponential backoff) before the
     *  degradation ladder takes over. */
    unsigned sweeperRetries = 2;
    /// @}
};

/** Everything one benchmark run produces. */
struct BenchResult
{
    std::string name;
    workload::DriverResult run;

    /** @name Figure 6 components (fractions of baseline runtime) */
    /// @{
    double quarantinePenalty = 0; //!< cache effect (can be ~0)
    double batchingGain = 0;      //!< free batching speedup
    double shadowOverhead = 0;
    double sweepOverhead = 0;
    /// @}

    /** Figure 5a: 1 + net overhead. */
    double normalizedTime = 1;
    /** Figure 5b: heap-relative memory utilisation. */
    double normalizedMemory = 1;
    /** §6.1.3 equation evaluated on measured quantities. */
    double predictedSweepOverhead = 0;
    /** Figure 7: achieved sweep bandwidth (bytes/s, real scale). */
    double achievedScanRate = 0;
    /** Figure 10: sweep off-core traffic / app traffic (percent). */
    double trafficOverheadPct = 0;
    /** Sweep DRAM traffic: modelled hierarchy totals when
     *  modelTraffic is on, the shared approximation otherwise. */
    uint64_t sweepDramBytes = 0;

    /** Backend-specific counters (color table churn, ID checks...)
     *  from the run's revocation backend (domain 0). */
    revoke::BackendStats backendStats{};
};

/** Run one benchmark profile under one configuration. */
BenchResult runBenchmark(const workload::BenchmarkProfile &profile,
                         const ExperimentConfig &config,
                         const MachineProfile &machine =
                             MachineProfile::x86());

/** Everything one multi-tenant consolidation run produces. */
struct MultiTenantBenchResult
{
    std::string name;
    tenant::MultiTenantResult run;

    /** @name Aggregate modelled overheads (over max virtual time) */
    /// @{
    double shadowOverhead = 0;
    double sweepOverhead = 0;
    double achievedScanRate = 0;      //!< bytes/s, real scale
    double trafficOverheadPct = 0;    //!< vs all tenants' app traffic
    uint64_t sweepDramBytes = 0;
    /// @}

    /** Per-tenant sweep overhead (same model on domain totals). */
    std::vector<double> tenantSweepOverhead;

    /** @name Simulator mutator throughput (wall clock, not model) */
    /// @{
    /** Wall seconds the interleaved trace replay itself took. */
    double mutatorWallSec = 0;
    /** Trace ops the replay retired per wall second — the
     *  mutator-side hot-path figure bench/alloc_hotpath tracks. */
    double mutatorOpsPerSec = 0;
    /// @}
};

/** Tenant-id base for experiment-generated churn tenants: far above
 *  the static tenants' slot-number ids. */
constexpr uint64_t kChurnTenantIdBase = 1000;

/**
 * The deterministic churn schedule config.tenantChurn implies: churn
 * tenant k (id kChurnTenantIdBase + k) is spawned by an op inserted
 * into tenant 0's trace and retired by a later one, cycles strictly
 * in sequence so cycle k+1 reuses cycle k's freed slot. Every cycle
 * replays the same short trace, so with per-tenant scope its
 * statistics are a pure function of the trace — a reused slot must
 * reproduce the fresh slot's results bit for bit.
 */
struct TenantChurnPlan
{
    /** One spawn→retire cycle, positioned by host-trace op index. */
    struct Cycle
    {
        uint64_t id = 0;
        size_t spawnAt = 0;  //!< op index in tenant 0's trace
        size_t retireAt = 0; //!< must be > spawnAt
    };

    std::vector<Cycle> cycles;
    tenant::TenantConfig config; //!< shared by every churn tenant
    workload::Trace trace;       //!< shared by every churn tenant
};

/** Build the churn plan for @p config (empty when tenantChurn == 0).
 *  @param host_ops op count of tenant 0's trace, which positions
 *         the spawn/retire ops */
TenantChurnPlan
makeTenantChurnPlan(const workload::BenchmarkProfile &profile,
                    const ExperimentConfig &config, size_t host_ops);

/** Insert @p plan's SpawnTenant/RetireTenant ops into @p host
 *  (tenant 0's trace) at their scheduled positions. */
void injectChurnOps(workload::Trace &host,
                    const TenantChurnPlan &plan);

/**
 * The per-tenant op streams a multi-tenant run replays: one trace
 * per tenant, each synthesised with a distinct seed so tenants are
 * independent processes with the same statistical shape. Tenant 0
 * keeps the experiment seed, so a 1-tenant run replays runBenchmark's
 * exact trace. With config.tenantChurn > 0, tenant 0's trace carries
 * the churn plan's spawn/retire ops (so recording the traces through
 * the binary codec captures the lifecycle schedule too). Exposed so
 * benches can record traces once (through tenant/trace_codec) and
 * replay them deterministically.
 */
std::vector<workload::Trace>
synthesizeTenantTraces(const workload::BenchmarkProfile &profile,
                       const ExperimentConfig &config);

/**
 * Host config.tenants copies of @p profile on one shared
 * TaggedMemory/RevocationEngine and model the aggregate revocation
 * cost. config.tenants == 1 reproduces runBenchmark's measured
 * statistics exactly.
 * @param traces replay these per-tenant op streams (count must match
 *        config.tenants) instead of synthesising fresh ones
 */
MultiTenantBenchResult
runMultiTenantBenchmark(const workload::BenchmarkProfile &profile,
                        const ExperimentConfig &config,
                        const MachineProfile &machine =
                            MachineProfile::x86(),
                        const std::vector<workload::Trace> *traces =
                            nullptr);

/** DRAM bytes a sweep moves (shared approximation). */
uint64_t approxSweepDramBytes(const revoke::SweepStats &stats);

} // namespace sim
} // namespace cherivoke

#endif // CHERIVOKE_SIM_EXPERIMENT_HH

/**
 * @file
 * The experiment runner shared by the benchmark harness: synthesises
 * a table-2-calibrated workload, replays it through the CHERIvoke
 * allocator + revoker on a machine profile, and derives the
 * normalised quantities the paper's figures report.
 *
 * Scale invariance: heap size and allocation rates are scaled down
 * together by `scale`, which preserves sweep *frequency*
 * (= FreeRate / QuarantineSize) exactly; per-sweep work shrinks by
 * `scale`, so byte- and cycle-proportional times are multiplied back
 * by 1/scale while per-epoch fixed costs are not (see sim/machine).
 * Overhead fractions therefore match an unscaled run.
 *
 * The run produces three separable cost components, matching the
 * figure 6 decomposition:
 *  - quarantine effect: cache-locality penalty from delayed reuse
 *    (temporal fragmentation, §6.1.1) minus the free-batching gain,
 *    computed from a calibrated model because our simulator does not
 *    execute the application's own loads/stores;
 *  - shadow-map maintenance: modelled time for the measured paint
 *    operations (§6.1.2);
 *  - sweeping: modelled time for the measured sweep statistics
 *    (§6.1.3), the dominant term.
 */

#ifndef CHERIVOKE_SIM_EXPERIMENT_HH
#define CHERIVOKE_SIM_EXPERIMENT_HH

#include <string>

#include "sim/machine.hh"
#include "workload/driver.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth.hh"

namespace cherivoke {
namespace sim {

/** Experiment knobs. */
struct ExperimentConfig
{
    double quarantineFraction = 0.25; //!< the paper's default
    revoke::SweepKernel kernel = revoke::SweepKernel::Vector;
    bool usePteCapDirty = true; //!< modelled in the x86 runs (§5.3)
    bool useCloadTags = false;  //!< not modelled on x86 (§5.3)
    unsigned threads = 1;
    /** Epoch scheduling policy the revocation engine dispatches to. */
    revoke::PolicyKind policy = revoke::PolicyKind::StopTheWorld;
    /** Pages per bounded pause (incremental/concurrent policies). */
    size_t pagesPerSlice = 64;
    /** Quarantine address bands painted concurrently at epoch open
     *  (1 = unsharded serial paint); results are bit-identical to
     *  serial for every shard count. */
    unsigned paintShards = 1;
    double scale = 1.0 / 64;
    double durationSec = 1.5;
    uint64_t seed = 42;
    bool modelTraffic = false; //!< attach the cache hierarchy
    /** Non-heap segments, scaled so the heap dominates the process
     *  image as it does at reference scale. */
    uint64_t globalsBytes = 512 * KiB;
    uint64_t stackBytes = 512 * KiB;
};

/** Everything one benchmark run produces. */
struct BenchResult
{
    std::string name;
    workload::DriverResult run;

    /** @name Figure 6 components (fractions of baseline runtime) */
    /// @{
    double quarantinePenalty = 0; //!< cache effect (can be ~0)
    double batchingGain = 0;      //!< free batching speedup
    double shadowOverhead = 0;
    double sweepOverhead = 0;
    /// @}

    /** Figure 5a: 1 + net overhead. */
    double normalizedTime = 1;
    /** Figure 5b: heap-relative memory utilisation. */
    double normalizedMemory = 1;
    /** §6.1.3 equation evaluated on measured quantities. */
    double predictedSweepOverhead = 0;
    /** Figure 7: achieved sweep bandwidth (bytes/s, real scale). */
    double achievedScanRate = 0;
    /** Figure 10: sweep off-core traffic / app traffic (percent). */
    double trafficOverheadPct = 0;
    /** Sweep DRAM traffic: modelled hierarchy totals when
     *  modelTraffic is on, the shared approximation otherwise. */
    uint64_t sweepDramBytes = 0;
};

/** Run one benchmark profile under one configuration. */
BenchResult runBenchmark(const workload::BenchmarkProfile &profile,
                         const ExperimentConfig &config,
                         const MachineProfile &machine =
                             MachineProfile::x86());

/** DRAM bytes a sweep moves (shared approximation). */
uint64_t approxSweepDramBytes(const revoke::SweepStats &stats);

} // namespace sim
} // namespace cherivoke

#endif // CHERIVOKE_SIM_EXPERIMENT_HH

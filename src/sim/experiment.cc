#include "sim/experiment.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "revoke/analytical_model.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace sim {

uint64_t
approxSweepDramBytes(const revoke::SweepStats &stats)
{
    const uint64_t swept = stats.bytesSwept();
    return swept + swept / 128 +
           stats.capsRevoked / kCapsPerLine * kLineBytes;
}

namespace {

/** Calibrated §6.1.1 quarantine cache-effect model. */
double
quarantineCachePenalty(const workload::BenchmarkProfile &profile,
                       double quarantine_fraction)
{
    // Temporal fragmentation leaves quarantined holes inside hot
    // cache lines; a larger quarantine lets lines fall wholly out of
    // use before reuse, shrinking the penalty (§6.4, figure 9).
    const double intensity = std::min(
        1.0, profile.freesPerSec / 1.0e6 +
                 profile.freeRateMiBps / 500.0);
    return profile.temporalFragmentation * intensity * 0.55 /
           (1.0 + quarantine_fraction / 0.5);
}

/** Free-batching gain: quarantine insertion is roughly half the
 *  cost of a real free (§6.1.1), so heavy free traffic gets faster. */
double
freeBatchingGain(double frees_per_sec_real)
{
    constexpr double kFreeCostSeconds = 100e-9;
    return std::min(0.04,
                    0.5 * kFreeCostSeconds * frees_per_sec_real);
}

/**
 * Synthesis settings for one process: the virtual duration must
 * cover several sweep periods (period = Q * heap / free rate, which
 * scaling leaves unchanged), or slow-freeing benchmarks would never
 * trigger a sweep inside the run.
 */
workload::SynthConfig
synthConfigFor(const workload::BenchmarkProfile &profile,
               const ExperimentConfig &config)
{
    workload::SynthConfig synth_cfg;
    synth_cfg.scale = config.scale;
    synth_cfg.durationSec = config.durationSec;
    if (profile.allocationIntensive()) {
        // Use the *effective scaled* live target (the synthesiser
        // floors tiny scaled heaps at minLiveBytes) and scaled free
        // rate, so the floor cannot push sweeps past the run's end.
        const double live_scaled = std::max<double>(
            profile.liveHeapMiB * MiB * config.scale,
            static_cast<double>(synth_cfg.minLiveBytes));
        const double rate_scaled =
            profile.freeRateMiBps * MiB * config.scale;
        const double period =
            config.quarantineFraction * live_scaled / rate_scaled;
        synth_cfg.durationSec = std::max(
            config.durationSec, std::min(60.0, 3.0 * period));
    }
    synth_cfg.seed = config.seed;
    return synth_cfg;
}

/** The allocator tuning every experiment process uses: map the heap
 *  in small steps so the mapped footprint tracks the scaled working
 *  set (a reference-scale run maps 4 MiB chunks against hundreds of
 *  MiB of heap). */
alloc::CherivokeConfig
allocConfigFor(const ExperimentConfig &config)
{
    alloc::CherivokeConfig acfg;
    acfg.quarantineFraction = config.quarantineFraction;
    acfg.minQuarantineBytes = 64 * KiB;
    acfg.dl.initialHeapBytes = 1 * MiB;
    acfg.dl.growthChunkBytes = 512 * KiB;
    return acfg;
}

revoke::EngineConfig
engineConfigFor(const ExperimentConfig &config)
{
    revoke::EngineConfig engine_cfg;
    engine_cfg.sweep.kernel = config.kernel;
    engine_cfg.sweep.usePteCapDirty = config.usePteCapDirty;
    engine_cfg.sweep.useCloadTags = config.useCloadTags;
    engine_cfg.sweep.threads = config.threads;
    engine_cfg.policy = config.policy;
    engine_cfg.pagesPerSlice = config.pagesPerSlice;
    engine_cfg.paintShards = config.paintShards;
    return engine_cfg;
}

} // namespace

BenchResult
runBenchmark(const workload::BenchmarkProfile &profile,
             const ExperimentConfig &config,
             const MachineProfile &machine)
{
    BenchResult result;
    result.name = profile.name;

    // Synthesise the workload at scale.
    const workload::Trace trace =
        workload::synthesize(profile, synthConfigFor(profile, config));

    // Build the machine and replay.
    mem::AddressSpace space(config.globalsBytes, config.stackBytes);
    alloc::CherivokeAllocator allocator(space,
                                        allocConfigFor(config));
    revoke::RevocationEngine revoker(allocator, space,
                                     engineConfigFor(config));
    std::unique_ptr<cache::Hierarchy> hierarchy;
    if (config.modelTraffic) {
        hierarchy = std::make_unique<cache::Hierarchy>(
            machine.hierarchyConfig());
    }

    workload::TraceDriver driver(space, allocator, &revoker);
    result.run = driver.run(trace, hierarchy.get());
    const workload::DriverResult &run = result.run;
    const double vt = std::max(run.virtualSeconds, 1e-9);

    // --- Figure 6 components ---
    result.quarantinePenalty =
        quarantineCachePenalty(profile, config.quarantineFraction);
    result.batchingGain =
        freeBatchingGain(run.measuredFreesPerSec / config.scale);

    result.shadowOverhead =
        paintSeconds(machine, run.revoker.paint, config.scale) / vt;

    const uint64_t dram_bytes =
        hierarchy ? hierarchy->dram().totalBytes()
                  : approxSweepDramBytes(run.revoker.sweep);
    result.sweepDramBytes = dram_bytes;
    const double sweep_secs =
        sweepSeconds(machine, run.revoker.sweep, dram_bytes,
                     run.revoker.epochs, config.scale);
    result.sweepOverhead = sweep_secs / vt;

    result.normalizedTime = 1.0 + result.quarantinePenalty -
                            result.batchingGain +
                            result.shadowOverhead +
                            result.sweepOverhead;

    // --- Figure 5b ---
    // The paper normalises *total* process memory; the quarantine
    // and shadow map grow only the heap share of it. Model the
    // non-heap residency (code, stack, globals, page tables) as a
    // constant ~100 MiB at reference scale.
    constexpr double kNonHeapMiB = 100.0;
    const double heap_share =
        profile.liveHeapMiB / (profile.liveHeapMiB + kNonHeapMiB);
    const double live =
        std::max<double>(static_cast<double>(run.peakLiveBytes), 1);
    const double heap_growth =
        static_cast<double>(run.peakQuarantineBytes) / live +
        1.0 / 128.0;
    result.normalizedMemory = 1.0 + heap_share * heap_growth;

    // --- §6.1.3 prediction on measured inputs ---
    result.achievedScanRate = achievedSweepBandwidth(
        machine, run.revoker.sweep, run.revoker.epochs, config.scale);
    if (result.achievedScanRate > 0 && run.revoker.epochs > 0) {
        // §6.1.3: sweep frequency = FreeRate / (Q * heap); work per
        // sweep = density * heap / ScanRate, so heap cancels.
        revoke::OverheadParams params;
        params.freeRateBytesPerSec =
            run.measuredFreeRateMiBps * MiB / config.scale;
        params.pointerDensity = run.pageDensity;
        params.scanRateBytesPerSec = result.achievedScanRate;
        params.quarantineFraction = config.quarantineFraction;
        result.predictedSweepOverhead =
            revoke::predictedRuntimeOverhead(params);
    }

    // --- Figure 10 ---
    const double sweep_dram_per_sec =
        static_cast<double>(approxSweepDramBytes(run.revoker.sweep)) /
        config.scale / vt;
    result.trafficOverheadPct =
        100.0 * sweep_dram_per_sec / (profile.appDramMiBps * MiB);

    return result;
}

std::vector<workload::Trace>
synthesizeTenantTraces(const workload::BenchmarkProfile &profile,
                       const ExperimentConfig &config)
{
    workload::BenchmarkProfile tenant_profile = profile;
    if (config.tenantHeapMiB > 0)
        tenant_profile.liveHeapMiB = config.tenantHeapMiB;
    std::vector<workload::Trace> traces;
    traces.reserve(config.tenants);
    for (unsigned i = 0; i < config.tenants; ++i) {
        workload::SynthConfig synth_cfg =
            synthConfigFor(tenant_profile, config);
        synth_cfg.seed = config.seed + 0x9e3779b9ULL * i;
        traces.push_back(
            workload::synthesize(tenant_profile, synth_cfg));
    }
    return traces;
}

MultiTenantBenchResult
runMultiTenantBenchmark(const workload::BenchmarkProfile &profile,
                        const ExperimentConfig &config,
                        const MachineProfile &machine,
                        const std::vector<workload::Trace> *traces)
{
    CHERIVOKE_ASSERT(config.tenants >= 1);
    if (!config.tenantWeights.empty() &&
        config.tenantWeights.size() != config.tenants)
        fatal("tenantWeights has %zu entries for %u tenants",
              config.tenantWeights.size(), config.tenants);

    MultiTenantBenchResult result;
    result.name = profile.name;

    std::vector<workload::Trace> synthesized;
    if (!traces) {
        synthesized = synthesizeTenantTraces(profile, config);
        traces = &synthesized;
    } else if (traces->size() != config.tenants) {
        fatal("%zu supplied traces for %u tenants", traces->size(),
              config.tenants);
    }

    tenant::TenantManagerConfig mgr_cfg;
    mgr_cfg.engine = engineConfigFor(config);
    mgr_cfg.scope = config.tenantScope;
    tenant::TenantManager manager(mgr_cfg);

    for (unsigned i = 0; i < config.tenants; ++i) {
        tenant::TenantConfig tcfg;
        tcfg.name = profile.name + "#" + std::to_string(i);
        tcfg.weight = config.tenantWeights.empty()
                          ? 1.0
                          : config.tenantWeights[i];
        tcfg.alloc = allocConfigFor(config);
        tcfg.globalsBytes = config.globalsBytes;
        tcfg.stackBytes = config.stackBytes;
        manager.addTenant(tcfg, (*traces)[i]);
    }

    std::unique_ptr<cache::Hierarchy> hierarchy;
    if (config.modelTraffic) {
        hierarchy = std::make_unique<cache::Hierarchy>(
            machine.hierarchyConfig());
    }
    const auto wall0 = std::chrono::steady_clock::now();
    result.run = manager.run(hierarchy.get());
    result.mutatorWallSec =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall0)
            .count();
    const tenant::MultiTenantResult &run = result.run;
    if (result.mutatorWallSec > 0) {
        result.mutatorOpsPerSec =
            static_cast<double>(run.totalOps) /
            result.mutatorWallSec;
    }
    const double vt = std::max(run.virtualSeconds, 1e-9);

    // Aggregate model, exactly as the single-process path: shadow
    // paint time + sweep time over the (concurrent) virtual duration.
    result.shadowOverhead =
        paintSeconds(machine, run.engine.paint, config.scale) / vt;
    const uint64_t dram_bytes =
        hierarchy ? hierarchy->dram().totalBytes()
                  : approxSweepDramBytes(run.engine.sweep);
    result.sweepDramBytes = dram_bytes;
    result.sweepOverhead =
        sweepSeconds(machine, run.engine.sweep, dram_bytes,
                     run.engine.epochs, config.scale) /
        vt;
    result.achievedScanRate = achievedSweepBandwidth(
        machine, run.engine.sweep, run.engine.epochs, config.scale);

    // Figure 10 generalised: the denominator is every tenant's
    // baseline off-core traffic — consolidation grows both sides.
    const double sweep_dram_per_sec =
        static_cast<double>(approxSweepDramBytes(run.engine.sweep)) /
        config.scale / vt;
    result.trafficOverheadPct =
        100.0 * sweep_dram_per_sec /
        (config.tenants * profile.appDramMiBps * MiB);

    result.tenantSweepOverhead.reserve(run.tenants.size());
    for (const tenant::TenantResult &tr : run.tenants) {
        const double tvt = std::max(tr.run.virtualSeconds, 1e-9);
        result.tenantSweepOverhead.push_back(
            sweepSeconds(machine, tr.run.revoker.sweep,
                         approxSweepDramBytes(tr.run.revoker.sweep),
                         tr.run.revoker.epochs, config.scale) /
            tvt);
    }
    return result;
}

} // namespace sim
} // namespace cherivoke

#include "sim/experiment.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "revoke/analytical_model.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace sim {

uint64_t
approxSweepDramBytes(const revoke::SweepStats &stats)
{
    const uint64_t swept = stats.bytesSwept();
    return swept + swept / 128 +
           stats.capsRevoked / kCapsPerLine * kLineBytes;
}

namespace {

/** Calibrated §6.1.1 quarantine cache-effect model. */
double
quarantineCachePenalty(const workload::BenchmarkProfile &profile,
                       double quarantine_fraction)
{
    // Temporal fragmentation leaves quarantined holes inside hot
    // cache lines; a larger quarantine lets lines fall wholly out of
    // use before reuse, shrinking the penalty (§6.4, figure 9).
    const double intensity = std::min(
        1.0, profile.freesPerSec / 1.0e6 +
                 profile.freeRateMiBps / 500.0);
    return profile.temporalFragmentation * intensity * 0.55 /
           (1.0 + quarantine_fraction / 0.5);
}

/** Free-batching gain: quarantine insertion is roughly half the
 *  cost of a real free (§6.1.1), so heavy free traffic gets faster. */
double
freeBatchingGain(double frees_per_sec_real)
{
    constexpr double kFreeCostSeconds = 100e-9;
    return std::min(0.04,
                    0.5 * kFreeCostSeconds * frees_per_sec_real);
}

/**
 * Synthesis settings for one process: the virtual duration must
 * cover several sweep periods (period = Q * heap / free rate, which
 * scaling leaves unchanged), or slow-freeing benchmarks would never
 * trigger a sweep inside the run.
 */
workload::SynthConfig
synthConfigFor(const workload::BenchmarkProfile &profile,
               const ExperimentConfig &config)
{
    workload::SynthConfig synth_cfg;
    synth_cfg.scale = config.scale;
    synth_cfg.durationSec = config.durationSec;
    if (profile.allocationIntensive()) {
        // Use the *effective scaled* live target (the synthesiser
        // floors tiny scaled heaps at minLiveBytes) and scaled free
        // rate, so the floor cannot push sweeps past the run's end.
        const double live_scaled = std::max<double>(
            profile.liveHeapMiB * MiB * config.scale,
            static_cast<double>(synth_cfg.minLiveBytes));
        const double rate_scaled =
            profile.freeRateMiBps * MiB * config.scale;
        const double period =
            config.quarantineFraction * live_scaled / rate_scaled;
        synth_cfg.durationSec = std::max(
            config.durationSec, std::min(60.0, 3.0 * period));
    }
    synth_cfg.seed = config.seed;
    return synth_cfg;
}

/** The allocator tuning every experiment process uses: map the heap
 *  in small steps so the mapped footprint tracks the scaled working
 *  set (a reference-scale run maps 4 MiB chunks against hundreds of
 *  MiB of heap). */
alloc::CherivokeConfig
allocConfigFor(const ExperimentConfig &config)
{
    alloc::CherivokeConfig acfg;
    acfg.quarantineFraction = config.quarantineFraction;
    acfg.minQuarantineBytes = 64 * KiB;
    acfg.dl.initialHeapBytes = 1 * MiB;
    acfg.dl.growthChunkBytes = 512 * KiB;
    return acfg;
}

revoke::EngineConfig
engineConfigFor(const ExperimentConfig &config)
{
    revoke::EngineConfig engine_cfg;
    engine_cfg.sweep.kernel = config.kernel;
    engine_cfg.sweep.usePteCapDirty = config.usePteCapDirty;
    engine_cfg.sweep.useCloadTags = config.useCloadTags;
    engine_cfg.sweep.threads = config.threads;
    engine_cfg.policy = config.policy;
    engine_cfg.pagesPerSlice = config.pagesPerSlice;
    engine_cfg.paintShards = config.paintShards;
    engine_cfg.backend = config.backend;
    engine_cfg.backendConfig = config.backendConfig;
    engine_cfg.backgroundSweeper = config.bgSweeper;
    engine_cfg.epochDeadlineMs = config.epochDeadlineMs;
    engine_cfg.sweeperRetries = config.sweeperRetries;
    return engine_cfg;
}

} // namespace

BenchResult
runBenchmark(const workload::BenchmarkProfile &profile,
             const ExperimentConfig &config,
             const MachineProfile &machine)
{
    BenchResult result;
    result.name = profile.name;

    // Synthesise the workload at scale.
    const workload::Trace trace =
        workload::synthesize(profile, synthConfigFor(profile, config));

    // Build the machine and replay.
    mem::AddressSpace space(config.globalsBytes, config.stackBytes);
    alloc::CherivokeAllocator allocator(space,
                                        allocConfigFor(config));
    revoke::RevocationEngine revoker(allocator, space,
                                     engineConfigFor(config));
    std::unique_ptr<cache::Hierarchy> hierarchy;
    if (config.modelTraffic) {
        hierarchy = std::make_unique<cache::Hierarchy>(
            machine.hierarchyConfig());
    }

    workload::TraceDriver driver(space, allocator, &revoker);
    result.run = driver.run(trace, hierarchy.get());
    result.backendStats = revoker.domainBackendStats(0);
    const workload::DriverResult &run = result.run;
    const double vt = std::max(run.virtualSeconds, 1e-9);

    // --- Figure 6 components ---
    result.quarantinePenalty =
        quarantineCachePenalty(profile, config.quarantineFraction);
    result.batchingGain =
        freeBatchingGain(run.measuredFreesPerSec / config.scale);

    result.shadowOverhead =
        paintSeconds(machine, run.revoker.paint, config.scale) / vt;

    const uint64_t dram_bytes =
        hierarchy ? hierarchy->dram().totalBytes()
                  : approxSweepDramBytes(run.revoker.sweep);
    result.sweepDramBytes = dram_bytes;
    const double sweep_secs =
        sweepSeconds(machine, run.revoker.sweep, dram_bytes,
                     run.revoker.epochs, config.scale);
    result.sweepOverhead = sweep_secs / vt;

    result.normalizedTime = 1.0 + result.quarantinePenalty -
                            result.batchingGain +
                            result.shadowOverhead +
                            result.sweepOverhead;

    // --- Figure 5b ---
    // The paper normalises *total* process memory; the quarantine
    // and shadow map grow only the heap share of it. Model the
    // non-heap residency (code, stack, globals, page tables) as a
    // constant ~100 MiB at reference scale.
    constexpr double kNonHeapMiB = 100.0;
    const double heap_share =
        profile.liveHeapMiB / (profile.liveHeapMiB + kNonHeapMiB);
    const double live =
        std::max<double>(static_cast<double>(run.peakLiveBytes), 1);
    const double heap_growth =
        static_cast<double>(run.peakQuarantineBytes) / live +
        1.0 / 128.0;
    result.normalizedMemory = 1.0 + heap_share * heap_growth;

    // --- §6.1.3 prediction on measured inputs ---
    result.achievedScanRate = achievedSweepBandwidth(
        machine, run.revoker.sweep, run.revoker.epochs, config.scale);
    if (result.achievedScanRate > 0 && run.revoker.epochs > 0) {
        // §6.1.3: sweep frequency = FreeRate / (Q * heap); work per
        // sweep = density * heap / ScanRate, so heap cancels.
        revoke::OverheadParams params;
        params.freeRateBytesPerSec =
            run.measuredFreeRateMiBps * MiB / config.scale;
        params.pointerDensity = run.pageDensity;
        params.scanRateBytesPerSec = result.achievedScanRate;
        params.quarantineFraction = config.quarantineFraction;
        result.predictedSweepOverhead =
            revoke::predictedRuntimeOverhead(params);
    }

    // --- Figure 10 ---
    const double sweep_dram_per_sec =
        static_cast<double>(approxSweepDramBytes(run.revoker.sweep)) /
        config.scale / vt;
    result.trafficOverheadPct =
        100.0 * sweep_dram_per_sec / (profile.appDramMiBps * MiB);

    return result;
}

TenantChurnPlan
makeTenantChurnPlan(const workload::BenchmarkProfile &profile,
                    const ExperimentConfig &config, size_t host_ops)
{
    TenantChurnPlan plan;
    if (config.tenantChurn == 0)
        return plan;

    workload::BenchmarkProfile tenant_profile = profile;
    if (config.tenantHeapMiB > 0)
        tenant_profile.liveHeapMiB = config.tenantHeapMiB;

    // Every cycle spawns the same definition shape: a short-lived
    // tenant aggressive enough to revoke at least once in its
    // lifetime, so reusing a stale slot would corrupt *measured*
    // statistics, not just idle state.
    plan.config.name = "churn";
    plan.config.weight = 1.0;
    plan.config.alloc = allocConfigFor(config);
    plan.config.alloc.quarantineFraction =
        std::min(config.quarantineFraction, 0.1);
    plan.config.alloc.minQuarantineBytes = 16 * KiB;
    plan.config.alloc.dl.initialHeapBytes = 256 * KiB;
    plan.config.alloc.dl.growthChunkBytes = 128 * KiB;
    plan.config.globalsBytes = config.globalsBytes;
    plan.config.stackBytes = config.stackBytes;

    workload::SynthConfig synth_cfg =
        synthConfigFor(tenant_profile, config);
    synth_cfg.seed = config.seed ^ 0x5bd1e995ULL;
    synth_cfg.durationSec =
        std::min(synth_cfg.durationSec, 0.25 * config.durationSec);
    plan.trace = workload::synthesize(tenant_profile, synth_cfg);

    if (host_ops == 0)
        return plan; // definitions only; no schedule requested

    // Cycles partition the host trace into equal windows, strictly
    // in sequence so cycle k+1 reuses cycle k's freed slot. The
    // churn trace is truncated far below the window's turn budget
    // (the smooth scheduler gives a live tenant roughly one turn
    // per host op) so every cycle replays to completion — that is
    // what makes a reused-slot cycle comparable bit-for-bit with
    // the fresh-slot one.
    const size_t windows = 2 * (config.tenantChurn + 1);
    const size_t gap = host_ops / windows;
    if (gap == 0)
        fatal("tenant churn %u needs a host trace of at least %zu "
              "ops (got %zu)",
              config.tenantChurn, windows, host_ops);
    const size_t ops_cap = std::max<size_t>(gap / 8, 16);
    if (plan.trace.ops.size() > ops_cap)
        plan.trace.ops.resize(ops_cap);

    plan.cycles.reserve(config.tenantChurn);
    for (unsigned k = 0; k < config.tenantChurn; ++k) {
        TenantChurnPlan::Cycle cycle;
        cycle.id = kChurnTenantIdBase + k;
        cycle.spawnAt = (2 * k + 1) * gap;
        cycle.retireAt = (2 * k + 2) * gap;
        plan.cycles.push_back(cycle);
    }
    return plan;
}

void
injectChurnOps(workload::Trace &host, const TenantChurnPlan &plan)
{
    if (plan.cycles.empty())
        return;
    // Schedule entries in position order (cycles are sequential and
    // non-overlapping by construction).
    std::vector<std::pair<size_t, workload::TraceOp>> schedule;
    schedule.reserve(plan.cycles.size() * 2);
    for (const TenantChurnPlan::Cycle &cycle : plan.cycles) {
        CHERIVOKE_ASSERT(cycle.spawnAt < cycle.retireAt);
        workload::TraceOp spawn;
        spawn.kind = workload::OpKind::SpawnTenant;
        spawn.id = cycle.id;
        workload::TraceOp retire;
        retire.kind = workload::OpKind::RetireTenant;
        retire.id = cycle.id;
        schedule.emplace_back(cycle.spawnAt, spawn);
        schedule.emplace_back(cycle.retireAt, retire);
    }

    std::vector<workload::TraceOp> merged;
    merged.reserve(host.ops.size() + schedule.size());
    size_t next_event = 0;
    for (size_t i = 0; i < host.ops.size(); ++i) {
        while (next_event < schedule.size() &&
               schedule[next_event].first <= i) {
            merged.push_back(schedule[next_event].second);
            ++next_event;
        }
        merged.push_back(host.ops[i]);
    }
    for (; next_event < schedule.size(); ++next_event)
        merged.push_back(schedule[next_event].second);
    host.ops = std::move(merged);
}

std::vector<workload::Trace>
synthesizeTenantTraces(const workload::BenchmarkProfile &profile,
                       const ExperimentConfig &config)
{
    workload::BenchmarkProfile tenant_profile = profile;
    if (config.tenantHeapMiB > 0)
        tenant_profile.liveHeapMiB = config.tenantHeapMiB;
    std::vector<workload::Trace> traces;
    traces.reserve(config.tenants);
    for (unsigned i = 0; i < config.tenants; ++i) {
        workload::SynthConfig synth_cfg =
            synthConfigFor(tenant_profile, config);
        synth_cfg.seed = config.seed + 0x9e3779b9ULL * i;
        traces.push_back(
            workload::synthesize(tenant_profile, synth_cfg));
    }
    if (config.tenantChurn > 0) {
        const TenantChurnPlan plan = makeTenantChurnPlan(
            profile, config, traces[0].ops.size());
        injectChurnOps(traces[0], plan);
    }
    return traces;
}

MultiTenantBenchResult
runMultiTenantBenchmark(const workload::BenchmarkProfile &profile,
                        const ExperimentConfig &config,
                        const MachineProfile &machine,
                        const std::vector<workload::Trace> *traces)
{
    CHERIVOKE_ASSERT(config.tenants >= 1);
    if (!config.tenantWeights.empty() &&
        config.tenantWeights.size() != config.tenants)
        fatal("tenantWeights has %zu entries for %u tenants",
              config.tenantWeights.size(), config.tenants);
    if (!config.tenantPolicies.empty() &&
        config.tenantPolicies.size() != config.tenants)
        fatal("tenantPolicies has %zu entries for %u tenants",
              config.tenantPolicies.size(), config.tenants);
    if (!config.tenantBackends.empty() &&
        config.tenantBackends.size() != config.tenants)
        fatal("tenantBackends has %zu entries for %u tenants",
              config.tenantBackends.size(), config.tenants);

    MultiTenantBenchResult result;
    result.name = profile.name;

    std::vector<workload::Trace> synthesized;
    if (!traces) {
        synthesized = synthesizeTenantTraces(profile, config);
        traces = &synthesized;
    } else if (traces->size() != config.tenants) {
        fatal("%zu supplied traces for %u tenants", traces->size(),
              config.tenants);
    }

    tenant::TenantManagerConfig mgr_cfg;
    mgr_cfg.engine = engineConfigFor(config);
    mgr_cfg.scope = config.tenantScope;
    mgr_cfg.mutator.threads = config.mutatorThreads;
    mgr_cfg.mutator.remoteBatch = config.remoteBatch;
    if (!config.faultPlanText.empty()) {
        mgr_cfg.faultPlan = parseFaultPlan(config.faultPlanText);
    } else if (config.faultSeed != 0) {
        // Seeded chaos: one injection of every kind, spread over the
        // static tenants (ids == slots before any churn), each at an
        // op index inside the target tenant's own trace.
        std::vector<uint64_t> ids(config.tenants);
        std::vector<uint64_t> ops(config.tenants);
        for (unsigned i = 0; i < config.tenants; ++i) {
            ids[i] = i;
            ops[i] = (*traces)[i].ops.size();
        }
        mgr_cfg.faultPlan =
            generateFaultPlan(config.faultSeed, ids, ops);
    }
    mgr_cfg.pageBudgetPages = static_cast<size_t>(
        config.pageBudgetMiB * MiB / kPageBytes);
    tenant::TenantManager manager(mgr_cfg);

    for (unsigned i = 0; i < config.tenants; ++i) {
        tenant::TenantConfig tcfg;
        tcfg.name = profile.name + "#" + std::to_string(i);
        tcfg.weight = config.tenantWeights.empty()
                          ? 1.0
                          : config.tenantWeights[i];
        tcfg.alloc = allocConfigFor(config);
        tcfg.globalsBytes = config.globalsBytes;
        tcfg.stackBytes = config.stackBytes;
        if (!config.tenantPolicies.empty())
            tcfg.policy = config.tenantPolicies[i];
        if (!config.tenantBackends.empty())
            tcfg.backend = config.tenantBackends[i];
        manager.addTenant(tcfg, (*traces)[i]);
    }

    if (config.tenantChurn > 0) {
        // The definitions the host trace's SpawnTenant ops resolve
        // against: rebuild the same deterministic plan the traces
        // were recorded with (the supplied trace 0 carries
        // 2 * tenantChurn injected lifecycle ops on top of its
        // synthesised op count).
        const size_t injected = 2 * config.tenantChurn;
        if ((*traces)[0].ops.size() < injected)
            fatal("tenant 0's trace is too short to carry %u churn "
                  "cycles",
                  config.tenantChurn);
        const TenantChurnPlan plan = makeTenantChurnPlan(
            profile, config, (*traces)[0].ops.size() - injected);
        for (unsigned k = 0; k < config.tenantChurn; ++k) {
            tenant::TenantConfig ccfg = plan.config;
            ccfg.name = "churn#" + std::to_string(k);
            manager.defineTenant(kChurnTenantIdBase + k, ccfg,
                                 plan.trace);
        }
    }

    std::unique_ptr<cache::Hierarchy> hierarchy;
    if (config.modelTraffic) {
        hierarchy = std::make_unique<cache::Hierarchy>(
            machine.hierarchyConfig());
    }
    const auto wall0 = std::chrono::steady_clock::now();
    result.run = manager.run(hierarchy.get());
    result.mutatorWallSec =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall0)
            .count();
    const tenant::MultiTenantResult &run = result.run;
    if (result.mutatorWallSec > 0) {
        result.mutatorOpsPerSec =
            static_cast<double>(run.totalOps) /
            result.mutatorWallSec;
    }
    const double vt = std::max(run.virtualSeconds, 1e-9);

    // Aggregate model, exactly as the single-process path: shadow
    // paint time + sweep time over the (concurrent) virtual duration.
    result.shadowOverhead =
        paintSeconds(machine, run.engine.paint, config.scale) / vt;
    const uint64_t dram_bytes =
        hierarchy ? hierarchy->dram().totalBytes()
                  : approxSweepDramBytes(run.engine.sweep);
    result.sweepDramBytes = dram_bytes;
    result.sweepOverhead =
        sweepSeconds(machine, run.engine.sweep, dram_bytes,
                     run.engine.epochs, config.scale) /
        vt;
    result.achievedScanRate = achievedSweepBandwidth(
        machine, run.engine.sweep, run.engine.epochs, config.scale);

    // Figure 10 generalised: the denominator is every tenant's
    // baseline off-core traffic — consolidation grows both sides.
    const double sweep_dram_per_sec =
        static_cast<double>(approxSweepDramBytes(run.engine.sweep)) /
        config.scale / vt;
    result.trafficOverheadPct =
        100.0 * sweep_dram_per_sec /
        (config.tenants * profile.appDramMiBps * MiB);

    result.tenantSweepOverhead.reserve(run.tenants.size());
    for (const tenant::TenantResult &tr : run.tenants) {
        const double tvt = std::max(tr.run.virtualSeconds, 1e-9);
        result.tenantSweepOverhead.push_back(
            sweepSeconds(machine, tr.run.revoker.sweep,
                         approxSweepDramBytes(tr.run.revoker.sweep),
                         tr.run.revoker.epochs, config.scale) /
            tvt);
    }
    return result;
}

} // namespace sim
} // namespace cherivoke

#include "sim/experiment.hh"

#include <algorithm>
#include <memory>

#include "revoke/analytical_model.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace sim {

uint64_t
approxSweepDramBytes(const revoke::SweepStats &stats)
{
    const uint64_t swept = stats.bytesSwept();
    return swept + swept / 128 +
           stats.capsRevoked / kCapsPerLine * kLineBytes;
}

namespace {

/** Calibrated §6.1.1 quarantine cache-effect model. */
double
quarantineCachePenalty(const workload::BenchmarkProfile &profile,
                       double quarantine_fraction)
{
    // Temporal fragmentation leaves quarantined holes inside hot
    // cache lines; a larger quarantine lets lines fall wholly out of
    // use before reuse, shrinking the penalty (§6.4, figure 9).
    const double intensity = std::min(
        1.0, profile.freesPerSec / 1.0e6 +
                 profile.freeRateMiBps / 500.0);
    return profile.temporalFragmentation * intensity * 0.55 /
           (1.0 + quarantine_fraction / 0.5);
}

/** Free-batching gain: quarantine insertion is roughly half the
 *  cost of a real free (§6.1.1), so heavy free traffic gets faster. */
double
freeBatchingGain(double frees_per_sec_real)
{
    constexpr double kFreeCostSeconds = 100e-9;
    return std::min(0.04,
                    0.5 * kFreeCostSeconds * frees_per_sec_real);
}

} // namespace

BenchResult
runBenchmark(const workload::BenchmarkProfile &profile,
             const ExperimentConfig &config,
             const MachineProfile &machine)
{
    BenchResult result;
    result.name = profile.name;

    // Synthesise the workload at scale. The virtual duration must
    // cover several sweep periods (period = Q * heap / free rate,
    // which scaling leaves unchanged), or slow-freeing benchmarks
    // would never trigger a sweep inside the run.
    workload::SynthConfig synth_cfg;
    synth_cfg.scale = config.scale;
    synth_cfg.durationSec = config.durationSec;
    if (profile.allocationIntensive()) {
        // Use the *effective scaled* live target (the synthesiser
        // floors tiny scaled heaps at minLiveBytes) and scaled free
        // rate, so the floor cannot push sweeps past the run's end.
        const double live_scaled = std::max<double>(
            profile.liveHeapMiB * MiB * config.scale,
            static_cast<double>(synth_cfg.minLiveBytes));
        const double rate_scaled =
            profile.freeRateMiBps * MiB * config.scale;
        const double period =
            config.quarantineFraction * live_scaled / rate_scaled;
        synth_cfg.durationSec = std::max(
            config.durationSec, std::min(60.0, 3.0 * period));
    }
    synth_cfg.seed = config.seed;
    const workload::Trace trace =
        workload::synthesize(profile, synth_cfg);

    // Build the machine and replay.
    mem::AddressSpace space(config.globalsBytes, config.stackBytes);
    alloc::CherivokeConfig acfg;
    acfg.quarantineFraction = config.quarantineFraction;
    acfg.minQuarantineBytes = 64 * KiB;
    // Map the heap in small steps so the mapped footprint tracks the
    // scaled working set (a reference-scale run maps 4 MiB chunks
    // against hundreds of MiB of heap).
    acfg.dl.initialHeapBytes = 1 * MiB;
    acfg.dl.growthChunkBytes = 512 * KiB;
    alloc::CherivokeAllocator allocator(space, acfg);
    revoke::EngineConfig engine_cfg;
    engine_cfg.sweep.kernel = config.kernel;
    engine_cfg.sweep.usePteCapDirty = config.usePteCapDirty;
    engine_cfg.sweep.useCloadTags = config.useCloadTags;
    engine_cfg.sweep.threads = config.threads;
    engine_cfg.policy = config.policy;
    engine_cfg.pagesPerSlice = config.pagesPerSlice;
    engine_cfg.paintShards = config.paintShards;
    revoke::RevocationEngine revoker(allocator, space, engine_cfg);
    std::unique_ptr<cache::Hierarchy> hierarchy;
    if (config.modelTraffic) {
        hierarchy = std::make_unique<cache::Hierarchy>(
            machine.hierarchyConfig());
    }

    workload::TraceDriver driver(space, allocator, &revoker);
    result.run = driver.run(trace, hierarchy.get());
    const workload::DriverResult &run = result.run;
    const double vt = std::max(run.virtualSeconds, 1e-9);

    // --- Figure 6 components ---
    result.quarantinePenalty =
        quarantineCachePenalty(profile, config.quarantineFraction);
    result.batchingGain =
        freeBatchingGain(run.measuredFreesPerSec / config.scale);

    result.shadowOverhead =
        paintSeconds(machine, run.revoker.paint, config.scale) / vt;

    const uint64_t dram_bytes =
        hierarchy ? hierarchy->dram().totalBytes()
                  : approxSweepDramBytes(run.revoker.sweep);
    result.sweepDramBytes = dram_bytes;
    const double sweep_secs =
        sweepSeconds(machine, run.revoker.sweep, dram_bytes,
                     run.revoker.epochs, config.scale);
    result.sweepOverhead = sweep_secs / vt;

    result.normalizedTime = 1.0 + result.quarantinePenalty -
                            result.batchingGain +
                            result.shadowOverhead +
                            result.sweepOverhead;

    // --- Figure 5b ---
    // The paper normalises *total* process memory; the quarantine
    // and shadow map grow only the heap share of it. Model the
    // non-heap residency (code, stack, globals, page tables) as a
    // constant ~100 MiB at reference scale.
    constexpr double kNonHeapMiB = 100.0;
    const double heap_share =
        profile.liveHeapMiB / (profile.liveHeapMiB + kNonHeapMiB);
    const double live =
        std::max<double>(static_cast<double>(run.peakLiveBytes), 1);
    const double heap_growth =
        static_cast<double>(run.peakQuarantineBytes) / live +
        1.0 / 128.0;
    result.normalizedMemory = 1.0 + heap_share * heap_growth;

    // --- §6.1.3 prediction on measured inputs ---
    result.achievedScanRate = achievedSweepBandwidth(
        machine, run.revoker.sweep, run.revoker.epochs, config.scale);
    if (result.achievedScanRate > 0 && run.revoker.epochs > 0) {
        // §6.1.3: sweep frequency = FreeRate / (Q * heap); work per
        // sweep = density * heap / ScanRate, so heap cancels.
        revoke::OverheadParams params;
        params.freeRateBytesPerSec =
            run.measuredFreeRateMiBps * MiB / config.scale;
        params.pointerDensity = run.pageDensity;
        params.scanRateBytesPerSec = result.achievedScanRate;
        params.quarantineFraction = config.quarantineFraction;
        result.predictedSweepOverhead =
            revoke::predictedRuntimeOverhead(params);
    }

    // --- Figure 10 ---
    const double sweep_dram_per_sec =
        static_cast<double>(approxSweepDramBytes(run.revoker.sweep)) /
        config.scale / vt;
    result.trafficOverheadPct =
        100.0 * sweep_dram_per_sec / (profile.appDramMiBps * MiB);

    return result;
}

} // namespace sim
} // namespace cherivoke

/**
 * @file
 * Machine profiles for the two evaluation systems of table 1, and the
 * timing model that turns sweep statistics into seconds.
 *
 * | system | core | LLC | DRAM |
 * |--------|------|-----|------|
 * | x86-64 | i7-7820HK, 2.9 GHz, OoO, AVX2 | 8 MiB | DDR4-2400, 19,405 MiB/s measured read |
 * | CHERI  | Stratix IV FPGA, 100 MHz, in-order | 256 KiB | DDR2, ~800 MiB/s |
 *
 * Sweep time = max(compute, DRAM stream) + per-sweep startup; the
 * max() captures the compute-bound-vs-bandwidth-bound crossover that
 * figure 7 explores, and the startup term reproduces the §6.2
 * observation that small, infrequent sweeps (mcf, milc) do not reach
 * full throughput.
 */

#ifndef CHERIVOKE_SIM_MACHINE_HH
#define CHERIVOKE_SIM_MACHINE_HH

#include <string>

#include "alloc/shadow_map.hh"
#include "cache/hierarchy.hh"
#include "revoke/sweep_loop.hh"
#include "revoke/sweeper.hh"

namespace cherivoke {
namespace sim {

/** One evaluation machine. */
struct MachineProfile
{
    std::string name;
    double cpuHz = 2.9e9;
    /** In-order scalar cores burn more cycles per kernel step. */
    double kernelCostScale = 1.0;
    double dramReadBytesPerSec = 19405.0 * 1024 * 1024;
    double dramWriteBytesPerSec = 0.6 * 19405.0 * 1024 * 1024;
    /** Per-sweep fixed cost: setup, DRAM ramp, TLB warmup. */
    double sweepStartupSeconds = 30e-6;

    cache::HierarchyConfig hierarchyConfig() const;

    /** The x86-64 system of table 1. */
    static const MachineProfile &x86();
    /** The CHERI FPGA system of table 1. */
    static const MachineProfile &cheriFpga();
};

/**
 * Seconds a sweep spends given its statistics.
 * @param stats aggregated sweep statistics (cycles + lines)
 * @param dram_bytes total DRAM traffic of the sweeps; pass 0 to use
 *        the built-in approximation (swept lines + shadow traffic)
 * @param epochs number of sweeps the stats aggregate (for startup)
 * @param scale workload scale factor: simulated bytes/cycles
 *        represent 1/scale real ones (rate terms divide by scale,
 *        the per-epoch startup term does not)
 */
double sweepSeconds(const MachineProfile &machine,
                    const revoke::SweepStats &stats,
                    uint64_t dram_bytes, uint64_t epochs,
                    double scale);

/** Seconds spent painting/unpainting the shadow map. */
double paintSeconds(const MachineProfile &machine,
                    const alloc::PaintStats &paint, double scale);

/**
 * The achieved sweep bandwidth (figure 7): real bytes swept per
 * second of sweep time.
 */
double achievedSweepBandwidth(const MachineProfile &machine,
                              const revoke::SweepStats &stats,
                              uint64_t epochs, double scale);

} // namespace sim
} // namespace cherivoke

#endif // CHERIVOKE_SIM_MACHINE_HH

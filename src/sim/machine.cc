#include "sim/machine.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cherivoke {
namespace sim {

cache::HierarchyConfig
MachineProfile::hierarchyConfig() const
{
    cache::HierarchyConfig cfg;
    if (name == "cheri-fpga") {
        cfg.l1 = cache::CacheGeometry{"l1d", 16 * KiB, 4, kLineBytes};
        cfg.l2 =
            cache::CacheGeometry{"l2", 256 * KiB, 4, kLineBytes};
        cfg.llc.reset(); // no L3 on the FPGA system
        cfg.tagCache =
            cache::CacheGeometry{"tagcache", 32 * KiB, 4, kLineBytes};
    }
    cfg.dram.readBandwidth = dramReadBytesPerSec;
    cfg.dram.writeBandwidth = dramWriteBytesPerSec;
    return cfg;
}

const MachineProfile &
MachineProfile::x86()
{
    static const MachineProfile profile = [] {
        MachineProfile p;
        p.name = "x86-64";
        p.cpuHz = 2.9e9;
        p.kernelCostScale = 1.0;
        p.dramReadBytesPerSec = 19405.0 * 1024 * 1024;
        p.dramWriteBytesPerSec = 0.6 * p.dramReadBytesPerSec;
        p.sweepStartupSeconds = 30e-6;
        return p;
    }();
    return profile;
}

const MachineProfile &
MachineProfile::cheriFpga()
{
    static const MachineProfile profile = [] {
        MachineProfile p;
        p.name = "cheri-fpga";
        p.cpuHz = 100e6;
        // 6-stage in-order scalar: several times the per-step cost
        // of the wide OoO x86 core.
        p.kernelCostScale = 4.0;
        p.dramReadBytesPerSec = 800.0 * 1024 * 1024; // DDR2
        p.dramWriteBytesPerSec = 600.0 * 1024 * 1024;
        p.sweepStartupSeconds = 10e-6;
        return p;
    }();
    return profile;
}

namespace {

uint64_t
approximateDramBytes(const revoke::SweepStats &stats)
{
    // Swept lines + shadow-map traffic (1/128 of swept bytes) +
    // write-back of revoked lines.
    const uint64_t swept = stats.bytesSwept();
    return swept + swept / 128 +
           stats.capsRevoked / kCapsPerLine * kLineBytes;
}

} // namespace

double
sweepSeconds(const MachineProfile &machine,
             const revoke::SweepStats &stats, uint64_t dram_bytes,
             uint64_t epochs, double scale)
{
    CHERIVOKE_ASSERT(scale > 0);
    if (dram_bytes == 0)
        dram_bytes = approximateDramBytes(stats);
    const double compute =
        stats.kernelCycles * machine.kernelCostScale / machine.cpuHz;
    const double stream = static_cast<double>(dram_bytes) /
                          machine.dramReadBytesPerSec;
    return std::max(compute, stream) / scale +
           static_cast<double>(epochs) * machine.sweepStartupSeconds;
}

double
paintSeconds(const MachineProfile &machine,
             const alloc::PaintStats &paint, double scale)
{
    CHERIVOKE_ASSERT(scale > 0);
    // Read-modify-write partial bytes are ~3x a plain store.
    const double cycles = 10.0 * static_cast<double>(paint.bitOps) +
                          4.0 * static_cast<double>(paint.byteOps +
                                                    paint.wordOps +
                                                    paint.dwordOps);
    return cycles * machine.kernelCostScale / machine.cpuHz / scale;
}

double
achievedSweepBandwidth(const MachineProfile &machine,
                       const revoke::SweepStats &stats,
                       uint64_t epochs, double scale)
{
    const double seconds = sweepSeconds(machine, stats, 0, epochs,
                                        scale);
    if (seconds <= 0)
        return 0;
    const double real_bytes =
        static_cast<double>(stats.bytesSwept()) / scale;
    return real_bytes / seconds;
}

} // namespace sim
} // namespace cherivoke

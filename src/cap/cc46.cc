#include "cap/cc46.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace cap {

namespace {

/** Shift that tolerates counts >= 64 (yields 0). */
constexpr u128
shl128(u128 value, unsigned count)
{
    return count >= 128 ? u128{0} : (value << count);
}

constexpr uint64_t
shr64(uint64_t value, unsigned count)
{
    return count >= 64 ? 0 : (value >> count);
}

/** Decoded field view shared by decode paths. */
struct Fields
{
    unsigned eff_exp;   //!< effective exponent Ee
    unsigned eff_mw;    //!< effective mantissa width MWe
    uint64_t bm;        //!< bottom mantissa
    uint64_t tm;        //!< top mantissa
};

Fields
extractFields(const Encoding &enc)
{
    Fields f;
    if (!enc.internalExponent()) {
        f.eff_exp = 0;
        f.eff_mw = kMantissaWidth;
        f.bm = enc.rawB();
        f.tm = enc.rawT();
    } else {
        const unsigned e = static_cast<unsigned>(
            ((enc.rawB() & 0x7) << 3) | (enc.rawT() & 0x7));
        f.eff_exp = e + 3;
        f.eff_mw = kInternalMantissaWidth;
        f.bm = enc.rawB() >> 3;
        f.tm = enc.rawT() >> 3;
    }
    return f;
}

/** Largest span (in granules of 2^Ee) for a given mantissa width.
 *  Strict: a span equal to 2^mw - 2^(mw-3) would place the top
 *  mantissa on the representable boundary R. */
constexpr uint64_t
maxSpan(unsigned mw)
{
    return (uint64_t{1} << mw) - (uint64_t{1} << (mw - 3)) - 1;
}

} // namespace

Bounds
decode(const Encoding &enc, uint64_t address)
{
    const Fields f = extractFields(enc);
    const uint64_t mw_mask = maskLow(f.eff_mw);

    const uint64_t amid = shr64(address, f.eff_exp) & mw_mask;
    const unsigned window_shift = f.eff_exp + f.eff_mw;
    const uint64_t atop = shr64(address, window_shift);

    // Start of the representable space: one eighth of the window
    // below the bottom mantissa (the CHERI Concentrate buffer).
    const uint64_t r = (f.bm - (uint64_t{1} << (f.eff_mw - 3))) & mw_mask;

    const int a_hi = amid < r ? 1 : 0;
    const int b_hi = f.bm < r ? 1 : 0;
    const int t_hi = f.tm < r ? 1 : 0;
    const int cb = b_hi - a_hi;
    const int ct = t_hi - a_hi;

    using i128 = __int128;
    const i128 window = static_cast<i128>(atop);

    i128 base128 = shl128(static_cast<u128>(window + cb), window_shift) +
                   shl128(f.bm, f.eff_exp);
    i128 top128 = shl128(static_cast<u128>(window + ct), window_shift) +
                  shl128(f.tm, f.eff_exp);

    Bounds b;
    b.base = static_cast<uint64_t>(base128);
    // Top lives in [0, 2^64]; mask to 65 bits to drop borrow artifacts.
    b.top = static_cast<u128>(top128) & ((u128{1} << 65) - 1);
    return b;
}

EncodeResult
encode(uint64_t base, u128 top)
{
    CHERIVOKE_ASSERT(top >= base, "(encode: top below base)");
    CHERIVOKE_ASSERT(top <= (u128{1} << 64), "(encode: top beyond 2^64)");
    const u128 length = top - base;

    EncodeResult res;
    if (length <= kMaxSmallLength) {
        // IE = 0: byte-exact for any alignment.
        const uint64_t b_field = base & maskLow(kMantissaWidth);
        const uint64_t t_field =
            static_cast<uint64_t>(top) & maskLow(kMantissaWidth);
        res.enc.bits = (b_field << 23) | (t_field << 1);
        res.exact = true;
        res.actual = Bounds{base, top};
        return res;
    }

    // IE = 1: find the smallest exponent whose granule count fits the
    // 19-bit mantissa while preserving the representable buffer.
    const uint64_t span_limit = maxSpan(kInternalMantissaWidth);
    for (unsigned e = 0; e <= kMaxExponent; ++e) {
        const unsigned shift = e + 3;
        const u128 align = u128{1} << shift;
        const uint64_t b_gran = shr64(base, shift);
        const u128 t_ceil = (top + align - 1) >> shift;
        const uint64_t t_gran = static_cast<uint64_t>(t_ceil);
        if (static_cast<u128>(t_gran) - b_gran > span_limit)
            continue;

        const uint64_t bm = b_gran & maskLow(kInternalMantissaWidth);
        const uint64_t tm = t_gran & maskLow(kInternalMantissaWidth);
        const uint64_t raw_b = (bm << 3) | ((e >> 3) & 0x7);
        const uint64_t raw_t = (tm << 3) | (e & 0x7);
        res.enc.bits = (uint64_t{1} << 45) | (raw_b << 23) | (raw_t << 1);
        res.actual.base = static_cast<uint64_t>(u128{b_gran} << shift);
        res.actual.top = u128{t_gran} << shift;
        res.exact = (res.actual.base == base) && (res.actual.top == top);
        return res;
    }
    panic("cc46::encode: no exponent fits length");
}

bool
representable(const Encoding &enc, uint64_t old_address,
              uint64_t new_address)
{
    // Exact semantic check: the encoding must decode to identical
    // bounds from both addresses. Hardware uses a fast conservative
    // in-window test; the semantic check is its specification.
    return decode(enc, old_address) == decode(enc, new_address);
}

uint64_t
representableAlignmentMask(uint64_t length)
{
    if (length <= kMaxSmallLength)
        return ~uint64_t{0};
    // Conservative: after rounding base down and top up the span can
    // grow by up to 2 granules, so demand 2 granules of slack.
    const uint64_t span_limit = maxSpan(kInternalMantissaWidth) - 2;
    for (unsigned e = 0; e <= kMaxExponent; ++e) {
        const unsigned shift = e + 3;
        const uint64_t granules =
            static_cast<uint64_t>((u128{length} + (u128{1} << shift) - 1)
                                  >> shift);
        if (granules <= span_limit)
            return ~((uint64_t{1} << shift) - 1);
    }
    panic("cc46::representableAlignmentMask: length too large");
}

uint64_t
roundRepresentableLength(uint64_t length)
{
    const uint64_t mask = representableAlignmentMask(length);
    const uint64_t align = ~mask + 1;
    if (align == 0)
        return length; // byte-aligned is fine
    return alignUp(length, align);
}

} // namespace cap
} // namespace cherivoke

/**
 * @file
 * Capability fault types. In hardware these would be CPU exceptions
 * delivered on a violating instruction; in this software CHERI machine
 * they are C++ exceptions thrown by the capability and memory layers.
 */

#ifndef CHERIVOKE_CAP_CAP_FAULT_HH
#define CHERIVOKE_CAP_CAP_FAULT_HH

#include <stdexcept>
#include <string>

namespace cherivoke {
namespace cap {

/** The architectural cause of a capability fault. */
enum class FaultKind
{
    Tag,             //!< dereference through an untagged capability
    Bounds,          //!< access outside [base, top)
    Permission,      //!< access lacking the required permission bit
    Monotonicity,    //!< attempted rights amplification (CSetBounds up)
    Representability,//!< requested bounds not exactly representable
    Alignment,       //!< misaligned capability-width memory access
    CapStoreInhibit, //!< capability store to a page that forbids them
};

/** Printable name for a fault kind. */
const char *faultKindName(FaultKind kind);

/** Thrown when a capability operation or access violates the model. */
class CapFault : public std::runtime_error
{
  public:
    CapFault(FaultKind kind, const std::string &what)
        : std::runtime_error(std::string(faultKindName(kind)) + ": " +
                             what),
          kind_(kind)
    {}

    FaultKind kind() const { return kind_; }

  private:
    FaultKind kind_;
};

} // namespace cap
} // namespace cherivoke

#endif // CHERIVOKE_CAP_CAP_FAULT_HH

/**
 * @file
 * CC-46: a CHERI-Concentrate-style compressed-bounds codec.
 *
 * CHERI-128 capabilities (paper figure 2) pack bounds into a 46-bit
 * field next to a full 64-bit address. This codec follows the CHERI
 * Concentrate scheme (Woodruff et al., IEEE ToC 2019): bounds are
 * stored as exponent-scaled mantissas positioned relative to the
 * address, with a representable region that lets the address wander
 * out of bounds without losing the ability to reconstruct base/top.
 *
 * Field layout (46 bits):
 *
 *     [45]    IE  — internal exponent flag
 *     [44:23] B   — bottom mantissa (22 bits)
 *     [22:1]  T   — top mantissa (22 bits)
 *     [0]     spare
 *
 * IE = 0: exponent 0; B and T are the low 22 bits of base and top.
 *         Any bounds with length <= 2^22 - 2^19 encode exactly at
 *         byte granularity.
 * IE = 1: the low 3 bits of B and T hold a 6-bit exponent E and are
 *         implicitly zero in the mantissas, so the effective mantissa
 *         is 19 bits at an alignment of 2^(E+3). Base and top must be
 *         2^(E+3)-aligned to encode exactly; otherwise encoding rounds
 *         outward (CRepresentableAlignmentMask tells allocators how to
 *         pad, which dlmalloc_cherivoke uses).
 *
 * The parameters differ from shipping CHERI-128 (which stores a 14-bit
 * B, a 12-bit T with derived top bits), but the mechanics the paper
 * relies on are identical: monotone non-expansible bounds, exact
 * encoding for small objects, alignment demands for huge ones, and a
 * base that always stays within the original allocation (§3.2 fn 2).
 */

#ifndef CHERIVOKE_CAP_CC46_HH
#define CHERIVOKE_CAP_CC46_HH

#include <cstdint>

namespace cherivoke {
namespace cap {

/** 128-bit unsigned for tops that can reach 2^64. */
using u128 = unsigned __int128;

/** Decoded bounds: [base, top), top may equal 2^64. */
struct Bounds
{
    uint64_t base = 0;
    u128 top = 0;

    u128 length() const { return top - base; }
    bool operator==(const Bounds &o) const = default;
};

/** Codec parameters. */
constexpr unsigned kMantissaWidth = 22;       //!< MW for IE=0
constexpr unsigned kInternalMantissaWidth = 19; //!< MW-3 for IE=1
constexpr unsigned kExponentBits = 6;
constexpr unsigned kMaxExponent = 46;         //!< enough for 2^64 span

/**
 * Largest length encodable with IE=0 (exact at byte alignment).
 * Strictly less than 2^MW - 2^(MW-3): at equality the top mantissa
 * would land exactly on the representable-region boundary R and the
 * decode would wrap.
 */
constexpr uint64_t kMaxSmallLength =
    (uint64_t{1} << kMantissaWidth) -
    (uint64_t{1} << (kMantissaWidth - 3)) - 1;

/** The packed 46-bit bounds field. */
struct Encoding
{
    uint64_t bits = 0; //!< low 46 bits valid

    bool internalExponent() const { return (bits >> 45) & 1; }
    uint64_t rawB() const { return (bits >> 23) & 0x3fffff; }
    uint64_t rawT() const { return (bits >> 1) & 0x3fffff; }

    bool operator==(const Encoding &o) const = default;
};

/** Result of an encode attempt. */
struct EncodeResult
{
    Encoding enc;
    bool exact = false;   //!< requested bounds encoded without rounding
    Bounds actual;        //!< the bounds the encoding decodes to
};

/**
 * Encode the requested bounds. Rounds base down / top up to the
 * representable alignment when the request is not exactly encodable.
 * @param base requested base
 * @param top requested top (exclusive; may be 2^64)
 */
EncodeResult encode(uint64_t base, u128 top);

/**
 * Decode bounds relative to @p address.
 * @param enc the packed bounds field
 * @param address the capability's current address
 */
Bounds decode(const Encoding &enc, uint64_t address);

/**
 * True if changing the address of a capability holding @p enc from
 * @p old_address to @p new_address still decodes to the same bounds
 * (the CHERI "representability" check for pointer arithmetic).
 */
bool representable(const Encoding &enc, uint64_t old_address,
                   uint64_t new_address);

/**
 * Alignment mask a base must satisfy for a region of @p length bytes
 * to be exactly representable (CRepresentableAlignmentMask).
 * All-ones (i.e.\ ~0) means byte-aligned is fine.
 */
uint64_t representableAlignmentMask(uint64_t length);

/**
 * Round @p length up so a suitably aligned region of the result is
 * exactly representable (CRoundRepresentableLength).
 */
uint64_t roundRepresentableLength(uint64_t length);

} // namespace cap
} // namespace cherivoke

#endif // CHERIVOKE_CAP_CC46_HH

#include "cap/capability.hh"

#include <cinttypes>
#include <cstdio>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace cap {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Tag: return "tag fault";
      case FaultKind::Bounds: return "bounds fault";
      case FaultKind::Permission: return "permission fault";
      case FaultKind::Monotonicity: return "monotonicity fault";
      case FaultKind::Representability: return "representability fault";
      case FaultKind::Alignment: return "alignment fault";
      case FaultKind::CapStoreInhibit: return "capability-store fault";
    }
    return "unknown fault";
}

Capability
Capability::root()
{
    const EncodeResult enc = encode(0, u128{1} << 64);
    CHERIVOKE_ASSERT(enc.exact, "(root bounds must be exact)");
    return Capability(0, enc.enc, kPermsAll, true);
}

uint64_t
Capability::base() const
{
    return decode(bounds_, address_).base;
}

u128
Capability::top() const
{
    return decode(bounds_, address_).top;
}

u128
Capability::length() const
{
    const Bounds b = decode(bounds_, address_);
    return b.top - b.base;
}

Bounds
Capability::bounds() const
{
    return decode(bounds_, address_);
}

bool
Capability::inBounds(uint64_t addr, uint64_t size) const
{
    const Bounds b = decode(bounds_, address_);
    return addr >= b.base && u128{addr} + size <= b.top;
}

Capability
Capability::setAddress(uint64_t new_address) const
{
    Capability result = *this;
    if (tag_ && !representable(bounds_, address_, new_address)) {
        // Unrepresentable move: tag is stripped, the word degrades to
        // plain data (never to wider bounds).
        result.tag_ = false;
    }
    result.address_ = new_address;
    return result;
}

Capability
Capability::incAddress(int64_t delta) const
{
    return setAddress(address_ + static_cast<uint64_t>(delta));
}

Capability
Capability::setBounds(uint64_t new_length) const
{
    if (!tag_)
        throw CapFault(FaultKind::Tag, "CSetBounds on untagged value");
    const Bounds cur = decode(bounds_, address_);
    const uint64_t req_base = address_;
    const u128 req_top = u128{req_base} + new_length;
    if (req_base < cur.base || req_top > cur.top) {
        throw CapFault(FaultKind::Monotonicity,
                       "CSetBounds request exceeds current bounds");
    }
    const EncodeResult enc = encode(req_base, req_top);
    if (enc.actual.base < cur.base || enc.actual.top > cur.top) {
        // Rounding would escape the authorising capability.
        throw CapFault(FaultKind::Monotonicity,
                       "rounded bounds exceed current bounds; pad the "
                       "allocation per representableAlignmentMask()");
    }
    return Capability(req_base, enc.enc, perms_, true, color_);
}

Capability
Capability::setBoundsExact(uint64_t new_length) const
{
    if (!tag_)
        throw CapFault(FaultKind::Tag, "CSetBoundsExact on untagged");
    const Bounds cur = decode(bounds_, address_);
    const uint64_t req_base = address_;
    const u128 req_top = u128{req_base} + new_length;
    if (req_base < cur.base || req_top > cur.top) {
        throw CapFault(FaultKind::Monotonicity,
                       "CSetBoundsExact request exceeds current bounds");
    }
    const EncodeResult enc = encode(req_base, req_top);
    if (!enc.exact) {
        throw CapFault(FaultKind::Representability,
                       "bounds not exactly representable");
    }
    return Capability(req_base, enc.enc, perms_, true, color_);
}

Capability
Capability::andPerms(uint16_t mask) const
{
    Capability result = *this;
    result.perms_ = perms_ & mask;
    return result;
}

Capability
Capability::withTagCleared() const
{
    Capability result = *this;
    result.tag_ = false;
    return result;
}

Capability
Capability::withColor(uint8_t color) const
{
    Capability result = *this;
    result.color_ = color & (cap::kMaxColors - 1);
    return result;
}

uint64_t
Capability::packHigh() const
{
    // Color rides in the 6 bits the 12 assigned permissions leave
    // free: color[2:0] at [48:46], color[5:3] at [63:61]. A color of
    // 0 reproduces the pre-color bit pattern exactly.
    return (static_cast<uint64_t>(color_ & 0x38) << 58) |
           (static_cast<uint64_t>(perms_ & kPermsAll) << 49) |
           (static_cast<uint64_t>(color_ & 0x07) << 46) |
           (bounds_.bits & maskLow(46));
}

Capability
Capability::unpack(uint64_t lo, uint64_t hi, bool tag)
{
    Encoding enc;
    enc.bits = hi & maskLow(46);
    const uint16_t perms = static_cast<uint16_t>((hi >> 49) & kPermsAll);
    const uint8_t color = static_cast<uint8_t>(
        ((hi >> 46) & 0x7) | (((hi >> 61) & 0x7) << 3));
    return Capability(lo, enc, perms, tag, color);
}

uint64_t
Capability::decodeBase(uint64_t lo, uint64_t hi)
{
    Encoding enc;
    enc.bits = hi & maskLow(46);
    return decode(enc, lo).base;
}

std::string
Capability::toString() const
{
    const Bounds b = decode(bounds_, address_);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "0x%" PRIx64 " [0x%" PRIx64 ",0x%llx) perms=0x%x tag=%d",
                  address_, b.base,
                  static_cast<unsigned long long>(b.top),
                  perms_, tag_ ? 1 : 0);
    return buf;
}

} // namespace cap
} // namespace cherivoke

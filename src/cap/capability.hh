/**
 * @file
 * The CHERI-128 capability model (paper §2.2, figure 2).
 *
 * A capability is a 128-bit word — 64-bit address plus 64 bits of
 * protected metadata (15 permission bits and 46 bits of compressed
 * bounds) — plus an out-of-band 1-bit validity tag held by tagged
 * memory or a register. All mutating operations are monotonic: no
 * operation can widen bounds, add permissions, or conjure a tag.
 */

#ifndef CHERIVOKE_CAP_CAPABILITY_HH
#define CHERIVOKE_CAP_CAPABILITY_HH

#include <cstdint>
#include <string>

#include "cap/cap_fault.hh"
#include "cap/cc46.hh"

namespace cherivoke {
namespace cap {

/** Permission bits (15 available; CHERI-128 assignments). */
enum Perm : uint16_t
{
    PermGlobal        = 1u << 0,
    PermExecute       = 1u << 1,
    PermLoad          = 1u << 2,
    PermStore         = 1u << 3,
    PermLoadCap       = 1u << 4,
    PermStoreCap      = 1u << 5,
    PermStoreLocalCap = 1u << 6,
    PermSeal          = 1u << 7,
    PermInvoke        = 1u << 8,
    PermUnseal        = 1u << 9,
    PermAccessSysRegs = 1u << 10,
    PermSetCid        = 1u << 11,
};

/** All architecturally defined permissions. */
constexpr uint16_t kPermsAll = 0x0fff;

/**
 * Allocation-color field width (PICASSO-style colored capabilities).
 * Only 12 of the 15 architectural permission bits are assigned, so
 * the packed high word has 6 spare bits — [48:46] between bounds and
 * perms plus [63:61] above them — which hold a per-allocation color.
 * Color 0 ("uncolored") packs to the exact pre-color bit pattern, so
 * heaps that never color capabilities are bit-identical to before.
 */
constexpr unsigned kColorBits = 6;
/** Number of distinct capability colors (color 0 = uncolored). */
constexpr unsigned kMaxColors = 1u << kColorBits;

/** The permissions a data allocator grants on returned objects. */
constexpr uint16_t kPermsData =
    PermGlobal | PermLoad | PermStore | PermLoadCap | PermStoreCap |
    PermStoreLocalCap;

/**
 * A CHERI-128 capability value.
 *
 * Copyable value type. The tag travels with the value here; the
 * memory subsystem is responsible for clearing it on non-capability
 * overwrites (mem::TaggedMemory) and the revoker for clearing it on
 * revocation sweeps.
 */
class Capability
{
  public:
    /** The untagged null capability (all-zero memory pattern). */
    Capability() = default;

    /**
     * The omnipotent root capability: [0, 2^64), all permissions,
     * tagged. Every valid capability in a run derives from this
     * (capability provenance, §2.2 footnote 1).
     */
    static Capability root();

    /** @name Observers */
    /// @{
    bool tag() const { return tag_; }
    uint64_t address() const { return address_; }
    uint16_t perms() const { return perms_; }
    bool hasPerm(uint16_t p) const { return (perms_ & p) == p; }
    /** Allocation color (0 = uncolored). */
    uint8_t color() const { return color_; }

    /** Lower bound (inclusive). Always within the original allocation. */
    uint64_t base() const;
    /** Upper bound (exclusive); may be 2^64. */
    u128 top() const;
    /** top() - base(). */
    u128 length() const;
    /** Decoded [base, top). */
    Bounds bounds() const;

    /** True if [addr, addr+size) lies within bounds. */
    bool inBounds(uint64_t addr, uint64_t size) const;
    /** address() - base(); the C-level pointer offset. */
    uint64_t offset() const { return address_ - base(); }
    /// @}

    /** @name Monotonic derivations (capability instructions) */
    /// @{

    /**
     * CSetAddr: same bounds/perms, new address. If the new address
     * leaves the representable region the result's tag is cleared
     * (the CHERI fast-representability semantics) — it never widens.
     */
    Capability setAddress(uint64_t new_address) const;

    /** CIncOffset: setAddress(address() + delta). */
    Capability incAddress(int64_t delta) const;

    /**
     * CSetBounds: narrow bounds to [address(), address() + length).
     * @throws CapFault{Tag} if untagged,
     *         CapFault{Monotonicity} if the request exceeds current
     *         bounds. The result may be rounded outward to the
     *         representable alignment but never beyond current bounds
     *         (monotonicity is re-checked on the rounded result).
     */
    Capability setBounds(uint64_t new_length) const;

    /** CSetBoundsExact: as setBounds but faults if rounding occurs. */
    Capability setBoundsExact(uint64_t new_length) const;

    /** CAndPerm: intersect permissions. */
    Capability andPerms(uint16_t mask) const;

    /** Copy with the tag cleared (what a revocation sweep does). */
    Capability withTagCleared() const;

    /**
     * Copy with the allocation color replaced. Colors are allocator
     * metadata, not authority, so this is not monotonic — but only
     * the allocator mints colored capabilities, and derivations
     * (setAddress/setBounds/andPerms) preserve the color.
     */
    Capability withColor(uint8_t color) const;

    /** In-place tag clear. */
    void clearTag() { tag_ = false; }
    /// @}

    /** @name Memory representation (16-byte word + out-of-band tag) */
    /// @{

    /** Low 64 bits: the address word. */
    uint64_t packLow() const { return address_; }

    /** High 64 bits: color [63:61]+[48:46], perms [60:49], and
     *  compressed bounds [45:0]. */
    uint64_t packHigh() const;

    /** Rebuild from a 16-byte memory word and its tag bit. */
    static Capability unpack(uint64_t lo, uint64_t hi, bool tag);

    /**
     * Fast path used by the revocation sweep: decode only the base of
     * a packed capability word (the shadow-map lookup key, §3.2).
     */
    static uint64_t decodeBase(uint64_t lo, uint64_t hi);
    /// @}

    bool operator==(const Capability &o) const = default;

    /** Debug rendering: "0x1000 [0x1000,0x2000) perms=0x..f tag=1". */
    std::string toString() const;

  private:
    Capability(uint64_t address, Encoding enc, uint16_t perms, bool tag,
               uint8_t color = 0)
        : address_(address), bounds_(enc), perms_(perms), color_(color),
          tag_(tag)
    {}

    uint64_t address_ = 0;
    Encoding bounds_{};
    uint16_t perms_ = 0;
    uint8_t color_ = 0;
    bool tag_ = false;
};

} // namespace cap
} // namespace cherivoke

#endif // CHERIVOKE_CAP_CAPABILITY_HH

#include "revoke/incremental.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cherivoke {
namespace revoke {

IncrementalRevoker::~IncrementalRevoker()
{
    // Never leave a dangling barrier behind.
    if (open_)
        space_->memory().removeLoadBarrier();
}

void
IncrementalRevoker::beginEpoch()
{
    CHERIVOKE_ASSERT(!open_, "(epoch already open)");
    open_ = true;
    epoch_ = EpochStats{};
    epoch_.bytesReleased = allocator_->quarantinedBytes();

    // Freeze + paint this epoch's revocation set.
    epoch_.paint = allocator_->prepareSweep();

    // The barrier: loads of painted-base capabilities are stripped.
    // The shadow map is read-only for the duration of the epoch
    // (later frees wait for the next epoch), so the predicate is
    // stable.
    const alloc::ShadowMap &shadow = allocator_->shadowMap();
    space_->memory().installLoadBarrier(
        [&shadow](uint64_t base) { return shadow.isRevoked(base); });

    // Registers first: the mutator continues running out of them.
    epoch_.sweep += sweeper_.sweepRegisters(*space_, shadow);

    worklist_ = sweeper_.buildWorklist(*space_, epoch_.sweep);
    next_ = 0;
}

size_t
IncrementalRevoker::step(size_t max_pages,
                         cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(open_, "(step without an open epoch)");
    if (next_ < worklist_.size() && max_pages > 0) {
        const size_t end =
            std::min(worklist_.size(), next_ + max_pages);
        const std::vector<uint64_t> slice(
            worklist_.begin() + static_cast<long>(next_),
            worklist_.begin() + static_cast<long>(end));
        next_ = end;
        epoch_.sweep += sweeper_.sweepPageList(
            *space_, allocator_->shadowMap(), slice, hierarchy);
    }
    return worklist_.size() - next_;
}

void
IncrementalRevoker::finishEpoch()
{
    CHERIVOKE_ASSERT(open_, "(finish without an open epoch)");
    CHERIVOKE_ASSERT(next_ == worklist_.size(),
                     "(worklist not drained: call step() to "
                     "completion first)");
    // Belt and braces: the registers once more (they were swept at
    // begin and the barrier kept them clean, but it is cheap).
    epoch_.sweep +=
        sweeper_.sweepRegisters(*space_, allocator_->shadowMap());

    space_->memory().removeLoadBarrier();
    epoch_.internalFrees = allocator_->finishSweep();
    open_ = false;
    worklist_.clear();
    next_ = 0;

    ++totals_.epochs;
    totals_.paint += epoch_.paint;
    totals_.sweep += epoch_.sweep;
    totals_.internalFrees += epoch_.internalFrees;
    totals_.bytesReleased += epoch_.bytesReleased;
}

EpochStats
IncrementalRevoker::revokeIncrementally(size_t pages_per_step)
{
    CHERIVOKE_ASSERT(pages_per_step > 0);
    beginEpoch();
    while (step(pages_per_step) > 0) {
    }
    finishEpoch();
    return epoch_;
}

} // namespace revoke
} // namespace cherivoke

#include "revoke/sweep_loop.hh"

#include "support/logging.hh"
#include "support/units.hh"

namespace cherivoke {
namespace revoke {

const char *
sweepKernelName(SweepKernel kernel)
{
    switch (kernel) {
      case SweepKernel::Naive: return "simple-loop";
      case SweepKernel::Unrolled: return "unrolled+pipelined";
      case SweepKernel::Vector: return "avx2";
    }
    return "unknown";
}

KernelCosts
defaultCosts(SweepKernel kernel)
{
    // Calibrated against the paper's figure 7: on a ~2.9 GHz core
    // with 19,405 MiB/s of DRAM read bandwidth, the naive loop
    // achieves ~28% of read bandwidth, the unrolled loop ~32%, and
    // the AVX2 loop ~39% (~8 GiB/s, roughly constant).
    // At 2.9 GHz: naive 34 cycles per pointer-free line = 5.4 GiB/s
    // (28% of 19,405 MiB/s); unrolled 30 cycles = 6.2 GiB/s (32%);
    // vector 24 cycles = 7.7 GiB/s (~39%, flat regardless of tags).
    KernelCosts costs;
    switch (kernel) {
      case SweepKernel::Naive:
        // Scalar §3.3 listing: two 8-byte loads per capability word,
        // compare + two data-dependent branches.
        costs.cyclesPerUntaggedWord = 8.0;
        costs.cyclesPerTaggedWord = 10.0;
        costs.mispredictPenalty = 16.0;
        costs.mispredictRate = 0.35;
        costs.cyclesPerLine = 2.0;
        break;
      case SweepKernel::Unrolled:
        // 4x unrolled, cmov instead of the first branch.
        costs.cyclesPerUntaggedWord = 7.0;
        costs.cyclesPerTaggedWord = 8.0;
        costs.mispredictPenalty = 16.0;
        costs.mispredictRate = 0.08;
        costs.cyclesPerLine = 2.0;
        break;
      case SweepKernel::Vector:
        // Whole line in ~28 instructions with an unconditional
        // store: cost is flat regardless of tag content.
        costs.cyclesPerUntaggedWord = 0.0;
        costs.cyclesPerTaggedWord = 0.0;
        costs.mispredictPenalty = 0.0;
        costs.mispredictRate = 0.0;
        costs.cyclesPerLine = 24.0;
        break;
    }
    return costs;
}

double
kernelCyclesForLine(const KernelCosts &costs, unsigned tagged_words)
{
    CHERIVOKE_ASSERT(tagged_words <= kCapsPerLine);
    const unsigned untagged =
        static_cast<unsigned>(kCapsPerLine) - tagged_words;
    double cycles = costs.cyclesPerLine;
    cycles += untagged * costs.cyclesPerUntaggedWord;
    cycles += tagged_words *
              (costs.cyclesPerTaggedWord +
               costs.mispredictPenalty * costs.mispredictRate);
    return cycles;
}

} // namespace revoke
} // namespace cherivoke

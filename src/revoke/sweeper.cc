#include "revoke/sweeper.hh"

#include <algorithm>
#include <cstring>
#include <thread>

#include "cap/capability.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace revoke {

namespace {

/** Modelled CLoadTags round trip (L1 -> L2 -> tag cache, §6.3). */
constexpr double kCloadTagsCycles = 10.0;

/** The leaf-tag-line region a root-level tag query covers (§3.4.1). */
constexpr uint64_t kTagRegionBytes = 8 * KiB;

} // namespace

SweepStats &
SweepStats::operator+=(const SweepStats &o)
{
    pagesConsidered += o.pagesConsidered;
    pagesSwept += o.pagesSwept;
    pagesSkippedPte += o.pagesSkippedPte;
    pagesSkippedTier += o.pagesSkippedTier;
    pagesCleaned += o.pagesCleaned;
    linesSwept += o.linesSwept;
    linesSkippedTags += o.linesSkippedTags;
    capsExamined += o.capsExamined;
    capsRevoked += o.capsRevoked;
    regsExamined += o.regsExamined;
    regsRevoked += o.regsRevoked;
    kernelCycles += o.kernelCycles;
    return *this;
}

bool
SweepStats::operator==(const SweepStats &o) const
{
    return pagesConsidered == o.pagesConsidered &&
           pagesSwept == o.pagesSwept &&
           pagesSkippedPte == o.pagesSkippedPte &&
           pagesSkippedTier == o.pagesSkippedTier &&
           pagesCleaned == o.pagesCleaned &&
           linesSwept == o.linesSwept &&
           linesSkippedTags == o.linesSkippedTags &&
           capsExamined == o.capsExamined &&
           capsRevoked == o.capsRevoked &&
           regsExamined == o.regsExamined &&
           regsRevoked == o.regsRevoked &&
           kernelCycles == o.kernelCycles;
}

std::vector<uint64_t>
Sweeper::buildWorklist(mem::AddressSpace &space,
                       SweepStats &stats) const
{
    // Assemble the work list of pages, applying PTE CapDirty
    // elimination (§3.4.2: "an array of pages that could contain
    // capabilities", the §5.3 system API).
    std::vector<uint64_t> pages;
    const std::vector<mem::Segment> segments =
        space.sweepableSegments();
    if (segments.empty())
        return pages;
    // Reserve from the segment sizes: one push_back per candidate
    // page, never a reallocation, even on large address spaces.
    size_t upper = 0;
    for (const mem::Segment &seg : segments)
        upper += (seg.size + kPageBytes - 1) >> kPageShift;
    pages.reserve(upper);
    auto &pt = space.memory().pageTable();
    for (const mem::Segment &seg : segments) {
        for (uint64_t p = seg.base; p < seg.end(); p += kPageBytes) {
            ++stats.pagesConsidered;
            if (options_.usePteCapDirty) {
                const mem::Pte *pte = pt.lookup(p);
                if (!pte || !pte->capDirty) {
                    ++stats.pagesSkippedPte;
                    continue;
                }
            }
            pages.push_back(p);
        }
    }
    return pages;
}

SweepStats
Sweeper::sweepRegisters(mem::AddressSpace &space,
                        const alloc::ShadowMap &shadow)
{
    SweepStats stats;
    space.registers().forEach([&](cap::Capability &reg) {
        if (!reg.tag())
            return;
        ++stats.regsExamined;
        if (shadow.isRevoked(reg.base())) {
            reg.clearTag();
            ++stats.regsRevoked;
        }
    });
    return stats;
}

SweepStats
Sweeper::sweep(mem::AddressSpace &space,
               const alloc::ShadowMap &shadow,
               cache::Hierarchy *hierarchy)
{
    SweepStats stats;
    const std::vector<uint64_t> pages = buildWorklist(space, stats);
    stats += sweepPages(space, shadow, pages, 0, pages.size(),
                        hierarchy);
    // Sweep the register file (§3.3: "the stack, register files...").
    stats += sweepRegisters(space, shadow);
    return stats;
}

SweepStats
Sweeper::sweepPages(mem::AddressSpace &space,
                    const alloc::ShadowMap &shadow,
                    const std::vector<uint64_t> &pages,
                    size_t lo, size_t hi,
                    cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(lo <= hi && hi <= pages.size());
    const size_t count = hi - lo;

    if (options_.threads <= 1 || count < 2) {
        if (hierarchy) {
            cache::HierarchySink sink(*hierarchy);
            return sweepPageRange(space, shadow, pages, lo, hi,
                                  &sink);
        }
        return sweepPageRange(space, shadow, pages, lo, hi, nullptr);
    }

    // Partition [lo, hi) into contiguous index ranges (§3.5). Snap
    // each boundary forward so the two pages of an 8 KiB
    // leaf-tag-line region are never split across workers: the
    // CLoadTags root query reads the region's page tag counts, and
    // co-locating a region keeps every such read deterministic
    // (either the worker's own sequential progress or a page no
    // worker mutates).
    const unsigned n = static_cast<unsigned>(
        std::min<size_t>(options_.threads, count));
    std::vector<size_t> bounds;
    bounds.push_back(lo);
    const size_t per = (count + n - 1) / n;
    for (unsigned t = 1; t < n; ++t) {
        size_t b = std::min(hi, lo + t * per);
        while (b > bounds.back() && b < hi &&
               alignDown(pages[b], kTagRegionBytes) ==
                   alignDown(pages[b - 1], kTagRegionBytes)) {
            ++b;
        }
        b = std::max(b, bounds.back());
        bounds.push_back(b);
    }
    bounds.push_back(hi);

    const size_t workers = bounds.size() - 1;
    std::vector<SweepStats> partial(workers);
    std::vector<cache::TrafficLog> logs(hierarchy ? workers : 0);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    std::vector<std::exception_ptr> errors(workers);
    for (size_t t = 0; t < workers; ++t) {
        cache::TrafficSink *sink = hierarchy ? &logs[t] : nullptr;
        const size_t wlo = bounds[t], whi = bounds[t + 1];
        pool.emplace_back([this, &space, &shadow, &pages, &partial,
                           &errors, sink, t, wlo, whi] {
            // The shadow map is read-only for the whole sweep, so
            // workers share it safely.
            try {
                partial[t] = sweepPageRange(space, shadow, pages,
                                            wlo, whi, sink);
            } catch (...) {
                errors[t] = std::current_exception();
            }
        });
    }
    for (auto &w : pool)
        w.join();
    // Surface a worker's fault as the catchable exception a serial
    // sweep would have thrown.
    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }

    // Merge in worklist order: statistics first, then the recorded
    // traffic, replayed into the hierarchy exactly as a serial sweep
    // would have issued it.
    SweepStats stats;
    for (const SweepStats &p : partial)
        stats += p;
    if (hierarchy) {
        cache::HierarchySink live(*hierarchy);
        for (const cache::TrafficLog &log : logs)
            log.replayInto(live);
    }
    return stats;
}

SweepStats
Sweeper::sweepPageRange(mem::AddressSpace &space,
                        const alloc::ShadowMap &shadow,
                        const std::vector<uint64_t> &pages,
                        size_t lo, size_t hi,
                        cache::TrafficSink *sink)
{
    CHERIVOKE_ASSERT(lo <= hi && hi <= pages.size());
    SweepStats stats;
    auto &memory = space.memory();
    auto &pt = memory.pageTable();
    const KernelCosts costs = defaultCosts(options_.kernel);
    const double zero_line_cycles = kernelCyclesForLine(costs, 0);

    // Each 64-bit word of Page::tags covers 64 granules: 16 lines,
    // a 1 KiB sub-run of the page.
    constexpr unsigned kLinesPerWord =
        64 / static_cast<unsigned>(kCapsPerLine);
    constexpr uint64_t kWordSpanBytes = kLinesPerWord * kLineBytes;
    constexpr uint8_t kLineMaskBits = maskLow(kCapsPerLine);

    for (size_t idx = lo; idx < hi; ++idx) {
        const uint64_t page_addr = pages[idx];
        ++stats.pagesSwept;
        mem::Page *page = memory.pageIfPresentMutable(page_addr);
        bool any_tag_found = false;

        // Root-level tag presence for the covering 8 KiB
        // leaf-tag-line region (§3.4.1): a 4 KiB page lies in
        // exactly one region, so resolve the region's two pages once
        // per page instead of twice per line. tagCount is still read
        // per query — mid-sweep revocations lower it and later lines
        // must observe that, exactly as the per-line lookup did.
        const uint64_t region = alignDown(page_addr, kTagRegionBytes);
        const mem::Page *r0 = memory.pageIfPresent(region);
        const mem::Page *r1 =
            memory.pageIfPresent(region + kPageBytes);
        const auto region_has_tags = [r0, r1] {
            return (r0 && r0->tagCount > 0) ||
                   (r1 && r1->tagCount > 0);
        };

        for (unsigned w = 0; w < kGranulesPerPage / 64; ++w) {
            // Snapshot the tag word: revocations only clear bits of
            // the line being processed, never of a later line, so
            // the snapshot observes exactly what the per-line probes
            // used to.
            const uint64_t word = page ? page->tags[w] : 0;
            const uint64_t sub = page_addr + w * kWordSpanBytes;

            if (word == 0) {
                // Tag-empty 1 KiB sub-run: account the 16 lines
                // without touching any per-line state. Nothing in
                // this block mutates tag counts, so the root query
                // answer is constant across the sub-run.
                if (options_.useCloadTags) {
                    stats.linesSkippedTags += kLinesPerWord;
                    for (unsigned l = 0; l < kLinesPerWord; ++l)
                        stats.kernelCycles += kCloadTagsCycles;
                    if (sink) {
                        const bool region_tags = region_has_tags();
                        for (unsigned l = 0; l < kLinesPerWord; ++l) {
                            sink->cloadTags(sub + l * kLineBytes,
                                            region_tags,
                                            options_.cloadTagsPrefetch,
                                            false);
                        }
                    }
                } else {
                    stats.linesSwept += kLinesPerWord;
                    for (unsigned l = 0; l < kLinesPerWord; ++l)
                        stats.kernelCycles += zero_line_cycles;
                    if (sink) {
                        for (unsigned l = 0; l < kLinesPerWord; ++l) {
                            sink->access(sub + l * kLineBytes,
                                         kLineBytes, false);
                        }
                    }
                }
                continue;
            }

            any_tag_found = true;
            for (unsigned l = 0; l < kLinesPerWord; ++l) {
                const uint64_t line = sub + l * kLineBytes;
                const uint8_t mask = static_cast<uint8_t>(
                    (word >> (l * kCapsPerLine)) & kLineMaskBits);

                if (options_.useCloadTags) {
                    stats.kernelCycles += kCloadTagsCycles;
                    if (sink) {
                        sink->cloadTags(line, region_has_tags(),
                                        options_.cloadTagsPrefetch,
                                        mask != 0);
                    }
                    if (mask == 0) {
                        ++stats.linesSkippedTags;
                        continue;
                    }
                }

                ++stats.linesSwept;
                stats.kernelCycles +=
                    kernelCyclesForLine(costs, popCount(mask));
                if (sink)
                    sink->access(line, kLineBytes, false);
                if (mask == 0)
                    continue;

                bool revoked_in_line = false;
                uint8_t pending = mask;
                while (pending) {
                    const unsigned i = static_cast<unsigned>(
                        std::countr_zero(pending));
                    pending &= static_cast<uint8_t>(pending - 1);
                    ++stats.capsExamined;
                    const uint64_t addr = line + i * kCapBytes;
                    uint64_t lo_word, hi_word;
                    const uint64_t off = addr & (kPageBytes - 1);
                    std::memcpy(&lo_word, page->data.data() + off, 8);
                    std::memcpy(&hi_word,
                                page->data.data() + off + 8, 8);
                    const uint64_t base =
                        cap::Capability::decodeBase(lo_word, hi_word);
                    if (sink) {
                        sink->access(mem::shadowAddrOf(base), 1,
                                     false);
                    }
                    if (shadow.isRevoked(base)) {
                        page->clearGranuleTag(static_cast<unsigned>(
                            off >> kGranuleShift));
                        ++stats.capsRevoked;
                        revoked_in_line = true;
                    }
                }
                if (revoked_in_line && sink) {
                    sink->access(line, kLineBytes, true);
                    sink->revocationTagWrite(line);
                }
            }
        }

        // §3.4.2: a CapDirty page found without capabilities can be
        // marked clean again.
        if (options_.usePteCapDirty &&
            options_.cleanFalsePositivePages && !any_tag_found) {
            if (pt.lookup(page_addr)) {
                pt.clearCapDirty(page_addr);
                ++stats.pagesCleaned;
            }
        }
    }
    return stats;
}

} // namespace revoke
} // namespace cherivoke

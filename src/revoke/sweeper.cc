#include "revoke/sweeper.hh"

#include <cstring>
#include <thread>

#include "cap/capability.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace revoke {

namespace {

/** Modelled CLoadTags round trip (L1 -> L2 -> tag cache, §6.3). */
constexpr double kCloadTagsCycles = 10.0;

} // namespace

SweepStats &
SweepStats::operator+=(const SweepStats &o)
{
    pagesConsidered += o.pagesConsidered;
    pagesSwept += o.pagesSwept;
    pagesSkippedPte += o.pagesSkippedPte;
    pagesCleaned += o.pagesCleaned;
    linesSwept += o.linesSwept;
    linesSkippedTags += o.linesSkippedTags;
    capsExamined += o.capsExamined;
    capsRevoked += o.capsRevoked;
    regsExamined += o.regsExamined;
    regsRevoked += o.regsRevoked;
    kernelCycles += o.kernelCycles;
    return *this;
}

std::vector<uint64_t>
Sweeper::buildWorklist(mem::AddressSpace &space,
                       SweepStats &stats) const
{
    // Assemble the work list of pages, applying PTE CapDirty
    // elimination (§3.4.2: "an array of pages that could contain
    // capabilities", the §5.3 system API).
    auto &pt = space.memory().pageTable();
    std::vector<uint64_t> pages;
    for (const mem::Segment &seg : space.sweepableSegments()) {
        for (uint64_t p = seg.base; p < seg.end(); p += kPageBytes) {
            ++stats.pagesConsidered;
            if (options_.usePteCapDirty) {
                const mem::Pte *pte = pt.lookup(p);
                if (!pte || !pte->capDirty) {
                    ++stats.pagesSkippedPte;
                    continue;
                }
            }
            pages.push_back(p);
        }
    }
    return pages;
}

SweepStats
Sweeper::sweepRegisters(mem::AddressSpace &space,
                        const alloc::ShadowMap &shadow)
{
    SweepStats stats;
    space.registers().forEach([&](cap::Capability &reg) {
        if (!reg.tag())
            return;
        ++stats.regsExamined;
        if (shadow.isRevoked(reg.base())) {
            reg.clearTag();
            ++stats.regsRevoked;
        }
    });
    return stats;
}

SweepStats
Sweeper::sweep(mem::AddressSpace &space,
               const alloc::ShadowMap &shadow,
               cache::Hierarchy *hierarchy)
{
    SweepStats stats;
    const std::vector<uint64_t> pages = buildWorklist(space, stats);

    if (options_.threads <= 1 || pages.size() < 2) {
        stats += sweepPageList(space, shadow, pages, hierarchy);
    } else {
        // Partition the page list into contiguous slices (§3.5).
        // Traffic modelling is meaningful only serially.
        const unsigned n = options_.threads;
        std::vector<SweepStats> partial(n);
        std::vector<std::thread> workers;
        const size_t per = (pages.size() + n - 1) / n;
        for (unsigned t = 0; t < n; ++t) {
            const size_t lo = std::min(pages.size(), t * per);
            const size_t hi = std::min(pages.size(), lo + per);
            workers.emplace_back([&, t, lo, hi] {
                const std::vector<uint64_t> slice(
                    pages.begin() + static_cast<long>(lo),
                    pages.begin() + static_cast<long>(hi));
                partial[t] =
                    sweepPageList(space, shadow, slice, nullptr);
            });
        }
        for (auto &w : workers)
            w.join();
        for (const auto &p : partial)
            stats += p;
    }

    // Sweep the register file (§3.3: "the stack, register files...").
    stats += sweepRegisters(space, shadow);
    return stats;
}

SweepStats
Sweeper::sweepPageList(mem::AddressSpace &space,
                       const alloc::ShadowMap &shadow,
                       const std::vector<uint64_t> &pages,
                       cache::Hierarchy *hierarchy)
{
    SweepStats stats;
    auto &memory = space.memory();
    auto &pt = memory.pageTable();
    const KernelCosts costs = defaultCosts(options_.kernel);

    // Root-level tag presence for the 8 KiB leaf-tag-line region.
    auto region_has_tags = [&](uint64_t line) {
        const uint64_t region = alignDown(line, 8 * KiB);
        return memory.pageTagCount(region) > 0 ||
               memory.pageTagCount(region + kPageBytes) > 0;
    };

    for (const uint64_t page_addr : pages) {
        ++stats.pagesSwept;
        mem::Page *page = memory.pageIfPresentMutable(page_addr);
        bool any_tag_found = false;

        for (uint64_t line = page_addr;
             line < page_addr + kPageBytes; line += kLineBytes) {
            // Tag mask for the 4 capability words in this line.
            uint8_t mask = 0;
            if (page) {
                const unsigned g0 = static_cast<unsigned>(
                    (line & (kPageBytes - 1)) >> kGranuleShift);
                for (unsigned i = 0; i < kCapsPerLine; ++i) {
                    if (page->granuleTag(g0 + i))
                        mask |= static_cast<uint8_t>(1u << i);
                }
            }

            if (options_.useCloadTags) {
                stats.kernelCycles += kCloadTagsCycles;
                if (hierarchy) {
                    hierarchy->cloadTags(line, region_has_tags(line),
                                         options_.cloadTagsPrefetch,
                                         mask != 0);
                }
                if (mask == 0) {
                    ++stats.linesSkippedTags;
                    continue;
                }
            }

            ++stats.linesSwept;
            any_tag_found |= mask != 0;
            stats.kernelCycles +=
                kernelCyclesForLine(costs, popCount(mask));
            if (hierarchy)
                hierarchy->access(line, kLineBytes, false);
            if (mask == 0)
                continue;

            bool revoked_in_line = false;
            for (unsigned i = 0; i < kCapsPerLine; ++i) {
                if (!(mask & (1u << i)))
                    continue;
                ++stats.capsExamined;
                const uint64_t addr = line + i * kCapBytes;
                uint64_t lo, hi;
                const uint64_t off = addr & (kPageBytes - 1);
                std::memcpy(&lo, page->data.data() + off, 8);
                std::memcpy(&hi, page->data.data() + off + 8, 8);
                const uint64_t base =
                    cap::Capability::decodeBase(lo, hi);
                if (hierarchy) {
                    hierarchy->access(mem::shadowAddrOf(base), 1,
                                      false);
                }
                if (shadow.isRevoked(base)) {
                    memory.clearTagAt(addr);
                    ++stats.capsRevoked;
                    revoked_in_line = true;
                }
            }
            if (revoked_in_line && hierarchy) {
                hierarchy->access(line, kLineBytes, true);
                hierarchy->recordRevocationTagWrite(line);
            }
        }

        // §3.4.2: a CapDirty page found without capabilities can be
        // marked clean again.
        if (options_.usePteCapDirty &&
            options_.cleanFalsePositivePages && !any_tag_found) {
            if (pt.lookup(page_addr)) {
                pt.clearCapDirty(page_addr);
                ++stats.pagesCleaned;
            }
        }
    }
    return stats;
}

} // namespace revoke
} // namespace cherivoke

#include "revoke/supervisor.hh"

#include <algorithm>

#include "support/units.hh"

namespace cherivoke {
namespace revoke {

const char *
sweeperEventKindName(SweeperEventKind kind)
{
    switch (kind) {
      case SweeperEventKind::Dispatch: return "dispatch";
      case SweeperEventKind::Completed: return "completed";
      case SweeperEventKind::StallDetected: return "stall-detected";
      case SweeperEventKind::Retry: return "retry";
      case SweeperEventKind::Crash: return "crash";
      case SweeperEventKind::ReassignToAssist:
        return "reassign-to-assist";
      case SweeperEventKind::StwCatchup: return "stw-catchup";
      case SweeperEventKind::Containment: return "containment";
    }
    return "unknown";
}

std::string
sweeperEventLine(const SweeperEvent &event)
{
    std::string out = sweeperEventKindName(event.kind);
    out += "@d";
    out += std::to_string(event.domain);
    out += ":e";
    out += std::to_string(event.epochSeq);
    out += " pages=";
    out += std::to_string(event.pages);
    out += " attempt=";
    out += std::to_string(event.attempt);
    return out;
}

uint64_t
derivedEpochDeadlineNs(uint64_t worklist_pages,
                       double scan_rate_bytes_per_sec,
                       double slack)
{
    // Floor: even an empty worklist gets 10 ms so thread dispatch
    // latency on a loaded machine cannot masquerade as a stall.
    constexpr uint64_t kFloorNs = 10'000'000;
    if (scan_rate_bytes_per_sec <= 0)
        return kFloorNs;
    const double bytes =
        static_cast<double>(worklist_pages) * kPageBytes;
    const double seconds = bytes / scan_rate_bytes_per_sec * slack;
    const double ns = seconds * 1e9;
    return std::max(kFloorNs, static_cast<uint64_t>(ns));
}

} // namespace revoke
} // namespace cherivoke

/**
 * @file
 * Adaptive, hierarchical revocation scheduling (ROADMAP item; paper
 * §6.1.3 as the control law). The pieces:
 *
 *  - CostModelClock: the injectable model-time source the controller
 *    consumes instead of wall clock. The trace drivers advance it by
 *    each operation's virtual duration, so every statistic the
 *    controller sees is a deterministic function of the trace —
 *    adaptive runs replay bit-identically (the FakeClock discipline,
 *    applied to scheduling).
 *
 *  - AdaptiveController: a pure, deterministic state machine. It
 *    samples free rate, pointer density (sweep-time tag counts) and
 *    effective scan rate over a sliding window of completed epochs,
 *    feeds the §6.1.3 model (overhead = F·D / (R·Q)), and picks the
 *    next epoch's quarantine trigger, pagesPerSlice, sweep thread
 *    count and tier depth. No engine types in its interface: unit
 *    tests drive it with synthetic samples.
 *
 *  - TierMap: PoisonCap-style generation tiers. Chunks are birth-
 *    stamped at allocation (alloc::TierStamper); a capability-store
 *    listener records, per page, the latest epoch sequence at which
 *    a tagged store landed. Because a capability to chunk X can only
 *    be stored *after* X is allocated, a page whose last tagged
 *    store predates a birth cutoff cannot hold a capability to any
 *    chunk born at/after that cutoff — so a tier-scoped sweep may
 *    skip it (SweepStats::pagesSkippedTier) while remaining sound.
 *
 *  - makeAdaptivePolicy(): the fourth engine policy
 *    (PolicyKind::Adaptive, CHERIVOKE_POLICY=adaptive). The policy
 *    object lives in adaptive.cc; it composes with all three
 *    backends and per-tenant policy mixes. Backends that cannot be
 *    scoped (color, objid) simply run full-depth epochs under it.
 *
 * Determinism contract: the controller reads *only* modelled inputs
 * (trace-driven clock, epoch statistics, quarantine contents) —
 * never wall time, never thread scheduling. Non-adaptive policies
 * never install a stamper or listener, so their size words, sweeps
 * and outputs stay byte-equal to pre-adaptive builds.
 */

#ifndef CHERIVOKE_REVOKE_ADAPTIVE_HH
#define CHERIVOKE_REVOKE_ADAPTIVE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "support/clock.hh"
#include "support/units.hh"

namespace cherivoke {

namespace mem {
class TaggedMemory;
}

namespace revoke {

class RevocationPolicy;

/**
 * Deterministic model-time clock: advanced by the trace drivers in
 * lock-step with modelled virtual seconds, read by the adaptive
 * controller. Mirrors support::FakeClock, but is its own type so a
 * wall-clock source can never be injected where model time is
 * required.
 */
class CostModelClock final : public support::Clock
{
  public:
    uint64_t nowNs() override { return now_ns_; }
    uint64_t peekNs() const { return now_ns_; }

    void set(uint64_t ns) { now_ns_ = ns; }
    void advance(uint64_t ns) { now_ns_ += ns; }

    /** Advance by @p seconds of model time (non-negative). */
    void
    advanceSeconds(double seconds)
    {
        if (seconds > 0)
            now_ns_ += static_cast<uint64_t>(seconds * 1e9);
    }

  private:
    uint64_t now_ns_ = 0;
};

/** Tunables for the adaptive controller. All defaults are global —
 *  the policy_sweep gate runs every SPEC profile without per-profile
 *  tuning. */
struct AdaptiveConfig
{
    /** Sliding window of completed epochs the estimates average. */
    unsigned windowEpochs = 8;

    /** Generation tiers (1 = no hierarchy; 3 = hot/warm/cold). */
    unsigned tiers = 3;
    /** Age span of one tier, in epochs: tier 0 (hot) holds chunks
     *  born within the last tierAgeEpochs epochs. */
    unsigned tierAgeEpochs = 4;

    /** Hysteresis: consecutive high-hot-share samples before the hot
     *  tier is promoted to its own scoped epochs, and consecutive
     *  low-share samples before it demotes back to full depth. */
    unsigned promoteAfter = 3;
    unsigned demoteAfter = 3;
    /** Hot-share thresholds the hysteresis compares against. */
    double hotShareHigh = 0.55;
    double hotShareLow = 0.25;

    /** A scoped epoch must be predicted cheaper than a full-depth
     *  one by at least this factor, or full depth runs — the gate
     *  margin that keeps adaptive from ever losing to a static
     *  policy on modelled overhead. */
    double shallowMargin = 1.5;

    /** Knob bounds the decisions clamp to. */
    size_t minPagesPerSlice = 16;
    size_t maxPagesPerSlice = 4096;
    unsigned maxSweepThreads = 4;
    /** Trigger-fraction floor (the ceiling is the allocator's
     *  configured quarantine fraction). */
    double minTriggerFraction = 0.05;

    /** Pause budget: a slice should take about this fraction of the
     *  predicted epoch period; the sweep itself about targetDuty of
     *  the period per thread. Deterministic cost-model constants —
     *  mirrors sim::MachineProfile's x86 system, never measured. */
    double slicePeriodFraction = 0.01;
    double targetDuty = 0.10;
    double cpuHz = 2.9e9;
    double dramBytesPerSec = 19405.0 * MiB;
    double sweepStartupSeconds = 30e-6;
};

/** One completed epoch, as the controller samples it. */
struct EpochSample
{
    /** Model seconds since the previous sample (free-rate
     *  denominator; 0 when the clock did not advance). */
    double dtSeconds = 0;
    /** Bytes freed (quarantined + released) since the previous
     *  sample. */
    uint64_t freedBytes = 0;
    /** Live heap bytes at completion. */
    uint64_t liveBytes = 0;
    /** The epoch's sweep: bytes whose data was read, tagged words
     *  examined (pointer density numerator), modelled kernel
     *  cycles. */
    uint64_t sweptBytes = 0;
    uint64_t capsExamined = 0;
    double kernelCycles = 0;
    /** Quarantined bytes the epoch released. */
    uint64_t releasedBytes = 0;
    /** Share of quarantined bytes that were hot (youngest tier) when
     *  the epoch opened — the tier promote/demote input. */
    double hotShare = 0;
};

/** The controller's choice for the next epoch. */
struct ScheduleDecision
{
    /** Quarantine fraction to trigger at (clamped to the allocator
     *  ceiling — never exceeds the configured fraction). */
    double triggerFraction = 0.25;
    size_t pagesPerSlice = 64;
    unsigned sweepThreads = 1;
    /** Epoch depth: 0 = hot tier only … tiers-1 = full depth. */
    unsigned depth = 0;
    /** Birth cutoff implementing the depth (0 = everything). */
    uint32_t minBirth = 0;
};

/**
 * The per-domain adaptive controller: pure, deterministic state.
 * recordSample() feeds it completed epochs; decide() returns the
 * next epoch's schedule from the §6.1.3 model over the windowed
 * estimates. No clocks, no engine types — directly unit-testable.
 */
class AdaptiveController
{
  public:
    explicit AdaptiveController(const AdaptiveConfig &config);

    /** Feed one completed epoch into the sliding window. */
    void recordSample(const EpochSample &sample);

    /** Inputs decide() needs beyond the window. */
    struct Pressure
    {
        uint64_t quarantinedBytes = 0;
        uint64_t liveBytes = 0;
        /** Quarantined bytes young enough for a hot-tier epoch. */
        uint64_t hotBytes = 0;
        /** Heap bytes a hot-tier sweep would actually walk vs a
         *  full-depth sweep (the TierMap's page filtering). */
        uint64_t hotSweepBytes = 0;
        uint64_t fullSweepBytes = 0;
        /** Allocator ceiling (configured quarantine fraction). */
        double quarantineCeiling = 0.25;
        /** Current epoch sequence and the sequence at attach (a
         *  scoped epoch needs minBirth > attachSeq: stores before
         *  the listener attached are unrecorded). */
        uint64_t epochSeq = 0;
        uint64_t attachSeq = 0;
    };

    /** Choose the next epoch's schedule. Pure function of recorded
     *  samples + @p now (no hidden inputs). */
    ScheduleDecision decide(const Pressure &now) const;

    /** @name Windowed estimates (§6.1.3 model inputs) */
    /// @{
    /** F: bytes freed per model second (0 until measurable). */
    double freeRate() const;
    /** D: capability bytes per byte swept (0 until a sweep ran). */
    double pointerDensity() const;
    /** R: effective sweep bytes per second under the cost model. */
    double scanRate() const;
    /// @}

    /** @name Tier hysteresis introspection */
    /// @{
    bool hotPromoted() const { return hot_promoted_; }
    unsigned promoteStreak() const { return promote_streak_; }
    unsigned demoteStreak() const { return demote_streak_; }
    /// @}

    const AdaptiveConfig &config() const { return config_; }
    size_t samples() const { return window_.size(); }

  private:
    AdaptiveConfig config_;
    std::deque<EpochSample> window_;
    bool hot_promoted_ = false;
    unsigned promote_streak_ = 0;
    unsigned demote_streak_ = 0;
};

/**
 * Generation-tier page map for one domain: which pages recently
 * received a tagged capability store, by epoch sequence. Provides
 * the birth stamp for alloc::TierStamper and the page filter for
 * tier-scoped sweeps. Deterministic: the map is used for point
 * lookups and order-independent sums only, never iterated into an
 * ordered output.
 */
class TierMap
{
  public:
    TierMap() = default;
    ~TierMap() { detach(); }

    TierMap(const TierMap &) = delete;
    TierMap &operator=(const TierMap &) = delete;

    /** Start observing tagged stores to [lo, hi) of @p memory. */
    void attach(mem::TaggedMemory &memory, uint64_t lo, uint64_t hi);
    void detach();
    bool attached() const { return memory_ != nullptr; }

    /** Epoch boundary: later stores (and births) are one epoch
     *  younger. */
    void advanceEpoch() { ++seq_; }
    uint64_t seq() const { return seq_; }
    /** The sequence advanceEpoch() had reached at attach time. */
    uint64_t attachSeq() const { return attach_seq_; }

    /** Saturating birth stamp for a chunk allocated now. */
    uint32_t currentBirthStamp() const;

    /**
     * May @p page_addr hold a capability to a chunk born at/after
     * @p min_birth? False only when the page is inside the tracked
     * range, the cutoff postdates attach, and no tagged store landed
     * there at/after the cutoff — the sound skip condition.
     */
    bool pageMayHoldYoung(uint64_t page_addr, uint32_t min_birth) const;

    /** Tracked-range pages a min_birth-scoped sweep must still
     *  walk (upper bound on qualifying pages). */
    uint64_t pagesAtOrAfter(uint32_t min_birth) const;
    /** Pages that have received at least one tagged store. */
    uint64_t pagesTracked() const { return page_seq_.size(); }

  private:
    void onCapStore(uint64_t addr);

    mem::TaggedMemory *memory_ = nullptr;
    uint64_t listener_id_ = 0;
    uint64_t lo_ = 0;
    uint64_t hi_ = 0;
    uint64_t seq_ = 1;
    uint64_t attach_seq_ = 0;
    /** page address -> latest tagged-store epoch sequence. */
    std::unordered_map<uint64_t, uint64_t> page_seq_;
};

/** Instantiate the adaptive policy (PolicyKind::Adaptive). */
std::unique_ptr<RevocationPolicy>
makeAdaptivePolicy(const AdaptiveConfig &config = AdaptiveConfig{});

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_ADAPTIVE_HH

/**
 * @file
 * The unified revocation subsystem: a single RevocationEngine owns
 * the CHERIvoke epoch protocol (figure 3) — quarantine fills → paint
 * the shadow map → sweep memory and registers → unpaint → release the
 * quarantine for reuse — and dispatches its *scheduling* to a
 * pluggable RevocationPolicy:
 *
 *  - stop-the-world: the paper's measured configuration; a full
 *    epoch runs to completion whenever the quarantine reaches its
 *    budget.
 *  - incremental: the §3.5 direction made sound by a Cornucopia-style
 *    load barrier; an epoch runs as a sequence of bounded pauses, the
 *    mutator running between pauses.
 *  - concurrent: epochs stay open across allocator operations; every
 *    call into the engine advances the open epoch by one slice
 *    (mutator-assist scheduling), so sweep work interleaves with
 *    program progress instead of stalling it.
 *
 * The engine exposes the epoch building blocks (beginEpoch / step /
 * finishEpoch) directly, so drivers and tests can interleave sweeping
 * with mutator work under any barrier-bearing policy.
 *
 * One engine can serve several *domains* — (allocator, address-space)
 * pairs, one per hosted tenant, all over the same shared TaggedMemory.
 * selectDomain() binds pressure checks and newly opened epochs to a
 * domain; an open epoch stays bound to the domain it began on, so
 * under the concurrent policy any tenant's pump advances whichever
 * epoch is in flight (mutator-assist across tenants — the cross-tenant
 * sweep interference the multi-tenant experiments measure). Statistics
 * accumulate both engine-wide (totals()) and per domain
 * (domainTotals()).
 *
 * Domains are *heterogeneous* on two axes: each can carry its own
 * scheduling policy (setDomainPolicy), so one tenant runs concurrent
 * revocation while a neighbour stops the world on the same engine —
 * and each carries its own *revocation backend* (setDomainBackend,
 * revoke/backends/): the CHERIvoke quarantine+sweep pipeline, the
 * PICASSO-style colored-capability recycler, or the CHERI-D-style
 * inline object-ID checker. The engine delegates the epoch mechanics
 * (beginEpoch / step / finishEpoch bodies) to the owning domain's
 * backend and keeps arbitration, policies, and statistics here. Arbitration is
 * epoch-owner-wins: at most one epoch is open engine-wide, and while
 * it is open every pump — whichever domain issued it — advances it
 * under the *owning* domain's policy (cross-tenant assist); a
 * stop-the-world trigger elsewhere waits its turn, and an explicit
 * revokeNow() (the global-scope pause) first drains the in-flight
 * epoch to its owner, then runs the requesting domain's own epoch.
 *
 * Domains also *retire* (tenant teardown): retireDomain() drains the
 * open epoch if — and only if — this domain owns it, then removes
 * the domain from service; bindDomain() later reuses the slot for a
 * new tenant with fresh statistics.
 */

#ifndef CHERIVOKE_REVOKE_REVOCATION_ENGINE_HH
#define CHERIVOKE_REVOKE_REVOCATION_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "revoke/adaptive.hh"
#include "revoke/backends/backend.hh"
#include "revoke/supervisor.hh"
#include "revoke/sweeper.hh"
#include "support/clock.hh"
#include "support/fault.hh"

namespace cherivoke {
namespace revoke {

class BackgroundSweeper;

/** Cumulative statistics across all epochs. */
struct EngineTotals
{
    uint64_t epochs = 0;
    alloc::PaintStats paint;
    SweepStats sweep;
    uint64_t internalFrees = 0;
    uint64_t bytesReleased = 0;
    uint64_t slices = 0;

    bool operator==(const EngineTotals &o) const = default;
};

/** Scheduling strategies the engine can dispatch to. */
enum class PolicyKind
{
    StopTheWorld,
    Incremental,
    Concurrent,
    Adaptive,
};

/** Human-readable policy name ("stop-the-world", ...). */
const char *policyName(PolicyKind kind);

/**
 * Parse a policy name ("stw" / "stop-the-world", "incremental",
 * "concurrent", "adaptive"). @return true and sets @p out on
 * success.
 */
bool parsePolicy(const std::string &name, PolicyKind &out);

/**
 * The policy registry: every PolicyKind, with its canonical name.
 * Benches iterate this instead of hard-coding policy lists, so a
 * new policy cannot be silently skipped (bench/policy_sweep gates
 * coverage against it in ctest).
 */
const std::vector<PolicyKind> &allPolicies();

/** Engine configuration. */
struct EngineConfig
{
    SweepOptions sweep{};
    PolicyKind policy = PolicyKind::StopTheWorld;
    /** Pages per bounded pause for incremental/concurrent epochs. */
    size_t pagesPerSlice = 64;
    /** Shards the quarantine is split into for painting (per-shard
     *  shadow-map views; 1 = unsharded). */
    unsigned paintShards = 1;
    /** Default revocation backend for every domain (overridable per
     *  domain via setDomainBackend, like per-domain policies). */
    BackendKind backend = BackendKind::Sweep;
    /** Tunables for the metadata-bearing backends. */
    BackendConfig backendConfig{};
    /** Run a true background sweeper thread: each epoch's frozen
     *  worklist is snapshotted at open and raced off-thread under
     *  watchdog supervision, with the modelled statistics still
     *  produced by the (unchanged) mutator-assist replay — a bg-on
     *  run is bit-identical to bg-off by construction. */
    bool backgroundSweeper = false;
    /** Watchdog deadline per epoch in milliseconds; 0 derives it
     *  from the §6.1.3 sweep-cost model (worklist bytes over the
     *  assumed scan rate, with slack). */
    double epochDeadlineMs = 0;
    /** Bounded watchdog retries (exponential backoff: the deadline
     *  window doubles per retry) before the degradation ladder
     *  fires. */
    unsigned sweeperRetries = 2;
    /** Injectable clock for the watchdog (null → a steady clock
     *  owned by the engine). Deterministic chaos never reads it:
     *  injected sweeper faults are states, observed at rendezvous
     *  points. */
    support::Clock *clock = nullptr;
    /** Adaptive-policy tunables (used when any domain runs
     *  PolicyKind::Adaptive; inert otherwise). */
    AdaptiveConfig adaptive{};
    /** Deterministic sweeper fault injections
     *  (`sweeper-stall@domain:epoch` and friends), consumed as
     *  matching epochs open. */
    std::vector<SweeperInjection> sweeperPlan;
};

class RevocationEngine;

/**
 * A revocation scheduling policy. Policies drive epochs through the
 * engine's public building blocks; the engine owns all state.
 */
class RevocationPolicy
{
  public:
    virtual ~RevocationPolicy() = default;

    virtual PolicyKind kind() const = 0;
    virtual const char *name() const = 0;

    /** Epochs opened by this policy run concurrently with the
     *  mutator and need the load-side revocation barrier. */
    virtual bool needsLoadBarrier() const = 0;

    /**
     * React to allocator state: open, advance, or complete epochs as
     * the policy schedules them. Called by the engine on every
     * maybeRevoke(). Default: run a full epoch on quarantine
     * pressure. @return true iff an epoch completed.
     */
    virtual bool pump(RevocationEngine &engine,
                      cache::Hierarchy *hierarchy);

    /** Run one full epoch to completion now (no epoch may be open).
     *  Default: a sequence of bounded pagesPerSlice pauses. */
    virtual EpochStats runEpoch(RevocationEngine &engine,
                                cache::Hierarchy *hierarchy);

    /**
     * Domain @p index is being retired (its allocator is still
     * alive, but will not be after this returns). Policies holding
     * per-domain state (adaptive) detach it here; default: no-op.
     */
    virtual void onDomainRetired(RevocationEngine &engine,
                                 size_t index)
    {
        (void)engine;
        (void)index;
    }
};

/** Instantiate the built-in policy for @p kind. */
std::unique_ptr<RevocationPolicy> makePolicy(PolicyKind kind);

/**
 * Couples a CherivokeAllocator with a Sweeper and runs revocation
 * epochs under the configured policy.
 */
class RevocationEngine
{
  public:
    RevocationEngine(alloc::CherivokeAllocator &allocator,
                     mem::AddressSpace &space,
                     EngineConfig config = EngineConfig{});

    /** Convenience: stop-the-world with explicit sweep options. */
    RevocationEngine(alloc::CherivokeAllocator &allocator,
                     mem::AddressSpace &space, SweepOptions sweep);

    ~RevocationEngine();

    RevocationEngine(const RevocationEngine &) = delete;
    RevocationEngine &operator=(const RevocationEngine &) = delete;

    /** @name Domains (multi-tenant operation) */
    /// @{

    /**
     * Register another (allocator, space) pair — a tenant — with
     * this engine; the constructor's pair is domain 0. Both objects
     * must outlive the engine (or be retired first). @return the new
     * domain's index
     */
    size_t addDomain(alloc::CherivokeAllocator &allocator,
                     mem::AddressSpace &space);

    /**
     * Bind (or re-bind) domain slot @p index to a tenant: @p index
     * must be the next fresh slot (== domainCount()) or a retired
     * slot, whose statistics restart from zero — the engine-side
     * half of tenant-slot reuse. @return @p index
     */
    size_t bindDomain(size_t index,
                      alloc::CherivokeAllocator &allocator,
                      mem::AddressSpace &space);

    /**
     * Give domain @p index its own scheduling policy (overriding the
     * engine-wide default from EngineConfig). Must not be changed
     * while this domain's epoch is open.
     */
    void setDomainPolicy(size_t index, PolicyKind kind);

    /** As above with an explicit policy object (tests injecting a
     *  configured adaptive policy). Null restores the default. */
    void setDomainPolicyObject(size_t index,
                               std::unique_ptr<RevocationPolicy> policy);

    /**
     * Give domain @p index its own revocation backend (overriding
     * the engine-wide default from EngineConfig). The fresh backend
     * starts with empty metadata, so switch before the domain
     * allocates. Must not be changed while this domain's epoch is
     * open.
     */
    void setDomainBackend(size_t index, BackendKind kind);

    /** The backend serving domain @p index. */
    RevocationBackend &domainBackend(size_t index);
    const RevocationBackend &domainBackend(size_t index) const;

    /** Backend-specific statistics of domain @p index. */
    const BackendStats &domainBackendStats(size_t index) const
    {
        return domainBackend(index).stats();
    }

    /**
     * Take domain @p index out of service (tenant teardown): drains
     * the open epoch iff this domain owns it, then marks the slot
     * retired. The active domain must be moved elsewhere first when
     * other domains remain. Statistics of the retired slot stay
     * readable until bindDomain() reuses it.
     */
    void retireDomain(size_t index,
                      cache::Hierarchy *hierarchy = nullptr);

    /** Drain the open epoch iff domain @p index owns it. */
    void drainDomain(size_t index,
                     cache::Hierarchy *hierarchy = nullptr);

    /**
     * Bind quarantine-pressure checks and the *next* beginEpoch() to
     * domain @p index (must not be retired). Legal while an epoch is
     * open: the open epoch stays bound to the domain it began on.
     */
    void selectDomain(size_t index);

    size_t activeDomain() const { return active_; }
    size_t domainCount() const { return domains_.size(); }
    bool domainRetired(size_t index) const
    {
        return domains_.at(index).retired;
    }

    /** True when every domain has been retired. */
    bool allRetired() const;

    /** The domain owning the open epoch (active when none is open). */
    size_t epochDomainIndex() const { return epoch_domain_; }

    /** The policy governing domain @p index (its override, or the
     *  engine-wide default). */
    RevocationPolicy &domainPolicy(size_t index);

    /** Cumulative statistics of epochs begun on domain @p index. */
    const EngineTotals &domainTotals(size_t index) const;

    /** Domain @p index's allocator / address space (policy and test
     *  access; the domain must not be retired). */
    alloc::CherivokeAllocator &domainAllocator(size_t index)
    {
        return *domains_.at(index).allocator;
    }
    mem::AddressSpace &domainSpace(size_t index)
    {
        return *domains_.at(index).space;
    }
    /// @}

    /** @name Policy-driven operation */
    /// @{

    /**
     * Let the policy react to allocator pressure: run an epoch
     * (stop-the-world, incremental) or advance the open one by a
     * slice (concurrent). @return true if an epoch completed
     */
    bool maybeRevoke(cache::Hierarchy *hierarchy = nullptr);

    /** Run a full epoch now (drains any open epoch first). Used by a
     *  strict-UAF mode that sweeps on every free, §3.7. */
    EpochStats revokeNow(cache::Hierarchy *hierarchy = nullptr);

    /**
     * Strict use-after-free debugging (§3.7: "CHERI could facilitate
     * strict use-after-free for debugging if a sweep was performed
     * on every free"): free the allocation and immediately revoke
     * every reference to it — not merely before reallocation.
     * Far more expensive than batched revocation; for debug builds.
     */
    EpochStats freeAndRevoke(const cap::Capability &capability,
                             cache::Hierarchy *hierarchy = nullptr);

    /** Finish any open epoch (no-op when none is open).
     *  @return the last completed epoch's statistics */
    EpochStats drain(cache::Hierarchy *hierarchy = nullptr);
    /// @}

    /** @name Epoch protocol building blocks */
    /// @{

    /**
     * Open an epoch: freeze + paint the quarantine (across
     * config().paintShards shadow-map shards), install the load
     * barrier if the policy requires one, sweep the registers, build
     * the page worklist.
     */
    void beginEpoch();

    /**
     * Sweep up to @p max_pages pages of the worklist (one bounded
     * pause, parallelised across config().sweep.threads workers).
     * @return pages still remaining in the worklist
     */
    size_t step(size_t max_pages,
                cache::Hierarchy *hierarchy = nullptr);

    /**
     * Close the epoch: worklist must be drained; sweeps registers
     * once more if a barrier was active, removes the barrier,
     * unpaints and releases the frozen quarantine.
     */
    void finishEpoch();

    /** Convenience: run one whole epoch in bounded steps. */
    EpochStats revokeIncrementally(size_t pages_per_step,
                                   cache::Hierarchy *hierarchy =
                                       nullptr);

    /** True while an epoch is open. */
    bool epochOpen() const { return open_; }

    /**
     * Observe every epoch open: @p hook fires inside beginEpoch()
     * (after the revocation set is frozen) with the epoch's domain
     * index. The multi-threaded mutator front-end uses this to record
     * epoch boundaries in each tenant's replay, where its threads
     * must flush and drain their remote-free queues — no remote free
     * may be in flight against a frozen revocation set.
     */
    void setEpochOpenHook(std::function<void(size_t domain)> hook)
    {
        epoch_open_hook_ = std::move(hook);
    }

    /** Work units remaining in the open epoch (0 when closed). */
    size_t pagesRemaining() const;

    /**
     * Model @p n pointer dereferences against the active domain's
     * backend (the object-ID backend counts a per-use check; sweep
     * and color backends check nothing on use). The trace replayer
     * calls this for every pointer-op it applies.
     */
    void notePointerUse(uint64_t n = 1);
    /** As above, against an explicit domain (multi-tenant hosts). */
    void notePointerUse(size_t domain, uint64_t n);
    /// @}

    /** @name Introspection */
    /// @{
    /** Quarantine at/over budget (paper: Q >= fraction * heap)? */
    bool quarantinePressure() const;

    Sweeper &sweeper() { return sweeper_; }
    RevocationPolicy &policy() { return *policy_; }
    const EngineConfig &config() const { return config_; }

    /** The deterministic model-time clock the adaptive policy
     *  consumes; trace drivers advance it by each operation's
     *  virtual duration. Never wall time. */
    CostModelClock &modelClock() { return model_clock_; }
    const CostModelClock &modelClock() const { return model_clock_; }
    const EngineTotals &totals() const { return totals_; }
    const EpochStats &lastEpoch() const { return last_; }

    /** Every supervision transition so far (typed, deterministic). */
    const std::vector<SweeperEvent> &sweeperEvents() const
    {
        return supervisor_.events();
    }

    /** Ladder strikes accumulated against domain @p index. */
    unsigned sweeperStrikes(size_t index) const
    {
        return supervisor_.strikes(index);
    }

    /** The background sweeper thread (null unless
     *  config().backgroundSweeper and an epoch has dispatched). */
    const BackgroundSweeper *backgroundSweeperThread() const
    {
        return bg_.get();
    }
    /// @}

  private:
    /** One hosted (allocator, space) pair and its statistics. */
    struct Domain
    {
        alloc::CherivokeAllocator *allocator;
        mem::AddressSpace *space;
        EngineTotals totals;
        /** Per-domain policy override; null → the engine default. */
        std::unique_ptr<RevocationPolicy> policy;
        /** The domain's revocation backend (always present on a
         *  live domain; also its allocator's observer). */
        std::unique_ptr<RevocationBackend> backend;
        /** Out of service (tenant retired); slot reusable. */
        bool retired = false;
    };

    /** Instantiate + bind a backend for a live domain and install
     *  it as the allocator's observer. */
    void attachBackend(size_t index, BackendKind kind);

    /** @name Background-sweeper supervision (see supervisor.hh) */
    /// @{
    /** Snapshot the frozen worklist and hand it to the worker
     *  thread (beginEpoch tail, bg mode only). */
    void dispatchBackgroundSweep();
    /** Before a modelled slice over the next @p max_pages pages:
     *  wait for the worker's watermark to cover them, driving the
     *  watchdog; on overrun/stall/crash walk the retry loop and, if
     *  the episode fails, the degradation ladder (may throw
     *  HeapFaultKind::SweeperFailure at rung 3). */
    void rendezvousBackgroundSweep(size_t max_pages);
    /** A failed episode: cancel the job, take a strike, fire the
     *  ladder rung for the strike count. */
    void failSweeperEpisode();
    /** Join the worker at epoch close (finishEpoch head), before
     *  the backend releases barrier + shadow. */
    void joinBackgroundSweep();
    /** The watchdog clock (config override or the owned steady). */
    support::Clock &clock();
    /// @}

    /** The active domain's allocator (pressure checks, new epochs). */
    alloc::CherivokeAllocator &allocator() const
    {
        return *domains_[active_].allocator;
    }
    /** The open epoch's domain (falls back to active when closed). */
    Domain &epochDomain() { return domains_[epoch_domain_]; }

    std::vector<Domain> domains_;
    size_t active_ = 0;       //!< domain new epochs bind to
    size_t epoch_domain_ = 0; //!< domain of the open epoch
    /** Fired by beginEpoch() with the epoch's domain (may be null). */
    std::function<void(size_t)> epoch_open_hook_;
    Sweeper sweeper_;
    EngineConfig config_;
    CostModelClock model_clock_;
    std::unique_ptr<RevocationPolicy> policy_;
    EngineTotals totals_;
    EpochStats last_;

    EpochStats epoch_;
    bool open_ = false;

    /** @name Background-sweeper state */
    /// @{
    std::unique_ptr<BackgroundSweeper> bg_;
    SweeperSupervisor supervisor_;
    support::SteadyClock steady_clock_;
    /** Engine-owned copy of config().sweeperPlan (fired flags). */
    std::vector<SweeperInjection> sweeper_plan_;
    bool bg_active_ = false;  //!< a job covers the open epoch
    bool stw_catchup_ = false; //!< rung 2: next step drains all
    uint64_t bg_total_ = 0;    //!< worklist pages at dispatch
    uint64_t bg_epoch_seq_ = 0; //!< domain-local ordinal at open
    /// @}
};

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_REVOCATION_ENGINE_HH

/**
 * @file
 * The supervision layer over the background sweeper: a passive
 * Watchdog state machine (armed with a per-epoch deadline derived
 * from the §6.1.3 sweep-cost model, refreshed by sweeper heartbeats,
 * doubling its window on each bounded retry), the typed SweeperEvent
 * taxonomy every supervision transition is recorded as, and the
 * per-domain strike ledger that drives the degradation ladder:
 *
 *     strike 1: cancel the sweeper, re-dispatch the frozen worklist
 *               to mutator-assist (ReassignToAssist)
 *     strike 2: assist plus a stop-the-world catch-up epoch
 *               (StwCatchup) so the domain regains cadence
 *     strike 3: the domain is beyond rescue — contain it through
 *               the PR-7 teardown path (Containment raises
 *               HeapFaultKind::SweeperFailure)
 *
 * The Watchdog never reads a clock: callers pass timestamps, so
 * production uses SteadyClock while tests drive a FakeClock and the
 * deterministic chaos matrix bypasses wall time entirely (injected
 * sweeper faults are *states*, observed at deterministic rendezvous
 * points).
 */

#ifndef CHERIVOKE_REVOKE_SUPERVISOR_HH
#define CHERIVOKE_REVOKE_SUPERVISOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cherivoke {
namespace revoke {

/** Every supervision transition, in the order the ladder fires. */
enum class SweeperEventKind : uint8_t
{
    Dispatch,         //!< worklist handed to the background thread
    Completed,        //!< sweeper finished the epoch's worklist
    StallDetected,    //!< watchdog saw no progress past a deadline
    Retry,            //!< bounded retry with doubled deadline window
    Crash,            //!< sweeper thread died (heartbeat stopped)
    ReassignToAssist, //!< rung 1: worklist back to mutator-assist
    StwCatchup,       //!< rung 2: stop-the-world catch-up epoch
    Containment,      //!< rung 3: domain contained via teardown
};

constexpr size_t kNumSweeperEventKinds = 8;

/** Stable lowercase name ("dispatch", "reassign-to-assist", ...). */
const char *sweeperEventKindName(SweeperEventKind kind);

/**
 * One supervision transition. Every field is deterministic under
 * the chaos matrix (epoch ordinals and page counts, never wall
 * time), so event sequences are gated byte-identical across runs.
 */
struct SweeperEvent
{
    SweeperEventKind kind = SweeperEventKind::Dispatch;
    uint64_t domain = 0;   //!< engine domain index
    uint64_t epochSeq = 0; //!< domain-local epoch ordinal
    uint64_t pages = 0;    //!< worklist pages (Dispatch/Completed)
                           //!< or progress watermark at the event
    uint64_t attempt = 0;  //!< retry attempt count at the event
};

/** Canonical one-line rendering for fingerprints and logs. */
std::string sweeperEventLine(const SweeperEvent &event);

/**
 * The watchdog proper: a timestamp-consuming state machine. arm()
 * sets a deadline window; heartbeat() pushes the deadline out by the
 * current window; poll() fires when now reaches the deadline,
 * granting up to max_retries bounded retries with exponential
 * backoff (window doubles per retry) before escalating. poll() at
 * deadline-1 never fires.
 */
class Watchdog
{
  public:
    enum class Verdict : uint8_t
    {
        None,     //!< deadline not reached (or not armed)
        Retry,    //!< overrun; a doubled window was granted
        Escalate, //!< retries exhausted; ladder must take over
    };

    /** Arm with deadline = @p now_ns + @p window_ns. */
    void arm(uint64_t now_ns, uint64_t window_ns,
             unsigned max_retries)
    {
        armed_ = true;
        window_ = window_ns;
        deadline_ = now_ns + window_ns;
        max_retries_ = max_retries;
        retries_ = 0;
    }

    /** Progress signal: deadline moves to now + current window. */
    void heartbeat(uint64_t now_ns)
    {
        if (armed_)
            deadline_ = now_ns + window_;
    }

    Verdict poll(uint64_t now_ns)
    {
        if (!armed_ || now_ns < deadline_)
            return Verdict::None;
        if (retries_ >= max_retries_) {
            armed_ = false;
            return Verdict::Escalate;
        }
        ++retries_;
        window_ *= 2;
        deadline_ = now_ns + window_;
        return Verdict::Retry;
    }

    void disarm() { armed_ = false; }

    bool armed() const { return armed_; }
    unsigned retries() const { return retries_; }
    uint64_t windowNs() const { return window_; }
    uint64_t deadlineNs() const { return deadline_; }

  private:
    bool armed_ = false;
    uint64_t window_ = 0;
    uint64_t deadline_ = 0;
    unsigned max_retries_ = 0;
    unsigned retries_ = 0;
};

/**
 * Per-epoch deadline from the §6.1.3 sweep-cost model: the time the
 * sweep *should* take (worklist bytes over the memory system's scan
 * rate) times a generous slack factor, floored so tiny worklists on
 * loaded CI machines do not trip spurious overruns.
 */
uint64_t derivedEpochDeadlineNs(uint64_t worklist_pages,
                                double scan_rate_bytes_per_sec,
                                double slack = 8.0);

/**
 * The strike ledger + event log the engine's degradation ladder
 * reads. Strikes accumulate per domain across epochs: a domain
 * whose sweeper keeps failing climbs the ladder monotonically.
 */
class SweeperSupervisor
{
  public:
    /** One more failed episode for @p domain; returns the total. */
    unsigned addStrike(uint64_t domain)
    {
        if (domain >= strikes_.size())
            strikes_.resize(domain + 1, 0);
        return ++strikes_[domain];
    }

    unsigned strikes(uint64_t domain) const
    {
        return domain < strikes_.size() ? strikes_[domain] : 0;
    }

    /** Slot reuse (bindDomain): a new tenant starts clean. */
    void resetStrikes(uint64_t domain)
    {
        if (domain < strikes_.size())
            strikes_[domain] = 0;
    }

    void record(const SweeperEvent &event)
    {
        events_.push_back(event);
    }

    const std::vector<SweeperEvent> &events() const
    {
        return events_;
    }

    Watchdog &watchdog() { return watchdog_; }

  private:
    std::vector<unsigned> strikes_;
    std::vector<SweeperEvent> events_;
    Watchdog watchdog_;
};

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_SUPERVISOR_HH

#include "revoke/adaptive.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "alloc/cherivoke_alloc.hh"
#include "alloc/chunk.hh"
#include "alloc/quarantine.hh"
#include "mem/addr_space.hh"
#include "mem/tagged_memory.hh"
#include "revoke/revocation_engine.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace revoke {

// ---------------------------------------------------------------------
// AdaptiveController
// ---------------------------------------------------------------------

AdaptiveController::AdaptiveController(const AdaptiveConfig &config)
    : config_(config)
{
    CHERIVOKE_ASSERT(config_.windowEpochs > 0);
    CHERIVOKE_ASSERT(config_.tiers > 0);
    CHERIVOKE_ASSERT(config_.tierAgeEpochs > 0);
    CHERIVOKE_ASSERT(config_.minPagesPerSlice > 0 &&
                     config_.minPagesPerSlice <=
                         config_.maxPagesPerSlice);
    CHERIVOKE_ASSERT(config_.maxSweepThreads > 0);
}

void
AdaptiveController::recordSample(const EpochSample &sample)
{
    window_.push_back(sample);
    while (window_.size() > config_.windowEpochs)
        window_.pop_front();

    // Tier hysteresis: a streak of hot-dominated quarantines promotes
    // the hot tier to its own scoped epochs; a streak of cold ones
    // demotes it back to full depth. The mid band resets both streaks
    // so a single borderline epoch cannot flip the mode.
    if (sample.hotShare >= config_.hotShareHigh) {
        demote_streak_ = 0;
        if (++promote_streak_ >= config_.promoteAfter)
            hot_promoted_ = true;
    } else if (sample.hotShare <= config_.hotShareLow) {
        promote_streak_ = 0;
        if (++demote_streak_ >= config_.demoteAfter)
            hot_promoted_ = false;
    } else {
        promote_streak_ = 0;
        demote_streak_ = 0;
    }
}

double
AdaptiveController::freeRate() const
{
    double seconds = 0;
    double freed = 0;
    for (const EpochSample &s : window_) {
        seconds += s.dtSeconds;
        freed += static_cast<double>(s.freedBytes);
    }
    return seconds > 0 ? freed / seconds : 0;
}

double
AdaptiveController::pointerDensity() const
{
    double caps = 0;
    double swept = 0;
    for (const EpochSample &s : window_) {
        caps += static_cast<double>(s.capsExamined) * kCapBytes;
        swept += static_cast<double>(s.sweptBytes);
    }
    return swept > 0 ? caps / swept : 0;
}

double
AdaptiveController::scanRate() const
{
    // Effective rate under the deterministic cost model: each epoch's
    // sweep takes the larger of its modelled CPU time and its DRAM
    // streaming time, plus a fixed startup — the same max() shape
    // sim::AnalyticalModel::sweepSeconds uses.
    double swept = 0;
    double seconds = 0;
    for (const EpochSample &s : window_) {
        if (s.sweptBytes == 0)
            continue;
        const double cpu = s.kernelCycles / config_.cpuHz;
        const double dram = static_cast<double>(s.sweptBytes) /
                            config_.dramBytesPerSec;
        swept += static_cast<double>(s.sweptBytes);
        seconds += std::max(cpu, dram) + config_.sweepStartupSeconds;
    }
    return seconds > 0 ? swept / seconds : 0;
}

ScheduleDecision
AdaptiveController::decide(const Pressure &now) const
{
    ScheduleDecision dec;
    dec.depth = config_.tiers - 1;
    dec.minBirth = 0;

    // §6.1.3: overhead = F·D / (R·Q) — monotone decreasing in the
    // quarantine fraction Q, so within [minTriggerFraction, ceiling]
    // the optimum is always the allocator's configured ceiling. This
    // also keeps the trigger bit-equal to the static policies'
    // needsSweep() threshold.
    const double ceiling =
        now.quarantineCeiling > 0 ? now.quarantineCeiling
                                  : dec.triggerFraction;
    dec.triggerFraction =
        std::min(std::max(ceiling, config_.minTriggerFraction),
                 ceiling);

    dec.pagesPerSlice = std::clamp<size_t>(dec.pagesPerSlice,
                                           config_.minPagesPerSlice,
                                           config_.maxPagesPerSlice);
    dec.sweepThreads = 1;

    const double F = freeRate();
    const double R = scanRate();
    const double H = static_cast<double>(now.liveBytes);

    if (F > 0 && H > 0 && R > 0) {
        // Predicted epoch period: the quarantine refills trigger·H
        // bytes at F bytes/second.
        const double period = dec.triggerFraction * H / F;

        // Threads: keep the sweep's share of the period under
        // targetDuty. ceil() is monotone nondecreasing in F (period
        // shrinks as F grows), clamped at the knob bound.
        const uint64_t full_bytes = now.fullSweepBytes
                                        ? now.fullSweepBytes
                                        : now.liveBytes;
        const double sweep_sec1 =
            static_cast<double>(full_bytes) / R +
            config_.sweepStartupSeconds;
        double want = sweep_sec1 / (config_.targetDuty * period);
        want = std::clamp(
            want, 1.0, static_cast<double>(config_.maxSweepThreads));
        dec.sweepThreads =
            static_cast<unsigned>(std::ceil(want - 1e-12));

        // Slice size: one bounded pause should cost about
        // slicePeriodFraction of the period at the effective scan
        // rate — monotone nonincreasing in F, clamped at the bounds.
        double slice_pages = period * config_.slicePeriodFraction *
                             R / kPageBytes;
        slice_pages = std::clamp(
            slice_pages,
            static_cast<double>(config_.minPagesPerSlice),
            static_cast<double>(config_.maxPagesPerSlice));
        dec.pagesPerSlice = static_cast<size_t>(slice_pages);
    }

    // Hierarchical depth: a hot-tier scoped epoch runs only when the
    // hysteresis has promoted the hot tier AND the scoped sweep is
    // sound AND the model predicts a clear win — otherwise adaptive
    // degrades to exactly the full-depth epochs the static policies
    // run, which is what makes the policy_sweep gate unconditional.
    if (config_.tiers > 1 && hot_promoted_) {
        const uint64_t cutoff =
            now.epochSeq >= config_.tierAgeEpochs
                ? now.epochSeq - config_.tierAgeEpochs + 1
                : 1;
        // Soundness: stores before the listener attached are
        // unrecorded, and birth stamps saturate at
        // kBirthSaturated-1 — past either limit the scoped skip is
        // no longer provable and shallow epochs stop firing.
        bool ok = cutoff > now.attachSeq &&
                  cutoff < alloc::kBirthSaturated;
        // Economics: the tier-local walk must be shallowMargin×
        // smaller than the full-depth walk...
        ok = ok && now.hotBytes > 0 && now.fullSweepBytes > 0 &&
             static_cast<double>(now.fullSweepBytes) >=
                 config_.shallowMargin *
                     static_cast<double>(now.hotSweepBytes);
        // ...and releasing the hot bytes must actually clear the
        // quarantine pressure, or a full-depth epoch follows anyway.
        ok = ok &&
             static_cast<double>(now.quarantinedBytes) -
                     static_cast<double>(now.hotBytes) <
                 dec.triggerFraction * H;
        if (ok) {
            dec.depth = 0;
            dec.minBirth = static_cast<uint32_t>(cutoff);
        }
    }
    return dec;
}

// ---------------------------------------------------------------------
// TierMap
// ---------------------------------------------------------------------

void
TierMap::attach(mem::TaggedMemory &memory, uint64_t lo, uint64_t hi)
{
    CHERIVOKE_ASSERT(!memory_, "(TierMap attached twice)");
    memory_ = &memory;
    lo_ = lo;
    hi_ = hi;
    attach_seq_ = seq_;
    listener_id_ = memory.addCapStoreListener(
        lo, hi, [this](uint64_t addr) { onCapStore(addr); });
}

void
TierMap::detach()
{
    if (!memory_)
        return;
    memory_->removeCapStoreListener(listener_id_);
    memory_ = nullptr;
    listener_id_ = 0;
    page_seq_.clear();
}

uint32_t
TierMap::currentBirthStamp() const
{
    return static_cast<uint32_t>(
        std::min<uint64_t>(seq_, alloc::kBirthSaturated - 1));
}

bool
TierMap::pageMayHoldYoung(uint64_t page_addr, uint32_t min_birth) const
{
    if (min_birth == 0)
        return true; // unscoped: everything qualifies
    if (page_addr < lo_ || page_addr >= hi_)
        return true; // outside the tracked range: assume the worst
    if (min_birth <= attach_seq_)
        return true; // pre-attach stores were never recorded
    const auto it = page_seq_.find(page_addr & ~(kPageBytes - 1));
    if (it == page_seq_.end())
        return false; // no tagged store ever landed here
    return it->second >= min_birth;
}

uint64_t
TierMap::pagesAtOrAfter(uint32_t min_birth) const
{
    uint64_t pages = 0;
    for (const auto &entry : page_seq_) {
        if (entry.second >= min_birth)
            ++pages;
    }
    return pages;
}

void
TierMap::onCapStore(uint64_t addr)
{
    page_seq_[addr & ~(kPageBytes - 1)] = seq_;
}

// ---------------------------------------------------------------------
// The adaptive policy
// ---------------------------------------------------------------------

namespace {

/**
 * PolicyKind::Adaptive: per-domain controller + tier map, driving
 * decided epochs through the standard engine protocol. All inputs
 * are modelled (CostModelClock, epoch statistics, quarantine
 * contents), so runs replay bit-identically; backends that ignore
 * tier scope (color, objid) simply run every epoch full-depth.
 */
class AdaptivePolicy final : public RevocationPolicy
{
  public:
    explicit AdaptivePolicy(const AdaptiveConfig &config)
        : config_(config)
    {}

    ~AdaptivePolicy() override
    {
        // Engine teardown never retires domains: detach from every
        // allocator that outlives the engine (the same contract the
        // engine destructor honours for backend observers).
        for (auto &entry : states_) {
            DomainState &st = *entry.second;
            if (st.allocator &&
                st.allocator->tierStamper() == &st)
                st.allocator->setTierStamper(nullptr);
        }
    }

    PolicyKind kind() const override
    {
        return PolicyKind::Adaptive;
    }
    const char *name() const override { return "adaptive"; }
    bool needsLoadBarrier() const override { return false; }

    bool
    pump(RevocationEngine &engine,
         cache::Hierarchy *hierarchy) override
    {
        // Epoch-owner-wins drains route here with an epoch already
        // open (begun outside this policy): just advance it.
        if (engine.epochOpen()) {
            if (engine.step(engine.config().pagesPerSlice,
                            hierarchy) == 0)
                engine.finishEpoch();
            return true;
        }
        const size_t index = engine.activeDomain();
        if (!engine.domainBackend(index).needsRevocation())
            return false;
        DomainState &st = stateFor(engine, index);
        // First epoch at the decided depth; if a shallow epoch did
        // not release enough to clear pressure, escalate to full
        // depth — epochs are synchronous, so two rounds always
        // settle the quarantine back under its ceiling.
        for (int round = 0; round < 2; ++round) {
            if (!engine.domainBackend(index).needsRevocation())
                break;
            const AdaptiveController::Pressure pressure =
                measure(engine, index, st);
            ScheduleDecision dec = st.controller.decide(pressure);
            if (round > 0) {
                dec.depth = config_.tiers - 1;
                dec.minBirth = 0;
            }
            runDecided(engine, index, st, dec,
                       hotShare(pressure), hierarchy);
        }
        return true;
    }

    EpochStats
    runEpoch(RevocationEngine &engine,
             cache::Hierarchy *hierarchy) override
    {
        // Forced pauses (revokeNow, §3.7 strict mode) are always
        // full-depth: the caller wants every stale capability gone.
        const size_t index = engine.activeDomain();
        DomainState &st = stateFor(engine, index);
        const AdaptiveController::Pressure pressure =
            measure(engine, index, st);
        ScheduleDecision dec = st.controller.decide(pressure);
        dec.depth = config_.tiers - 1;
        dec.minBirth = 0;
        return runDecided(engine, index, st, dec,
                          hotShare(pressure), hierarchy);
    }

    void
    onDomainRetired(RevocationEngine &engine, size_t index) override
    {
        (void)engine;
        const auto it = states_.find(index);
        if (it == states_.end())
            return;
        DomainState &st = *it->second;
        if (st.allocator && st.allocator->tierStamper() == &st)
            st.allocator->setTierStamper(nullptr);
        st.tiers.detach();
        states_.erase(it);
    }

  private:
    struct DomainState final : alloc::TierStamper
    {
        explicit DomainState(const AdaptiveConfig &config)
            : controller(config)
        {}

        uint32_t
        currentBirthStamp() const override
        {
            return tiers.currentBirthStamp();
        }

        AdaptiveController controller;
        TierMap tiers;
        alloc::CherivokeAllocator *allocator = nullptr;
        uint64_t lastFreed = 0;   //!< cumulative freed at last sample
        uint64_t lastClockNs = 0; //!< model time at last sample
        uint64_t lastFullSweepBytes = 0;
    };

    /** Total bytes ever freed on the domain: what still sits in
     *  quarantine plus everything epochs have released. */
    static uint64_t
    cumulativeFreed(RevocationEngine &engine, size_t index)
    {
        return engine.domainAllocator(index).quarantinedBytes() +
               engine.domainTotals(index).bytesReleased;
    }

    static double
    hotShare(const AdaptiveController::Pressure &pressure)
    {
        return pressure.quarantinedBytes
                   ? static_cast<double>(pressure.hotBytes) /
                         static_cast<double>(
                             pressure.quarantinedBytes)
                   : 0;
    }

    DomainState &
    stateFor(RevocationEngine &engine, size_t index)
    {
        std::unique_ptr<DomainState> &slot = states_[index];
        alloc::CherivokeAllocator &allocator =
            engine.domainAllocator(index);
        if (slot && slot->allocator != &allocator) {
            // The slot was rebound without a retirement callback:
            // the old allocator is gone (never touch it), but the
            // memory outlives tenants, so drop the store listener
            // before starting fresh.
            slot->tiers.detach();
            slot.reset();
        }
        if (!slot) {
            slot = std::make_unique<DomainState>(config_);
            slot->allocator = &allocator;
            allocator.setTierStamper(slot.get());
            // Track the whole address space: stores outside the
            // domain's segments merely mark extra pages young
            // (conservative), while the worklist only ever covers
            // the domain's own segments.
            slot->tiers.attach(engine.domainSpace(index).memory(), 0,
                               ~static_cast<uint64_t>(0));
            slot->lastClockNs = engine.modelClock().peekNs();
            slot->lastFreed = cumulativeFreed(engine, index);
        }
        return *slot;
    }

    AdaptiveController::Pressure
    measure(RevocationEngine &engine, size_t index,
            DomainState &st) const
    {
        const alloc::CherivokeAllocator &allocator =
            engine.domainAllocator(index);
        AdaptiveController::Pressure pressure;
        pressure.quarantinedBytes = allocator.quarantinedBytes();
        pressure.liveBytes = allocator.liveBytes();
        pressure.quarantineCeiling =
            allocator.config().quarantineFraction;
        pressure.epochSeq = st.tiers.seq();
        pressure.attachSeq = st.tiers.attachSeq();
        const uint64_t cutoff =
            pressure.epochSeq >= config_.tierAgeEpochs
                ? pressure.epochSeq - config_.tierAgeEpochs + 1
                : 1;
        pressure.hotBytes = allocator.quarantine().bytesBornSince(
            static_cast<uint32_t>(
                std::min<uint64_t>(cutoff, alloc::kBirthSaturated)));
        pressure.hotSweepBytes =
            st.tiers.pagesAtOrAfter(static_cast<uint32_t>(
                std::min<uint64_t>(cutoff,
                                   alloc::kBirthSaturated))) *
            kPageBytes;
        pressure.fullSweepBytes = st.lastFullSweepBytes
                                      ? st.lastFullSweepBytes
                                      : allocator.footprintBytes();
        return pressure;
    }

    EpochStats
    runDecided(RevocationEngine &engine, size_t index,
               DomainState &st, const ScheduleDecision &dec,
               double hot_share, cache::Hierarchy *hierarchy)
    {
        RevocationBackend &backend = engine.domainBackend(index);
        EpochScope scope;
        if (dec.minBirth != 0) {
            scope.minBirth = dec.minBirth;
            const TierMap *tiers = &st.tiers;
            const uint32_t min_birth = dec.minBirth;
            scope.pageQualifies = [tiers,
                                   min_birth](uint64_t page_addr) {
                return tiers->pageMayHoldYoung(page_addr, min_birth);
            };
        }
        backend.setEpochScope(scope);
        // The sweep thread count is a performance knob only: the
        // sharded sweep reports statistics bit-identical to the
        // serial one, so changing it never perturbs modelled output.
        SweepOptions &options = engine.sweeper().options();
        const unsigned prev_threads = options.threads;
        options.threads = dec.sweepThreads;

        engine.beginEpoch();
        while (engine.step(dec.pagesPerSlice, hierarchy) > 0) {
        }
        engine.finishEpoch();

        options.threads = prev_threads;
        backend.setEpochScope(EpochScope{});

        const EpochStats &epoch = engine.lastEpoch();
        if (dec.minBirth == 0)
            st.lastFullSweepBytes = epoch.sweep.bytesSwept();

        EpochSample sample;
        const uint64_t now_ns = engine.modelClock().peekNs();
        sample.dtSeconds =
            static_cast<double>(now_ns - st.lastClockNs) * 1e-9;
        st.lastClockNs = now_ns;
        const uint64_t freed = cumulativeFreed(engine, index);
        sample.freedBytes =
            freed >= st.lastFreed ? freed - st.lastFreed : 0;
        st.lastFreed = freed;
        sample.liveBytes =
            engine.domainAllocator(index).liveBytes();
        sample.sweptBytes = epoch.sweep.bytesSwept();
        sample.capsExamined = epoch.sweep.capsExamined;
        sample.kernelCycles = epoch.sweep.kernelCycles;
        sample.releasedBytes = epoch.bytesReleased;
        sample.hotShare = hot_share;
        st.controller.recordSample(sample);
        st.tiers.advanceEpoch();
        return epoch;
    }

    AdaptiveConfig config_;
    /** Domain index -> state. unique_ptr keeps the TierStamper
     *  address stable across rehashes. Never iterated into ordered
     *  output (the destructor's detach order does not matter). */
    std::unordered_map<size_t, std::unique_ptr<DomainState>> states_;
};

} // namespace

std::unique_ptr<RevocationPolicy>
makeAdaptivePolicy(const AdaptiveConfig &config)
{
    return std::make_unique<AdaptivePolicy>(config);
}

} // namespace revoke
} // namespace cherivoke

/**
 * @file
 * Sweep-loop kernel variants and their per-iteration cost models
 * (paper §3.3 and §6.2, figure 7).
 *
 * All three kernels are functionally identical — they examine every
 * capability word, look up its base in the shadow map, and clear
 * the tags of dangling references. They differ in modelled cost:
 *
 *  - Naive: the §3.3 listing compiled directly; two data-dependent
 *    branches that the predictor frequently misses.
 *  - Unrolled: manually unrolled and software-pipelined; fewer
 *    per-iteration overheads, branches converted to conditional
 *    moves.
 *  - Vector: AVX2-style, one whole cache line per iteration in ~28
 *    instructions, with an unconditional store (memcpy-rate bound).
 *
 * The cost parameters are calibrated per machine profile in
 * sim::MachineProfile so figure 7's compute-vs-bandwidth crossover
 * reproduces.
 */

#ifndef CHERIVOKE_REVOKE_SWEEP_LOOP_HH
#define CHERIVOKE_REVOKE_SWEEP_LOOP_HH

#include <cstdint>
#include <string>

namespace cherivoke {
namespace revoke {

/** Which sweeping kernel the sweeper models. */
enum class SweepKernel
{
    Naive,    //!< §3.3 listing with data-dependent branches
    Unrolled, //!< unrolled + manually pipelined
    Vector,   //!< AVX2 line-at-a-time with unconditional store
};

const char *sweepKernelName(SweepKernel kernel);

/** Per-kernel cost parameters (cycles; calibrated per profile). */
struct KernelCosts
{
    /** Cycles to process one capability-sized word that holds no tag. */
    double cyclesPerUntaggedWord = 1.0;
    /** Extra cycles for a tagged word (shadow lookup + possible
     *  conditional store). */
    double cyclesPerTaggedWord = 4.0;
    /** Branch-misprediction penalty charged per tagged word for
     *  branchy kernels (0 for branchless). */
    double mispredictPenalty = 0.0;
    /** Fraction of tagged words that mispredict. */
    double mispredictRate = 0.0;
    /** Fixed per-line overhead (loop control, address generation). */
    double cyclesPerLine = 0.0;
};

/** Default cost models for a wide out-of-order core (x86 profile). */
KernelCosts defaultCosts(SweepKernel kernel);

/**
 * Cycles the kernel spends processing one 64-byte line containing
 * @p tagged_words tagged capability words (0..4).
 */
double kernelCyclesForLine(const KernelCosts &costs,
                           unsigned tagged_words);

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_SWEEP_LOOP_HH

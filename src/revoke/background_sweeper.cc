#include "revoke/background_sweeper.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>

#include "alloc/shadow_map.hh"
#include "cap/capability.hh"
#include "mem/tagged_memory.hh"
#include "support/logging.hh"
#include "support/units.hh"

namespace cherivoke {
namespace revoke {

FrozenWorklist
buildFrozenWorklist(const mem::TaggedMemory &memory,
                    const std::vector<uint64_t> &pages)
{
    FrozenWorklist wl;
    wl.pages.reserve(pages.size());
    for (const uint64_t page_base : pages) {
        FrozenWorklist::PageEntry entry;
        entry.pageBase = page_base;
        entry.firstCap = static_cast<uint32_t>(wl.caps.size());
        if (const mem::Page *page = memory.pageIfPresent(page_base)) {
            for (unsigned w = 0; w < kGranulesPerPage / 64; ++w) {
                uint64_t word = page->tags[w];
                while (word) {
                    const unsigned bit = static_cast<unsigned>(
                        std::countr_zero(word));
                    word &= word - 1;
                    const uint64_t off =
                        (uint64_t{w} * 64 + bit) * kGranuleBytes;
                    FrozenWorklist::CapEntry cap;
                    std::memcpy(&cap.lo, page->data.data() + off, 8);
                    std::memcpy(&cap.hi,
                                page->data.data() + off + 8, 8);
                    wl.caps.push_back(cap);
                }
            }
        }
        entry.capCount = static_cast<uint32_t>(wl.caps.size()) -
                         entry.firstCap;
        wl.pages.push_back(entry);
    }
    return wl;
}

BackgroundSweeper::BackgroundSweeper()
{
    worker_ = std::thread([this] { workerMain(); });
}

BackgroundSweeper::~BackgroundSweeper()
{
    cancel();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    job_cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
}

void
BackgroundSweeper::dispatch(FrozenWorklist worklist,
                            const alloc::ShadowMap *shadow,
                            size_t pages_per_slice, Inject inject,
                            uint64_t slow_factor)
{
    std::lock_guard<std::mutex> lock(mutex_);
    CHERIVOKE_ASSERT(state_ != State::Running &&
                         state_ != State::Stalled && !job_pending_,
                     "(background sweeper: dispatch over an "
                     "in-flight job)");
    worklist_ = std::move(worklist);
    shadow_ = shadow;
    pages_per_slice_ = pages_per_slice ? pages_per_slice : 1;
    inject_ = inject;
    slow_credits_ = inject == Inject::Slow ? slow_factor : 0;
    next_ = 0;
    logs_.clear();
    watermark_.store(0, std::memory_order_release);
    state_ = State::Running;
    job_pending_ = true;
    cancel_requested_ = false;
    job_cv_.notify_all();
}

void
BackgroundSweeper::nudge()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (state_ != State::Stalled || slow_credits_ == 0)
        return;
    if (--slow_credits_ > 0)
        return;
    // The last credit: wake the worker and wait for it to leave the
    // stalled state before returning, so the supervisor's next
    // rendezvous observes Running/Done deterministically rather than
    // racing the wakeup.
    job_cv_.notify_all();
    progress_cv_.wait(lock,
                      [this] { return state_ != State::Stalled; });
}

void
BackgroundSweeper::cancel()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (state_ != State::Running && state_ != State::Stalled)
        return;
    cancel_requested_ = true;
    job_cv_.notify_all();
    progress_cv_.wait(lock, [this] {
        return state_ != State::Running && state_ != State::Stalled;
    });
}

BackgroundSweeper::State
BackgroundSweeper::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

bool
BackgroundSweeper::waitProgress(uint64_t target_pages,
                                uint64_t timeout_ns)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(timeout_ns);
    while (true) {
        if (watermark_.load(std::memory_order_acquire) >=
            target_pages)
            return true;
        if (state_ != State::Running)
            return false;
        if (progress_cv_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
            return watermark_.load(std::memory_order_acquire) >=
                   target_pages;
        }
    }
}

void
BackgroundSweeper::workerMain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        job_cv_.wait(lock,
                     [this] { return shutdown_ || job_pending_; });
        if (shutdown_)
            return;
        job_pending_ = false;

        if (inject_ == Inject::Crash) {
            // Modelled thread death: no slice, no heartbeat, the
            // supervisor sees a corpse at the next rendezvous.
            state_ = State::Crashed;
            progress_cv_.notify_all();
            continue;
        }
        if (inject_ == Inject::Stall || inject_ == Inject::Slow) {
            if (inject_ == Inject::Stall)
                slow_credits_ = ~uint64_t{0}; // nudges never help
            state_ = State::Stalled;
            progress_cv_.notify_all();
            job_cv_.wait(lock, [this] {
                return shutdown_ || cancel_requested_ ||
                       slow_credits_ == 0;
            });
            if (shutdown_)
                return;
            if (cancel_requested_) {
                state_ = State::Cancelled;
                cancel_requested_ = false;
                progress_cv_.notify_all();
                continue;
            }
            state_ = State::Running;
        }

        while (next_ < worklist_.pages.size() &&
               !cancel_requested_) {
            const size_t first = next_;
            const size_t end =
                std::min(first + pages_per_slice_,
                         worklist_.pages.size());
            lock.unlock();
            // Off the lock: the snapshot is immutable for the
            // job's lifetime and the shadow is frozen — the only
            // shared memory this touches is shadow bytes, via
            // lock-free pure reads, genuinely racing the
            // mutator's load-barrier probes.
            SliceLog log = sweepSlice(first, end);
            lock.lock();
            logs_.push_back(log);
            next_ = end;
            watermark_.store(end, std::memory_order_release);
            heartbeats_.fetch_add(1, std::memory_order_release);
            progress_cv_.notify_all();
        }

        // A fully-swept worklist is Done even if a cancel raced the
        // final slice (or an empty job): cancel pre-empts remaining
        // work, it doesn't un-finish completed work.
        if (next_ < worklist_.pages.size()) {
            state_ = State::Cancelled;
        } else {
            state_ = State::Done;
        }
        cancel_requested_ = false;
        progress_cv_.notify_all();
    }
}

BackgroundSweeper::SliceLog
BackgroundSweeper::sweepSlice(size_t first, size_t end) const
{
    SliceLog log;
    log.firstPage = first;
    log.pages = end - first;
    for (size_t p = first; p < end; ++p) {
        const FrozenWorklist::PageEntry &page = worklist_.pages[p];
        for (uint32_t i = 0; i < page.capCount; ++i) {
            const FrozenWorklist::CapEntry &cap =
                worklist_.caps[page.firstCap + i];
            const uint64_t base =
                cap::Capability::decodeBase(cap.lo, cap.hi);
            ++log.capsExamined;
            if (shadow_->isRevoked(base))
                ++log.capsRevoked;
        }
    }
    return log;
}

} // namespace revoke
} // namespace cherivoke

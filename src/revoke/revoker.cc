#include "revoke/revoker.hh"

namespace cherivoke {
namespace revoke {

bool
Revoker::maybeRevoke(cache::Hierarchy *hierarchy)
{
    if (!allocator_->needsSweep())
        return false;
    revokeNow(hierarchy);
    return true;
}

EpochStats
Revoker::freeAndRevoke(const cap::Capability &capability,
                       cache::Hierarchy *hierarchy)
{
    allocator_->free(capability);
    return revokeNow(hierarchy);
}

EpochStats
Revoker::revokeNow(cache::Hierarchy *hierarchy)
{
    EpochStats epoch;
    epoch.bytesReleased = allocator_->quarantinedBytes();
    epoch.paint = allocator_->prepareSweep();
    epoch.sweep = sweeper_.sweep(*space_, allocator_->shadowMap(),
                                 hierarchy);
    epoch.internalFrees = allocator_->finishSweep();

    ++totals_.epochs;
    totals_.paint += epoch.paint;
    totals_.sweep += epoch.sweep;
    totals_.internalFrees += epoch.internalFrees;
    totals_.bytesReleased += epoch.bytesReleased;
    last_ = epoch;
    return epoch;
}

} // namespace revoke
} // namespace cherivoke

#include "revoke/revocation_engine.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cherivoke {
namespace revoke {

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::StopTheWorld: return "stop-the-world";
      case PolicyKind::Incremental: return "incremental";
      case PolicyKind::Concurrent: return "concurrent";
    }
    return "unknown";
}

bool
parsePolicy(const std::string &name, PolicyKind &out)
{
    if (name == "stw" || name == "stop-the-world") {
        out = PolicyKind::StopTheWorld;
        return true;
    }
    if (name == "incremental") {
        out = PolicyKind::Incremental;
        return true;
    }
    if (name == "concurrent") {
        out = PolicyKind::Concurrent;
        return true;
    }
    return false;
}

bool
RevocationPolicy::pump(RevocationEngine &engine,
                       cache::Hierarchy *hierarchy)
{
    if (!engine.quarantinePressure())
        return false;
    runEpoch(engine, hierarchy);
    return true;
}

EpochStats
RevocationPolicy::runEpoch(RevocationEngine &engine,
                           cache::Hierarchy *hierarchy)
{
    const size_t slice = engine.config().pagesPerSlice;
    engine.beginEpoch();
    while (engine.step(slice, hierarchy) > 0) {
    }
    engine.finishEpoch();
    return engine.lastEpoch();
}

namespace {

/** The paper's measured configuration: when the quarantine fills,
 *  the world stops and a whole epoch runs as a single pause. */
class StopTheWorldPolicy final : public RevocationPolicy
{
  public:
    PolicyKind kind() const override
    {
        return PolicyKind::StopTheWorld;
    }
    const char *name() const override { return "stop-the-world"; }
    bool needsLoadBarrier() const override { return false; }

    EpochStats
    runEpoch(RevocationEngine &engine,
             cache::Hierarchy *hierarchy) override
    {
        engine.beginEpoch();
        engine.step(SIZE_MAX, hierarchy);
        engine.finishEpoch();
        return engine.lastEpoch();
    }
};

/** §3.5 + Cornucopia load barrier: a full epoch runs at the trigger
 *  point, but as a sequence of bounded pauses (the base-class
 *  behaviour exactly). */
class IncrementalPolicy final : public RevocationPolicy
{
  public:
    PolicyKind kind() const override
    {
        return PolicyKind::Incremental;
    }
    const char *name() const override { return "incremental"; }
    bool needsLoadBarrier() const override { return true; }
};

/** Mutator-assist scheduling: the epoch stays open and every pump
 *  advances it by one slice, interleaving sweep work with program
 *  progress. The load barrier keeps this sound. */
class ConcurrentPolicy final : public RevocationPolicy
{
  public:
    PolicyKind kind() const override
    {
        return PolicyKind::Concurrent;
    }
    const char *name() const override { return "concurrent"; }
    bool needsLoadBarrier() const override { return true; }

    bool
    pump(RevocationEngine &engine,
         cache::Hierarchy *hierarchy) override
    {
        if (!engine.epochOpen()) {
            if (!engine.quarantinePressure())
                return false;
            engine.beginEpoch();
        }
        if (engine.step(engine.config().pagesPerSlice, hierarchy) ==
            0) {
            engine.finishEpoch();
            return true;
        }
        return false;
    }
};

} // namespace

std::unique_ptr<RevocationPolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::StopTheWorld:
        return std::make_unique<StopTheWorldPolicy>();
      case PolicyKind::Incremental:
        return std::make_unique<IncrementalPolicy>();
      case PolicyKind::Concurrent:
        return std::make_unique<ConcurrentPolicy>();
    }
    panic("unknown policy kind");
}

RevocationEngine::RevocationEngine(
    alloc::CherivokeAllocator &allocator, mem::AddressSpace &space,
    EngineConfig config)
    : allocator_(&allocator), space_(&space),
      sweeper_(config.sweep), config_(config),
      policy_(makePolicy(config.policy))
{
    CHERIVOKE_ASSERT(config_.pagesPerSlice > 0);
    CHERIVOKE_ASSERT(config_.paintShards > 0);
}

RevocationEngine::RevocationEngine(
    alloc::CherivokeAllocator &allocator, mem::AddressSpace &space,
    SweepOptions sweep)
    : RevocationEngine(allocator, space,
                       EngineConfig{sweep, PolicyKind::StopTheWorld,
                                    64, 1})
{}

RevocationEngine::~RevocationEngine()
{
    // Never leave a dangling barrier behind.
    if (barrier_on_)
        space_->memory().removeLoadBarrier();
}

bool
RevocationEngine::quarantinePressure() const
{
    return allocator_->needsSweep();
}

bool
RevocationEngine::maybeRevoke(cache::Hierarchy *hierarchy)
{
    return policy_->pump(*this, hierarchy);
}

EpochStats
RevocationEngine::revokeNow(cache::Hierarchy *hierarchy)
{
    if (open_)
        drain(hierarchy);
    return policy_->runEpoch(*this, hierarchy);
}

EpochStats
RevocationEngine::freeAndRevoke(const cap::Capability &capability,
                                cache::Hierarchy *hierarchy)
{
    allocator_->free(capability);
    // An open epoch was frozen before this free: drain it, then run
    // a fresh epoch that covers the allocation just freed.
    return revokeNow(hierarchy);
}

EpochStats
RevocationEngine::drain(cache::Hierarchy *hierarchy)
{
    if (open_) {
        while (step(config_.pagesPerSlice, hierarchy) > 0) {
        }
        finishEpoch();
    }
    return last_;
}

void
RevocationEngine::beginEpoch()
{
    CHERIVOKE_ASSERT(!open_, "(epoch already open)");
    open_ = true;
    epoch_ = EpochStats{};
    epoch_.bytesReleased = allocator_->quarantinedBytes();

    // Freeze + paint this epoch's revocation set (sharded shadow-map
    // views when configured).
    epoch_.paint = allocator_->prepareSweep(config_.paintShards);

    if (policy_->needsLoadBarrier()) {
        // The barrier: loads of painted-base capabilities are
        // stripped. The shadow map is read-only for the duration of
        // the epoch (later frees wait for the next epoch), so the
        // predicate is stable.
        const alloc::ShadowMap &shadow = allocator_->shadowMap();
        space_->memory().installLoadBarrier([&shadow](uint64_t base) {
            return shadow.isRevoked(base);
        });
        barrier_on_ = true;
    }

    // Registers first: the mutator continues running out of them.
    epoch_.sweep +=
        sweeper_.sweepRegisters(*space_, allocator_->shadowMap());

    worklist_ = sweeper_.buildWorklist(*space_, epoch_.sweep);
    next_ = 0;
}

size_t
RevocationEngine::step(size_t max_pages, cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(open_, "(step without an open epoch)");
    if (next_ < worklist_.size() && max_pages > 0) {
        const size_t end = next_ + std::min(max_pages,
                                            worklist_.size() - next_);
        epoch_.sweep += sweeper_.sweepPages(
            *space_, allocator_->shadowMap(), worklist_, next_, end,
            hierarchy);
        next_ = end;
        ++epoch_.slices;
    }
    return worklist_.size() - next_;
}

void
RevocationEngine::finishEpoch()
{
    CHERIVOKE_ASSERT(open_, "(finish without an open epoch)");
    CHERIVOKE_ASSERT(next_ == worklist_.size(),
                     "(worklist not drained: call step() to "
                     "completion first)");
    if (barrier_on_) {
        // The registers once more (they were swept at begin and the
        // barrier kept them clean, but it is cheap), then the
        // barrier comes off.
        epoch_.sweep +=
            sweeper_.sweepRegisters(*space_, allocator_->shadowMap());
        space_->memory().removeLoadBarrier();
        barrier_on_ = false;
    }
    epoch_.internalFrees = allocator_->finishSweep();
    open_ = false;
    worklist_.clear();
    next_ = 0;

    ++totals_.epochs;
    totals_.paint += epoch_.paint;
    totals_.sweep += epoch_.sweep;
    totals_.internalFrees += epoch_.internalFrees;
    totals_.bytesReleased += epoch_.bytesReleased;
    totals_.slices += epoch_.slices;
    last_ = epoch_;
}

EpochStats
RevocationEngine::revokeIncrementally(size_t pages_per_step,
                                      cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(pages_per_step > 0);
    beginEpoch();
    while (step(pages_per_step, hierarchy) > 0) {
    }
    finishEpoch();
    return last_;
}

} // namespace revoke
} // namespace cherivoke

#include "revoke/revocation_engine.hh"

#include <algorithm>

#include "revoke/background_sweeper.hh"
#include "support/logging.hh"
#include "support/units.hh"

namespace cherivoke {
namespace revoke {

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::StopTheWorld: return "stop-the-world";
      case PolicyKind::Incremental: return "incremental";
      case PolicyKind::Concurrent: return "concurrent";
      case PolicyKind::Adaptive: return "adaptive";
    }
    return "unknown";
}

const std::vector<PolicyKind> &
allPolicies()
{
    static const std::vector<PolicyKind> kAll = {
        PolicyKind::StopTheWorld,
        PolicyKind::Incremental,
        PolicyKind::Concurrent,
        PolicyKind::Adaptive,
    };
    return kAll;
}

bool
parsePolicy(const std::string &name, PolicyKind &out)
{
    if (name == "stw" || name == "stop-the-world") {
        out = PolicyKind::StopTheWorld;
        return true;
    }
    if (name == "incremental") {
        out = PolicyKind::Incremental;
        return true;
    }
    if (name == "concurrent") {
        out = PolicyKind::Concurrent;
        return true;
    }
    if (name == "adaptive") {
        out = PolicyKind::Adaptive;
        return true;
    }
    return false;
}

bool
RevocationPolicy::pump(RevocationEngine &engine,
                       cache::Hierarchy *hierarchy)
{
    if (!engine.quarantinePressure())
        return false;
    runEpoch(engine, hierarchy);
    return true;
}

EpochStats
RevocationPolicy::runEpoch(RevocationEngine &engine,
                           cache::Hierarchy *hierarchy)
{
    const size_t slice = engine.config().pagesPerSlice;
    engine.beginEpoch();
    while (engine.step(slice, hierarchy) > 0) {
    }
    engine.finishEpoch();
    return engine.lastEpoch();
}

namespace {

/** The paper's measured configuration: when the quarantine fills,
 *  the world stops and a whole epoch runs as a single pause. */
class StopTheWorldPolicy final : public RevocationPolicy
{
  public:
    PolicyKind kind() const override
    {
        return PolicyKind::StopTheWorld;
    }
    const char *name() const override { return "stop-the-world"; }
    bool needsLoadBarrier() const override { return false; }

    EpochStats
    runEpoch(RevocationEngine &engine,
             cache::Hierarchy *hierarchy) override
    {
        engine.beginEpoch();
        engine.step(SIZE_MAX, hierarchy);
        engine.finishEpoch();
        return engine.lastEpoch();
    }
};

/** §3.5 + Cornucopia load barrier: a full epoch runs at the trigger
 *  point, but as a sequence of bounded pauses (the base-class
 *  behaviour exactly). */
class IncrementalPolicy final : public RevocationPolicy
{
  public:
    PolicyKind kind() const override
    {
        return PolicyKind::Incremental;
    }
    const char *name() const override { return "incremental"; }
    bool needsLoadBarrier() const override { return true; }
};

/** Mutator-assist scheduling: the epoch stays open and every pump
 *  advances it by one slice, interleaving sweep work with program
 *  progress. The load barrier keeps this sound. */
class ConcurrentPolicy final : public RevocationPolicy
{
  public:
    PolicyKind kind() const override
    {
        return PolicyKind::Concurrent;
    }
    const char *name() const override { return "concurrent"; }
    bool needsLoadBarrier() const override { return true; }

    bool
    pump(RevocationEngine &engine,
         cache::Hierarchy *hierarchy) override
    {
        if (!engine.epochOpen()) {
            if (!engine.quarantinePressure())
                return false;
            engine.beginEpoch();
        }
        if (engine.step(engine.config().pagesPerSlice, hierarchy) ==
            0) {
            engine.finishEpoch();
            return true;
        }
        return false;
    }
};

} // namespace

std::unique_ptr<RevocationPolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::StopTheWorld:
        return std::make_unique<StopTheWorldPolicy>();
      case PolicyKind::Incremental:
        return std::make_unique<IncrementalPolicy>();
      case PolicyKind::Concurrent:
        return std::make_unique<ConcurrentPolicy>();
      case PolicyKind::Adaptive:
        return makeAdaptivePolicy();
    }
    panic("unknown policy kind");
}

namespace {

/** makePolicy, but routing the adaptive kind through the engine's
 *  configured tunables. */
std::unique_ptr<RevocationPolicy>
makePolicyFor(PolicyKind kind, const AdaptiveConfig &adaptive)
{
    if (kind == PolicyKind::Adaptive)
        return makeAdaptivePolicy(adaptive);
    return makePolicy(kind);
}

} // namespace

RevocationEngine::RevocationEngine(
    alloc::CherivokeAllocator &allocator, mem::AddressSpace &space,
    EngineConfig config)
    : sweeper_(config.sweep), config_(config),
      policy_(makePolicyFor(config.policy, config.adaptive)),
      sweeper_plan_(config.sweeperPlan)
{
    CHERIVOKE_ASSERT(config_.pagesPerSlice > 0);
    CHERIVOKE_ASSERT(config_.paintShards > 0);
    domains_.push_back(Domain{&allocator, &space, EngineTotals{},
                              nullptr, nullptr, false});
    attachBackend(0, config_.backend);
}

RevocationEngine::RevocationEngine(
    alloc::CherivokeAllocator &allocator, mem::AddressSpace &space,
    SweepOptions sweep)
    : RevocationEngine(allocator, space,
                       EngineConfig{sweep, PolicyKind::StopTheWorld,
                                    64, 1})
{}

RevocationEngine::~RevocationEngine()
{
    // The background worker may still hold the open epoch's frozen
    // snapshot and be probing its shadow: join it before any
    // barrier/shadow teardown below.
    if (bg_)
        bg_->cancel();
    // Never leave a dangling barrier behind, and detach from every
    // allocator that may outlive the engine.
    for (Domain &dom : domains_) {
        if (dom.backend)
            dom.backend->releaseBarrier();
        if (dom.allocator &&
            dom.allocator->observer() == dom.backend.get())
            dom.allocator->setObserver(nullptr);
    }
}

void
RevocationEngine::attachBackend(size_t index, BackendKind kind)
{
    Domain &dom = domains_[index];
    dom.backend = makeBackend(kind, config_.backendConfig);
    dom.backend->bind(BackendContext{dom.allocator, dom.space,
                                     &sweeper_, config_.paintShards});
    dom.allocator->setObserver(dom.backend.get());
}

size_t
RevocationEngine::addDomain(alloc::CherivokeAllocator &allocator,
                            mem::AddressSpace &space)
{
    return bindDomain(domains_.size(), allocator, space);
}

size_t
RevocationEngine::bindDomain(size_t index,
                             alloc::CherivokeAllocator &allocator,
                             mem::AddressSpace &space)
{
    CHERIVOKE_ASSERT(index <= domains_.size(),
                     "(bindDomain beyond the next fresh slot)");
    if (index == domains_.size()) {
        domains_.push_back(Domain{&allocator, &space, EngineTotals{},
                                  nullptr, nullptr, false});
    } else {
        Domain &dom = domains_[index];
        CHERIVOKE_ASSERT(dom.retired,
                         "(bindDomain over a live domain)");
        CHERIVOKE_ASSERT(!open_ || epoch_domain_ != index,
                         "(rebinding the open epoch's domain)");
        dom = Domain{&allocator, &space, EngineTotals{}, nullptr,
                     nullptr, false};
        supervisor_.resetStrikes(index);
    }
    attachBackend(index, config_.backend);
    return index;
}

void
RevocationEngine::setDomainPolicy(size_t index, PolicyKind kind)
{
    CHERIVOKE_ASSERT(index < domains_.size() &&
                     !domains_[index].retired);
    CHERIVOKE_ASSERT(!open_ || epoch_domain_ != index,
                     "(policy change under an open epoch)");
    domains_[index].policy =
        kind == config_.policy
            ? nullptr
            : makePolicyFor(kind, config_.adaptive);
}

void
RevocationEngine::setDomainPolicyObject(
    size_t index, std::unique_ptr<RevocationPolicy> policy)
{
    CHERIVOKE_ASSERT(index < domains_.size() &&
                     !domains_[index].retired);
    CHERIVOKE_ASSERT(!open_ || epoch_domain_ != index,
                     "(policy change under an open epoch)");
    domains_[index].policy = std::move(policy);
}

void
RevocationEngine::setDomainBackend(size_t index, BackendKind kind)
{
    CHERIVOKE_ASSERT(index < domains_.size() &&
                     !domains_[index].retired);
    CHERIVOKE_ASSERT(!open_ || epoch_domain_ != index,
                     "(backend change under an open epoch)");
    attachBackend(index, kind);
}

RevocationBackend &
RevocationEngine::domainBackend(size_t index)
{
    CHERIVOKE_ASSERT(index < domains_.size() &&
                     domains_[index].backend);
    return *domains_[index].backend;
}

const RevocationBackend &
RevocationEngine::domainBackend(size_t index) const
{
    CHERIVOKE_ASSERT(index < domains_.size() &&
                     domains_[index].backend);
    return *domains_[index].backend;
}

void
RevocationEngine::notePointerUse(uint64_t n)
{
    notePointerUse(active_, n);
}

void
RevocationEngine::notePointerUse(size_t domain, uint64_t n)
{
    CHERIVOKE_ASSERT(domain < domains_.size() &&
                     !domains_[domain].retired);
    domains_[domain].backend->onPointerUse(n);
}

RevocationPolicy &
RevocationEngine::domainPolicy(size_t index)
{
    CHERIVOKE_ASSERT(index < domains_.size());
    Domain &dom = domains_[index];
    return dom.policy ? *dom.policy : *policy_;
}

void
RevocationEngine::drainDomain(size_t index, cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(index < domains_.size());
    if (open_ && epoch_domain_ == index)
        drain(hierarchy);
}

void
RevocationEngine::retireDomain(size_t index,
                               cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(index < domains_.size());
    Domain &dom = domains_[index];
    CHERIVOKE_ASSERT(!dom.retired, "(retireDomain twice)");
    drainDomain(index, hierarchy);
    // Let the governing policy drop per-domain state while the
    // allocator is still alive (the adaptive policy uninstalls its
    // birth stamper and store listener here).
    domainPolicy(index).onDomainRetired(*this, index);
    dom.retired = true;
    if (dom.allocator &&
        dom.allocator->observer() == dom.backend.get())
        dom.allocator->setObserver(nullptr);
    dom.allocator = nullptr;
    dom.space = nullptr;
    dom.policy.reset();
    dom.backend.reset();
    CHERIVOKE_ASSERT(active_ != index || allRetired(),
                     "(retiring the active domain with others "
                     "still live: selectDomain elsewhere first)");
}

bool
RevocationEngine::allRetired() const
{
    for (const Domain &dom : domains_) {
        if (!dom.retired)
            return false;
    }
    return true;
}

void
RevocationEngine::selectDomain(size_t index)
{
    CHERIVOKE_ASSERT(index < domains_.size());
    CHERIVOKE_ASSERT(!domains_[index].retired,
                     "(selectDomain on a retired domain)");
    active_ = index;
}

const EngineTotals &
RevocationEngine::domainTotals(size_t index) const
{
    CHERIVOKE_ASSERT(index < domains_.size());
    return domains_[index].totals;
}

bool
RevocationEngine::quarantinePressure() const
{
    return domains_[active_].backend->needsRevocation();
}

size_t
RevocationEngine::pagesRemaining() const
{
    return open_ ? domains_[epoch_domain_].backend->pagesRemaining()
                 : 0;
}

bool
RevocationEngine::maybeRevoke(cache::Hierarchy *hierarchy)
{
    // Epoch-owner-wins arbitration: while an epoch is open, every
    // pump advances it under the owning domain's policy — so a
    // stop-the-world neighbour's allocator ops assist a concurrent
    // tenant's in-flight sweep instead of stacking a second epoch.
    const size_t domain = open_ ? epoch_domain_ : active_;
    return domainPolicy(domain).pump(*this, hierarchy);
}

EpochStats
RevocationEngine::revokeNow(cache::Hierarchy *hierarchy)
{
    // A forced pause (global-scope sweep, §3.7 strict mode) first
    // completes whatever per-tenant epoch is in flight — credited to
    // its own domain — then runs the requesting domain's epoch under
    // the requesting domain's policy.
    if (open_)
        drain(hierarchy);
    return domainPolicy(active_).runEpoch(*this, hierarchy);
}

EpochStats
RevocationEngine::freeAndRevoke(const cap::Capability &capability,
                                cache::Hierarchy *hierarchy)
{
    allocator().free(capability);
    // An open epoch was frozen before this free: drain it, then run
    // a fresh epoch that covers the allocation just freed.
    return revokeNow(hierarchy);
}

EpochStats
RevocationEngine::drain(cache::Hierarchy *hierarchy)
{
    if (open_) {
        while (step(config_.pagesPerSlice, hierarchy) > 0) {
        }
        finishEpoch();
    }
    return last_;
}

void
RevocationEngine::beginEpoch()
{
    CHERIVOKE_ASSERT(!open_, "(epoch already open)");
    open_ = true;
    epoch_domain_ = active_;
    Domain &dom = epochDomain();
    epoch_ = EpochStats{};

    // The backend owns the mechanics: freeze + paint + register
    // sweep + worklist for the sweep family, table work for the
    // object-ID backend. Barrier-bearing policies ask for the
    // load-side revocation barrier.
    dom.backend->beginEpoch(
        epoch_, domainPolicy(epoch_domain_).needsLoadBarrier());

    // The revocation set is now frozen: let observers (the mutator
    // front-end's epoch-boundary recorder) mark the spot where their
    // threads must flush and drain remote-free traffic.
    if (epoch_open_hook_)
        epoch_open_hook_(epoch_domain_);

    if (config_.backgroundSweeper)
        dispatchBackgroundSweep();
}

support::Clock &
RevocationEngine::clock()
{
    return config_.clock ? *config_.clock : steady_clock_;
}

void
RevocationEngine::dispatchBackgroundSweep()
{
    bg_active_ = false;
    stw_catchup_ = false;
    Domain &dom = epochDomain();
    const std::vector<uint64_t> *worklist =
        dom.backend->frozenWorklist();
    if (!worklist)
        return; // backend with no page-granular sweep (objid)
    if (!bg_)
        bg_ = std::make_unique<BackgroundSweeper>();

    // Domain-local epoch ordinal, the unit sweeper injections are
    // keyed on (finishEpoch increments dom.totals.epochs).
    bg_epoch_seq_ = dom.totals.epochs;
    auto inject = BackgroundSweeper::Inject::None;
    uint64_t slow_factor = 1;
    for (SweeperInjection &si : sweeper_plan_) {
        if (si.fired || si.domain != epoch_domain_ ||
            si.epoch != bg_epoch_seq_)
            continue;
        si.fired = true;
        switch (si.kind) {
          case SweeperFaultKind::Stall:
            inject = BackgroundSweeper::Inject::Stall;
            break;
          case SweeperFaultKind::Crash:
            inject = BackgroundSweeper::Inject::Crash;
            break;
          case SweeperFaultKind::Slow:
            inject = BackgroundSweeper::Inject::Slow;
            break;
        }
        slow_factor = si.factor;
        break;
    }

    FrozenWorklist snapshot =
        buildFrozenWorklist(dom.space->memory(), *worklist);
    bg_total_ = snapshot.pages.size();

    supervisor_.record({SweeperEventKind::Dispatch, epoch_domain_,
                        bg_epoch_seq_, bg_total_, 0});

    // Per-epoch deadline: the configured override, or the §6.1.3
    // sweep-cost estimate for this worklist. The assumed scan rate
    // is the paper's commodity-DRAM order of magnitude; the derived
    // deadline carries generous slack on top.
    constexpr double kAssumedScanRate = 1024.0 * 1024 * 1024;
    const uint64_t window =
        config_.epochDeadlineMs > 0
            ? static_cast<uint64_t>(config_.epochDeadlineMs * 1e6)
            : derivedEpochDeadlineNs(bg_total_, kAssumedScanRate);
    supervisor_.watchdog().arm(clock().nowNs(), window,
                               config_.sweeperRetries);

    bg_->dispatch(std::move(snapshot),
                  &dom.allocator->shadowMap(),
                  config_.pagesPerSlice, inject, slow_factor);
    bg_active_ = true;
}

void
RevocationEngine::rendezvousBackgroundSweep(size_t max_pages)
{
    const size_t remaining = epochDomain().backend->pagesRemaining();
    const uint64_t target =
        bg_total_ - remaining +
        std::min<uint64_t>(max_pages, remaining);
    Watchdog &wd = supervisor_.watchdog();
    bool stall_recorded = false;
    uint64_t hb_seen = bg_->heartbeats();

    // Poll chunk for the real-clock path: long enough not to spin,
    // far below any deadline window.
    constexpr uint64_t kPollNs = 1'000'000;

    while (true) {
        if (bg_->watermark() >= target) {
            wd.heartbeat(clock().nowNs());
            return;
        }
        const BackgroundSweeper::State state = bg_->state();
        if (state == BackgroundSweeper::State::Done)
            return; // watermark covers the whole worklist
        if (state == BackgroundSweeper::State::Crashed) {
            // Dead worker: no retry can help — straight to the
            // ladder.
            supervisor_.record({SweeperEventKind::Crash,
                                epoch_domain_, bg_epoch_seq_,
                                bg_->watermark(), wd.retries()});
            failSweeperEpisode();
            return;
        }
        if (state == BackgroundSweeper::State::Stalled) {
            // Injected no-progress state: drive the same watchdog
            // machinery, but with its own deadline as "now" so the
            // retry/backoff walk is wall-time-free and
            // deterministic.
            if (!stall_recorded) {
                supervisor_.record({SweeperEventKind::StallDetected,
                                    epoch_domain_, bg_epoch_seq_,
                                    bg_->watermark(), wd.retries()});
                stall_recorded = true;
            }
            const Watchdog::Verdict verdict =
                wd.poll(wd.deadlineNs());
            if (verdict == Watchdog::Verdict::Retry) {
                supervisor_.record({SweeperEventKind::Retry,
                                    epoch_domain_, bg_epoch_seq_,
                                    bg_->watermark(), wd.retries()});
                // One retry credit: a Slow job whose credits run
                // out resumes synchronously inside nudge().
                bg_->nudge();
                continue;
            }
            failSweeperEpisode();
            return;
        }
        // Running: genuinely wait for progress, feeding heartbeats
        // to the watchdog; a real overrun (never hit by the
        // deterministic suites) walks the same retry path.
        bg_->waitProgress(target, kPollNs);
        const uint64_t hb = bg_->heartbeats();
        if (hb != hb_seen) {
            hb_seen = hb;
            wd.heartbeat(clock().nowNs());
        }
        const Watchdog::Verdict verdict = wd.poll(clock().nowNs());
        if (verdict == Watchdog::Verdict::Retry) {
            if (!stall_recorded) {
                supervisor_.record({SweeperEventKind::StallDetected,
                                    epoch_domain_, bg_epoch_seq_,
                                    bg_->watermark(),
                                    wd.retries() - 1});
                stall_recorded = true;
            }
            supervisor_.record({SweeperEventKind::Retry,
                                epoch_domain_, bg_epoch_seq_,
                                bg_->watermark(), wd.retries()});
            bg_->nudge();
        } else if (verdict == Watchdog::Verdict::Escalate) {
            failSweeperEpisode();
            return;
        }
    }
}

void
RevocationEngine::failSweeperEpisode()
{
    bg_->cancel();
    supervisor_.watchdog().disarm();
    bg_active_ = false;
    const uint64_t watermark = bg_->watermark();
    const unsigned strikes = supervisor_.addStrike(epoch_domain_);
    if (strikes >= 3) {
        // Rung 3: the domain's sweeper failed three epochs running —
        // contain it through the standard teardown path. The job is
        // already cancelled, so the containment drain completes the
        // epoch via plain mutator-assist.
        supervisor_.record({SweeperEventKind::Containment,
                            epoch_domain_, bg_epoch_seq_, watermark,
                            supervisor_.watchdog().retries()});
        heapFault(HeapFaultKind::SweeperFailure,
                  "domain %zu background sweeper failed %u epochs "
                  "(stalled at page %llu/%llu of epoch %llu)",
                  epoch_domain_, strikes,
                  static_cast<unsigned long long>(watermark),
                  static_cast<unsigned long long>(bg_total_),
                  static_cast<unsigned long long>(bg_epoch_seq_));
    }
    if (strikes == 2) {
        // Rung 2: besides falling back to assist, the next modelled
        // step drains the whole worklist in one stop-the-world
        // catch-up pause so the domain regains revocation cadence.
        supervisor_.record({SweeperEventKind::StwCatchup,
                            epoch_domain_, bg_epoch_seq_, watermark,
                            supervisor_.watchdog().retries()});
        stw_catchup_ = true;
        return;
    }
    // Rung 1: the epoch simply continues on the unchanged modelled
    // mutator-assist path — which is where all modelled statistics
    // come from anyway, so the fallback is bit-exact.
    supervisor_.record({SweeperEventKind::ReassignToAssist,
                        epoch_domain_, bg_epoch_seq_, watermark,
                        supervisor_.watchdog().retries()});
}

void
RevocationEngine::joinBackgroundSweep()
{
    if (!bg_active_)
        return;
    // The rendezvous before every modelled slice guarantees the
    // worker's watermark already covers the whole worklist; cancel()
    // doubles as the join (it returns once the worker has let go).
    bg_->cancel();
    supervisor_.watchdog().disarm();
    supervisor_.record({SweeperEventKind::Completed, epoch_domain_,
                        bg_epoch_seq_, bg_->watermark(),
                        supervisor_.watchdog().retries()});
    bg_active_ = false;
}

size_t
RevocationEngine::step(size_t max_pages, cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(open_, "(step without an open epoch)");
    if (bg_active_)
        rendezvousBackgroundSweep(max_pages);
    if (stw_catchup_) {
        stw_catchup_ = false;
        max_pages = SIZE_MAX;
    }
    return epochDomain().backend->step(epoch_, max_pages, hierarchy);
}

void
RevocationEngine::finishEpoch()
{
    CHERIVOKE_ASSERT(open_, "(finish without an open epoch)");
    Domain &dom = epochDomain();
    CHERIVOKE_ASSERT(dom.backend->pagesRemaining() == 0,
                     "(worklist not drained: call step() to "
                     "completion first)");
    // Join the racing worker before the backend releases the
    // barrier and unpaints the shadow it is probing.
    joinBackgroundSweep();
    dom.backend->finishEpoch(epoch_);
    open_ = false;

    auto accumulate = [this](EngineTotals &totals) {
        ++totals.epochs;
        totals.paint += epoch_.paint;
        totals.sweep += epoch_.sweep;
        totals.internalFrees += epoch_.internalFrees;
        totals.bytesReleased += epoch_.bytesReleased;
        totals.slices += epoch_.slices;
    };
    accumulate(totals_);
    accumulate(dom.totals);
    last_ = epoch_;
}

EpochStats
RevocationEngine::revokeIncrementally(size_t pages_per_step,
                                      cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(pages_per_step > 0);
    beginEpoch();
    while (step(pages_per_step, hierarchy) > 0) {
    }
    finishEpoch();
    return last_;
}

} // namespace revoke
} // namespace cherivoke

#include "revoke/revocation_engine.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cherivoke {
namespace revoke {

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::StopTheWorld: return "stop-the-world";
      case PolicyKind::Incremental: return "incremental";
      case PolicyKind::Concurrent: return "concurrent";
    }
    return "unknown";
}

bool
parsePolicy(const std::string &name, PolicyKind &out)
{
    if (name == "stw" || name == "stop-the-world") {
        out = PolicyKind::StopTheWorld;
        return true;
    }
    if (name == "incremental") {
        out = PolicyKind::Incremental;
        return true;
    }
    if (name == "concurrent") {
        out = PolicyKind::Concurrent;
        return true;
    }
    return false;
}

bool
RevocationPolicy::pump(RevocationEngine &engine,
                       cache::Hierarchy *hierarchy)
{
    if (!engine.quarantinePressure())
        return false;
    runEpoch(engine, hierarchy);
    return true;
}

EpochStats
RevocationPolicy::runEpoch(RevocationEngine &engine,
                           cache::Hierarchy *hierarchy)
{
    const size_t slice = engine.config().pagesPerSlice;
    engine.beginEpoch();
    while (engine.step(slice, hierarchy) > 0) {
    }
    engine.finishEpoch();
    return engine.lastEpoch();
}

namespace {

/** The paper's measured configuration: when the quarantine fills,
 *  the world stops and a whole epoch runs as a single pause. */
class StopTheWorldPolicy final : public RevocationPolicy
{
  public:
    PolicyKind kind() const override
    {
        return PolicyKind::StopTheWorld;
    }
    const char *name() const override { return "stop-the-world"; }
    bool needsLoadBarrier() const override { return false; }

    EpochStats
    runEpoch(RevocationEngine &engine,
             cache::Hierarchy *hierarchy) override
    {
        engine.beginEpoch();
        engine.step(SIZE_MAX, hierarchy);
        engine.finishEpoch();
        return engine.lastEpoch();
    }
};

/** §3.5 + Cornucopia load barrier: a full epoch runs at the trigger
 *  point, but as a sequence of bounded pauses (the base-class
 *  behaviour exactly). */
class IncrementalPolicy final : public RevocationPolicy
{
  public:
    PolicyKind kind() const override
    {
        return PolicyKind::Incremental;
    }
    const char *name() const override { return "incremental"; }
    bool needsLoadBarrier() const override { return true; }
};

/** Mutator-assist scheduling: the epoch stays open and every pump
 *  advances it by one slice, interleaving sweep work with program
 *  progress. The load barrier keeps this sound. */
class ConcurrentPolicy final : public RevocationPolicy
{
  public:
    PolicyKind kind() const override
    {
        return PolicyKind::Concurrent;
    }
    const char *name() const override { return "concurrent"; }
    bool needsLoadBarrier() const override { return true; }

    bool
    pump(RevocationEngine &engine,
         cache::Hierarchy *hierarchy) override
    {
        if (!engine.epochOpen()) {
            if (!engine.quarantinePressure())
                return false;
            engine.beginEpoch();
        }
        if (engine.step(engine.config().pagesPerSlice, hierarchy) ==
            0) {
            engine.finishEpoch();
            return true;
        }
        return false;
    }
};

} // namespace

std::unique_ptr<RevocationPolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::StopTheWorld:
        return std::make_unique<StopTheWorldPolicy>();
      case PolicyKind::Incremental:
        return std::make_unique<IncrementalPolicy>();
      case PolicyKind::Concurrent:
        return std::make_unique<ConcurrentPolicy>();
    }
    panic("unknown policy kind");
}

RevocationEngine::RevocationEngine(
    alloc::CherivokeAllocator &allocator, mem::AddressSpace &space,
    EngineConfig config)
    : sweeper_(config.sweep), config_(config),
      policy_(makePolicy(config.policy))
{
    CHERIVOKE_ASSERT(config_.pagesPerSlice > 0);
    CHERIVOKE_ASSERT(config_.paintShards > 0);
    domains_.push_back(Domain{&allocator, &space, EngineTotals{},
                              nullptr, nullptr, false});
    attachBackend(0, config_.backend);
}

RevocationEngine::RevocationEngine(
    alloc::CherivokeAllocator &allocator, mem::AddressSpace &space,
    SweepOptions sweep)
    : RevocationEngine(allocator, space,
                       EngineConfig{sweep, PolicyKind::StopTheWorld,
                                    64, 1})
{}

RevocationEngine::~RevocationEngine()
{
    // Never leave a dangling barrier behind, and detach from every
    // allocator that may outlive the engine.
    for (Domain &dom : domains_) {
        if (dom.backend)
            dom.backend->releaseBarrier();
        if (dom.allocator &&
            dom.allocator->observer() == dom.backend.get())
            dom.allocator->setObserver(nullptr);
    }
}

void
RevocationEngine::attachBackend(size_t index, BackendKind kind)
{
    Domain &dom = domains_[index];
    dom.backend = makeBackend(kind, config_.backendConfig);
    dom.backend->bind(BackendContext{dom.allocator, dom.space,
                                     &sweeper_, config_.paintShards});
    dom.allocator->setObserver(dom.backend.get());
}

size_t
RevocationEngine::addDomain(alloc::CherivokeAllocator &allocator,
                            mem::AddressSpace &space)
{
    return bindDomain(domains_.size(), allocator, space);
}

size_t
RevocationEngine::bindDomain(size_t index,
                             alloc::CherivokeAllocator &allocator,
                             mem::AddressSpace &space)
{
    CHERIVOKE_ASSERT(index <= domains_.size(),
                     "(bindDomain beyond the next fresh slot)");
    if (index == domains_.size()) {
        domains_.push_back(Domain{&allocator, &space, EngineTotals{},
                                  nullptr, nullptr, false});
    } else {
        Domain &dom = domains_[index];
        CHERIVOKE_ASSERT(dom.retired,
                         "(bindDomain over a live domain)");
        CHERIVOKE_ASSERT(!open_ || epoch_domain_ != index,
                         "(rebinding the open epoch's domain)");
        dom = Domain{&allocator, &space, EngineTotals{}, nullptr,
                     nullptr, false};
    }
    attachBackend(index, config_.backend);
    return index;
}

void
RevocationEngine::setDomainPolicy(size_t index, PolicyKind kind)
{
    CHERIVOKE_ASSERT(index < domains_.size() &&
                     !domains_[index].retired);
    CHERIVOKE_ASSERT(!open_ || epoch_domain_ != index,
                     "(policy change under an open epoch)");
    domains_[index].policy =
        kind == config_.policy ? nullptr : makePolicy(kind);
}

void
RevocationEngine::setDomainBackend(size_t index, BackendKind kind)
{
    CHERIVOKE_ASSERT(index < domains_.size() &&
                     !domains_[index].retired);
    CHERIVOKE_ASSERT(!open_ || epoch_domain_ != index,
                     "(backend change under an open epoch)");
    attachBackend(index, kind);
}

RevocationBackend &
RevocationEngine::domainBackend(size_t index)
{
    CHERIVOKE_ASSERT(index < domains_.size() &&
                     domains_[index].backend);
    return *domains_[index].backend;
}

const RevocationBackend &
RevocationEngine::domainBackend(size_t index) const
{
    CHERIVOKE_ASSERT(index < domains_.size() &&
                     domains_[index].backend);
    return *domains_[index].backend;
}

void
RevocationEngine::notePointerUse(uint64_t n)
{
    notePointerUse(active_, n);
}

void
RevocationEngine::notePointerUse(size_t domain, uint64_t n)
{
    CHERIVOKE_ASSERT(domain < domains_.size() &&
                     !domains_[domain].retired);
    domains_[domain].backend->onPointerUse(n);
}

RevocationPolicy &
RevocationEngine::domainPolicy(size_t index)
{
    CHERIVOKE_ASSERT(index < domains_.size());
    Domain &dom = domains_[index];
    return dom.policy ? *dom.policy : *policy_;
}

void
RevocationEngine::drainDomain(size_t index, cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(index < domains_.size());
    if (open_ && epoch_domain_ == index)
        drain(hierarchy);
}

void
RevocationEngine::retireDomain(size_t index,
                               cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(index < domains_.size());
    Domain &dom = domains_[index];
    CHERIVOKE_ASSERT(!dom.retired, "(retireDomain twice)");
    drainDomain(index, hierarchy);
    dom.retired = true;
    if (dom.allocator &&
        dom.allocator->observer() == dom.backend.get())
        dom.allocator->setObserver(nullptr);
    dom.allocator = nullptr;
    dom.space = nullptr;
    dom.policy.reset();
    dom.backend.reset();
    CHERIVOKE_ASSERT(active_ != index || allRetired(),
                     "(retiring the active domain with others "
                     "still live: selectDomain elsewhere first)");
}

bool
RevocationEngine::allRetired() const
{
    for (const Domain &dom : domains_) {
        if (!dom.retired)
            return false;
    }
    return true;
}

void
RevocationEngine::selectDomain(size_t index)
{
    CHERIVOKE_ASSERT(index < domains_.size());
    CHERIVOKE_ASSERT(!domains_[index].retired,
                     "(selectDomain on a retired domain)");
    active_ = index;
}

const EngineTotals &
RevocationEngine::domainTotals(size_t index) const
{
    CHERIVOKE_ASSERT(index < domains_.size());
    return domains_[index].totals;
}

bool
RevocationEngine::quarantinePressure() const
{
    return domains_[active_].backend->needsRevocation();
}

size_t
RevocationEngine::pagesRemaining() const
{
    return open_ ? domains_[epoch_domain_].backend->pagesRemaining()
                 : 0;
}

bool
RevocationEngine::maybeRevoke(cache::Hierarchy *hierarchy)
{
    // Epoch-owner-wins arbitration: while an epoch is open, every
    // pump advances it under the owning domain's policy — so a
    // stop-the-world neighbour's allocator ops assist a concurrent
    // tenant's in-flight sweep instead of stacking a second epoch.
    const size_t domain = open_ ? epoch_domain_ : active_;
    return domainPolicy(domain).pump(*this, hierarchy);
}

EpochStats
RevocationEngine::revokeNow(cache::Hierarchy *hierarchy)
{
    // A forced pause (global-scope sweep, §3.7 strict mode) first
    // completes whatever per-tenant epoch is in flight — credited to
    // its own domain — then runs the requesting domain's epoch under
    // the requesting domain's policy.
    if (open_)
        drain(hierarchy);
    return domainPolicy(active_).runEpoch(*this, hierarchy);
}

EpochStats
RevocationEngine::freeAndRevoke(const cap::Capability &capability,
                                cache::Hierarchy *hierarchy)
{
    allocator().free(capability);
    // An open epoch was frozen before this free: drain it, then run
    // a fresh epoch that covers the allocation just freed.
    return revokeNow(hierarchy);
}

EpochStats
RevocationEngine::drain(cache::Hierarchy *hierarchy)
{
    if (open_) {
        while (step(config_.pagesPerSlice, hierarchy) > 0) {
        }
        finishEpoch();
    }
    return last_;
}

void
RevocationEngine::beginEpoch()
{
    CHERIVOKE_ASSERT(!open_, "(epoch already open)");
    open_ = true;
    epoch_domain_ = active_;
    Domain &dom = epochDomain();
    epoch_ = EpochStats{};

    // The backend owns the mechanics: freeze + paint + register
    // sweep + worklist for the sweep family, table work for the
    // object-ID backend. Barrier-bearing policies ask for the
    // load-side revocation barrier.
    dom.backend->beginEpoch(
        epoch_, domainPolicy(epoch_domain_).needsLoadBarrier());

    // The revocation set is now frozen: let observers (the mutator
    // front-end's epoch-boundary recorder) mark the spot where their
    // threads must flush and drain remote-free traffic.
    if (epoch_open_hook_)
        epoch_open_hook_(epoch_domain_);
}

size_t
RevocationEngine::step(size_t max_pages, cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(open_, "(step without an open epoch)");
    return epochDomain().backend->step(epoch_, max_pages, hierarchy);
}

void
RevocationEngine::finishEpoch()
{
    CHERIVOKE_ASSERT(open_, "(finish without an open epoch)");
    Domain &dom = epochDomain();
    CHERIVOKE_ASSERT(dom.backend->pagesRemaining() == 0,
                     "(worklist not drained: call step() to "
                     "completion first)");
    dom.backend->finishEpoch(epoch_);
    open_ = false;

    auto accumulate = [this](EngineTotals &totals) {
        ++totals.epochs;
        totals.paint += epoch_.paint;
        totals.sweep += epoch_.sweep;
        totals.internalFrees += epoch_.internalFrees;
        totals.bytesReleased += epoch_.bytesReleased;
        totals.slices += epoch_.slices;
    };
    accumulate(totals_);
    accumulate(dom.totals);
    last_ = epoch_;
}

EpochStats
RevocationEngine::revokeIncrementally(size_t pages_per_step,
                                      cache::Hierarchy *hierarchy)
{
    CHERIVOKE_ASSERT(pages_per_step > 0);
    beginEpoch();
    while (step(pages_per_step, hierarchy) > 0) {
    }
    finishEpoch();
    return last_;
}

} // namespace revoke
} // namespace cherivoke

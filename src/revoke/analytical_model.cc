#include "revoke/analytical_model.hh"

#include <algorithm>

namespace cherivoke {
namespace revoke {

namespace {

/**
 * Saturation ceiling for degenerate denominators (zero scan rate,
 * zero quarantine): far beyond any meaningful overhead or period,
 * but finite — callers that compare, sort or serialise model output
 * never see NaN/inf. Valid inputs are untouched (the cap is only
 * reachable with a non-positive denominator).
 */
constexpr double kSaturated = 1e18;

} // namespace

double
predictedRuntimeOverhead(const OverheadParams &params)
{
    const double demand =
        params.freeRateBytesPerSec * params.pointerDensity;
    const double capacity =
        params.scanRateBytesPerSec * params.quarantineFraction;
    if (!(capacity > 0)) {
        // No sweep capacity: infinite overhead if anything is being
        // freed, none at all if nothing is.
        return demand > 0 ? kSaturated : 0.0;
    }
    return std::min(demand / capacity, kSaturated);
}

double
sweepPeriodSeconds(uint64_t quarantine_bytes,
                   double free_rate_bytes_per_sec)
{
    if (!(free_rate_bytes_per_sec > 0)) {
        // Nothing is freed: the quarantine never fills.
        return quarantine_bytes > 0 ? kSaturated : 0.0;
    }
    return std::min(static_cast<double>(quarantine_bytes) /
                        free_rate_bytes_per_sec,
                    kSaturated);
}

double
sweepSeconds(uint64_t swept_bytes, double scan_rate_bytes_per_sec)
{
    if (!(scan_rate_bytes_per_sec > 0))
        return swept_bytes > 0 ? kSaturated : 0.0;
    return std::min(static_cast<double>(swept_bytes) /
                        scan_rate_bytes_per_sec,
                    kSaturated);
}

double
predictedMemoryOverhead(double quarantine_fraction)
{
    // Quarantine plus the 1/128 shadow map (§3.2: "less than 1% of
    // the heap").
    return quarantine_fraction + 1.0 / 128.0;
}

} // namespace revoke
} // namespace cherivoke

#include "revoke/analytical_model.hh"

#include "support/logging.hh"

namespace cherivoke {
namespace revoke {

double
predictedRuntimeOverhead(const OverheadParams &params)
{
    CHERIVOKE_ASSERT(params.scanRateBytesPerSec > 0 &&
                     params.quarantineFraction > 0,
                     "(model denominators must be positive)");
    return params.freeRateBytesPerSec * params.pointerDensity /
           (params.scanRateBytesPerSec * params.quarantineFraction);
}

double
sweepPeriodSeconds(uint64_t quarantine_bytes,
                   double free_rate_bytes_per_sec)
{
    CHERIVOKE_ASSERT(free_rate_bytes_per_sec > 0);
    return static_cast<double>(quarantine_bytes) /
           free_rate_bytes_per_sec;
}

double
sweepSeconds(uint64_t swept_bytes, double scan_rate_bytes_per_sec)
{
    CHERIVOKE_ASSERT(scan_rate_bytes_per_sec > 0);
    return static_cast<double>(swept_bytes) /
           scan_rate_bytes_per_sec;
}

double
predictedMemoryOverhead(double quarantine_fraction)
{
    // Quarantine plus the 1/128 shadow map (§3.2: "less than 1% of
    // the heap").
    return quarantine_fraction + 1.0 / 128.0;
}

} // namespace revoke
} // namespace cherivoke

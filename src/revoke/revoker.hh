/**
 * @file
 * The revocation orchestrator: drives the full CHERIvoke epoch
 * protocol (figure 3) — quarantine fills → paint shadow map → sweep
 * memory and registers → unpaint → release quarantine for reuse.
 */

#ifndef CHERIVOKE_REVOKE_REVOKER_HH
#define CHERIVOKE_REVOKE_REVOKER_HH

#include <cstdint>

#include "alloc/cherivoke_alloc.hh"
#include "revoke/sweeper.hh"

namespace cherivoke {
namespace revoke {

/** Statistics for one complete revocation epoch. */
struct EpochStats
{
    alloc::PaintStats paint;
    SweepStats sweep;
    uint64_t internalFrees = 0;
    uint64_t bytesReleased = 0;
};

/** Cumulative statistics across all epochs. */
struct RevokerTotals
{
    uint64_t epochs = 0;
    alloc::PaintStats paint;
    SweepStats sweep;
    uint64_t internalFrees = 0;
    uint64_t bytesReleased = 0;
};

/**
 * Couples a CherivokeAllocator with a Sweeper and runs revocation
 * epochs when the quarantine is full.
 */
class Revoker
{
  public:
    Revoker(alloc::CherivokeAllocator &allocator,
            mem::AddressSpace &space,
            SweepOptions options = SweepOptions{})
        : allocator_(&allocator), space_(&space), sweeper_(options)
    {}

    /** Run an epoch if the quarantine is at/over budget.
     *  @return true if a sweep ran */
    bool maybeRevoke(cache::Hierarchy *hierarchy = nullptr);

    /** Run an epoch unconditionally (used by a strict-UAF mode that
     *  sweeps on every free, §3.7). */
    EpochStats revokeNow(cache::Hierarchy *hierarchy = nullptr);

    /**
     * Strict use-after-free debugging (§3.7: "CHERI could facilitate
     * strict use-after-free for debugging if a sweep was performed
     * on every free"): free the allocation and immediately revoke
     * every reference to it — not merely before reallocation.
     * Far more expensive than batched revocation; for debug builds.
     */
    EpochStats freeAndRevoke(const cap::Capability &capability,
                             cache::Hierarchy *hierarchy = nullptr);

    Sweeper &sweeper() { return sweeper_; }
    const RevokerTotals &totals() const { return totals_; }
    const EpochStats &lastEpoch() const { return last_; }

  private:
    alloc::CherivokeAllocator *allocator_;
    mem::AddressSpace *space_;
    Sweeper sweeper_;
    RevokerTotals totals_;
    EpochStats last_;
};

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_REVOKER_HH

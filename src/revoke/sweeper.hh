/**
 * @file
 * The revocation sweeper (paper §3.3–§3.5): walks every memory region
 * that can hold capabilities — heap, stack, globals, and the register
 * file — and clears the tag of every capability whose base lands in a
 * painted shadow-map granule.
 *
 * Work elimination:
 *  - PTE CapDirty (§3.4.2): pages whose PTE never saw a capability
 *    store are skipped entirely.
 *  - CLoadTags (§3.4.1): lines whose 4-bit tag mask is zero are
 *    skipped without fetching their data from DRAM.
 *
 * The sweep is embarrassingly parallel (§3.5): the page worklist is
 * partitioned into contiguous index ranges, one per thread; the
 * shadow map is read-only for the duration, and each worker records
 * its modelled traffic into a private cache::TrafficLog.
 * After the join, the logs are replayed into the hierarchy in
 * worklist order, so a threaded sweep reports cache/DRAM traffic
 * identical to the serial sweep. Partition boundaries are snapped to
 * 8 KiB leaf-tag-line regions so that no worker ever observes another
 * worker's in-flight tag clears.
 */

#ifndef CHERIVOKE_REVOKE_SWEEPER_HH
#define CHERIVOKE_REVOKE_SWEEPER_HH

#include <cstdint>
#include <vector>

#include "alloc/shadow_map.hh"
#include "cache/traffic.hh"
#include "mem/addr_space.hh"
#include "revoke/sweep_loop.hh"

namespace cherivoke {
namespace revoke {

/** Sweep configuration. */
struct SweepOptions
{
    /** Use PTE CapDirty to skip capability-free pages. */
    bool usePteCapDirty = true;
    /** Use CLoadTags to skip capability-free lines. */
    bool useCloadTags = true;
    /** §3.4.1 future work: prefetch lines whose CLoadTags response
     *  is non-zero, hiding the data fetch behind the tag query. */
    bool cloadTagsPrefetch = false;
    /** Clear CapDirty on pages found tag-free (§3.4.2). */
    bool cleanFalsePositivePages = true;
    /** Kernel cost model to account (functional result identical). */
    SweepKernel kernel = SweepKernel::Vector;
    /** Sweep threads (1 = the paper's measured configuration). */
    unsigned threads = 1;
};

/** Statistics from one revocation sweep. */
struct SweepStats
{
    uint64_t pagesConsidered = 0;  //!< pages in sweepable segments
    uint64_t pagesSwept = 0;       //!< pages actually walked
    uint64_t pagesSkippedPte = 0;  //!< skipped via PTE CapDirty
    uint64_t pagesSkippedTier = 0; //!< skipped by tier-scoped epochs
    uint64_t pagesCleaned = 0;     //!< CapDirty false positives reset
    uint64_t linesSwept = 0;       //!< lines whose data was visited
    uint64_t linesSkippedTags = 0; //!< skipped via CLoadTags
    uint64_t capsExamined = 0;     //!< tagged words inspected
    uint64_t capsRevoked = 0;      //!< tags cleared
    uint64_t regsExamined = 0;
    uint64_t regsRevoked = 0;
    double kernelCycles = 0;       //!< modelled CPU cycles

    /** Bytes of memory whose data was actually read. */
    uint64_t bytesSwept() const { return linesSwept * kLineBytes; }
    /** Bytes covered by the sweep including eliminated work. */
    uint64_t
    bytesConsidered() const
    {
        return pagesConsidered * kPageBytes;
    }

    SweepStats &operator+=(const SweepStats &o);
    bool operator==(const SweepStats &o) const;
    bool operator!=(const SweepStats &o) const { return !(*this == o); }
};

/** The sweeping engine. */
class Sweeper
{
  public:
    explicit Sweeper(SweepOptions options = SweepOptions{})
        : options_(options)
    {}

    SweepOptions &options() { return options_; }
    const SweepOptions &options() const { return options_; }

    /**
     * Perform a complete revocation sweep.
     * @param space the process address space (heap/stack/globals +
     *              registers)
     * @param shadow the painted revocation shadow map
     * @param hierarchy optional cache/DRAM model for traffic
     *        accounting (threaded sweeps record per worker and
     *        replay deterministically after the join)
     */
    SweepStats sweep(mem::AddressSpace &space,
                     const alloc::ShadowMap &shadow,
                     cache::Hierarchy *hierarchy = nullptr);

    /** @name Epoch building blocks (§3.5) */
    /// @{

    /**
     * Build the page worklist for a sweep, applying PTE CapDirty
     * elimination and accounting the skipped pages in @p stats.
     */
    std::vector<uint64_t> buildWorklist(mem::AddressSpace &space,
                                        SweepStats &stats) const;

    /**
     * Sweep the index range [lo, hi) of @p pages across
     * options().threads workers (one increment of an epoch). Traffic
     * is accounted into @p hierarchy with totals independent of the
     * thread count.
     */
    SweepStats sweepPages(mem::AddressSpace &space,
                          const alloc::ShadowMap &shadow,
                          const std::vector<uint64_t> &pages,
                          size_t lo, size_t hi,
                          cache::Hierarchy *hierarchy = nullptr);

    /**
     * Serially sweep the index range [lo, hi) of @p pages, reporting
     * modelled traffic to @p sink (nullable). The single-worker
     * kernel; thread-safe for disjoint page ranges.
     */
    SweepStats sweepPageRange(mem::AddressSpace &space,
                              const alloc::ShadowMap &shadow,
                              const std::vector<uint64_t> &pages,
                              size_t lo, size_t hi,
                              cache::TrafficSink *sink = nullptr);

    /** Sweep the capability register file. */
    SweepStats sweepRegisters(mem::AddressSpace &space,
                              const alloc::ShadowMap &shadow);
    /// @}

  private:
    SweepOptions options_;
};

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_SWEEPER_HH

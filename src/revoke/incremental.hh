/**
 * @file
 * Incremental revocation with a load-side barrier.
 *
 * §3.5 observes that "sweeping revocation can be made independent of
 * execution and can run alongside the execution of the program".
 * Doing that *soundly* needs one more ingredient the paper's
 * successor system (Cornucopia, deployed in CheriBSD) added: a
 * load-side revocation check. While an epoch is open, a capability
 * loaded from a not-yet-swept region whose base is painted in the
 * shadow map is stripped at the load — so the mutator can never copy
 * a dangling capability from unswept memory into memory the sweep
 * has already passed.
 *
 * Epoch protocol:
 *
 *     inc.beginEpoch();             // paint, barrier on, regs swept
 *     while (inc.step(kPagesPerStep) > 0) {
 *         ... mutator runs: malloc/free/load/store ...
 *     }
 *     inc.finishEpoch();            // regs again, barrier off,
 *                                   // frozen quarantine released
 *
 * The pause per step is bounded by kPagesPerStep; frees made while
 * the epoch is open join the *next* epoch's quarantine (the
 * allocator freezes the revocation set at beginEpoch).
 */

#ifndef CHERIVOKE_REVOKE_INCREMENTAL_HH
#define CHERIVOKE_REVOKE_INCREMENTAL_HH

#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "revoke/revoker.hh"
#include "revoke/sweeper.hh"

namespace cherivoke {
namespace revoke {

/** The incremental-epoch revoker. */
class IncrementalRevoker
{
  public:
    IncrementalRevoker(alloc::CherivokeAllocator &allocator,
                       mem::AddressSpace &space,
                       SweepOptions options = SweepOptions{})
        : allocator_(&allocator), space_(&space), sweeper_(options)
    {}

    ~IncrementalRevoker();

    /** True while an epoch is open (barrier active). */
    bool epochOpen() const { return open_; }

    /**
     * Open an epoch: freeze + paint the quarantine, install the
     * load barrier, sweep the registers, build the page worklist.
     */
    void beginEpoch();

    /**
     * Sweep up to @p max_pages pages of the worklist (one bounded
     * pause).
     * @return pages still remaining in the worklist
     */
    size_t step(size_t max_pages,
                cache::Hierarchy *hierarchy = nullptr);

    /**
     * Close the epoch: worklist must be drained; sweeps registers
     * once more, removes the barrier, unpaints and releases the
     * frozen quarantine.
     */
    void finishEpoch();

    /** Convenience: run one whole epoch in bounded steps. */
    EpochStats revokeIncrementally(size_t pages_per_step);

    /** Pages remaining in the open epoch's worklist. */
    size_t pagesRemaining() const
    {
        return worklist_.size() - next_;
    }

    const RevokerTotals &totals() const { return totals_; }
    Sweeper &sweeper() { return sweeper_; }

  private:
    alloc::CherivokeAllocator *allocator_;
    mem::AddressSpace *space_;
    Sweeper sweeper_;
    RevokerTotals totals_;

    bool open_ = false;
    std::vector<uint64_t> worklist_;
    size_t next_ = 0;
    EpochStats epoch_;
};

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_INCREMENTAL_HH

/**
 * @file
 * The paper's analytical overhead model (§6.1.3):
 *
 *     RuntimeOverhead ≈ FreeRate * PointerDensity
 *                       / (ScanRate * QuarantineFraction)
 *
 * The numerator is an application-specific cost factor; ScanRate is a
 * property of the memory system and sweep kernel; QuarantineFraction
 * trades memory for time (figure 9).
 *
 * Degenerate inputs saturate instead of dividing by zero: a
 * non-positive denominator yields a large finite value (or 0 when
 * the numerator is also 0), never NaN/inf — the model's output is
 * always safe to compare, rank and serialise.
 */

#ifndef CHERIVOKE_REVOKE_ANALYTICAL_MODEL_HH
#define CHERIVOKE_REVOKE_ANALYTICAL_MODEL_HH

#include <cstdint>

namespace cherivoke {
namespace revoke {

/** Inputs to the §6.1.3 overhead equation. */
struct OverheadParams
{
    /** Application free throughput in bytes/second (table 2). */
    double freeRateBytesPerSec = 0;
    /** Fraction of sweepable memory that holds pointers, at the
     *  elimination granularity in use (page or line). */
    double pointerDensity = 0;
    /** Effective sweep rate over pointer-bearing memory, bytes/s. */
    double scanRateBytesPerSec = 1;
    /** Quarantine size as a fraction of the heap (default 0.25). */
    double quarantineFraction = 0.25;
};

/** The §6.1.3 runtime-overhead estimate (fraction, e.g.\ 0.047). */
double predictedRuntimeOverhead(const OverheadParams &params);

/** Seconds between sweeps for a given quarantine budget. */
double sweepPeriodSeconds(uint64_t quarantine_bytes,
                          double free_rate_bytes_per_sec);

/** Seconds one sweep takes for a given amount of swept memory. */
double sweepSeconds(uint64_t swept_bytes,
                    double scan_rate_bytes_per_sec);

/**
 * Memory overhead of the quarantine + shadow map: the paper's 25%
 * quarantine costs ~12.5% of *total* memory on average because the
 * heap is only part of the footprint; we report the heap-relative
 * fraction plus the 1/128 shadow cost.
 */
double predictedMemoryOverhead(double quarantine_fraction);

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_ANALYTICAL_MODEL_HH

/**
 * @file
 * PICASSO-style colored capabilities. Every allocation is assigned a
 * color from a bounded pool, carried in the capability's spare
 * metadata bits (cap::kColorBits). A color is *open* while it
 * accepts allocations, *sealed* once allocsPerColor allocations
 * share it, and *retired* once every allocation in its cohort has
 * been freed. Freed memory still quarantines — reuse is blocked
 * until the chunk's color is recycled — but the revocation trigger
 * is color retirement, not quarantine fill, so scans run far less
 * often than CHERIvoke's sweeps on cohort-friendly workloads.
 *
 * The recycling scan is a sweep epoch (inherited mechanics: paint,
 * registers, page worklist — stale colored capabilities lose their
 * tags exactly like stale sweep-era capabilities) plus a color-table
 * pass that bumps each retired color's generation and returns it to
 * the free pool, modelled as tableEntryBytes per pool entry.
 *
 * Pool exhaustion: when no color is free at allocation time, the
 * backend deterministically *shares* the lowest-numbered non-free
 * color (colorForcedShares) and flags the stall
 * (colorExhaustionStalls) — the hardware analogue would be stalling
 * the allocator on the recycler.
 */

#ifndef CHERIVOKE_REVOKE_BACKENDS_COLOR_BACKEND_HH
#define CHERIVOKE_REVOKE_BACKENDS_COLOR_BACKEND_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "revoke/backends/sweep_backend.hh"

namespace cherivoke {
namespace revoke {

class ColorBackend final : public SweepBackend
{
  public:
    explicit ColorBackend(const BackendConfig &config);

    BackendKind kind() const override { return BackendKind::Color; }
    const char *name() const override { return "color"; }

    cap::Capability onAlloc(const cap::Capability &capability) override;
    alloc::FreeRouting onFree(uint64_t chunk_addr, uint64_t chunk_size,
                              uint64_t payload) override;

    /** Retired colors reached the recycle threshold, the pool is
     *  exhausted with colors waiting to recycle, or the quarantine
     *  safety valve fired. */
    bool needsRevocation() const override;

    void finishEpoch(EpochStats &epoch) override;

    /** Recycling scans must observe the whole heap: a retired
     *  color's stale capabilities can be anywhere, so tier scoping
     *  is ignored and every epoch stays full-depth. */
    void setEpochScope(EpochScope scope) override { (void)scope; }

    /** @name Introspection (tests, benches) */
    /// @{
    unsigned poolColors() const { return pool_colors_; }
    unsigned freeColors() const
    {
        return static_cast<unsigned>(free_colors_.size());
    }
    unsigned retiredColors() const { return retired_; }
    uint64_t generation(uint8_t color) const
    {
        return table_.at(color).generation;
    }
    unsigned recycleThreshold() const;
    /// @}

  private:
    enum class ColorState { Free, Open, Sealed, Retired };

    struct ColorEntry
    {
        uint64_t generation = 0;
        uint64_t liveAllocs = 0;
        uint64_t allocs = 0; //!< cohort size since last recycle
        ColorState state = ColorState::Free;
    };

    /** Colors actually in the pool (config clamped to the
     *  architectural field width, colors 1..pool_colors_). */
    unsigned pool_colors_;
    /** Indexed by color value; entry 0 unused ("uncolored"). */
    std::vector<ColorEntry> table_;
    /** FIFO recycle order keeps color assignment deterministic. */
    std::deque<uint8_t> free_colors_;
    uint8_t open_color_ = 0; //!< 0 = none open
    unsigned retired_ = 0;
    /** payload base -> color. Never iterated (determinism). */
    std::unordered_map<uint64_t, uint8_t> chunk_color_;
};

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_BACKENDS_COLOR_BACKEND_HH

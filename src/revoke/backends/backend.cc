#include "revoke/backends/backend.hh"

#include "revoke/backends/color_backend.hh"
#include "revoke/backends/objid_backend.hh"
#include "revoke/backends/sweep_backend.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace revoke {

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Sweep: return "sweep";
      case BackendKind::Color: return "color";
      case BackendKind::ObjectId: return "objid";
    }
    return "unknown";
}

bool
parseBackend(const std::string &name, BackendKind &out)
{
    if (name == "sweep") {
        out = BackendKind::Sweep;
        return true;
    }
    if (name == "color" || name == "colors") {
        out = BackendKind::Color;
        return true;
    }
    if (name == "objid" || name == "object-id") {
        out = BackendKind::ObjectId;
        return true;
    }
    return false;
}

std::unique_ptr<RevocationBackend>
makeBackend(BackendKind kind, const BackendConfig &config)
{
    switch (kind) {
      case BackendKind::Sweep:
        return std::make_unique<SweepBackend>(config);
      case BackendKind::Color:
        return std::make_unique<ColorBackend>(config);
      case BackendKind::ObjectId:
        return std::make_unique<ObjectIdBackend>(config);
    }
    panic("unknown backend kind");
}

} // namespace revoke
} // namespace cherivoke

/**
 * @file
 * The classic CHERIvoke pipeline behind the backend interface:
 * quarantine on free, and an epoch that freezes + paints the
 * quarantine, sweeps registers and capability memory, then releases
 * the frozen runs. This is a verbatim relocation of the epoch
 * mechanics the RevocationEngine used to inline — the engine with a
 * SweepBackend is bit-identical to the pre-backend engine.
 */

#ifndef CHERIVOKE_REVOKE_BACKENDS_SWEEP_BACKEND_HH
#define CHERIVOKE_REVOKE_BACKENDS_SWEEP_BACKEND_HH

#include <vector>

#include "revoke/backends/backend.hh"

namespace cherivoke {
namespace revoke {

class SweepBackend : public RevocationBackend
{
  public:
    using RevocationBackend::RevocationBackend;

    BackendKind kind() const override { return BackendKind::Sweep; }
    const char *name() const override { return "sweep"; }

    /** Quarantine at/over budget (paper: Q >= fraction * heap)? */
    bool needsRevocation() const override;

    void beginEpoch(EpochStats &epoch, bool want_barrier) override;
    size_t step(EpochStats &epoch, size_t max_pages,
                cache::Hierarchy *hierarchy) override;
    void finishEpoch(EpochStats &epoch) override;

    /** Honour tier scoping: a scoped epoch freezes only runs born
     *  at/after scope.minBirth and prunes the page worklist through
     *  scope.pageQualifies. */
    void setEpochScope(EpochScope scope) override
    {
        scope_ = std::move(scope);
    }

    size_t
    pagesRemaining() const override
    {
        return worklist_.size() - next_;
    }

    void releaseBarrier() override;

    const std::vector<uint64_t> *
    frozenWorklist() const override
    {
        return &worklist_;
    }

  protected:
    bool barrier_on_ = false;
    std::vector<uint64_t> worklist_;
    size_t next_ = 0;
    EpochScope scope_{};
};

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_BACKENDS_SWEEP_BACKEND_HH

#include "revoke/backends/objid_backend.hh"

#include "alloc/chunk.hh"
#include "alloc/dlmalloc.hh"

namespace cherivoke {
namespace revoke {

cap::Capability
ObjectIdBackend::onAlloc(const cap::Capability &capability)
{
    const uint64_t id = next_id_++;
    ++stats_.idsAssigned;
    live_[capability.base()] = id;
    // Stamp the inline tag: the low 24 bits of the ID live in the
    // chunk header's spare size-word bits, where the modelled
    // hardware check reads them on every dereference.
    alloc::ChunkView view(ctx_.space->memory(),
                          alloc::DlAllocator::chunkOf(
                              capability.base()));
    view.setIdTag(static_cast<uint32_t>(id));
    return capability;
}

alloc::FreeRouting
ObjectIdBackend::onFree(uint64_t chunk_addr, uint64_t chunk_size,
                        uint64_t payload)
{
    (void)chunk_addr;
    (void)chunk_size;
    auto it = live_.find(payload);
    if (it != live_.end()) {
        live_.erase(it);
        ++retired_;
        ++stats_.idsRetired;
    }
    // O(1) revocation: the ID is dead, so every stale reference now
    // fails its check — the memory is immediately reusable.
    return alloc::FreeRouting::ReleaseNow;
}

void
ObjectIdBackend::onPointerUse(uint64_t n)
{
    stats_.idChecks += n;
    // One header-word read per check.
    stats_.metadataBytes += n * 8;
}

bool
ObjectIdBackend::needsRevocation() const
{
    return retired_ >= config_.idCompactRetired;
}

void
ObjectIdBackend::beginEpoch(EpochStats &epoch, bool want_barrier)
{
    // No quarantine to freeze, no shadow map, no barrier: the epoch
    // is pure table maintenance.
    (void)epoch;
    (void)want_barrier;
    compacting_ = retired_;
}

size_t
ObjectIdBackend::step(EpochStats &epoch, size_t max_pages,
                      cache::Hierarchy *hierarchy)
{
    (void)max_pages;
    (void)hierarchy;
    if (compacting_ == 0)
        return 0;
    // Rewrite the table without the dead entries: read every entry
    // (live + retired), write back the survivors. All in one slice —
    // the table is tiny next to a page worklist.
    stats_.metadataBytes +=
        (live_.size() + compacting_) * config_.tableEntryBytes +
        live_.size() * config_.tableEntryBytes;
    stats_.idTableEntriesCompacted += compacting_;
    retired_ -= compacting_;
    compacting_ = 0;
    ++epoch.slices;
    return 0;
}

void
ObjectIdBackend::finishEpoch(EpochStats &epoch)
{
    (void)epoch;
    ++stats_.idCompactions;
    compacting_ = 0;
}

} // namespace revoke
} // namespace cherivoke

/**
 * @file
 * CHERI-D-style inline object IDs. Every allocation gets a
 * monotonically increasing object ID, stamped into the chunk
 * header's spare size-word bits (alloc::ChunkView::setIdTag) and
 * tracked in a live-ID table. Every pointer dereference is modelled
 * as an ID check — the hardware compares the capability's expected
 * ID against the inline header tag — accounted as a counter plus
 * one header-word read of traffic per check.
 *
 * free() retires the ID in O(1) and the memory is reusable
 * *immediately* (FreeRouting::ReleaseNow): a stale reference fails
 * its ID check instead of being swept. No quarantine, no shadow
 * map, no load barrier. The only epoch-shaped work is *table
 * compaction*: once enough IDs have retired, the live table is
 * rewritten without the dead entries, modelled as one read of every
 * entry plus one write of every surviving entry.
 */

#ifndef CHERIVOKE_REVOKE_BACKENDS_OBJID_BACKEND_HH
#define CHERIVOKE_REVOKE_BACKENDS_OBJID_BACKEND_HH

#include <unordered_map>

#include "revoke/backends/backend.hh"

namespace cherivoke {
namespace revoke {

class ObjectIdBackend final : public RevocationBackend
{
  public:
    using RevocationBackend::RevocationBackend;

    BackendKind kind() const override { return BackendKind::ObjectId; }
    const char *name() const override { return "objid"; }

    cap::Capability onAlloc(const cap::Capability &capability) override;
    alloc::FreeRouting onFree(uint64_t chunk_addr, uint64_t chunk_size,
                              uint64_t payload) override;
    void onPointerUse(uint64_t n) override;

    /** Enough retired IDs to warrant a table compaction? */
    bool needsRevocation() const override;

    void beginEpoch(EpochStats &epoch, bool want_barrier) override;
    size_t step(EpochStats &epoch, size_t max_pages,
                cache::Hierarchy *hierarchy) override;
    void finishEpoch(EpochStats &epoch) override;

    /** @name Introspection (tests, benches) */
    /// @{
    uint64_t liveIds() const { return live_.size(); }
    uint64_t retiredIds() const { return retired_; }
    uint64_t nextId() const { return next_id_; }
    /// @}

  private:
    /** payload base -> object ID. Never iterated (determinism). */
    std::unordered_map<uint64_t, uint64_t> live_;
    uint64_t next_id_ = 1; //!< 0 reserved: "no ID"
    uint64_t retired_ = 0; //!< retired since the last compaction
    uint64_t compacting_ = 0; //!< entries frozen for the open epoch
};

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_BACKENDS_OBJID_BACKEND_HH

#include "revoke/backends/color_backend.hh"

#include <algorithm>

#include "cap/capability.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace revoke {

ColorBackend::ColorBackend(const BackendConfig &config)
    : SweepBackend(config),
      pool_colors_(std::clamp<unsigned>(config.colors, 1,
                                        cap::kMaxColors - 1)),
      table_(pool_colors_ + 1)
{
    for (unsigned c = 1; c <= pool_colors_; ++c)
        free_colors_.push_back(static_cast<uint8_t>(c));
}

unsigned
ColorBackend::recycleThreshold() const
{
    return std::max<unsigned>(
        1, static_cast<unsigned>(static_cast<double>(pool_colors_) *
                                 config_.recycleFraction));
}

cap::Capability
ColorBackend::onAlloc(const cap::Capability &capability)
{
    if (open_color_ == 0) {
        if (!free_colors_.empty()) {
            open_color_ = free_colors_.front();
            free_colors_.pop_front();
            ColorEntry &e = table_[open_color_];
            e.state = ColorState::Open;
            e.allocs = 0;
        } else {
            // Pool exhausted: deterministically share the
            // lowest-numbered color that still has (or may grow) live
            // allocations. The hardware analogue is the allocator
            // stalling on the recycler; the model counts the stall
            // and widens a cohort instead.
            ++stats_.colorExhaustionStalls;
            ++stats_.colorForcedShares;
            uint8_t share = 0;
            for (unsigned c = 1; c <= pool_colors_; ++c) {
                const ColorState s = table_[c].state;
                if (s == ColorState::Open || s == ColorState::Sealed) {
                    share = static_cast<uint8_t>(c);
                    break;
                }
            }
            if (share == 0) {
                // Every color retired and none recycled yet: reuse
                // the lowest retired color un-recycled (its stale
                // capabilities stay revocable by the pending scan).
                share = 1;
                CHERIVOKE_ASSERT(table_[share].state ==
                                 ColorState::Retired);
                --retired_;
            }
            open_color_ = share;
            table_[share].state = ColorState::Open;
        }
    }
    ColorEntry &e = table_[open_color_];
    ++e.allocs;
    ++e.liveAllocs;
    ++stats_.colorAssigns;
    chunk_color_[capability.base()] = open_color_;
    const uint8_t color = open_color_;
    if (e.allocs >= config_.allocsPerColor) {
        e.state = ColorState::Sealed;
        open_color_ = 0;
    }
    return capability.withColor(color);
}

alloc::FreeRouting
ColorBackend::onFree(uint64_t chunk_addr, uint64_t chunk_size,
                     uint64_t payload)
{
    (void)chunk_addr;
    (void)chunk_size;
    auto it = chunk_color_.find(payload);
    if (it != chunk_color_.end()) {
        ColorEntry &e = table_[it->second];
        if (e.liveAllocs > 0)
            --e.liveAllocs;
        if (e.state == ColorState::Sealed && e.liveAllocs == 0) {
            e.state = ColorState::Retired;
            ++retired_;
            ++stats_.colorsRetired;
        }
        chunk_color_.erase(it);
    }
    // Reuse stays blocked until the color recycles: the chunk
    // quarantines and is released by the recycling scan's epoch.
    return alloc::FreeRouting::Quarantine;
}

bool
ColorBackend::needsRevocation() const
{
    if (retired_ >= recycleThreshold())
        return true;
    // Exhaustion with something to recycle: scan now rather than
    // forcing cohort shares.
    if (free_colors_.empty() && open_color_ == 0 && retired_ > 0)
        return true;
    // Safety valve: never let the quarantine outgrow the sweep
    // backend's budget even when cohorts refuse to die.
    return ctx_.allocator->needsSweep();
}

void
ColorBackend::finishEpoch(EpochStats &epoch)
{
    SweepBackend::finishEpoch(epoch);
    // The bounded recycling pass: one table entry per pool color,
    // bumping each retired color's generation and returning it to
    // the free pool in color order (deterministic FIFO refill).
    ++stats_.recycleScans;
    stats_.metadataBytes += pool_colors_ * config_.tableEntryBytes;
    for (unsigned c = 1; c <= pool_colors_; ++c) {
        ColorEntry &e = table_[c];
        if (e.state != ColorState::Retired)
            continue;
        ++e.generation;
        e.state = ColorState::Free;
        e.allocs = 0;
        free_colors_.push_back(static_cast<uint8_t>(c));
        ++stats_.colorsRecycled;
        --retired_;
    }
}

} // namespace revoke
} // namespace cherivoke

#include "revoke/backends/sweep_backend.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cherivoke {
namespace revoke {

bool
SweepBackend::needsRevocation() const
{
    return ctx_.allocator->needsSweep();
}

void
SweepBackend::beginEpoch(EpochStats &epoch, bool want_barrier)
{
    // Freeze + paint this epoch's (possibly tier-scoped) revocation
    // set (sharded shadow-map views when configured). With the
    // default full-depth scope the frozen bytes equal the whole
    // quarantine at entry — the historical bytesReleased value.
    epoch.paint =
        ctx_.allocator->prepareSweep(ctx_.paintShards, scope_.minBirth);
    epoch.bytesReleased = ctx_.allocator->frozenBytes();

    if (want_barrier) {
        // The barrier: loads of painted-base capabilities are
        // stripped. The shadow map is read-only for the duration of
        // the epoch (later frees wait for the next epoch), so the
        // predicate is stable. The shadow lives in the (possibly
        // shared) TaggedMemory, so with co-resident tenants every
        // tenant's loads are checked — isRevoked is a pure function
        // of the address.
        const alloc::ShadowMap &shadow = ctx_.allocator->shadowMap();
        ctx_.space->memory().installLoadBarrier(
            [&shadow](uint64_t base) {
                return shadow.isRevoked(base);
            });
        barrier_on_ = true;
    }

    // Registers first: the mutator continues running out of them.
    epoch.sweep += ctx_.sweeper->sweepRegisters(
        *ctx_.space, ctx_.allocator->shadowMap());

    worklist_ = ctx_.sweeper->buildWorklist(*ctx_.space, epoch.sweep);
    if (scope_.scoped() && scope_.pageQualifies) {
        // Tier-local sweep: drop pages that provably cannot hold a
        // capability to any chunk young enough to be in this scope
        // (no tagged store landed there since the scope's birth
        // cutoff). Registers were already swept above — they are
        // part of every epoch regardless of depth.
        std::vector<uint64_t> kept;
        kept.reserve(worklist_.size());
        for (const uint64_t page : worklist_) {
            if (scope_.pageQualifies(page))
                kept.push_back(page);
            else
                ++epoch.sweep.pagesSkippedTier;
        }
        worklist_ = std::move(kept);
    }
    next_ = 0;
}

size_t
SweepBackend::step(EpochStats &epoch, size_t max_pages,
                   cache::Hierarchy *hierarchy)
{
    if (next_ < worklist_.size() && max_pages > 0) {
        const size_t end = next_ + std::min(max_pages,
                                            worklist_.size() - next_);
        epoch.sweep += ctx_.sweeper->sweepPages(
            *ctx_.space, ctx_.allocator->shadowMap(), worklist_, next_,
            end, hierarchy);
        next_ = end;
        ++epoch.slices;
    }
    return worklist_.size() - next_;
}

void
SweepBackend::finishEpoch(EpochStats &epoch)
{
    CHERIVOKE_ASSERT(next_ == worklist_.size(),
                     "(worklist not drained: call step() to "
                     "completion first)");
    if (barrier_on_) {
        // The registers once more (they were swept at begin and the
        // barrier kept them clean, but it is cheap), then the
        // barrier comes off.
        epoch.sweep += ctx_.sweeper->sweepRegisters(
            *ctx_.space, ctx_.allocator->shadowMap());
        ctx_.space->memory().removeLoadBarrier();
        barrier_on_ = false;
    }
    epoch.internalFrees = ctx_.allocator->finishSweep();
    worklist_.clear();
    next_ = 0;
}

void
SweepBackend::releaseBarrier()
{
    // Never leave a dangling barrier behind (engine destruction with
    // an epoch still open).
    if (barrier_on_) {
        ctx_.space->memory().removeLoadBarrier();
        barrier_on_ = false;
    }
}

} // namespace revoke
} // namespace cherivoke

/**
 * @file
 * Pluggable revocation backends: the abstraction over "how freed
 * memory becomes safe to reuse". The engine owns epoch arbitration,
 * policies, and statistics accumulation; a backend owns the epoch
 * *mechanics* for one domain and hooks the allocator hot path
 * (alloc::AllocObserver) to mint per-allocation metadata:
 *
 *  - sweep (CHERIvoke, the paper): frees quarantine; an epoch paints
 *    the shadow map and sweeps capability memory, clearing dangling
 *    tags, then releases the quarantine.
 *  - color (PICASSO-style): every allocation carries a color from a
 *    bounded pool in the capability's spare metadata bits; a color
 *    whose cohort is fully dead retires, and a *recycling scan* —
 *    rarer than quarantine-triggered sweeps — revokes stale colored
 *    capabilities and returns retired colors (generation bumped) to
 *    the pool.
 *  - objid (CHERI-D-style): every allocation carries an inline
 *    object ID in its chunk header; each dereference is modelled as
 *    an ID check (counter + traffic), frees retire the ID in O(1)
 *    and the memory is reusable immediately; epochs compact the ID
 *    table instead of sweeping memory.
 *
 * All three run on the same DlAllocator, trace pipeline, and
 * RevocationEngine policy surface; the sweep backend behind this
 * interface is bit-identical to the pre-backend engine.
 */

#ifndef CHERIVOKE_REVOKE_BACKENDS_BACKEND_HH
#define CHERIVOKE_REVOKE_BACKENDS_BACKEND_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "alloc/cherivoke_alloc.hh"
#include "revoke/sweeper.hh"

namespace cherivoke {
namespace revoke {

/**
 * Tier scope for the next epoch (hierarchical epochs, PoisonCap
 * style). A scoped epoch releases only quarantined runs whose birth
 * stamp is >= minBirth, and may skip sweeping pages the
 * @p pageQualifies predicate rules out (pages that provably hold no
 * capability stored recently enough to reference a chunk that young;
 * skipped pages are counted in SweepStats::pagesSkippedTier). The
 * default value is a full-depth epoch — the classic behaviour.
 * Backends whose revocation mechanics cannot be scoped (color
 * recycling scans, object-ID compaction) ignore it.
 */
struct EpochScope
{
    uint32_t minBirth = 0;
    std::function<bool(uint64_t page_addr)> pageQualifies;

    bool scoped() const { return minBirth != 0; }
};

/** Statistics for one complete revocation epoch. */
struct EpochStats
{
    alloc::PaintStats paint;
    SweepStats sweep;
    uint64_t internalFrees = 0;
    uint64_t bytesReleased = 0;
    /** Bounded sweep pauses the epoch was divided into. */
    uint64_t slices = 0;
};

/** The revocation-backend implementations. */
enum class BackendKind
{
    Sweep,    //!< quarantine + sweeping revocation (CHERIvoke)
    Color,    //!< colored capabilities + recycling scan (PICASSO)
    ObjectId, //!< inline object IDs + per-use check (CHERI-D)
};

/** Human-readable backend name ("sweep", "color", "objid"). */
const char *backendName(BackendKind kind);

/** Parse a backend name ("sweep", "color", "objid").
 *  @return true and sets @p out on success. */
bool parseBackend(const std::string &name, BackendKind &out);

/** Tunables for the metadata-bearing backends. */
struct BackendConfig
{
    /** Colored-capability pool size (clamped to the architectural
     *  field: at most cap::kMaxColors - 1 usable colors; color 0 is
     *  "uncolored"). */
    unsigned colors = 16;
    /** Seal a color after this many allocations share it. */
    uint64_t allocsPerColor = 256;
    /** Run a recycling scan once this fraction of the pool is
     *  retired. */
    double recycleFraction = 0.5;
    /** Object-ID backend: compact once this many IDs are retired. */
    uint64_t idCompactRetired = 4096;
    /** Modelled bytes per color-table / ID-table entry. */
    uint64_t tableEntryBytes = 16;
};

/** Backend-specific modelled statistics (cumulative per domain). */
struct BackendStats
{
    /** @name Colored-capability backend */
    /// @{
    uint64_t colorAssigns = 0;          //!< capabilities colored
    uint64_t colorsRetired = 0;         //!< cohorts fully dead
    uint64_t colorsRecycled = 0;        //!< returned to the pool
    uint64_t recycleScans = 0;          //!< recycling-scan epochs
    uint64_t colorExhaustionStalls = 0; //!< pool empty at alloc
    uint64_t colorForcedShares = 0;     //!< cohort shared under stall
    /// @}

    /** @name Object-ID backend */
    /// @{
    uint64_t idsAssigned = 0;
    uint64_t idsRetired = 0;
    uint64_t idChecks = 0;      //!< modelled per-dereference checks
    uint64_t idCompactions = 0; //!< table-compaction epochs
    uint64_t idTableEntriesCompacted = 0;
    /// @}

    /** Modelled metadata traffic (table scans, per-check header
     *  reads) beyond what the sweeper accounts. */
    uint64_t metadataBytes = 0;

    bool operator==(const BackendStats &o) const = default;
};

/** What a backend operates on: one engine domain's objects. */
struct BackendContext
{
    alloc::CherivokeAllocator *allocator = nullptr;
    mem::AddressSpace *space = nullptr;
    Sweeper *sweeper = nullptr;
    /** Shadow-map paint shards (EngineConfig::paintShards). */
    unsigned paintShards = 1;
};

/**
 * One domain's revocation mechanics. Also an AllocObserver: the
 * engine installs the backend as its allocator's observer, so
 * onAlloc/onFree run inline in the mutator hot path.
 *
 * Epoch contract (driven by the engine, which owns open/closed
 * state and policy arbitration): beginEpoch → step until 0 remains
 * → finishEpoch, all against the same EpochStats object. A backend
 * with no page-granular work (objid) does its work in beginEpoch /
 * finishEpoch and returns 0 from step.
 */
class RevocationBackend : public alloc::AllocObserver
{
  public:
    explicit RevocationBackend(const BackendConfig &config)
        : config_(config)
    {}

    virtual BackendKind kind() const = 0;
    virtual const char *name() const = 0;

    /** Attach to a domain's allocator/space/sweeper. */
    void
    bind(const BackendContext &ctx)
    {
        ctx_ = ctx;
        onBind();
    }

    /** Revocation work due (the engine's quarantinePressure)? */
    virtual bool needsRevocation() const = 0;

    /** Open an epoch. @p want_barrier: the governing policy runs
     *  concurrently with the mutator and wants the load-side
     *  revocation barrier (sweep-family backends install it). */
    virtual void beginEpoch(EpochStats &epoch, bool want_barrier) = 0;

    /** Set the tier scope for subsequent epochs (hierarchical
     *  epochs). Default: ignored — every epoch is full-depth.
     *  Backends that honour it (sweep) apply it in beginEpoch. */
    virtual void setEpochScope(EpochScope scope) { (void)scope; }

    /** Advance the epoch by up to @p max_pages units of work.
     *  @return units still remaining */
    virtual size_t step(EpochStats &epoch, size_t max_pages,
                        cache::Hierarchy *hierarchy) = 0;

    /** Close the epoch (all work drained). */
    virtual void finishEpoch(EpochStats &epoch) = 0;

    /** Work units remaining in the open epoch (0 when idle). */
    virtual size_t pagesRemaining() const { return 0; }

    /** The open epoch's frozen page worklist, for backends that
     *  sweep page-granular memory (the background sweeper snapshots
     *  it at dispatch). nullptr for backends with no such worklist
     *  (objid) — the engine then skips background dispatch. */
    virtual const std::vector<uint64_t> *frozenWorklist() const
    {
        return nullptr;
    }

    /** Drop any installed load barrier (engine-destructor safety;
     *  no-op for barrier-free backends). */
    virtual void releaseBarrier() {}

    /** Model @p n pointer dereferences through this backend's
     *  per-use check (no-op unless the backend checks on use). */
    virtual void onPointerUse(uint64_t n) { (void)n; }

    const BackendStats &stats() const { return stats_; }
    const BackendConfig &config() const { return config_; }

  protected:
    /** Late-bind hook for subclasses needing ctx_ at attach time. */
    virtual void onBind() {}

    BackendContext ctx_{};
    BackendConfig config_{};
    BackendStats stats_{};
};

/** Instantiate the built-in backend for @p kind. */
std::unique_ptr<RevocationBackend>
makeBackend(BackendKind kind, const BackendConfig &config = BackendConfig{});

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_BACKENDS_BACKEND_HH

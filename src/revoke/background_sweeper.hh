/**
 * @file
 * The background revocation sweeper: one worker thread per
 * RevocationEngine that races the mutator over each epoch's frozen
 * worklist. The handoff keeps the PR 1/PR 6 record/replay
 * discipline intact:
 *
 *  - At dispatch (epoch open, mutator quiescent at the pump point)
 *    the engine snapshots the frozen worklist — page bases plus the
 *    raw 128-bit words of every tagged granule, read counter-free —
 *    into a FrozenWorklist the worker owns outright.
 *  - Off-thread, the worker decodes capability bases and probes the
 *    genuinely shared, frozen shadow map (ShadowMap::isRevoked is a
 *    lock-free pure read), publishing an atomic page watermark and
 *    heartbeat, and accumulating per-slice stat logs in canonical
 *    (worklist) order — deterministic regardless of interleaving.
 *  - The engine's modelled statistics still come from the unchanged
 *    mutator-assist replay; it merely *rendezvouses* with the
 *    worker's watermark before each modelled slice, so a bg-on run
 *    is bit-identical to bg-off by construction, and joins the
 *    worker before the epoch's barrier/shadow are released.
 *
 * Failure modes are injectable as *states*, never wall time: a
 * Stalled job makes no progress until cancelled (sweeper-stall), a
 * Crashed job drops dead before its first slice (sweeper-crash),
 * and a Slow job recovers after `factor` supervision nudges
 * (sweeper-slow) — all observed at deterministic rendezvous points.
 */

#ifndef CHERIVOKE_REVOKE_BACKGROUND_SWEEPER_HH
#define CHERIVOKE_REVOKE_BACKGROUND_SWEEPER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace cherivoke {

namespace alloc {
class ShadowMap;
} // namespace alloc

namespace mem {
class TaggedMemory;
} // namespace mem

namespace revoke {

/**
 * The dispatch-time snapshot of one epoch's frozen sweep work: the
 * worklist's page bases and, per page, the raw lo/hi words of every
 * tagged granule. Built counter-free on the dispatching thread so a
 * bg-on run perturbs no modelled statistic; owned by the worker for
 * the epoch, so the only memory it shares with the mutator is the
 * frozen shadow map.
 */
struct FrozenWorklist
{
    struct PageEntry
    {
        uint64_t pageBase = 0;
        uint32_t firstCap = 0; //!< index into caps
        uint32_t capCount = 0;
    };

    struct CapEntry
    {
        uint64_t lo = 0;
        uint64_t hi = 0;
    };

    std::vector<PageEntry> pages;
    std::vector<CapEntry> caps;
};

/**
 * Build the snapshot on the dispatching thread (mutator quiescent
 * at the pump point) using only counter-free reads — a bg-on run
 * must not perturb any modelled memory statistic.
 */
FrozenWorklist
buildFrozenWorklist(const mem::TaggedMemory &memory,
                    const std::vector<uint64_t> &pages);

class BackgroundSweeper
{
  public:
    /** Job lifecycle, readable at any rendezvous. */
    enum class State : uint8_t
    {
        Idle,      //!< no job since construction / last epoch
        Running,   //!< sweeping slices
        Stalled,   //!< injected no-progress state (stall / slow)
        Done,      //!< worklist fully swept
        Crashed,   //!< injected thread death; heartbeat stopped
        Cancelled, //!< cancel() consumed the job
    };

    /** Injected failure mode for one dispatched job. */
    enum class Inject : uint8_t
    {
        None,
        Stall, //!< sticky: only cancel() ends it
        Crash, //!< dies before the first slice
        Slow,  //!< recovers after `slowFactor` nudge() calls
    };

    /** Per-slice stat log, in canonical worklist order. */
    struct SliceLog
    {
        uint64_t firstPage = 0;
        uint64_t pages = 0;
        uint64_t capsExamined = 0;
        uint64_t capsRevoked = 0;

        bool operator==(const SliceLog &o) const = default;
    };

    BackgroundSweeper();
    ~BackgroundSweeper();

    BackgroundSweeper(const BackgroundSweeper &) = delete;
    BackgroundSweeper &operator=(const BackgroundSweeper &) = delete;

    /**
     * Hand an epoch's frozen snapshot to the worker. The previous
     * job must be terminal (Idle/Done/Crashed/Cancelled). @p shadow
     * must stay frozen (painted, unwritten) until the job is joined
     * via cancel() or observed Done.
     */
    void dispatch(FrozenWorklist worklist,
                  const alloc::ShadowMap *shadow,
                  size_t pages_per_slice, Inject inject,
                  uint64_t slow_factor);

    /** One supervision retry credit: a Slow job whose credits are
     *  exhausted resumes sweeping. No-op for Stall/Crash. */
    void nudge();

    /**
     * Cancel the in-flight job and block until the worker has let
     * go of it (state becomes Cancelled, or was already terminal).
     * After cancel() returns, the shadow/barrier may be released.
     */
    void cancel();

    State state() const;

    /** Pages completed, monotone within a job (lock-free read). */
    uint64_t
    watermark() const
    {
        return watermark_.load(std::memory_order_acquire);
    }

    /** Slice-completion heartbeat counter (lock-free read). */
    uint64_t
    heartbeats() const
    {
        return heartbeats_.load(std::memory_order_acquire);
    }

    /**
     * Block until watermark >= @p target_pages, the job leaves the
     * Running state, or @p timeout_ns elapses. Returns true iff the
     * watermark target was reached.
     */
    bool waitProgress(uint64_t target_pages, uint64_t timeout_ns);

    /** The finished/cancelled job's per-slice logs (canonical
     *  order). Call only while the job is terminal. */
    const std::vector<SliceLog> &sliceLogs() const { return logs_; }

  private:
    void workerMain();
    SliceLog sweepSlice(size_t first, size_t end) const;

    std::thread worker_;
    mutable std::mutex mutex_;
    std::condition_variable job_cv_;      //!< worker waits here
    std::condition_variable progress_cv_; //!< engine waits here

    // Job inputs (written by dispatch under mutex_, read by the
    // worker; immutable while a job is in flight).
    FrozenWorklist worklist_;
    const alloc::ShadowMap *shadow_ = nullptr;
    size_t pages_per_slice_ = 64;
    Inject inject_ = Inject::None;
    uint64_t slow_credits_ = 0;

    // Job state (mutex_-guarded; watermark/heartbeat also atomic
    // for lock-free observation from the rendezvous).
    State state_ = State::Idle;
    bool job_pending_ = false;
    bool cancel_requested_ = false;
    bool shutdown_ = false;
    size_t next_ = 0;
    std::vector<SliceLog> logs_;
    std::atomic<uint64_t> watermark_{0};
    std::atomic<uint64_t> heartbeats_{0};
};

} // namespace revoke
} // namespace cherivoke

#endif // CHERIVOKE_REVOKE_BACKGROUND_SWEEPER_HH

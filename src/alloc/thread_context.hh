/**
 * @file
 * The thread-local half of the multi-threaded mutator front-end: one
 * ThreadAllocContext per mutator thread tracks the allocations that
 * thread *owns* (the chunks it malloc'd), applies frees of owned
 * chunks — issued locally or drained from the thread's remote-free
 * inbox — and tallies what the thread hands to its quarantine.
 *
 * Ownership protocol (snmalloc-style): the allocating thread owns a
 * chunk for its whole lifetime. A local free (the owner freeing its
 * own chunk) applies immediately; a remote free arrives later as a
 * message and is applied by the owner when it drains its inbox. The
 * context absorbs the one genuine reordering this allows — a remote
 * free *message* overtaking the owner's own malloc of that id in
 * wall-clock time — by parking such early frees until the malloc
 * lands, so the context's end state (and its state at any epoch
 * barrier, where the message-flush contract forbids early frees) is
 * a deterministic function of the op stream, not of thread timing.
 *
 * The context is single-threaded by construction (only the owner
 * touches it); cross-thread traffic happens in the remote-free
 * queues, never here.
 */

#ifndef CHERIVOKE_ALLOC_THREAD_CONTEXT_HH
#define CHERIVOKE_ALLOC_THREAD_CONTEXT_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "alloc/quarantine.hh"

namespace cherivoke {
namespace alloc {

/** Per-mutator-thread allocation context. */
class ThreadAllocContext
{
  public:
    explicit ThreadAllocContext(unsigned thread) : thread_(thread) {}

    unsigned thread() const { return thread_; }

    /**
     * Take ownership of allocation @p id (@p bytes modelled size).
     * If a remote free of @p id already arrived (an early free), the
     * allocation is quarantined immediately instead of going live.
     */
    void noteMalloc(uint64_t id, uint64_t bytes);

    /** The owner frees its own chunk: apply immediately. */
    void noteLocalFree(uint64_t id);

    /**
     * Apply one drained remote-free message. The id is normally
     * live; when the message overtook our malloc it is parked as an
     * early free (@p bytes, carried by the message, sizes it).
     */
    void noteRemoteFree(uint64_t id, uint64_t bytes);

    /** @name Owned-allocation state */
    /// @{
    uint64_t ownedLiveCount() const { return live_.size(); }
    uint64_t ownedLiveBytes() const { return live_bytes_; }
    bool ownsLive(uint64_t id) const { return live_.count(id) != 0; }
    /** Remote frees parked until their malloc lands. Always empty at
     *  an epoch barrier (the flush contract) and at teardown. */
    uint64_t earlyFreeCount() const { return early_.size(); }
    /// @}

    /** @name Quarantine handoff tallies (chunks this thread owns) */
    /// @{
    uint64_t mallocs() const { return mallocs_; }
    uint64_t localFrees() const { return local_frees_; }
    uint64_t remoteFreesApplied() const { return remote_applied_; }
    uint64_t quarantinedChunks() const { return quarantined_chunks_; }
    uint64_t quarantinedBytes() const { return quarantined_bytes_; }
    /// @}

    /**
     * Hand a drained batch of *real* chunks to a real quarantine —
     * the production handoff path, exercised by the queue tests
     * against a live DlAllocator. Tallies the batch against this
     * context. @return merges performed by the quarantine
     */
    unsigned handoffToQuarantine(DlAllocator &dl, Quarantine &q,
                                 const std::vector<QuarantineRun> &chunks);

  private:
    void quarantineTally(uint64_t bytes);

    unsigned thread_;
    /** Owned live allocations: id -> modelled bytes. */
    std::unordered_map<uint64_t, uint64_t> live_;
    /** Remote frees that arrived before their malloc. */
    std::unordered_set<uint64_t> early_;
    uint64_t live_bytes_ = 0;
    uint64_t mallocs_ = 0;
    uint64_t local_frees_ = 0;
    uint64_t remote_applied_ = 0;
    uint64_t quarantined_chunks_ = 0;
    uint64_t quarantined_bytes_ = 0;
};

} // namespace alloc
} // namespace cherivoke

#endif // CHERIVOKE_ALLOC_THREAD_CONTEXT_HH

/**
 * @file
 * The quarantine buffer (paper §3.1): freed allocations detained until
 * a revocation sweep, with constant-time aggregation of contiguous
 * frees (§5.2: "the dlmalloc constant-time algorithm for aggregating
 * contiguous allocations"). Aggregation means the number of internal
 * frees after a sweep can be far smaller than the number of program
 * frees (§6.1.1).
 */

#ifndef CHERIVOKE_ALLOC_QUARANTINE_HH
#define CHERIVOKE_ALLOC_QUARANTINE_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "alloc/dlmalloc.hh"

namespace cherivoke {
namespace alloc {

/** A contiguous run of quarantined chunks. */
struct QuarantineRun
{
    uint64_t addr = 0;
    uint64_t size = 0;

    uint64_t end() const { return addr + size; }
};

/**
 * One address band of a sharded revocation set: the runs whose start
 * address falls in [lo, hi), in address order. Sharding keeps whole
 * runs together (a run starting in a band may extend past its upper
 * bound), so concatenating the shards reproduces runs() exactly —
 * painting shard by shard performs the identical store sequence to
 * an unsharded paint.
 */
struct QuarantineShard
{
    uint64_t lo = 0;
    uint64_t hi = 0;
    std::vector<QuarantineRun> runs;
};

/** The quarantine buffer. */
class Quarantine
{
  public:
    /**
     * Add a freshly quarantined chunk, merging with adjacent
     * quarantined runs in constant time. Rewrites the surviving run
     * header through the allocator.
     */
    void add(DlAllocator &dl, uint64_t addr, uint64_t size);

    /** Total quarantined bytes (chunk sizes, headers included). */
    uint64_t totalBytes() const { return total_bytes_; }

    /** Number of distinct runs (after aggregation). */
    size_t runCount() const { return by_start_.size(); }

    /** Number of merges performed so far. */
    uint64_t merges() const { return merges_; }

    /** Runs in address order (deterministic painting order). */
    std::vector<QuarantineRun> runs() const;

    /**
     * Partition the runs into @p shards address bands for parallel
     * or per-shard-view painting. Every run appears in exactly one
     * shard; shards are in address order and may be empty.
     */
    std::vector<QuarantineShard> shardedRuns(size_t shards) const;

    /**
     * Hand every run back to the allocator's free lists ("internal
     * frees") and empty the buffer. Returns the number of internal
     * frees performed.
     */
    uint64_t release(DlAllocator &dl);

    bool empty() const { return by_start_.empty(); }

  private:
    std::map<uint64_t, uint64_t> by_start_;        //!< addr -> size
    std::unordered_map<uint64_t, uint64_t> by_end_; //!< end -> addr
    uint64_t total_bytes_ = 0;
    uint64_t merges_ = 0;
};

} // namespace alloc
} // namespace cherivoke

#endif // CHERIVOKE_ALLOC_QUARANTINE_HH

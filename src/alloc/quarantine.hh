/**
 * @file
 * The quarantine buffer (paper §3.1): freed allocations detained until
 * a revocation sweep, with constant-time aggregation of contiguous
 * frees (§5.2: "the dlmalloc constant-time algorithm for aggregating
 * contiguous allocations"). Aggregation means the number of internal
 * frees after a sweep can be far smaller than the number of program
 * frees (§6.1.1).
 *
 * The mutator-side structure is O(1) per free: runs live in a dense
 * slab, indexed by a flat open-addressing hash table over their
 * *boundary* addresses (each run registers its start and its end).
 * add() probes the two boundaries a merge could happen at — a run
 * ending where the chunk starts, a run starting where it ends — so a
 * quarantined free costs two hash probes and at most one slab write,
 * replacing the former std::map's O(log n) ordered insert.
 *
 * Address order is only needed once per sweep (deterministic paint,
 * release and shard order), so the ordered view is materialised
 * lazily and cached; prepareSweep/finishSweep/shardedRuns share one
 * materialisation instead of copying every run per call.
 */

#ifndef CHERIVOKE_ALLOC_QUARANTINE_HH
#define CHERIVOKE_ALLOC_QUARANTINE_HH

#include <cstdint>
#include <vector>

#include "alloc/dlmalloc.hh"

namespace cherivoke {
namespace alloc {

/** A contiguous run of quarantined chunks. */
struct QuarantineRun
{
    uint64_t addr = 0;
    uint64_t size = 0;
    /**
     * Oldest birth stamp of any chunk merged into the run (0 =
     * unstamped). Merging takes the minimum so a run is exactly as
     * old as its oldest member — a tier-scoped release that requires
     * birth >= cutoff can never free a byte older than the cutoff.
     */
    uint32_t birth = 0;

    uint64_t end() const { return addr + size; }
};

/**
 * One address band of a sharded revocation set: the runs whose start
 * address falls in [lo, hi), in address order. Sharding keeps whole
 * runs together (a run starting in a band may extend past its upper
 * bound), so concatenating the shards reproduces runs() exactly —
 * painting shard by shard performs the identical store sequence to
 * an unsharded paint.
 */
struct QuarantineShard
{
    uint64_t lo = 0;
    uint64_t hi = 0;
    std::vector<QuarantineRun> runs;
};

/**
 * Flat open-addressing map from a run *boundary* address (the
 * quarantine keeps one index over starts and one over ends) to the
 * run's slab slot. Linear probing with backward-shift deletion — no
 * tombstones, so lookup cost stays bounded no matter how many
 * epochs of adds and releases pass through.
 */
class BoundaryIndex
{
  public:
    static constexpr uint32_t kNotFound = UINT32_MAX;

    BoundaryIndex();

    /** Slab slot registered for boundary @p key, or kNotFound. */
    uint32_t find(uint64_t key) const;

    /** Register @p key -> @p slot (key must not be present). */
    void insert(uint64_t key, uint32_t slot);

    /** Re-point an existing @p key at @p slot (key must be present). */
    void update(uint64_t key, uint32_t slot);

    /** Remove @p key (must be present). */
    void erase(uint64_t key);

    size_t size() const { return size_; }
    void clear();

  private:
    struct Entry
    {
        uint64_t key = 0; //!< 0 = empty (boundaries are never 0)
        uint32_t slot = 0;
    };

    size_t probeOf(uint64_t key) const;
    void grow();

    std::vector<Entry> table_;
    size_t mask_ = 0;
    size_t size_ = 0;
};

/** The quarantine buffer. */
class Quarantine
{
  public:
    /**
     * Add a freshly quarantined chunk, merging with adjacent
     * quarantined runs in constant time. Rewrites the surviving run
     * header through the allocator.
     * @return merges performed for this add (0, 1 or 2)
     */
    unsigned add(DlAllocator &dl, uint64_t addr, uint64_t size,
                 uint32_t birth = 0);

    /**
     * Quarantine a whole drained batch of chunks — the remote-free
     * handoff path: a mutator thread draining its remote-free inbox
     * hands every entry to its quarantine in one call. Exactly
     * equivalent to add()ing the entries one by one in batch order
     * (same merges, same runs, same rewritten run headers).
     * @return total merges performed across the batch
     */
    unsigned addBatch(DlAllocator &dl,
                      const std::vector<QuarantineRun> &chunks);

    /** Total quarantined bytes (chunk sizes, headers included). */
    uint64_t totalBytes() const { return total_bytes_; }

    /** Number of distinct runs (after aggregation). */
    size_t runCount() const { return runs_.size(); }

    /** Number of merges performed so far. */
    uint64_t merges() const { return merges_; }

    /** Chunks added so far (program frees that reached quarantine). */
    uint64_t adds() const { return adds_; }

    /** Runs in address order (deterministic painting order). */
    std::vector<QuarantineRun> runs() const { return orderedRuns(); }

    /**
     * Runs in address order, materialised lazily and cached until
     * the next add — the no-copy view the sweep protocol iterates.
     * prepareSweep, finishSweep and shardedRuns on a frozen epoch
     * all share one materialisation.
     */
    const std::vector<QuarantineRun> &orderedRuns() const;

    /**
     * Partition the runs into @p shards address bands for parallel
     * or per-shard-view painting. Every run appears in exactly one
     * shard; shards are in address order and may be empty. Built
     * straight from the ordered view — no intermediate full copy.
     */
    std::vector<QuarantineShard> shardedRuns(size_t shards) const;

    /**
     * Hand every run back to the allocator's free lists ("internal
     * frees", in address order) and empty the buffer. Returns the
     * number of internal frees performed.
     */
    uint64_t release(DlAllocator &dl);

    /** Quarantined bytes in runs with birth >= @p min_birth. */
    uint64_t bytesBornSince(uint32_t min_birth) const;

    /**
     * Split off every run with birth >= @p min_birth into a new
     * quarantine (the tier-scoped freeze of a hierarchical epoch),
     * leaving older runs behind. Runs never straddle the cutoff:
     * merging keeps the minimum birth, so any run containing an
     * older-than-cutoff chunk stays behind whole. Deterministic
     * (partition walks the address-ordered view); no chunk headers
     * are rewritten.
     */
    Quarantine splitBornSince(uint32_t min_birth);

    bool empty() const { return runs_.empty(); }

  private:
    void eraseSlot(uint32_t slot);
    void adoptRun(const QuarantineRun &run);

    /** Dense, unordered run slab; hash entries point into it. */
    std::vector<QuarantineRun> runs_;
    BoundaryIndex by_start_;
    BoundaryIndex by_end_;
    uint64_t total_bytes_ = 0;
    uint64_t merges_ = 0;
    uint64_t adds_ = 0;

    /** Lazily sorted snapshot of runs_; valid while no add() lands. */
    mutable std::vector<QuarantineRun> ordered_;
    mutable bool ordered_valid_ = false;
};

} // namespace alloc
} // namespace cherivoke

#endif // CHERIVOKE_ALLOC_QUARANTINE_HH

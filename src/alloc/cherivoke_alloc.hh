/**
 * @file
 * dlmalloc_cherivoke (paper §5.2): the public temporal-safety
 * allocator. free() quarantines instead of releasing; when the
 * quarantine reaches a configurable fraction of the live heap a
 * revocation sweep is due. The caller (revoke::RevocationEngine, or
 * a test) drives the prepare → sweep → finish sequence:
 *
 *     if (alloc.needsSweep()) {
 *         alloc.prepareSweep();   // paint the shadow map
 *         sweeper.sweep(...);     // clear dangling capability tags
 *         alloc.finishSweep();    // unpaint, internal frees
 *     }
 */

#ifndef CHERIVOKE_ALLOC_CHERIVOKE_ALLOC_HH
#define CHERIVOKE_ALLOC_CHERIVOKE_ALLOC_HH

#include <cstdint>

#include "alloc/dlmalloc.hh"
#include "alloc/quarantine.hh"
#include "alloc/shadow_map.hh"

namespace cherivoke {
namespace alloc {

/** Tunables for the temporal-safety allocator. */
struct CherivokeConfig
{
    /**
     * Sweep when quarantined bytes reach this fraction of the live
     * heap (paper default: 25%, §3.1/§6).
     */
    double quarantineFraction = 0.25;
    /** Never sweep below this many quarantined bytes. */
    uint64_t minQuarantineBytes = 64 * KiB;
    DlConfig dl{};
};

/** How a freed chunk becomes safe to reuse. */
enum class FreeRouting
{
    Quarantine,  //!< hold until a revocation sweep (CHERIvoke)
    ReleaseNow,  //!< reuse immediately; safety comes from metadata
};

/**
 * Revocation-backend hook into the allocation hot path. A backend
 * that mints per-allocation metadata (capability colors, inline
 * object IDs) installs itself here: onAlloc decorates the returned
 * capability and/or stamps the chunk header; onFree decides whether
 * the chunk quarantines (sweep-style) or releases immediately
 * (color/ID-style, where stale references are caught by a metadata
 * check instead of a tag sweep). The default implementation is the
 * classic CHERIvoke behaviour, so an allocator without an observer
 * is bit-identical to one with a pure-sweep observer.
 */
class AllocObserver
{
  public:
    virtual ~AllocObserver() = default;

    /** Decorate a freshly allocated capability (e.g. with a color). */
    virtual cap::Capability onAlloc(const cap::Capability &capability)
    {
        return capability;
    }

    /** Route a free: quarantine (default) or release immediately. */
    virtual FreeRouting
    onFree(uint64_t chunk_addr, uint64_t chunk_size, uint64_t payload)
    {
        (void)chunk_addr;
        (void)chunk_size;
        (void)payload;
        return FreeRouting::Quarantine;
    }
};

/**
 * Birth-stamp source for hierarchical (generation-tier) epochs. The
 * adaptive policy installs one per domain; the allocator then stamps
 * every chunk at allocation time with the stamper's current epoch
 * sequence (saturated to kBirthSaturated) so quarantined runs can be
 * classified hot/warm/cold by age. Allocators without a stamper
 * never touch the birth bits — their size words, and everything
 * downstream, stay bit-identical to pre-adaptive builds.
 */
class TierStamper
{
  public:
    virtual ~TierStamper() = default;

    /** Stamp for a chunk allocated now (>= 1; 0 means unstamped). */
    virtual uint32_t currentBirthStamp() const = 0;
};

/**
 * Paint every shard's quarantined runs, one worker thread per
 * non-empty shard, each through a shard-restricted ShadowMap::View
 * (payload spans only: run headers are skipped exactly as the serial
 * paint does). Views cover disjoint granule ranges and the shadow
 * store path is thread-safe, so the result — shadow contents and the
 * returned PaintStats, merged in shard order — is identical to
 * painting the same shards serially.
 */
PaintStats paintShardsConcurrent(
    ShadowMap &shadow, const std::vector<QuarantineShard> &shards);

/** The CHERIvoke allocator facade. */
class CherivokeAllocator
{
  public:
    CherivokeAllocator(mem::AddressSpace &space,
                       CherivokeConfig config = CherivokeConfig{});

    /** @name Program-facing API (CheriABI malloc/free) */
    /// @{
    cap::Capability
    malloc(uint64_t size)
    {
        const cap::Capability c = dl_.malloc(size);
        if (stamper_)
            stampBirth(c);
        return observer_ ? observer_->onAlloc(c) : c;
    }
    cap::Capability
    calloc(uint64_t n, uint64_t size)
    {
        const cap::Capability c = dl_.calloc(n, size);
        if (stamper_)
            stampBirth(c);
        return observer_ ? observer_->onAlloc(c) : c;
    }

    /**
     * Temporal-safe free: quarantine the allocation. The memory is
     * not reusable until a sweep revokes every dangling reference.
     */
    void free(const cap::Capability &capability);

    /**
     * Temporal-safe realloc: always allocate-copy-quarantine (no
     * in-place growth, which would leave stale capabilities with
     * different bounds aliasing the grown object).
     */
    cap::Capability realloc(const cap::Capability &capability,
                            uint64_t new_size);

    uint64_t usableSize(uint64_t payload) const
    {
        return dl_.usableSize(payload);
    }
    /// @}

    /** @name Sweep protocol */
    /// @{
    /** Quarantine at/over its budget (paper: Q >= fraction * heap)? */
    bool needsSweep() const;

    /**
     * Freeze the current quarantine as this epoch's revocation set
     * and paint the shadow map for every frozen run (payload spans
     * only: a live one-past-the-end capability of the *previous*
     * object has its base in our header granule and must survive).
     * Frees issued while the epoch is open join a fresh quarantine
     * and are NOT released by this epoch's finishSweep — required
     * for incremental/concurrent revocation (§3.5).
     *
     * With @p paint_shards > 1 the revocation set is partitioned
     * into address bands and each band is painted *concurrently*, on
     * its own worker thread, through its own shard-restricted
     * shadow-map view (the raw shadow-store path is thread-safe).
     * Whole runs stay within one shard, so the store sequence per
     * shard — and the returned statistics, merged in shard order —
     * are identical for every shard count, and the painted shadow
     * bytes are identical to a serial paint.
     * @return paint statistics for the cost model
     *
     * With @p min_birth > 0 the freeze is *tier-scoped*: only runs
     * whose (minimum-member) birth stamp is >= min_birth freeze and
     * paint; older runs stay quarantined for a deeper epoch. The
     * default (0) freezes everything — bit-identical to the
     * historical unscoped path.
     */
    PaintStats prepareSweep(unsigned paint_shards = 1,
                            uint32_t min_birth = 0);

    /** Unpaint and return the *frozen* runs to the free lists.
     *  @return number of internal frees (after aggregation) */
    uint64_t finishSweep();

    /** True between prepareSweep() and finishSweep(). */
    bool epochOpen() const { return !frozen_.empty(); }
    /// @}

    /** @name Introspection */
    /// @{
    DlAllocator &dl() { return dl_; }
    const DlAllocator &dl() const { return dl_; }
    ShadowMap &shadowMap() { return shadow_; }
    Quarantine &quarantine() { return quarantine_; }
    const Quarantine &quarantine() const { return quarantine_; }
    const CherivokeConfig &config() const { return config_; }

    uint64_t liveBytes() const { return dl_.liveBytes(); }
    uint64_t quarantinedBytes() const
    {
        return quarantine_.totalBytes() + frozen_.totalBytes();
    }
    /** Bytes in the open epoch's (possibly tier-scoped) freeze. */
    uint64_t frozenBytes() const { return frozen_.totalBytes(); }
    uint64_t footprintBytes() const { return dl_.footprintBytes(); }

    uint64_t sweepsPrepared() const { return sweeps_; }

    /** Install/replace the revocation-backend hook (may be null). */
    void setObserver(AllocObserver *observer) { observer_ = observer; }
    AllocObserver *observer() const { return observer_; }

    /** Install/remove the birth stamper (may be null). */
    void setTierStamper(TierStamper *stamper) { stamper_ = stamper; }
    TierStamper *tierStamper() const { return stamper_; }
    /// @}

  private:
    void stampBirth(const cap::Capability &capability);
    DlAllocator dl_;
    ShadowMap shadow_;
    Quarantine quarantine_; //!< frees since the last prepareSweep
    Quarantine frozen_;     //!< the open epoch's revocation set
    CherivokeConfig config_;
    mem::TaggedMemory *mem_;
    uint64_t sweeps_ = 0;
    AllocObserver *observer_ = nullptr;
    TierStamper *stamper_ = nullptr;
    /** Cached counter (in dl_'s group): runs merged per free. */
    stats::Counter *c_quarantine_merges_ = nullptr;
};

} // namespace alloc
} // namespace cherivoke

#endif // CHERIVOKE_ALLOC_CHERIVOKE_ALLOC_HH

#include "alloc/thread_context.hh"

#include "support/logging.hh"

namespace cherivoke {
namespace alloc {

void
ThreadAllocContext::quarantineTally(uint64_t bytes)
{
    ++quarantined_chunks_;
    quarantined_bytes_ += bytes;
}

void
ThreadAllocContext::noteMalloc(uint64_t id, uint64_t bytes)
{
    ++mallocs_;
    auto early = early_.find(id);
    if (early != early_.end()) {
        // The free message overtook us: the allocation dies at birth
        // (already counted as a remote free when it arrived).
        early_.erase(early);
        quarantineTally(bytes);
        return;
    }
    const bool inserted = live_.emplace(id, bytes).second;
    CHERIVOKE_ASSERT(inserted, "(malloc of an id this thread "
                               "already owns live)");
    live_bytes_ += bytes;
}

void
ThreadAllocContext::noteLocalFree(uint64_t id)
{
    auto it = live_.find(id);
    CHERIVOKE_ASSERT(it != live_.end(),
                     "(local free of an id not live here)");
    ++local_frees_;
    live_bytes_ -= it->second;
    quarantineTally(it->second);
    live_.erase(it);
}

void
ThreadAllocContext::noteRemoteFree(uint64_t id, uint64_t bytes)
{
    ++remote_applied_;
    auto it = live_.find(id);
    if (it == live_.end()) {
        // Early free: the owner has not executed the malloc yet
        // (message beat it in wall-clock time). Park it; noteMalloc
        // completes the quarantine handoff.
        const bool inserted = early_.insert(id).second;
        CHERIVOKE_ASSERT(inserted,
                         "(duplicate early remote free)");
        return;
    }
    live_bytes_ -= it->second;
    quarantineTally(it->second);
    (void)bytes;
    live_.erase(it);
}

unsigned
ThreadAllocContext::handoffToQuarantine(
    DlAllocator &dl, Quarantine &q,
    const std::vector<QuarantineRun> &chunks)
{
    for (const QuarantineRun &c : chunks)
        quarantineTally(c.size);
    return q.addBatch(dl, chunks);
}

} // namespace alloc
} // namespace cherivoke

#include "alloc/dlmalloc.hh"

#include <algorithm>

#include "support/bitops.hh"
#include "support/fault.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace alloc {

using cap::Capability;

DlAllocator::DlAllocator(mem::AddressSpace &space, DlConfig config)
    : space_(&space), mem_(&space.memory()), config_(config),
      bins_(kNumBins, 0)
{
    // Resolve the hot-path counters once; the fast paths bump them
    // through these references instead of a string lookup per op.
    chunk_counters_.rawAccesses =
        &counters_.counter("alloc.header_raw_accesses");
    chunk_counters_.slowAccesses =
        &counters_.counter("alloc.header_slow_accesses");
    c_bin_scan_steps_ = &counters_.counter("alloc.bin_scan_steps");
    c_bin_searches_ = &counters_.counter("alloc.bin_searches");

    const uint64_t size = alignUp(config_.initialHeapBytes, kPageBytes);
    heap_base_ = space_->mmapHeap(size);
    heap_end_ = heap_base_ + size;
    top_ = heap_base_;
    // The wilderness chunk: everything, previous "chunk" notionally
    // in use so coalescing never walks off the front.
    view(top_).setHeader(heap_end_ - top_, kPinuse);
}

unsigned
DlAllocator::binIndexFor(uint64_t chunk_size)
{
    if (chunk_size <= kMaxSmallChunk) {
        return static_cast<unsigned>((chunk_size - kMinChunk) >> 4);
    }
    const unsigned lg = log2Floor(chunk_size);
    const unsigned idx = lg < 10 ? 0 : lg - 10;
    return kSmallBins + std::min(idx, kLargeBins - 1);
}

void
DlAllocator::insertFreeChunk(uint64_t addr, uint64_t size)
{
    ChunkView c = view(addr);
    // Header: free, preserving PINUSE which the caller maintains.
    const uint64_t pinuse = c.sizeWord() & kPinuse;
    c.setHeader(size, pinuse);
    c.writeFooter();
    // Clear the next chunk's PINUSE (it now borders a free chunk).
    ChunkView n = view(addr + size);
    n.setHeader(n.size(), n.sizeWord() & kFlagMask & ~kPinuse);

    const unsigned idx = binIndexFor(size);
    const uint64_t head = bins_[idx];
    c.setFd(head);
    c.setBk(0);
    if (head)
        view(head).setBk(addr);
    bins_[idx] = addr;
    markBinOccupied(idx);
}

void
DlAllocator::unlinkChunk(uint64_t addr)
{
    ChunkView c = view(addr);
    const uint64_t fd = c.fd();
    const uint64_t bk = c.bk();
    if (bk) {
        view(bk).setFd(fd);
    } else {
        const unsigned idx = binIndexFor(c.size());
        bins_[idx] = fd;
        if (!fd)
            markBinEmpty(idx);
    }
    if (fd)
        view(fd).setBk(bk);
}

void
DlAllocator::extendTop(uint64_t min_bytes)
{
    const uint64_t grow = alignUp(
        std::max(min_bytes, config_.growthChunkBytes), kPageBytes);
    const uint64_t base = space_->mmapHeap(grow);
    CHERIVOKE_ASSERT(base == heap_end_,
                     "(heap growth must be contiguous)");
    heap_end_ += grow;
    ChunkView t = view(top_);
    t.setHeader(t.size() + grow, t.sizeWord() & kFlagMask);
    counters_.counter("alloc.extends").increment();
}

uint64_t
DlAllocator::allocFromTop(uint64_t chunk_size)
{
    ChunkView t = view(top_);
    if (t.size() < chunk_size + kMinChunk) {
        extendTop(chunk_size + kMinChunk - t.size());
        t = view(top_);
    }
    const uint64_t addr = top_;
    const uint64_t top_size = t.size();
    const uint64_t top_pinuse = t.sizeWord() & kPinuse;
    view(addr).setHeader(chunk_size, kCinuse | top_pinuse);
    top_ = addr + chunk_size;
    view(top_).setHeader(top_size - chunk_size, kPinuse);
    return addr;
}

uint64_t
DlAllocator::takeFromBins(uint64_t chunk_size)
{
    c_bin_searches_->increment();
    // The occupancy bitmap jumps straight to candidate bins; empty
    // bins cost nothing. Small bins are exact-fit (one size per
    // bin), so their head always satisfies the request; only large
    // bins, which mix sizes, still walk their (first-fit) list — the
    // identical chunk selection the linear scan made.
    const unsigned start = binIndexFor(chunk_size);
    for (unsigned idx = firstOccupiedBin(start); idx < kNumBins;
         idx = firstOccupiedBin(idx + 1)) {
        if (idx < kSmallBins) {
            // Exact-size bin at or above the request: its head fits
            // by construction.
            const uint64_t addr = bins_[idx];
            c_bin_scan_steps_->increment();
            unlinkChunk(addr);
            return addr;
        }
        uint64_t addr = bins_[idx];
        while (addr) {
            ChunkView c = view(addr);
            c_bin_scan_steps_->increment();
            if (c.size() >= chunk_size) {
                unlinkChunk(addr);
                return addr;
            }
            addr = c.fd();
        }
    }
    return 0;
}

void
DlAllocator::maybeSplit(uint64_t addr, uint64_t chunk_size)
{
    ChunkView c = view(addr);
    const uint64_t orig = c.size();
    const uint64_t pinuse = c.sizeWord() & kPinuse;
    if (orig - chunk_size >= kMinChunk) {
        c.setHeader(chunk_size, kCinuse | pinuse);
        // The remainder inherits PINUSE = 1 (we are in use).
        view(addr + chunk_size).setHeader(orig - chunk_size, kPinuse);
        insertFreeChunk(addr + chunk_size, orig - chunk_size);
        counters_.counter("alloc.splits").increment();
    } else {
        c.setHeader(orig, kCinuse | pinuse);
        // Next chunk borders an in-use chunk again.
        ChunkView n = view(addr + orig);
        n.setHeader(n.size(), (n.sizeWord() & kFlagMask) | kPinuse);
    }
}

uint64_t
DlAllocator::allocAligned(uint64_t chunk_size, uint64_t align)
{
    // Aligned allocations are carved from the top with slack, then
    // trimmed front and back.
    const uint64_t raw = chunk_size + align + kMinChunk;
    const uint64_t addr = allocFromTop(raw);
    ChunkView c = view(addr);
    const uint64_t orig_pinuse = c.sizeWord() & kPinuse;

    uint64_t payload = addr + kChunkHeader;
    uint64_t aligned = alignUp(payload, align);
    if (aligned != payload && aligned - payload < kMinChunk)
        aligned += align;
    const uint64_t front = aligned - payload;
    uint64_t body_addr = addr;
    uint64_t body_size = raw;

    if (front > 0) {
        // Release the front remainder as a free chunk.
        body_addr = addr + front;
        body_size = raw - front;
        view(body_addr).setHeader(body_size, kCinuse); // PINUSE=0
        view(addr).setHeader(front, kCinuse | orig_pinuse);
        releaseChunk(addr, front);
    }

    // Trim the tail.
    const uint64_t tail = body_size - chunk_size;
    if (tail >= kMinChunk) {
        ChunkView b = view(body_addr);
        b.setHeader(chunk_size, b.sizeWord() & kFlagMask);
        view(body_addr + chunk_size).setHeader(tail, kCinuse | kPinuse);
        releaseChunk(body_addr + chunk_size, tail);
    }
    return body_addr;
}

void
DlAllocator::releaseChunk(uint64_t addr, uint64_t size)
{
    ChunkView c = view(addr);
    uint64_t pinuse = c.sizeWord() & kPinuse;

    // Coalesce backwards.
    if (!pinuse) {
        const uint64_t prev_size = c.prevSize();
        const uint64_t prev = addr - prev_size;
        unlinkChunk(prev);
        pinuse = view(prev).sizeWord() & kPinuse;
        addr = prev;
        size += prev_size;
    }

    // Coalesce forwards (or into the top chunk).
    const uint64_t next = addr + size;
    if (next == top_) {
        ChunkView t = view(top_);
        top_ = addr;
        view(top_).setHeader(size + t.size(), pinuse);
        return;
    }
    ChunkView n = view(next);
    if (!n.cinuse()) {
        unlinkChunk(next);
        size += n.size();
        if (addr + size == top_) {
            ChunkView t = view(top_);
            top_ = addr;
            view(top_).setHeader(size + t.size(), pinuse);
            return;
        }
    }
    view(addr).setHeader(size, pinuse);
    insertFreeChunk(addr, size);
}

Capability
DlAllocator::capForPayload(uint64_t payload, uint64_t requested) const
{
    return space_->rootCap()
        .setAddress(payload)
        .setBounds(requested)
        .andPerms(cap::kPermsData);
}

Capability
DlAllocator::malloc(uint64_t size)
{
    counters_.counter("alloc.malloc_calls").increment();
    const uint64_t requested = std::max<uint64_t>(size, 1);
    uint64_t payload_len = alignUp(requested, kGranuleBytes);

    // CheriABI-style padding: pad so the returned bounds are exactly
    // representable, and align the payload accordingly.
    const uint64_t mask = cap::representableAlignmentMask(payload_len);
    uint64_t align = kGranuleBytes;
    uint64_t bounds_len = requested;
    if (mask != ~uint64_t{0}) {
        payload_len = cap::roundRepresentableLength(payload_len);
        align = std::max<uint64_t>(~mask + 1, kGranuleBytes);
        bounds_len = payload_len;
    }

    uint64_t chunk_size =
        std::max(payload_len + kChunkHeader, kMinChunk);

    uint64_t addr;
    if (align > kGranuleBytes) {
        addr = allocAligned(chunk_size, align);
    } else {
        addr = takeFromBins(chunk_size);
        if (addr) {
            maybeSplit(addr, chunk_size);
        } else {
            addr = allocFromTop(chunk_size);
        }
    }

    const uint64_t payload = addr + kChunkHeader;
    live_bytes_ += view(addr).size() - kChunkHeader;
    counters_.counter("alloc.allocated_bytes")
        .increment(view(addr).size());
    return capForPayload(payload, bounds_len);
}

Capability
DlAllocator::calloc(uint64_t count, uint64_t size)
{
    const uint64_t total = count * size;
    CHERIVOKE_ASSERT(count == 0 || total / count == size,
                     "(calloc overflow)");
    Capability c = malloc(total);
    mem_->fill(c.base(), 0, usableSize(c.base()));
    return c;
}

void
DlAllocator::free(const Capability &capability)
{
    if (!capability.tag())
        heapFault(HeapFaultKind::WildFree,
                  "free() through an untagged capability");
    freeAddr(capability.base());
}

// Validate a free/realloc target: wild addresses and smashed
// boundary tags are tenant-input faults (HeapFault), never fatal —
// a multi-tenant host retires just the offending tenant. The bounds
// check runs before the chunk view exists so a wild address never
// touches (or materialises) memory outside the heap.
ChunkView
DlAllocator::checkedFreeView(uint64_t addr) const
{
    if (addr < heap_base_ || addr >= top_ ||
        !isAligned(addr, kGranuleBytes)) {
        heapFault(HeapFaultKind::WildFree,
                  "free() of address 0x%llx outside the heap",
                  static_cast<unsigned long long>(addr));
    }
    ChunkView c = view(addr);
    const uint64_t size = c.size();
    if (size < kMinChunk || !isAligned(size, kGranuleBytes) ||
        addr + size > top_) {
        heapFault(HeapFaultKind::HeaderCorruption,
                  "chunk 0x%llx has a corrupt boundary tag "
                  "(size %llu)",
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(size));
    }
    if (!c.cinuse() || c.quarantined())
        heapFault(HeapFaultKind::DoubleFree,
                  "invalid or double free of chunk 0x%llx",
                  static_cast<unsigned long long>(addr));
    return c;
}

void
DlAllocator::freeAddr(uint64_t payload)
{
    counters_.counter("alloc.free_calls").increment();
    const uint64_t addr = chunkOf(payload);
    ChunkView c = checkedFreeView(addr);
    live_bytes_ -= c.size() - kChunkHeader;
    releaseChunk(addr, c.size());
}

Capability
DlAllocator::realloc(const Capability &capability, uint64_t new_size)
{
    if (!capability.tag())
        heapFault(HeapFaultKind::WildFree,
                  "realloc() through an untagged capability");
    const uint64_t payload = capability.base();
    const uint64_t addr = chunkOf(payload);
    ChunkView c = checkedFreeView(addr);

    const uint64_t cur = c.size();
    const uint64_t requested = std::max<uint64_t>(new_size, 1);
    const uint64_t needed = std::max(
        alignUp(requested, kGranuleBytes) + kChunkHeader, kMinChunk);

    if (needed <= cur) {
        // Shrink in place; split the tail if worthwhile.
        if (cur - needed >= kMinChunk) {
            const uint64_t pinuse = c.sizeWord() & kPinuse;
            c.setHeader(needed, kCinuse | pinuse);
            view(addr + needed)
                .setHeader(cur - needed, kCinuse | kPinuse);
            releaseChunk(addr + needed, cur - needed);
            live_bytes_ -= cur - needed;
        }
        return capForPayload(payload, requested);
    }

    // Grow in place from the top chunk.
    if (addr + cur == top_) {
        ChunkView t = view(top_);
        const uint64_t extra = needed - cur;
        if (t.size() < extra + kMinChunk)
            extendTop(extra + kMinChunk - t.size());
        t = view(top_);
        const uint64_t top_size = t.size();
        c.setHeader(needed, kCinuse | (c.sizeWord() & kPinuse));
        top_ = addr + needed;
        view(top_).setHeader(top_size - extra, kPinuse);
        live_bytes_ += extra;
        return capForPayload(payload, requested);
    }

    // Grow in place into a free successor.
    const uint64_t next = addr + cur;
    ChunkView n = view(next);
    if (next != top_ && !n.cinuse() && cur + n.size() >= needed) {
        unlinkChunk(next);
        const uint64_t combined = cur + n.size();
        const uint64_t pinuse = c.sizeWord() & kPinuse;
        c.setHeader(combined, kCinuse | pinuse);
        // Successor of the merged region borders an in-use chunk.
        ChunkView nn = view(addr + combined);
        nn.setHeader(nn.size(),
                     (nn.sizeWord() & kFlagMask) | kPinuse);
        maybeSplit(addr, needed);
        live_bytes_ += view(addr).size() - cur;
        return capForPayload(payload, requested);
    }

    // Move: allocate, copy preserving tags, free the old chunk.
    Capability fresh = malloc(requested);
    const uint64_t copy = std::min(cur - kChunkHeader,
                                   usableSize(fresh.base()));
    mem_->copyPreservingTags(fresh.base(), payload, copy);
    freeAddr(payload);
    return fresh;
}

uint64_t
DlAllocator::usableSize(uint64_t payload) const
{
    return view(chunkOf(payload)).size() - kChunkHeader;
}

DlAllocator::QuarantinedChunk
DlAllocator::quarantineFree(const Capability &capability)
{
    counters_.counter("alloc.quarantine_frees").increment();
    if (!capability.tag())
        heapFault(HeapFaultKind::WildFree,
                  "free() through an untagged capability");
    const uint64_t payload = capability.base();
    const uint64_t addr = chunkOf(payload);
    ChunkView c = checkedFreeView(addr);
    const uint64_t size = c.size();
    c.setHeader(size,
                (c.sizeWord() & kFlagMask) | kCinuse | kQuarantine);
    live_bytes_ -= size - kChunkHeader;
    quarantined_bytes_ += size;
    return QuarantinedChunk{addr, size};
}

void
DlAllocator::mergeQuarantinedRun(uint64_t addr, uint64_t new_size)
{
    ChunkView c = view(addr);
    CHERIVOKE_ASSERT(c.quarantined(),
                     "(merge target must be quarantined)");
    c.setHeader(new_size, c.sizeWord() & kFlagMask);
}

void
DlAllocator::internalFree(uint64_t addr, uint64_t size)
{
    counters_.counter("alloc.internal_frees").increment();
    ChunkView c = view(addr);
    CHERIVOKE_ASSERT(c.quarantined() && c.size() == size,
                     "(internalFree of non-quarantined run)");
    quarantined_bytes_ -= size;
    c.setHeader(size, c.sizeWord() & kPinuse); // clears CINUSE + Q
    releaseChunk(addr, size);
}

uint64_t
DlAllocator::releaseColdPages()
{
    // Memory-pressure reclaim: hand whole pages of dead free-chunk
    // payload back to the page store. A free chunk's only live
    // metadata is its first 32 bytes (prev_size, size|flags, fd, bk);
    // its boundary-tag footer lives at the *next* chunk's first word,
    // past the chunk's own extent. Everything between is dead bytes a
    // re-materialised zero page reproduces, so interior pages can be
    // released outright. Quarantined chunks are skipped: their
    // payloads are the open/pending revocation sets. The caller must
    // guarantee no sweep is in flight over this heap (same quiescence
    // contract as TaggedMemory::releaseRange).
    uint64_t released = 0;
    auto release_interior = [&](uint64_t keep_end, uint64_t end) {
        const uint64_t lo = alignUp(keep_end, kPageBytes);
        const uint64_t hi = alignDown(end, kPageBytes);
        if (lo < hi)
            released += mem_->releaseRange(lo, hi - lo);
    };
    uint64_t addr = heap_base_;
    while (addr < top_) {
        ChunkView c = viewUncounted(addr);
        const uint64_t size = c.size();
        if (!c.cinuse() && !c.quarantined())
            release_interior(addr + kMinChunk, addr + size);
        addr += size;
    }
    // The wilderness chunk: only its header matters.
    release_interior(top_ + kMinChunk, heap_end_);
    counters_.counter("alloc.cold_pages_released")
        .increment(released);
    return released;
}

std::vector<DlAllocator::WalkChunk>
DlAllocator::walkHeap() const
{
    std::vector<WalkChunk> chunks;
    uint64_t addr = heap_base_;
    while (addr < top_) {
        ChunkView c = viewUncounted(addr);
        chunks.push_back(WalkChunk{addr, c.size(), c.cinuse(),
                                   c.quarantined(), false});
        CHERIVOKE_ASSERT(c.size() >= kMinChunk,
                         "(walk found undersized chunk)");
        addr += c.size();
    }
    ChunkView t = viewUncounted(top_);
    chunks.push_back(WalkChunk{top_, t.size(), false, false, true});
    return chunks;
}

void
DlAllocator::validateHeap() const
{
    uint64_t addr = heap_base_;
    bool prev_inuse = true; // nothing before the first chunk
    uint64_t prev_size = 0;
    while (addr <= top_) {
        ChunkView c = viewUncounted(addr);
        const bool is_top = addr == top_;
        CHERIVOKE_ASSERT(isAligned(addr, kGranuleBytes));
        CHERIVOKE_ASSERT(c.size() >= (is_top ? 0u : kMinChunk),
                         "(chunk too small)");
        CHERIVOKE_ASSERT(isAligned(c.size(), kGranuleBytes),
                         "(chunk size misaligned)");
        CHERIVOKE_ASSERT(c.pinuse() == prev_inuse,
                         "(PINUSE inconsistent)");
        if (!prev_inuse) {
            CHERIVOKE_ASSERT(c.prevSize() == prev_size,
                             "(boundary tag mismatch)");
        }
        if (is_top) {
            CHERIVOKE_ASSERT(addr + c.size() == heap_end_,
                             "(top chunk must end the heap)");
            CHERIVOKE_ASSERT(!c.cinuse(), "(top marked in use)");
            break;
        }
        const bool in_use = c.cinuse() || c.quarantined();
        if (!in_use) {
            // Free chunks are never adjacent (coalescing invariant).
            CHERIVOKE_ASSERT(prev_inuse,
                             "(two adjacent free chunks)");
        }
        prev_inuse = in_use;
        prev_size = c.size();
        addr += c.size();
    }

    // Bin link integrity + occupancy-bitmap consistency + the raw
    // span write contract (free-list links are written through the
    // host span, so their granules must carry no capability tag).
    for (unsigned idx = 0; idx < kNumBins; ++idx) {
        const bool bit =
            (bin_map_[idx >> 6] >> (idx & 63)) & 1;
        CHERIVOKE_ASSERT(bit == (bins_[idx] != 0),
                         "(bin bitmap out of sync with bin head)");
        uint64_t prev = 0;
        uint64_t cur = bins_[idx];
        while (cur) {
            ChunkView c = viewUncounted(cur);
            CHERIVOKE_ASSERT(!c.cinuse(), "(in-use chunk in bin)");
            CHERIVOKE_ASSERT(c.bk() == prev, "(bin bk corrupt)");
            CHERIVOKE_ASSERT(binIndexFor(c.size()) == idx,
                             "(chunk in wrong bin)");
            CHERIVOKE_ASSERT(idx >= kSmallBins ||
                                 c.size() ==
                                     kMinChunk + uint64_t{idx} * 16,
                             "(small bin must be exact-fit)");
            mem_->assertSpanSemantics(cur, kMinChunk);
            prev = cur;
            cur = c.fd();
        }
    }
}

} // namespace alloc
} // namespace cherivoke

#include "alloc/quarantine.hh"

#include <algorithm>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace alloc {

namespace {

/** Fibonacci hash over a (16-byte aligned) boundary address. */
inline uint64_t
hashBoundary(uint64_t key)
{
    return (key >> kGranuleShift) * 0x9e3779b97f4a7c15ULL;
}

} // namespace

// ---- BoundaryIndex ---------------------------------------------

BoundaryIndex::BoundaryIndex() : table_(64), mask_(63) {}

size_t
BoundaryIndex::probeOf(uint64_t key) const
{
    return (hashBoundary(key) >> 32) & mask_;
}

uint32_t
BoundaryIndex::find(uint64_t key) const
{
    for (size_t pos = probeOf(key);; pos = (pos + 1) & mask_) {
        const Entry &e = table_[pos];
        if (e.key == 0)
            return kNotFound;
        if (e.key == key)
            return e.slot;
    }
}

void
BoundaryIndex::grow()
{
    std::vector<Entry> old = std::move(table_);
    table_.assign(old.size() * 2, Entry{});
    mask_ = table_.size() - 1;
    for (const Entry &e : old) {
        if (e.key == 0)
            continue;
        size_t pos = probeOf(e.key);
        while (table_[pos].key != 0)
            pos = (pos + 1) & mask_;
        table_[pos] = e;
    }
}

void
BoundaryIndex::insert(uint64_t key, uint32_t slot)
{
    CHERIVOKE_ASSERT(key != 0, "(0 is the empty-boundary sentinel)");
    if ((size_ + 1) * 4 > table_.size() * 3)
        grow();
    size_t pos = probeOf(key);
    while (table_[pos].key != 0) {
        CHERIVOKE_ASSERT(table_[pos].key != key,
                         "(duplicate quarantine boundary)");
        pos = (pos + 1) & mask_;
    }
    table_[pos] = Entry{key, slot};
    ++size_;
}

void
BoundaryIndex::update(uint64_t key, uint32_t slot)
{
    for (size_t pos = probeOf(key);; pos = (pos + 1) & mask_) {
        Entry &e = table_[pos];
        CHERIVOKE_ASSERT(e.key != 0,
                         "(update of absent quarantine boundary)");
        if (e.key == key) {
            e.slot = slot;
            return;
        }
    }
}

void
BoundaryIndex::erase(uint64_t key)
{
    size_t pos = probeOf(key);
    while (table_[pos].key != key) {
        CHERIVOKE_ASSERT(table_[pos].key != 0,
                         "(erase of absent quarantine boundary)");
        pos = (pos + 1) & mask_;
    }
    // Backward-shift deletion: pull displaced entries over the hole
    // so probe chains never cross an empty slot they relied on.
    size_t hole = pos;
    for (size_t next = (hole + 1) & mask_; table_[next].key != 0;
         next = (next + 1) & mask_) {
        const size_t home = probeOf(table_[next].key);
        if (((next - home) & mask_) >= ((next - hole) & mask_)) {
            table_[hole] = table_[next];
            hole = next;
        }
    }
    table_[hole] = Entry{};
    --size_;
}

void
BoundaryIndex::clear()
{
    table_.assign(64, Entry{});
    mask_ = 63;
    size_ = 0;
}

// ---- Quarantine ------------------------------------------------

unsigned
Quarantine::add(DlAllocator &dl, uint64_t addr, uint64_t size,
                uint32_t birth)
{
    CHERIVOKE_ASSERT(size > 0);
    total_bytes_ += size;
    ++adds_;
    ordered_valid_ = false;
    unsigned merged = 0;

    // Merge with a run ending exactly where this chunk starts. The
    // merged run keeps the *minimum* birth: its oldest member
    // governs which tier may release it.
    const uint32_t prev_slot = by_end_.find(addr);
    if (prev_slot != BoundaryIndex::kNotFound) {
        const QuarantineRun prev = runs_[prev_slot];
        eraseSlot(prev_slot);
        addr = prev.addr;
        size += prev.size;
        birth = std::min(birth, prev.birth);
        ++merges_;
        ++merged;
    }

    // Merge with a run starting exactly where this chunk ends.
    const uint32_t next_slot = by_start_.find(addr + size);
    if (next_slot != BoundaryIndex::kNotFound) {
        size += runs_[next_slot].size;
        birth = std::min(birth, runs_[next_slot].birth);
        eraseSlot(next_slot);
        ++merges_;
        ++merged;
    }

    dl.mergeQuarantinedRun(addr, size);
    const uint32_t slot = static_cast<uint32_t>(runs_.size());
    runs_.push_back(QuarantineRun{addr, size, birth});
    by_start_.insert(addr, slot);
    by_end_.insert(addr + size, slot);
    return merged;
}

unsigned
Quarantine::addBatch(DlAllocator &dl,
                     const std::vector<QuarantineRun> &chunks)
{
    unsigned merged = 0;
    for (const QuarantineRun &c : chunks)
        merged += add(dl, c.addr, c.size, c.birth);
    return merged;
}

void
Quarantine::eraseSlot(uint32_t slot)
{
    const QuarantineRun run = runs_[slot];
    by_start_.erase(run.addr);
    by_end_.erase(run.end());
    const uint32_t last = static_cast<uint32_t>(runs_.size() - 1);
    if (slot != last) {
        // Dense slab: move the tail run into the hole and re-point
        // its two boundary entries.
        runs_[slot] = runs_[last];
        by_start_.update(runs_[slot].addr, slot);
        by_end_.update(runs_[slot].end(), slot);
    }
    runs_.pop_back();
}

const std::vector<QuarantineRun> &
Quarantine::orderedRuns() const
{
    if (!ordered_valid_) {
        ordered_ = runs_;
        std::sort(ordered_.begin(), ordered_.end(),
                  [](const QuarantineRun &a, const QuarantineRun &b) {
                      return a.addr < b.addr;
                  });
        ordered_valid_ = true;
    }
    return ordered_;
}

std::vector<QuarantineShard>
Quarantine::shardedRuns(size_t shards) const
{
    CHERIVOKE_ASSERT(shards > 0);
    std::vector<QuarantineShard> out;
    const std::vector<QuarantineRun> &ordered = orderedRuns();
    if (ordered.empty())
        return out;

    // Granule-aligned address bands over the quarantined span.
    const uint64_t span_lo = ordered.front().addr;
    const uint64_t span_hi = ordered.back().end();
    const uint64_t band =
        alignUp((span_hi - span_lo + shards - 1) / shards,
                kGranuleBytes);

    auto it = ordered.begin();
    for (size_t s = 0; s < shards; ++s) {
        QuarantineShard shard;
        shard.lo = span_lo + s * band;
        shard.hi = s + 1 == shards
                       ? std::max(span_hi, shard.lo)
                       : span_lo + (s + 1) * band;
        while (it != ordered.end() && it->addr < shard.hi) {
            shard.runs.push_back(*it);
            ++it;
        }
        out.push_back(std::move(shard));
    }
    CHERIVOKE_ASSERT(it == ordered.end());
    return out;
}

uint64_t
Quarantine::bytesBornSince(uint32_t min_birth) const
{
    uint64_t bytes = 0;
    for (const QuarantineRun &run : runs_)
        if (run.birth >= min_birth)
            bytes += run.size;
    return bytes;
}

void
Quarantine::adoptRun(const QuarantineRun &run)
{
    const uint32_t slot = static_cast<uint32_t>(runs_.size());
    runs_.push_back(run);
    by_start_.insert(run.addr, slot);
    by_end_.insert(run.end(), slot);
    total_bytes_ += run.size;
}

Quarantine
Quarantine::splitBornSince(uint32_t min_birth)
{
    Quarantine young;
    if (min_birth == 0) {
        // Everything qualifies: hand the whole buffer over.
        young = std::move(*this);
        *this = Quarantine{};
        return young;
    }
    const std::vector<QuarantineRun> ordered = orderedRuns();
    // Counters survive the split on the parent (they track mutator
    // activity, not current contents); the young side starts clean.
    runs_.clear();
    by_start_.clear();
    by_end_.clear();
    ordered_.clear();
    ordered_valid_ = false;
    total_bytes_ = 0;
    for (const QuarantineRun &run : ordered) {
        if (run.birth >= min_birth)
            young.adoptRun(run);
        else
            adoptRun(run);
    }
    return young;
}

uint64_t
Quarantine::release(DlAllocator &dl)
{
    // Internal frees in address order: the deterministic order the
    // former ordered map released in, so bin contents — and every
    // downstream allocation decision — are unchanged.
    const std::vector<QuarantineRun> &ordered = orderedRuns();
    const uint64_t n = ordered.size();
    for (const QuarantineRun &run : ordered)
        dl.internalFree(run.addr, run.size);
    runs_.clear();
    by_start_.clear();
    by_end_.clear();
    ordered_.clear();
    ordered_valid_ = false;
    total_bytes_ = 0;
    return n;
}

} // namespace alloc
} // namespace cherivoke

#include "alloc/quarantine.hh"

#include "support/logging.hh"

namespace cherivoke {
namespace alloc {

void
Quarantine::add(DlAllocator &dl, uint64_t addr, uint64_t size)
{
    CHERIVOKE_ASSERT(size > 0);
    total_bytes_ += size;

    // Merge with a run ending exactly where this chunk starts.
    auto prev_it = by_end_.find(addr);
    if (prev_it != by_end_.end()) {
        const uint64_t prev_addr = prev_it->second;
        const uint64_t prev_size = by_start_.at(prev_addr);
        by_end_.erase(prev_it);
        by_start_.erase(prev_addr);
        addr = prev_addr;
        size += prev_size;
        ++merges_;
    }

    // Merge with a run starting exactly where this chunk ends.
    auto next_it = by_start_.find(addr + size);
    if (next_it != by_start_.end()) {
        const uint64_t next_size = next_it->second;
        by_end_.erase(addr + size + next_size);
        by_start_.erase(next_it);
        size += next_size;
        ++merges_;
    }

    dl.mergeQuarantinedRun(addr, size);
    by_start_[addr] = size;
    by_end_[addr + size] = addr;
}

std::vector<QuarantineRun>
Quarantine::runs() const
{
    std::vector<QuarantineRun> out;
    out.reserve(by_start_.size());
    for (const auto &[addr, size] : by_start_)
        out.push_back(QuarantineRun{addr, size});
    return out;
}

uint64_t
Quarantine::release(DlAllocator &dl)
{
    const uint64_t n = by_start_.size();
    for (const auto &[addr, size] : by_start_)
        dl.internalFree(addr, size);
    by_start_.clear();
    by_end_.clear();
    total_bytes_ = 0;
    return n;
}

} // namespace alloc
} // namespace cherivoke

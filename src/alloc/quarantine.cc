#include "alloc/quarantine.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace alloc {

void
Quarantine::add(DlAllocator &dl, uint64_t addr, uint64_t size)
{
    CHERIVOKE_ASSERT(size > 0);
    total_bytes_ += size;

    // Merge with a run ending exactly where this chunk starts.
    auto prev_it = by_end_.find(addr);
    if (prev_it != by_end_.end()) {
        const uint64_t prev_addr = prev_it->second;
        const uint64_t prev_size = by_start_.at(prev_addr);
        by_end_.erase(prev_it);
        by_start_.erase(prev_addr);
        addr = prev_addr;
        size += prev_size;
        ++merges_;
    }

    // Merge with a run starting exactly where this chunk ends.
    auto next_it = by_start_.find(addr + size);
    if (next_it != by_start_.end()) {
        const uint64_t next_size = next_it->second;
        by_end_.erase(addr + size + next_size);
        by_start_.erase(next_it);
        size += next_size;
        ++merges_;
    }

    dl.mergeQuarantinedRun(addr, size);
    by_start_[addr] = size;
    by_end_[addr + size] = addr;
}

std::vector<QuarantineRun>
Quarantine::runs() const
{
    std::vector<QuarantineRun> out;
    out.reserve(by_start_.size());
    for (const auto &[addr, size] : by_start_)
        out.push_back(QuarantineRun{addr, size});
    return out;
}

std::vector<QuarantineShard>
Quarantine::shardedRuns(size_t shards) const
{
    CHERIVOKE_ASSERT(shards > 0);
    std::vector<QuarantineShard> out;
    if (by_start_.empty())
        return out;

    // Granule-aligned address bands over the quarantined span.
    const uint64_t span_lo = by_start_.begin()->first;
    const uint64_t span_hi = by_start_.rbegin()->first +
                             by_start_.rbegin()->second;
    const uint64_t band =
        alignUp((span_hi - span_lo + shards - 1) / shards,
                kGranuleBytes);

    auto it = by_start_.begin();
    for (size_t s = 0; s < shards; ++s) {
        QuarantineShard shard;
        shard.lo = span_lo + s * band;
        shard.hi = s + 1 == shards
                       ? std::max(span_hi, shard.lo)
                       : span_lo + (s + 1) * band;
        while (it != by_start_.end() && it->first < shard.hi) {
            shard.runs.push_back(
                QuarantineRun{it->first, it->second});
            ++it;
        }
        out.push_back(std::move(shard));
    }
    CHERIVOKE_ASSERT(it == by_start_.end());
    return out;
}

uint64_t
Quarantine::release(DlAllocator &dl)
{
    const uint64_t n = by_start_.size();
    for (const auto &[addr, size] : by_start_)
        dl.internalFree(addr, size);
    by_start_.clear();
    by_end_.clear();
    total_bytes_ = 0;
    return n;
}

} // namespace alloc
} // namespace cherivoke

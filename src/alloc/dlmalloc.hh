/**
 * @file
 * A dlmalloc-style boundary-tag allocator (Lea, 2000) operating inside
 * the simulated tagged address space.
 *
 * This is the substrate the paper's dlmalloc_cherivoke extends (§5.2):
 * binned free lists with constant-time coalescing via boundary tags, a
 * wilderness (top) chunk grown by simulated mmap, and 16-byte
 * granularity matching the shadow map. Returned capabilities are
 * bounded to the allocation ("bounds-setting allocator", §2.2), padded
 * to the representable alignment for very large objects as CheriABI
 * does.
 *
 * The allocator is part of the trusted computing base (§3.6): it
 * accesses memory through the whole-address-space root capability
 * whose base is never quarantined, so revocation sweeps can never cut
 * off allocator metadata.
 */

#ifndef CHERIVOKE_ALLOC_DLMALLOC_HH
#define CHERIVOKE_ALLOC_DLMALLOC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "alloc/chunk.hh"
#include "cap/capability.hh"
#include "mem/addr_space.hh"
#include "stats/counters.hh"

namespace cherivoke {
namespace alloc {

/** Allocator configuration. */
struct DlConfig
{
    uint64_t initialHeapBytes = 4 * MiB;
    uint64_t growthChunkBytes = 4 * MiB;
};

/** The boundary-tag allocator. */
class DlAllocator
{
  public:
    explicit DlAllocator(mem::AddressSpace &space,
                         DlConfig config = DlConfig{});

    DlAllocator(const DlAllocator &) = delete;
    DlAllocator &operator=(const DlAllocator &) = delete;

    /** @name Program-facing API */
    /// @{

    /**
     * Allocate @p size bytes; returns a tagged capability bounded to
     * the allocation. Zero-size requests receive a minimal
     * allocation, as dlmalloc does.
     */
    cap::Capability malloc(uint64_t size);

    /** Allocate zeroed memory for @p count elements of @p size. */
    cap::Capability calloc(uint64_t count, uint64_t size);

    /**
     * Resize the allocation referenced by @p capability. Grows in
     * place when the neighbouring chunk allows, else moves. Returns
     * a capability for the (possibly moved) allocation.
     */
    cap::Capability realloc(const cap::Capability &capability,
                            uint64_t new_size);

    /**
     * Free through a capability: the capability must be tagged and
     * its base must be the start of a live allocation.
     * @throws HeapFault (kind double-free / wild-free /
     *         header-corruption) on invalid input — catchable at a
     *         tenant containment boundary, fatal when uncontained.
     */
    void free(const cap::Capability &capability);

    /** Free by payload address (TCB-internal path). */
    void freeAddr(uint64_t payload);

    /** Payload bytes usable at this allocation. */
    uint64_t usableSize(uint64_t payload) const;
    /// @}

    /** @name Quarantine integration (used by CherivokeAllocator) */
    /// @{

    /** Payload -> chunk address. */
    static uint64_t chunkOf(uint64_t payload)
    {
        return payload - kChunkHeader;
    }

    /**
     * Validate a free request and mark the chunk quarantined instead
     * of releasing it. Returns the chunk address and full chunk size.
     * The chunk stays "in use" from the coalescer's perspective.
     */
    struct QuarantinedChunk
    {
        uint64_t addr = 0;
        uint64_t size = 0;
    };
    QuarantinedChunk quarantineFree(const cap::Capability &capability);

    /**
     * Extend a quarantined run's header over a neighbouring
     * quarantined chunk (the dlmalloc constant-time aggregation of
     * §5.2). The absorbed chunk's header becomes dead bytes.
     */
    void mergeQuarantinedRun(uint64_t addr, uint64_t new_size);

    /**
     * Release a quarantined run back to the free lists, coalescing
     * with genuinely free neighbours (the "internal free" of §5.2;
     * aggregation means there are fewer of these than program frees).
     * @param addr the run's first chunk address
     * @param size the total run size (possibly several merged chunks)
     */
    void internalFree(uint64_t addr, uint64_t size);
    /// @}

    /** @name Introspection */
    /// @{
    struct WalkChunk
    {
        uint64_t addr = 0;
        uint64_t size = 0;
        bool cinuse = false;
        bool quarantined = false;
        bool isTop = false;
    };

    /** Every chunk from heap base through the top chunk, in order. */
    std::vector<WalkChunk> walkHeap() const;

    /**
     * Memory-pressure reclaim: release every whole backing page of
     * dead free-chunk payload (and of the wilderness chunk) back to
     * the page store, preserving all boundary-tag metadata. The
     * caller must guarantee no sweep is in flight over this heap.
     * @return pages released
     */
    uint64_t releaseColdPages();

    /** Assert every boundary-tag invariant (including bin-bitmap /
     *  bin-list consistency and raw-span tag invalidation); throws
     *  PanicError. */
    void validateHeap() const;

    /** Bin-occupancy bitmap word (for tests); bit i of word w set
     *  iff bins_[w * 64 + i] is non-empty. */
    uint64_t binBitmapWord(unsigned w) const { return bin_map_[w]; }

    /** Sum of live (allocated, non-quarantined) payload bytes. */
    uint64_t liveBytes() const { return live_bytes_; }
    /** Bytes currently sitting in quarantined chunks. */
    uint64_t quarantinedBytes() const { return quarantined_bytes_; }
    /** Mapped heap footprint. */
    uint64_t footprintBytes() const { return heap_end_ - heap_base_; }
    uint64_t heapBase() const { return heap_base_; }
    uint64_t heapEnd() const { return heap_end_; }

    stats::CounterGroup &counters() { return counters_; }
    const stats::CounterGroup &counters() const { return counters_; }
    /// @}

  private:
    static constexpr unsigned kSmallBins = 64;
    static constexpr unsigned kLargeBins = 32;
    static constexpr unsigned kNumBins = kSmallBins + kLargeBins;
    /** Largest chunk size served by small (exact) bins. */
    static constexpr uint64_t kMaxSmallChunk =
        kMinChunk + (kSmallBins - 1) * 16;

    /** Words in the bin-occupancy bitmap (96 bins -> 2 words). */
    static constexpr unsigned kBinMapWords = (kNumBins + 63) / 64;

    ChunkView view(uint64_t addr) const
    {
        return ChunkView(*mem_, addr, &chunk_counters_);
    }

    /** Uncounted view for inspection paths (walkHeap/validateHeap):
     *  keeps the alloc.header_* counters a pure mutator-path
     *  metric, unskewed by how often validation runs. */
    ChunkView viewUncounted(uint64_t addr) const
    {
        return ChunkView(*mem_, addr);
    }

    static unsigned binIndexFor(uint64_t chunk_size);

    /** First non-empty bin >= @p from, or kNumBins; countr_zero over
     *  the occupancy bitmap — no per-bin scanning. */
    unsigned
    firstOccupiedBin(unsigned from) const
    {
        for (unsigned w = from >> 6; w < kBinMapWords; ++w) {
            uint64_t word = bin_map_[w];
            if (w == from >> 6)
                word &= ~uint64_t{0} << (from & 63);
            if (word)
                return w * 64 + std::countr_zero(word);
        }
        return kNumBins;
    }

    void
    markBinOccupied(unsigned idx)
    {
        bin_map_[idx >> 6] |= uint64_t{1} << (idx & 63);
    }

    void
    markBinEmpty(unsigned idx)
    {
        bin_map_[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
    }

    /** Bounds + boundary-tag sanity for a free/realloc target;
     *  raises the typed HeapFault on tenant-attributable damage. */
    ChunkView checkedFreeView(uint64_t addr) const;

    void insertFreeChunk(uint64_t addr, uint64_t size);
    void unlinkChunk(uint64_t addr);
    void extendTop(uint64_t min_bytes);

    /** Carve an in-use chunk of @p chunk_size from the top chunk. */
    uint64_t allocFromTop(uint64_t chunk_size);

    /** Find + unlink a free chunk >= @p chunk_size, or 0. */
    uint64_t takeFromBins(uint64_t chunk_size);

    /** Split the in-use chunk if the remainder is worth keeping. */
    void maybeSplit(uint64_t addr, uint64_t chunk_size);

    /** Free an in-use chunk: coalesce with neighbours and bin it. */
    void releaseChunk(uint64_t addr, uint64_t size);

    /** Allocate an in-use chunk whose payload is @p align aligned. */
    uint64_t allocAligned(uint64_t chunk_size, uint64_t align);

    cap::Capability capForPayload(uint64_t payload,
                                  uint64_t requested) const;

    mem::AddressSpace *space_;
    mem::TaggedMemory *mem_;
    DlConfig config_;

    uint64_t heap_base_ = 0;
    uint64_t heap_end_ = 0;
    uint64_t top_ = 0; //!< address of the wilderness chunk

    /** Bin heads: chunk addresses, 0 = empty. */
    std::vector<uint64_t> bins_;
    /** Occupancy bitmap over bins_: bit set iff the bin is
     *  non-empty, so takeFromBins finds the first candidate bin with
     *  countr_zero instead of scanning 96 heads. */
    std::array<uint64_t, kBinMapWords> bin_map_{};

    uint64_t live_bytes_ = 0;
    uint64_t quarantined_bytes_ = 0;
    stats::CounterGroup counters_;

    /** @name Cached counter references (no string lookup per op) */
    /// @{
    mutable ChunkAccessCounters chunk_counters_;
    stats::Counter *c_bin_scan_steps_ = nullptr;
    stats::Counter *c_bin_searches_ = nullptr;
    /// @}
};

} // namespace alloc
} // namespace cherivoke

#endif // CHERIVOKE_ALLOC_DLMALLOC_HH

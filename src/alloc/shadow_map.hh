/**
 * @file
 * The revocation shadow map (paper §3.2): one bit per 16-byte
 * allocation granule, stored in the shadow region of the simulated
 * address space at a fixed transform (shadow byte = kShadowBase +
 * (addr >> 7)), exactly as dlmalloc_cherivoke lays it out (§5.2).
 *
 * Painting is width-optimised: large aligned runs use byte, word and
 * double-word stores instead of per-bit read-modify-write (§5.2:
 * "large and aligned contiguous regions use byte, half-word, word,
 * and double-word store instructions when possible"). The per-width
 * operation counts feed the paint cost model and the ablation bench.
 *
 * All painting goes through TaggedMemory's raw shadow-store path
 * (shadowFill / shadowApplyBits): whole-byte spans are plain fills
 * (each byte belongs to exactly one quarantined run), partial
 * head/tail bytes are atomic RMWs (adjacent paint shards may share
 * them). Shard views over disjoint granule ranges can therefore
 * paint concurrently from several threads and still produce shadow
 * contents byte-identical to a serial paint.
 */

#ifndef CHERIVOKE_ALLOC_SHADOW_MAP_HH
#define CHERIVOKE_ALLOC_SHADOW_MAP_HH

#include <cstdint>
#include <utility>

#include "mem/addr_space.hh"
#include "mem/tagged_memory.hh"

namespace cherivoke {
namespace alloc {

/** Counts of stores performed while painting, by access width. */
struct PaintStats
{
    uint64_t bitOps = 0;    //!< read-modify-write partial bytes
    uint64_t byteOps = 0;
    uint64_t wordOps = 0;   //!< 4-byte stores
    uint64_t dwordOps = 0;  //!< 8-byte stores

    uint64_t total() const
    {
        return bitOps + byteOps + wordOps + dwordOps;
    }
    PaintStats &operator+=(const PaintStats &o);
    bool operator==(const PaintStats &o) const = default;
};

/**
 * Paints, clears, and queries revocation bits for address ranges.
 * One shadow bit covers one 16-byte granule; one shadow byte covers
 * 128 bytes; one shadow 8-byte word covers 1 KiB.
 */
class ShadowMap
{
  public:
    class View;

    explicit ShadowMap(mem::TaggedMemory &memory) : mem_(&memory) {}

    /** Set the revocation bits for every granule overlapping
     *  [addr, addr+size); addr must be granule-aligned. */
    PaintStats paint(uint64_t addr, uint64_t size);

    /** Clear the same bits after a sweep. */
    PaintStats clear(uint64_t addr, uint64_t size);

    /** Unoptimised bit-at-a-time painting, for the ablation bench. */
    PaintStats paintBitByBit(uint64_t addr, uint64_t size);

    /**
     * The sweeping-loop test (§3.3 listing, lines 4–9): is the
     * granule containing @p addr marked for revocation? Callers pass
     * a capability's *base*.
     */
    bool isRevoked(uint64_t addr) const;

    /** Population count over [addr, addr+size) for verification. */
    uint64_t countPainted(uint64_t addr, uint64_t size) const;

    /** A shard view covering [lo, hi); bounds granule-aligned. */
    View view(uint64_t lo, uint64_t hi);

  private:
    PaintStats apply(uint64_t addr, uint64_t size, bool set);

    mem::TaggedMemory *mem_;
};

/**
 * A range-restricted view of the shadow map: one shard of a sharded
 * paint/clear. Paint and clear requests are clamped to the view's
 * [lo, hi) address range, so a run crossing a shard boundary can be
 * painted from both adjacent shards without double-painting — each
 * shard covers exactly its own granules, and their union equals one
 * unsharded paint.
 */
class ShadowMap::View
{
  public:
    View(ShadowMap &map, uint64_t lo, uint64_t hi);

    /** Paint the intersection of [addr, addr+size) with the view. */
    PaintStats paint(uint64_t addr, uint64_t size);

    /** Clear the same intersection after a sweep. */
    PaintStats clear(uint64_t addr, uint64_t size);

    /** The §3.3 lookup, unrestricted (reads are always safe). */
    bool isRevoked(uint64_t addr) const
    {
        return map_->isRevoked(addr);
    }

    uint64_t lo() const { return lo_; }
    uint64_t hi() const { return hi_; }

  private:
    /** Clamp [addr, addr+size) to the view; size 0 when disjoint. */
    std::pair<uint64_t, uint64_t> clamp(uint64_t addr,
                                        uint64_t size) const;

    ShadowMap *map_;
    uint64_t lo_;
    uint64_t hi_;
};

} // namespace alloc
} // namespace cherivoke

#endif // CHERIVOKE_ALLOC_SHADOW_MAP_HH

/**
 * @file
 * Boundary-tag chunk layout for the dlmalloc-style allocator, stored
 * in simulated tagged memory.
 *
 * Chunk layout (all chunks 16-byte aligned, sizes multiples of 16):
 *
 *     C + 0  : prev_size — size of the previous chunk; valid only
 *              when the previous chunk is free (!PINUSE)
 *     C + 8  : size | flags (low 4 bits)
 *     C + 16 : payload (the address handed to the program)
 *
 * Free chunks additionally hold their bin links in the payload:
 *
 *     C + 16 : fd — next chunk in bin
 *     C + 24 : bk — previous chunk in bin
 *
 * and write their size into the *next* chunk's prev_size field (the
 * boundary tag enabling constant-time coalescing).
 *
 * Access goes through a mem::HostSpan cached at construction: the
 * page containing the chunk header is resolved once and every field
 * is then a plain host load/store (with the granule-tag invalidation
 * a data write implies). Fields that land outside the cached page —
 * links of a chunk whose header sits at the very end of a page, or
 * the boundary-tag footer in the *next* chunk — fall back to
 * TaggedMemory's raw out-of-span accessors. Both paths are O(1); the
 * span path additionally skips the per-field page lookup.
 */

#ifndef CHERIVOKE_ALLOC_CHUNK_HH
#define CHERIVOKE_ALLOC_CHUNK_HH

#include <cstdint>

#include "mem/tagged_memory.hh"
#include "stats/counters.hh"
#include "support/bitops.hh"

namespace cherivoke {
namespace alloc {

/** Low-bit flags packed into the chunk size word. */
enum ChunkFlags : uint64_t
{
    kCinuse = 1u << 0,      //!< this chunk is allocated
    kPinuse = 1u << 1,      //!< the previous chunk is allocated
    kQuarantine = 1u << 2,  //!< freed but awaiting revocation
    kFlagMask = 0xf,
};

/**
 * Inline object-ID tag (CHERI-D-style backend) packed into the high
 * bits of the size word. Chunk sizes are bounded far below 2^40, so
 * bits [63:40] hold a 24-bit ID without colliding with the size or
 * the low-bit flags. size() masks the tag out; setHeader clears it
 * (the backend re-stamps at allocation time).
 */
constexpr unsigned kIdTagShift = 40;
constexpr uint64_t kIdTagMask = 0xffffffULL << kIdTagShift;

/**
 * Birth stamp (hierarchical-epoch generation tiers) packed into bits
 * [39:32] of the size word, beside the object-ID tag. The adaptive
 * policy stamps each chunk at allocation with a saturating epoch
 * sequence (min(seq, 254)); the tier classifier ages chunks against
 * the full-width current sequence, so a saturated stamp only ever
 * *overestimates* age — conservative, never unsound. 0 means
 * "unstamped" (non-adaptive builds never write these bits, keeping
 * their size words bit-identical). setHeader clears the stamp (the
 * stamper re-writes it at allocation time, like the ID tag).
 */
constexpr unsigned kBirthShift = 32;
constexpr uint64_t kBirthMask = 0xffULL << kBirthShift;
/** Largest storable stamp; stamps saturate here. */
constexpr uint64_t kBirthSaturated = 0xff;
/** Bits of the size word that actually encode the chunk size. */
constexpr uint64_t kSizeMask = ~(kIdTagMask | kBirthMask | kFlagMask);

/** Header bytes before the payload. */
constexpr uint64_t kChunkHeader = 16;
/** Smallest legal chunk: header + room for fd/bk links. */
constexpr uint64_t kMinChunk = 32;

/**
 * Pre-resolved counters for the chunk-access fast path (cached
 * stats::Counter references — no string lookup per field access).
 * Optional: views constructed without one count nothing.
 */
struct ChunkAccessCounters
{
    stats::Counter *rawAccesses = nullptr;  //!< through the span
    stats::Counter *slowAccesses = nullptr; //!< out-of-span fallback
};

/** Reads and writes chunk metadata through the simulated memory. */
class ChunkView
{
  public:
    ChunkView(mem::TaggedMemory &memory, uint64_t addr,
              ChunkAccessCounters *counters = nullptr)
        : mem_(&memory), span_(memory.hostSpan(addr)), addr_(addr),
          counters_(counters)
    {}

    uint64_t addr() const { return addr_; }
    uint64_t payload() const { return addr_ + kChunkHeader; }

    uint64_t sizeWord() const { return read(addr_ + 8); }
    uint64_t size() const { return sizeWord() & kSizeMask; }
    bool cinuse() const { return sizeWord() & kCinuse; }
    bool pinuse() const { return sizeWord() & kPinuse; }
    bool quarantined() const { return sizeWord() & kQuarantine; }

    uint64_t prevSize() const { return read(addr_); }

    /** Address of the chunk after this one. */
    uint64_t next() const { return addr_ + size(); }
    /** Address of the chunk before this one (valid iff !pinuse()). */
    uint64_t prev() const { return addr_ - prevSize(); }

    void
    setHeader(uint64_t size, uint64_t flags)
    {
        write(addr_ + 8, size | flags);
    }

    void
    setFlags(uint64_t flags)
    {
        write(addr_ + 8, (sizeWord() & ~kFlagMask) | flags);
    }

    /** Inline object-ID tag in the size word's high bits. */
    uint32_t
    idTag() const
    {
        return static_cast<uint32_t>(sizeWord() >> kIdTagShift);
    }

    void
    setIdTag(uint32_t id)
    {
        write(addr_ + 8, (sizeWord() & ~kIdTagMask) |
                             (static_cast<uint64_t>(id) << kIdTagShift &
                              kIdTagMask));
    }

    /** Birth stamp (generation-tier epoch sequence) in [39:32]. */
    uint32_t
    birthStamp() const
    {
        return static_cast<uint32_t>((sizeWord() & kBirthMask) >>
                                     kBirthShift);
    }

    void
    setBirthStamp(uint32_t stamp)
    {
        write(addr_ + 8,
              (sizeWord() & ~kBirthMask) |
                  (static_cast<uint64_t>(stamp) << kBirthShift &
                   kBirthMask));
    }

    void setPrevSize(uint64_t s) { write(addr_, s); }

    /** Free-list links, stored in the (dead) payload. */
    uint64_t fd() const { return read(addr_ + 16); }
    uint64_t bk() const { return read(addr_ + 24); }
    void setFd(uint64_t a) { write(addr_ + 16, a); }
    void setBk(uint64_t a) { write(addr_ + 24, a); }

    /** Write this free chunk's boundary tag into the next chunk. */
    void
    writeFooter()
    {
        write(next(), size());
    }

  private:
    uint64_t
    read(uint64_t a) const
    {
        if (span_.covers(a, 8)) {
            if (counters_)
                counters_->rawAccesses->increment();
            return span_.readU64(a);
        }
        if (counters_)
            counters_->slowAccesses->increment();
        return mem_->spanReadU64(a);
    }

    void
    write(uint64_t a, uint64_t v)
    {
        if (span_.covers(a, 8)) {
            if (counters_)
                counters_->rawAccesses->increment();
            span_.writeU64(a, v);
            return;
        }
        if (counters_)
            counters_->slowAccesses->increment();
        mem_->spanWriteU64(a, v);
    }

    mem::TaggedMemory *mem_;
    mem::HostSpan span_;
    uint64_t addr_;
    ChunkAccessCounters *counters_;
};

} // namespace alloc
} // namespace cherivoke

#endif // CHERIVOKE_ALLOC_CHUNK_HH

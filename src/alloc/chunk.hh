/**
 * @file
 * Boundary-tag chunk layout for the dlmalloc-style allocator, stored
 * in simulated tagged memory.
 *
 * Chunk layout (all chunks 16-byte aligned, sizes multiples of 16):
 *
 *     C + 0  : prev_size — size of the previous chunk; valid only
 *              when the previous chunk is free (!PINUSE)
 *     C + 8  : size | flags (low 4 bits)
 *     C + 16 : payload (the address handed to the program)
 *
 * Free chunks additionally hold their bin links in the payload:
 *
 *     C + 16 : fd — next chunk in bin
 *     C + 24 : bk — previous chunk in bin
 *
 * and write their size into the *next* chunk's prev_size field (the
 * boundary tag enabling constant-time coalescing).
 */

#ifndef CHERIVOKE_ALLOC_CHUNK_HH
#define CHERIVOKE_ALLOC_CHUNK_HH

#include <cstdint>

#include "mem/tagged_memory.hh"
#include "support/bitops.hh"

namespace cherivoke {
namespace alloc {

/** Low-bit flags packed into the chunk size word. */
enum ChunkFlags : uint64_t
{
    kCinuse = 1u << 0,      //!< this chunk is allocated
    kPinuse = 1u << 1,      //!< the previous chunk is allocated
    kQuarantine = 1u << 2,  //!< freed but awaiting revocation
    kFlagMask = 0xf,
};

/** Header bytes before the payload. */
constexpr uint64_t kChunkHeader = 16;
/** Smallest legal chunk: header + room for fd/bk links. */
constexpr uint64_t kMinChunk = 32;

/** Reads and writes chunk metadata through the simulated memory. */
class ChunkView
{
  public:
    ChunkView(mem::TaggedMemory &memory, uint64_t addr)
        : mem_(&memory), addr_(addr)
    {}

    uint64_t addr() const { return addr_; }
    uint64_t payload() const { return addr_ + kChunkHeader; }

    uint64_t sizeWord() const { return mem_->readU64(addr_ + 8); }
    uint64_t size() const { return sizeWord() & ~kFlagMask; }
    bool cinuse() const { return sizeWord() & kCinuse; }
    bool pinuse() const { return sizeWord() & kPinuse; }
    bool quarantined() const { return sizeWord() & kQuarantine; }

    uint64_t prevSize() const { return mem_->readU64(addr_); }

    /** Address of the chunk after this one. */
    uint64_t next() const { return addr_ + size(); }
    /** Address of the chunk before this one (valid iff !pinuse()). */
    uint64_t prev() const { return addr_ - prevSize(); }

    void
    setHeader(uint64_t size, uint64_t flags)
    {
        mem_->writeU64(addr_ + 8, size | flags);
    }

    void
    setFlags(uint64_t flags)
    {
        mem_->writeU64(addr_ + 8, size() | flags);
    }

    void setPrevSize(uint64_t s) { mem_->writeU64(addr_, s); }

    /** Free-list links, stored in the (dead) payload. */
    uint64_t fd() const { return mem_->readU64(addr_ + 16); }
    uint64_t bk() const { return mem_->readU64(addr_ + 24); }
    void setFd(uint64_t a) { mem_->writeU64(addr_ + 16, a); }
    void setBk(uint64_t a) { mem_->writeU64(addr_ + 24, a); }

    /** Write this free chunk's boundary tag into the next chunk. */
    void
    writeFooter()
    {
        mem_->writeU64(next(), size());
    }

  private:
    mem::TaggedMemory *mem_;
    uint64_t addr_;
};

} // namespace alloc
} // namespace cherivoke

#endif // CHERIVOKE_ALLOC_CHUNK_HH

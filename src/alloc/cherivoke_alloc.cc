#include "alloc/cherivoke_alloc.hh"

#include <algorithm>
#include <thread>

#include "alloc/chunk.hh"
#include "support/bitops.hh"
#include "support/fault.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace alloc {

namespace {

/** Paint one shard's runs through a view widened to the shard's true
 *  extent (a run starting in the band may end past its upper bound —
 *  whole runs paint through exactly one view). */
PaintStats
paintOneShard(ShadowMap &shadow, const QuarantineShard &shard)
{
    PaintStats stats;
    uint64_t hi = shard.hi;
    for (const QuarantineRun &run : shard.runs)
        hi = std::max(hi, run.end());
    ShadowMap::View view =
        shadow.view(alignDown(shard.lo, kGranuleBytes),
                    alignUp(hi, kGranuleBytes));
    for (const QuarantineRun &run : shard.runs) {
        stats += view.paint(run.addr + kChunkHeader,
                            run.size - kChunkHeader);
    }
    return stats;
}

} // namespace

PaintStats
paintShardsConcurrent(ShadowMap &shadow,
                      const std::vector<QuarantineShard> &shards)
{
    // Collect the shards that actually have work; paint small jobs
    // inline rather than paying a thread spawn for each.
    std::vector<size_t> work;
    for (size_t i = 0; i < shards.size(); ++i) {
        if (!shards[i].runs.empty())
            work.push_back(i);
    }
    std::vector<PaintStats> partial(work.size());
    if (work.size() <= 1) {
        for (size_t w = 0; w < work.size(); ++w)
            partial[w] = paintOneShard(shadow, shards[work[w]]);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(work.size());
        std::vector<std::exception_ptr> errors(work.size());
        for (size_t w = 0; w < work.size(); ++w) {
            pool.emplace_back([&shadow, &shards, &partial, &work,
                               &errors, w] {
                try {
                    partial[w] =
                        paintOneShard(shadow, shards[work[w]]);
                } catch (...) {
                    errors[w] = std::current_exception();
                }
            });
        }
        for (auto &t : pool)
            t.join();
        // Re-raise a painter's fault (e.g. an address beyond the
        // simulated VA width) as the catchable exception the serial
        // path would have thrown.
        for (const std::exception_ptr &e : errors) {
            if (e)
                std::rethrow_exception(e);
        }
    }
    // Deterministic merge in shard (address-band) order: identical
    // totals to a serial shard-by-shard paint.
    PaintStats stats;
    for (const PaintStats &p : partial)
        stats += p;
    return stats;
}

CherivokeAllocator::CherivokeAllocator(mem::AddressSpace &space,
                                       CherivokeConfig config)
    : dl_(space, config.dl), shadow_(space.memory()), config_(config),
      mem_(&space.memory())
{
    CHERIVOKE_ASSERT(config_.quarantineFraction > 0,
                     "(quarantine fraction must be positive)");
    c_quarantine_merges_ =
        &dl_.counters().counter("alloc.quarantine_merges");
}

void
CherivokeAllocator::stampBirth(const cap::Capability &capability)
{
    if (!capability.tag())
        return;
    ChunkView(*mem_, capability.base() - kChunkHeader)
        .setBirthStamp(stamper_->currentBirthStamp());
}

void
CherivokeAllocator::free(const cap::Capability &capability)
{
    // Read the birth stamp before quarantineFree: rewriting the
    // header (quarantine flag) clears the high size-word bits.
    uint32_t birth = 0;
    if (stamper_ && capability.tag()) {
        birth = ChunkView(*mem_, capability.base() - kChunkHeader)
                    .birthStamp();
    }
    const DlAllocator::QuarantinedChunk chunk =
        dl_.quarantineFree(capability);
    if (observer_ &&
        observer_->onFree(chunk.addr, chunk.size,
                          capability.base()) ==
            FreeRouting::ReleaseNow) {
        // Metadata-checked backends (colors, object IDs) make the
        // memory reusable immediately: the stale references are
        // caught by their per-use check, not by a tag sweep.
        dl_.internalFree(chunk.addr, chunk.size);
        return;
    }
    c_quarantine_merges_->increment(
        quarantine_.add(dl_, chunk.addr, chunk.size, birth));
}

cap::Capability
CherivokeAllocator::realloc(const cap::Capability &capability,
                            uint64_t new_size)
{
    if (!capability.tag())
        heapFault(HeapFaultKind::WildFree,
                  "realloc() through an untagged capability");
    const uint64_t old_payload = capability.base();
    const uint64_t old_usable = dl_.usableSize(old_payload);
    cap::Capability fresh = malloc(new_size);
    // Copy preserving capability tags, as a CheriABI memcpy would,
    // then quarantine the old allocation.
    const uint64_t copy = std::min<uint64_t>(old_usable, new_size);
    if (copy > 0) {
        dl_.counters().counter("alloc.realloc_copied_bytes")
            .increment(copy);
        mem_->copyPreservingTags(fresh.base(), old_payload, copy);
    }
    free(capability);
    return fresh;
}

bool
CherivokeAllocator::needsSweep() const
{
    const uint64_t quarantined = quarantine_.totalBytes();
    if (quarantined < config_.minQuarantineBytes)
        return false;
    const double live = static_cast<double>(dl_.liveBytes());
    return static_cast<double>(quarantined) >=
           config_.quarantineFraction * std::max(live, 1.0);
}

PaintStats
CherivokeAllocator::prepareSweep(unsigned paint_shards,
                                 uint32_t min_birth)
{
    CHERIVOKE_ASSERT(!epochOpen(),
                     "(prepareSweep with an epoch already open)");
    CHERIVOKE_ASSERT(paint_shards > 0);
    ++sweeps_;
    // Freeze: this epoch revokes exactly the (tier-qualified) frees
    // made so far; later frees accumulate in a fresh quarantine for
    // the next one. min_birth == 0 moves the whole buffer.
    frozen_ = quarantine_.splitBornSince(min_birth);
    PaintStats stats;
    // Paint payload granules only; a run's header granule may
    // legitimately hold the base of a live one-past-the-end
    // capability of the previous allocation.
    if (paint_shards == 1) {
        for (const QuarantineRun &run : frozen_.orderedRuns()) {
            stats += shadow_.paint(run.addr + kChunkHeader,
                                   run.size - kChunkHeader);
        }
        return stats;
    }
    // Sharded: one painter thread per non-empty address band, each
    // through its own shard-restricted view. Byte-identical shadow
    // contents and PaintStats to the serial paint (see
    // paintShardsConcurrent).
    stats += paintShardsConcurrent(shadow_,
                                   frozen_.shardedRuns(paint_shards));
    return stats;
}

uint64_t
CherivokeAllocator::finishSweep()
{
    // Same cached materialisation prepareSweep sorted: the frozen
    // set takes no adds while its epoch is open.
    for (const QuarantineRun &run : frozen_.orderedRuns()) {
        shadow_.clear(run.addr + kChunkHeader,
                      run.size - kChunkHeader);
    }
    return frozen_.release(dl_);
}

} // namespace alloc
} // namespace cherivoke

#include "alloc/cherivoke_alloc.hh"

#include <algorithm>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace alloc {

CherivokeAllocator::CherivokeAllocator(mem::AddressSpace &space,
                                       CherivokeConfig config)
    : dl_(space, config.dl), shadow_(space.memory()), config_(config),
      mem_(&space.memory())
{
    CHERIVOKE_ASSERT(config_.quarantineFraction > 0,
                     "(quarantine fraction must be positive)");
}

void
CherivokeAllocator::free(const cap::Capability &capability)
{
    const DlAllocator::QuarantinedChunk chunk =
        dl_.quarantineFree(capability);
    quarantine_.add(dl_, chunk.addr, chunk.size);
}

cap::Capability
CherivokeAllocator::realloc(const cap::Capability &capability,
                            uint64_t new_size)
{
    if (!capability.tag())
        fatal("realloc() through an untagged capability");
    const uint64_t old_payload = capability.base();
    const uint64_t old_usable = dl_.usableSize(old_payload);
    cap::Capability fresh = dl_.malloc(new_size);
    // Copy preserving capability tags, as a CheriABI memcpy would,
    // then quarantine the old allocation.
    const uint64_t copy = std::min<uint64_t>(old_usable, new_size);
    if (copy > 0) {
        dl_.counters().counter("alloc.realloc_copied_bytes")
            .increment(copy);
        mem_->copyPreservingTags(fresh.base(), old_payload, copy);
    }
    free(capability);
    return fresh;
}

bool
CherivokeAllocator::needsSweep() const
{
    const uint64_t quarantined = quarantine_.totalBytes();
    if (quarantined < config_.minQuarantineBytes)
        return false;
    const double live = static_cast<double>(dl_.liveBytes());
    return static_cast<double>(quarantined) >=
           config_.quarantineFraction * std::max(live, 1.0);
}

PaintStats
CherivokeAllocator::prepareSweep(unsigned paint_shards)
{
    CHERIVOKE_ASSERT(!epochOpen(),
                     "(prepareSweep with an epoch already open)");
    CHERIVOKE_ASSERT(paint_shards > 0);
    ++sweeps_;
    // Freeze: this epoch revokes exactly the frees made so far;
    // later frees accumulate in a fresh quarantine for the next one.
    frozen_ = std::move(quarantine_);
    quarantine_ = Quarantine{};
    PaintStats stats;
    // Paint payload granules only; a run's header granule may
    // legitimately hold the base of a live one-past-the-end
    // capability of the previous allocation.
    if (paint_shards == 1) {
        for (const QuarantineRun &run : frozen_.runs()) {
            stats += shadow_.paint(run.addr + kChunkHeader,
                                   run.size - kChunkHeader);
        }
        return stats;
    }
    for (const QuarantineShard &shard :
         frozen_.shardedRuns(paint_shards)) {
        if (shard.runs.empty())
            continue;
        // A run starting in this band may extend past its upper
        // bound; widen the view to the shard's true extent so whole
        // runs paint through exactly one view.
        uint64_t hi = shard.hi;
        for (const QuarantineRun &run : shard.runs)
            hi = std::max(hi, run.end());
        ShadowMap::View view =
            shadow_.view(alignDown(shard.lo, kGranuleBytes),
                         alignUp(hi, kGranuleBytes));
        for (const QuarantineRun &run : shard.runs) {
            stats += view.paint(run.addr + kChunkHeader,
                                run.size - kChunkHeader);
        }
    }
    return stats;
}

uint64_t
CherivokeAllocator::finishSweep()
{
    for (const QuarantineRun &run : frozen_.runs()) {
        shadow_.clear(run.addr + kChunkHeader,
                      run.size - kChunkHeader);
    }
    return frozen_.release(dl_);
}

} // namespace alloc
} // namespace cherivoke

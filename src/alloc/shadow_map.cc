#include "alloc/shadow_map.hh"

#include <algorithm>
#include <cstring>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace alloc {

PaintStats &
PaintStats::operator+=(const PaintStats &o)
{
    bitOps += o.bitOps;
    byteOps += o.byteOps;
    wordOps += o.wordOps;
    dwordOps += o.dwordOps;
    return *this;
}

namespace {

/** Read-modify-write a partial shadow byte. */
void
rmwByte(mem::TaggedMemory &mem, uint64_t shadow_addr, uint8_t mask,
        bool set)
{
    uint8_t byte = 0;
    mem.readBytes(shadow_addr, &byte, 1);
    byte = set ? (byte | mask) : (byte & static_cast<uint8_t>(~mask));
    mem.writeBytes(shadow_addr, &byte, 1);
}

} // namespace

PaintStats
ShadowMap::apply(uint64_t addr, uint64_t size, bool set)
{
    PaintStats st;
    if (size == 0)
        return st;
    CHERIVOKE_ASSERT(isAligned(addr, kGranuleBytes),
                     "(paint range must be granule aligned)");

    // Granule range [g0, g1).
    const uint64_t g0 = addr >> kGranuleShift;
    const uint64_t g1 = (addr + size + kGranuleBytes - 1) >>
                        kGranuleShift;

    uint64_t g = g0;
    // Head: partial first shadow byte.
    if (g & 7) {
        const uint64_t byte_addr = mem::kShadowBase + (g >> 3);
        const unsigned lo = g & 7;
        const unsigned hi =
            static_cast<unsigned>(std::min<uint64_t>(8, lo + (g1 - g)));
        uint8_t mask = 0;
        for (unsigned b = lo; b < hi; ++b)
            mask |= static_cast<uint8_t>(1u << b);
        rmwByte(*mem_, byte_addr, mask, set);
        ++st.bitOps;
        g += hi - lo;
    }

    // Body: whole shadow bytes, widened to 4- and 8-byte stores when
    // the shadow address is suitably aligned.
    const uint8_t fill = set ? 0xff : 0x00;
    while (g + 8 <= g1) {
        const uint64_t byte_addr = mem::kShadowBase + (g >> 3);
        const uint64_t bytes_left = (g1 - g) >> 3;
        if (bytes_left >= 8 && isAligned(byte_addr, 8)) {
            uint8_t buf[8];
            std::memset(buf, fill, 8);
            mem_->writeBytes(byte_addr, buf, 8);
            ++st.dwordOps;
            g += 64;
        } else if (bytes_left >= 4 && isAligned(byte_addr, 4)) {
            uint8_t buf[4];
            std::memset(buf, fill, 4);
            mem_->writeBytes(byte_addr, buf, 4);
            ++st.wordOps;
            g += 32;
        } else {
            mem_->writeBytes(byte_addr, &fill, 1);
            ++st.byteOps;
            g += 8;
        }
    }

    // Tail: partial last shadow byte.
    if (g < g1) {
        const uint64_t byte_addr = mem::kShadowBase + (g >> 3);
        uint8_t mask = 0;
        for (uint64_t b = g & 7; b < (g & 7) + (g1 - g); ++b)
            mask |= static_cast<uint8_t>(1u << b);
        rmwByte(*mem_, byte_addr, mask, set);
        ++st.bitOps;
    }
    return st;
}

PaintStats
ShadowMap::paint(uint64_t addr, uint64_t size)
{
    return apply(addr, size, true);
}

PaintStats
ShadowMap::clear(uint64_t addr, uint64_t size)
{
    return apply(addr, size, false);
}

PaintStats
ShadowMap::paintBitByBit(uint64_t addr, uint64_t size)
{
    PaintStats st;
    if (size == 0)
        return st;
    CHERIVOKE_ASSERT(isAligned(addr, kGranuleBytes));
    const uint64_t g0 = addr >> kGranuleShift;
    const uint64_t g1 = (addr + size + kGranuleBytes - 1) >>
                        kGranuleShift;
    for (uint64_t g = g0; g < g1; ++g) {
        rmwByte(*mem_, mem::kShadowBase + (g >> 3),
                static_cast<uint8_t>(1u << (g & 7)), true);
        ++st.bitOps;
    }
    return st;
}

bool
ShadowMap::isRevoked(uint64_t addr) const
{
    // The §3.3 inner-loop lookup: shift to the granule, index the
    // shadow byte, test the bit. Counter-free so that concurrent
    // sweep threads can share the (read-only) map.
    const uint64_t g = addr >> kGranuleShift;
    uint8_t byte = 0;
    mem_->peekBytes(mem::kShadowBase + (g >> 3), &byte, 1);
    return (byte >> (g & 7)) & 1;
}

ShadowMap::View
ShadowMap::view(uint64_t lo, uint64_t hi)
{
    return View(*this, lo, hi);
}

ShadowMap::View::View(ShadowMap &map, uint64_t lo, uint64_t hi)
    : map_(&map), lo_(lo), hi_(hi)
{
    CHERIVOKE_ASSERT(lo <= hi);
    CHERIVOKE_ASSERT(isAligned(lo, kGranuleBytes) &&
                         isAligned(hi, kGranuleBytes),
                     "(shard bounds must be granule aligned)");
}

std::pair<uint64_t, uint64_t>
ShadowMap::View::clamp(uint64_t addr, uint64_t size) const
{
    const uint64_t lo = std::max(addr, lo_);
    const uint64_t hi = std::min(addr + size, hi_);
    if (lo >= hi)
        return {lo_, 0};
    return {lo, hi - lo};
}

PaintStats
ShadowMap::View::paint(uint64_t addr, uint64_t size)
{
    const auto [lo, clamped] = clamp(addr, size);
    return map_->paint(lo, clamped);
}

PaintStats
ShadowMap::View::clear(uint64_t addr, uint64_t size)
{
    const auto [lo, clamped] = clamp(addr, size);
    return map_->clear(lo, clamped);
}

uint64_t
ShadowMap::countPainted(uint64_t addr, uint64_t size) const
{
    const uint64_t g0 = addr >> kGranuleShift;
    const uint64_t g1 = (addr + size + kGranuleBytes - 1) >>
                        kGranuleShift;
    uint64_t n = 0;
    for (uint64_t g = g0; g < g1; ++g) {
        uint8_t byte = 0;
        mem_->readBytes(mem::kShadowBase + (g >> 3), &byte, 1);
        n += (byte >> (g & 7)) & 1;
    }
    return n;
}

} // namespace alloc
} // namespace cherivoke

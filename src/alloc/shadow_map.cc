#include "alloc/shadow_map.hh"

#include <algorithm>
#include <cstring>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace alloc {

PaintStats &
PaintStats::operator+=(const PaintStats &o)
{
    bitOps += o.bitOps;
    byteOps += o.byteOps;
    wordOps += o.wordOps;
    dwordOps += o.dwordOps;
    return *this;
}

PaintStats
ShadowMap::apply(uint64_t addr, uint64_t size, bool set)
{
    PaintStats st;
    if (size == 0)
        return st;
    CHERIVOKE_ASSERT(isAligned(addr, kGranuleBytes),
                     "(paint range must be granule aligned)");

    // Granule range [g0, g1).
    const uint64_t g0 = addr >> kGranuleShift;
    const uint64_t g1 = (addr + size + kGranuleBytes - 1) >>
                        kGranuleShift;

    uint64_t g = g0;
    // Head: partial first shadow byte. Atomic RMW — an adjacent
    // paint shard may own the byte's other granules.
    if (g & 7) {
        const uint64_t byte_addr = mem::kShadowBase + (g >> 3);
        const unsigned lo = g & 7;
        const unsigned hi =
            static_cast<unsigned>(std::min<uint64_t>(8, lo + (g1 - g)));
        uint8_t mask = 0;
        for (unsigned b = lo; b < hi; ++b)
            mask |= static_cast<uint8_t>(1u << b);
        mem_->shadowApplyBits(byte_addr, mask, set);
        ++st.bitOps;
        g += hi - lo;
    }

    // Body: whole shadow bytes. The *modelled* store sequence keeps
    // the §5.2 width optimisation (byte / word / dword stores,
    // counted below, feeding the paint cost model), but the
    // simulator now issues one raw fill for the whole span instead
    // of one checked write per modelled store.
    const uint8_t fill = set ? 0xff : 0x00;
    const uint64_t body_begin = g;
    while (g + 8 <= g1) {
        const uint64_t byte_addr = mem::kShadowBase + (g >> 3);
        const uint64_t bytes_left = (g1 - g) >> 3;
        if (bytes_left >= 8 && isAligned(byte_addr, 8)) {
            ++st.dwordOps;
            g += 64;
        } else if (bytes_left >= 4 && isAligned(byte_addr, 4)) {
            ++st.wordOps;
            g += 32;
        } else {
            ++st.byteOps;
            g += 8;
        }
    }
    if (g > body_begin) {
        mem_->shadowFill(mem::kShadowBase + (body_begin >> 3), fill,
                         (g - body_begin) >> 3);
    }

    // Tail: partial last shadow byte (atomic, as for the head).
    if (g < g1) {
        const uint64_t byte_addr = mem::kShadowBase + (g >> 3);
        uint8_t mask = 0;
        for (uint64_t b = g & 7; b < (g & 7) + (g1 - g); ++b)
            mask |= static_cast<uint8_t>(1u << b);
        mem_->shadowApplyBits(byte_addr, mask, set);
        ++st.bitOps;
    }
    return st;
}

PaintStats
ShadowMap::paint(uint64_t addr, uint64_t size)
{
    return apply(addr, size, true);
}

PaintStats
ShadowMap::clear(uint64_t addr, uint64_t size)
{
    return apply(addr, size, false);
}

PaintStats
ShadowMap::paintBitByBit(uint64_t addr, uint64_t size)
{
    PaintStats st;
    if (size == 0)
        return st;
    CHERIVOKE_ASSERT(isAligned(addr, kGranuleBytes));
    const uint64_t g0 = addr >> kGranuleShift;
    const uint64_t g1 = (addr + size + kGranuleBytes - 1) >>
                        kGranuleShift;
    for (uint64_t g = g0; g < g1; ++g) {
        mem_->shadowApplyBits(mem::kShadowBase + (g >> 3),
                              static_cast<uint8_t>(1u << (g & 7)),
                              true);
        ++st.bitOps;
    }
    return st;
}

bool
ShadowMap::isRevoked(uint64_t addr) const
{
    // The §3.3 inner-loop lookup: shift to the granule, index the
    // shadow byte, test the bit. Counter- and lock-free so that
    // concurrent sweep threads can share the (read-only) map.
    const uint64_t g = addr >> kGranuleShift;
    const uint8_t byte = mem_->peekU8(mem::kShadowBase + (g >> 3));
    return (byte >> (g & 7)) & 1;
}

ShadowMap::View
ShadowMap::view(uint64_t lo, uint64_t hi)
{
    return View(*this, lo, hi);
}

ShadowMap::View::View(ShadowMap &map, uint64_t lo, uint64_t hi)
    : map_(&map), lo_(lo), hi_(hi)
{
    CHERIVOKE_ASSERT(lo <= hi);
    CHERIVOKE_ASSERT(isAligned(lo, kGranuleBytes) &&
                         isAligned(hi, kGranuleBytes),
                     "(shard bounds must be granule aligned)");
}

std::pair<uint64_t, uint64_t>
ShadowMap::View::clamp(uint64_t addr, uint64_t size) const
{
    const uint64_t lo = std::max(addr, lo_);
    const uint64_t hi = std::min(addr + size, hi_);
    if (lo >= hi)
        return {lo_, 0};
    return {lo, hi - lo};
}

PaintStats
ShadowMap::View::paint(uint64_t addr, uint64_t size)
{
    const auto [lo, clamped] = clamp(addr, size);
    return map_->paint(lo, clamped);
}

PaintStats
ShadowMap::View::clear(uint64_t addr, uint64_t size)
{
    const auto [lo, clamped] = clamp(addr, size);
    return map_->clear(lo, clamped);
}

uint64_t
ShadowMap::countPainted(uint64_t addr, uint64_t size) const
{
    const uint64_t g0 = addr >> kGranuleShift;
    const uint64_t g1 = (addr + size + kGranuleBytes - 1) >>
                        kGranuleShift;
    uint64_t n = 0;
    for (uint64_t g = g0; g < g1; ++g) {
        uint8_t byte = 0;
        mem_->readBytes(mem::kShadowBase + (g >> 3), &byte, 1);
        n += (byte >> (g & 7)) & 1;
    }
    return n;
}

} // namespace alloc
} // namespace cherivoke

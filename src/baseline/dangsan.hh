/**
 * @file
 * A DangSan-style pointer-registry nullifier (van der Kouwe et al.,
 * EuroSys 2017; paper §7.1): compiler instrumentation records every
 * pointer store into a per-allocation registry; free() walks the
 * registry and nullifies the recorded locations immediately.
 *
 * This reproduces the two structural costs the paper contrasts with
 * CHERIvoke: every pointer store pays an instrumentation cost and
 * registry storage, and pointers copied through uninstrumented
 * channels ("hidden pointers", e.g.\ memcpy or integer laundering)
 * escape nullification entirely — so temporal safety cannot be
 * guaranteed.
 */

#ifndef CHERIVOKE_BASELINE_DANGSAN_HH
#define CHERIVOKE_BASELINE_DANGSAN_HH

#include <cstdint>
#include <map>
#include <vector>

#include "alloc/dlmalloc.hh"
#include "mem/addr_space.hh"

namespace cherivoke {
namespace baseline {

/** Registry statistics for the cost model. */
struct DangSanStats
{
    uint64_t recordedStores = 0;   //!< instrumented pointer writes
    uint64_t registryEntries = 0;  //!< current total entries
    uint64_t registryBytes = 0;    //!< memory the registries occupy
    uint64_t nullified = 0;        //!< locations zeroed on frees
    uint64_t staleEntries = 0;     //!< entries no longer pointing in
};

/** The DangSan-style allocator wrapper. */
class DangSan
{
  public:
    DangSan(mem::AddressSpace &space, alloc::DlAllocator &dl)
        : space_(&space), dl_(&dl)
    {}

    cap::Capability malloc(uint64_t size);

    /**
     * The instrumented pointer store: writes @p value to @p location
     * and records the location in the registry of the allocation
     * the value points into. Uninstrumented stores (plain
     * TaggedMemory writes) model hidden pointers.
     */
    void recordPointerStore(uint64_t location,
                            const cap::Capability &value);

    /** Free with immediate registry-driven nullification. */
    void free(const cap::Capability &capability);

    const DangSanStats &stats() const { return stats_; }

    /** Registry entries held for one allocation (test hook). */
    size_t registrySizeFor(uint64_t base) const;

  private:
    mem::AddressSpace *space_;
    alloc::DlAllocator *dl_;
    /** allocation payload base -> locations that stored a pointer
     *  into it. Grows without bound for long-lived hubs — DangSan's
     *  documented memory blowup. */
    std::map<uint64_t, std::vector<uint64_t>> registry_;
    DangSanStats stats_;
};

} // namespace baseline
} // namespace cherivoke

#endif // CHERIVOKE_BASELINE_DANGSAN_HH

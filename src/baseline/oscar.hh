/**
 * @file
 * An Oscar-style page-permission scheme (Dang et al., USENIX Security
 * 2017; paper §7.2): every allocation receives its own virtual page
 * alias; free() poisons the alias so dangling pointers fault, while
 * the physical page can be reused.
 *
 * The functional core demonstrates the mechanism; the cost model
 * captures the two structural overheads the paper highlights: a
 * syscall-ish cost per allocation/free (mapping management) and
 * memory overhead from page-granular allocation, both of which blow
 * up for small, frequent allocations (§7.2).
 */

#ifndef CHERIVOKE_BASELINE_OSCAR_HH
#define CHERIVOKE_BASELINE_OSCAR_HH

#include <cstdint>
#include <map>

#include "mem/addr_space.hh"

namespace cherivoke {
namespace baseline {

/** Oscar cost-model parameters. */
struct OscarCosts
{
    /** Seconds per mmap/mprotect-style operation (~1 us syscall). */
    double secondsPerMapOp = 1.0e-6;
    /** Extra TLB-pressure slowdown per live aliased page, applied
     *  multiplicatively per million pages. */
    double tlbPenaltyPerMPages = 0.02;
};

/** Oscar runtime/memory estimates for a workload. */
struct OscarEstimate
{
    double runtimeOverhead = 0;  //!< fraction of baseline runtime
    double memoryOverhead = 0;   //!< fraction of baseline heap
};

/** The functional shim: page-aliased allocations with poisoning. */
class Oscar
{
  public:
    explicit Oscar(mem::AddressSpace &space) : space_(&space) {}

    /** Allocate: a fresh page-granular alias per allocation. */
    cap::Capability malloc(uint64_t size);

    /** Free: poison the alias (unmap); dangling accesses fault. */
    void free(const cap::Capability &capability);

    uint64_t mapOps() const { return map_ops_; }
    uint64_t liveAliasedBytes() const { return live_aliased_bytes_; }

  private:
    mem::AddressSpace *space_;
    std::map<uint64_t, uint64_t> live_; //!< base -> mapped size
    uint64_t map_ops_ = 0;
    uint64_t live_aliased_bytes_ = 0;
};

/**
 * The cost model used for figure-5-style comparisons.
 * @param allocs_per_sec allocation (== free) throughput
 * @param mean_alloc_bytes average allocation size
 * @param live_heap_bytes steady-state live heap
 */
OscarEstimate estimateOscar(const OscarCosts &costs,
                            double allocs_per_sec,
                            double mean_alloc_bytes,
                            double live_heap_bytes);

} // namespace baseline
} // namespace cherivoke

#endif // CHERIVOKE_BASELINE_OSCAR_HH

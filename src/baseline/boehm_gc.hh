/**
 * @file
 * A Boehm–Demers–Weiser-style conservative mark-sweep collector
 * (paper §7.3) over the simulated address space, used as the
 * garbage-collection comparison point in figure 5.
 *
 * Following the paper's x86 methodology (§5.1), pointer
 * identification is *conservative*: any 64-bit word whose value lands
 * inside a live allocation is treated as a reference. This exhibits
 * the two weaknesses the paper contrasts with CHERIvoke (§7.3):
 * integers can be misclassified as pointers (retention), and the
 * marking phase is an irregular graph walk rather than a linear
 * sweep.
 */

#ifndef CHERIVOKE_BASELINE_BOEHM_GC_HH
#define CHERIVOKE_BASELINE_BOEHM_GC_HH

#include <cstdint>
#include <map>
#include <vector>

#include "alloc/dlmalloc.hh"
#include "mem/addr_space.hh"

namespace cherivoke {
namespace baseline {

/** Statistics from one collection. */
struct GcStats
{
    uint64_t rootsScanned = 0;   //!< root words examined
    uint64_t wordsScanned = 0;   //!< total words examined (mark phase)
    uint64_t objectsMarked = 0;
    uint64_t objectsFreed = 0;
    uint64_t bytesFreed = 0;
    uint64_t markVisits = 0;     //!< graph-walk node visits
};

/**
 * Conservative collector over a DlAllocator heap. The program
 * allocates through gcAlloc() and never frees; collect() reclaims
 * unreachable allocations.
 */
class BoehmGc
{
  public:
    BoehmGc(mem::AddressSpace &space, alloc::DlAllocator &dl)
        : space_(&space), dl_(&dl)
    {}

    /** Allocate a collected object. */
    cap::Capability gcAlloc(uint64_t size);

    /** Explicit free (BDW supports it; enables use-after-free bugs,
     *  which is the paper's point about hybrid GC). */
    void explicitFree(const cap::Capability &capability);

    /** Run a full stop-the-world mark-sweep collection. */
    GcStats collect();

    /** Live (registered, uncollected) allocations. */
    size_t liveObjects() const { return objects_.size(); }

    /** Total heap bytes registered to the collector. */
    uint64_t registeredBytes() const;

  private:
    void markFrom(uint64_t addr, uint64_t size, GcStats &stats,
                  std::vector<uint64_t> &worklist);

    mem::AddressSpace *space_;
    alloc::DlAllocator *dl_;
    /** payload base -> payload size, with a mark bit per cycle. */
    std::map<uint64_t, uint64_t> objects_;
    std::map<uint64_t, bool> marks_;
};

} // namespace baseline
} // namespace cherivoke

#endif // CHERIVOKE_BASELINE_BOEHM_GC_HH

#include "baseline/oscar.hh"

#include <algorithm>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace cherivoke {
namespace baseline {

cap::Capability
Oscar::malloc(uint64_t size)
{
    // One fresh virtual mapping per allocation (never a reused
    // virtual page while any dangling pointer may exist).
    const uint64_t mapped =
        alignUp(std::max<uint64_t>(size, 1), kPageBytes);
    const uint64_t base = space_->mmapHeap(mapped);
    ++map_ops_;
    live_[base] = mapped;
    live_aliased_bytes_ += mapped;
    return space_->rootCap()
        .setAddress(base)
        .setBounds(size)
        .andPerms(cap::kPermsData);
}

void
Oscar::free(const cap::Capability &capability)
{
    const uint64_t base = capability.base();
    auto it = live_.find(base);
    CHERIVOKE_ASSERT(it != live_.end(),
                     "(Oscar free of unknown allocation)");
    // Poison: unmapping makes any dangling access fault.
    space_->munmapHeap(base, it->second);
    ++map_ops_;
    live_aliased_bytes_ -= it->second;
    live_.erase(it);
}

OscarEstimate
estimateOscar(const OscarCosts &costs, double allocs_per_sec,
              double mean_alloc_bytes, double live_heap_bytes)
{
    OscarEstimate est;
    if (mean_alloc_bytes <= 0 || live_heap_bytes <= 0)
        return est;
    // Two map operations per allocation lifetime (map + poison).
    const double syscall_time =
        2.0 * allocs_per_sec * costs.secondsPerMapOp;
    const double live_pages =
        live_heap_bytes / mean_alloc_bytes; // one page per allocation
    const double tlb_penalty =
        costs.tlbPenaltyPerMPages * (live_pages / 1.0e6);
    est.runtimeOverhead = syscall_time + tlb_penalty;
    // Memory: every allocation rounds to a page.
    const double per_alloc_waste =
        static_cast<double>(kPageBytes) -
        std::min<double>(mean_alloc_bytes,
                         static_cast<double>(kPageBytes));
    est.memoryOverhead =
        per_alloc_waste * (live_heap_bytes / mean_alloc_bytes) /
        live_heap_bytes;
    return est;
}

} // namespace baseline
} // namespace cherivoke

/**
 * @file
 * Published comparison numbers for figure 5.
 *
 * The paper's figure 5 compares CHERIvoke "with results reported by
 * other state-of-the-art techniques" — i.e.\ numbers taken from the
 * Oscar, pSweeper, DangSan and Boehm-GC papers, not reruns. We encode
 * those reference series (digitized from figure 5 and the respective
 * papers' tables; approximate where bars are read by eye) so the
 * fig5 bench can print the same comparison rows. Values are
 * normalised execution time / memory (1.0 = baseline); 0 means the
 * source reported no value for that benchmark.
 */

#ifndef CHERIVOKE_BASELINE_PUBLISHED_HH
#define CHERIVOKE_BASELINE_PUBLISHED_HH

#include <string>
#include <vector>

namespace cherivoke {
namespace baseline {

/** One benchmark row of figure 5 (time and memory series). */
struct PublishedRow
{
    std::string benchmark;
    // Normalised execution time (figure 5a).
    double cherivokeTime = 0; //!< the paper's own measurement
    double oscarTime = 0;
    double psweeperTime = 0;
    double dangsanTime = 0;
    double boehmGcTime = 0;
    // Normalised memory utilisation (figure 5b).
    double cherivokeMem = 0;
    double dangsanMem = 0;
    double oscarMem = 0;
};

/** The figure 5 reference table (SPEC CPU2006 subset). */
const std::vector<PublishedRow> &publishedFigure5();

/** Row lookup by benchmark name; throws FatalError if unknown. */
const PublishedRow &publishedRowFor(const std::string &benchmark);

/** The paper's headline numbers (abstract / §6.6). */
struct PaperHeadlines
{
    double avgRuntimeOverhead = 0.047;
    double maxRuntimeOverhead = 0.51;
    double avgMemoryOverhead = 0.125;
    double maxMemoryOverhead = 0.35;
    double heapOverheadSetting = 0.25;
};

PaperHeadlines paperHeadlines();

} // namespace baseline
} // namespace cherivoke

#endif // CHERIVOKE_BASELINE_PUBLISHED_HH

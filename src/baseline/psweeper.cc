#include "baseline/psweeper.hh"

#include "support/logging.hh"

namespace cherivoke {
namespace baseline {

void
PSweeper::recordPointerStore(uint64_t location,
                             const cap::Capability &value)
{
    space_->memory().writeCap(location, value);
    pointer_log_.push_back(location);
    ++stats_.loggedStores;
}

void
PSweeper::free(const cap::Capability &capability)
{
    const uint64_t base = capability.base();
    const uint64_t size = dl_->usableSize(base);
    deferred_[base] = size;
    deferred_bytes_ += size;
    if (deferred_bytes_ >= defer_budget_bytes_)
        sweepNow();
}

void
PSweeper::sweepNow()
{
    ++stats_.sweeps;
    auto &memory = space_->memory();

    auto in_deferred = [&](uint64_t value) {
        auto it = deferred_.upper_bound(value);
        if (it == deferred_.begin())
            return false;
        --it;
        return value >= it->first && value < it->first + it->second;
    };

    // Walk the whole live-pointer list (cost proportional to pointer
    // stores, not memory — pSweeper's scaling limit).
    std::vector<uint64_t> still_live;
    still_live.reserve(pointer_log_.size());
    for (const uint64_t loc : pointer_log_) {
        ++stats_.entriesWalked;
        const cap::Capability cur = memory.readCap(loc);
        if (!cur.tag()) {
            continue; // overwritten since; drop the entry
        }
        if (in_deferred(cur.address())) {
            memory.writeU64(loc, 0);
            memory.writeU64(loc + 8, 0);
            ++stats_.nullified;
        } else {
            still_live.push_back(loc);
        }
    }
    pointer_log_.swap(still_live);

    for (const auto &[base, size] : deferred_) {
        dl_->freeAddr(base);
        ++stats_.objectsReleased;
    }
    deferred_.clear();
    deferred_bytes_ = 0;
}

} // namespace baseline
} // namespace cherivoke

#include "baseline/dangsan.hh"

#include "support/logging.hh"

namespace cherivoke {
namespace baseline {

cap::Capability
DangSan::malloc(uint64_t size)
{
    const cap::Capability c = dl_->malloc(size);
    registry_[c.base()];
    return c;
}

void
DangSan::recordPointerStore(uint64_t location,
                            const cap::Capability &value)
{
    space_->memory().writeCap(location, value);
    ++stats_.recordedStores;
    auto it = registry_.find(value.base());
    if (it == registry_.end())
        return; // store of a non-heap pointer
    it->second.push_back(location);
    ++stats_.registryEntries;
    stats_.registryBytes += sizeof(uint64_t) * 2; // entry + slack
}

void
DangSan::free(const cap::Capability &capability)
{
    const uint64_t base = capability.base();
    auto it = registry_.find(base);
    CHERIVOKE_ASSERT(it != registry_.end(),
                     "(DangSan free of unregistered allocation)");
    auto &memory = space_->memory();
    for (const uint64_t loc : it->second) {
        // Nullify only if the location still holds a pointer into
        // this allocation (it may have been overwritten since).
        const cap::Capability cur = memory.readCap(loc);
        const uint64_t size = dl_->usableSize(base);
        if (cur.address() >= base && cur.address() < base + size) {
            memory.writeU64(loc, 0);
            memory.writeU64(loc + 8, 0);
            ++stats_.nullified;
        } else {
            ++stats_.staleEntries;
        }
    }
    stats_.registryEntries -= it->second.size();
    registry_.erase(it);
    // No quarantine: memory is immediately reusable (hence the
    // vulnerability to hidden pointers).
    dl_->freeAddr(base);
}

size_t
DangSan::registrySizeFor(uint64_t base) const
{
    auto it = registry_.find(base);
    return it == registry_.end() ? 0 : it->second.size();
}

} // namespace baseline
} // namespace cherivoke
